# uvmdiscard build targets. Everything is stdlib Go; no external deps.

GO ?= go

.PHONY: all build test test-short test-race bench bench-json bench-check profile examples repro csv ci lint lint-baseline chaos chaos-fleet smoke-service clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

# Static analysis: formatting, vet, and the project's own typed analyzers
# (cmd/uvmlint: locksafe, simdet, queuestate, errsink, goroleak, lockorder,
# discardproto — see DESIGN.md §13).
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/uvmlint

# The lint baseline gate: the multichecker's machine-readable output must
# be byte-identical to the committed (empty) baseline, so a new finding —
# or a drift in the JSON encoding itself — fails even if someone weakens
# the exit-code path.
lint-baseline:
	$(GO) run ./cmd/uvmlint -format=json . | diff -u lint.baseline.json -

# Full suite under the race detector — the gate on the parallel experiment
# runner's concurrency claims.
test-race:
	$(GO) test -race ./...

# Everything CI runs (.github/workflows/ci.yml mirrors this target).
ci: lint lint-baseline
	$(GO) build ./...
	$(GO) test -race ./...

# Full suite, including the full-scale reproduction gates (~1 min).
test:
	$(GO) test ./...

# Unit tests only (seconds).
test-short:
	$(GO) test -short ./...

# The chaos harness: randomized workloads under randomized seeded fault
# schedules with the runtime sanitizer at stride 1 (internal/core
# chaos_test.go). CHAOS_SEED=n replays a single seed; unset runs the
# built-in set.
chaos:
ifdef CHAOS_SEED
	$(GO) test -race -count=1 -run TestChaosRandomFaults ./internal/core/ -chaos.seed $(CHAOS_SEED) -v
else
	$(GO) test -race -count=1 -run TestChaosRandomFaults ./internal/core/ -v
endif

# The fleet chaos harness: an in-process coordinator and worker pool over
# real HTTP with seeded worker kills mid-job and a coordinator crash/restart
# from its journal (internal/fleet chaos_test.go). Asserts every job
# completes exactly once, byte-identical to a single-process run.
# FLEET_SEED=n replays a single seed; unset runs the built-in set.
chaos-fleet:
ifdef FLEET_SEED
	$(GO) test -race -count=1 -run TestChaosFleet ./internal/fleet/ -fleet.seed $(FLEET_SEED) -v
else
	$(GO) test -race -count=1 -run TestChaosFleet ./internal/fleet/ -v
endif

# End-to-end smokes against the real binaries: the uvmsimd kill/resume
# crash-safety test (smoke_test.go), the /metrics + SSE-progress
# observability test (metrics_smoke_test.go), and the fleet smoke — one
# uvmfleet coordinator, two uvmsimd -worker processes, SIGKILL one worker
# mid-lease, every job still completes byte-identically elsewhere.
smoke-service:
	$(GO) test -count=1 -run 'TestSmoke' ./cmd/uvmsimd ./cmd/uvmfleet -v

# One testing.B benchmark per paper table/figure + ablations + extensions.
bench:
	$(GO) test -bench=. -benchmem ./...

# Refresh the committed performance baseline: run the quick-mode paper
# benchmarks and convert the output to JSON (cmd/benchjson). Three cold
# runs per benchmark are recorded — single cold iterations are noisy on
# small machines, and bench-check compares per-benchmark minima on both
# sides, which is stable. Each PR writes its own snapshot next to its
# predecessor's so regressions are attributable (override with
# BENCH_OUT=BENCH_PR<n>.json). Compare against a branch with:
#   jq -r '.benchmarks[].raw' BENCH_PR6.json > old.txt && benchstat old.txt new.txt
BENCH_OUT ?= BENCH_PR10.json
bench-json:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=1x -count=3 . \
		| $(GO) run ./cmd/benchjson -out $(BENCH_OUT)

# Gate the paper benchmarks against the committed baseline. Two separate
# thresholds: allocs/op is deterministic (identical across runs and
# machines), so it sits tight at 1.10 — the load-bearing >10% regression
# gate. ns/op is compared as min-of-3 cold runs on both sides, but on
# small/shared machines even that minimum drifts ~1.3x run to run, so its
# default absorbs measured same-code noise; tighten BENCH_THRESHOLD on
# quiet dedicated hardware, or raise it (CI uses 3.0) where the hardware
# differs from the baseline host's.
BENCH_BASELINE ?= BENCH_PR10.json
BENCH_THRESHOLD ?= 1.60
BENCH_ALLOC_THRESHOLD ?= 1.10
bench-check:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=1x -count=3 . \
		| $(GO) run ./cmd/benchjson -check $(BENCH_BASELINE) \
			-threshold $(BENCH_THRESHOLD) -alloc-threshold $(BENCH_ALLOC_THRESHOLD)

# CPU+heap profiles of a driver-loop-dominated run (fully oversubscribed
# FIR), the workflow behind the §15 hot-path work:
#   make profile && go tool pprof -top out/cpu.pprof
PROFILE_ARGS ?= -workload fir -ovsp 400
profile:
	mkdir -p out
	$(GO) run ./cmd/uvmsim $(PROFILE_ARGS) -cpuprofile out/cpu.pprof -memprofile out/mem.pprof
	@echo "profiles written: out/cpu.pprof out/mem.pprof (go tool pprof -top out/cpu.pprof)"

# Run every example end to end.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/streaming
	$(GO) run ./examples/sorting
	$(GO) run ./examples/hashjoin
	$(GO) run ./examples/inference
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/advisor
	$(GO) run ./examples/deeplearning -model rnn -batch 240

# Regenerate every table and figure at the paper's full problem sizes.
repro:
	$(GO) run ./cmd/paperbench -chart

# Emit per-table CSVs for external plotting.
csv:
	$(GO) run ./cmd/paperbench -csv out/

clean:
	$(GO) clean ./...
	rm -rf out/

module uvmdiscard

go 1.22

// Inference: serving a model whose weights exceed GPU memory, showing how
// the discard directive composes with cudaMemAdvise-style hints.
//
// Without hints, every serving pass the driver swaps unmodified weights
// out to the host (NVIDIA GPUs lack per-PTE dirty bits, so UVM cannot know
// the host copy is still valid — the same hardware limitation that shapes
// the paper's UvmDiscard design, §5). SetReadMostly keeps a valid host
// duplicate so those evictions move nothing; DiscardAll kills the
// ping-ponging activation buffers.
//
// Run with:
//
//	go run ./examples/inference
package main

import (
	"fmt"
	"log"

	"uvmdiscard"
)

const (
	gpuMemory   = 512 * uvmdiscard.MiB
	layerCount  = 12
	weightTotal = 768 * uvmdiscard.MiB // 1.5x GPU memory
	actSize     = 8 * uvmdiscard.MiB
	requests    = 3
)

func main() {
	fmt.Printf("serving %s of weights through a %s GPU\n\n",
		uvmdiscard.FormatSize(weightTotal), uvmdiscard.FormatSize(gpuMemory))
	fmt.Printf("%-28s %12s %10s %10s\n", "", "traffic", "D2H", "time")

	for _, spec := range []struct {
		name            string
		advise, discard bool
	}{
		{"plain UVM", false, false},
		{"read-mostly weights", true, false},
		{"read-mostly + discard", true, true},
	} {
		traffic, d2h, elapsed := serve(spec.advise, spec.discard)
		fmt.Printf("%-28s %9.2f GB %7.2f GB %10v\n",
			spec.name, gb(traffic), gb(d2h), elapsed)
	}
	fmt.Println("\nread-mostly removes the weight swap-outs; discard removes dead activations")
}

func serve(advise, discard bool) (traffic, d2h uint64, elapsed uvmdiscard.Time) {
	ctx, err := uvmdiscard.NewContext(uvmdiscard.Config{
		GPU:  uvmdiscard.GenericGPU(gpuMemory),
		Link: uvmdiscard.PCIe4(),
	})
	if err != nil {
		log.Fatal(err)
	}
	s := ctx.Stream("serve")

	// Load the checkpoint.
	weights := make([]*uvmdiscard.Buffer, layerCount)
	for i := range weights {
		w, err := ctx.MallocManaged(fmt.Sprintf("w%d", i), weightTotal/layerCount)
		if err != nil {
			log.Fatal(err)
		}
		must(w.HostWrite(0, w.Size()))
		if advise {
			must(s.MemAdviseAll(w, uvmdiscard.AdviseSetReadMostly))
		}
		weights[i] = w
	}
	actA, _ := ctx.MallocManaged("act-a", actSize)
	actB, _ := ctx.MallocManaged("act-b", actSize)

	start := ctx.Elapsed()
	for r := 0; r < requests; r++ {
		src, dst := actA, actB
		for i, w := range weights {
			if discard {
				must(s.PrefetchAll(dst, uvmdiscard.ToGPU))
			}
			accesses := []uvmdiscard.Access{
				{Buf: w, Mode: uvmdiscard.Read},
				{Buf: dst, Mode: uvmdiscard.Write},
			}
			if i > 0 {
				accesses = append(accesses, uvmdiscard.Access{Buf: src, Mode: uvmdiscard.Read})
			}
			must(s.Launch(uvmdiscard.Kernel{
				Name:     fmt.Sprintf("layer%d", i),
				Compute:  ctx.ComputeForBytes(float64(w.Size())),
				Accesses: accesses,
			}))
			if discard && i > 0 {
				must(s.DiscardAll(src))
			}
			src, dst = dst, src
		}
		must(src.HostRead(0, src.Size()))
		if discard {
			must(s.DiscardAll(src))
		}
	}
	ctx.DeviceSynchronize()
	m := ctx.Metrics()
	return m.Traffic(), m.TotalBytes(uvmdiscard.D2H), ctx.Elapsed() - start
}

func gb(n uint64) float64 { return float64(n) / 1e9 }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Pipeline: a two-GPU model-parallel pipeline over the peer fabric. Stage 0
// runs on GPU 0, stage 1 on GPU 1; the activation buffer is handed off
// between them each microbatch. Without discard, every microbatch also
// bounces the *dead* activation back to GPU 0 before overwriting it — a
// redundant transfer on the GPU-to-GPU link, the same semantic gap the
// paper identifies on PCIe. With the (lazy) discard, only the useful
// forward handoff crosses the fabric.
//
// Run with:
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"uvmdiscard"
)

const (
	gpuMemory  = 128 * uvmdiscard.MiB
	activation = 32 * uvmdiscard.MiB
	microBatch = 8
)

func main() {
	fmt.Printf("two-GPU pipeline, %s activations, %d microbatches\n\n",
		uvmdiscard.FormatSize(activation), microBatch)
	fmt.Printf("%-16s %12s %14s %12s\n", "", "peer traffic", "peer saved", "time")
	for _, spec := range []struct {
		name    string
		discard bool
	}{
		{"plain UVM", false},
		{"lazy discard", true},
	} {
		peer, saved, elapsed := run(spec.discard)
		fmt.Printf("%-16s %9.2f GB %11.2f GB %12v\n", spec.name, gb(peer), gb(saved), elapsed)
	}
}

func run(discard bool) (peerBytes, saved uint64, elapsed uvmdiscard.Time) {
	ctx, err := uvmdiscard.NewContext(uvmdiscard.Config{
		GPU:      uvmdiscard.GenericGPU(gpuMemory),
		PeerGPUs: []uvmdiscard.GPUProfile{uvmdiscard.GenericGPU(gpuMemory)},
	})
	if err != nil {
		log.Fatal(err)
	}
	act, _ := ctx.MallocManaged("activation", activation)
	out, _ := ctx.MallocManaged("result", activation/4)
	s := ctx.Stream("pipe")

	for mb := 0; mb < microBatch; mb++ {
		if discard && mb > 0 {
			// The lazy flavor's mandatory pairing prefetch before the
			// buffer is repurposed on GPU 0.
			must(s.PrefetchAllTo(act, 0))
		}
		must(s.Launch(uvmdiscard.Kernel{
			Name: "stage0", GPU: 0,
			Compute:  ctx.ComputeForBytes(float64(2 * activation)),
			Accesses: []uvmdiscard.Access{{Buf: act, Mode: uvmdiscard.Write}},
		}))
		must(s.Launch(uvmdiscard.Kernel{
			Name: "stage1", GPU: 1,
			Compute: ctx.ComputeForBytes(float64(2 * activation)),
			Accesses: []uvmdiscard.Access{
				{Buf: act, Mode: uvmdiscard.Read},
				{Buf: out, Mode: uvmdiscard.ReadWrite},
			},
		}))
		if discard {
			must(s.DiscardLazyAll(act))
		}
	}
	ctx.DeviceSynchronize()
	peer, _ := ctx.Metrics().Peer()
	return peer, ctx.Metrics().PeerSaved(), ctx.Elapsed()
}

func gb(n uint64) float64 { return float64(n) / 1e9 }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

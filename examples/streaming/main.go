// Streaming: an out-of-core signal-processing pipeline (the paper's FIR
// pattern, §7.2). A dataset twice the size of GPU memory streams through
// the device in windows; each consumed input window is dead — the perfect
// discard target. The example runs the pipeline twice, without and with
// the discard directive, and prints the transfer savings.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	"uvmdiscard"
)

const (
	gpuMemory  = 256 * uvmdiscard.MiB
	windowSize = 32 * uvmdiscard.MiB
	inputSize  = 256 * uvmdiscard.MiB // input + output = 2x GPU memory
)

func main() {
	fmt.Printf("streaming %s through a %s GPU in %s windows\n\n",
		uvmdiscard.FormatSize(inputSize), uvmdiscard.FormatSize(gpuMemory),
		uvmdiscard.FormatSize(windowSize))

	base := run(false)
	disc := run(true)

	fmt.Printf("%-16s %12s %14s\n", "", "traffic", "virtual time")
	fmt.Printf("%-16s %9.2f GB %14v\n", "plain UVM", gb(base.traffic), base.elapsed)
	fmt.Printf("%-16s %9.2f GB %14v\n", "with discard", gb(disc.traffic), disc.elapsed)
	fmt.Printf("\ndiscard eliminated %.0f%% of transfers and %.0f%% of the runtime\n",
		100*(1-float64(disc.traffic)/float64(base.traffic)),
		100*(1-float64(disc.elapsed)/float64(base.elapsed)))
}

type outcome struct {
	traffic uint64
	elapsed uvmdiscard.Time
}

func run(useDiscard bool) outcome {
	ctx, err := uvmdiscard.NewContext(uvmdiscard.Config{
		GPU:  uvmdiscard.GenericGPU(gpuMemory),
		Link: uvmdiscard.PCIe4(),
	})
	if err != nil {
		log.Fatal(err)
	}
	in, err := ctx.MallocManaged("signal", inputSize)
	if err != nil {
		log.Fatal(err)
	}
	out, err := ctx.MallocManaged("filtered", inputSize)
	if err != nil {
		log.Fatal(err)
	}
	// The host produces the signal (excluded from the comparison: both
	// runs pay it identically).
	if err := in.HostWrite(0, in.Size()); err != nil {
		log.Fatal(err)
	}

	copyStream := ctx.Stream("copy")
	computeStream := ctx.Stream("compute")
	start := ctx.Elapsed()

	for off := uvmdiscard.Size(0); off < inputSize; off += windowSize {
		// Stage the next window while the previous one computes.
		must(copyStream.MemPrefetchAsync(in, off, windowSize, uvmdiscard.ToGPU))
		must(copyStream.MemPrefetchAsync(out, off, windowSize, uvmdiscard.ToGPU))
		ready := ctx.NewEvent()
		copyStream.RecordEvent(ready)
		computeStream.WaitEvent(ready)

		must(computeStream.Launch(uvmdiscard.Kernel{
			Name:    "filter",
			Compute: ctx.ComputeForBytes(float64(2 * windowSize)),
			Accesses: []uvmdiscard.Access{
				{Buf: in, Offset: off, Length: windowSize, Mode: uvmdiscard.Read},
				{Buf: out, Offset: off, Length: windowSize, Mode: uvmdiscard.Write},
			},
		}))
		if useDiscard {
			// The consumed window is dead: let the eviction process
			// reclaim it without a transfer.
			must(computeStream.DiscardAsync(in, off, windowSize))
		}
	}
	ctx.DeviceSynchronize()
	return outcome{
		traffic: ctx.Metrics().Traffic(),
		elapsed: ctx.Elapsed() - start,
	}
}

func gb(n uint64) float64 { return float64(n) / 1e9 }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

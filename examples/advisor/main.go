// Advisor: the closed optimization loop the paper's related work points at
// (§8) — profile a program, let the reuse-distance analysis diagnose where
// discards belong, apply them, and measure again.
//
// The program is a small iterative solver with a scratch buffer that dies
// every iteration. Pass 1 runs unmodified with tracing on; the advisor
// flags the scratch buffer and quantifies the wasted transfers. Pass 2
// applies the suggested discards and re-measures.
//
// Run with:
//
//	go run ./examples/advisor
package main

import (
	"fmt"
	"log"

	"uvmdiscard"
)

const (
	gpuMemory  = 96 * uvmdiscard.MiB
	stateSize  = 64 * uvmdiscard.MiB
	scratchSiz = 64 * uvmdiscard.MiB
	iterations = 10
)

func main() {
	// Pass 1: profile.
	profile, report := run(nil)
	fmt.Println("pass 1 (profiling):")
	fmt.Printf("  traffic: %.2f GB\n\n", gb(profile))
	fmt.Println(report.String())

	// Apply the advice: discard every buffer the advisor flagged.
	flagged := map[string]bool{}
	for _, rec := range report.Recommendations {
		flagged[rec.AllocName] = true
	}
	optimized, _ := run(flagged)
	fmt.Println("pass 2 (with the suggested discards):")
	fmt.Printf("  traffic: %.2f GB (%.0f%% less)\n",
		gb(optimized), 100*(1-float64(optimized)/float64(profile)))
}

// run executes the solver; buffers whose names appear in discardSet get a
// discard after their last use each iteration. It returns total traffic
// and, when profiling, the advisor's report.
func run(discardSet map[string]bool) (uint64, *uvmdiscard.AdvisorReport) {
	cfg := uvmdiscard.Config{GPU: uvmdiscard.GenericGPU(gpuMemory)}
	if discardSet == nil {
		cfg.Trace = uvmdiscard.NewTraceRecorder()
	}
	ctx, err := uvmdiscard.NewContext(cfg)
	if err != nil {
		log.Fatal(err)
	}
	state, _ := ctx.MallocManaged("state", stateSize)
	scratch, _ := ctx.MallocManaged("scratch", scratchSiz)
	s := ctx.Stream("solver")

	for i := 0; i < iterations; i++ {
		// Build this iteration's residuals into the scratch buffer.
		must(s.Launch(uvmdiscard.Kernel{
			Name:    "residuals",
			Compute: ctx.ComputeForBytes(float64(scratchSiz)),
			Accesses: []uvmdiscard.Access{
				//uvmlint:ignore discardproto -- demo: -discard state is the unsound choice this example exists to show the advisor rejecting
				{Buf: state, Mode: uvmdiscard.Read},
				{Buf: scratch, Mode: uvmdiscard.Write},
			},
		}))
		// Fold them back into the state; the scratch contents are dead.
		must(s.Launch(uvmdiscard.Kernel{
			Name:    "update",
			Compute: ctx.ComputeForBytes(float64(stateSize)),
			Accesses: []uvmdiscard.Access{
				{Buf: scratch, Mode: uvmdiscard.Read},
				//uvmlint:ignore discardproto -- demo: -discard state is the unsound choice this example exists to show the advisor rejecting
				{Buf: state, Mode: uvmdiscard.ReadWrite},
			},
		}))
		if discardSet["scratch"] {
			must(s.DiscardAll(scratch))
		}
		if discardSet["state"] {
			must(s.DiscardAll(state)) // the advisor will NOT suggest this
		}
	}
	ctx.DeviceSynchronize()

	var report *uvmdiscard.AdvisorReport
	if discardSet == nil {
		report = uvmdiscard.AdviseDiscards(ctx)
	}
	return ctx.Metrics().Traffic(), report
}

func gb(n uint64) float64 { return float64(n) / 1e9 }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

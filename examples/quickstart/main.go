// Quickstart: the paper's VectorAdd lifecycle (Listings 2 and 3) on the
// simulated UVM driver, with a functional payload so the result is real.
//
// The program allocates three unified buffers, initializes two on the
// host, prefetches them to the GPU, runs the add kernel, then repurposes
// buffer A (Listing 3): after the kernel, A's old contents are dead, so
// the program discards it before writing new data — and the simulator
// shows the transfers that skipped.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"uvmdiscard"
)

const n = 8 << 20 // 8 MiB vectors

func main() {
	ctx, err := uvmdiscard.NewContext(uvmdiscard.Config{
		GPU:  uvmdiscard.GenericGPU(24 * uvmdiscard.MiB), // tiny GPU: 12 chunks
		Link: uvmdiscard.PCIe4(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// cudaMallocManaged: one virtual address space, no explicit device
	// buffers (Listing 2).
	a, err := ctx.MallocManaged("A", n)
	if err != nil {
		log.Fatal(err)
	}
	b, _ := ctx.MallocManaged("B", n)
	c, _ := ctx.MallocManaged("C", n)

	// Generate input data on the host (CPU page faults populate memory).
	must(a.HostWrite(0, n))
	must(b.HostWrite(0, n))
	for i := 0; i < n; i++ {
		a.Data()[i] = byte(i)
		b.Data()[i] = byte(3 * i)
	}

	s := ctx.Stream("main")
	// Optional prefetches: migrate A and B, prefault C (zero-fill, no
	// transfer).
	must(s.PrefetchAll(a, uvmdiscard.ToGPU))
	must(s.PrefetchAll(b, uvmdiscard.ToGPU))
	must(s.PrefetchAll(c, uvmdiscard.ToGPU))

	must(s.Launch(uvmdiscard.Kernel{
		Name:    "vectorAdd",
		Compute: ctx.ComputeForBytes(3 * n),
		Accesses: []uvmdiscard.Access{
			{Buf: a, Mode: uvmdiscard.Read},
			{Buf: b, Mode: uvmdiscard.Read},
			{Buf: c, Mode: uvmdiscard.Write},
		},
		Fn: func() {
			for i := 0; i < n; i++ {
				c.Data()[i] = a.Data()[i] + b.Data()[i]
			}
		},
	}))

	// Listing 3: A's contents are dead after the kernel; discard before
	// repurposing it. The next prefetch maps fresh zeroed memory instead
	// of migrating the dead bytes.
	must(s.DiscardAll(a))
	must(s.PrefetchAll(a, uvmdiscard.ToGPU))
	must(s.Launch(uvmdiscard.Kernel{
		Name:    "square",
		Compute: ctx.ComputeForBytes(2 * n),
		Accesses: []uvmdiscard.Access{
			{Buf: c, Mode: uvmdiscard.Read},
			{Buf: a, Mode: uvmdiscard.Write},
		},
		Fn: func() {
			for i := 0; i < n; i++ {
				a.Data()[i] = c.Data()[i] * c.Data()[i]
			}
		},
	}))
	ctx.DeviceSynchronize()

	// Read the results back on the host.
	must(a.HostRead(0, n))
	for i := 0; i < n; i += 999_983 {
		sum := byte(i) + byte(3*i)
		if a.Data()[i] != sum*sum {
			log.Fatalf("A[%d] = %d, want %d", i, a.Data()[i], sum*sum)
		}
	}
	fmt.Println("vectorAdd + square verified on the simulated UVM driver")
	fmt.Printf("virtual runtime: %v\n", ctx.Elapsed())
	fmt.Print(ctx.Metrics().Summary())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Hashjoin: an out-of-core equi-join with real data, the paper's database
// use case (§7.4). Two tables of (key, value) pairs are joined on the
// simulated GPU through a build/probe pipeline whose intermediate buffers
// are discarded as soon as the probe consumes them. The kernels carry
// functional payloads, so the join output is computed for real and
// verified — while the simulator accounts for every byte the UVM driver
// would have moved.
//
// Run with:
//
//	go run ./examples/hashjoin
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"uvmdiscard"
)

const (
	rows      = 1 << 18 // rows per table
	rowBytes  = 8       // uint32 key + uint32 value
	tableSize = uvmdiscard.Size(rows * rowBytes)
)

func main() {
	ctx, err := uvmdiscard.NewContext(uvmdiscard.Config{
		// A GPU smaller than the working set: the join oversubscribes.
		GPU:  uvmdiscard.GenericGPU(8 * uvmdiscard.MiB),
		Link: uvmdiscard.PCIe4(),
	})
	if err != nil {
		log.Fatal(err)
	}

	r, _ := ctx.MallocManaged("table-r", tableSize)
	s, _ := ctx.MallocManaged("table-s", tableSize)
	hashTable, _ := ctx.MallocManaged("hash-table", 2*tableSize)
	out, _ := ctx.MallocManaged("result", 2*tableSize)

	// Host generates the tables: R maps key -> key*7, S maps key -> key*13
	// over an overlapping key range.
	must(r.HostWrite(0, r.Size()))
	must(s.HostWrite(0, s.Size()))
	for i := 0; i < rows; i++ {
		putRow(r.Data(), i, uint32(i), uint32(i)*7)
		putRow(s.Data(), i, uint32(i+rows/2), uint32(i+rows/2)*13)
	}

	stream := ctx.Stream("main")
	must(stream.PrefetchAll(r, uvmdiscard.ToGPU))

	// Build: hash R into the (oversized) hash table.
	buckets := make(map[uint32]uint32, rows)
	must(stream.Launch(uvmdiscard.Kernel{
		Name:    "build",
		Compute: ctx.ComputeForBytes(float64(3 * tableSize)),
		Accesses: []uvmdiscard.Access{
			{Buf: r, Mode: uvmdiscard.Read},
			{Buf: hashTable, Mode: uvmdiscard.Write},
		},
		Fn: func() {
			for i := 0; i < rows; i++ {
				k, v := getRow(r.Data(), i)
				buckets[k] = v
			}
		},
	}))
	// R is consumed: discard it before the probe phase needs its memory.
	must(stream.DiscardAll(r))

	// Probe: stream S against the hash table, emitting joined rows.
	must(stream.PrefetchAll(s, uvmdiscard.ToGPU))
	matches := 0
	must(stream.Launch(uvmdiscard.Kernel{
		Name:    "probe",
		Compute: ctx.ComputeForBytes(float64(4 * tableSize)),
		Accesses: []uvmdiscard.Access{
			{Buf: s, Mode: uvmdiscard.Read},
			{Buf: hashTable, Mode: uvmdiscard.Read, Scatter: true},
			{Buf: out, Mode: uvmdiscard.Write},
		},
		Fn: func() {
			for i := 0; i < rows; i++ {
				k, sv := getRow(s.Data(), i)
				if rv, ok := buckets[k]; ok {
					putRow(out.Data(), matches, k, rv+sv)
					matches++
				}
			}
		},
	}))
	// The probe consumed S and the hash table: both are dead.
	must(stream.DiscardAll(s))
	must(stream.DiscardAll(hashTable))
	ctx.DeviceSynchronize()

	// Pull the joined result back and verify it.
	must(out.HostRead(0, out.Size()))
	if matches != rows/2 {
		log.Fatalf("join produced %d matches, want %d", matches, rows/2)
	}
	for i := 0; i < matches; i += 10007 {
		k, v := getRow(out.Data(), i)
		if v != k*7+k*13 {
			log.Fatalf("row %d: key %d joined value %d, want %d", i, k, v, k*20)
		}
	}
	fmt.Printf("joined %d rows -> %d matches, verified\n", rows, matches)
	fmt.Printf("virtual runtime: %v\n", ctx.Elapsed())
	h2dSaved, d2hSaved := ctx.Metrics().Saved()
	fmt.Printf("PCIe traffic: %.1f MB; avoided by discard: %.1f MB\n",
		float64(ctx.Metrics().Traffic())/1e6, float64(h2dSaved+d2hSaved)/1e6)
}

func putRow(data []byte, i int, k, v uint32) {
	binary.LittleEndian.PutUint32(data[i*rowBytes:], k)
	binary.LittleEndian.PutUint32(data[i*rowBytes+4:], v)
}

func getRow(data []byte, i int) (k, v uint32) {
	return binary.LittleEndian.Uint32(data[i*rowBytes:]),
		binary.LittleEndian.Uint32(data[i*rowBytes+4:])
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

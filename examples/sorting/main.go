// Sorting: an out-of-core radix sort that really sorts (the functional
// version of the paper's §7.3 benchmark). Keys ping-pong between the input
// array and a temporary buffer, one digit per round; after each kernel the
// source buffer's contents are dead — the discard target. The payloads run
// a byte-radix sort over real uint32 keys, verified at the end, while the
// simulator accounts for the transfers UVM would have made.
//
// Run with:
//
//	go run ./examples/sorting
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"uvmdiscard"
)

const (
	keyCount  = 1 << 20 // 4 MiB of uint32 keys
	keyBytes  = 4
	arraySize = uvmdiscard.Size(keyCount * keyBytes)
	gpuMemory = 6 * uvmdiscard.MiB // smaller than keys+temp: oversubscribed
)

func main() {
	ctx, err := uvmdiscard.NewContext(uvmdiscard.Config{
		GPU:  uvmdiscard.GenericGPU(gpuMemory),
		Link: uvmdiscard.PCIe4(),
	})
	if err != nil {
		log.Fatal(err)
	}
	keys, _ := ctx.MallocManaged("keys", arraySize)
	tmp, _ := ctx.MallocManaged("tmp", arraySize)

	// Host generates pseudo-random keys.
	must(keys.HostWrite(0, keys.Size()))
	seed := uint32(0x2545F491)
	for i := 0; i < keyCount; i++ {
		seed ^= seed << 13
		seed ^= seed >> 17
		seed ^= seed << 5
		binary.LittleEndian.PutUint32(keys.Data()[i*keyBytes:], seed)
	}

	s := ctx.Stream("sort")
	src, dst := keys, tmp
	for digit := 0; digit < 4; digit++ {
		shift := uint(8 * digit)
		srcBuf, dstBuf := src, dst
		must(s.PrefetchAll(dstBuf, uvmdiscard.ToGPU))
		must(s.Launch(uvmdiscard.Kernel{
			Name:    fmt.Sprintf("radix-pass-%d", digit),
			Compute: ctx.ComputeForBytes(float64(2 * arraySize)),
			Accesses: []uvmdiscard.Access{
				{Buf: srcBuf, Mode: uvmdiscard.Read, Scatter: true},
				{Buf: dstBuf, Mode: uvmdiscard.Write, Scatter: true},
			},
			Fn: func() { countingSortPass(srcBuf.Data(), dstBuf.Data(), shift) },
		}))
		// The source partition is dead: its keys moved to the destination.
		must(s.DiscardAll(srcBuf))
		src, dst = dst, src
	}
	ctx.DeviceSynchronize()

	// Pull the sorted array back and verify.
	must(src.HostRead(0, src.Size()))
	prev := uint32(0)
	for i := 0; i < keyCount; i++ {
		k := binary.LittleEndian.Uint32(src.Data()[i*keyBytes:])
		if k < prev {
			log.Fatalf("not sorted at %d: %d < %d", i, k, prev)
		}
		prev = k
	}
	fmt.Printf("sorted %d keys through a %s GPU (array is 2x %s)\n",
		keyCount, uvmdiscard.FormatSize(gpuMemory), uvmdiscard.FormatSize(arraySize))
	fmt.Printf("virtual runtime: %v\n", ctx.Elapsed())
	h2d, d2h := ctx.Metrics().Saved()
	fmt.Printf("PCIe traffic: %.1f MB; avoided by discard: %.1f MB\n",
		float64(ctx.Metrics().Traffic())/1e6, float64(h2d+d2h)/1e6)
}

// countingSortPass performs one stable byte-radix pass from src to dst.
func countingSortPass(src, dst []byte, shift uint) {
	var counts [256]int
	for i := 0; i < keyCount; i++ {
		b := byte(binary.LittleEndian.Uint32(src[i*keyBytes:]) >> shift)
		counts[b]++
	}
	var offsets [256]int
	sum := 0
	for b := 0; b < 256; b++ {
		offsets[b] = sum
		sum += counts[b]
	}
	for i := 0; i < keyCount; i++ {
		k := binary.LittleEndian.Uint32(src[i*keyBytes:])
		b := byte(k >> shift)
		binary.LittleEndian.PutUint32(dst[offsets[b]*keyBytes:], k)
		offsets[b]++
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Deeplearning: trains one of the paper's networks at a configurable batch
// size under every memory-management system and prints the comparison —
// the interactive version of Figures 5–7 and Table 1.
//
// Run with:
//
//	go run ./examples/deeplearning                      # ResNet-53, batch sweep
//	go run ./examples/deeplearning -model vgg16 -batch 100
//	go run ./examples/deeplearning -gpu gtx1070 -model vgg16 -batch 60
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"uvmdiscard/internal/dnn"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/lms"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/workloads"
)

func main() {
	var (
		model = flag.String("model", "resnet53", "vgg16 | darknet19 | resnet53 | rnn")
		batch = flag.Int("batch", 0, "batch size (0 = sweep through the paper's range)")
		gpu   = flag.String("gpu", "3080ti", "3080ti | gtx1070")
	)
	flag.Parse()

	spec := pickModel(*model)
	p := workloads.Platform{GPU: gpudev.RTX3080Ti(), Gen: pcie.Gen4}
	if strings.EqualFold(*gpu, "gtx1070") {
		p = workloads.Platform{GPU: gpudev.GTX1070(), Gen: pcie.Gen3}
	}

	batches := []int{*batch}
	if *batch == 0 {
		batches = map[string][]int{
			"VGG-16":     {40, 75, 110, 150},
			"Darknet-19": {100, 171, 260, 360},
			"ResNet-53":  {30, 56, 100, 150},
			"RNN":        {100, 172, 240, 300},
		}[spec.Name]
	}

	fmt.Printf("training %s on %s (%s)\n", spec.Name, p.GPU.Name, p.Gen)
	fmt.Printf("capacity %.1f GB; footprint slope %.0f MB/sample\n\n",
		float64(p.GPU.MemoryBytes)/1e9, float64(spec.PerSampleBytes())/1e6)
	fmt.Printf("%-7s %-10s | %-18s %-18s %-18s %-18s %-18s\n",
		"batch", "footprint", "No-UVM", "UVM-opt", "UvmDiscard", "UvmDiscardLazy", "PyTorch-LMS")

	for _, b := range batches {
		row := fmt.Sprintf("%-7d %-10s |", b,
			fmt.Sprintf("%.1f GB", float64(spec.FootprintBytes(b))/1e9))
		for _, sys := range []workloads.System{
			workloads.NoUVM, workloads.UVMOpt, workloads.UvmDiscard, workloads.UvmDiscardLazy,
		} {
			r, err := dnn.Train(p, sys, dnn.TrainConfig{Model: spec, Batch: b})
			if err != nil {
				row += fmt.Sprintf(" %-18s", "does not fit")
				continue
			}
			row += fmt.Sprintf(" %-18s", cell(r))
		}
		r, err := lms.Train(p, lms.Config{Model: spec, Batch: b})
		if err != nil {
			row += fmt.Sprintf(" %-18s", "does not fit")
		} else {
			row += fmt.Sprintf(" %-18s", cell(r))
		}
		fmt.Println(row)
	}
	fmt.Println("\ncells are throughput img/s / PCIe traffic GB")
}

func cell(r dnn.TrainResult) string {
	return fmt.Sprintf("%.0f img/s %6.1fGB", r.Throughput, r.TrafficGB())
}

func pickModel(name string) *dnn.ModelSpec {
	switch strings.ToLower(name) {
	case "vgg16", "vgg-16":
		return dnn.VGG16()
	case "darknet19", "darknet-19":
		return dnn.Darknet19()
	case "resnet53", "resnet-53":
		return dnn.ResNet53()
	case "rnn":
		return dnn.RNN()
	}
	log.Fatalf("unknown model %q", name)
	return nil
}

package uvmdiscard_test

// One testing.B benchmark per table and figure in the paper, plus the
// design-choice ablations from DESIGN.md §6. Each benchmark executes the
// corresponding experiment end to end and reports the headline quantity as
// a custom metric. Benchmarks run the quick (scaled-down) configurations
// so `go test -bench=.` completes in seconds; the full-scale reproduction
// with the paper's sizes is `go run ./cmd/paperbench`.

import (
	"strconv"
	"strings"
	"testing"

	"uvmdiscard/internal/experiments"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) *experiments.Table {
	b.Helper()
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	var tbl *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = e.Run(experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

// reportCell parses a numeric cell like "5.66" or the second half of
// "0.51/0.52" and reports it as a benchmark metric.
func reportCell(b *testing.B, tbl *experiments.Table, rowName string, col int, metric string) {
	b.Helper()
	for _, row := range tbl.Rows {
		if row[0] != rowName {
			continue
		}
		cell := row[col]
		if i := strings.IndexByte(cell, '/'); i >= 0 {
			cell = cell[i+1:]
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
		if err == nil {
			b.ReportMetric(v, metric)
		}
		return
	}
}

func BenchmarkTable1_VGG16GTX1070(b *testing.B) {
	benchExperiment(b, "T1")
}

func BenchmarkTable2_APICosts(b *testing.B) {
	tbl := benchExperiment(b, "T2")
	reportCell(b, tbl, "UvmDiscard", 4, "discard-128MB-µs")
}

func BenchmarkTable3_FIRRuntime(b *testing.B) {
	tbl := benchExperiment(b, "T3")
	reportCell(b, tbl, "UvmDiscard", 2, "norm-runtime-200%")
}

func BenchmarkTable4_FIRTraffic(b *testing.B) {
	tbl := benchExperiment(b, "T4")
	reportCell(b, tbl, "UvmDiscard", 2, "traffic-GB-200%")
}

func BenchmarkTable5_RadixRuntime(b *testing.B) {
	tbl := benchExperiment(b, "T5")
	reportCell(b, tbl, "UvmDiscard", 1, "norm-runtime-fits")
}

func BenchmarkTable6_RadixTraffic(b *testing.B) {
	tbl := benchExperiment(b, "T6")
	reportCell(b, tbl, "UvmDiscard", 2, "traffic-GB-200%")
}

func BenchmarkTable7_HashJoinRuntime(b *testing.B) {
	tbl := benchExperiment(b, "T7")
	reportCell(b, tbl, "UvmDiscard", 2, "norm-runtime-200%")
}

func BenchmarkTable8_HashJoinTraffic(b *testing.B) {
	tbl := benchExperiment(b, "T8")
	reportCell(b, tbl, "UvmDiscard", 2, "traffic-GB-200%")
}

func BenchmarkFigure3_ResNetRMT(b *testing.B) {
	tbl := benchExperiment(b, "F3")
	// Report the redundancy fraction of the largest batch.
	if len(tbl.Rows) > 0 {
		last := tbl.Rows[len(tbl.Rows)-1]
		reportCell(b, tbl, last[0], len(last)-1, "redundant-%")
	}
}

func BenchmarkFigure4_PrefetchThroughput(b *testing.B) {
	tbl := benchExperiment(b, "F4")
	if len(tbl.Rows) > 0 {
		last := tbl.Rows[len(tbl.Rows)-1]
		reportCell(b, tbl, last[0], 2, "pcie4-GBps")
	}
}

func BenchmarkFigure5_DLTraffic(b *testing.B) {
	benchExperiment(b, "F5")
}

func BenchmarkFigure6_DLThroughputPCIe4(b *testing.B) {
	benchExperiment(b, "F6")
}

func BenchmarkFigure7_DLThroughputPCIe3(b *testing.B) {
	benchExperiment(b, "F7")
}

func BenchmarkAblation_EvictionOrder(b *testing.B) {
	benchExperiment(b, "A1")
}

func BenchmarkAblation_ImmediateReclaim(b *testing.B) {
	benchExperiment(b, "A2")
}

func BenchmarkAblation_PreparedTracking(b *testing.B) {
	benchExperiment(b, "A3")
}

func BenchmarkAblation_Granularity(b *testing.B) {
	benchExperiment(b, "A4")
}

func BenchmarkExtension_CoherentRemote(b *testing.B) {
	benchExperiment(b, "X1")
}

func BenchmarkExtension_InferenceAdvice(b *testing.B) {
	benchExperiment(b, "X2")
}

func BenchmarkExtension_MultiGPUPipeline(b *testing.B) {
	benchExperiment(b, "X3")
}

func BenchmarkExtension_FreeVsDiscard(b *testing.B) {
	benchExperiment(b, "X4")
}

func BenchmarkExtension_RecomputeVsDiscard(b *testing.B) {
	benchExperiment(b, "X5")
}

func BenchmarkAblation_FaultBatch(b *testing.B) {
	benchExperiment(b, "A5")
}

func BenchmarkExtension_DataParallel(b *testing.B) {
	benchExperiment(b, "X6")
}

func BenchmarkExtension_GraphTraversal(b *testing.B) {
	benchExperiment(b, "X7")
}

// Package uvmdiscard is a simulator of NVIDIA's UVM (unified virtual
// memory) driver with the data-discard directive proposed in
//
//	Zhu, Cox, Vesely, Hairgrove, Cox, Rixner:
//	"UVM Discard: Eliminating Redundant Memory Transfers for Accelerators",
//	IISWC 2022.
//
// The simulator models the driver's state machines — fault-driven
// migration, prefetching, eviction with the free/unused/used/discarded
// page queues, 2 MiB chunk management — on a virtual timeline, together
// with a CUDA-like runtime (streams, managed buffers, kernels with
// block-granular access traces). Two discard flavors are implemented:
// the eager UvmDiscard, which destroys mappings immediately, and
// UvmDiscardLazy, which clears software dirty bits and requires a pairing
// prefetch before reuse.
//
// This package is the public facade: it re-exports the runtime and the
// driver configuration types. The paper's workloads, model zoo, and
// experiment harness live under internal/ and are driven by the cmd/
// binaries (cmd/paperbench regenerates every table and figure).
//
// Minimal use:
//
//	ctx, _ := uvmdiscard.NewContext(uvmdiscard.Config{GPU: uvmdiscard.RTX3080Ti()})
//	buf, _ := ctx.MallocManaged("data", 64<<20)
//	s := ctx.Stream("main")
//	s.PrefetchAll(buf, uvmdiscard.ToGPU)
//	s.Launch(uvmdiscard.Kernel{Name: "consume", Accesses: []uvmdiscard.Access{
//		{Buf: buf, Mode: uvmdiscard.Read},
//	}})
//	s.DiscardAll(buf) // the contents are dead: skip future transfers
package uvmdiscard

import (
	"uvmdiscard/internal/advisor"
	"uvmdiscard/internal/core"
	"uvmdiscard/internal/cuda"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/hostmem"
	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/trace"
	"uvmdiscard/internal/units"
)

// Runtime types (CUDA-like API).
type (
	// Context owns one simulated GPU, its UVM driver, and the timeline.
	Context = cuda.Context
	// Stream is an in-order queue of device operations.
	Stream = cuda.Stream
	// Buffer is a unified-memory allocation.
	Buffer = cuda.Buffer
	// DeviceBuffer is an explicit (non-UVM) device allocation.
	DeviceBuffer = cuda.DeviceBuffer
	// Kernel is a device kernel launch: compute time + access trace.
	Kernel = cuda.Kernel
	// Access declares one range a kernel touches.
	Access = cuda.Access
	// Event orders operations across streams.
	Event = cuda.Event
	// Location is a prefetch destination.
	Location = cuda.Location
)

// Driver-level types.
type (
	// Config assembles a simulated platform.
	Config = core.Config
	// Params holds driver policy knobs (eviction order, reclamation
	// ablations, fault batching).
	Params = core.Params
	// Driver is the UVM driver model itself.
	Driver = core.Driver
	// AccessMode says whether an access reads, overwrites, or both.
	AccessMode = core.AccessMode
	// Advice is a cudaMemAdvise-style placement hint.
	Advice = core.Advice
	// APICosts models host-side CUDA API call costs (Table 2).
	APICosts = core.APICosts
	// GPUProfile describes a GPU's capacity and rate parameters.
	GPUProfile = gpudev.Profile
	// Metrics collects transfer/fault/eviction instrumentation.
	Metrics = metrics.Collector
	// TraceRecorder records driver events for RMT analysis.
	TraceRecorder = trace.Recorder
	// RMTAnalysis classifies recorded transfers as required or redundant.
	RMTAnalysis = trace.Analysis
	// AdvisorReport ranks buffers by the transfer volume a discard would
	// have saved (the §8 "compiler-assisted insertion" extension).
	AdvisorReport = advisor.Report
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Size is a byte count.
	Size = units.Size
)

// Access modes.
const (
	// Read consumes the range's existing contents.
	Read = core.Read
	// Write overwrites the range without reading it.
	Write = core.Write
	// ReadWrite reads then updates the range.
	ReadWrite = core.ReadWrite
)

// Memory advice (cudaMemAdvise analogs).
const (
	// AdviseSetPreferredCPU pins a range's home to host DRAM (GPU maps it
	// remotely).
	AdviseSetPreferredCPU = core.AdviseSetPreferredCPU
	// AdviseSetPreferredGPU pins a range's home to GPU memory (eviction
	// avoids it).
	AdviseSetPreferredGPU = core.AdviseSetPreferredGPU
	// AdviseUnsetPreferred clears the preferred location.
	AdviseUnsetPreferred = core.AdviseUnsetPreferred
	// AdviseSetReadMostly allows read-only duplication on both processors.
	AdviseSetReadMostly = core.AdviseSetReadMostly
	// AdviseUnsetReadMostly clears the read-mostly hint.
	AdviseUnsetReadMostly = core.AdviseUnsetReadMostly
)

// Prefetch destinations.
const (
	// ToGPU prefetches toward the device.
	ToGPU = cuda.ToGPU
	// ToCPU prefetches toward the host.
	ToCPU = cuda.ToCPU
)

// Transfer directions for Metrics queries.
const (
	// H2D is host-to-device traffic.
	H2D = metrics.H2D
	// D2H is device-to-host traffic.
	D2H = metrics.D2H
)

// Transfer causes for Metrics queries.
const (
	// CauseFault is fault-driven migration.
	CauseFault = metrics.CauseFault
	// CausePrefetch is cudaMemPrefetchAsync migration.
	CausePrefetch = metrics.CausePrefetch
	// CauseEviction is swap-out under memory pressure.
	CauseEviction = metrics.CauseEviction
	// CauseMemcpy is an explicit copy (No-UVM).
	CauseMemcpy = metrics.CauseMemcpy
	// CauseRemote is cache-coherent remote access over the link.
	CauseRemote = metrics.CauseRemote
)

// Size units.
const (
	// KiB is 1024 bytes.
	KiB = units.KiB
	// MiB is 1024 KiB.
	MiB = units.MiB
	// GiB is 1024 MiB.
	GiB = units.GiB
	// BlockSize is the driver's 2 MiB management granularity.
	BlockSize = units.BlockSize
	// PageSize is the 4 KiB small page.
	PageSize = units.PageSize
)

// NewContext builds a simulated platform and its CUDA-like runtime.
func NewContext(cfg Config) (*Context, error) { return cuda.NewContext(cfg) }

// DefaultParams returns the driver policy configuration that reproduces
// the paper's system.
func DefaultParams() Params { return core.DefaultParams() }

// DefaultAPICosts returns the CUDA API cost models calibrated on Table 2.
func DefaultAPICosts() *APICosts { return core.DefaultAPICosts() }

// RTX3080Ti is the paper's primary evaluation GPU (§7.1).
func RTX3080Ti() GPUProfile { return gpudev.RTX3080Ti() }

// GTX1070 is the GPU used for Table 1.
func GTX1070() GPUProfile { return gpudev.GTX1070() }

// A100 is the data-center GPU whose bandwidth figures §2.3 quotes.
func A100() GPUProfile { return gpudev.A100() }

// NVLink returns the cache-coherent NVLink-class host interconnect model
// (§2.3): pair with Params.RemoteAccessMigrateThreshold for the
// remote-access mode.
func NVLink() *pcie.Link { return pcie.Preset(pcie.GenNVLink) }

// GenericGPU returns a synthetic GPU with the given memory capacity —
// convenient for small experiments.
func GenericGPU(memory Size) GPUProfile { return gpudev.Generic(memory) }

// PCIe3 returns the PCIe 3.0 x16 interconnect model (~12.3 GB/s).
func PCIe3() *pcie.Link { return pcie.Preset(pcie.Gen3) }

// PCIe4 returns the PCIe 4.0 x16 interconnect model (~24.7 GB/s).
func PCIe4() *pcie.Link { return pcie.Preset(pcie.Gen4) }

// DefaultHost returns the paper's 64 GB host DRAM model.
func DefaultHost() *hostmem.Host { return hostmem.Default() }

// NewTraceRecorder returns an RMT trace recorder to pass in Config.Trace.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// AnalyzeRMT classifies every recorded transfer as required or redundant —
// the analysis behind the paper's Figure 3.
func AnalyzeRMT(r *TraceRecorder) RMTAnalysis { return trace.Analyze(r) }

// AdviseDiscards scans a profiling trace for buffers whose transfers moved
// dead data and recommends discard insertion points — the extension the
// paper's related work sketches (§8). The context's VA space resolves
// buffer names.
func AdviseDiscards(ctx *Context) *AdvisorReport {
	space := ctx.Driver().Space()
	return advisor.Analyze(ctx.Driver().Trace(), func(id int) string {
		if a := space.ByID(id); a != nil {
			return a.Name()
		}
		return ""
	})
}

// FormatSize renders a byte count ("2 MiB").
func FormatSize(n Size) string { return units.Format(n) }

// Package lms implements the PyTorch-LMS (large-model-support) baseline of
// Table 1: manual per-layer swapping with a caching allocator — the
// Listing 5 approach. Instead of a unified address space, every layer's
// device buffers are staged in before use and staged out after, through
// explicit synchronous copies interleaved with the layer kernels. The
// caching allocator removes the repeated cudaMalloc/cudaFree cost (the
// approaches cost 1,806 and 2,509 lines of code in PyTorch), but the
// transfers themselves remain: LMS always moves *useful* data both ways,
// so its PCIe traffic is enormous and nearly independent of whether the
// GPU is actually oversubscribed — the paper measures 112–150 GB where
// UVM+discard moves 2–58 GB.
package lms

import (
	"fmt"

	"uvmdiscard/internal/cuda"
	"uvmdiscard/internal/dnn"
	"uvmdiscard/internal/runctl"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
)

// Config mirrors dnn.TrainConfig.
type Config struct {
	Model *dnn.ModelSpec
	Batch int
	Steps int
}

// Train runs the LMS-style training loop and reports throughput/traffic.
//
// Per step (Listing 5): stage the batch in; for each layer forward — stage
// the weights in, compute, stage the activations out; for each layer
// backward — stage the activations and weights back in, compute, stage the
// updated weights out. The caching allocator keeps a working set of device
// buffers so no allocation calls appear in the steady state; transfers are
// synchronous with the compute stream, which is why LMS cannot hide them.
func Train(p workloads.Platform, cfg Config) (out dnn.TrainResult, err error) {
	defer runctl.Recover(&err)
	if cfg.Model == nil || cfg.Batch <= 0 {
		return dnn.TrainResult{}, fmt.Errorf("lms: invalid config %+v", cfg)
	}
	if err := cfg.Model.Validate(); err != nil {
		return dnn.TrainResult{}, err
	}
	steps := cfg.Steps
	if steps <= 0 {
		steps = dnn.DefaultSteps
	}
	m := cfg.Model
	footprint := m.FootprintBytes(cfg.Batch)
	ctx, err := p.NewContext(footprint)
	if err != nil {
		return dnn.TrainResult{}, err
	}

	// The caching allocator holds the largest consecutive-layer working
	// set on the device. If even that does not fit, LMS cannot run.
	var peak units.Size
	batch := units.Size(cfg.Batch)
	for i, l := range m.Layers {
		var prev units.Size
		if i > 0 {
			prev = batch * m.Layers[i-1].OutPerSample
		} else {
			prev = batch * m.SampleBytes
		}
		set := prev + batch*(l.OutPerSample+l.StashPerSample) +
			3*l.WeightBytes + l.WorkspaceFixed + batch*m.MaxOutPerSample()
		if set > peak {
			peak = set
		}
	}
	cache, err := ctx.Malloc(units.AlignUp(peak, units.BlockSize))
	if err != nil {
		return dnn.TrainResult{}, fmt.Errorf("lms: working set %s does not fit: %w",
			units.Format(peak), err)
	}
	defer cache.Free()

	stream := ctx.Stream("main")
	layerFlopsTime := func(l dnn.LayerSpec, dir float64) sim.Time {
		flops := l.FlopsPerSample * float64(cfg.Batch) * dir
		tflops := ctx.Driver().Device().Profile().ComputeTFLOPS * m.Efficiency
		return sim.Time(flops / (tflops * 1e12) * float64(sim.Second))
	}

	// Step-invariant kernel specs, built once instead of per mini-batch.
	fwdKernels := make([]cuda.Kernel, len(m.Layers))
	bwdKernels := make([]cuda.Kernel, len(m.Layers))
	for i, l := range m.Layers {
		fwdKernels[i] = cuda.Kernel{Name: "fwd-" + l.Name, Compute: layerFlopsTime(l, 1)}
		bwdKernels[i] = cuda.Kernel{
			Name:    "bwd-" + l.Name,
			Compute: layerFlopsTime(l, 2) + ctx.ComputeForBytes(float64(3*l.WeightBytes)),
		}
	}

	var measureFrom sim.Time
	for step := 0; step < steps; step++ {
		if step == 1 {
			ctx.DeviceSynchronize()
			measureFrom = ctx.Elapsed()
		}
		// Stage the batch in.
		stream.MemcpyHostToDevice(batch * (m.SampleBytes + m.LabelBytes))

		// Forward: weights in, compute, activations + stash out (they are
		// needed again in backward but do not fit on the device).
		for i, l := range m.Layers {
			stream.MemcpyHostToDevice(l.WeightBytes)
			if err := stream.Launch(fwdKernels[i]); err != nil {
				return dnn.TrainResult{}, err
			}
			stream.MemcpyDeviceToHost(batch * (l.OutPerSample + l.StashPerSample))
		}

		// Backward: activations, stash and weights back in; compute;
		// updated weights out.
		for i := len(m.Layers) - 1; i >= 0; i-- {
			l := m.Layers[i]
			stream.MemcpyHostToDevice(batch * (l.OutPerSample + l.StashPerSample))
			stream.MemcpyHostToDevice(l.WeightBytes)
			if err := stream.Launch(bwdKernels[i]); err != nil {
				return dnn.TrainResult{}, err
			}
			stream.MemcpyDeviceToHost(l.WeightBytes)
		}
	}
	ctx.DeviceSynchronize()

	res := workloads.CollectSince(workloads.PyTorchLMS, ctx, 0)
	elapsed := ctx.Elapsed() - measureFrom
	tr := dnn.TrainResult{Result: res, Footprint: footprint}
	if measured := steps - 1; elapsed > 0 && measured > 0 {
		tr.Throughput = float64(cfg.Batch*measured) / elapsed.Seconds()
	}
	return tr, nil
}

package lms

import (
	"testing"

	"uvmdiscard/internal/dnn"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
)

func tinyModel() *dnn.ModelSpec {
	m := &dnn.ModelSpec{
		Name:        "tiny",
		SampleBytes: 256 * units.KiB,
		LabelBytes:  4 * units.KiB,
		Efficiency:  0.4,
		Layers: []dnn.LayerSpec{
			{Name: "l1", OutPerSample: 2 * units.MiB, WeightBytes: 4 * units.MiB, FlopsPerSample: 2e8},
			{Name: "l2", OutPerSample: 2 * units.MiB, WeightBytes: 8 * units.MiB, FlopsPerSample: 4e8},
			{Name: "l3", OutPerSample: units.MiB, WeightBytes: 8 * units.MiB, FlopsPerSample: 4e8},
		},
	}
	if err := m.Calibrate(10, 220*units.MiB, 50, 800*units.MiB); err != nil {
		panic(err)
	}
	return m
}

func tinyPlatform() workloads.Platform {
	return workloads.Platform{GPU: gpudev.Generic(512 * units.MiB), Gen: pcie.Gen3}
}

func TestLMSTrafficIsAlwaysHuge(t *testing.T) {
	// LMS moves everything per step regardless of pressure — its defining
	// weakness (Table 1).
	m := tinyModel()
	r, err := Train(tinyPlatform(), Config{Model: m, Batch: 8, Steps: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 4 steps x (weights x3 + activations x2 + inputs) well exceeds the
	// footprint even though batch 8 would fit on the GPU.
	if r.TrafficBytes < uint64(m.FootprintBytes(8)) {
		t.Errorf("LMS traffic %.3f GB suspiciously low", r.TrafficGB())
	}
	if r.Throughput <= 0 {
		t.Error("no throughput")
	}
}

func TestLMSThroughputFlatAcrossPressure(t *testing.T) {
	m := tinyModel()
	small, err := Train(tinyPlatform(), Config{Model: m, Batch: 10, Steps: 4})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Train(tinyPlatform(), Config{Model: m, Batch: 50, Steps: 4})
	if err != nil {
		t.Fatal(err)
	}
	ratio := big.Throughput / small.Throughput
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("LMS throughput should be roughly flat in batch size, ratio %.2f", ratio)
	}
}

// At oversubscription, UVM with discard beats LMS in both throughput and
// traffic (Table 1's bottom-right corner).
func TestDiscardBeatsLMSWhenOversubscribed(t *testing.T) {
	m := tinyModel()
	p := tinyPlatform()
	cfg := Config{Model: m, Batch: 50, Steps: 4}
	lmsR, err := Train(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	disc, err := dnn.Train(p, workloads.UvmDiscard,
		dnn.TrainConfig{Model: m, Batch: 50, Steps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if disc.Throughput <= lmsR.Throughput {
		t.Errorf("discard %.1f img/s should beat LMS %.1f img/s",
			disc.Throughput, lmsR.Throughput)
	}
	if disc.TrafficBytes >= lmsR.TrafficBytes {
		t.Errorf("discard traffic %.2f GB should undercut LMS %.2f GB",
			disc.TrafficGB(), lmsR.TrafficGB())
	}
}

func TestLMSInvalidConfig(t *testing.T) {
	if _, err := Train(tinyPlatform(), Config{}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Train(tinyPlatform(), Config{Model: tinyModel(), Batch: -1}); err == nil {
		t.Error("negative batch accepted")
	}
}

func TestLMSWorkingSetMustFit(t *testing.T) {
	// A single layer whose working set exceeds the GPU defeats even LMS.
	m := &dnn.ModelSpec{
		Name:        "huge-layer",
		SampleBytes: units.MiB,
		LabelBytes:  4 * units.KiB,
		Efficiency:  0.4,
		Layers: []dnn.LayerSpec{
			{Name: "big", OutPerSample: 64 * units.MiB, WeightBytes: 16 * units.MiB, FlopsPerSample: 1e9},
		},
	}
	if _, err := Train(tinyPlatform(), Config{Model: m, Batch: 32}); err == nil {
		t.Error("oversized single-layer working set accepted")
	}
}

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client speaks the coordinator's HTTP/JSON protocol. It is what the worker
// mode of uvmsimd uses, and what the fleet chaos harness drives directly.
// A Client is safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the coordinator at baseURL (e.g.
// "http://127.0.0.1:8080"). Requests carry a short timeout: every protocol
// verb is a small exchange, and a worker must notice a dead coordinator
// quickly rather than hang a lease renewal.
func NewClient(baseURL string) *Client {
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		hc:   &http.Client{Timeout: 10 * time.Second},
	}
}

// do sends one JSON exchange and returns the response status and body.
func (c *Client) do(ctx context.Context, method, path string, in any) (int, []byte, error) {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return 0, nil, err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return 0, nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

// serverMsg digs the error string out of an {"error": ...} body.
func serverMsg(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(body))
}

// Register announces the worker and its declared capacity.
func (c *Client) Register(ctx context.Context, name string, capacity int, memBytes uint64) error {
	code, body, err := c.do(ctx, http.MethodPost, "/v1/workers/register",
		registerReq{Name: name, Capacity: capacity, MemBytes: memBytes})
	if err != nil {
		return err
	}
	if code != http.StatusNoContent {
		return fmt.Errorf("fleet: register: HTTP %d: %s", code, serverMsg(body))
	}
	return nil
}

// Heartbeat tells the coordinator the worker is alive.
func (c *Client) Heartbeat(ctx context.Context, name string) error {
	code, body, err := c.do(ctx, http.MethodPost, "/v1/workers/heartbeat", workerReq{Worker: name})
	if err != nil {
		return err
	}
	switch code {
	case http.StatusNoContent:
		return nil
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", ErrUnknownWorker, serverMsg(body))
	default:
		return fmt.Errorf("fleet: heartbeat: HTTP %d: %s", code, serverMsg(body))
	}
}

// Lease polls for a job. A nil grant with a nil error means nothing to do
// right now (queue empty, at capacity, or placement deferred the poll).
func (c *Client) Lease(ctx context.Context, name string) (*LeaseGrant, error) {
	code, body, err := c.do(ctx, http.MethodPost, "/v1/lease", workerReq{Worker: name})
	if err != nil {
		return nil, err
	}
	switch code {
	case http.StatusOK:
		var g LeaseGrant
		if err := json.Unmarshal(body, &g); err != nil {
			return nil, fmt.Errorf("fleet: lease: %w", err)
		}
		return &g, nil
	case http.StatusNoContent:
		return nil, nil
	case http.StatusNotFound:
		return nil, fmt.Errorf("%w: %s", ErrUnknownWorker, serverMsg(body))
	default:
		return nil, fmt.Errorf("fleet: lease: HTTP %d: %s", code, serverMsg(body))
	}
}

// Renew extends the lease on (jobID, attempt). ErrStale means the lease is
// gone and the worker must abandon the run.
func (c *Client) Renew(ctx context.Context, name, jobID string, attempt int) error {
	code, body, err := c.do(ctx, http.MethodPost, "/v1/lease/renew",
		renewReq{Worker: name, JobID: jobID, Attempt: attempt})
	if err != nil {
		return err
	}
	switch code {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		return fmt.Errorf("%w: %s", ErrStale, serverMsg(body))
	default:
		return fmt.Errorf("fleet: renew: HTTP %d: %s", code, serverMsg(body))
	}
}

// Complete reports the outcome of an attempt; errMsg empty means success
// with output holding the rendered result. The returned status is the
// coordinator's idempotency verdict.
func (c *Client) Complete(ctx context.Context, name, jobID string, attempt int, output, errMsg string) (CompleteStatus, error) {
	code, body, err := c.do(ctx, http.MethodPost, "/v1/complete",
		completeReq{Worker: name, JobID: jobID, Attempt: attempt, Output: output, Error: errMsg})
	if err != nil {
		return "", err
	}
	switch code {
	case http.StatusOK:
		var res struct {
			Status CompleteStatus `json:"status"`
		}
		if err := json.Unmarshal(body, &res); err != nil {
			return "", fmt.Errorf("fleet: complete: %w", err)
		}
		return res.Status, nil
	case http.StatusNotFound:
		return "", fmt.Errorf("%w: %s", ErrNoSuchJob, serverMsg(body))
	case http.StatusConflict:
		return "", fmt.Errorf("%w: %s", ErrMismatch, serverMsg(body))
	default:
		return "", fmt.Errorf("fleet: complete: HTTP %d: %s", code, serverMsg(body))
	}
}

// SaveCheckpoint uploads the run's latest snapshot blob under the lease on
// (jobID, attempt). ErrStale means the lease is gone — the caller should
// treat it like a failed renewal.
func (c *Client) SaveCheckpoint(ctx context.Context, name, jobID string, attempt int, blob []byte) error {
	code, body, err := c.do(ctx, http.MethodPost, "/v1/checkpoint",
		checkpointReq{Worker: name, JobID: jobID, Attempt: attempt, Blob: blob})
	if err != nil {
		return err
	}
	switch code {
	case http.StatusNoContent:
		return nil
	case http.StatusConflict:
		return fmt.Errorf("%w: %s", ErrStale, serverMsg(body))
	default:
		return fmt.Errorf("fleet: checkpoint: HTTP %d: %s", code, serverMsg(body))
	}
}

// RejectCheckpoint tells the coordinator the granted snapshot was unusable,
// so it drops the blob and counts the corruption.
func (c *Client) RejectCheckpoint(ctx context.Context, name, jobID string, attempt int, reason string) error {
	code, body, err := c.do(ctx, http.MethodPost, "/v1/checkpoint/reject",
		checkpointRejectReq{Worker: name, JobID: jobID, Attempt: attempt, Reason: reason})
	if err != nil {
		return err
	}
	switch code {
	case http.StatusNoContent:
		return nil
	case http.StatusConflict:
		return fmt.Errorf("%w: %s", ErrStale, serverMsg(body))
	default:
		return fmt.Errorf("fleet: checkpoint reject: HTTP %d: %s", code, serverMsg(body))
	}
}

// Submit admits a job.
func (c *Client) Submit(ctx context.Context, spec JobSpec) (JobStatus, error) {
	code, body, err := c.do(ctx, http.MethodPost, "/v1/jobs", spec)
	if err != nil {
		return JobStatus{}, err
	}
	switch code {
	case http.StatusCreated:
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			return JobStatus{}, fmt.Errorf("fleet: submit: %w", err)
		}
		return st, nil
	case http.StatusTooManyRequests:
		return JobStatus{}, fmt.Errorf("%w: %s", ErrQuota, serverMsg(body))
	default:
		return JobStatus{}, fmt.Errorf("fleet: submit: HTTP %d: %s", code, serverMsg(body))
	}
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	code, body, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil)
	if err != nil {
		return JobStatus{}, err
	}
	switch code {
	case http.StatusOK:
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			return JobStatus{}, fmt.Errorf("fleet: job: %w", err)
		}
		return st, nil
	case http.StatusNotFound:
		return JobStatus{}, fmt.Errorf("%w: %s", ErrNoSuchJob, serverMsg(body))
	default:
		return JobStatus{}, fmt.Errorf("fleet: job: HTTP %d: %s", code, serverMsg(body))
	}
}

// Fleet fetches the whole-fleet snapshot.
func (c *Client) Fleet(ctx context.Context) (FleetState, error) {
	code, body, err := c.do(ctx, http.MethodGet, "/v1/fleet", nil)
	if err != nil {
		return FleetState{}, err
	}
	if code != http.StatusOK {
		return FleetState{}, fmt.Errorf("fleet: state: HTTP %d: %s", code, serverMsg(body))
	}
	var st FleetState
	if err := json.Unmarshal(body, &st); err != nil {
		return FleetState{}, fmt.Errorf("fleet: state: %w", err)
	}
	return st, nil
}

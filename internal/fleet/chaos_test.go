package fleet

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"log"
	"net"
	"net/http"
	"os"
	"sync"
	"testing"
	"time"

	"uvmdiscard/internal/experiments"
	"uvmdiscard/internal/sim"
)

// The fleet chaos harness: an in-process coordinator and a pool of workers
// talking over real HTTP, with SIGKILL-equivalent worker kills at seeded
// random points mid-job and one coordinator crash/restart from its journal.
// The invariant under all of it: every submitted job completes exactly once
// with output byte-identical to a single-process experiments.RunAll of the
// same spec — no injected failure may lose, duplicate, or perturb a result.
//
// Determinism discipline: all randomness (job mix, kill times, crash time,
// per-job run repetition) derives from the harness seed via sim.RNG, so a
// failing seed replays with `make chaos-fleet FLEET_SEED=n`. Scheduling —
// which worker runs which attempt — is NOT deterministic, which is the
// point: the result invariant must hold under every interleaving.

var fleetSeed = flag.Uint64("fleet.seed", 0,
	"run the fleet chaos harness with this single seed instead of the built-in set (CI matrix knob)")

func TestChaosFleet(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	if *fleetSeed != 0 {
		seeds = []uint64{*fleetSeed}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runChaosFleet(t, seed)
		})
	}
}

// chaosExperiments is the job mix: the four cheapest quick-mode artifacts,
// so a chaos run exercises many lease cycles in seconds.
var chaosExperiments = []string{"T3", "T4", "T5", "T6"}

// referenceOutputs renders the single-process ground truth the fleet's
// results must match byte for byte.
func referenceOutputs(t *testing.T) map[string]string {
	t.Helper()
	var sel []experiments.Experiment
	for _, id := range chaosExperiments {
		e, ok := experiments.Lookup(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		sel = append(sel, e)
	}
	ref := make(map[string]string)
	for _, r := range experiments.RunAll(context.Background(), sel, experiments.Options{Quick: true}, 2, nil) {
		if r.Err != nil {
			t.Fatalf("reference run %s: %v", r.Experiment.ID, r.Err)
		}
		ref[r.Experiment.ID] = r.Table.String()
	}
	return ref
}

// chaosRunner stretches each job to a seeded number of back-to-back runs of
// the same experiment (asserting they agree), so jobs live long enough for
// kills to land mid-job and for checkpoint-driven lease renewals to flow,
// while the reported output stays exactly the single run's bytes.
func chaosRunner(seed uint64) RunnerFunc {
	return func(ctx context.Context, spec JobSpec, env *RunEnv) (string, error) {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s/%s", spec.Tenant, spec.Experiment)
		repeats := 2 + sim.NewRNG(seed).Fork(h.Sum64()).Intn(3) // 2..4, same for every attempt of a spec
		var out string
		for i := 0; i < repeats; i++ {
			s, err := RunExperiment(ctx, spec, env)
			if err != nil {
				return "", err
			}
			if i == 0 {
				out = s
			} else if s != out {
				return "", fmt.Errorf("nondeterministic output for %s on repeat %d", spec.Experiment, i)
			}
		}
		return out, nil
	}
}

// coordServer runs a coordinator behind a real HTTP listener and can crash
// (connections severed, journal left on disk) and restart on the same
// address, exactly like a kill -9'd and re-exec'd uvmfleet.
type coordServer struct {
	t    *testing.T
	cfg  Config
	addr string

	mu    sync.Mutex
	coord *Coordinator
	hs    *http.Server
}

func startCoordServer(t *testing.T, cfg Config) *coordServer {
	t.Helper()
	cs := &coordServer{t: t, cfg: cfg}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	cs.addr = ln.Addr().String()
	cs.serve(ln)
	return cs
}

func (cs *coordServer) serve(ln net.Listener) {
	coord, err := New(cs.cfg)
	if err != nil {
		cs.t.Errorf("coordinator: %v", err)
		_ = ln.Close()
		return
	}
	hs := &http.Server{Handler: coord.Handler()}
	cs.mu.Lock()
	cs.coord = coord
	cs.hs = hs
	cs.mu.Unlock()
	go func() { _ = hs.Serve(ln) }()
}

func (cs *coordServer) url() string { return "http://" + cs.addr }

// crash severs every connection and drops all in-memory state. Only the
// journal survives — that is the contract being tested.
func (cs *coordServer) crash() {
	cs.mu.Lock()
	hs, coord := cs.hs, cs.coord
	cs.mu.Unlock()
	_ = hs.Close()
	_ = coord.Close()
}

// restart rebuilds the coordinator from its journal on the same address.
func (cs *coordServer) restart() {
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", cs.addr)
		if err == nil {
			cs.serve(ln)
			return
		}
		if time.Now().After(deadline) {
			cs.t.Errorf("rebind %s: %v", cs.addr, err)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (cs *coordServer) counters() Counters {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.coord.State().Counters
}

func runChaosFleet(t *testing.T, seed uint64) {
	rng := sim.NewRNG(seed)
	ref := referenceOutputs(t)

	dir := t.TempDir()
	cfg := Config{
		JournalPath:  dir + "/fleet.journal",
		LeaseTTL:     500 * time.Millisecond,
		MaxAttempts:  10,
		RetryBackoff: 25 * time.Millisecond,
		MaxBackoff:   200 * time.Millisecond,
		TenantQuota:  64,
	}
	if testing.Verbose() {
		cfg.Log = log.New(os.Stderr, fmt.Sprintf("coord[seed%d]: ", seed), log.Lmicroseconds)
	}
	cs := startCoordServer(t, cfg)
	defer cs.crash()
	dumpChaosArtifacts(t, cs)

	// The pool: w1 survives everything; w2 and w3 are killed at seeded
	// random points; w4 joins late, like an autoscaled replacement.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	startWorker := func(name string, capacity int) *Worker {
		w := NewWorker(WorkerConfig{
			Name:              name,
			Capacity:          capacity,
			PollInterval:      20 * time.Millisecond,
			HeartbeatInterval: 100 * time.Millisecond,
			Runner:            chaosRunner(seed),
			Log:               cfg.Log,
		}, NewClient(cs.url()))
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(ctx)
		}()
		return w
	}
	startWorker("w1", 2)
	w2 := startWorker("w2", 1)
	w3 := startWorker("w3", 1)

	// Submit the job mix across two tenants.
	jobs := 10
	if testing.Short() {
		jobs = 6
	}
	client := NewClient(cs.url())
	tenants := []string{"alpha", "beta"}
	ids := make([]string, 0, jobs)
	specs := make(map[string]JobSpec)
	for i := 0; i < jobs; i++ {
		spec := JobSpec{
			Tenant:     tenants[i%len(tenants)],
			Experiment: chaosExperiments[rng.Intn(len(chaosExperiments))],
			Quick:      true,
		}
		st, err := client.Submit(context.Background(), spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
		specs[st.ID] = spec
	}

	// Seeded chaos schedule: two worker kills and one coordinator
	// crash/restart, all landing while jobs are in flight.
	killDelay1 := time.Duration(30+rng.Intn(220)) * time.Millisecond
	killDelay2 := time.Duration(100+rng.Intn(350)) * time.Millisecond
	crashDelay := time.Duration(80+rng.Intn(300)) * time.Millisecond
	downFor := time.Duration(50+rng.Intn(150)) * time.Millisecond
	t.Logf("seed %d: kill w2 @%v, kill w3 @%v, coordinator crash @%v for %v",
		seed, killDelay1, killDelay2, crashDelay, downFor)

	var chaosWG sync.WaitGroup
	chaosWG.Add(3)
	go func() {
		defer chaosWG.Done()
		time.Sleep(killDelay1)
		w2.Kill()
	}()
	go func() {
		defer chaosWG.Done()
		time.Sleep(killDelay2)
		w3.Kill()
	}()
	go func() {
		defer chaosWG.Done()
		time.Sleep(crashDelay)
		cs.crash()
		time.Sleep(downFor)
		cs.restart()
		// The replacement worker joins once the coordinator is back.
		startWorker("w4", 2)
	}()
	chaosWG.Wait()

	// Every job must reach done — nothing lost, nothing stuck.
	deadline := time.Now().Add(90 * time.Second)
	pending := append([]string(nil), ids...)
	for len(pending) > 0 {
		if time.Now().After(deadline) {
			for _, id := range pending {
				st, err := client.Job(context.Background(), id)
				t.Errorf("job %s never completed: %+v (err %v)", id, st, err)
			}
			t.Fatalf("timed out waiting for %d of %d jobs", len(pending), len(ids))
		}
		time.Sleep(25 * time.Millisecond)
		remaining := pending[:0]
		for _, id := range pending {
			st, err := client.Job(context.Background(), id)
			if err != nil {
				// Coordinator may be mid-restart; retry.
				remaining = append(remaining, id)
				continue
			}
			switch st.State {
			case JobDone:
			case JobFailed:
				t.Fatalf("job %s failed permanently after %d attempts: %s", id, st.Attempt, st.LastErr)
			default:
				remaining = append(remaining, id)
			}
		}
		pending = remaining
	}

	// Exactly once, byte-identical: the recorded output of every job equals
	// the single-process reference for its experiment, and no duplicate
	// report was ever absorbed with different bytes.
	for _, id := range ids {
		st, err := client.Job(context.Background(), id)
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		want := ref[specs[id].Experiment]
		if st.Output != want {
			t.Errorf("job %s (%s): output diverged from single-process run\ngot:\n%s\nwant:\n%s",
				id, specs[id].Experiment, st.Output, want)
		}
	}
	ctr := cs.counters()
	if ctr.Mismatches != 0 {
		t.Errorf("determinism violations detected: %d mismatched duplicate results", ctr.Mismatches)
	}
	t.Logf("seed %d: done=%d requeues=%d expired=%d duplicates=%d stale=%d orphaned=%d",
		seed, len(ids), ctr.Requeues, ctr.LeasesExpired, ctr.Duplicates, ctr.StaleReports, ctr.OrphanedLeases)

	cancel()
	wg.Wait()
}

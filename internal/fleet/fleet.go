// Package fleet is the fault-tolerant fleet layer: it scales the hardened
// single-process simulator (cmd/uvmsimd) out to a crash-prone pool of
// workers without ever losing, duplicating, or perturbing a job's results.
//
// The shape is a coordinator/worker split with time-bounded leases:
//
//   - The Coordinator owns a durable job queue. Every state transition that
//     matters after a crash (submit, lease grant, retry, completion,
//     permanent failure) is an fsync'd JSON-lines record (internal/jsonl,
//     the same machinery behind the experiment batch journal), so a
//     coordinator killed at any instant restarts from its journal with no
//     job lost and no attempt number reused.
//   - Workers (uvmsimd -worker) pull jobs over HTTP/JSON under leases. A
//     lease is renewed from runctl.Control checkpoints — renewal is
//     evidence the simulation is actually advancing, so a hung or dead
//     worker stops renewing and its lease expires. Expiry requeues the job
//     with exponential backoff under a bounded retry budget; exhaustion
//     marks the job failed-permanent with the last error preserved.
//   - Results are reported idempotently, keyed by job ID + attempt. Only
//     the current attempt of a live lease may record a result; a stale
//     attempt (lease expired, coordinator restarted) is rejected. A repeat
//     report for a completed job is detected as a duplicate and its bytes
//     are asserted identical to the recorded result — the simulator is
//     deterministic, so an at-least-once retry must reproduce the same
//     output or something is deeply wrong (counted as a mismatch and
//     refused).
//
// Exactly-once results from at-least-once execution: execution may happen
// several times (that is what crash tolerance means), but the recorded
// result transitions exactly once, guarded by the attempt check and the
// fsync'd done record, and determinism makes every successful execution
// byte-identical. The fleet chaos harness (chaos_test.go) kills workers
// mid-job and crash-restarts the coordinator and asserts exactly that.
//
// Placement is pull-based but score-aware: workers declare a capacity, and
// the coordinator computes each worker's oversubscription ratio
// (active leases / capacity). A poll from a comparatively overloaded worker
// is deferred while strictly less-loaded live workers could absorb the
// queue, steering scarce jobs toward the least-loaded workers (the
// intelligent-oversubscription placement idea at fleet granularity).
// Tenants get admission quotas and fair-share dequeue: tenants are served
// round-robin, so one tenant's burst cannot starve another's queue.
//
// Like internal/service, this package is host-side control plane: it is on
// the simdet wall-clock allowlist, never touches simulated time, and every
// simulation run keeps the per-run isolation rules.
package fleet

import (
	"errors"
	"fmt"
	"log"
	"regexp"
	"time"
)

// JobSpec is what a fleet job runs: one experiment artifact under one
// problem-size flavor, on behalf of a tenant. A spec is a pure value — two
// runs of the same spec on any two workers render byte-identical output,
// which is the property the duplicate-detection path asserts.
type JobSpec struct {
	// Tenant is the submitting tenant (quota and fair-share unit).
	Tenant string `json:"tenant"`
	// Experiment is the experiment artifact ID (e.g. "T3"; see
	// experiments.Lookup).
	Experiment string `json:"experiment"`
	// Quick runs the scaled-down problem size.
	Quick bool `json:"quick"`
}

// JobState is the coordinator-side job lifecycle.
type JobState string

const (
	// JobQueued means the job is waiting for a lease (possibly behind a
	// retry-backoff gate).
	JobQueued JobState = "queued"
	// JobLeased means a worker holds the job under a live lease.
	JobLeased JobState = "leased"
	// JobDone means the job's result is durably recorded. Terminal.
	JobDone JobState = "done"
	// JobFailed means the retry budget is exhausted (or every attempt
	// failed); the last error is preserved. Terminal.
	JobFailed JobState = "failed"
)

// Terminal reports whether the state is sticky.
func (s JobState) Terminal() bool { return s == JobDone || s == JobFailed }

// Sentinel errors of the lease protocol. The HTTP layer maps them onto
// status codes; the worker maps them back.
var (
	// ErrStale rejects a renewal or result from an attempt that no longer
	// holds the lease (expired, re-leased, or lost to a coordinator
	// restart).
	ErrStale = errors.New("fleet: stale attempt: lease is no longer held")
	// ErrQuota rejects a submission over the tenant's admission quota.
	ErrQuota = errors.New("fleet: tenant admission quota exhausted")
	// ErrUnknownWorker rejects a call from a worker the coordinator does
	// not know (never registered, or registry lost to a restart — the
	// worker re-registers and carries on).
	ErrUnknownWorker = errors.New("fleet: unknown worker")
	// ErrNoSuchJob rejects a lookup or report for a job ID the coordinator
	// has never seen.
	ErrNoSuchJob = errors.New("fleet: no such job")
	// ErrMismatch refuses a duplicate completion whose bytes differ from
	// the recorded result — a determinism violation, never silently
	// absorbed.
	ErrMismatch = errors.New("fleet: duplicate result differs from recorded result (determinism violation)")
)

// Config tunes the coordinator. The zero value is usable (in-memory
// journal, production-shaped timeouts).
type Config struct {
	// JournalPath is the crash-safe coordinator journal (fsync'd JSONL).
	// Empty runs in-memory: correct while the process lives, nothing
	// survives a restart.
	JournalPath string
	// LeaseTTL is how long a lease lives without renewal; <=0 means 15s.
	LeaseTTL time.Duration
	// HeartbeatTimeout is how long a worker may go silent before it is
	// declared dead and its leases expire immediately; <=0 means 3×LeaseTTL.
	HeartbeatTimeout time.Duration
	// MaxAttempts bounds lease attempts per job; a job whose attempts are
	// exhausted goes failed-permanent with the last error preserved. <1
	// means 5.
	MaxAttempts int
	// RetryBackoff is the base requeue delay after a failed or expired
	// attempt; attempt n waits RetryBackoff×2^(n-1), capped at MaxBackoff.
	// <=0 means 250ms.
	RetryBackoff time.Duration
	// MaxBackoff caps the exponential backoff; <=0 means 30s.
	MaxBackoff time.Duration
	// TenantQuota bounds each tenant's non-terminal (queued+leased) jobs;
	// submissions beyond it are rejected with ErrQuota. <1 means 64.
	TenantQuota int
	// Log receives coordinator events; nil discards them.
	Log *log.Logger

	// now overrides the clock for deterministic protocol tests; nil means
	// time.Now.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 15 * time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 3 * c.LeaseTTL
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 5
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 250 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 30 * time.Second
	}
	if c.TenantQuota < 1 {
		c.TenantQuota = 64
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// nameOK restricts worker and tenant names to a label-safe alphabet: they
// appear in journal records, URLs, and Prometheus label values.
var nameOK = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// Validate rejects a malformed spec before it can enter the durable queue.
func (s JobSpec) Validate() error {
	if !nameOK.MatchString(s.Tenant) {
		return fmt.Errorf("fleet: tenant %q: want 1-64 chars of [A-Za-z0-9._-]", s.Tenant)
	}
	if s.Experiment == "" {
		return fmt.Errorf("fleet: empty experiment ID")
	}
	return nil
}

// LeaseGrant is what a worker receives for a leased job.
type LeaseGrant struct {
	JobID   string  `json:"job_id"`
	Attempt int     `json:"attempt"`
	Spec    JobSpec `json:"spec"`
	// TTLMillis is the lease TTL; the worker renews well inside it.
	TTLMillis int64 `json:"ttl_ms"`
	// Checkpoint, when non-empty, is the enveloped snapshot a previous
	// attempt of this job uploaded: the worker resumes the simulation from
	// it instead of re-executing the finished steps. The blob is
	// self-validating (internal/checkpoint); a worker that finds it corrupt
	// reports that back (RejectCheckpoint) and restarts from zero, so a bad
	// blob costs re-execution, never wrong results.
	Checkpoint []byte `json:"checkpoint,omitempty"`
}

// CompleteStatus classifies the coordinator's verdict on a reported result.
type CompleteStatus string

const (
	// CompleteRecorded means this report recorded the job's result (or,
	// for a failure report, consumed the attempt and requeued the job).
	CompleteRecorded CompleteStatus = "recorded"
	// CompleteDuplicate means the job was already done and the reported
	// bytes matched the recorded result exactly.
	CompleteDuplicate CompleteStatus = "duplicate"
	// CompleteStale means the reporting attempt no longer held the lease;
	// the report was rejected and the job runs (or ran) elsewhere.
	CompleteStale CompleteStatus = "stale"
	// CompleteFailedPermanent means a failure report exhausted the retry
	// budget and the job is now failed-permanent.
	CompleteFailedPermanent CompleteStatus = "failed_permanent"
)

// JobStatus is the JSON view of a job.
type JobStatus struct {
	ID      string   `json:"id"`
	Spec    JobSpec  `json:"spec"`
	State   JobState `json:"state"`
	Attempt int      `json:"attempt"`
	Worker  string   `json:"worker,omitempty"`
	Output  string   `json:"output,omitempty"`
	LastErr string   `json:"last_error,omitempty"`
}

// WorkerStatus is the JSON view of a registered worker.
type WorkerStatus struct {
	Name     string  `json:"name"`
	Capacity int     `json:"capacity"`
	MemBytes uint64  `json:"mem_bytes,omitempty"`
	Active   int     `json:"active_leases"`
	Live     bool    `json:"live"`
	Ratio    float64 `json:"oversubscription_ratio"`
	// HeartbeatAgeMillis is how long ago the worker last spoke.
	HeartbeatAgeMillis int64 `json:"heartbeat_age_ms"`
}

// TenantStatus is the JSON view of one tenant's queue.
type TenantStatus struct {
	Tenant string `json:"tenant"`
	Queued int    `json:"queued"`
	Leased int    `json:"leased"`
	Quota  int    `json:"quota"`
}

// JobCounts summarizes jobs by state.
type JobCounts struct {
	Queued int `json:"queued"`
	Leased int `json:"leased"`
	Done   int `json:"done"`
	Failed int `json:"failed"`
}

// Counters is a snapshot of the coordinator's monotonic event counters
// (process-lifetime; they reset on restart — the journal carries state, not
// metrics).
type Counters struct {
	Submitted        int64 `json:"submitted"`
	QuotaRejections  int64 `json:"quota_rejections"`
	LeasesGranted    int64 `json:"leases_granted"`
	LeaseDeferrals   int64 `json:"lease_deferrals"`
	Renewals         int64 `json:"renewals"`
	LeasesExpired    int64 `json:"leases_expired"`
	Requeues         int64 `json:"requeues"`
	RetriesExhausted int64 `json:"retries_exhausted"`
	Completions      int64 `json:"completions"`
	Duplicates       int64 `json:"duplicates"`
	StaleReports     int64 `json:"stale_reports"`
	Mismatches       int64 `json:"mismatches"`
	WorkersDied      int64 `json:"workers_died"`
	WorkersRevived   int64 `json:"workers_revived"`
	OrphanedLeases   int64 `json:"orphaned_leases"`
	// CheckpointsStored counts accepted snapshot uploads from live leases.
	CheckpointsStored int64 `json:"checkpoints_stored"`
	// CheckpointResumes counts lease grants that carried a stored snapshot
	// for the worker to resume from.
	CheckpointResumes int64 `json:"checkpoint_resumes"`
	// CheckpointsCorrupt counts snapshots a worker reported unusable
	// (failed decode, digest mismatch, or sanitizer audit); each costs a
	// restart-from-zero but never a wrong result.
	CheckpointsCorrupt int64 `json:"checkpoints_corrupt"`
}

// FleetState is the GET /v1/fleet payload: the whole fleet at a glance.
type FleetState struct {
	Workers  []WorkerStatus `json:"workers"`
	Tenants  []TenantStatus `json:"tenants"`
	Jobs     JobCounts      `json:"jobs"`
	Counters Counters       `json:"counters"`
}

package fleet

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"uvmdiscard/internal/checkpoint"
	"uvmdiscard/internal/experiments"
	"uvmdiscard/internal/runctl"
)

// RunEnv carries the per-attempt plumbing a runner threads into its run:
// the control observer the worker renews leases from, and the optional
// checkpoint environment that lets a resumed attempt skip already-executed
// steps. Fields may be nil; a runner must tolerate both.
type RunEnv struct {
	// OnControl must be passed through to the run's control construction
	// (experiments.Options.OnControl) so the worker can renew the lease
	// from runctl checkpoints.
	OnControl func(*runctl.Control)
	// Checkpoint, when non-nil, is wired to the coordinator: Restore holds
	// the granted snapshot (if any), Save uploads new ones, and the Stats
	// report what the run did with them.
	Checkpoint *checkpoint.Env
}

// RunnerFunc executes one leased job and returns its rendered result. Tests
// substitute slow or failing runners.
type RunnerFunc func(ctx context.Context, spec JobSpec, env *RunEnv) (string, error)

// RunExperiment is the production runner: resolve the experiment artifact
// and run it with the job's Quick flag. Deterministic — the same spec
// renders byte-identical output on any worker, which is what lets the
// coordinator assert duplicates byte-identical (a checkpointed resume
// included: the snapshot restores the exact mid-run state, so the finished
// table carries the same bytes either way).
func RunExperiment(ctx context.Context, spec JobSpec, env *RunEnv) (string, error) {
	e, ok := experiments.Lookup(spec.Experiment)
	if !ok {
		return "", fmt.Errorf("unknown experiment %q", spec.Experiment)
	}
	opts := experiments.Options{
		Quick: spec.Quick,
		Ctx:   ctx,
	}
	if env != nil {
		opts.OnControl = env.OnControl
		opts.Checkpoint = env.Checkpoint
	}
	tbl, err := e.Run(opts)
	if err != nil {
		return "", err
	}
	return tbl.String(), nil
}

// WorkerConfig tunes a pulling worker.
type WorkerConfig struct {
	// Name identifies the worker to the coordinator (must be unique in the
	// fleet).
	Name string
	// Capacity is the declared concurrent-job capacity (placement input);
	// <1 means 1.
	Capacity int
	// MemBytes is the declared memory, advertised for observability.
	MemBytes uint64
	// PollInterval is the idle delay between lease polls; <=0 means 250ms.
	PollInterval time.Duration
	// HeartbeatInterval is the liveness cadence; <=0 means 2s.
	HeartbeatInterval time.Duration
	// Runner executes leased jobs; nil means RunExperiment.
	Runner RunnerFunc
	// CheckpointEvery asks the runner to upload a snapshot to the
	// coordinator every N workload steps (for runs that support it);
	// <=0 disables checkpointing.
	CheckpointEvery int
	// Log receives worker events; nil discards them.
	Log *log.Logger
}

// Worker pulls leased jobs from a coordinator and runs them. Run blocks
// until the context is canceled or Kill is called; every goroutine the
// worker starts is joined before Run returns.
type Worker struct {
	cfg    WorkerConfig
	client *Client

	killed  atomic.Bool
	cancels struct {
		sync.Mutex
		fn context.CancelFunc
	}
}

// NewWorker builds a worker speaking to the coordinator behind client.
func NewWorker(cfg WorkerConfig, client *Client) *Worker {
	if cfg.Capacity < 1 {
		cfg.Capacity = 1
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 250 * time.Millisecond
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 2 * time.Second
	}
	if cfg.Runner == nil {
		cfg.Runner = RunExperiment
	}
	return &Worker{cfg: cfg, client: client}
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Log != nil {
		w.cfg.Log.Printf(format, args...)
	}
}

// Kill is the SIGKILL-equivalent used by the chaos harness: from this
// instant the worker sends nothing further — no renewals, no heartbeats, no
// result reports — and every in-flight simulation is canceled. The
// coordinator must discover the death by lease expiry and heartbeat
// timeout, exactly as it would a kill -9'd process.
func (w *Worker) Kill() {
	w.killed.Store(true)
	w.cancels.Lock()
	if w.cancels.fn != nil {
		w.cancels.fn()
	}
	w.cancels.Unlock()
}

// Killed reports whether Kill was called.
func (w *Worker) Killed() bool { return w.killed.Load() }

// Run registers the worker and pulls jobs until ctx is canceled or the
// worker is killed. It returns the context's error (context.Canceled on a
// graceful stop and on a kill).
func (w *Worker) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	w.cancels.Lock()
	w.cancels.fn = cancel
	w.cancels.Unlock()
	if w.killed.Load() {
		return context.Canceled
	}
	if err := w.register(ctx); err != nil {
		return err
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go w.heartbeatLoop(ctx, &wg)
	for i := 0; i < w.cfg.Capacity; i++ {
		wg.Add(1)
		go w.slotLoop(ctx, &wg)
	}
	wg.Wait()
	return ctx.Err()
}

// register announces the worker, retrying until it lands or ctx dies — a
// worker started before its coordinator simply waits for it.
func (w *Worker) register(ctx context.Context) error {
	for {
		if w.killed.Load() {
			return context.Canceled
		}
		err := w.client.Register(ctx, w.cfg.Name, w.cfg.Capacity, w.cfg.MemBytes)
		if err == nil {
			return nil
		}
		w.logf("fleet worker %s: register: %v (retrying)", w.cfg.Name, err)
		if serr := sleepCtx(ctx, 500*time.Millisecond); serr != nil {
			return serr
		}
	}
}

func (w *Worker) heartbeatLoop(ctx context.Context, wg *sync.WaitGroup) {
	defer wg.Done()
	t := time.NewTicker(w.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		if w.killed.Load() {
			return
		}
		err := w.client.Heartbeat(ctx, w.cfg.Name)
		if errors.Is(err, ErrUnknownWorker) {
			// Coordinator restarted and lost its soft-state registry.
			if w.register(ctx) != nil {
				return
			}
		}
	}
}

// slotLoop is one capacity slot: poll, run, report, repeat.
func (w *Worker) slotLoop(ctx context.Context, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		if ctx.Err() != nil || w.killed.Load() {
			return
		}
		grant, err := w.client.Lease(ctx, w.cfg.Name)
		switch {
		case errors.Is(err, ErrUnknownWorker):
			if w.register(ctx) != nil {
				return
			}
			continue
		case err != nil:
			// Coordinator unreachable (crashed, restarting): back off and
			// keep polling — workers outlive coordinator restarts.
			if sleepCtx(ctx, w.cfg.PollInterval) != nil {
				return
			}
			continue
		case grant == nil:
			if sleepCtx(ctx, w.cfg.PollInterval) != nil {
				return
			}
			continue
		}
		w.runLeased(ctx, grant)
	}
}

// runLeased executes one granted job under its lease: renewals flow from
// runctl checkpoints while the simulation runs, and the result is reported
// idempotently with retries that bridge a coordinator restart.
func (w *Worker) runLeased(ctx context.Context, g *LeaseGrant) {
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Renewal plumbing: the run's control observer pokes renewCh at every
	// progress checkpoint (non-blocking — the sim must never stall on the
	// fleet layer); the renewal goroutine rate-limits actual renew calls to
	// about a third of the TTL. If the coordinator says the lease is stale,
	// the run is canceled and its result discarded.
	renewCh := make(chan struct{}, 1)
	onControl := func(c *runctl.Control) {
		c.SetObserver(func(runctl.Progress) {
			select {
			case renewCh <- struct{}{}:
			default:
			}
		})
	}
	ttl := time.Duration(g.TTLMillis) * time.Millisecond
	interval := ttl / 3
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	var lost atomic.Bool
	var renewWG sync.WaitGroup
	renewWG.Add(1)
	go func() {
		defer renewWG.Done()
		last := time.Now()
		for {
			select {
			case <-jctx.Done():
				return
			case <-renewCh:
			}
			if time.Since(last) < interval {
				continue
			}
			if w.killed.Load() {
				return
			}
			err := w.client.Renew(jctx, w.cfg.Name, g.JobID, g.Attempt)
			switch {
			case errors.Is(err, ErrStale):
				w.logf("fleet worker %s: job %s attempt %d: lease lost (%v); abandoning run",
					w.cfg.Name, g.JobID, g.Attempt, err)
				lost.Store(true)
				cancel()
				return
			case err != nil:
				// Transient (coordinator restarting): keep running; the
				// next checkpoint retries.
			default:
				last = time.Now()
			}
		}
	}()

	env := &RunEnv{OnControl: onControl}
	if w.cfg.CheckpointEvery > 0 {
		ck := &checkpoint.Env{
			Restore: g.Checkpoint,
			Every:   w.cfg.CheckpointEvery,
			Save: func(blob []byte) error {
				return w.client.SaveCheckpoint(jctx, w.cfg.Name, g.JobID, g.Attempt, blob)
			},
			OnReject: func(reason string) {
				w.logf("fleet worker %s: job %s attempt %d: checkpoint rejected (%s); restarting from zero",
					w.cfg.Name, g.JobID, g.Attempt, reason)
				if err := w.client.RejectCheckpoint(jctx, w.cfg.Name, g.JobID, g.Attempt, reason); err != nil {
					w.logf("fleet worker %s: job %s attempt %d: checkpoint reject report: %v",
						w.cfg.Name, g.JobID, g.Attempt, err)
				}
			},
		}
		env.Checkpoint = ck
	}
	output, runErr := w.cfg.Runner(jctx, g.Spec, env)
	cancel()
	renewWG.Wait()
	if env.Checkpoint != nil && env.Checkpoint.Stats.Resumed {
		w.logf("fleet worker %s: job %s attempt %d: resumed from step %d, executed %d steps",
			w.cfg.Name, g.JobID, g.Attempt, env.Checkpoint.Stats.ResumedFrom, env.Checkpoint.Stats.StepsExecuted)
	}

	if w.killed.Load() || lost.Load() || ctx.Err() != nil {
		// Killed, lease lost, or graceful stop: report nothing. The lease
		// expires and the coordinator reschedules.
		return
	}
	errMsg := ""
	if runErr != nil {
		errMsg = runErr.Error()
	}
	w.report(ctx, g, output, errMsg)
}

// report delivers the attempt's outcome, retrying across coordinator
// restarts. Reports are idempotent on the coordinator (keyed by job ID +
// attempt), so retrying a report that actually landed is harmless — it is
// classified duplicate or stale and dropped.
func (w *Worker) report(ctx context.Context, g *LeaseGrant, output, errMsg string) {
	backoff := 100 * time.Millisecond
	for tries := 0; tries < 20; tries++ {
		if w.killed.Load() || ctx.Err() != nil {
			return
		}
		status, err := w.client.Complete(ctx, w.cfg.Name, g.JobID, g.Attempt, output, errMsg)
		switch {
		case err == nil:
			if status != CompleteRecorded {
				w.logf("fleet worker %s: job %s attempt %d: report classified %s",
					w.cfg.Name, g.JobID, g.Attempt, status)
			}
			return
		case errors.Is(err, ErrMismatch):
			// Determinism violation: the coordinator refused our bytes.
			// Nothing to retry — scream and move on.
			w.logf("fleet worker %s: job %s attempt %d: REFUSED: %v", w.cfg.Name, g.JobID, g.Attempt, err)
			return
		case errors.Is(err, ErrNoSuchJob):
			w.logf("fleet worker %s: job %s attempt %d: %v", w.cfg.Name, g.JobID, g.Attempt, err)
			return
		}
		if sleepCtx(ctx, backoff) != nil {
			return
		}
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
	w.logf("fleet worker %s: job %s attempt %d: result report never landed; lease will expire",
		w.cfg.Name, g.JobID, g.Attempt)
}

// sleepCtx sleeps d or until ctx is done, returning ctx.Err in that case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

package fleet

import (
	"encoding/json"
	"errors"
	"net/http"

	"uvmdiscard/internal/promexp"
)

// The coordinator's HTTP/JSON surface. Verbs are deliberately tiny and
// poll-shaped — workers pull; the coordinator never dials a worker — so the
// whole protocol works through one listening socket and survives either
// side restarting.
//
//	POST /v1/jobs              submit a job            → 201 JobStatus
//	GET  /v1/jobs/{id}         job status              → 200 JobStatus
//	GET  /v1/fleet             whole-fleet snapshot    → 200 FleetState
//	GET  /metrics              Prometheus exposition
//	GET  /healthz              liveness
//	POST /v1/workers/register  {name, capacity, mem_bytes} → 204
//	POST /v1/workers/heartbeat {worker}                → 204
//	POST /v1/lease             {worker}                → 200 LeaseGrant | 204 nothing
//	POST /v1/lease/renew       {worker, job_id, attempt} → 200 {ttl_ms} | 409 stale
//	POST /v1/complete          {worker, job_id, attempt, output, error} → 200 {status}
//	POST /v1/checkpoint        {worker, job_id, attempt, blob} → 204 | 409 stale
//	POST /v1/checkpoint/reject {worker, job_id, attempt, reason} → 204 | 409 stale
//
// Error mapping: quota → 429, unknown worker / unknown job → 404, stale
// renewal → 409, determinism mismatch → 409 with status "mismatch".

// Handler returns the coordinator's HTTP mux.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
	mux.HandleFunc("GET /v1/fleet", c.handleFleet)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/workers/register", c.handleRegister)
	mux.HandleFunc("POST /v1/workers/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/lease", c.handleLease)
	mux.HandleFunc("POST /v1/lease/renew", c.handleRenew)
	mux.HandleFunc("POST /v1/complete", c.handleComplete)
	mux.HandleFunc("POST /v1/checkpoint", c.handleCheckpoint)
	mux.HandleFunc("POST /v1/checkpoint/reject", c.handleCheckpointReject)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	return decodeBodyCap(w, r, v, 1<<20)
}

// decodeBodyCap is decodeBody with an explicit body cap: checkpoint uploads
// carry multi-megabyte snapshot blobs (base64 in JSON), everything else
// stays under the tight default.
func decodeBodyCap(w http.ResponseWriter, r *http.Request, v any, capBytes int64) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, capBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if !decodeBody(w, r, &spec) {
		return
	}
	st, err := c.Submit(spec)
	switch {
	case errors.Is(err, ErrQuota):
		writeErr(w, http.StatusTooManyRequests, err)
	case err != nil:
		writeErr(w, http.StatusBadRequest, err)
	default:
		writeJSON(w, http.StatusCreated, st)
	}
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := c.Job(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleFleet(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.State())
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := promexp.Write(w, c.PromFamilies()); err != nil {
		c.logf("fleet: metrics render: %v", err)
	}
}

type registerReq struct {
	Name     string `json:"name"`
	Capacity int    `json:"capacity"`
	MemBytes uint64 `json:"mem_bytes"`
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerReq
	if !decodeBody(w, r, &req) {
		return
	}
	if err := c.Register(req.Name, req.Capacity, req.MemBytes); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

type workerReq struct {
	Worker string `json:"worker"`
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req workerReq
	if !decodeBody(w, r, &req) {
		return
	}
	if err := c.Heartbeat(req.Worker); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req workerReq
	if !decodeBody(w, r, &req) {
		return
	}
	grant, err := c.Lease(req.Worker)
	switch {
	case errors.Is(err, ErrUnknownWorker):
		writeErr(w, http.StatusNotFound, err)
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err)
	case grant == nil:
		w.WriteHeader(http.StatusNoContent)
	default:
		writeJSON(w, http.StatusOK, grant)
	}
}

type renewReq struct {
	Worker  string `json:"worker"`
	JobID   string `json:"job_id"`
	Attempt int    `json:"attempt"`
}

func (c *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req renewReq
	if !decodeBody(w, r, &req) {
		return
	}
	expiry, err := c.Renew(req.Worker, req.JobID, req.Attempt)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	ttl := expiry.Sub(c.cfg.now()).Milliseconds()
	writeJSON(w, http.StatusOK, map[string]int64{"ttl_ms": ttl})
}

type completeReq struct {
	Worker  string `json:"worker"`
	JobID   string `json:"job_id"`
	Attempt int    `json:"attempt"`
	Output  string `json:"output"`
	Error   string `json:"error"`
}

type checkpointReq struct {
	Worker  string `json:"worker"`
	JobID   string `json:"job_id"`
	Attempt int    `json:"attempt"`
	Blob    []byte `json:"blob"`
}

func (c *Coordinator) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	var req checkpointReq
	// Base64 in JSON inflates the blob by 4/3, plus framing slack.
	if !decodeBodyCap(w, r, &req, MaxCheckpointBytes*3/2+4096) {
		return
	}
	if err := c.SaveCheckpoint(req.Worker, req.JobID, req.Attempt, req.Blob); err != nil {
		if errors.Is(err, ErrStale) {
			writeErr(w, http.StatusConflict, err)
		} else {
			writeErr(w, http.StatusBadRequest, err)
		}
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

type checkpointRejectReq struct {
	Worker  string `json:"worker"`
	JobID   string `json:"job_id"`
	Attempt int    `json:"attempt"`
	Reason  string `json:"reason"`
}

func (c *Coordinator) handleCheckpointReject(w http.ResponseWriter, r *http.Request) {
	var req checkpointRejectReq
	if !decodeBody(w, r, &req) {
		return
	}
	if err := c.RejectCheckpoint(req.Worker, req.JobID, req.Attempt, req.Reason); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeReq
	if !decodeBody(w, r, &req) {
		return
	}
	status, err := c.Complete(req.Worker, req.JobID, req.Attempt, req.Output, req.Error)
	switch {
	case errors.Is(err, ErrNoSuchJob):
		writeErr(w, http.StatusNotFound, err)
	case errors.Is(err, ErrMismatch):
		writeErr(w, http.StatusConflict, err)
	case err != nil:
		writeErr(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": string(status)})
	}
}

package fleet

import (
	"fmt"

	"uvmdiscard/internal/promexp"
)

// PromFamilies renders the coordinator's state and counters as Prometheus
// families (the uvmfleet_* exposition on GET /metrics). A scrape sweeps
// first — State does — so dead workers and expired leases are visible even
// on an otherwise idle fleet.
func (c *Coordinator) PromFamilies() []promexp.Family {
	st := c.State()

	workersByState := promexp.Family{
		Name: "uvmfleet_workers",
		Help: "Registered workers by liveness state.",
		Kind: promexp.KindGauge,
	}
	live, dead := 0, 0
	for _, w := range st.Workers {
		if w.Live {
			live++
		} else {
			dead++
		}
	}
	workersByState.Samples = append(workersByState.Samples,
		promexp.Sample{Labels: []promexp.Label{promexp.L("state", "live")}, Value: float64(live)},
		promexp.Sample{Labels: []promexp.Label{promexp.L("state", "dead")}, Value: float64(dead)},
	)

	ratio := promexp.Family{
		Name: "uvmfleet_worker_oversubscription_ratio",
		Help: "Active leases over declared capacity, per worker (placement score input).",
		Kind: promexp.KindGauge,
	}
	active := 0
	for _, w := range st.Workers {
		active += w.Active
		ratio.Samples = append(ratio.Samples, promexp.Sample{
			Labels: []promexp.Label{promexp.L("worker", w.Name)},
			Value:  w.Ratio,
		})
	}
	promexp.SortSamples(&ratio)

	jobs := promexp.Family{
		Name: "uvmfleet_jobs",
		Help: "Jobs by lifecycle state.",
		Kind: promexp.KindGauge,
		Samples: []promexp.Sample{
			{Labels: []promexp.Label{promexp.L("state", "queued")}, Value: float64(st.Jobs.Queued)},
			{Labels: []promexp.Label{promexp.L("state", "leased")}, Value: float64(st.Jobs.Leased)},
			{Labels: []promexp.Label{promexp.L("state", "done")}, Value: float64(st.Jobs.Done)},
			{Labels: []promexp.Label{promexp.L("state", "failed")}, Value: float64(st.Jobs.Failed)},
		},
	}

	depth := promexp.Family{
		Name: "uvmfleet_tenant_queue_depth",
		Help: "Queued jobs per tenant (fair-share dequeue unit).",
		Kind: promexp.KindGauge,
	}
	for _, t := range st.Tenants {
		depth.Samples = append(depth.Samples, promexp.Sample{
			Labels: []promexp.Label{promexp.L("tenant", t.Tenant)},
			Value:  float64(t.Queued),
		})
	}
	promexp.SortSamples(&depth)

	completions := promexp.Family{
		Name: "uvmfleet_completion_reports_total",
		Help: "Result reports by coordinator verdict; duplicate means byte-identical re-report, mismatch means a refused determinism violation.",
		Kind: promexp.KindCounter,
		Samples: []promexp.Sample{
			{Labels: []promexp.Label{promexp.L("verdict", "recorded")}, Value: float64(st.Counters.Completions)},
			{Labels: []promexp.Label{promexp.L("verdict", "duplicate")}, Value: float64(st.Counters.Duplicates)},
			{Labels: []promexp.Label{promexp.L("verdict", "stale")}, Value: float64(st.Counters.StaleReports)},
			{Labels: []promexp.Label{promexp.L("verdict", "mismatch")}, Value: float64(st.Counters.Mismatches)},
		},
	}

	fams := []promexp.Family{
		workersByState,
		ratio,
		jobs,
		promexp.Gauge("uvmfleet_leases_active",
			"Jobs currently held under a live lease.", float64(active)),
		depth,
		promexp.Counter("uvmfleet_jobs_submitted_total",
			"Jobs admitted to the durable queue.", float64(st.Counters.Submitted)),
		promexp.Counter("uvmfleet_quota_rejections_total",
			"Submissions rejected by per-tenant admission quotas.", float64(st.Counters.QuotaRejections)),
		promexp.Counter("uvmfleet_leases_granted_total",
			"Lease grants handed to workers.", float64(st.Counters.LeasesGranted)),
		promexp.Counter("uvmfleet_lease_deferrals_total",
			"Polls deferred because less-loaded workers could absorb the queue.", float64(st.Counters.LeaseDeferrals)),
		promexp.Counter("uvmfleet_lease_renewals_total",
			"Lease renewals accepted.", float64(st.Counters.Renewals)),
		promexp.Counter("uvmfleet_leases_expired_total",
			"Leases expired by TTL or holder death.", float64(st.Counters.LeasesExpired)),
		promexp.Counter("uvmfleet_requeues_total",
			"Failed or expired attempts sent back to the queue.", float64(st.Counters.Requeues)),
		promexp.Counter("uvmfleet_retries_exhausted_total",
			"Jobs failed permanently after exhausting the retry budget.", float64(st.Counters.RetriesExhausted)),
		completions,
		promexp.Counter("uvmfleet_workers_died_total",
			"Workers declared dead by heartbeat timeout.", float64(st.Counters.WorkersDied)),
		promexp.Counter("uvmfleet_workers_revived_total",
			"Workers that came back after being declared dead.", float64(st.Counters.WorkersRevived)),
		promexp.Counter("uvmfleet_orphaned_leases_total",
			"Leases found dangling in the journal at coordinator restart.", float64(st.Counters.OrphanedLeases)),
		promexp.Counter("uvmfleet_checkpoints_stored_total",
			"Snapshot uploads accepted from live leases.", float64(st.Counters.CheckpointsStored)),
		promexp.Counter("uvmfleet_checkpoint_resumes_total",
			"Lease grants that carried a stored snapshot for resume.", float64(st.Counters.CheckpointResumes)),
		promexp.Counter("uvmfleet_checkpoints_corrupt_total",
			"Snapshots workers rejected as unusable (restart-from-zero fallbacks).", float64(st.Counters.CheckpointsCorrupt)),
	}
	return fams
}

// String renders a one-line fleet summary for logs and the uvmfleet banner.
func (s FleetState) String() string {
	live := 0
	for _, w := range s.Workers {
		if w.Live {
			live++
		}
	}
	return fmt.Sprintf("workers %d/%d live, jobs queued=%d leased=%d done=%d failed=%d",
		live, len(s.Workers), s.Jobs.Queued, s.Jobs.Leased, s.Jobs.Done, s.Jobs.Failed)
}

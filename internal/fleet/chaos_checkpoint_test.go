package fleet

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"uvmdiscard/internal/checkpoint"
)

// The checkpoint chaos tests: a worker is SIGKILL'd deterministically right
// after its Nth snapshot upload lands at the coordinator, the lease expires,
// and a replacement worker picks the job up WITH the stored snapshot. The
// invariants:
//
//   - the resumed run's recorded output is byte-identical to an
//     uninterrupted run of the same spec;
//   - the resumed attempt re-executes strictly fewer steps than the full
//     run (the snapshot's steps were not re-simulated);
//   - a corrupt stored snapshot is rejected — never silently resumed — and
//     the attempt falls back to a from-zero run that still produces the
//     exact reference bytes, with the corruption counted.

// ckptSpec is the one checkpoint-aware quick artifact (24 windows of FIR).
var ckptSpec = JobSpec{Tenant: "ckpt", Experiment: "X10", Quick: true}

// ckptAttempt records what one runner invocation did with its checkpoint
// environment, captured after the run returns.
type ckptAttempt struct {
	worker string
	stats  checkpoint.Stats
	err    error
}

type ckptRecorder struct {
	mu       sync.Mutex
	attempts []ckptAttempt
}

func (r *ckptRecorder) add(a ckptAttempt) {
	r.mu.Lock()
	r.attempts = append(r.attempts, a)
	r.mu.Unlock()
}

// snapshot returns a copy of the attempts seen so far.
func (r *ckptRecorder) snapshot() []ckptAttempt {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]ckptAttempt(nil), r.attempts...)
}

// recordingRunner wraps RunExperiment so the test can see each attempt's
// checkpoint stats, and optionally kills the worker synchronously right
// after the killAfter-th snapshot upload succeeds — a deterministic
// mid-job SIGKILL landing between two step boundaries.
func recordingRunner(name string, rec *ckptRecorder, killAfter int, kill func()) RunnerFunc {
	return func(ctx context.Context, spec JobSpec, env *RunEnv) (string, error) {
		if killAfter > 0 && env != nil && env.Checkpoint != nil && env.Checkpoint.Save != nil {
			real := env.Checkpoint.Save
			saved := 0
			env.Checkpoint.Save = func(blob []byte) error {
				err := real(blob)
				if err == nil {
					saved++
					if saved == killAfter {
						kill()
					}
				}
				return err
			}
		}
		out, err := RunExperiment(ctx, spec, env)
		a := ckptAttempt{worker: name, err: err}
		if env != nil && env.Checkpoint != nil {
			a.stats = env.Checkpoint.Stats
		}
		rec.add(a)
		return out, err
	}
}

// ckptReference runs the spec uninterrupted in-process, returning the
// ground-truth bytes and the total step count a full run executes.
func ckptReference(t *testing.T) (string, int) {
	t.Helper()
	env := &RunEnv{Checkpoint: &checkpoint.Env{}}
	out, err := RunExperiment(context.Background(), ckptSpec, env)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if env.Checkpoint.Stats.StepsExecuted == 0 {
		t.Fatalf("reference run executed 0 steps; spec %+v is not checkpoint-aware", ckptSpec)
	}
	return out, env.Checkpoint.Stats.StepsExecuted
}

func ckptCoordConfig(t *testing.T, tag string) Config {
	cfg := Config{
		JournalPath:  t.TempDir() + "/fleet.journal",
		LeaseTTL:     400 * time.Millisecond,
		MaxAttempts:  10,
		RetryBackoff: 25 * time.Millisecond,
		MaxBackoff:   200 * time.Millisecond,
		TenantQuota:  8,
	}
	if testing.Verbose() {
		cfg.Log = log.New(os.Stderr, fmt.Sprintf("coord[%s]: ", tag), log.Lmicroseconds)
	}
	return cfg
}

// dumpChaosArtifacts registers a cleanup that, when the test has failed and
// CHAOS_ARTIFACTS names a directory, writes the coordinator's counters, job
// table, and every stored checkpoint blob there. CI's chaos matrix uploads
// that directory on failure, so a red seed ships with the exact snapshot
// state needed to replay it offline (decode with checkpoint.Decode, or hand
// the blob to a local worker).
func dumpChaosArtifacts(t *testing.T, cs *coordServer) {
	t.Cleanup(func() {
		dir := os.Getenv("CHAOS_ARTIFACTS")
		if dir == "" || !t.Failed() {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("chaos artifacts: %v", err)
			return
		}
		base := strings.ReplaceAll(t.Name(), "/", "_")
		cs.mu.Lock()
		coord := cs.coord
		cs.mu.Unlock()
		var sum strings.Builder
		coord.mu.Lock()
		fmt.Fprintf(&sum, "counters: %+v\n", coord.ctr)
		ids := make([]string, 0, len(coord.jobs))
		for id := range coord.jobs {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			j := coord.jobs[id]
			fmt.Fprintf(&sum, "job %s: state=%s attempt=%d worker=%q lastErr=%q checkpoint=%dB\n",
				id, j.State, j.Attempt, j.Worker, j.LastErr, len(j.Checkpoint))
			if len(j.Checkpoint) == 0 {
				continue
			}
			name := filepath.Join(dir, fmt.Sprintf("%s-%s.ckpt", base, id))
			if err := os.WriteFile(name, j.Checkpoint, 0o644); err != nil {
				t.Logf("chaos artifacts: %v", err)
			}
		}
		coord.mu.Unlock()
		if err := os.WriteFile(filepath.Join(dir, base+".txt"), []byte(sum.String()), 0o644); err != nil {
			t.Logf("chaos artifacts: %v", err)
		}
		t.Logf("chaos artifacts for %s written under %s", t.Name(), dir)
	})
}

// awaitJobDone polls until the job completes, failing the test on permanent
// failure or timeout.
func awaitJobDone(t *testing.T, client *Client, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(90 * time.Second)
	for {
		st, err := client.Job(context.Background(), id)
		if err == nil {
			switch st.State {
			case JobDone:
				return st
			case JobFailed:
				t.Fatalf("job %s failed permanently after %d attempts: %s", id, st.Attempt, st.LastErr)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never completed (last err %v)", id, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func TestChaosFleetCheckpointResume(t *testing.T) {
	refOut, totalSteps := ckptReference(t)

	cs := startCoordServer(t, ckptCoordConfig(t, "ckpt-resume"))
	defer cs.crash()
	dumpChaosArtifacts(t, cs)
	client := NewClient(cs.url())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	rec := &ckptRecorder{}

	const killAfter = 3
	var w1 *Worker
	w1 = NewWorker(WorkerConfig{
		Name:              "w1",
		PollInterval:      20 * time.Millisecond,
		HeartbeatInterval: 100 * time.Millisecond,
		CheckpointEvery:   1,
		Runner:            recordingRunner("w1", rec, killAfter, func() { w1.Kill() }),
	}, client)
	wg.Add(1)
	go func() { defer wg.Done(); _ = w1.Run(ctx) }()

	st, err := client.Submit(context.Background(), ckptSpec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Wait for the deterministic kill: w1 dies inside its killAfter-th
	// successful snapshot upload, so the coordinator holds exactly that
	// snapshot when the lease expires.
	killDeadline := time.Now().Add(30 * time.Second)
	for !w1.Killed() {
		if time.Now().After(killDeadline) {
			t.Fatalf("w1 was never killed; stored=%d", cs.counters().CheckpointsStored)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The replacement joins after the kill and must receive the snapshot.
	w2 := NewWorker(WorkerConfig{
		Name:              "w2",
		PollInterval:      20 * time.Millisecond,
		HeartbeatInterval: 100 * time.Millisecond,
		CheckpointEvery:   1,
		Runner:            recordingRunner("w2", rec, 0, nil),
	}, client)
	wg.Add(1)
	go func() { defer wg.Done(); _ = w2.Run(ctx) }()

	done := awaitJobDone(t, client, st.ID)
	if done.Output != refOut {
		t.Errorf("resumed job output diverged from uninterrupted run\ngot:\n%s\nwant:\n%s", done.Output, refOut)
	}

	// The successful attempt must have resumed, at or past the kill point,
	// and re-executed strictly fewer steps than a full run.
	var okRuns []ckptAttempt
	for _, a := range rec.snapshot() {
		if a.err == nil {
			okRuns = append(okRuns, a)
		}
	}
	if len(okRuns) != 1 {
		t.Fatalf("want exactly 1 successful attempt, got %d: %+v", len(okRuns), okRuns)
	}
	got := okRuns[0]
	if !got.stats.Resumed {
		t.Errorf("successful attempt did not resume from the stored snapshot: %+v", got.stats)
	}
	if got.stats.ResumedFrom < killAfter {
		t.Errorf("resumed from step %d, want >= %d (the snapshots stored before the kill)",
			got.stats.ResumedFrom, killAfter)
	}
	if got.stats.StepsExecuted >= totalSteps {
		t.Errorf("resumed attempt executed %d steps, want strictly fewer than the full run's %d",
			got.stats.StepsExecuted, totalSteps)
	}
	if got.stats.StepsExecuted+got.stats.ResumedFrom != totalSteps {
		t.Errorf("steps executed (%d) + resume point (%d) != total steps (%d)",
			got.stats.StepsExecuted, got.stats.ResumedFrom, totalSteps)
	}

	ctr := cs.counters()
	if ctr.CheckpointsStored < killAfter {
		t.Errorf("checkpoints stored = %d, want >= %d", ctr.CheckpointsStored, killAfter)
	}
	if ctr.CheckpointResumes < 1 {
		t.Errorf("checkpoint resumes = %d, want >= 1", ctr.CheckpointResumes)
	}
	if ctr.Mismatches != 0 {
		t.Errorf("determinism violations: %d mismatched reports", ctr.Mismatches)
	}
	t.Logf("resumed at step %d/%d on %s: re-executed %d steps (saved %d), stored=%d resumes=%d",
		got.stats.ResumedFrom, totalSteps, got.worker, got.stats.StepsExecuted,
		got.stats.ResumedFrom, ctr.CheckpointsStored, ctr.CheckpointResumes)

	cancel()
	wg.Wait()
}

func TestChaosFleetCheckpointCorrupt(t *testing.T) {
	refOut, totalSteps := ckptReference(t)

	cs := startCoordServer(t, ckptCoordConfig(t, "ckpt-corrupt"))
	defer cs.crash()
	dumpChaosArtifacts(t, cs)
	client := NewClient(cs.url())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	rec := &ckptRecorder{}

	const killAfter = 2
	var w1 *Worker
	w1 = NewWorker(WorkerConfig{
		Name:              "w1",
		PollInterval:      20 * time.Millisecond,
		HeartbeatInterval: 100 * time.Millisecond,
		CheckpointEvery:   1,
		Runner:            recordingRunner("w1", rec, killAfter, func() { w1.Kill() }),
	}, client)
	wg.Add(1)
	go func() { defer wg.Done(); _ = w1.Run(ctx) }()

	st, err := client.Submit(context.Background(), ckptSpec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	killDeadline := time.Now().Add(30 * time.Second)
	for !w1.Killed() {
		if time.Now().After(killDeadline) {
			t.Fatalf("w1 was never killed; stored=%d", cs.counters().CheckpointsStored)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Corrupt the stored snapshot in place — a flipped payload bit, the
	// disk-rot equivalent. The next attempt must detect it (checksum), tell
	// the coordinator, and restart from zero.
	cs.mu.Lock()
	coord := cs.coord
	cs.mu.Unlock()
	coord.mu.Lock()
	j := coord.jobs[st.ID]
	if j == nil || len(j.Checkpoint) == 0 {
		coord.mu.Unlock()
		t.Fatalf("no stored checkpoint to corrupt (job %+v)", j)
	}
	j.Checkpoint[len(j.Checkpoint)-1] ^= 0x40
	coord.mu.Unlock()

	w2 := NewWorker(WorkerConfig{
		Name:              "w2",
		PollInterval:      20 * time.Millisecond,
		HeartbeatInterval: 100 * time.Millisecond,
		CheckpointEvery:   1,
		Runner:            recordingRunner("w2", rec, 0, nil),
	}, client)
	wg.Add(1)
	go func() { defer wg.Done(); _ = w2.Run(ctx) }()

	done := awaitJobDone(t, client, st.ID)
	if done.Output != refOut {
		t.Errorf("fallback job output diverged from uninterrupted run\ngot:\n%s\nwant:\n%s", done.Output, refOut)
	}

	var okRuns []ckptAttempt
	for _, a := range rec.snapshot() {
		if a.err == nil {
			okRuns = append(okRuns, a)
		}
	}
	if len(okRuns) != 1 {
		t.Fatalf("want exactly 1 successful attempt, got %d: %+v", len(okRuns), okRuns)
	}
	got := okRuns[0]
	if !got.stats.Rejected {
		t.Errorf("corrupt snapshot was not rejected: %+v", got.stats)
	}
	if got.stats.Resumed {
		t.Errorf("corrupt snapshot was silently resumed: %+v", got.stats)
	}
	if got.stats.StepsExecuted != totalSteps {
		t.Errorf("fallback run executed %d steps, want the full run's %d", got.stats.StepsExecuted, totalSteps)
	}

	ctr := cs.counters()
	if ctr.CheckpointsCorrupt < 1 {
		t.Errorf("checkpoints corrupt = %d, want >= 1 (the rejection must be counted)", ctr.CheckpointsCorrupt)
	}
	if ctr.Mismatches != 0 {
		t.Errorf("determinism violations: %d mismatched reports", ctr.Mismatches)
	}
	t.Logf("corrupt snapshot rejected on %s; from-zero rerun executed %d/%d steps, corrupt=%d",
		got.worker, got.stats.StepsExecuted, totalSteps, ctr.CheckpointsCorrupt)

	cancel()
	wg.Wait()
}

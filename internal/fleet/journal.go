package fleet

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// The coordinator journal is an append-only JSON-lines log (internal/jsonl:
// fsync per record, torn-tail repair on open) of every job state transition
// that must survive a coordinator crash:
//
//	submit — a job entered the durable queue
//	lease  — attempt N was handed to a worker (fsync'd BEFORE the grant is
//	         returned, so attempt numbers are monotonic across restarts and
//	         a restarted coordinator can never re-issue an attempt number a
//	         worker already holds)
//	retry  — attempt N ended without a result (expiry, worker death, or a
//	         failure report) and the job went back to the queue
//	done   — the job's result bytes were recorded. Terminal.
//	fail   — the retry budget was exhausted; the last error is preserved.
//	         Terminal.
//
// Renewals are deliberately not journaled: a renewal only moves a lease
// expiry forward in wall time, and wall time does not survive a restart
// anyway. On replay, a job whose last record is a lease is an orphaned
// lease — its worker may be dead, or may still be running and about to
// report to the reborn coordinator — and is requeued through the normal
// retry path (same backoff, same budget). If the old attempt does land
// later, the attempt check classifies it stale; the job simply runs again,
// and determinism makes the re-run byte-identical.
type journalRec struct {
	Op      string   `json:"op"`
	ID      string   `json:"id"`
	Spec    *JobSpec `json:"spec,omitempty"`
	Attempt int      `json:"attempt,omitempty"`
	Worker  string   `json:"worker,omitempty"`
	Output  string   `json:"output,omitempty"`
	Err     string   `json:"err,omitempty"`
}

// appendRecLocked journals one transition, fsync'd. A nil appender (in-memory
// coordinator) accepts everything.
func (c *Coordinator) appendRecLocked(rec journalRec) error {
	if c.ap == nil {
		return nil
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fleet journal: %w", err)
	}
	if err := c.ap.Append(line); err != nil {
		return fmt.Errorf("fleet journal: %w", err)
	}
	return nil
}

// replayRecLocked applies one journal record to coordinator state during Open.
// Replay is strict: a record that does not compose with the state built so
// far (duplicate submit, lease of an unknown job, done without a lease) is
// interior corruption and fails the open — except when jsonl classifies it
// as a torn tail, in which case it is truncated and the transition simply
// re-happens live.
func (c *Coordinator) replayRecLocked(rec journalRec) error {
	switch rec.Op {
	case "submit":
		if rec.ID == "" || rec.Spec == nil {
			return fmt.Errorf("submit record missing id or spec")
		}
		if _, ok := c.jobs[rec.ID]; ok {
			return fmt.Errorf("duplicate submit for job %s", rec.ID)
		}
		if err := rec.Spec.Validate(); err != nil {
			return fmt.Errorf("submit %s: %v", rec.ID, err)
		}
		j := &jobRec{ID: rec.ID, Spec: *rec.Spec, State: JobQueued, seq: c.nextSeqLocked()}
		c.jobs[rec.ID] = j
		c.enqueueLocked(j, c.cfg.now())
		c.noteJobIDLocked(rec.ID)
	case "lease":
		j, ok := c.jobs[rec.ID]
		if !ok {
			return fmt.Errorf("lease for unknown job %s", rec.ID)
		}
		if j.State.Terminal() {
			return fmt.Errorf("lease for terminal job %s", rec.ID)
		}
		if rec.Attempt != j.Attempt+1 {
			return fmt.Errorf("lease for job %s skips attempt (have %d, record %d)", rec.ID, j.Attempt, rec.Attempt)
		}
		c.dequeueLocked(j)
		j.State = JobLeased
		j.Attempt = rec.Attempt
		j.Worker = rec.Worker
		// Expiry is left zero: wall time did not survive the restart, and
		// recoverOrphans requeues every still-leased job anyway.
	case "retry":
		j, ok := c.jobs[rec.ID]
		if !ok {
			return fmt.Errorf("retry for unknown job %s", rec.ID)
		}
		if j.State.Terminal() {
			return fmt.Errorf("retry for terminal job %s", rec.ID)
		}
		j.State = JobQueued
		j.Worker = ""
		j.LastErr = rec.Err
		c.enqueueLocked(j, c.cfg.now().Add(c.backoff(j.Attempt)))
	case "done":
		j, ok := c.jobs[rec.ID]
		if !ok {
			return fmt.Errorf("done for unknown job %s", rec.ID)
		}
		if j.State.Terminal() {
			return fmt.Errorf("done for terminal job %s", rec.ID)
		}
		c.dequeueLocked(j)
		j.State = JobDone
		j.Worker = rec.Worker
		j.Output = rec.Output
		j.LastErr = ""
	case "fail":
		j, ok := c.jobs[rec.ID]
		if !ok {
			return fmt.Errorf("fail for unknown job %s", rec.ID)
		}
		if j.State.Terminal() {
			return fmt.Errorf("fail for terminal job %s", rec.ID)
		}
		c.dequeueLocked(j)
		j.State = JobFailed
		j.Worker = ""
		j.LastErr = rec.Err
	default:
		return fmt.Errorf("unknown op %q", rec.Op)
	}
	return nil
}

// jobIDPrefix shapes coordinator-assigned job IDs: fj-1, fj-2, ...
const jobIDPrefix = "fj-"

// noteJobIDLocked keeps the ID counter ahead of every replayed ID so a restarted
// coordinator never reassigns one.
func (c *Coordinator) noteJobIDLocked(id string) {
	n, err := strconv.ParseInt(strings.TrimPrefix(id, jobIDPrefix), 10, 64)
	if err == nil && n > c.lastJobNum {
		c.lastJobNum = n
	}
}

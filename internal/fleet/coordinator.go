package fleet

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"uvmdiscard/internal/jsonl"
)

// jobRec is the coordinator's in-memory record of one job. Guarded by
// Coordinator.mu.
type jobRec struct {
	ID      string
	Spec    JobSpec
	State   JobState
	Attempt int    // lease attempts issued so far; the current lease's number while leased
	Worker  string // current lease holder (leased) or completing worker (done)
	Output  string // recorded result (done)
	LastErr string // most recent attempt error / expiry reason

	Expiry    time.Time // lease expiry (leased only)
	NotBefore time.Time // retry-backoff gate (queued only)
	seq       int64     // submission order, for stable observability output

	// Checkpoint is the latest snapshot a lease holder uploaded, handed to
	// the next attempt so a requeued job resumes instead of restarting.
	// Deliberately soft state — never journaled: losing it to a coordinator
	// crash costs re-execution (the job restarts from zero), never
	// correctness, and keeps multi-megabyte blobs out of the fsync'd
	// journal's write path. Cleared on successful completion.
	Checkpoint []byte
}

// workerRec is the coordinator's soft-state record of one worker. Worker
// registration is not journaled: registry state is rebuilt by the workers
// themselves, which re-register whenever the coordinator answers
// ErrUnknownWorker.
type workerRec struct {
	Name     string
	Capacity int
	MemBytes uint64
	LastHB   time.Time
	Live     bool
	Active   map[string]bool // job IDs currently leased to this worker
}

// Coordinator owns the durable job queue and the lease protocol. All methods
// are safe for concurrent use; every public entry point first sweeps for
// expired leases and dead workers, so the protocol needs no background
// goroutine — time advances whenever anyone talks to the coordinator (and
// whenever Prometheus scrapes it).
type Coordinator struct {
	cfg Config

	mu         sync.Mutex
	ap         *jsonl.Appender // nil when running in-memory
	jobs       map[string]*jobRec
	queues     map[string][]*jobRec // per-tenant FIFO of queued jobs
	tenantsSeq []string             // tenants in first-seen order (fair-share ring)
	rrNext     int                  // fair-share ring position
	workers    map[string]*workerRec
	lastJobNum int64
	seqCounter int64
	ctr        Counters
	closed     bool
}

// New builds a coordinator, replaying the journal at cfg.JournalPath if one
// is configured. Jobs that were leased when the previous coordinator died
// (orphaned leases) are requeued through the normal retry path.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:     cfg,
		jobs:    make(map[string]*jobRec),
		queues:  make(map[string][]*jobRec),
		workers: make(map[string]*workerRec),
	}
	if cfg.JournalPath != "" {
		ap, err := jsonl.Open(cfg.JournalPath, func(line []byte) error {
			var rec journalRec
			if err := json.Unmarshal(line, &rec); err != nil {
				return err
			}
			return c.replayRecLocked(rec)
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: open journal: %w", err)
		}
		c.ap = ap
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	for _, j := range c.jobs {
		if j.State != JobLeased {
			continue
		}
		c.ctr.OrphanedLeases++
		c.logf("fleet: job %s attempt %d orphaned by restart (was on %s); requeueing", j.ID, j.Attempt, j.Worker)
		c.requeueLocked(j, fmt.Sprintf("lease lost: coordinator restarted during attempt %d on worker %s", j.Attempt, j.Worker), now)
	}
	return c, nil
}

// Close releases the journal. In-flight protocol state stays readable.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.ap == nil {
		return nil
	}
	if err := c.ap.Close(); err != nil {
		return fmt.Errorf("fleet: close journal: %w", err)
	}
	return nil
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		c.cfg.Log.Printf(format, args...)
	}
}

func (c *Coordinator) nextSeqLocked() int64 {
	c.seqCounter++
	return c.seqCounter
}

// Register upserts a worker. Registration is idempotent and survives
// re-registration with new capacity; a worker that was declared dead comes
// back live.
func (c *Coordinator) Register(name string, capacity int, memBytes uint64) error {
	if !nameOK.MatchString(name) {
		return fmt.Errorf("fleet: worker name %q: want 1-64 chars of [A-Za-z0-9._-]", name)
	}
	if capacity < 1 || capacity > 1024 {
		return fmt.Errorf("fleet: worker %s capacity %d: want 1..1024", name, capacity)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	c.sweepLocked(now)
	w := c.workers[name]
	if w == nil {
		// Born live so first contact is a registration, not a "revival".
		w = &workerRec{Name: name, Live: true, Active: make(map[string]bool)}
		c.workers[name] = w
		c.logf("fleet: worker %s registered (capacity %d)", name, capacity)
	}
	w.Capacity = capacity
	w.MemBytes = memBytes
	c.touchWorkerLocked(w, now)
	return nil
}

// Heartbeat records that a worker is alive.
func (c *Coordinator) Heartbeat(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	c.sweepLocked(now)
	w := c.workers[name]
	if w == nil {
		return fmt.Errorf("%w: %s", ErrUnknownWorker, name)
	}
	c.touchWorkerLocked(w, now)
	return nil
}

func (c *Coordinator) touchWorkerLocked(w *workerRec, now time.Time) {
	w.LastHB = now
	if !w.Live {
		w.Live = true
		c.ctr.WorkersRevived++
		c.logf("fleet: worker %s is back", w.Name)
	}
}

// Submit admits one job to the durable queue, subject to the tenant's
// admission quota over non-terminal (queued + leased) jobs.
func (c *Coordinator) Submit(spec JobSpec) (JobStatus, error) {
	if err := spec.Validate(); err != nil {
		return JobStatus{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	c.sweepLocked(now)
	open := 0
	for _, j := range c.jobs {
		if j.Spec.Tenant == spec.Tenant && !j.State.Terminal() {
			open++
		}
	}
	if open >= c.cfg.TenantQuota {
		c.ctr.QuotaRejections++
		return JobStatus{}, fmt.Errorf("%w: tenant %s has %d open jobs (quota %d)", ErrQuota, spec.Tenant, open, c.cfg.TenantQuota)
	}
	id := fmt.Sprintf("%s%d", jobIDPrefix, c.lastJobNum+1)
	if err := c.appendRecLocked(journalRec{Op: "submit", ID: id, Spec: &spec}); err != nil {
		return JobStatus{}, err
	}
	c.lastJobNum++
	j := &jobRec{ID: id, Spec: spec, State: JobQueued, seq: c.nextSeqLocked()}
	c.jobs[id] = j
	c.enqueueLocked(j, now)
	c.ctr.Submitted++
	return c.jobStatusLocked(j), nil
}

// Job returns the current status of one job.
func (c *Coordinator) Job(id string) (JobStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked(c.cfg.now())
	j := c.jobs[id]
	if j == nil {
		return JobStatus{}, fmt.Errorf("%w: %s", ErrNoSuchJob, id)
	}
	return c.jobStatusLocked(j), nil
}

func (c *Coordinator) jobStatusLocked(j *jobRec) JobStatus {
	return JobStatus{
		ID:      j.ID,
		Spec:    j.Spec,
		State:   j.State,
		Attempt: j.Attempt,
		Worker:  j.Worker,
		Output:  j.Output,
		LastErr: j.LastErr,
	}
}

// Lease hands the polling worker one eligible job under a fresh lease, or
// nil when there is nothing for it: queue empty, worker at capacity, or the
// poll is deferred because strictly less-loaded live workers can absorb the
// whole eligible queue (placement by oversubscription ratio — scarce jobs go
// to the least-loaded workers).
//
// The lease record is fsync'd before the grant returns, so attempt numbers
// are monotonic across coordinator crashes: a restarted coordinator can
// never hand out an attempt number an existing worker already holds.
func (c *Coordinator) Lease(workerName string) (*LeaseGrant, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	c.sweepLocked(now)
	w := c.workers[workerName]
	if w == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownWorker, workerName)
	}
	c.touchWorkerLocked(w, now)
	if len(w.Active) >= w.Capacity {
		return nil, nil
	}
	eligible := c.eligibleLocked(now)
	if eligible == 0 {
		return nil, nil
	}
	if c.shouldDeferLocked(w, eligible) {
		c.ctr.LeaseDeferrals++
		return nil, nil
	}
	j := c.pickLocked(now)
	if j == nil {
		return nil, nil
	}
	attempt := j.Attempt + 1
	if err := c.appendRecLocked(journalRec{Op: "lease", ID: j.ID, Attempt: attempt, Worker: w.Name}); err != nil {
		return nil, err
	}
	c.dequeueLocked(j)
	j.State = JobLeased
	j.Attempt = attempt
	j.Worker = w.Name
	j.Expiry = now.Add(c.cfg.LeaseTTL)
	j.NotBefore = time.Time{}
	w.Active[j.ID] = true
	c.ctr.LeasesGranted++
	if len(j.Checkpoint) > 0 {
		c.ctr.CheckpointResumes++
		c.logf("fleet: job %s attempt %d: handing %d-byte checkpoint to %s for resume", j.ID, attempt, len(j.Checkpoint), w.Name)
	}
	return &LeaseGrant{
		JobID:      j.ID,
		Attempt:    attempt,
		Spec:       j.Spec,
		TTLMillis:  c.cfg.LeaseTTL.Milliseconds(),
		Checkpoint: j.Checkpoint,
	}, nil
}

// MaxCheckpointBytes bounds one job's stored snapshot; uploads beyond it are
// refused (and the HTTP layer caps request bodies to match).
const MaxCheckpointBytes = 8 << 20

// SaveCheckpoint stores a snapshot uploaded by the current lease holder of
// (jobID, attempt). The same staleness rules as Renew apply — a superseded
// attempt cannot overwrite the blob a newer attempt will resume from. An
// accepted upload also extends the lease: uploading is as strong a liveness
// signal as renewal.
func (c *Coordinator) SaveCheckpoint(workerName, jobID string, attempt int, blob []byte) error {
	if len(blob) == 0 {
		return fmt.Errorf("fleet: empty checkpoint blob")
	}
	if len(blob) > MaxCheckpointBytes {
		return fmt.Errorf("fleet: checkpoint blob %d bytes exceeds cap %d", len(blob), MaxCheckpointBytes)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	c.sweepLocked(now)
	if w := c.workers[workerName]; w != nil {
		c.touchWorkerLocked(w, now)
	}
	j := c.jobs[jobID]
	if j == nil {
		return fmt.Errorf("%w: job %s is unknown", ErrStale, jobID)
	}
	if j.State != JobLeased || j.Worker != workerName || j.Attempt != attempt {
		return fmt.Errorf("%w: job %s attempt %d (current: %s attempt %d on %q)",
			ErrStale, jobID, attempt, j.State, j.Attempt, j.Worker)
	}
	j.Checkpoint = append(j.Checkpoint[:0], blob...)
	j.Expiry = now.Add(c.cfg.LeaseTTL)
	c.ctr.CheckpointsStored++
	return nil
}

// RejectCheckpoint records that the current lease holder found the granted
// snapshot unusable (torn, corrupt, wrong digest, failed audit). The stored
// blob is dropped so no later attempt receives it again, and the event is
// counted — a corrupt checkpoint must surface in metrics, never be silently
// retried forever.
func (c *Coordinator) RejectCheckpoint(workerName, jobID string, attempt int, reason string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	c.sweepLocked(now)
	if w := c.workers[workerName]; w != nil {
		c.touchWorkerLocked(w, now)
	}
	j := c.jobs[jobID]
	if j == nil {
		return fmt.Errorf("%w: job %s is unknown", ErrStale, jobID)
	}
	if j.State != JobLeased || j.Worker != workerName || j.Attempt != attempt {
		return fmt.Errorf("%w: job %s attempt %d (current: %s attempt %d on %q)",
			ErrStale, jobID, attempt, j.State, j.Attempt, j.Worker)
	}
	j.Checkpoint = nil
	c.ctr.CheckpointsCorrupt++
	c.logf("fleet: job %s attempt %d on %s rejected its checkpoint: %s (restarting from zero)",
		jobID, attempt, workerName, reason)
	return nil
}

// shouldDeferLocked implements placement scoring: would granting to w leave
// it more oversubscribed than peers that could take the work instead? Each
// worker's post-grant oversubscription ratio is (active+1)/capacity; if the
// free slots of strictly better-scored live workers cover every eligible
// job, w's poll is deferred. Ties never defer each other, so the least-
// loaded workers always make progress and a deferral can never deadlock the
// queue.
func (c *Coordinator) shouldDeferLocked(w *workerRec, eligible int) bool {
	postW := float64(len(w.Active)+1) / float64(w.Capacity)
	betterFree := 0
	for _, v := range c.workers {
		if v == w || !v.Live || len(v.Active) >= v.Capacity {
			continue
		}
		postV := float64(len(v.Active)+1) / float64(v.Capacity)
		if postV < postW {
			betterFree += v.Capacity - len(v.Active)
		}
	}
	return betterFree >= eligible && betterFree > 0
}

// Renew extends the lease on (jobID, attempt) held by workerName. A renewal
// for an attempt that no longer holds the lease — it expired and was
// requeued, the job was re-leased elsewhere, or the coordinator restarted —
// fails with ErrStale, telling the worker to abandon the run.
func (c *Coordinator) Renew(workerName, jobID string, attempt int) (time.Time, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	c.sweepLocked(now)
	if w := c.workers[workerName]; w != nil {
		c.touchWorkerLocked(w, now)
	}
	j := c.jobs[jobID]
	if j == nil {
		return time.Time{}, fmt.Errorf("%w: job %s is unknown", ErrStale, jobID)
	}
	if j.State != JobLeased || j.Worker != workerName || j.Attempt != attempt {
		return time.Time{}, fmt.Errorf("%w: job %s attempt %d (current: %s attempt %d on %q)",
			ErrStale, jobID, attempt, j.State, j.Attempt, j.Worker)
	}
	j.Expiry = now.Add(c.cfg.LeaseTTL)
	c.ctr.Renewals++
	return j.Expiry, nil
}

// Complete reports the outcome of (jobID, attempt) from workerName,
// idempotently. errMsg == "" reports success with the rendered result in
// output; otherwise the attempt failed and the job is requeued (or, with
// the retry budget exhausted, failed permanently).
//
// Exactly-once results over at-least-once execution: only the current
// attempt of a live lease may record a result (the done record is fsync'd
// before the state flips); any report from a superseded attempt is
// classified CompleteStale and discarded; a repeat success report for a
// done job must match the recorded bytes exactly — a match is a counted
// duplicate, a mismatch is a refused determinism violation (ErrMismatch).
func (c *Coordinator) Complete(workerName, jobID string, attempt int, output, errMsg string) (CompleteStatus, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	c.sweepLocked(now)
	if w := c.workers[workerName]; w != nil {
		c.touchWorkerLocked(w, now)
	}
	j := c.jobs[jobID]
	if j == nil {
		return "", fmt.Errorf("%w: %s", ErrNoSuchJob, jobID)
	}
	if j.State == JobDone {
		if errMsg != "" {
			c.ctr.StaleReports++
			return CompleteStale, nil
		}
		if output == j.Output {
			c.ctr.Duplicates++
			c.logf("fleet: job %s: duplicate result from %s attempt %d, byte-identical as required", jobID, workerName, attempt)
			return CompleteDuplicate, nil
		}
		c.ctr.Mismatches++
		return "", fmt.Errorf("%w: job %s attempt %d from %s", ErrMismatch, jobID, attempt, workerName)
	}
	if j.State != JobLeased || j.Worker != workerName || j.Attempt != attempt {
		c.ctr.StaleReports++
		return CompleteStale, nil
	}
	if errMsg != "" {
		c.logf("fleet: job %s attempt %d failed on %s: %s", jobID, attempt, workerName, errMsg)
		c.requeueLocked(j, errMsg, now)
		if j.State == JobFailed {
			return CompleteFailedPermanent, nil
		}
		return CompleteRecorded, nil
	}
	if err := c.appendRecLocked(journalRec{Op: "done", ID: jobID, Attempt: attempt, Worker: workerName, Output: output}); err != nil {
		return "", err
	}
	if w := c.workers[workerName]; w != nil {
		delete(w.Active, jobID)
	}
	j.State = JobDone
	j.Output = output
	j.LastErr = ""
	j.Checkpoint = nil
	c.ctr.Completions++
	return CompleteRecorded, nil
}

// State snapshots the whole fleet for GET /v1/fleet and /metrics.
func (c *Coordinator) State() FleetState {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.now()
	c.sweepLocked(now)
	st := FleetState{Counters: c.ctr}
	for _, w := range c.workers {
		st.Workers = append(st.Workers, WorkerStatus{
			Name:               w.Name,
			Capacity:           w.Capacity,
			MemBytes:           w.MemBytes,
			Active:             len(w.Active),
			Live:               w.Live,
			Ratio:              float64(len(w.Active)) / float64(w.Capacity),
			HeartbeatAgeMillis: now.Sub(w.LastHB).Milliseconds(),
		})
	}
	sort.Slice(st.Workers, func(i, k int) bool { return st.Workers[i].Name < st.Workers[k].Name })
	leased := make(map[string]int)
	for _, j := range c.jobs {
		switch j.State {
		case JobQueued:
			st.Jobs.Queued++
		case JobLeased:
			st.Jobs.Leased++
			leased[j.Spec.Tenant]++
		case JobDone:
			st.Jobs.Done++
		case JobFailed:
			st.Jobs.Failed++
		}
	}
	for _, t := range c.tenantsSeq {
		st.Tenants = append(st.Tenants, TenantStatus{
			Tenant: t,
			Queued: len(c.queues[t]),
			Leased: leased[t],
			Quota:  c.cfg.TenantQuota,
		})
	}
	sort.Slice(st.Tenants, func(i, k int) bool { return st.Tenants[i].Tenant < st.Tenants[k].Tenant })
	return st
}

// sweepLocked advances the failure detectors: workers silent past the
// heartbeat timeout are declared dead, and leases that expired — or whose
// holder is dead, which expires them immediately rather than waiting out
// the TTL — are requeued. Called at every public entry point, so the
// protocol makes progress without a background ticker.
func (c *Coordinator) sweepLocked(now time.Time) {
	for _, w := range c.workers {
		if w.Live && now.Sub(w.LastHB) > c.cfg.HeartbeatTimeout {
			w.Live = false
			c.ctr.WorkersDied++
			c.logf("fleet: worker %s declared dead (silent for %v)", w.Name, now.Sub(w.LastHB))
		}
	}
	for _, j := range c.jobs {
		if j.State != JobLeased {
			continue
		}
		w := c.workers[j.Worker]
		holderDead := w == nil || !w.Live
		if !holderDead && now.Before(j.Expiry) {
			continue
		}
		c.ctr.LeasesExpired++
		reason := fmt.Sprintf("lease expired during attempt %d on worker %s", j.Attempt, j.Worker)
		if holderDead {
			reason = fmt.Sprintf("worker %s died during attempt %d", j.Worker, j.Attempt)
		}
		c.logf("fleet: job %s: %s", j.ID, reason)
		c.requeueLocked(j, reason, now)
	}
}

// requeueLocked ends the current attempt with errMsg and either requeues
// the job behind an exponential-backoff gate or, with the retry budget
// spent, fails it permanently. The last error is preserved either way.
func (c *Coordinator) requeueLocked(j *jobRec, errMsg string, now time.Time) {
	if w := c.workers[j.Worker]; w != nil {
		delete(w.Active, j.ID)
	}
	j.LastErr = errMsg
	j.Expiry = time.Time{}
	if j.Attempt >= c.cfg.MaxAttempts {
		if err := c.appendRecLocked(journalRec{Op: "fail", ID: j.ID, Attempt: j.Attempt, Err: errMsg}); err != nil {
			c.logf("fleet: job %s: journaling permanent failure: %v", j.ID, err)
		}
		j.State = JobFailed
		j.Worker = ""
		c.ctr.RetriesExhausted++
		c.logf("fleet: job %s failed permanently after %d attempts: %s", j.ID, j.Attempt, errMsg)
		return
	}
	if err := c.appendRecLocked(journalRec{Op: "retry", ID: j.ID, Attempt: j.Attempt, Err: errMsg}); err != nil {
		c.logf("fleet: job %s: journaling retry: %v", j.ID, err)
	}
	j.State = JobQueued
	j.Worker = ""
	c.ctr.Requeues++
	c.enqueueLocked(j, now.Add(c.backoff(j.Attempt)))
}

// backoff is the requeue delay after `attempts` consumed attempts:
// RetryBackoff×2^(attempts-1), capped at MaxBackoff. Deterministic — no
// jitter — because chaos runs must be reproducible from their seed.
func (c *Coordinator) backoff(attempts int) time.Duration {
	if attempts < 1 {
		attempts = 1
	}
	shift := attempts - 1
	if shift > 20 {
		shift = 20
	}
	d := c.cfg.RetryBackoff << shift
	if d <= 0 || d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	return d
}

// enqueueLocked puts a queued job at the back of its tenant's FIFO with the
// given backoff gate.
func (c *Coordinator) enqueueLocked(j *jobRec, notBefore time.Time) {
	j.NotBefore = notBefore
	t := j.Spec.Tenant
	if _, seen := c.queues[t]; !seen {
		c.tenantsSeq = append(c.tenantsSeq, t)
	}
	c.queues[t] = append(c.queues[t], j)
}

// dequeueLocked removes a job from its tenant's queue if present.
func (c *Coordinator) dequeueLocked(j *jobRec) {
	t := j.Spec.Tenant
	q := c.queues[t]
	for i, cand := range q {
		if cand == j {
			c.queues[t] = append(q[:i], q[i+1:]...)
			return
		}
	}
}

// eligibleLocked counts queued jobs whose backoff gate has opened.
func (c *Coordinator) eligibleLocked(now time.Time) int {
	n := 0
	for _, q := range c.queues {
		for _, j := range q {
			if !now.Before(j.NotBefore) {
				n++
			}
		}
	}
	return n
}

// pickLocked dequeues fair-share: tenants are visited round-robin from
// where the last grant left off, and within a tenant the oldest eligible
// job wins. One tenant's burst therefore costs other tenants at most one
// position per grant, never the whole queue.
func (c *Coordinator) pickLocked(now time.Time) *jobRec {
	n := len(c.tenantsSeq)
	for i := 0; i < n; i++ {
		t := c.tenantsSeq[(c.rrNext+i)%n]
		for _, j := range c.queues[t] {
			if !now.Before(j.NotBefore) {
				c.rrNext = (c.rrNext + i + 1) % n
				return j
			}
		}
	}
	return nil
}

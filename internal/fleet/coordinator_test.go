package fleet

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock drives the coordinator's injectable clock so lease expiry,
// heartbeat timeouts, and backoff gates are tested deterministically, with
// no sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// testConfig is the protocol-test baseline: short, round numbers so the
// assertions read as the state machine they exercise.
func testConfig(clk *fakeClock) Config {
	return Config{
		LeaseTTL:         10 * time.Second,
		HeartbeatTimeout: 30 * time.Second,
		MaxAttempts:      3,
		RetryBackoff:     1 * time.Second,
		MaxBackoff:       8 * time.Second,
		TenantQuota:      16,
		now:              clk.Now,
	}
}

func newTestCoord(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		if err := c.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return c
}

func mustRegister(t *testing.T, c *Coordinator, name string, capacity int) {
	t.Helper()
	if err := c.Register(name, capacity, 0); err != nil {
		t.Fatalf("Register(%s): %v", name, err)
	}
}

func mustSubmit(t *testing.T, c *Coordinator, tenant, exp string) JobStatus {
	t.Helper()
	st, err := c.Submit(JobSpec{Tenant: tenant, Experiment: exp, Quick: true})
	if err != nil {
		t.Fatalf("Submit(%s/%s): %v", tenant, exp, err)
	}
	return st
}

func mustLease(t *testing.T, c *Coordinator, worker string) *LeaseGrant {
	t.Helper()
	g, err := c.Lease(worker)
	if err != nil {
		t.Fatalf("Lease(%s): %v", worker, err)
	}
	if g == nil {
		t.Fatalf("Lease(%s): expected a grant, got none", worker)
	}
	return g
}

func TestLeaseLifecycleExactlyOnce(t *testing.T) {
	clk := newFakeClock()
	c := newTestCoord(t, testConfig(clk))
	mustRegister(t, c, "w1", 2)
	st := mustSubmit(t, c, "acme", "T3")

	g := mustLease(t, c, "w1")
	if g.JobID != st.ID || g.Attempt != 1 {
		t.Fatalf("grant = %+v, want job %s attempt 1", g, st.ID)
	}
	if g.TTLMillis != 10_000 {
		t.Fatalf("grant TTL = %dms, want 10000", g.TTLMillis)
	}

	cs, err := c.Complete("w1", g.JobID, g.Attempt, "RESULT", "")
	if err != nil || cs != CompleteRecorded {
		t.Fatalf("Complete = %v, %v; want recorded", cs, err)
	}
	job, err := c.Job(g.JobID)
	if err != nil || job.State != JobDone || job.Output != "RESULT" {
		t.Fatalf("job after complete = %+v, %v", job, err)
	}

	// Idempotent re-report with identical bytes: counted duplicate.
	cs, err = c.Complete("w1", g.JobID, g.Attempt, "RESULT", "")
	if err != nil || cs != CompleteDuplicate {
		t.Fatalf("duplicate Complete = %v, %v; want duplicate", cs, err)
	}
	// Re-report with different bytes: refused determinism violation.
	if _, err := c.Complete("w1", g.JobID, g.Attempt, "DIFFERENT", ""); !errors.Is(err, ErrMismatch) {
		t.Fatalf("mismatched Complete error = %v, want ErrMismatch", err)
	}
	ctr := c.State().Counters
	if ctr.Completions != 1 || ctr.Duplicates != 1 || ctr.Mismatches != 1 {
		t.Fatalf("counters = %+v", ctr)
	}
}

func TestStaleAttemptRejectedAfterExpiry(t *testing.T) {
	clk := newFakeClock()
	c := newTestCoord(t, testConfig(clk))
	mustRegister(t, c, "w1", 1)
	mustRegister(t, c, "w2", 1)
	st := mustSubmit(t, c, "acme", "T3")

	g1 := mustLease(t, c, "w1")

	// The lease expires while w1 is alive but silent about this job (it
	// never renews — e.g. the sim stopped crossing checkpoints). Keep both
	// workers inside the heartbeat window so only the lease dies.
	clk.Advance(11 * time.Second)
	if err := c.Heartbeat("w1"); err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}

	job, err := c.Job(st.ID)
	if err != nil || job.State != JobQueued || job.Attempt != 1 {
		t.Fatalf("job after expiry = %+v, %v; want queued attempt 1", job, err)
	}
	if !strings.Contains(job.LastErr, "lease expired") {
		t.Fatalf("LastErr = %q, want expiry reason", job.LastErr)
	}

	// The stale holder's renewal and result are both rejected.
	if _, err := c.Renew("w1", g1.JobID, g1.Attempt); !errors.Is(err, ErrStale) {
		t.Fatalf("stale Renew error = %v, want ErrStale", err)
	}
	cs, err := c.Complete("w1", g1.JobID, g1.Attempt, "LATE", "")
	if err != nil || cs != CompleteStale {
		t.Fatalf("stale Complete = %v, %v; want stale", cs, err)
	}

	// After the backoff gate the job re-leases as attempt 2 elsewhere and
	// completes; the very late original report is then a byte-compare.
	clk.Advance(2 * time.Second)
	g2 := mustLease(t, c, "w2")
	if g2.JobID != st.ID || g2.Attempt != 2 {
		t.Fatalf("re-grant = %+v, want job %s attempt 2", g2, st.ID)
	}
	if cs, err := c.Complete("w2", g2.JobID, g2.Attempt, "OUT", ""); err != nil || cs != CompleteRecorded {
		t.Fatalf("Complete attempt 2 = %v, %v", cs, err)
	}
	if cs, err := c.Complete("w1", g1.JobID, g1.Attempt, "OUT", ""); err != nil || cs != CompleteDuplicate {
		t.Fatalf("late identical report = %v, %v; want duplicate", cs, err)
	}
	ctr := c.State().Counters
	if ctr.LeasesExpired != 1 || ctr.Requeues != 1 || ctr.StaleReports != 1 {
		t.Fatalf("counters = %+v", ctr)
	}
}

func TestDoubleRenewalRace(t *testing.T) {
	clk := newFakeClock()
	c := newTestCoord(t, testConfig(clk))
	mustRegister(t, c, "w1", 1)
	st := mustSubmit(t, c, "acme", "T3")
	g := mustLease(t, c, "w1")

	// Two renewals of the same live attempt (the race: checkpoint-driven
	// renewal firing twice) are both accepted and idempotent.
	e1, err := c.Renew("w1", g.JobID, g.Attempt)
	if err != nil {
		t.Fatalf("first Renew: %v", err)
	}
	e2, err := c.Renew("w1", g.JobID, g.Attempt)
	if err != nil {
		t.Fatalf("second Renew: %v", err)
	}
	if e2.Before(e1) {
		t.Fatalf("second renewal moved expiry backwards: %v then %v", e1, e2)
	}

	// A renewal for a different attempt number never extends anything.
	if _, err := c.Renew("w1", g.JobID, g.Attempt+1); !errors.Is(err, ErrStale) {
		t.Fatalf("wrong-attempt Renew error = %v, want ErrStale", err)
	}
	// Nor does a renewal from a worker that does not hold the lease.
	mustRegister(t, c, "w2", 1)
	if _, err := c.Renew("w2", g.JobID, g.Attempt); !errors.Is(err, ErrStale) {
		t.Fatalf("wrong-holder Renew error = %v, want ErrStale", err)
	}

	// Renewal keeps the lease alive across what would have been expiry.
	clk.Advance(8 * time.Second)
	if _, err := c.Renew("w1", g.JobID, g.Attempt); err != nil {
		t.Fatalf("Renew at 8s: %v", err)
	}
	clk.Advance(8 * time.Second)
	job, err := c.Job(st.ID)
	if err != nil || job.State != JobLeased {
		t.Fatalf("job after renewed 16s = %+v, %v; want still leased", job, err)
	}
	// The race loser after expiry: once the lease finally lapses and the
	// job is re-leased, the old attempt's renewal is stale.
	clk.Advance(11 * time.Second)
	if err := c.Heartbeat("w1"); err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	clk.Advance(2 * time.Second)
	g2 := mustLease(t, c, "w1")
	if g2.Attempt != 2 {
		t.Fatalf("re-grant attempt = %d, want 2", g2.Attempt)
	}
	if _, err := c.Renew("w1", g.JobID, g.Attempt); !errors.Is(err, ErrStale) {
		t.Fatalf("old-attempt Renew after re-lease = %v, want ErrStale", err)
	}
	if _, err := c.Renew("w1", g2.JobID, g2.Attempt); err != nil {
		t.Fatalf("current-attempt Renew: %v", err)
	}
}

func TestRetryBudgetExhaustionPreservesLastError(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	cfg.MaxAttempts = 2
	c := newTestCoord(t, cfg)
	mustRegister(t, c, "w1", 1)
	st := mustSubmit(t, c, "acme", "T3")

	g := mustLease(t, c, "w1")
	if cs, err := c.Complete("w1", g.JobID, 1, "", "boom attempt 1"); err != nil || cs != CompleteRecorded {
		t.Fatalf("fail report 1 = %v, %v", cs, err)
	}
	job, _ := c.Job(st.ID)
	if job.State != JobQueued || job.LastErr != "boom attempt 1" {
		t.Fatalf("after first failure: %+v", job)
	}

	// Backoff gate: not eligible yet...
	if g, err := c.Lease("w1"); err != nil || g != nil {
		t.Fatalf("lease inside backoff = %+v, %v; want none", g, err)
	}
	// ...eligible after RetryBackoff.
	clk.Advance(2 * time.Second)
	g2 := mustLease(t, c, "w1")
	if g2.Attempt != 2 {
		t.Fatalf("second grant attempt = %d, want 2", g2.Attempt)
	}
	cs, err := c.Complete("w1", g2.JobID, 2, "", "boom attempt 2")
	if err != nil || cs != CompleteFailedPermanent {
		t.Fatalf("fail report 2 = %v, %v; want failed_permanent", cs, err)
	}
	job, _ = c.Job(st.ID)
	if job.State != JobFailed || job.LastErr != "boom attempt 2" || job.Attempt != 2 {
		t.Fatalf("after exhaustion: %+v", job)
	}
	// The failed job never leases again; a late report is stale.
	clk.Advance(time.Minute)
	if g, err := c.Lease("w1"); err != nil || g != nil {
		t.Fatalf("lease after permanent failure = %+v, %v; want none", g, err)
	}
	if cs, err := c.Complete("w1", st.ID, 2, "LATE", ""); err != nil || cs != CompleteStale {
		t.Fatalf("report after permanent failure = %v, %v; want stale", cs, err)
	}
	ctr := c.State().Counters
	if ctr.RetriesExhausted != 1 || ctr.Requeues != 1 {
		t.Fatalf("counters = %+v", ctr)
	}
}

func TestExponentialBackoffDoubles(t *testing.T) {
	clk := newFakeClock()
	c := newTestCoord(t, testConfig(clk))
	if got := c.backoff(1); got != 1*time.Second {
		t.Fatalf("backoff(1) = %v", got)
	}
	if got := c.backoff(2); got != 2*time.Second {
		t.Fatalf("backoff(2) = %v", got)
	}
	if got := c.backoff(3); got != 4*time.Second {
		t.Fatalf("backoff(3) = %v", got)
	}
	// Capped at MaxBackoff, including far past the doubling range.
	if got := c.backoff(5); got != 8*time.Second {
		t.Fatalf("backoff(5) = %v, want cap", got)
	}
	if got := c.backoff(64); got != 8*time.Second {
		t.Fatalf("backoff(64) = %v, want cap", got)
	}
}

func TestTenantQuota(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	cfg.TenantQuota = 2
	c := newTestCoord(t, cfg)
	mustRegister(t, c, "w1", 4)

	mustSubmit(t, c, "acme", "T3")
	st2 := mustSubmit(t, c, "acme", "T4")
	if _, err := c.Submit(JobSpec{Tenant: "acme", Experiment: "T5", Quick: true}); !errors.Is(err, ErrQuota) {
		t.Fatalf("third submit error = %v, want ErrQuota", err)
	}
	// Another tenant is not affected by acme's quota.
	mustSubmit(t, c, "zeta", "T3")

	// A terminal job frees quota; a leased one does not.
	g := mustLease(t, c, "w1") // fair-share: acme first
	if g.Spec.Tenant != "acme" {
		t.Fatalf("first grant tenant = %s", g.Spec.Tenant)
	}
	if _, err := c.Submit(JobSpec{Tenant: "acme", Experiment: "T5", Quick: true}); !errors.Is(err, ErrQuota) {
		t.Fatalf("submit with leased job error = %v, want ErrQuota", err)
	}
	if cs, err := c.Complete("w1", g.JobID, g.Attempt, "OUT", ""); err != nil || cs != CompleteRecorded {
		t.Fatalf("Complete = %v, %v", cs, err)
	}
	mustSubmit(t, c, "acme", "T5")
	if got := c.State().Counters.QuotaRejections; got != 2 {
		t.Fatalf("QuotaRejections = %d, want 2", got)
	}
	_ = st2
}

func TestFairShareDequeueRoundRobin(t *testing.T) {
	clk := newFakeClock()
	c := newTestCoord(t, testConfig(clk))
	mustRegister(t, c, "w1", 10)
	// Tenant a floods the queue before b and c submit one job each.
	for i := 0; i < 4; i++ {
		mustSubmit(t, c, "a", "T3")
	}
	mustSubmit(t, c, "b", "T3")
	mustSubmit(t, c, "cc", "T3")

	var order []string
	for i := 0; i < 6; i++ {
		g := mustLease(t, c, "w1")
		order = append(order, g.Spec.Tenant)
	}
	want := []string{"a", "b", "cc", "a", "a", "a"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("dequeue order = %v, want %v", order, want)
	}
	if g, err := c.Lease("w1"); err != nil || g != nil {
		t.Fatalf("lease on empty queue = %+v, %v", g, err)
	}
}

func TestPlacementDefersOverloadedWorker(t *testing.T) {
	clk := newFakeClock()
	c := newTestCoord(t, testConfig(clk))
	mustRegister(t, c, "big", 4)
	mustRegister(t, c, "small", 1)
	mustSubmit(t, c, "acme", "T3")

	// One eligible job; granting to small would load it to 1.0 while big
	// (post-grant 0.25) could absorb the whole queue — small is deferred.
	if g, err := c.Lease("small"); err != nil || g != nil {
		t.Fatalf("overloaded poll = %+v, %v; want deferral", g, err)
	}
	if got := c.State().Counters.LeaseDeferrals; got != 1 {
		t.Fatalf("LeaseDeferrals = %d, want 1", got)
	}
	// The better-placed worker gets the job.
	g := mustLease(t, c, "big")
	if g.JobID == "" {
		t.Fatalf("big got no grant")
	}

	// With more eligible jobs than the better workers' free slots, the
	// smaller worker is granted rather than starved.
	for i := 0; i < 5; i++ {
		mustSubmit(t, c, "acme", "T4")
	}
	if g := mustLease(t, c, "small"); g.JobID == "" {
		t.Fatalf("small got no grant with deep queue")
	}
	// And once the only other worker is dead, deferral never blocks: the
	// surviving worker takes everything.
	mustSubmit(t, c, "acme", "T5")
	clk.Advance(31 * time.Second) // heartbeat timeout: big goes dead
	if err := c.Heartbeat("small"); errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("small unknown: %v", err)
	}
	if g := mustLease(t, c, "small"); g.JobID == "" {
		t.Fatalf("sole survivor got no grant")
	}
}

func TestWorkerDeathExpiresLeasesImmediately(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	// A long TTL so heartbeat-based death detection, not lease expiry, is
	// what frees the job: the lease would stay valid until t+60s, but the
	// holder's silence is noticed at t+30s.
	cfg.LeaseTTL = 60 * time.Second
	cfg.HeartbeatTimeout = 30 * time.Second
	c := newTestCoord(t, cfg)
	mustRegister(t, c, "w1", 2)
	mustRegister(t, c, "w2", 2)
	st := mustSubmit(t, c, "acme", "T3")
	g := mustLease(t, c, "w1")
	_ = g

	// w1 goes silent; w2 keeps talking.
	clk.Advance(20 * time.Second)
	if err := c.Heartbeat("w2"); err != nil {
		t.Fatalf("Heartbeat(w2): %v", err)
	}
	clk.Advance(11 * time.Second) // w1 silent 31s > 30s; lease TTL still has 29s left
	if err := c.Heartbeat("w2"); err != nil {
		t.Fatalf("Heartbeat(w2): %v", err)
	}
	job, _ := c.Job(st.ID)
	if job.State != JobQueued || !strings.Contains(job.LastErr, "died") {
		t.Fatalf("job after worker death = %+v; want queued with death reason", job)
	}
	ctr := c.State().Counters
	if ctr.WorkersDied != 1 || ctr.LeasesExpired != 1 {
		t.Fatalf("counters = %+v", ctr)
	}
	// The dead worker's next call revives it.
	if err := c.Heartbeat("w1"); err != nil {
		t.Fatalf("Heartbeat(w1): %v", err)
	}
	if got := c.State().Counters.WorkersRevived; got == 0 {
		t.Fatalf("worker not revived")
	}
}

func TestJournalReplayAcrossRestart(t *testing.T) {
	clk := newFakeClock()
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.journal")

	cfg := testConfig(clk)
	cfg.JournalPath = path
	c1, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	mustRegister(t, c1, "w1", 4)
	st1 := mustSubmit(t, c1, "acme", "T3")
	st2 := mustSubmit(t, c1, "acme", "T4")
	st3 := mustSubmit(t, c1, "acme", "T5")
	g1 := mustLease(t, c1, "w1") // fj-1
	if g1.JobID != st1.ID {
		t.Fatalf("first grant = %s, want %s", g1.JobID, st1.ID)
	}
	if cs, err := c1.Complete("w1", g1.JobID, 1, "OUTPUT-1", ""); err != nil || cs != CompleteRecorded {
		t.Fatalf("Complete = %v, %v", cs, err)
	}
	g2 := mustLease(t, c1, "w1") // fj-2, attempt 1, crash while leased
	if g2.JobID != st2.ID {
		t.Fatalf("second grant = %s, want %s", g2.JobID, st2.ID)
	}
	// Crash: no Close. The appender's records are already fsync'd.

	c2, err := New(cfg)
	if err != nil {
		t.Fatalf("New after crash: %v", err)
	}
	t.Cleanup(func() {
		if err := c2.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})

	done, err := c2.Job(st1.ID)
	if err != nil || done.State != JobDone || done.Output != "OUTPUT-1" {
		t.Fatalf("done job after restart = %+v, %v", done, err)
	}
	orphan, err := c2.Job(st2.ID)
	if err != nil || orphan.State != JobQueued || orphan.Attempt != 1 {
		t.Fatalf("orphaned job after restart = %+v, %v; want queued attempt 1", orphan, err)
	}
	if !strings.Contains(orphan.LastErr, "coordinator restarted") {
		t.Fatalf("orphan LastErr = %q", orphan.LastErr)
	}
	queued, err := c2.Job(st3.ID)
	if err != nil || queued.State != JobQueued || queued.Attempt != 0 {
		t.Fatalf("queued job after restart = %+v, %v", queued, err)
	}
	if got := c2.State().Counters.OrphanedLeases; got != 1 {
		t.Fatalf("OrphanedLeases = %d, want 1", got)
	}

	// Job IDs never recycle across restarts.
	st4 := mustSubmit(t, c2, "acme", "T6")
	if st4.ID == st1.ID || st4.ID == st2.ID || st4.ID == st3.ID {
		t.Fatalf("recycled job ID %s", st4.ID)
	}

	// The stale attempt from before the crash cannot record a result; the
	// orphan re-leases with a monotonically advanced attempt number.
	if cs, err := c2.Complete("w1", g2.JobID, g2.Attempt, "STALE-OUT", ""); err != nil || cs != CompleteStale {
		t.Fatalf("pre-crash attempt report = %v, %v; want stale", cs, err)
	}
	mustRegister(t, c2, "w1", 4)
	clk.Advance(2 * time.Second) // open the orphan's backoff gate
	seen := map[string]int{}
	for i := 0; i < 3; i++ {
		g := mustLease(t, c2, "w1")
		seen[g.JobID] = g.Attempt
	}
	if seen[st2.ID] != 2 {
		t.Fatalf("orphan re-lease attempt = %d, want 2 (grants: %v)", seen[st2.ID], seen)
	}
}

func TestJournalInteriorCorruptionIsHardError(t *testing.T) {
	clk := newFakeClock()
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.journal")
	good := `{"op":"submit","id":"fj-1","spec":{"tenant":"a","experiment":"T3","quick":true}}`
	tail := `{"op":"submit","id":"fj-2","spec":{"tenant":"a","experiment":"T4","quick":true}}`
	if err := os.WriteFile(path, []byte(good+"\n"+"GARBAGE{{{\n"+tail+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(clk)
	cfg.JournalPath = path
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "corrupt record") {
		t.Fatalf("New on interior corruption = %v, want corrupt-record error", err)
	}

	// Semantically impossible interior records are corruption too.
	if err := os.WriteFile(path, []byte(`{"op":"done","id":"fj-9","attempt":1}`+"\n"+good+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(cfg); err == nil {
		t.Fatalf("New on impossible interior record succeeded")
	}
}

func TestJournalTornTailIsRepaired(t *testing.T) {
	clk := newFakeClock()
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.journal")
	good := `{"op":"submit","id":"fj-1","spec":{"tenant":"a","experiment":"T3","quick":true}}`
	// A torn final line: no terminating newline.
	if err := os.WriteFile(path, []byte(good+"\n"+`{"op":"sub`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(clk)
	cfg.JournalPath = path
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New on torn tail: %v", err)
	}
	if _, err := c.Job("fj-1"); err != nil {
		t.Fatalf("surviving job lost: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A complete but undecodable final line is the same crash signature.
	if err := os.WriteFile(path, []byte(good+"\n"+"NOT JSON\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := New(cfg)
	if err != nil {
		t.Fatalf("New on undecodable final line: %v", err)
	}
	if err := c2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

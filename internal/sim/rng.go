package sim

// RNG is a small deterministic pseudo-random generator (SplitMix64) used by
// workloads that need reproducible synthetic data or access-order shuffles.
// math/rand would also do, but a local generator keeps the exact sequences
// stable across Go releases, which matters for regression-testing traffic
// numbers.
//
// An RNG is NOT safe for concurrent use, and must never be shared between
// simulation runs: the parallel experiment runner (internal/experiments)
// executes runs on separate goroutines, and a shared stream would both race
// and destroy the fixed-seed determinism the tables depend on. Every run
// constructs its own generator from a constant seed (see Fork for deriving
// per-worker streams).
type RNG struct {
	state uint64
}

// Fork derives an independent generator from r's current state and a salt,
// without advancing or aliasing r's stream. Use it to hand each concurrent
// worker its own deterministic sequence: forks with distinct salts produce
// distinct streams, and the same (state, salt) always yields the same one.
func (r *RNG) Fork(salt uint64) *RNG {
	// Run the state through one SplitMix64 step mixed with the salt so
	// consecutive salts do not produce correlated seeds.
	z := r.state + 0x9e3779b97f4a7c15 + salt*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return NewRNG(z ^ (z >> 31))
}

// NewRNG seeds a generator. Seed 0 is remapped so the stream is never
// degenerate.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// State returns the generator's internal state, for checkpointing. A
// generator restored with SetState(State()) continues the exact stream.
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the generator's internal state with a value previously
// obtained from State. State 0 is remapped the same way NewRNG remaps seed 0,
// so a corrupt snapshot cannot produce a degenerate stream.
func (r *RNG) SetState(s uint64) {
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	r.state = s
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

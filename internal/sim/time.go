// Package sim provides the deterministic virtual-time substrate for the UVM
// simulator: a Time type, serially-reusable Engine resources that model
// hardware units (copy engines, the GPU compute engine, the driver thread),
// and a Clock that tracks the host thread's position on the timeline.
//
// The simulator is not event-driven in the classic sense: operations are
// issued in program order and each reserves intervals on the engines it
// needs. Overlap between computation and memory operations emerges from
// engines being independent timelines. This is sufficient for the paper's
// workloads, which are single-logical-stream CUDA pipelines.
package sim

import (
	"fmt"
	"time"
)

// Time is a point (or span) of virtual time in nanoseconds.
type Time int64

// Handy durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Infinity is a time later than any the simulator produces.
const Infinity Time = 1<<63 - 1

// Micros constructs a Time from a (possibly fractional) microsecond count.
func Micros(us float64) Time {
	return Time(us * float64(Microsecond))
}

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 {
	return float64(t) / float64(Second)
}

// Microseconds returns t as floating-point microseconds.
func (t Time) Microseconds() float64 {
	return float64(t) / float64(Microsecond)
}

// Duration converts to a time.Duration for formatting.
func (t Time) Duration() time.Duration {
	return time.Duration(t)
}

// String formats the time with time.Duration rules ("1.5ms").
func (t Time) String() string {
	return t.Duration().String()
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// TransferTime returns the time to move n bytes at bw bytes/second, with no
// fixed latency. bw must be positive.
func TransferTime(n uint64, bw float64) Time {
	if bw <= 0 {
		panic(fmt.Sprintf("sim: non-positive bandwidth %v", bw))
	}
	return Time(float64(n) / bw * float64(Second))
}

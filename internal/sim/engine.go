package sim

import "fmt"

// Engine models a serially-reusable hardware resource: a DMA copy engine,
// the GPU compute engine, the UVM driver's service thread, or the host
// thread. Work items reserve contiguous intervals; an engine executes at
// most one item at a time, FIFO in reservation order.
//
// Engines accumulate busy time so experiments can report utilization.
type Engine struct {
	name   string
	freeAt Time // end of the last reservation
	busy   Time // total reserved time
	ops    int64
}

// NewEngine returns an idle engine with the given display name.
func NewEngine(name string) *Engine {
	return &Engine{name: name}
}

// Name returns the engine's display name.
func (e *Engine) Name() string { return e.name }

// FreeAt returns the earliest time a new reservation can start.
func (e *Engine) FreeAt() Time { return e.freeAt }

// Busy returns the total time reserved on the engine so far.
func (e *Engine) Busy() Time { return e.busy }

// Ops returns the number of reservations made on the engine.
func (e *Engine) Ops() int64 { return e.ops }

// Reserve books dur time on the engine no earlier than ready, returning the
// interval actually granted. A zero-duration reservation returns
// [start, start) without occupying the engine.
func (e *Engine) Reserve(ready Time, dur Time) (start, end Time) {
	if dur < 0 {
		panic(fmt.Sprintf("sim: negative duration %v on engine %s", dur, e.name))
	}
	start = Max(ready, e.freeAt)
	end = start + dur
	if dur > 0 {
		e.freeAt = end
		e.busy += dur
		e.ops++
	}
	return start, end
}

// Reset returns the engine to the idle state at time zero.
func (e *Engine) Reset() {
	e.freeAt = 0
	e.busy = 0
	e.ops = 0
}

// Restore sets the engine's timeline state directly. It is the
// checkpoint-restore hook: a resumed run reconstitutes each engine to the
// exact position the snapshot recorded, so later reservations land on the
// same intervals they would have in an uninterrupted run.
func (e *Engine) Restore(freeAt, busy Time, ops int64) error {
	if freeAt < 0 || busy < 0 || ops < 0 {
		return fmt.Errorf("sim: engine %s restore with negative state (freeAt=%v busy=%v ops=%d)",
			e.name, freeAt, busy, ops)
	}
	e.freeAt = freeAt
	e.busy = busy
	e.ops = ops
	return nil
}

// Clock tracks the host thread's position on the virtual timeline. CUDA API
// calls consume host time (they advance the clock); asynchronous work
// completes on engines at times at or after the call returned.
type Clock struct {
	now Time
}

// NewClock returns a clock at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current host time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the host clock forward by d (which must be non-negative)
// and returns the new time.
func (c *Clock) Advance(d Time) Time {
	if d < 0 {
		panic(fmt.Sprintf("sim: clock advanced by negative duration %v", d))
	}
	c.now += d
	return c.now
}

// WaitUntil moves the host clock to t if t is in the future; it never moves
// the clock backwards. It returns the new time.
func (c *Clock) WaitUntil(t Time) Time {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Reset returns the clock to zero.
func (c *Clock) Reset() { c.now = 0 }

package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeHelpers(t *testing.T) {
	if Micros(1.5) != 1500*Nanosecond {
		t.Errorf("Micros(1.5) = %v", Micros(1.5))
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds = %v", got)
	}
	if got := (3 * Microsecond).Microseconds(); got != 3.0 {
		t.Errorf("Microseconds = %v", got)
	}
	if Max(1, 2) != 2 || Min(1, 2) != 1 {
		t.Error("Max/Min wrong")
	}
	if (Millisecond).String() != "1ms" {
		t.Errorf("String = %q", Millisecond.String())
	}
}

func TestTransferTime(t *testing.T) {
	// 1 GiB at 1 GiB/s takes one second.
	got := TransferTime(1<<30, float64(1<<30))
	if got != Second {
		t.Errorf("TransferTime = %v, want 1s", got)
	}
	// Zero bytes take zero time.
	if TransferTime(0, 1e9) != 0 {
		t.Error("TransferTime(0) != 0")
	}
}

func TestTransferTimePanicsOnBadBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero bandwidth")
		}
	}()
	TransferTime(1, 0)
}

func TestEngineSerializes(t *testing.T) {
	e := NewEngine("copy")
	s1, e1 := e.Reserve(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first reservation [%v,%v)", s1, e1)
	}
	// A request that is ready at time 5 must wait for the engine.
	s2, e2 := e.Reserve(5, 10)
	if s2 != 10 || e2 != 20 {
		t.Fatalf("second reservation [%v,%v), want [10,20)", s2, e2)
	}
	// A request ready after the engine is free starts immediately.
	s3, e3 := e.Reserve(100, 1)
	if s3 != 100 || e3 != 101 {
		t.Fatalf("third reservation [%v,%v), want [100,101)", s3, e3)
	}
	if e.Busy() != 21 {
		t.Errorf("busy = %v, want 21", e.Busy())
	}
	if e.Ops() != 3 {
		t.Errorf("ops = %d, want 3", e.Ops())
	}
}

func TestEngineZeroDuration(t *testing.T) {
	e := NewEngine("x")
	e.Reserve(0, 10)
	s, end := e.Reserve(0, 0)
	if s != 10 || end != 10 {
		t.Errorf("zero reservation [%v,%v)", s, end)
	}
	if e.FreeAt() != 10 {
		t.Errorf("zero-duration reservation moved freeAt to %v", e.FreeAt())
	}
	if e.Ops() != 1 {
		t.Errorf("zero-duration reservation counted as op")
	}
}

func TestEngineReservationsNeverOverlap(t *testing.T) {
	f := func(readies []uint16, durs []uint16) bool {
		e := NewEngine("p")
		var lastEnd Time
		n := len(readies)
		if len(durs) < n {
			n = len(durs)
		}
		for i := 0; i < n; i++ {
			s, end := e.Reserve(Time(readies[i]), Time(durs[i]))
			if s < lastEnd && durs[i] > 0 {
				return false
			}
			if end-s != Time(durs[i]) {
				return false
			}
			if durs[i] > 0 {
				lastEnd = end
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEngineReset(t *testing.T) {
	e := NewEngine("x")
	e.Reserve(0, 5)
	e.Reset()
	if e.FreeAt() != 0 || e.Busy() != 0 || e.Ops() != 0 {
		t.Error("reset did not clear engine state")
	}
}

func TestClock(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatal("new clock not at zero")
	}
	c.Advance(10)
	if c.Now() != 10 {
		t.Errorf("now = %v", c.Now())
	}
	c.WaitUntil(5) // never backwards
	if c.Now() != 10 {
		t.Errorf("WaitUntil moved clock backwards to %v", c.Now())
	}
	c.WaitUntil(50)
	if c.Now() != 50 {
		t.Errorf("now = %v, want 50", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Error("reset failed")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Error("different seeds produced identical first value")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced degenerate stream")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

// Fork must derive reproducible, independent streams without touching the
// parent: the parallel experiment runner hands each worker its own fork.
func TestRNGFork(t *testing.T) {
	parent := NewRNG(7)
	f1a := parent.Fork(1)
	f1b := NewRNG(7).Fork(1)
	f2 := parent.Fork(2)

	if a, b := f1a.Uint64(), f1b.Uint64(); a != b {
		t.Errorf("same (state, salt) forks diverge: %x != %x", a, b)
	}
	if a, b := NewRNG(7).Fork(1).Uint64(), f2.Uint64(); a == b {
		t.Error("distinct salts produced identical streams")
	}
	// Forking does not advance the parent stream.
	if a, b := parent.Uint64(), NewRNG(7).Uint64(); a != b {
		t.Errorf("Fork advanced the parent stream: %x != %x", a, b)
	}
}

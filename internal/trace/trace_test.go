package trace

import (
	"bytes"
	"strings"
	"testing"

	"uvmdiscard/internal/sim"
)

func ev(t sim.Time, k Kind, block int) Event {
	return Event{T: t, Kind: k, Alloc: 1, Block: block, Bytes: 100}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(ev(0, GPURead, 0)) // no panic
	if r.Len() != 0 || r.Events() != nil {
		t.Error("nil recorder should be empty")
	}
	a := Analyze(r)
	if a.Total() != 0 || a.RedundantFraction() != 0 {
		t.Error("nil recorder analysis should be empty")
	}
}

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	r.Record(ev(1, TransferH2D, 0))
	r.Record(ev(2, GPURead, 0))
	if r.Len() != 2 {
		t.Errorf("len = %d", r.Len())
	}
	r.Reset()
	if r.Len() != 0 {
		t.Error("reset failed")
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{TransferH2D, TransferD2H, GPURead, GPUWrite, CPURead,
		CPUWrite, Discard, ZeroFill}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d name %q empty or duplicate", int(k), s)
		}
		seen[s] = true
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should stringify")
	}
}

// The canonical required pattern: data goes to the GPU and is read there.
func TestH2DRequiredWhenRead(t *testing.T) {
	r := NewRecorder()
	r.Record(ev(1, TransferH2D, 0))
	r.Record(ev(2, GPURead, 0))
	a := Analyze(r)
	if a.RedundantH2D != 0 || a.TotalH2D != 100 {
		t.Errorf("analysis = %+v", a)
	}
	if a.RequiredBytes != 100 {
		t.Errorf("required = %d", a.RequiredBytes)
	}
}

// Figure 2's pattern: the buffer is migrated to the GPU but then only
// overwritten — the transfer was redundant.
func TestH2DRedundantWhenOverwritten(t *testing.T) {
	r := NewRecorder()
	r.Record(ev(1, TransferH2D, 0))
	r.Record(ev(2, GPUWrite, 0))
	a := Analyze(r)
	if a.RedundantH2D != 100 {
		t.Errorf("analysis = %+v", a)
	}
}

func TestH2DRedundantWhenDiscarded(t *testing.T) {
	r := NewRecorder()
	r.Record(ev(1, TransferH2D, 0))
	r.Record(ev(2, Discard, 0))
	a := Analyze(r)
	if a.RedundantH2D != 100 {
		t.Errorf("analysis = %+v", a)
	}
}

func TestH2DRedundantWhenNeverTouched(t *testing.T) {
	r := NewRecorder()
	r.Record(ev(1, TransferH2D, 0))
	a := Analyze(r)
	if a.RedundantH2D != 100 {
		t.Errorf("analysis = %+v", a)
	}
}

// The ping-pong in Figure 2: evicted to CPU, migrated back, then written —
// both transfers are redundant.
func TestPingPongBothRedundant(t *testing.T) {
	r := NewRecorder()
	r.Record(ev(1, GPUWrite, 0))    // short-lived data written
	r.Record(ev(2, TransferD2H, 0)) // evicted under pressure
	r.Record(ev(3, TransferH2D, 0)) // migrated back
	r.Record(ev(4, GPUWrite, 0))    // overwritten with new data
	a := Analyze(r)
	if a.RedundantD2H != 100 || a.RedundantH2D != 100 {
		t.Errorf("analysis = %+v", a)
	}
	if a.TransferCount != 2 || a.RedundantCount != 2 {
		t.Errorf("counts = %d/%d", a.TransferCount, a.RedundantCount)
	}
}

// Eviction of data that the CPU later reads is required.
func TestD2HRequiredWhenCPUReads(t *testing.T) {
	r := NewRecorder()
	r.Record(ev(1, TransferD2H, 0))
	r.Record(ev(2, CPURead, 0))
	a := Analyze(r)
	if a.RedundantD2H != 0 {
		t.Errorf("analysis = %+v", a)
	}
}

// Eviction of data that later returns to the GPU and is read there is also
// required (it round-trips usefully).
func TestD2HRequiredWhenReadBackOnGPU(t *testing.T) {
	r := NewRecorder()
	r.Record(ev(1, TransferD2H, 0))
	r.Record(ev(2, TransferH2D, 0))
	r.Record(ev(3, GPURead, 0))
	a := Analyze(r)
	if a.RedundantD2H != 0 {
		t.Errorf("D2H should be required: %+v", a)
	}
	if a.RedundantH2D != 0 {
		t.Errorf("H2D should be required: %+v", a)
	}
}

func TestD2HRedundantWhenDiscarded(t *testing.T) {
	r := NewRecorder()
	r.Record(ev(1, TransferD2H, 0))
	r.Record(ev(2, Discard, 0))
	a := Analyze(r)
	if a.RedundantD2H != 100 {
		t.Errorf("analysis = %+v", a)
	}
}

func TestD2HRedundantWhenCPUOverwrites(t *testing.T) {
	r := NewRecorder()
	r.Record(ev(1, TransferD2H, 0))
	r.Record(ev(2, CPUWrite, 0))
	a := Analyze(r)
	if a.RedundantD2H != 100 {
		t.Errorf("analysis = %+v", a)
	}
}

// A GPU write after the data has been swapped out does not make the D2H
// redundant by itself — the GPU write targets fresh memory; the host copy
// may still be read later.
func TestD2HSurvivesUnrelatedGPUWrite(t *testing.T) {
	r := NewRecorder()
	r.Record(ev(1, TransferD2H, 0))
	r.Record(ev(2, ZeroFill, 0)) // block repurposed on GPU with fresh zeros
	a := Analyze(r)
	// ZeroFill kills the old data: redundant.
	if a.RedundantD2H != 100 {
		t.Errorf("analysis = %+v", a)
	}
}

// Double swap-out: D2H, back H2D, D2H again, then CPU read — all required.
func TestDoubleSwapOutRequired(t *testing.T) {
	r := NewRecorder()
	r.Record(ev(1, TransferD2H, 0))
	r.Record(ev(2, TransferH2D, 0))
	r.Record(ev(3, GPURead, 0))
	r.Record(ev(4, TransferD2H, 0))
	r.Record(ev(5, CPURead, 0))
	a := Analyze(r)
	if a.Redundant() != 0 {
		t.Errorf("analysis = %+v", a)
	}
	if a.TransferCount != 3 {
		t.Errorf("transfer count = %d", a.TransferCount)
	}
}

// Blocks are classified independently.
func TestBlocksIndependent(t *testing.T) {
	r := NewRecorder()
	r.Record(ev(1, TransferH2D, 0))
	r.Record(ev(1, TransferH2D, 1))
	r.Record(ev(2, GPURead, 0))
	r.Record(ev(2, GPUWrite, 1))
	a := Analyze(r)
	if a.TotalH2D != 200 || a.RedundantH2D != 100 {
		t.Errorf("analysis = %+v", a)
	}
}

func TestRedundantFraction(t *testing.T) {
	r := NewRecorder()
	r.Record(ev(1, TransferH2D, 0))
	r.Record(ev(2, GPUWrite, 0))
	r.Record(ev(3, TransferH2D, 1))
	r.Record(ev(4, GPURead, 1))
	a := Analyze(r)
	if a.RedundantFraction() != 0.5 {
		t.Errorf("fraction = %v", a.RedundantFraction())
	}
	if !strings.Contains(a.String(), "50.0%") {
		t.Errorf("String() = %q", a.String())
	}
}

// Out-of-order recording by time is tolerated (stable sort by T).
func TestAnalyzeSortsByTime(t *testing.T) {
	r := NewRecorder()
	r.Record(ev(5, GPURead, 0))
	r.Record(ev(1, TransferH2D, 0))
	a := Analyze(r)
	if a.RedundantH2D != 0 {
		t.Errorf("analysis = %+v", a)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.Record(ev(1, TransferH2D, 0))
	r.Record(ev(2, GPURead, 0))
	r.Record(Event{T: 3, Kind: Discard, Alloc: 2, Block: 1, Bytes: 50})
	r.Record(Event{T: 4, Kind: TransferPeer, Alloc: 3, Block: 2, Bytes: 75})

	var buf bytes.Buffer
	if err := WriteJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"kind":"h2d"`) {
		t.Errorf("dump not readable: %s", buf.String())
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != r.Len() {
		t.Fatalf("round trip lost events: %d vs %d", back.Len(), r.Len())
	}
	for i, want := range r.Events() {
		if back.Events()[i] != want {
			t.Errorf("event %d = %+v, want %+v", i, back.Events()[i], want)
		}
	}
	// Analyses agree.
	if Analyze(back) != Analyze(r) {
		t.Error("analysis differs after round trip")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"kind":"nope"}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{bad json`)); err == nil {
		t.Error("malformed json accepted")
	}
	rec, err := ReadJSON(strings.NewReader(""))
	if err != nil || rec.Len() != 0 {
		t.Error("empty dump should parse to empty recorder")
	}
}

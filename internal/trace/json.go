package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"uvmdiscard/internal/sim"
)

// jsonEvent is the serialized form of one event: kinds travel as strings
// so dumps stay readable and stable across refactors.
type jsonEvent struct {
	T     int64  `json:"t"`
	Kind  string `json:"kind"`
	Alloc int    `json:"alloc"`
	Block int    `json:"block"`
	Bytes uint64 `json:"bytes"`
}

var kindNames = map[Kind]string{
	TransferH2D:  "h2d",
	TransferD2H:  "d2h",
	TransferPeer: "peer",
	GPURead:      "gpu-read",
	GPUWrite:     "gpu-write",
	CPURead:      "cpu-read",
	CPUWrite:     "cpu-write",
	Discard:      "discard",
	ZeroFill:     "zero",
}

var kindValues = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// WriteJSON streams the recorder's events as JSON Lines (one event per
// line), a format external tools can consume incrementally.
func WriteJSON(w io.Writer, r *Recorder) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range r.Events() {
		name, ok := kindNames[ev.Kind]
		if !ok {
			return fmt.Errorf("trace: unknown kind %d", int(ev.Kind))
		}
		if err := enc.Encode(jsonEvent{
			T: int64(ev.T), Kind: name, Alloc: ev.Alloc, Block: ev.Block, Bytes: ev.Bytes,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSON parses a JSON Lines dump produced by WriteJSON back into a
// recorder, so saved traces can be re-analyzed offline.
func ReadJSON(r io.Reader) (*Recorder, error) {
	rec := NewRecorder()
	dec := json.NewDecoder(r)
	for dec.More() {
		var je jsonEvent
		if err := dec.Decode(&je); err != nil {
			return nil, fmt.Errorf("trace: bad event: %w", err)
		}
		kind, ok := kindValues[je.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: unknown kind %q", je.Kind)
		}
		rec.Record(Event{
			T: sim.Time(je.T), Kind: kind, Alloc: je.Alloc, Block: je.Block, Bytes: je.Bytes,
		})
	}
	return rec, nil
}

// Package trace records driver-level events and classifies transfers as
// required or redundant after the fact.
//
// The paper defines a redundant memory transfer (RMT) as "an automatic
// memory transfer orchestrated by the UVM system that is not needed for
// correctness" — e.g. a buffer migrated and then overwritten before being
// read (§1, §3). Figure 3 is produced by exactly this classification: total
// UVM traffic vs the non-redundant portion. The analyzer here implements
// it at block granularity:
//
//   - An H2D transfer is REQUIRED iff the first subsequent data-consuming
//     event for that block on the GPU is a read. If the block is instead
//     first overwritten, discarded, migrated back, or never touched again,
//     the transfer moved dead bytes.
//   - A D2H transfer is REQUIRED iff the block's data is subsequently
//     consumed: read by the CPU, or migrated back to the GPU and then read
//     there. If it is first overwritten, discarded, or never used again,
//     the swap-out was redundant.
//
// Accesses are recorded at the same block granularity the driver manages,
// with the workload declaring read-before-write vs overwrite semantics per
// access — the same application-level knowledge the discard directive
// exploits.
package trace

import (
	"fmt"
	"sort"

	"uvmdiscard/internal/sim"
)

// Kind enumerates trace event types.
type Kind int

const (
	// TransferH2D is a host-to-device migration of one block.
	TransferH2D Kind = iota
	// TransferD2H is a device-to-host migration (eviction or CPU pull).
	TransferD2H
	// GPURead is a GPU access that consumes the block's existing data.
	GPURead
	// GPUWrite is a GPU access that overwrites the block without reading
	// its previous contents.
	GPUWrite
	// CPURead is a host access consuming existing data.
	CPURead
	// CPUWrite is a host overwrite.
	CPUWrite
	// TransferPeer is a GPU-to-GPU migration over the peer fabric.
	TransferPeer
	// Discard marks the block's contents dead (either discard flavor).
	Discard
	// ZeroFill records fresh zeroed memory being mapped for the block.
	ZeroFill
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case TransferH2D:
		return "h2d"
	case TransferD2H:
		return "d2h"
	case GPURead:
		return "gpu-read"
	case GPUWrite:
		return "gpu-write"
	case CPURead:
		return "cpu-read"
	case CPUWrite:
		return "cpu-write"
	case TransferPeer:
		return "peer"
	case Discard:
		return "discard"
	case ZeroFill:
		return "zero"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one trace record.
type Event struct {
	T     sim.Time
	Kind  Kind
	Alloc int // allocation ID
	Block int // block index within the allocation
	Bytes uint64
}

// Recorder accumulates events. A nil *Recorder is valid and records
// nothing, so the driver can be run without tracing overhead.
type Recorder struct {
	events []Event
}

// NewRecorder returns an empty enabled recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends an event. No-op on a nil recorder.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.events = append(r.events, ev)
}

// Events returns the recorded events in record order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Reset discards all recorded events.
func (r *Recorder) Reset() {
	if r != nil {
		r.events = r.events[:0]
	}
}

// Analysis is the result of RMT classification over a trace.
type Analysis struct {
	// TotalH2D / TotalD2H are total transferred bytes by direction;
	// TotalPeer covers GPU-to-GPU migrations.
	TotalH2D, TotalD2H, TotalPeer uint64
	// RedundantH2D / RedundantD2H / RedundantPeer are the redundant
	// portions.
	RedundantH2D, RedundantD2H, RedundantPeer uint64
	// RequiredBytes is total minus redundant, both directions.
	RequiredBytes uint64
	// TransferCount / RedundantCount count per-block transfer events.
	TransferCount, RedundantCount int
}

// Total returns all transferred bytes.
func (a Analysis) Total() uint64 { return a.TotalH2D + a.TotalD2H + a.TotalPeer }

// Redundant returns all redundant bytes.
func (a Analysis) Redundant() uint64 {
	return a.RedundantH2D + a.RedundantD2H + a.RedundantPeer
}

// RedundantFraction returns redundant/total, or 0 for an empty trace.
func (a Analysis) RedundantFraction() float64 {
	if a.Total() == 0 {
		return 0
	}
	return float64(a.Redundant()) / float64(a.Total())
}

// String summarizes the analysis.
func (a Analysis) String() string {
	return fmt.Sprintf("transfers %d (%d redundant, %.1f%%); bytes total %d, redundant %d, required %d",
		a.TransferCount, a.RedundantCount, 100*a.RedundantFraction(),
		a.Total(), a.Redundant(), a.RequiredBytes)
}

type blockKey struct{ alloc, block int }

// Analyze classifies every transfer in the trace. Events recorded at equal
// times keep their record order (the driver records in issue order).
func Analyze(r *Recorder) Analysis {
	var a Analysis
	if r == nil || len(r.events) == 0 {
		return a
	}
	// Group events per block, preserving order within each block.
	perBlock := make(map[blockKey][]Event)
	for _, ev := range r.events {
		k := blockKey{ev.Alloc, ev.Block}
		perBlock[k] = append(perBlock[k], ev)
	}
	// Deterministic iteration order (for reproducible debugging output,
	// not correctness).
	keys := make([]blockKey, 0, len(perBlock))
	for k := range perBlock {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].alloc != keys[j].alloc {
			return keys[i].alloc < keys[j].alloc
		}
		return keys[i].block < keys[j].block
	})
	for _, k := range keys {
		evs := perBlock[k]
		// Events are already time-ordered per block because the driver
		// records in issue order; enforce stable order by time anyway.
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
		for i, ev := range evs {
			switch ev.Kind {
			case TransferH2D:
				a.TotalH2D += ev.Bytes
				a.TransferCount++
				if !h2dRequired(evs[i+1:]) {
					a.RedundantH2D += ev.Bytes
					a.RedundantCount++
				}
			case TransferPeer:
				a.TotalPeer += ev.Bytes
				a.TransferCount++
				if !h2dRequired(evs[i+1:]) {
					a.RedundantPeer += ev.Bytes
					a.RedundantCount++
				}
			case TransferD2H:
				a.TotalD2H += ev.Bytes
				a.TransferCount++
				if !d2hRequired(evs[i+1:]) {
					a.RedundantD2H += ev.Bytes
					a.RedundantCount++
				}
			}
		}
	}
	a.RequiredBytes = a.Total() - a.Redundant()
	return a
}

// h2dRequired reports whether data just moved to the GPU is consumed there
// before dying.
func h2dRequired(rest []Event) bool {
	for _, ev := range rest {
		switch ev.Kind {
		case GPURead:
			return true
		case GPUWrite, Discard, ZeroFill:
			return false
		case TransferD2H:
			// Bounced back without any GPU read: the H2D moved dead bytes.
			return false
		}
	}
	return false // never consumed
}

// d2hRequired reports whether data just swapped out to the host is consumed
// anywhere before dying. After the data returns to the GPU (TransferH2D),
// a GPU read consumes it; CPU reads consume it directly.
func d2hRequired(rest []Event) bool {
	onHost := true
	for _, ev := range rest {
		switch ev.Kind {
		case CPURead:
			if onHost {
				return true
			}
		case CPUWrite:
			if onHost {
				return false
			}
		case Discard, ZeroFill:
			return false
		case TransferH2D:
			onHost = false
		case GPURead:
			if !onHost {
				return true
			}
		case GPUWrite:
			if !onHost {
				return false
			}
		case TransferD2H:
			// Swapped out again; keep scanning — the data is still alive,
			// now on the host again.
			onHost = true
		}
	}
	return false
}

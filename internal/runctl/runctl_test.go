package runctl

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"uvmdiscard/internal/sim"
)

func TestNilAndInertControlsNeverTrip(t *testing.T) {
	var c *Control
	if got := c.Check("op", 0); got != nil {
		t.Fatalf("nil control tripped: %v", got)
	}
	if c.Active() {
		t.Fatal("nil control reports active")
	}
	inert := New(nil, 0, 0)
	for i := 0; i < 1000; i++ {
		if got := inert.Check("op", sim.Time(i)*sim.Second); got != nil {
			t.Fatalf("inert control tripped: %v", got)
		}
	}
	if inert.Active() {
		t.Fatal("inert control reports active")
	}
}

func TestCancelTrips(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := New(ctx, 0, 0)
	if !c.Active() {
		t.Fatal("control with ctx not active")
	}
	if got := c.Check("warm", sim.Millisecond); got != nil {
		t.Fatalf("tripped before cancel: %v", got)
	}
	cancel()
	i := c.Check("evict", 2*sim.Millisecond)
	if i == nil {
		t.Fatal("canceled control did not trip")
	}
	if i.Reason != Canceled || i.Op != "evict" || i.SimTime != 2*sim.Millisecond {
		t.Fatalf("wrong interrupt: %+v", i)
	}
	if !errors.Is(i, context.Canceled) {
		t.Fatalf("interrupt does not unwrap to context.Canceled: %v", i)
	}
}

func TestSimBudgetTripsAndSticks(t *testing.T) {
	c := New(nil, 0, sim.Millisecond)
	if got := c.Check("a", sim.Millisecond); got != nil {
		t.Fatalf("tripped at the budget boundary (budget is inclusive): %v", got)
	}
	first := c.Check("b", sim.Millisecond+1)
	if first == nil || first.Reason != SimBudget {
		t.Fatalf("sim budget did not trip: %+v", first)
	}
	if !errors.Is(first, context.DeadlineExceeded) {
		t.Fatal("sim-budget interrupt should unwrap to DeadlineExceeded")
	}
	// Sticky: a later check at an innocent sim time still reports the trip.
	again := c.Check("c", 0)
	if again != first {
		t.Fatalf("control un-tripped: %+v", again)
	}
	if c.Interrupted() != first {
		t.Fatal("Interrupted() disagrees with Check")
	}
}

func TestWallDeadlineTrips(t *testing.T) {
	c := New(nil, time.Nanosecond, 0)
	time.Sleep(time.Millisecond)
	var i *Interrupt
	// The wall clock is only consulted every wallCheckStride calls.
	for n := 0; n <= wallCheckStride && i == nil; n++ {
		i = c.Check("spin", 0)
	}
	if i == nil || i.Reason != WallDeadline {
		t.Fatalf("wall deadline did not trip: %+v", i)
	}
	if i.Wall <= 0 {
		t.Fatalf("interrupt did not record wall time: %+v", i)
	}
}

func TestRecoverConvertsInterruptPanics(t *testing.T) {
	run := func() (err error) {
		defer Recover(&err)
		Abort(&Interrupt{Reason: SimBudget, Op: "kernel", SimTime: sim.Second})
		return nil
	}
	err := run()
	i := AsInterrupt(err)
	if i == nil || i.Reason != SimBudget || i.Op != "kernel" {
		t.Fatalf("Recover lost the interrupt: %v", err)
	}

	// Wrapped interrupts are still found.
	if AsInterrupt(fmt.Errorf("outer: %w", err)) == nil {
		t.Fatal("AsInterrupt missed a wrapped interrupt")
	}
	if AsInterrupt(errors.New("plain")) != nil {
		t.Fatal("AsInterrupt invented an interrupt")
	}

	// Non-interrupt panics pass through untouched.
	other := func() (err error) {
		defer func() {
			if p := recover(); p == nil {
				t.Fatal("Recover swallowed a foreign panic")
			}
		}()
		defer Recover(&err)
		panic("boom")
	}
	_ = other()
}

func TestRecoverKeepsEarlierError(t *testing.T) {
	sentinel := errors.New("first failure")
	run := func() (err error) {
		defer Recover(&err)
		err = sentinel
		Abort(&Interrupt{Reason: Canceled, Op: "x"})
		return err
	}
	if got := run(); got != sentinel {
		t.Fatalf("Recover overwrote an earlier error: %v", got)
	}
}

// Progress snapshots publish on the first check, on the stride, and at the
// trip point — and are readable from another goroutine while the run keeps
// checking (the progress-stream contract).
func TestProgressObservation(t *testing.T) {
	var c *Control
	if _, ok := c.Progress(); ok {
		t.Fatal("nil control reports progress")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctl := New(ctx, 0, 0)
	if _, ok := ctl.Progress(); ok {
		t.Fatal("fresh control reports progress before any check")
	}
	ctl.Check("kernel", 5*sim.Microsecond)
	p, ok := ctl.Progress()
	if !ok || p.Op != "kernel" || p.SimTime != 5*sim.Microsecond || p.Checks != 1 {
		t.Fatalf("first-check progress = %+v, %v", p, ok)
	}

	// Advance past one stride: the snapshot must move forward.
	for i := 2; i <= progressStride+1; i++ {
		ctl.Check("evict", sim.Time(i)*sim.Microsecond)
	}
	p2, _ := ctl.Progress()
	if p2.Checks <= p.Checks || p2.SimTime <= p.SimTime {
		t.Fatalf("progress did not advance: %+v -> %+v", p, p2)
	}

	// Concurrent reader while the run keeps checking (run under -race).
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			ctl.Progress()
		}
	}()
	for i := 0; i < 10*progressStride; i++ {
		ctl.Check("migrate", sim.Time(i)*sim.Millisecond)
	}
	<-done

	// The trip publishes a final Done observation at the stop point.
	cancel()
	ctl.Check("fault", 42*sim.Second)
	fin, ok := ctl.Progress()
	if !ok || !fin.Done || fin.Op != "fault" || fin.SimTime != 42*sim.Second {
		t.Fatalf("trip progress = %+v, %v", fin, ok)
	}
}

// The checkpoint observer fires exactly at the progress-publication points
// (first check, every progressStride-th check, and the trip point), carrying
// the same snapshot Progress() exposes — the contract the fleet worker's
// lease renewal depends on.
func TestObserverFiresAtPublicationPoints(t *testing.T) {
	var seen []Progress
	ctx, cancel := context.WithCancel(context.Background())
	c := New(ctx, 0, 0)
	c.SetObserver(func(p Progress) { seen = append(seen, p) })

	for i := 0; i < int(progressStride)+1; i++ {
		if got := c.Check("kernel", sim.Time(i)); got != nil {
			t.Fatalf("check %d tripped: %v", i, got)
		}
	}
	if len(seen) != 2 {
		t.Fatalf("observer fired %d times over %d checks, want 2 (first + stride)", len(seen), progressStride+1)
	}
	if seen[0].Checks != 1 || seen[1].Checks != progressStride {
		t.Fatalf("observer checkpoints = %d, %d; want 1, %d", seen[0].Checks, seen[1].Checks, progressStride)
	}
	cancel()
	if got := c.Check("kernel", 99); got == nil {
		t.Fatal("canceled control did not trip")
	}
	last := seen[len(seen)-1]
	if !last.Done || last.Op != "kernel" || last.SimTime != 99 {
		t.Fatalf("trip observation = %+v, want Done at op kernel, sim time 99", last)
	}
	if p, ok := c.Progress(); !ok || p != last {
		t.Fatalf("Progress() = %+v, observer saw %+v; must match", p, last)
	}

	// A nil control accepts (and ignores) an observer.
	var nilc *Control
	nilc.SetObserver(func(Progress) { t.Fatal("observer on nil control fired") })
	if nilc.Check("op", 0) != nil {
		t.Fatal("nil control tripped")
	}
}

// Package runctl is the run-control (watchdog) layer for simulations that
// must be cancellable and bounded: it carries a context.Context, an optional
// wall-clock deadline, and an optional sim-time budget down into the driver
// loop, which polls Check at its operation boundaries. A tripped control
// aborts the run with a structured *Interrupt error — never an unrecovered
// panic — at a point where the driver's invariants hold, so an aborted run
// always passes the runtime sanitizer.
//
// This is deliberately the only simulation-adjacent package allowed to read
// the wall clock (see the simdet analyzer's allowlist): virtual time stays a
// pure function of the inputs, while the watchdog measures how long the
// *host* has been grinding, which is exactly what a production service needs
// to kill a runaway simulation. A Control never advances simulated time and
// never perturbs metrics, so two runs of the same seeded workload — one with
// a control that never trips, one without — produce byte-identical results.
//
// Ownership rules mirror sim.RNG and faultinject.Injector: a Control is
// single-threaded per run, freshly constructed for every run, and never
// shared between concurrently executing runs.
package runctl

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"uvmdiscard/internal/sim"
)

// Reason classifies why a run was interrupted.
type Reason int

const (
	// Canceled means the run's context was canceled (client disconnect,
	// batch cancellation, service shutdown).
	Canceled Reason = iota
	// WallDeadline means the run exceeded its host wall-clock budget — the
	// watchdog verdict for a runaway simulation.
	WallDeadline
	// SimBudget means the simulated clock ran past the run's sim-time
	// budget.
	SimBudget
)

// String names the reason the way service metrics and logs report it.
func (r Reason) String() string {
	switch r {
	case Canceled:
		return "canceled"
	case WallDeadline:
		return "wall-deadline"
	case SimBudget:
		return "sim-budget"
	default:
		return fmt.Sprintf("Reason(%d)", int(r))
	}
}

// Interrupt is the structured error a tripped control produces. It records
// where the run was stopped (the driver operation and the simulated time),
// so an aborted run is diagnosable and countable, never silently dropped.
type Interrupt struct {
	// Reason says which limit tripped.
	Reason Reason
	// Op is the driver operation at whose boundary the run stopped.
	Op string
	// SimTime is the simulated time at the stop point.
	SimTime sim.Time
	// Wall is how long the run had been executing on the host.
	Wall time.Duration
	// Cause is the underlying context error for Canceled interrupts.
	Cause error
}

// Error implements error.
func (i *Interrupt) Error() string {
	return fmt.Sprintf("runctl: run interrupted (%s) at %s, sim time %v, wall %v",
		i.Reason, i.Op, i.SimTime, i.Wall.Round(time.Microsecond))
}

// Unwrap maps the interrupt onto the standard context sentinels so callers
// can errors.Is(err, context.Canceled / context.DeadlineExceeded).
func (i *Interrupt) Unwrap() error {
	switch i.Reason {
	case Canceled:
		if i.Cause != nil {
			return i.Cause
		}
		return context.Canceled
	default:
		return context.DeadlineExceeded
	}
}

// AsInterrupt extracts an *Interrupt from an error chain, or nil.
func AsInterrupt(err error) *Interrupt {
	var i *Interrupt
	if errors.As(err, &i) {
		return i
	}
	return nil
}

// wallCheckStride is how many Check calls elapse between wall-clock reads:
// the context and sim-budget checks are branch-cheap and run every time,
// while time.Now is only consulted every strideth call so the watchdog adds
// no measurable overhead to the driver loop.
const wallCheckStride = 32

// progressStride is how many Check calls elapse between progress-snapshot
// publications. Publishing allocates one Progress record, so it shares the
// watchdog's philosophy: cheap per call, amortized heavier work.
const progressStride = 64

// Progress is a point-in-time observation of a run taken at a driver
// checkpoint: which operation the run last crossed, how far the simulated
// clock has advanced, and how many checkpoints it has passed. It is the
// payload of the uvmsimd progress stream — a client watching a job sees
// sim-time advance without polling the job resource.
type Progress struct {
	// Op is the driver operation at the observed checkpoint.
	Op string
	// SimTime is the simulated clock at the observed checkpoint.
	SimTime sim.Time
	// Checks is the number of checkpoints the run has crossed so far.
	Checks uint64
	// Done marks the final observation of an interrupted run (the trip
	// point); completed runs simply stop publishing.
	Done bool
}

// Control carries one run's cancellation and budget state. The zero value
// and the nil pointer are both inert (Check always passes), so fault-free
// code paths pay a single nil comparison.
//
// A Control is single-threaded except for prog: the run publishes progress
// snapshots from inside Check, and any number of observer goroutines may
// read them through Progress — the one cross-goroutine surface of the type.
type Control struct {
	ctx          context.Context
	wallDeadline time.Time
	started      time.Time
	simBudget    sim.Time
	calls        uint64
	tripped      *Interrupt
	observe      func(Progress)

	prog atomic.Pointer[Progress]

	// ckptReq is the checkpoint-request flag: any goroutine may raise it
	// (RequestCheckpoint), and the run's own goroutine consumes it at the
	// next step boundary (TakeCheckpointRequest). Like prog it is one of the
	// two cross-goroutine surfaces of the type; everything else is
	// single-threaded.
	ckptReq atomic.Bool
}

// New builds a control for one run. ctx may be nil (never canceled);
// wallBudget and simBudget of zero mean unlimited. The wall-clock deadline
// starts counting when New is called — construct the control at run start.
func New(ctx context.Context, wallBudget time.Duration, simBudget sim.Time) *Control {
	c := &Control{ctx: ctx, simBudget: simBudget}
	if wallBudget > 0 || simBudget > 0 {
		c.started = time.Now()
	}
	if wallBudget > 0 {
		c.wallDeadline = c.started.Add(wallBudget)
	}
	return c
}

// SetObserver registers fn to be called from inside Check whenever a
// progress snapshot is published (the progressStride-amortized checkpoints,
// plus the final trip-point observation). It is the liveness hook of the
// fleet layer: a worker renews its job lease from here, so renewal is
// evidence the simulation is actually crossing driver checkpoints — a hung
// run stops renewing and its lease expires.
//
// fn runs on the run's own goroutine at a driver operation boundary, so it
// must be cheap and non-blocking (the fleet worker does a non-blocking
// channel send). Set it before the run starts; a Control is single-threaded
// state and SetObserver must not race Check. Safe on a nil receiver.
func (c *Control) SetObserver(fn func(Progress)) {
	if c == nil {
		return
	}
	c.observe = fn
}

// RequestCheckpoint asks the run to capture a checkpoint snapshot at its
// next step boundary — the same sanitizer-consistent points Check is polled
// at, which is what makes a mid-run snapshot safe to resume from. Safe to
// call from any goroutine and on a nil receiver; requests are idempotent
// until consumed.
func (c *Control) RequestCheckpoint() {
	if c == nil {
		return
	}
	c.ckptReq.Store(true)
}

// TakeCheckpointRequest consumes a pending checkpoint request, reporting
// whether one was raised since the last take. Called by the run's own
// goroutine at step boundaries. Safe on a nil receiver (never requested).
func (c *Control) TakeCheckpointRequest() bool {
	if c == nil {
		return false
	}
	return c.ckptReq.Swap(false)
}

// Active reports whether the control can ever trip.
func (c *Control) Active() bool {
	return c != nil && (c.ctx != nil || !c.wallDeadline.IsZero() || c.simBudget > 0)
}

// Interrupted returns the interrupt that tripped this control, or nil.
// Once tripped, a control stays tripped: every later Check returns the same
// interrupt, so a run cannot accidentally resume past its own abort.
func (c *Control) Interrupted() *Interrupt {
	if c == nil {
		return nil
	}
	return c.tripped
}

// Check polls the control at a driver operation boundary named op with the
// simulated clock at now. It returns nil when the run may continue and a
// sticky *Interrupt once any limit trips. Check never blocks and never
// advances simulated time. Safe on a nil receiver.
func (c *Control) Check(op string, now sim.Time) *Interrupt {
	if c == nil {
		return nil
	}
	if c.tripped != nil {
		return c.tripped
	}
	c.calls++
	if c.calls == 1 || c.calls%progressStride == 0 {
		p := Progress{Op: op, SimTime: now, Checks: c.calls}
		c.prog.Store(&p)
		if c.observe != nil {
			c.observe(p)
		}
	}
	if c.ctx != nil {
		select {
		case <-c.ctx.Done():
			return c.trip(Canceled, op, now, c.ctx.Err())
		default:
		}
	}
	if c.simBudget > 0 && now > c.simBudget {
		return c.trip(SimBudget, op, now, nil)
	}
	if !c.wallDeadline.IsZero() && c.calls%wallCheckStride == 0 {
		if time.Now().After(c.wallDeadline) {
			return c.trip(WallDeadline, op, now, nil)
		}
	}
	return nil
}

func (c *Control) trip(r Reason, op string, now sim.Time, cause error) *Interrupt {
	var wall time.Duration
	if !c.started.IsZero() {
		wall = time.Since(c.started)
	}
	c.tripped = &Interrupt{Reason: r, Op: op, SimTime: now, Wall: wall, Cause: cause}
	// Final progress observation: observers see exactly where the run
	// stopped, marked Done so streams can close promptly.
	p := Progress{Op: op, SimTime: now, Checks: c.calls, Done: true}
	c.prog.Store(&p)
	if c.observe != nil {
		c.observe(p)
	}
	return c.tripped
}

// Progress returns the most recently published progress observation and
// whether one exists yet. Safe to call from any goroutine, and on a nil
// control (reports no progress).
func (c *Control) Progress() (Progress, bool) {
	if c == nil {
		return Progress{}, false
	}
	p := c.prog.Load()
	if p == nil {
		return Progress{}, false
	}
	return *p, true
}

// Abort panics with the interrupt. The driver calls this when a Check
// trips; the panic unwinds through the (side-effect-free at that point)
// operation and is converted back into an ordinary error by Recover at the
// workload boundary — callers of the workload drivers only ever see an
// error, never a panic.
func Abort(i *Interrupt) {
	panic(i)
}

// Recover converts an in-flight Interrupt panic into *errp, preserving any
// earlier error as the interrupt takes precedence only when *errp is nil.
// Any other panic is re-raised untouched. Use it as the first deferred call
// of a workload driver's Run:
//
//	func Run(...) (res workloads.Result, err error) {
//		defer runctl.Recover(&err)
//		...
func Recover(errp *error) {
	p := recover()
	if p == nil {
		return
	}
	i, ok := p.(*Interrupt)
	if !ok {
		panic(p)
	}
	if *errp == nil {
		*errp = i
	}
}

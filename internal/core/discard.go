package core

import (
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/trace"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/vaspace"
)

// Discard implements the eager UvmDiscard directive (§5.1) over
// [off, off+length) of allocation a: the data values in the range are dead,
// and all virtual mappings are destroyed immediately so any re-access
// faults and informs the driver. Returns the completion time of the driver
// work (PTE clears and TLB invalidations acknowledged by the GPU).
func (d *Driver) Discard(a *vaspace.Alloc, off, length uint64, now sim.Time) (sim.Time, error) {
	return d.discard(a, off, length, now, false)
}

// DiscardLazy implements UvmDiscardLazy (§5.2): the software dirty bits of
// the covered range are cleared and mappings are left intact. The program
// must issue a prefetch before re-using the range; reclaiming a lazily
// discarded chunk pays the deferred unmap cost (§5.6).
func (d *Driver) DiscardLazy(a *vaspace.Alloc, off, length uint64, now sim.Time) (sim.Time, error) {
	return d.discard(a, off, length, now, true)
}

func (d *Driver) discard(a *vaspace.Alloc, off, length uint64, now sim.Time, lazy bool) (sim.Time, error) {
	d.checkpoint("Discard", now)
	// The driver prefers whole 2 MiB regions and ignores partial ones to
	// avoid splitting big mappings (§5.4); the AllowPartialDiscard
	// ablation splits instead.
	whole, err := a.AppendBlockRange(d.rangeScratch[:0], off, length, true)
	d.rangeScratch = whole[:0]
	if err != nil {
		return now, err
	}
	cur := now
	covered := 0
	for _, b := range whole {
		var ok bool
		cur, ok = d.discardBlock(b, cur, lazy)
		if ok {
			covered++
		}
	}
	if d.p.AllowPartialDiscard {
		cur = d.discardPartialEdges(a, off, length, cur, lazy)
	}
	d.m.AddDiscard(covered)
	if lazy {
		d.verify("DiscardLazy")
	} else {
		d.verify("Discard")
	}
	return cur, nil
}

// discardBlock applies the directive to one fully covered block. Returns
// whether the block newly became discarded.
func (d *Driver) discardBlock(b *vaspace.Block, now sim.Time, lazy bool) (sim.Time, bool) {
	if b.Discarded {
		return now, false // idempotent
	}
	cur := now
	switch b.Residency {
	case vaspace.Untouched:
		// Nothing to skip: no physical data exists anywhere.
		return cur, false
	case vaspace.CPUResident:
		b.Discarded = true
		b.LazyDiscard = lazy
		if !lazy && b.CPUMapped {
			// Eager discard destroys the CPU mapping too; the pinned host
			// page itself remains (§5.6).
			b.CPUMapped = false
		}
		d.record(cur, trace.Discard, b, b.Bytes())
	case vaspace.GPUResident:
		c := b.Chunk
		dev := d.devs[b.GPUIndex]
		if c.Queue() == gpudev.QueueUsed {
			dev.Detach(c)
			dev.PushDiscarded(c)
		}
		b.Discarded = true
		b.LazyDiscard = lazy
		b.LivePages = 0
		if lazy {
			// Mappings stay; the unmap is deferred to reclamation.
			c.NeedsUnmapOnReclaim = true
		} else {
			cur = d.unmapBlock(dev, cur)
			b.GPUMapped = false
			c.NeedsUnmapOnReclaim = false
		}
		d.record(cur, trace.Discard, b, b.Bytes())
		if d.p.ImmediateReclaim {
			// §5.6 ablation: reclaim the physical chunk right away,
			// forfeiting cheap recovery on re-access.
			dev.Detach(c)
			cur = d.reclaimDiscarded(c, cur)
			dev.PushFree(c)
		}
	}
	d.touch(b)
	return cur, true
}

// discardPartialEdges handles the partially covered head/tail blocks of a
// range under the AllowPartialDiscard ablation: the block's 2 MiB mapping
// is split and only the live remainder will migrate (slowly, at 4 KiB
// granularity) from now on. The caller's lazy flag carries through: when
// accumulated partial discards kill a whole block, a DiscardLazy call must
// still defer the unmap to reclamation rather than paying it eagerly.
func (d *Driver) discardPartialEdges(a *vaspace.Alloc, off, length uint64, now sim.Time, lazy bool) sim.Time {
	blocks, err := a.AppendBlockRange(d.edgeScratch[:0], off, length, false)
	d.edgeScratch = blocks[:0]
	if err != nil || len(blocks) == 0 {
		return now
	}
	cur := now
	for _, b := range blocks {
		lo := uint64(b.Index) * uint64(units.BlockSize)
		hi := lo + uint64(b.Bytes())
		covLo, covHi := max64(lo, off), min64(hi, off+length)
		if covLo >= covHi || (covLo == lo && covHi == hi) {
			continue // fully covered blocks were handled already
		}
		if b.Residency != vaspace.GPUResident || b.Discarded {
			continue
		}
		coveredPages := int((covHi - covLo) / uint64(units.PageSize))
		if coveredPages == 0 {
			continue
		}
		alreadySplit := b.LivePages > 0
		live := b.LivePages
		if live == 0 {
			live = int(b.Bytes() / units.PageSize)
		}
		live -= coveredPages
		if live < 0 {
			live = 0
		}
		if !alreadySplit {
			// Splitting the 2 MiB mapping costs an unmap/remap round
			// trip — but only the first partial discard splits it; a
			// block LivePages shows is already at 4 KiB granularity just
			// shrinks its live set without more PTE work.
			prof := d.devs[b.GPUIndex].Profile()
			cur = d.unmapBlock(d.devs[b.GPUIndex], cur) + prof.MapPerBlock
			d.m.AddMap(1)
		}
		if live == 0 {
			// The whole block ended up dead across partial discards.
			cur, _ = d.discardBlock(b, cur, lazy)
		} else {
			b.LivePages = live
			d.touch(b)
		}
	}
	return cur
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

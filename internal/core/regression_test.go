package core

import (
	"testing"

	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/units"
)

// A lazy discard that kills a whole block through accumulated partial
// discards must stay lazy: mappings intact, unmap deferred to reclamation.
// The bug was discardPartialEdges hard-coding lazy=false, silently turning
// DiscardLazy into an eager discard on the edge blocks.
func TestPartialDiscardKeepsLazyFlag(t *testing.T) {
	d := driverWithParams(t, 4, func(p *Params) { p.AllowPartialDiscard = true })
	a := mustAlloc(t, d, "a", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)

	// Two lazy half-block discards accumulate to a whole dead block.
	if _, err := d.DiscardLazy(a, 0, uint64(units.MiB), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.DiscardLazy(a, uint64(units.MiB), uint64(units.MiB), 0); err != nil {
		t.Fatal(err)
	}
	b := a.Block(0)
	if !b.Discarded {
		t.Fatal("fully covered block not discarded")
	}
	if !b.LazyDiscard {
		t.Error("lazy discard lost its lazy flag on the partial-edge path")
	}
	if !b.GPUMapped {
		t.Error("lazy discard destroyed the GPU mapping eagerly")
	}
	if !b.Chunk.NeedsUnmapOnReclaim {
		t.Error("deferred unmap not recorded on the chunk")
	}

	// Eager partial discards must still be eager.
	a2 := mustAlloc(t, d, "a2", units.BlockSize)
	gpuAccess(t, d, a2.Blocks(), Write)
	if _, err := d.Discard(a2, 0, uint64(units.MiB), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Discard(a2, uint64(units.MiB), uint64(units.MiB), 0); err != nil {
		t.Fatal(err)
	}
	b2 := a2.Block(0)
	if !b2.Discarded || b2.LazyDiscard {
		t.Errorf("eager partial discard: Discarded=%v LazyDiscard=%v, want true/false",
			b2.Discarded, b2.LazyDiscard)
	}
	if b2.GPUMapped || b2.Chunk.NeedsUnmapOnReclaim {
		t.Error("eager discard should unmap immediately")
	}
}

// Double-freeing a device buffer (or freeing chunks that never came from
// MallocDevice) must not corrupt the free queue or underflow the byte
// counter.
func TestFreeDeviceDoubleFree(t *testing.T) {
	d := testDriver(t, 8)
	dev := d.Device()
	before := dev.QueueLen(gpudev.QueueFree)

	chunks, err := d.MallocDevice(2 * units.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.DeviceAllocBytes(); got != 2*units.BlockSize {
		t.Fatalf("alloc bytes = %s", units.Format(got))
	}

	d.FreeDevice(chunks)
	if got := d.DeviceAllocBytes(); got != 0 {
		t.Errorf("after free: alloc bytes = %s, want 0", units.Format(got))
	}
	if got := dev.QueueLen(gpudev.QueueFree); got != before {
		t.Errorf("free queue = %d, want %d", got, before)
	}

	// Second free of the same chunks is a no-op.
	d.FreeDevice(chunks)
	if got := d.DeviceAllocBytes(); got != 0 {
		t.Errorf("after double free: alloc bytes = %s, want 0", units.Format(got))
	}
	if got := dev.QueueLen(gpudev.QueueFree); got != before {
		t.Errorf("double free grew the free queue: %d, want %d", got, before)
	}
	if err := dev.CheckInvariants(); err != nil {
		t.Errorf("queue invariants broken after double free: %v", err)
	}

	// Chunks still tracked by a different allocation are unaffected by a
	// free of already-freed ones.
	keep, err := d.MallocDevice(units.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	d.FreeDevice(chunks) // stale handles again
	if got := d.DeviceAllocBytes(); got != units.BlockSize {
		t.Errorf("stale free touched live allocation: %s", units.Format(got))
	}
	d.FreeDevice(keep)
	if got := d.DeviceAllocBytes(); got != 0 {
		t.Errorf("final alloc bytes = %s, want 0", units.Format(got))
	}
}

// Evicting a partially discarded block moves only the live pages D2H; the
// dead pages that never cross the link are discard savings and must be
// credited to the §5.4 ablation's "saved by discard" metric.
func TestEvictPartialBlockCreditsSavedD2H(t *testing.T) {
	d := driverWithParams(t, 2, func(p *Params) { p.AllowPartialDiscard = true })
	a := mustAlloc(t, d, "a", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)

	// Kill half the block; the other half stays live.
	if _, err := d.Discard(a, 0, uint64(units.MiB), 0); err != nil {
		t.Fatal(err)
	}
	b := a.Block(0)
	if b.Discarded || b.LivePages != int(units.MiB/units.PageSize) {
		t.Fatalf("setup: Discarded=%v LivePages=%d", b.Discarded, b.LivePages)
	}

	// Force an LRU eviction of the split block.
	other := mustAlloc(t, d, "other", 2*units.BlockSize)
	gpuAccess(t, d, other.Blocks(), Write)

	moved := d.Metrics().Bytes(metrics.D2H, metrics.CauseEviction)
	if moved != uint64(units.MiB) {
		t.Fatalf("eviction moved %d bytes, want %d", moved, units.MiB)
	}
	_, savedD2H := d.Metrics().Saved()
	if savedD2H != uint64(units.MiB) {
		t.Errorf("saved D2H = %d, want %d (the dead half avoided by discard)",
			savedD2H, units.MiB)
	}
}

// Freeing an allocation with a lazily discarded, still-resident block tears
// down the VA range and all its mappings — the chunk's deferred unmap
// (§5.6) no longer applies. The bug was FreeManaged pushing the chunk to
// the unused queue with NeedsUnmapOnReclaim still set, which both tripped
// the sanitizer (the marker is only legal on a discarded-queue chunk of a
// lazy block) and would have charged a phantom unmap at reclaim.
func TestFreeManagedClearsDeferredUnmap(t *testing.T) {
	d := testDriver(t, 4)
	a := mustAlloc(t, d, "a", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)
	if _, err := d.DiscardLazy(a, 0, uint64(units.BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	c := a.Block(0).Chunk
	if !c.NeedsUnmapOnReclaim {
		t.Fatal("setup: lazy discard did not set the deferred-unmap marker")
	}

	if err := d.FreeManaged(a); err != nil {
		t.Fatal(err)
	}
	if got := c.Queue(); got != gpudev.QueueUnused {
		t.Fatalf("freed chunk on %v queue, want unused", got)
	}
	if c.Owner != nil {
		t.Error("freed chunk still has an owner")
	}
	if c.NeedsUnmapOnReclaim {
		t.Error("freed chunk carries NeedsUnmapOnReclaim into the unused queue")
	}
	if err := d.CheckNow(); err != nil {
		t.Errorf("state after free: %v", err)
	}
}

// Splitting a 2 MiB mapping for a partial discard costs one unmap/remap
// round trip — once. The bug charged it on every partial discard of the
// same block, even when LivePages showed the block was already at 4 KiB
// granularity.
func TestPartialDiscardSplitChargedOnce(t *testing.T) {
	d := driverWithParams(t, 4, func(p *Params) { p.AllowPartialDiscard = true })
	a := mustAlloc(t, d, "a", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)
	quarter := uint64(units.BlockSize) / 4

	// First partial discard splits the mapping: one unmap + one remap.
	if _, err := d.Discard(a, 0, quarter, 0); err != nil {
		t.Fatal(err)
	}
	unmaps, maps := d.Metrics().Unmaps(), d.Metrics().Maps()
	if unmaps != 1 {
		t.Fatalf("first partial discard charged %d unmaps, want 1", unmaps)
	}

	// Further partial discards shrink the live set with no more PTE work.
	if _, err := d.Discard(a, quarter, quarter, 0); err != nil {
		t.Fatal(err)
	}
	if got := d.Metrics().Unmaps(); got != unmaps {
		t.Errorf("second partial discard re-charged the split: %d unmaps, want %d", got, unmaps)
	}
	if got := d.Metrics().Maps(); got != maps {
		t.Errorf("second partial discard re-charged the remap: %d maps, want %d", got, maps)
	}
	b := a.Block(0)
	if want := int(uint64(units.BlockSize)/2) / int(units.PageSize); b.LivePages != want {
		t.Errorf("LivePages = %d, want %d", b.LivePages, want)
	}

	// The discard that kills the rest goes through discardBlock, whose
	// eager unmap is separate from (and in addition to) the split cost.
	if _, err := d.Discard(a, 2*quarter, 2*quarter, 0); err != nil {
		t.Fatal(err)
	}
	if !b.Discarded {
		t.Fatal("fully covered block not discarded")
	}
	if got := d.Metrics().Unmaps(); got != unmaps+1 {
		t.Errorf("final eager discard: %d unmaps, want %d", got, unmaps+1)
	}
}

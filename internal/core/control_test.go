package core

import (
	"context"
	"errors"
	"testing"

	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/runctl"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/vaspace"
)

// controlDriver builds a driver with a run control attached. The TestMain
// sanitizer (stride 1) is active, so every operation — including the one a
// trip aborts — is followed by a full invariant sweep.
func controlDriver(t *testing.T, blocks int, ctl *runctl.Control) *Driver {
	t.Helper()
	d, err := New(Config{
		GPU:     gpudev.Generic(units.Size(blocks) * units.BlockSize),
		Link:    pcie.Preset(pcie.Gen4),
		Control: ctl,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// evictionWorkload dirties the GPU to capacity and then touches a second
// working set, forcing a train of LRU evictions. It returns the completion
// times of the fill phase and of the eviction-heavy phase.
func evictionWorkload(t *testing.T, d *Driver, a *vaspace.Alloc) (fillDone, evictDone sim.Time) {
	t.Helper()
	blocks := a.Blocks()
	half := len(blocks) / 2
	fillDone, err := d.GPUAccess(blocks[:half], Write, 0)
	if err != nil {
		t.Fatal(err)
	}
	evictDone, err = d.GPUAccess(blocks[half:], Write, fillDone)
	if err != nil {
		t.Fatal(err)
	}
	return fillDone, evictDone
}

// TestSimBudgetKillsMidEviction aborts a run while the eviction process is
// swapping out the LRU working set and proves the abort is a structured
// error raised at a consistent point: the interrupt names an eviction-path
// checkpoint, and the full sanitizer sweep still passes afterwards.
func TestSimBudgetKillsMidEviction(t *testing.T) {
	const gpuBlocks = 8
	// Calibration pass: same workload, no control — deterministic timings.
	ref := controlDriver(t, gpuBlocks, nil)
	refAlloc := mustAlloc(t, ref, "buf", 2*gpuBlocks*units.BlockSize)
	fillDone, evictDone := evictionWorkload(t, ref, refAlloc)
	if evictDone <= fillDone {
		t.Fatalf("eviction phase took no time: fill %v, evict %v", fillDone, evictDone)
	}

	// Budget expires halfway through the eviction phase, so the trip must
	// land on a checkpoint inside the eviction train, not at an op entry.
	budget := fillDone + (evictDone-fillDone)/2
	ctl := runctl.New(nil, 0, budget)
	d := controlDriver(t, gpuBlocks, ctl)
	a := mustAlloc(t, d, "buf", 2*gpuBlocks*units.BlockSize)

	err := func() (err error) {
		defer runctl.Recover(&err)
		blocks := a.Blocks()
		half := len(blocks) / 2
		done, err := d.GPUAccess(blocks[:half], Write, 0)
		if err != nil {
			return err
		}
		_, err = d.GPUAccess(blocks[half:], Write, done)
		return err
	}()
	i := runctl.AsInterrupt(err)
	if i == nil {
		t.Fatalf("budgeted run did not interrupt: err=%v", err)
	}
	if i.Reason != runctl.SimBudget {
		t.Fatalf("wrong reason: %+v", i)
	}
	if i.Op != "evict" && i.Op != "ensure-gpu" {
		t.Fatalf("interrupt did not land mid-eviction: op=%q (%+v)", i.Op, i)
	}
	if i.SimTime <= budget {
		t.Fatalf("interrupt sim time %v not past budget %v", i.SimTime, budget)
	}
	// The aborted driver's state must be fully consistent (stride-1 sweep).
	if serr := d.CheckNow(); serr != nil {
		t.Fatalf("sanitizer after interrupt: %v", serr)
	}
	// And sticky: the run cannot resume past its own abort.
	if trip := ctl.Interrupted(); trip != i {
		t.Fatalf("control lost its trip: %+v", trip)
	}
}

// TestCanceledContextAbortsRun cancels the run's context and expects the
// next checkpoint to abort with a Canceled interrupt that unwraps to
// context.Canceled, leaving sanitizer-clean state.
func TestCanceledContextAbortsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ctl := runctl.New(ctx, 0, 0)
	d := controlDriver(t, 8, ctl)
	a := mustAlloc(t, d, "buf", 4*units.BlockSize)

	// Runs fine before the cancel.
	done, err := d.GPUAccess(a.Blocks()[:2], Write, 0)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	err = func() (err error) {
		defer runctl.Recover(&err)
		_, err = d.GPUAccess(a.Blocks()[2:], Write, done)
		return err
	}()
	i := runctl.AsInterrupt(err)
	if i == nil || i.Reason != runctl.Canceled {
		t.Fatalf("canceled run did not interrupt: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupt does not unwrap to context.Canceled: %v", err)
	}
	if serr := d.CheckNow(); serr != nil {
		t.Fatalf("sanitizer after cancel: %v", serr)
	}
}

// TestWallDeadlineKillsRunaway gives the watchdog an already-expired wall
// budget and loops driver operations the way a runaway simulation would;
// the watchdog must stop it within its wall-check stride.
func TestWallDeadlineKillsRunaway(t *testing.T) {
	ctl := runctl.New(nil, 1, 0) // 1ns: expired by the first wall check
	d := controlDriver(t, 8, ctl)
	a := mustAlloc(t, d, "buf", 2*units.BlockSize)

	err := func() (err error) {
		defer runctl.Recover(&err)
		var now sim.Time
		for i := 0; i < 10_000; i++ {
			now, err = d.GPUAccess(a.Blocks(), Write, now)
			if err != nil {
				return err
			}
		}
		return nil
	}()
	i := runctl.AsInterrupt(err)
	if i == nil || i.Reason != runctl.WallDeadline {
		t.Fatalf("runaway loop was not killed by the watchdog: %v", err)
	}
	if serr := d.CheckNow(); serr != nil {
		t.Fatalf("sanitizer after watchdog kill: %v", serr)
	}
}

// TestInertControlIsByteIdentical runs the same workload with no control
// and with an attached-but-unlimited control and requires identical
// simulated timelines and traffic — the watchdog never perturbs results.
func TestInertControlIsByteIdentical(t *testing.T) {
	run := func(ctl *runctl.Control) (sim.Time, uint64) {
		d := controlDriver(t, 8, ctl)
		a := mustAlloc(t, d, "buf", 2*8*units.BlockSize)
		_, done := evictionWorkload(t, d, a)
		return done, d.Metrics().Traffic()
	}
	bareT, bareB := run(nil)
	ctlT, ctlB := run(runctl.New(context.Background(), 0, 0))
	if bareT != ctlT || bareB != ctlB {
		t.Fatalf("inert control changed the run: (%v,%d) vs (%v,%d)", bareT, bareB, ctlT, ctlB)
	}
}

// Package core implements the paper's contribution — the UvmDiscard and
// UvmDiscardLazy directives — inside a model of NVIDIA's UVM driver: the
// unified address space's fault, prefetch, and eviction paths, the per-GPU
// physical page queues of §5.5, delayed reclamation (§5.6), recovery on
// access-after-discard (§5.7), and 2 MiB-granularity management (§5.4).
//
// The driver operates on virtual time (internal/sim): every operation takes
// a ready time and returns a completion time, reserving intervals on the
// H2D/D2H DMA engines and the driver service thread. Memory-state
// transitions are applied in issue order; timing overlap between streams
// emerges from the independent engine timelines.
package core

import (
	"fmt"

	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/sim"
)

// Params holds the driver's policy knobs and the cost constants that are
// not part of the GPU hardware profile. The zero value is not valid; use
// DefaultParams.
type Params struct {
	// EvictionOrder is the sequence of queues the eviction process tries
	// after the free queue, §5.5. Default: unused, discarded, LRU-used.
	// (EvictFree is implicit and always first; including it here is an
	// error.)
	EvictionOrder []metrics.EvictSource

	// ImmediateReclaim, when true, reclaims a discarded block's physical
	// chunk at discard time instead of delaying reclamation (§5.6
	// ablation). This forfeits cheap recovery when the block is re-used
	// by the same GPU before memory pressure would have evicted it.
	ImmediateReclaim bool

	// PreparedTracking enables the §5.7 data structure that tracks
	// whether each 2 MiB chunk was fully zeroed/migrated; when disabled,
	// every recovered discarded chunk is conservatively re-zeroed.
	PreparedTracking bool

	// AllowPartialDiscard enables the §5.4 ablation: discards that cover
	// only part of a 2 MiB block split the block instead of being
	// ignored; the live remainder then migrates at 4 KiB granularity.
	AllowPartialDiscard bool

	// FaultBatchBlocks is the maximum number of 2 MiB blocks serviced in
	// one replayable-fault batch.
	FaultBatchBlocks int

	// PrefetchRecencyPerBlock is the driver work to update access recency
	// for an already-resident prefetched block — the prefetch that
	// "neither transfers nor prefaults memory but only updates the
	// recency of page accesses" and still measurably costs time on
	// CNN-style pipelines (§7.5.1).
	PrefetchRecencyPerBlock sim.Time

	// CPUFirstTouchPerBlock is the host-side cost to populate one 2 MiB
	// block with zero-filled pages on first touch (512 minor faults).
	CPUFirstTouchPerBlock sim.Time

	// CPUMinorFault is the cost of re-establishing a destroyed CPU
	// mapping (after an eager discard) on next host access.
	CPUMinorFault sim.Time

	// PageDMALatency is the per-operation latency charged when a partial
	// block must move as individual 4 KiB DMA operations (§5.4 ablation);
	// each 4 KiB page pays this on top of link bandwidth.
	PageDMALatency sim.Time

	// SplitTLBPenalty is the extra per-access translation cost on a block
	// whose 2 MiB mapping was split into 4 KiB PTEs (§5.4: "Using 2MB
	// mappings ... can greatly increase the coverage of GPU TLBs and
	// reduce GPU address translation overhead"). Charged on every GPU
	// access to a split block under the AllowPartialDiscard ablation.
	SplitTLBPenalty sim.Time

	// CheckInvariants enables the runtime sanitizer (sanitizer.go): after
	// every public driver operation the full invariant sweep runs —
	// chunk-in-exactly-one-queue, chunk↔block back-pointers, byte
	// conservation across all devices, host accounting, and the discard
	// protocol rules — and panics with a diagnostic naming the offending
	// alloc/block/chunk. Off by default (it is O(blocks + chunks) per
	// operation); every core and experiments test turns it on.
	CheckInvariants bool

	// CheckInvariantsEvery samples the sanitizer sweep to every Nth
	// operation when > 1 (0 and 1 both mean every operation). Full-scale
	// experiment runs use a stride so the sweep's cost stays negligible
	// while still bracketing any corruption to a small operation window.
	CheckInvariantsEvery int

	// FullAuditEvery escalates every Nth sanitizer check from the
	// incremental O(touched blocks) pass to the full O(device) sweep
	// (sanitizer.go). Values <= 1 make every check a full sweep — the
	// pre-PR 9 behavior, which the seeded-corruption tests rely on for
	// prompt detection. DefaultParams picks a stride that keeps stride-1
	// checking affordable while bounding how long device-wide drift can
	// hide.
	FullAuditEvery int

	// PanicOnSilentReuse escalates the §5.2 lazy-discard protocol hazard
	// from silently-modeled (the paper's semantics: the driver never
	// observes the access, and a later reclaim loses the data) to an
	// immediate panic naming the block. Separate from CheckInvariants
	// because the hazard is an *application* protocol violation, not a
	// driver-state inconsistency — tests that deliberately model the
	// hazard keep it off.
	PanicOnSilentReuse bool

	// MaxMigrateRetries bounds how many times a failed migration (an
	// injected DMA, peer, or unmap fault — internal/faultinject) is
	// retried before the driver gives up and degrades the access to
	// coherent host-pinned service. Only consulted when a fault injector
	// is attached; 0 means degrade on the first failure.
	MaxMigrateRetries int

	// MigrateRetryBackoff is the base sim-time backoff between migration
	// retry attempts; attempt n waits backoff << (n-1) (bounded
	// exponential, §5.7-style driver pacing). Only consulted when a fault
	// injector is attached.
	MigrateRetryBackoff sim.Time

	// RemoteAccessMigrateThreshold enables the cache-coherent
	// remote-access mode of §2.3 when the link is coherent and the value
	// is positive: a GPU access to CPU-resident data is served over the
	// link without migrating, and the driver's access counters promote
	// the block to GPU residency once it has been touched remotely this
	// many times. Zero (the default) always migrates, as on the paper's
	// PCIe platform.
	RemoteAccessMigrateThreshold int
}

// DefaultParams returns the configuration that reproduces the paper's
// system.
// defaultEvictionOrder backs every DefaultParams copy. It is treated as
// immutable: all call sites override EvictionOrder by assigning a fresh
// slice, never by writing elements, so the copies can share one backing
// array instead of allocating one per driver (experiment sweeps build
// thousands of drivers).
var defaultEvictionOrder = []metrics.EvictSource{
	metrics.EvictUnused, metrics.EvictDiscarded, metrics.EvictLRU,
}

func DefaultParams() Params {
	return Params{
		EvictionOrder:           defaultEvictionOrder,
		PreparedTracking:        true,
		FaultBatchBlocks:        16,
		PrefetchRecencyPerBlock: sim.Micros(0.4),
		CPUFirstTouchPerBlock:   sim.Micros(520),
		CPUMinorFault:           sim.Micros(1.2),
		PageDMALatency:          sim.Micros(2.5),
		SplitTLBPenalty:         sim.Micros(8),
		MaxMigrateRetries:       4,
		MigrateRetryBackoff:     sim.Micros(25),
		FullAuditEvery:          64,
	}
}

// Validate checks the parameter set.
func (p *Params) Validate() error {
	if len(p.EvictionOrder) == 0 {
		return fmt.Errorf("core: empty eviction order")
	}
	seen := map[metrics.EvictSource]bool{}
	for _, s := range p.EvictionOrder {
		if s == metrics.EvictFree {
			return fmt.Errorf("core: eviction order must not include the free queue (it is implicit)")
		}
		if seen[s] {
			return fmt.Errorf("core: duplicate eviction source %v", s)
		}
		seen[s] = true
	}
	if !seen[metrics.EvictLRU] {
		return fmt.Errorf("core: eviction order must end with a source that can always supply a chunk (lru)")
	}
	if p.FaultBatchBlocks <= 0 {
		return fmt.Errorf("core: fault batch size must be positive")
	}
	if p.PrefetchRecencyPerBlock < 0 || p.CPUFirstTouchPerBlock < 0 ||
		p.CPUMinorFault < 0 || p.PageDMALatency < 0 || p.SplitTLBPenalty < 0 {
		return fmt.Errorf("core: negative cost parameter")
	}
	if p.RemoteAccessMigrateThreshold < 0 {
		return fmt.Errorf("core: negative remote-access threshold")
	}
	if p.MaxMigrateRetries < 0 || p.MaxMigrateRetries > 16 {
		return fmt.Errorf("core: MaxMigrateRetries %d outside [0,16]", p.MaxMigrateRetries)
	}
	if p.MigrateRetryBackoff < 0 {
		return fmt.Errorf("core: negative migrate retry backoff")
	}
	if p.CheckInvariantsEvery < 0 {
		return fmt.Errorf("core: negative sanitizer stride")
	}
	if p.FullAuditEvery < 0 {
		return fmt.Errorf("core: negative sanitizer full-audit stride")
	}
	return nil
}

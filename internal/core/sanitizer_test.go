package core

import (
	"strings"
	"testing"

	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/units"
)

// The sanitizer's job is to catch exactly the corruption these tests seed
// by hand: queue/owner mismatches, stray deferred-unmap markers, leaked
// chunks, and accounting drift. Each test breaks one invariant directly
// and asserts CheckNow names the offending chunk or block.

// mustViolate runs CheckNow and asserts the diagnostic mentions every
// given substring.
func mustViolate(t *testing.T, d *Driver, wants ...string) {
	t.Helper()
	err := d.CheckNow()
	if err == nil {
		t.Fatalf("sanitizer missed the seeded corruption (wanted %q)", wants)
	}
	for _, w := range wants {
		if !strings.Contains(err.Error(), w) {
			t.Errorf("diagnostic %q does not mention %q", err, w)
		}
	}
}

func TestSanitizerCleanState(t *testing.T) {
	d := testDriver(t, 8)
	a := mustAlloc(t, d, "a", 2*units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)
	if _, err := d.Discard(a, 0, uint64(units.BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.DiscardLazy(a, uint64(units.BlockSize), uint64(units.BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckNow(); err != nil {
		t.Fatalf("consistent state flagged: %v", err)
	}
}

func TestSanitizerDetectsOwnerMismatch(t *testing.T) {
	d := testDriver(t, 8)
	a := mustAlloc(t, d, "a", units.BlockSize)
	b := mustAlloc(t, d, "b", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)
	gpuAccess(t, d, b.Blocks(), Write)

	// Point a's chunk at b's block: the back-pointer no longer matches.
	a.Block(0).Chunk.Owner = b.Block(0)
	mustViolate(t, d, "does not point back", `alloc "b"`)
}

func TestSanitizerDetectsStrayDeferredUnmap(t *testing.T) {
	d := testDriver(t, 8)
	a := mustAlloc(t, d, "a", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)

	// A live used chunk must never carry the lazy-discard marker: at
	// reclaim it would charge an unmap that was never deferred.
	a.Block(0).Chunk.NeedsUnmapOnReclaim = true
	mustViolate(t, d, "NeedsUnmapOnReclaim", "not a lazily discarded chunk")
}

func TestSanitizerDetectsLeakedChunk(t *testing.T) {
	d := testDriver(t, 8)
	a := mustAlloc(t, d, "a", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)

	// Pull the chunk off every queue without tracking it as a device
	// buffer: it has escaped the allocator.
	d.Device().Detach(a.Block(0).Chunk)
	mustViolate(t, d, "leaked")
}

func TestSanitizerDetectsHostAccountingDrift(t *testing.T) {
	d := testDriver(t, 8)
	a := mustAlloc(t, d, "a", units.BlockSize)
	d.CPUAccess(a.Blocks(), Write, 0)

	if err := d.Host().Reserve(units.BlockSize); err != nil {
		t.Fatal(err)
	}
	mustViolate(t, d, "host accounting")
}

func TestSanitizerDetectsEagerDiscardStillMapped(t *testing.T) {
	d := testDriver(t, 8)
	a := mustAlloc(t, d, "a", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)
	if _, err := d.Discard(a, 0, uint64(units.BlockSize), 0); err != nil {
		t.Fatal(err)
	}

	// §5.1: eager discard must leave no mapping behind — a touch through
	// a surviving mapping would never fault.
	a.Block(0).GPUMapped = true
	mustViolate(t, d, "still GPU-mapped", `alloc "a"`)
}

func TestSanitizerDetectsLostLazyMarker(t *testing.T) {
	d := testDriver(t, 8)
	a := mustAlloc(t, d, "a", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)
	if _, err := d.DiscardLazy(a, 0, uint64(units.BlockSize), 0); err != nil {
		t.Fatal(err)
	}

	// §5.6: losing the marker means the deferred unmap is never paid.
	a.Block(0).Chunk.NeedsUnmapOnReclaim = false
	mustViolate(t, d, "missing NeedsUnmapOnReclaim")
}

func TestSanitizerDetectsQueueMismatch(t *testing.T) {
	d := testDriver(t, 8)
	a := mustAlloc(t, d, "a", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)
	if _, err := d.Discard(a, 0, uint64(units.BlockSize), 0); err != nil {
		t.Fatal(err)
	}

	// Move the discarded chunk back to the used queue while the block
	// still says Discarded: the two views disagree.
	c := a.Block(0).Chunk
	d.Device().Detach(c)
	d.Device().PushUsed(c)
	mustViolate(t, d, "discarded but its chunk", gpudev.QueueUsed.String())
}

// The per-operation hook must label the panic with the public operation
// that exposed the corruption.
func TestVerifyPanicsWithOperationName(t *testing.T) {
	d := testDriver(t, 8)
	a := mustAlloc(t, d, "a", units.BlockSize)
	b := mustAlloc(t, d, "b", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)

	a.Block(0).Chunk.NeedsUnmapOnReclaim = true

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("corrupted state survived a driver operation without panicking")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "after CPUAccess") {
			t.Fatalf("panic %v does not name the operation", r)
		}
	}()
	d.CPUAccess(b.Blocks(), Write, 0)
}

// PanicOnSilentReuse turns the §5.2 protocol hazard — touching a lazily
// discarded block without the mandatory prefetch — into an immediate panic
// at the faultless access, instead of silent data loss at a later reclaim.
func TestPanicOnSilentReuse(t *testing.T) {
	d := driverWithParams(t, 8, func(p *Params) { p.PanicOnSilentReuse = true })
	a := mustAlloc(t, d, "hazard", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)
	if _, err := d.DiscardLazy(a, 0, uint64(units.BlockSize), 0); err != nil {
		t.Fatal(err)
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("GPU access to a lazily discarded block did not panic under PanicOnSilentReuse")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "protocol violation") || !strings.Contains(msg, `alloc "hazard"`) {
			t.Fatalf("panic %v does not describe the protocol violation", r)
		}
	}()
	if _, err := d.GPUAccess(a.Blocks(), Write, 0); err != nil {
		t.Fatal(err)
	}
}

// The prefetch-first protocol must NOT panic: recovery via prefetch is the
// documented correct usage of UvmDiscardLazy.
func TestPanicOnSilentReuseAllowsPrefetchProtocol(t *testing.T) {
	d := driverWithParams(t, 8, func(p *Params) { p.PanicOnSilentReuse = true })
	a := mustAlloc(t, d, "a", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)
	if _, err := d.DiscardLazy(a, 0, uint64(units.BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.PrefetchToGPU(a, 0, uint64(units.BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	gpuAccess(t, d, a.Blocks(), Write)
	if err := d.CheckNow(); err != nil {
		t.Fatal(err)
	}
}

// Sampling stride: with CheckInvariantsEvery > 1 the sweep is skipped
// between sample points, then catches the corruption at the next one.
func TestSanitizerSamplingStride(t *testing.T) {
	p := DefaultParams()
	p.CheckInvariants = true
	p.CheckInvariantsEvery = 4
	// The corruption below hits a block no operation touches, which only a
	// full sweep can see; pin every sample point to a full audit so the
	// test isolates the CheckInvariantsEvery stride.
	p.FullAuditEvery = 1
	d, err := New(Config{GPU: gpudev.Generic(8 * units.BlockSize), Params: &p})
	if err != nil {
		t.Fatal(err)
	}
	a := mustAlloc(t, d, "a", units.BlockSize)
	b := mustAlloc(t, d, "b", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write) // op 1
	a.Block(0).Chunk.NeedsUnmapOnReclaim = true

	panicked := make(chan bool, 1)
	func() {
		defer func() { panicked <- recover() != nil }()
		d.CPUAccess(b.Blocks(), Write, 0) // op 2: off-stride, skipped
	}()
	if <-panicked {
		t.Fatal("off-stride operation ran the sweep")
	}
	func() {
		defer func() { panicked <- recover() != nil }()
		d.CPUAccess(b.Blocks(), Read, 0) // op 3
		d.CPUAccess(b.Blocks(), Read, 0) // op 4: sample point
	}()
	if !<-panicked {
		t.Fatal("sample-point operation missed the corruption")
	}
}

package core

import (
	"testing"
	"testing/quick"

	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/trace"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/vaspace"
)

func driverWithParams(t *testing.T, blocks int, mutate func(*Params)) *Driver {
	t.Helper()
	p := DefaultParams()
	if mutate != nil {
		mutate(&p)
	}
	d, err := New(Config{
		GPU:    gpudev.Generic(units.Size(blocks) * units.BlockSize),
		Params: &p,
		Trace:  trace.NewRecorder(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestParamsValidation(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultParams()
	bad.EvictionOrder = nil
	if bad.Validate() == nil {
		t.Error("empty eviction order accepted")
	}
	bad = DefaultParams()
	bad.EvictionOrder = []metrics.EvictSource{metrics.EvictFree, metrics.EvictLRU}
	if bad.Validate() == nil {
		t.Error("explicit free queue accepted")
	}
	bad = DefaultParams()
	bad.EvictionOrder = []metrics.EvictSource{metrics.EvictLRU, metrics.EvictLRU}
	if bad.Validate() == nil {
		t.Error("duplicate source accepted")
	}
	bad = DefaultParams()
	bad.EvictionOrder = []metrics.EvictSource{metrics.EvictUnused}
	if bad.Validate() == nil {
		t.Error("order without LRU accepted")
	}
	bad = DefaultParams()
	bad.FaultBatchBlocks = 0
	if bad.Validate() == nil {
		t.Error("zero batch size accepted")
	}
	bad = DefaultParams()
	bad.CPUMinorFault = -1
	if bad.Validate() == nil {
		t.Error("negative cost accepted")
	}
}

// §5.6 ablation: immediate reclamation forfeits cheap recovery — the
// re-access must re-zero a fresh chunk instead of recovering the old one.
func TestImmediateReclaimAblation(t *testing.T) {
	d := driverWithParams(t, 8, func(p *Params) { p.ImmediateReclaim = true })
	a, _ := d.AllocManaged("a", units.BlockSize)
	if _, err := d.GPUAccess(a.Blocks(), Write, 0); err != nil {
		t.Fatal(err)
	}
	chunk := a.Block(0).Chunk
	if _, err := d.Discard(a, 0, uint64(a.Size()), 0); err != nil {
		t.Fatal(err)
	}
	if a.Block(0).Residency != vaspace.Untouched {
		t.Fatal("immediate reclaim did not reset the block")
	}
	if chunk.Queue() != gpudev.QueueFree {
		t.Errorf("chunk on %v, want free", chunk.Queue())
	}
	if d.Device().QueueLen(gpudev.QueueDiscarded) != 0 {
		t.Error("discarded queue should be empty")
	}
	// Re-access zero-fills a fresh chunk (cannot recover).
	if _, err := d.GPUAccess(a.Blocks(), Write, 0); err != nil {
		t.Fatal(err)
	}
	zb, _ := d.Metrics().ZeroFills()
	if zb != 2 { // first touch + re-populate
		t.Errorf("zero fills = %d, want 2", zb)
	}
}

// §5.7 ablation: without prepared tracking, recovery always re-zeroes.
func TestPreparedTrackingAblation(t *testing.T) {
	run := func(tracking bool) int64 {
		d := driverWithParams(t, 8, func(p *Params) { p.PreparedTracking = tracking })
		a, _ := d.AllocManaged("a", units.BlockSize)
		if _, err := d.GPUAccess(a.Blocks(), Write, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Discard(a, 0, uint64(a.Size()), 0); err != nil {
			t.Fatal(err)
		}
		if _, err := d.GPUAccess(a.Blocks(), Write, 0); err != nil {
			t.Fatal(err)
		}
		zb, _ := d.Metrics().ZeroFills()
		return zb
	}
	if with, without := run(true), run(false); with != 1 || without != 2 {
		t.Errorf("zero fills with tracking = %d (want 1), without = %d (want 2)",
			with, without)
	}
}

// §5.4 ablation: partial discards split blocks; the live remainder then
// migrates page-wise, moving fewer bytes but paying per-page latency.
func TestPartialDiscardAblation(t *testing.T) {
	d := driverWithParams(t, 2, func(p *Params) { p.AllowPartialDiscard = true })
	a, _ := d.AllocManaged("a", units.BlockSize)
	if _, err := d.GPUAccess(a.Blocks(), Write, 0); err != nil {
		t.Fatal(err)
	}
	// Discard half the block.
	if _, err := d.Discard(a, 0, uint64(units.MiB), 0); err != nil {
		t.Fatal(err)
	}
	b := a.Block(0)
	if b.Discarded {
		t.Fatal("half-covered block fully discarded")
	}
	wantLive := int(units.MiB / units.PageSize)
	if b.LivePages != wantLive {
		t.Fatalf("live pages = %d, want %d", b.LivePages, wantLive)
	}
	// Eviction now moves only the live half…
	other, _ := d.AllocManaged("other", 2*units.BlockSize)
	if _, err := d.GPUAccess(other.Blocks(), Write, 0); err != nil {
		t.Fatal(err)
	}
	if got := d.Metrics().Bytes(metrics.D2H, metrics.CauseEviction); got != uint64(units.MiB) {
		t.Errorf("eviction moved %d bytes, want %d", got, units.MiB)
	}
	// …but at 4 KiB DMA granularity the per-byte cost is much worse than
	// one 2 MiB op: per-page latency dominates.
	_, perPageTime := d.migrationCost(b)
	full := d.Link().TransferTime(uint64(units.BlockSize))
	if perPageTime <= full {
		t.Errorf("page-wise half-block (%v) should cost more than one full-block DMA (%v)",
			perPageTime, full)
	}
}

// Discarding the two halves of a block separately kills it entirely.
func TestPartialDiscardAccumulates(t *testing.T) {
	d := driverWithParams(t, 4, func(p *Params) { p.AllowPartialDiscard = true })
	a, _ := d.AllocManaged("a", units.BlockSize)
	if _, err := d.GPUAccess(a.Blocks(), Write, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Discard(a, 0, uint64(units.MiB), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Discard(a, uint64(units.MiB), uint64(units.MiB), 0); err != nil {
		t.Fatal(err)
	}
	if !a.Block(0).Discarded {
		t.Error("fully covered (across two calls) block not discarded")
	}
}

// Default (paper) behaviour: partial ranges are ignored entirely.
func TestPartialDiscardIgnoredByDefault(t *testing.T) {
	d := testDriver(t, 2)
	a := mustAlloc(t, d, "a", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)
	if _, err := d.Discard(a, 0, uint64(units.MiB), 0); err != nil {
		t.Fatal(err)
	}
	b := a.Block(0)
	if b.Discarded || b.LivePages != 0 {
		t.Error("partial discard had an effect despite default params")
	}
}

// Eviction-order ablation: reclaiming discarded chunks before unused ones
// changes which source supplies chunks.
func TestEvictionOrderAblation(t *testing.T) {
	d := driverWithParams(t, 3, func(p *Params) {
		p.EvictionOrder = []metrics.EvictSource{
			metrics.EvictDiscarded, metrics.EvictUnused, metrics.EvictLRU,
		}
	})
	a, _ := d.AllocManaged("a", units.BlockSize)
	if _, err := d.GPUAccess(a.Blocks(), Write, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Discard(a, 0, uint64(a.Size()), 0); err != nil {
		t.Fatal(err)
	}
	// Stock the unused queue too.
	aux, _ := d.AllocManaged("aux", units.BlockSize)
	if _, err := d.GPUAccess(aux.Blocks(), Write, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.FreeManaged(aux); err != nil {
		t.Fatal(err)
	}
	// One block of pressure: free queue has 1... consume it first.
	x, _ := d.AllocManaged("x", units.BlockSize)
	if _, err := d.GPUAccess(x.Blocks(), Write, 0); err != nil {
		t.Fatal(err)
	}
	y, _ := d.AllocManaged("y", units.BlockSize)
	if _, err := d.GPUAccess(y.Blocks(), Write, 0); err != nil {
		t.Fatal(err)
	}
	// With discarded-first order, the discarded chunk went before unused.
	if d.Metrics().Evictions(metrics.EvictDiscarded) != 1 {
		t.Errorf("discarded evictions = %d, want 1", d.Metrics().Evictions(metrics.EvictDiscarded))
	}
	if d.Metrics().Evictions(metrics.EvictUnused) != 0 {
		t.Errorf("unused evictions = %d, want 0", d.Metrics().Evictions(metrics.EvictUnused))
	}
}

// §4.1 semantics, property-tested: after an arbitrary interleaving of
// writes, discards, accesses, and pressure, a read observes either zeros or
// a previously written value — and always the latest value if a write
// happened after the last discard.
func TestDiscardSemanticsProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		d, err := New(Config{GPU: gpudev.Generic(3 * units.BlockSize)})
		if err != nil {
			return false
		}
		a, err := d.AllocManaged("a", units.BlockSize)
		if err != nil {
			return false
		}
		pressure, err := d.AllocManaged("p", 3*units.BlockSize)
		if err != nil {
			return false
		}
		var wrote []byte           // all values ever written
		var lastWrite byte         // most recent write
		var writeAfterDiscard bool // a write happened after the last discard
		var everWrote bool
		for _, op := range ops {
			switch op % 6 {
			case 0: // CPU write
				d.CPUAccess(a.Blocks(), Write, 0)
				lastWrite = op | 1 // non-zero
				a.Data()[0] = lastWrite
				wrote = append(wrote, lastWrite)
				writeAfterDiscard, everWrote = true, true
			case 1: // GPU write
				if _, err := d.GPUAccess(a.Blocks(), Write, 0); err != nil {
					return false
				}
				// Honor the lazy protocol: only count the write as live if
				// the driver observed it (block not silently discarded).
				if !a.Block(0).Discarded {
					lastWrite = op | 1
					a.Data()[0] = lastWrite
					wrote = append(wrote, lastWrite)
					writeAfterDiscard, everWrote = true, true
				}
			case 2: // eager discard
				if _, err := d.Discard(a, 0, uint64(a.Size()), 0); err != nil {
					return false
				}
				if a.Block(0).Discarded || a.Block(0).Residency == vaspace.Untouched {
					writeAfterDiscard = false
				}
			case 3: // lazy discard
				if _, err := d.DiscardLazy(a, 0, uint64(a.Size()), 0); err != nil {
					return false
				}
				if a.Block(0).Discarded || a.Block(0).Residency == vaspace.Untouched {
					writeAfterDiscard = false
				}
			case 4: // memory pressure
				if _, err := d.GPUAccess(pressure.Blocks(), Write, 0); err != nil {
					return false
				}
			case 5: // prefetch (revives lazy discards)
				if _, err := d.PrefetchToGPU(a, 0, uint64(a.Size()), 0); err != nil {
					return false
				}
				if a.Block(0).Residency == vaspace.GPUResident && !a.Block(0).Discarded &&
					everWrote && a.Data()[0] == lastWrite {
					// value preserved; nothing to update
					_ = everWrote
				}
			}
			// Invariant check after every op: the observable value is
			// zero or something previously written.
			got := a.Data()[0]
			if got != 0 {
				found := false
				for _, w := range wrote {
					if w == got {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
			// If a write happened after the last discard, it must still
			// be visible.
			if writeAfterDiscard && got != lastWrite {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// §2.3 extension: with a cache-coherent link and a positive access-counter
// threshold, GPU accesses to CPU-resident data are served remotely until
// the counter promotes the block.
func TestCoherentRemoteAccessMode(t *testing.T) {
	p := DefaultParams()
	p.RemoteAccessMigrateThreshold = 2
	d, err := New(Config{
		GPU:    gpudev.Generic(8 * units.BlockSize),
		Link:   pcie.Preset(pcie.GenNVLink),
		Params: &p,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := d.AllocManaged("a", units.BlockSize)
	d.CPUAccess(a.Blocks(), Write, 0)

	// First two accesses: remote, no migration, no faults.
	for i := 0; i < 2; i++ {
		if _, err := d.GPUAccess(a.Blocks(), Read, 0); err != nil {
			t.Fatal(err)
		}
		if a.Block(0).Residency != vaspace.CPUResident {
			t.Fatalf("access %d migrated prematurely", i)
		}
	}
	if got := d.Metrics().Bytes(metrics.H2D, metrics.CauseRemote); got != uint64(2*units.BlockSize) {
		t.Errorf("remote bytes = %d", got)
	}
	if batches, _ := d.Metrics().FaultBatches(); batches != 0 {
		t.Errorf("remote accesses faulted: %d batches", batches)
	}
	// Third access crosses the threshold: the block migrates.
	if _, err := d.GPUAccess(a.Blocks(), Read, 0); err != nil {
		t.Fatal(err)
	}
	if a.Block(0).Residency != vaspace.GPUResident {
		t.Error("access counter did not promote the block")
	}
	if d.Metrics().Bytes(metrics.H2D, metrics.CauseFault) != uint64(units.BlockSize) {
		t.Error("promotion migration missing")
	}
	if a.Block(0).RemoteAccesses != 0 {
		t.Error("counter not reset after migration")
	}
}

// Remote mode never activates on a non-coherent link, regardless of the
// threshold.
func TestRemoteModeRequiresCoherentLink(t *testing.T) {
	p := DefaultParams()
	p.RemoteAccessMigrateThreshold = 4
	d, err := New(Config{
		GPU:    gpudev.Generic(8 * units.BlockSize),
		Link:   pcie.Preset(pcie.Gen4),
		Params: &p,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := d.AllocManaged("a", units.BlockSize)
	d.CPUAccess(a.Blocks(), Write, 0)
	if _, err := d.GPUAccess(a.Blocks(), Read, 0); err != nil {
		t.Fatal(err)
	}
	if a.Block(0).Residency != vaspace.GPUResident {
		t.Error("PCIe access should migrate immediately")
	}
	if d.Metrics().Bytes(metrics.H2D, metrics.CauseRemote) != 0 {
		t.Error("remote traffic on a non-coherent link")
	}
}

// Prefetches migrate even in remote mode — they are explicit placement
// directives.
func TestPrefetchMigratesInRemoteMode(t *testing.T) {
	p := DefaultParams()
	p.RemoteAccessMigrateThreshold = 100
	d, err := New(Config{
		GPU:    gpudev.Generic(8 * units.BlockSize),
		Link:   pcie.Preset(pcie.GenNVLink),
		Params: &p,
	})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := d.AllocManaged("a", units.BlockSize)
	d.CPUAccess(a.Blocks(), Write, 0)
	if _, err := d.PrefetchToGPU(a, 0, uint64(a.Size()), 0); err != nil {
		t.Fatal(err)
	}
	if a.Block(0).Residency != vaspace.GPUResident {
		t.Error("prefetch did not migrate in remote mode")
	}
}

func TestNegativeRemoteThresholdRejected(t *testing.T) {
	p := DefaultParams()
	p.RemoteAccessMigrateThreshold = -1
	if p.Validate() == nil {
		t.Error("negative threshold accepted")
	}
}

// §5.4: split mappings also cost translation time on every later access —
// the TLB-coverage argument for ignoring partial discards.
func TestSplitMappingTLBPenalty(t *testing.T) {
	d := driverWithParams(t, 4, func(p *Params) { p.AllowPartialDiscard = true })
	a, _ := d.AllocManaged("a", units.BlockSize)
	if _, err := d.GPUAccess(a.Blocks(), Write, 0); err != nil {
		t.Fatal(err)
	}
	// Baseline: resident-hit accesses are free.
	before, err := d.GPUAccess(a.Blocks(), Read, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if before != 1000 {
		t.Fatalf("whole-block hit cost %v", before-1000)
	}
	// Split the mapping with a partial discard.
	if _, err := d.Discard(a, 0, uint64(units.MiB), 0); err != nil {
		t.Fatal(err)
	}
	after, err := d.GPUAccess(a.Blocks(), Read, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if after <= 2000 {
		t.Error("split-block access should pay the TLB penalty")
	}
	if got := after - 2000; got != d.Params().SplitTLBPenalty {
		t.Errorf("penalty = %v, want %v", got, d.Params().SplitTLBPenalty)
	}
}

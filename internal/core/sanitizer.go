package core

import (
	"fmt"
	"strings"

	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/vaspace"
)

// This file is the driver's runtime sanitizer: an always-available
// invariant checker over the whole memory-management model, enabled by
// Params.CheckInvariants and run after every public driver operation. It
// enforces the paper's state machine mechanically:
//
//   - every physical chunk lives in exactly one queue, and the per-device
//     queue bookkeeping is self-consistent (§5.5);
//   - chunk↔block back-pointers agree in both directions;
//   - bytes are conserved: free + unused + used + discarded + reserved +
//     cudaMalloc'd device buffers == GPU capacity, on every device;
//   - host DRAM accounting matches the blocks that claim host pages;
//   - the discard protocol holds: an eagerly discarded resident block has
//     no GPU mappings left (a touch must fault, §5.1), a lazily discarded
//     resident block keeps its mappings and carries the deferred-unmap
//     marker (§5.2/§5.6), and NeedsUnmapOnReclaim never appears on a chunk
//     that is not lazily discarded.
//
// Violations panic with a diagnostic naming the offending alloc, block,
// and chunk — the class of bug PR 1 had to find by hand-written regression
// tests is now caught at the operation that introduces it.

// CheckNow runs the full invariant sweep immediately, regardless of
// Params.CheckInvariants, and returns the first violation found (nil if
// the state is consistent). Tests use it directly; the driver's internal
// hook wraps it in a panic.
func (d *Driver) CheckNow() error {
	for gpu, dev := range d.devs {
		if err := dev.CheckInvariants(); err != nil {
			return fmt.Errorf("sanitizer: GPU %d: %w", gpu, err)
		}
		if err := d.checkChunks(gpu, dev); err != nil {
			return err
		}
	}
	return d.checkBlocks()
}

// maxTouchedBacklog bounds the incremental sanitizer's touched-block list;
// past this, an operation has churned so much state that a full sweep is
// both safer and barely more expensive, so verify escalates to one.
const maxTouchedBacklog = 4096

// verify is the per-operation hook, subject to the sampling stride. When a
// check is due it is usually *incremental* — O(blocks touched since the
// last check) instead of O(device): every touched block is re-validated
// structurally and chunk conservation is checked from the queues' O(1)
// size counters. Every Params.FullAuditEvery'th check (and whenever the
// touched backlog overflows) escalates to the full CheckNow sweep, so
// drift the incremental pass cannot see — e.g. corruption of a block the
// driver never touched — is still caught, just later. FullAuditEvery <= 1
// keeps the old full-sweep-every-check behavior. Violations panic, labeled
// with the operation that exposed them.
func (d *Driver) verify(op string) {
	if !d.p.CheckInvariants {
		return
	}
	d.opCount++
	if stride := d.p.CheckInvariantsEvery; stride > 1 && d.opCount%uint64(stride) != 0 {
		return
	}
	var err error
	if d.p.FullAuditEvery <= 1 || d.checksSinceFull+1 >= d.p.FullAuditEvery || len(d.touched) > maxTouchedBacklog {
		err = d.CheckNow()
		d.checksSinceFull = 0
	} else {
		err = d.checkIncremental()
		d.checksSinceFull++
	}
	d.touched = d.touched[:0]
	if err != nil {
		panic(fmt.Sprintf("core: after %s: %v", op, err))
	}
}

// touch records a block whose structural state an operation changed, for
// the incremental sanitizer. A single branch when checks are off, so hot
// paths call it unconditionally. Duplicates are fine (checkBlock is
// idempotent); the list is cleared whenever a check actually runs.
func (d *Driver) touch(b *vaspace.Block) {
	if !d.p.CheckInvariants {
		return
	}
	d.touched = append(d.touched, b)
}

// checkIncremental validates only state the driver reports having changed
// since the last check, plus O(1)-per-device conservation:
//
//   - every queue's size counter sums to capacity minus detached chunks,
//     and detached chunks are exactly the cudaMalloc'd device buffers
//     (deviceChunkCount on GPU 0, zero on peers);
//   - deviceAllocBytes agrees with deviceChunkCount;
//   - every touched block passes the same per-block structural rules the
//     full sweep applies (checkBlock), including its chunk back-pointer.
//
// It deliberately skips the O(device) chunk walk and the O(live bytes)
// host-accounting reconciliation; the periodic full audit covers those.
func (d *Driver) checkIncremental() error {
	for gpu, dev := range d.devs {
		want := 0
		if gpu == 0 {
			want = d.deviceChunkCount
		}
		if got := dev.TotalChunks() - dev.QueuedChunks(); got != want {
			return fmt.Errorf("sanitizer: GPU %d conservation broken: %d detached chunks but %d device-buffer chunks tracked",
				gpu, got, want)
		}
	}
	if want := units.Size(d.deviceChunkCount) * units.BlockSize; d.deviceAllocBytes != want {
		return fmt.Errorf("sanitizer: deviceAllocBytes %s but %d device-buffer chunks (%s)",
			units.Format(d.deviceAllocBytes), d.deviceChunkCount, units.Format(want))
	}
	for _, b := range d.touched {
		if b.Alloc.Freed() {
			continue // freed since it was touched; the free reset its state
		}
		if err := d.checkBlock(b); err != nil {
			return err
		}
	}
	return nil
}

// checkChunks validates one device's chunks from the physical side:
// queue membership vs. owner back-pointers, the deferred-unmap marker,
// and byte conservation including non-UVM device buffers.
func (d *Driver) checkChunks(gpu int, dev *gpudev.Device) error {
	var detached []*gpudev.Chunk
	var err error
	dev.EachChunk(func(c *gpudev.Chunk) bool {
		switch c.Queue() {
		case gpudev.QueueUsed, gpudev.QueueDiscarded:
			b, ok := c.Owner.(*vaspace.Block)
			if !ok || b == nil {
				err = fmt.Errorf("sanitizer: GPU %d chunk %d on %v queue has no owning block",
					gpu, c.ID(), c.Queue())
				return false
			}
			if b.Chunk != c {
				err = fmt.Errorf("sanitizer: GPU %d chunk %d owner %s does not point back (block.Chunk=%v)",
					gpu, c.ID(), blockName(b), chunkID(b.Chunk))
				return false
			}
			if b.GPUIndex != gpu {
				err = fmt.Errorf("sanitizer: GPU %d chunk %d owned by %s which claims GPU %d",
					gpu, c.ID(), blockName(b), b.GPUIndex)
				return false
			}
		case gpudev.QueueFree, gpudev.QueueUnused, gpudev.QueueReserved, gpudev.QueuePoisoned:
			if c.Owner != nil {
				err = fmt.Errorf("sanitizer: GPU %d chunk %d on %v queue still has owner %s",
					gpu, c.ID(), c.Queue(), ownerName(c.Owner))
				return false
			}
		case gpudev.QueueNone:
			detached = append(detached, c)
		}
		if c.DeviceBuffer && c.Queue() != gpudev.QueueNone {
			err = fmt.Errorf("sanitizer: GPU %d chunk %d is marked as a device buffer but sits on the %v queue",
				gpu, c.ID(), c.Queue())
			return false
		}
		if c.NeedsUnmapOnReclaim {
			b, ok := c.Owner.(*vaspace.Block)
			if c.Queue() != gpudev.QueueDiscarded || !ok || !b.LazyDiscard {
				err = fmt.Errorf("sanitizer: GPU %d chunk %d (queue %v, owner %s) has NeedsUnmapOnReclaim set but is not a lazily discarded chunk",
					gpu, c.ID(), c.Queue(), ownerName(c.Owner))
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}

	// Detached chunks must be exactly the cudaMalloc'd device buffers
	// (which only exist on the primary GPU); anything else is a leaked
	// chunk that escaped every queue.
	for _, c := range detached {
		if gpu != 0 {
			return fmt.Errorf("sanitizer: GPU %d chunk %d is on no queue and is not a device buffer (peer GPUs have none)",
				gpu, c.ID())
		}
		if !c.DeviceBuffer {
			return fmt.Errorf("sanitizer: GPU 0 chunk %d is on no queue and not marked as a device buffer: leaked",
				c.ID())
		}
		if c.Owner != nil {
			return fmt.Errorf("sanitizer: device-buffer chunk %d has owner %s", c.ID(), ownerName(c.Owner))
		}
	}
	if gpu == 0 {
		if len(detached) != d.deviceChunkCount {
			return fmt.Errorf("sanitizer: GPU 0 has %d detached chunks but %d tracked device-buffer chunks",
				len(detached), d.deviceChunkCount)
		}
		if want := units.Size(d.deviceChunkCount) * units.BlockSize; d.deviceAllocBytes != want {
			return fmt.Errorf("sanitizer: deviceAllocBytes %s but %d device-buffer chunks (%s)",
				units.Format(d.deviceAllocBytes), d.deviceChunkCount, units.Format(want))
		}
	}

	// Byte conservation: every queue plus detached device buffers must
	// add up to the device's capacity.
	queued := dev.QueueLen(gpudev.QueueFree) + dev.QueueLen(gpudev.QueueUnused) +
		dev.QueueLen(gpudev.QueueUsed) + dev.QueueLen(gpudev.QueueDiscarded) +
		dev.QueueLen(gpudev.QueueReserved) + dev.QueueLen(gpudev.QueuePoisoned)
	if got, want := queued+len(detached), dev.TotalChunks(); got != want {
		return fmt.Errorf("sanitizer: GPU %d byte conservation broken: queues %d + detached %d chunks != capacity %d",
			gpu, queued, len(detached), want)
	}
	return nil
}

// checkBlocks validates every live allocation's blocks from the virtual
// side, and reconciles host DRAM accounting.
func (d *Driver) checkBlocks() error {
	var wantResident, wantPinned units.Size
	for _, a := range d.space.Live() {
		for i := 0; i < a.NumBlocks(); i++ {
			b := a.Block(i)
			if err := d.checkBlock(b); err != nil {
				return err
			}
			if b.CPUHasPages {
				wantResident += b.Bytes()
			}
			if b.CPUPinned {
				wantPinned += b.Bytes()
			}
		}
	}
	if got := d.host.Resident(); got != wantResident {
		return fmt.Errorf("sanitizer: host accounting: %s resident but live blocks claim %s",
			units.Format(got), units.Format(wantResident))
	}
	if got := d.host.Pinned(); got != wantPinned {
		return fmt.Errorf("sanitizer: host accounting: %s pinned but live blocks claim %s",
			units.Format(got), units.Format(wantPinned))
	}
	return nil
}

func (d *Driver) checkBlock(b *vaspace.Block) error {
	if b.CPUPinned && !b.CPUHasPages {
		return fmt.Errorf("sanitizer: %s is pinned without host pages", blockName(b))
	}
	if b.LazyDiscard && !b.Discarded {
		return fmt.Errorf("sanitizer: %s has LazyDiscard without Discarded", blockName(b))
	}
	if pages := int(b.Bytes() / units.PageSize); b.LivePages < 0 || b.LivePages > pages {
		return fmt.Errorf("sanitizer: %s has LivePages %d outside [0,%d]", blockName(b), b.LivePages, pages)
	}
	switch b.Residency {
	case vaspace.GPUResident:
		if b.Degraded {
			// Degradation is the *failure* to reach GPU residency; a block
			// that made it must have cleared the flag.
			return fmt.Errorf("sanitizer: %s is GPU-resident but still marked degraded", blockName(b))
		}
		c := b.Chunk
		if c == nil {
			return fmt.Errorf("sanitizer: %s is GPU-resident without a chunk", blockName(b))
		}
		if b.GPUIndex < 0 || b.GPUIndex >= len(d.devs) {
			return fmt.Errorf("sanitizer: %s claims GPU %d of %d", blockName(b), b.GPUIndex, len(d.devs))
		}
		if c.Owner != b {
			return fmt.Errorf("sanitizer: %s points at chunk %d whose owner is %s",
				blockName(b), c.ID(), ownerName(c.Owner))
		}
		switch q := c.Queue(); {
		case b.Discarded && q != gpudev.QueueDiscarded:
			return fmt.Errorf("sanitizer: %s is discarded but its chunk %d sits on the %v queue",
				blockName(b), c.ID(), q)
		case !b.Discarded && q != gpudev.QueueUsed:
			return fmt.Errorf("sanitizer: %s is live but its chunk %d sits on the %v queue",
				blockName(b), c.ID(), q)
		}
		if b.Discarded && !b.LazyDiscard {
			// §5.1: the eager discard destroyed the mappings; if any
			// remained, a GPU touch would proceed without a fault and
			// the driver would never observe the re-use.
			if b.GPUMapped {
				return fmt.Errorf("sanitizer: eagerly discarded %s is still GPU-mapped: a touch would not fault",
					blockName(b))
			}
			if c.NeedsUnmapOnReclaim {
				return fmt.Errorf("sanitizer: eagerly discarded %s carries NeedsUnmapOnReclaim on chunk %d",
					blockName(b), c.ID())
			}
		}
		if b.Discarded && b.LazyDiscard {
			// §5.2/§5.6: lazy discard keeps the mappings and defers the
			// unmap to reclamation.
			if !b.GPUMapped {
				return fmt.Errorf("sanitizer: lazily discarded %s lost its GPU mapping", blockName(b))
			}
			if !c.NeedsUnmapOnReclaim {
				return fmt.Errorf("sanitizer: lazily discarded %s chunk %d is missing NeedsUnmapOnReclaim",
					blockName(b), c.ID())
			}
		}
		if !b.Discarded && !b.GPUMapped {
			return fmt.Errorf("sanitizer: %s is GPU-resident and live but unmapped", blockName(b))
		}
	case vaspace.CPUResident:
		if b.Chunk != nil {
			return fmt.Errorf("sanitizer: %s is CPU-resident but holds GPU chunk %d",
				blockName(b), b.Chunk.ID())
		}
		if !b.CPUHasPages {
			return fmt.Errorf("sanitizer: %s is CPU-resident without host pages", blockName(b))
		}
		if b.GPUMapped {
			return fmt.Errorf("sanitizer: %s is CPU-resident but still GPU-mapped", blockName(b))
		}
	case vaspace.Untouched:
		if b.Chunk != nil || b.CPUHasPages || b.CPUPinned || b.GPUMapped || b.CPUMapped || b.Discarded || b.Degraded {
			return fmt.Errorf("sanitizer: untouched %s has physical state (chunk=%v pages=%v pinned=%v gpuMap=%v cpuMap=%v discarded=%v degraded=%v)",
				blockName(b), chunkID(b.Chunk), b.CPUHasPages, b.CPUPinned, b.GPUMapped, b.CPUMapped, b.Discarded, b.Degraded)
		}
	}
	return nil
}

// silentReuseDiag names the block involved in a §5.2 protocol violation:
// a GPU access to a lazily discarded, still-resident block. No fault
// occurs, the driver never learns the data is live again, and a later
// reclaim silently destroys it.
func silentReuseDiag(b *vaspace.Block) string {
	return fmt.Sprintf("lazy-discard protocol violation: GPU access to %s without the mandatory prefetch (UvmDiscardLazy §5.2); the write is silent and a later reclaim loses it",
		blockName(b))
}

func blockName(b *vaspace.Block) string {
	return fmt.Sprintf("block %d of alloc %q (id %d)", b.Index, b.Alloc.Name(), b.Alloc.ID())
}

func ownerName(o any) string {
	if o == nil {
		return "<nil>"
	}
	if b, ok := o.(*vaspace.Block); ok {
		return blockName(b)
	}
	return strings.TrimSpace(fmt.Sprintf("%T", o))
}

func chunkID(c *gpudev.Chunk) string {
	if c == nil {
		return "<nil>"
	}
	return fmt.Sprintf("chunk %d", c.ID())
}

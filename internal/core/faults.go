package core

import (
	"uvmdiscard/internal/faultinject"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/vaspace"
)

// This file is the driver's fault-recovery layer: every place the transfer
// and mapping paths can be hurt by an injected fault (internal/faultinject)
// routes through one of these helpers, and every helper guarantees the
// fault is *answered* — retried, replayed, degraded, or quarantined — never
// silently dropped. The accounting contract the chaos harness asserts:
//
//	injected DMA + peer failures == metrics.MigrateRetries()
//	injected unmap failures     == metrics.UnmapRetries()
//	injected overflows          <= metrics.FaultReplays()
//
// With no injector attached (d.fi == nil) every helper collapses to the
// exact pre-fault-injection behavior, byte for byte.

// Injector returns the attached fault injector, or nil when the driver runs
// fault-free.
func (d *Driver) Injector() *faultinject.Injector { return d.fi }

// scaleLink applies any active interconnect-degradation window to a
// transfer duration.
func (d *Driver) scaleLink(link faultinject.LinkID, dur, now sim.Time) sim.Time {
	if d.fi == nil {
		return dur
	}
	return d.fi.Scale(link, dur, now)
}

// scaleDMA is scaleLink for the CPU-GPU interconnect.
func (d *Driver) scaleDMA(dur, now sim.Time) sim.Time {
	return d.scaleLink(faultinject.LinkPCIe, dur, now)
}

// reserveTransfer reserves dur on eng at now, retrying injected transfer
// failures with bounded exponential backoff. A failed attempt still
// occupies the engine for the (possibly degraded) transfer time before the
// abort is observed. Returns the completion time of the last attempt and
// whether an attempt succeeded; ok == false means the retry budget is
// exhausted and the caller must degrade.
func (d *Driver) reserveTransfer(eng *sim.Engine, link faultinject.LinkID, dur, now sim.Time) (sim.Time, bool) {
	if d.fi == nil {
		_, end := eng.Reserve(now, dur)
		return end, true
	}
	draw := d.fi.DMAFails
	if link == faultinject.LinkPeer {
		draw = d.fi.PeerFails
	}
	cur := now
	for attempt := 0; ; attempt++ {
		// Draw the outcome before reserving so the decision sequence is a
		// pure function of driver issue order.
		fails := draw()
		_, end := eng.Reserve(cur, d.scaleLink(link, dur, cur))
		if !fails {
			return end, true
		}
		d.m.AddMigrateRetry()
		if attempt >= d.p.MaxMigrateRetries {
			return end, false
		}
		cur = end + d.p.MigrateRetryBackoff<<attempt
	}
}

// retryH2D handles a block whose first coalesced-migration attempt already
// drew a failure: the aborted attempt and each subsequent retry occupy the
// DMA engine for the block's own transfer time, with exponential backoff in
// between. Returns the time the next attempt may start and whether a retry
// succeeded — the successful transfer itself is charged by the caller
// (coalesced run or page-granular path). ok == false means the block must
// degrade to host-pinned access.
func (d *Driver) retryH2D(b *vaspace.Block, now sim.Time) (sim.Time, bool) {
	cur := now
	_, dur := d.migrationCost(b)
	for attempt := 0; ; attempt++ {
		d.m.AddMigrateRetry()
		_, end := d.dma.Reserve(cur, d.scaleDMA(dur, cur))
		if attempt >= d.p.MaxMigrateRetries {
			return end, false
		}
		cur = end + d.p.MigrateRetryBackoff<<attempt
		if !d.fi.DMAFails() {
			return cur, true
		}
	}
}

// degradeToHost serves a GPU access to a CPU-resident block over the
// interconnect after the migration retry budget is exhausted: the block
// stays host-resident and is marked Degraded, so subsequent faulting
// accesses skip the doomed migration and go remote until an explicit
// prefetch re-attempts (and clears) it. Reuses the coherent-access cost
// model (§2.3): the data is host-pinned and the GPU reads it through the
// link.
func (d *Driver) degradeToHost(b *vaspace.Block, now sim.Time) sim.Time {
	_, end := d.dma.Reserve(now, d.scaleDMA(d.link.RemoteAccessTime(uint64(b.Bytes())), now))
	d.m.AddTransfer(metrics.H2D, metrics.CauseRemote, uint64(b.Bytes()))
	d.m.AddDegraded(uint64(b.Bytes()))
	b.Degraded = true
	d.touch(b)
	return end
}

// reserveD2H reserves a device-to-host transfer, retrying injected
// failures; when the budget is exhausted the data still reaches the host —
// drained through the coherent host-pinned path at remote-access cost — so
// a D2H fault can never strand dirty data on the GPU.
func (d *Driver) reserveD2H(b *vaspace.Block, xfer, now sim.Time) sim.Time {
	end, ok := d.reserveTransfer(d.dma, faultinject.LinkPCIe, xfer, now)
	if ok {
		return end
	}
	_, end2 := d.dma.Reserve(end, d.scaleDMA(d.link.RemoteAccessTime(uint64(b.Bytes())), end))
	d.m.AddDegraded(uint64(b.Bytes()))
	return end2
}

// unmapBlock charges one unmap/TLB shootdown, reissuing it while the
// injector fails the acknowledgement. Reissues are bounded by
// MaxMigrateRetries, after which the shootdown is forced through (the real
// driver escalates to a full TLB flush); each reissue costs another
// UnmapPerBlock and is recorded as an unmap retry.
func (d *Driver) unmapBlock(dev *gpudev.Device, now sim.Time) sim.Time {
	cur := now + dev.Profile().UnmapPerBlock
	d.m.AddUnmap(1)
	if d.fi == nil {
		return cur
	}
	for i := 0; i < d.p.MaxMigrateRetries+1 && d.fi.UnmapFails(); i++ {
		cur += dev.Profile().UnmapPerBlock
		d.m.AddUnmapRetry()
	}
	return cur
}

// maybePoison draws one ECC-poison event for this driver operation; when it
// hits, one used-queue chunk (chosen by the injector across all devices) is
// quarantined.
func (d *Driver) maybePoison(now sim.Time) sim.Time {
	if d.fi == nil || !d.fi.PoisonEvent() {
		return now
	}
	total := 0
	for _, dev := range d.devs {
		total += dev.QueueLen(gpudev.QueueUsed)
	}
	if total == 0 {
		return now
	}
	idx := d.fi.PickVictim(total)
	for gpu, dev := range d.devs {
		n := dev.QueueLen(gpudev.QueueUsed)
		if idx >= n {
			idx -= n
			continue
		}
		var victim *gpudev.Chunk
		i := 0
		dev.EachUsed(func(c *gpudev.Chunk) bool {
			if i == idx {
				victim = c
				return false
			}
			i++
			return true
		})
		return d.poisonChunk(gpu, victim, now)
	}
	return now
}

// poisonChunk retires a used-queue chunk hit by an ECC uncorrectable error:
// the chunk moves to the device's poisoned queue permanently (shrinking
// usable capacity), its mapping is torn down, and the owning block either
// survives on a valid host copy or loses its data and returns to Untouched
// — the same "reads observe zeros" outcome as a reclaimed discard (§4.1),
// but *recorded* as loss, never silent.
func (d *Driver) poisonChunk(gpu int, c *gpudev.Chunk, now sim.Time) sim.Time {
	b := c.Owner.(*vaspace.Block)
	dev := d.devs[gpu]
	dev.Detach(c)
	cur := d.unmapBlock(dev, now)
	n := uint64(b.Bytes())
	if b.CPUHasPages && !b.CPUStale {
		// A valid host copy exists (a read-mostly duplicate, or pages that
		// were never dirtied on the GPU): the block survives CPU-resident.
		if b.CPUPinned {
			d.host.Unpin(b.Bytes())
			b.CPUPinned = false
		}
		b.Residency = vaspace.CPUResident
		b.CPUMapped = true
		d.m.AddPoison(n, 0)
	} else {
		// No valid copy anywhere else: the data is lost. The block returns
		// to Untouched and the loss is accounted, not hidden.
		if b.CPUHasPages {
			if b.CPUPinned {
				d.host.Unpin(b.Bytes())
			}
			d.host.Release(b.Bytes())
		}
		b.Alloc.ZeroBlockData(b.Index)
		b.Residency = vaspace.Untouched
		b.CPUHasPages, b.CPUPinned, b.CPUMapped = false, false, false
		d.m.AddPoison(0, n)
	}
	b.CPUStale = false
	b.GPUMapped = false
	b.Chunk = nil
	b.Discarded, b.LazyDiscard = false, false
	b.Degraded = false
	b.RemoteAccesses = 0
	b.LivePages = 0
	dev.PushPoisoned(c)
	d.touch(b)
	return cur
}

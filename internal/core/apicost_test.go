package core

import (
	"math"
	"testing"

	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
)

// Table 2 anchors must reproduce exactly: the curves are calibrated on them.
func TestTable2Anchors(t *testing.T) {
	c := DefaultAPICosts()
	cases := []struct {
		curve *CostCurve
		size  units.Size
		want  float64 // microseconds
	}{
		{c.Malloc, 2 * units.MiB, 48},
		{c.Malloc, 8 * units.MiB, 184},
		{c.Malloc, 32 * units.MiB, 726},
		{c.Malloc, 128 * units.MiB, 939},
		{c.Free, 2 * units.MiB, 32},
		{c.Free, 8 * units.MiB, 38},
		{c.Free, 32 * units.MiB, 63},
		{c.Free, 128 * units.MiB, 1184},
		{c.Discard, 2 * units.MiB, 4},
		{c.Discard, 8 * units.MiB, 7},
		{c.Discard, 32 * units.MiB, 20},
		{c.Discard, 128 * units.MiB, 70},
	}
	for _, cs := range cases {
		got := cs.curve.Eval(cs.size).Microseconds()
		if math.Abs(got-cs.want) > 0.01 {
			t.Errorf("%s(%s) = %.2fµs, want %.2fµs",
				cs.curve.Name(), units.Format(cs.size), got, cs.want)
		}
	}
}

// The paper's headline Table 2 observation: UvmDiscard is roughly an order
// of magnitude cheaper than allocation/free at every size, and lazy discard
// is cheaper still.
func TestDiscardCheaperThanMallocFree(t *testing.T) {
	c := DefaultAPICosts()
	for _, size := range []units.Size{2 * units.MiB, 8 * units.MiB, 32 * units.MiB, 128 * units.MiB} {
		disc := c.Discard.Eval(size)
		if m := c.Malloc.Eval(size); disc*5 > m {
			t.Errorf("at %s: discard %v not ≪ malloc %v", units.Format(size), disc, m)
		}
		if f := c.Free.Eval(size); disc > f {
			t.Errorf("at %s: discard %v > free %v", units.Format(size), disc, f)
		}
		if lz := c.DiscardLazy.Eval(size); lz >= disc {
			t.Errorf("at %s: lazy %v not cheaper than eager %v", units.Format(size), lz, disc)
		}
	}
}

func TestCostCurveInterpolation(t *testing.T) {
	c := NewCostCurve("x", map[units.Size]sim.Time{
		2 * units.MiB: sim.Micros(10),
		8 * units.MiB: sim.Micros(30),
	})
	// Log-midpoint of 2 MiB and 8 MiB is 4 MiB: cost is the midpoint.
	got := c.Eval(4 * units.MiB).Microseconds()
	if math.Abs(got-20) > 0.01 {
		t.Errorf("midpoint = %.2f, want 20", got)
	}
	// Monotone within the segment.
	if c.Eval(3*units.MiB) >= c.Eval(5*units.MiB) {
		t.Error("interpolation not monotone")
	}
}

func TestCostCurveClampAndExtrapolate(t *testing.T) {
	c := NewCostCurve("x", map[units.Size]sim.Time{
		2 * units.MiB: sim.Micros(10),
		8 * units.MiB: sim.Micros(30),
	})
	if c.Eval(0) != 0 {
		t.Error("zero size should cost nothing")
	}
	if c.Eval(units.KiB) != sim.Micros(10) {
		t.Error("below-first sizes should clamp to the first anchor")
	}
	// Above the last anchor: linear in bytes with the last segment slope
	// (20µs per 6 MiB).
	got := c.Eval(14 * units.MiB).Microseconds()
	if math.Abs(got-50) > 0.1 {
		t.Errorf("extrapolated = %.2f, want 50", got)
	}
}

func TestCostCurveValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewCostCurve("x", map[units.Size]sim.Time{units.MiB: 1}) },
		func() { NewCostCurve("x", map[units.Size]sim.Time{0: 1, units.MiB: 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDefaultAPICostConstants(t *testing.T) {
	c := DefaultAPICosts()
	if c.PrefetchIssue <= 0 || c.KernelLaunch <= 0 {
		t.Error("issue costs must be positive")
	}
	if c.MallocManaged.Eval(units.GiB) >= c.Malloc.Eval(128*units.MiB) {
		t.Error("managed allocation (VA-only) should be far cheaper than cudaMalloc")
	}
}

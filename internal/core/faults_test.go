package core

import (
	"strings"
	"testing"

	"uvmdiscard/internal/faultinject"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/hostmem"
	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/vaspace"
)

// newFaultDriver builds a small single-GPU driver with the given fault
// schedule attached.
func newFaultDriver(t *testing.T, fcfg *faultinject.Config, tweak func(*Params)) *Driver {
	t.Helper()
	params := DefaultParams()
	if tweak != nil {
		tweak(&params)
	}
	d, err := New(Config{
		GPU:    gpudev.Generic(8 * units.BlockSize),
		Host:   hostmem.New(units.GiB),
		Params: &params,
		Faults: fcfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestMigrateRetrySucceeds exercises the bounded-retry path: with a
// certain-failure schedule the H2D migration degrades; every injected
// failure must be matched by a recorded retry, and the block must end up
// Degraded and host-resident rather than silently dropped.
func TestMigrateRetryDegradesAfterBudget(t *testing.T) {
	d := newFaultDriver(t, &faultinject.Config{Seed: 7, DMAFailProb: 1}, func(p *Params) {
		p.MaxMigrateRetries = 3
	})
	a, err := d.AllocManaged("x", units.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	now := d.CPUAccess(a.Blocks(), Write, 0)
	done, err := d.GPUAccess(a.Blocks(), Read, now)
	if err != nil {
		t.Fatal(err)
	}
	if done <= now {
		t.Fatalf("degraded access took no time (%v -> %v)", now, done)
	}
	b := a.Block(0)
	if !b.Degraded || b.Residency != vaspace.CPUResident {
		t.Fatalf("after exhausted retries: Degraded=%v residency=%v, want degraded CPU-resident",
			b.Degraded, b.Residency)
	}
	// 1 initial failure + 3 retries, all failed.
	st := d.Injector().Stats()
	if st.DMAFailures != 4 || d.Metrics().MigrateRetries() != 4 {
		t.Fatalf("injected %d failures, recorded %d retries, want 4 and 4",
			st.DMAFailures, d.Metrics().MigrateRetries())
	}
	if blocks, bytes := d.Metrics().Degraded(); blocks != 1 || bytes != uint64(units.BlockSize) {
		t.Fatalf("degraded accounting = (%d, %d), want (1, %d)", blocks, bytes, units.BlockSize)
	}
	// A faulting re-access goes remote without re-attempting the migration.
	preRetries := d.Metrics().MigrateRetries()
	if _, err := d.GPUAccess(a.Blocks(), Read, done); err != nil {
		t.Fatal(err)
	}
	if got := d.Metrics().MigrateRetries(); got != preRetries {
		t.Fatalf("faulting access to a degraded block re-attempted migration (%d -> %d retries)",
			preRetries, got)
	}
	if err := d.CheckNow(); err != nil {
		t.Fatal(err)
	}
}

// TestPrefetchClearsDegraded: an explicit prefetch re-attempts the real
// migration; with the schedule now quiet it succeeds and clears Degraded.
func TestPrefetchClearsDegraded(t *testing.T) {
	d := newFaultDriver(t, &faultinject.Config{Seed: 7, DMAFailProb: 1}, func(p *Params) {
		p.MaxMigrateRetries = 0
	})
	a, err := d.AllocManaged("x", units.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	now := d.CPUAccess(a.Blocks(), Write, 0)
	now, err = d.GPUAccess(a.Blocks(), Read, now)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Block(0).Degraded {
		t.Fatal("block did not degrade under certain failure")
	}
	// Silence the injector so the prefetch's attempt succeeds.
	d.fi = nil
	done, err := d.PrefetchToGPU(a, 0, uint64(a.Size()), now)
	if err != nil {
		t.Fatal(err)
	}
	b := a.Block(0)
	if b.Degraded || b.Residency != vaspace.GPUResident {
		t.Fatalf("after successful prefetch: Degraded=%v residency=%v, want live GPU-resident",
			b.Degraded, b.Residency)
	}
	_ = done
	if err := d.CheckNow(); err != nil {
		t.Fatal(err)
	}
}

// TestUnmapRetryAccounting: every injected unmap failure is answered by a
// reissued shootdown, 1:1 in the metrics.
func TestUnmapRetryAccounting(t *testing.T) {
	d := newFaultDriver(t, &faultinject.Config{Seed: 11, UnmapFailProb: 0.5}, nil)
	a, err := d.AllocManaged("x", 4*units.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	now, err := d.GPUAccess(a.Blocks(), Write, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if now, err = d.Discard(a, 0, uint64(a.Size()), now); err != nil {
			t.Fatal(err)
		}
		if now, err = d.PrefetchToGPU(a, 0, uint64(a.Size()), now); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Injector().Stats()
	if st.UnmapFailures == 0 {
		t.Fatal("schedule injected no unmap failures; test is vacuous")
	}
	if got := d.Metrics().UnmapRetries(); got != st.UnmapFailures {
		t.Fatalf("injected %d unmap failures but recorded %d reissues", st.UnmapFailures, got)
	}
}

// TestFaultBufferOverflowReplays: a fault batch larger than the buffer
// capacity forces replay rounds.
func TestFaultBufferOverflowReplays(t *testing.T) {
	d := newFaultDriver(t, &faultinject.Config{Seed: 1, FaultBufferBlocks: 2}, nil)
	a, err := d.AllocManaged("x", 6*units.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.GPUAccess(a.Blocks(), Write, 0); err != nil {
		t.Fatal(err)
	}
	// 6 faulted blocks over a 2-block buffer: (6-1)/2 = 2 replay rounds.
	if got := d.Metrics().FaultReplays(); got != 2 {
		t.Fatalf("FaultReplays = %d, want 2", got)
	}
	if st := d.Injector().Stats(); st.Overflows != 1 {
		t.Fatalf("Overflows = %d, want 1", st.Overflows)
	}
}

// TestPoisonQuarantine: with a valid host copy the block survives the ECC
// hit; the chunk is retired and capacity shrinks.
func TestPoisonQuarantine(t *testing.T) {
	d := newFaultDriver(t, nil, nil)
	a, err := d.AllocManaged("x", units.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	now := d.CPUAccess(a.Blocks(), Write, 0)
	now, err = d.GPUAccess(a.Blocks(), Read, now)
	if err != nil {
		t.Fatal(err)
	}
	// Attach a certain-poison injector only now, so the setup accesses
	// above run clean.
	fi, err := faultinject.New(faultinject.Config{Seed: 3, PoisonProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	d.fi = fi
	d.CPUAccess(a.Blocks(), Read, now)
	b := a.Block(0)
	// The block was GPU-resident with a clean pinned host copy (read-only
	// access after migration), so the data survives on the host... unless
	// the GPU copy was dirtied. GPUAccess above was a Read, so the host
	// copy is stale only if the migration marked it so.
	if d.Device().QueueLen(gpudev.QueuePoisoned) != 1 {
		t.Fatalf("poisoned queue has %d chunks, want 1", d.Device().QueueLen(gpudev.QueuePoisoned))
	}
	if d.Device().UsableChunks() != 7 {
		t.Fatalf("UsableChunks = %d after poison, want 7", d.Device().UsableChunks())
	}
	if b.Chunk != nil || b.Residency == vaspace.GPUResident {
		t.Fatalf("poisoned block still GPU-resident: %+v", b)
	}
	chunks, recovered, lost := d.Metrics().Poisoned()
	if chunks != 1 || recovered+lost != uint64(units.BlockSize) {
		t.Fatalf("poison accounting = (%d, %d, %d)", chunks, recovered, lost)
	}
	if err := d.CheckNow(); err != nil {
		t.Fatal(err)
	}
}

// TestPoisonDataLost: a dirty GPU-only block hit by poison loses its data:
// the block returns to Untouched, the loss is accounted, and reads observe
// zeros.
func TestPoisonDataLost(t *testing.T) {
	d := newFaultDriver(t, nil, nil)
	a, err := d.AllocManaged("x", units.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	data := a.Data()
	for i := range data {
		data[i] = 0xAB
	}
	now, err := d.GPUAccess(a.Blocks(), Write, 0)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := faultinject.New(faultinject.Config{Seed: 3, PoisonProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	d.fi = fi
	d.CPUAccess(a.Blocks(), Read, now)
	b := a.Block(0)
	// First touch on the GPU: no host copy ever existed, so the poison
	// loses the data. maybePoison runs before the CPU access services the
	// block, so the access itself then repopulates zeros.
	if _, _, lost := d.Metrics().Poisoned(); lost != uint64(units.BlockSize) {
		t.Fatalf("lost bytes = %d, want %d", lost, units.BlockSize)
	}
	for i, v := range data {
		if v != 0 {
			t.Fatalf("byte %d = %#x after poison loss, want 0", i, v)
		}
	}
	_ = b
	if err := d.CheckNow(); err != nil {
		t.Fatal(err)
	}
}

// TestExplicitCopyCountsBytesOnce is the partial-failure double-counting
// audit for ExplicitCopy: under a certain-failure schedule the copy runs
// through the full retry + degradation path, and the transferred bytes must
// be recorded exactly once.
func TestExplicitCopyCountsBytesOnce(t *testing.T) {
	d := newFaultDriver(t, &faultinject.Config{Seed: 5, DMAFailProb: 1}, func(p *Params) {
		p.MaxMigrateRetries = 2
	})
	n := 3 * units.BlockSize
	end := d.ExplicitCopy(metrics.H2D, n, 0)
	if end == 0 {
		t.Fatal("copy took no time")
	}
	if got := d.Metrics().Bytes(metrics.H2D, metrics.CauseMemcpy); got != uint64(n) {
		t.Fatalf("memcpy bytes = %d, want %d (counted once despite %d failed attempts)",
			got, n, d.Injector().Stats().DMAFailures)
	}
	if ops := d.Metrics().Ops(metrics.H2D, metrics.CauseMemcpy); ops != 1 {
		t.Fatalf("memcpy ops = %d, want 1", ops)
	}
	if st := d.Injector().Stats(); st.DMAFailures != 3 {
		t.Fatalf("DMAFailures = %d, want 3 (1 + 2 retries)", st.DMAFailures)
	}
}

// TestMallocDeviceFailureLeavesStateClean is the MallocDevice partial-
// failure audit: a rejected allocation must not leak chunks or disturb the
// device-buffer byte accounting, and the sanitizer must agree.
func TestMallocDeviceFailureLeavesStateClean(t *testing.T) {
	d := newFaultDriver(t, nil, nil)
	ok, err := d.MallocDevice(4 * units.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.MallocDevice(16 * units.BlockSize); err == nil {
		t.Fatal("oversized MallocDevice unexpectedly succeeded")
	}
	if got := d.DeviceAllocBytes(); got != 4*units.BlockSize {
		t.Fatalf("DeviceAllocBytes = %v after failed alloc, want %v", got, 4*units.BlockSize)
	}
	if err := d.CheckNow(); err != nil {
		t.Fatal(err)
	}
	d.FreeDevice(ok)
	// Double free: ignored, not double-counted.
	d.FreeDevice(ok)
	if got := d.DeviceAllocBytes(); got != 0 {
		t.Fatalf("DeviceAllocBytes = %v after double free, want 0", got)
	}
	if err := d.CheckNow(); err != nil {
		t.Fatal(err)
	}
}

// TestSanitizerCatchesDeviceByteDoubleCount seeds exactly the bug the audit
// guards against — device-buffer bytes counted twice — and demonstrates the
// sanitizer's conservation sweep catches it.
func TestSanitizerCatchesDeviceByteDoubleCount(t *testing.T) {
	d := newFaultDriver(t, nil, nil)
	chunks, err := d.MallocDevice(units.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	d.deviceAllocBytes += units.BlockSize // the double-count
	err = d.CheckNow()
	if err == nil || !strings.Contains(err.Error(), "deviceAllocBytes") {
		t.Fatalf("sanitizer missed the double-count: %v", err)
	}
	d.deviceAllocBytes -= units.BlockSize
	d.FreeDevice(chunks)
	if err := d.CheckNow(); err != nil {
		t.Fatal(err)
	}
}

// TestRetryDeterminism: the same seed and schedule produce the identical
// fault sequence, metrics, and completion times across two fresh runs.
func TestRetryDeterminism(t *testing.T) {
	run := func() (faultinject.Stats, int64, sim.Time) {
		d := newFaultDriver(t, &faultinject.Config{
			Seed:          42,
			DMAFailProb:   0.2,
			UnmapFailProb: 0.1,
			PoisonProb:    0.01,
		}, nil)
		a, err := d.AllocManaged("x", 6*units.BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		var now sim.Time
		for i := 0; i < 30; i++ {
			now = d.CPUAccess(a.Blocks(), Write, now)
			if now, err = d.GPUAccess(a.Blocks(), ReadWrite, now); err != nil {
				t.Fatal(err)
			}
			if now, err = d.Discard(a, 0, uint64(a.Size()), now); err != nil {
				t.Fatal(err)
			}
		}
		return d.Injector().Stats(), d.Metrics().MigrateRetries(), now
	}
	s1, r1, t1 := run()
	s2, r2, t2 := run()
	if s1 != s2 || r1 != r2 || t1 != t2 {
		t.Fatalf("non-deterministic fault runs:\n  %+v retries=%d end=%v\n  %+v retries=%d end=%v",
			s1, r1, t1, s2, r2, t2)
	}
	if s1.DMAFailures == 0 {
		t.Fatal("schedule injected nothing; determinism test is vacuous")
	}
}

// TestDegradationWindowSlowsTransfers: a pcie window with factor 4 must
// make the same migration strictly slower inside the window than outside.
func TestDegradationWindowSlowsTransfers(t *testing.T) {
	elapsed := func(fcfg *faultinject.Config) sim.Time {
		d := newFaultDriver(t, fcfg, nil)
		a, err := d.AllocManaged("x", 2*units.BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		start := d.CPUAccess(a.Blocks(), Write, 0)
		done, err := d.GPUAccess(a.Blocks(), Read, start)
		if err != nil {
			t.Fatal(err)
		}
		return done - start
	}
	slow := elapsed(&faultinject.Config{Windows: []faultinject.Window{
		{Link: faultinject.LinkPCIe, Start: 0, Dur: sim.Second, Factor: 4},
	}})
	// A window in the far future must not affect the run: identical to
	// running fault-free.
	fast := elapsed(&faultinject.Config{Windows: []faultinject.Window{
		{Link: faultinject.LinkPCIe, Start: 100 * sim.Second, Dur: sim.Second, Factor: 4},
	}})
	if slow <= fast {
		t.Fatalf("degradation window did not slow the migration: %v <= %v", slow, fast)
	}
}

package core

import (
	"fmt"

	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/vaspace"
)

// Advice is a cudaMemAdvise-style placement hint. The paper's related work
// frames the discard directive against the madvise family (§8); real UVM
// exposes these hints alongside prefetch, and they compose with discard:
// advice shapes where *live* data sits, discard says when data is *dead*.
type Advice int

const (
	// AdviseSetPreferredCPU pins the range's home to host DRAM: GPU
	// accesses map it remotely (zero-copy over the interconnect) instead
	// of migrating it.
	AdviseSetPreferredCPU Advice = iota
	// AdviseSetPreferredGPU pins the range's home to GPU memory: the
	// eviction process passes over it while other victims exist.
	AdviseSetPreferredGPU
	// AdviseUnsetPreferred clears the preferred location.
	AdviseUnsetPreferred
	// AdviseSetReadMostly allows read-only duplication on both
	// processors: reads become local everywhere; a write from either side
	// collapses the duplicate.
	AdviseSetReadMostly
	// AdviseUnsetReadMostly clears the read-mostly hint (any existing
	// duplicate collapses toward the current authoritative copy).
	AdviseUnsetReadMostly
)

// String names the advice like the CUDA constants.
func (a Advice) String() string {
	switch a {
	case AdviseSetPreferredCPU:
		return "SetPreferredLocation(CPU)"
	case AdviseSetPreferredGPU:
		return "SetPreferredLocation(GPU)"
	case AdviseUnsetPreferred:
		return "UnsetPreferredLocation"
	case AdviseSetReadMostly:
		return "SetReadMostly"
	case AdviseUnsetReadMostly:
		return "UnsetReadMostly"
	default:
		return fmt.Sprintf("Advice(%d)", int(a))
	}
}

// MemAdvise applies a placement hint to [off, off+length). Advice is
// metadata: it costs little itself and changes how later faults,
// prefetches, and evictions treat the covered blocks.
func (d *Driver) MemAdvise(a *vaspace.Alloc, off, length uint64, adv Advice, now sim.Time) (sim.Time, error) {
	blocks, err := a.AppendBlockRange(d.rangeScratch[:0], off, length, false)
	d.rangeScratch = blocks[:0]
	if err != nil {
		return now, err
	}
	cur := now
	for _, b := range blocks {
		switch adv {
		case AdviseSetPreferredCPU:
			b.Preferred = vaspace.PreferCPU
		case AdviseSetPreferredGPU:
			b.Preferred = vaspace.PreferGPU
		case AdviseUnsetPreferred:
			b.Preferred = vaspace.PreferNone
		case AdviseSetReadMostly:
			b.ReadMostly = true
		case AdviseUnsetReadMostly:
			if isDuplicated(b) {
				cur = d.collapseDupToGPU(b, cur)
			}
			b.ReadMostly = false
		default:
			return cur, fmt.Errorf("core: unknown advice %v", adv)
		}
	}
	d.verify("MemAdvise")
	return cur, nil
}

// isDuplicated reports whether a read-mostly block currently has valid
// copies on both processors.
func isDuplicated(b *vaspace.Block) bool {
	return b.ReadMostly && b.Residency == vaspace.GPUResident &&
		b.CPUHasPages && !b.CPUStale
}

// collapseDupToGPU drops the host copy of a duplicated block, leaving the
// GPU copy authoritative (used when the GPU writes, or the hint is
// removed while the block is GPU-resident).
func (d *Driver) collapseDupToGPU(b *vaspace.Block, now sim.Time) sim.Time {
	cur := now + d.p.CPUMinorFault // host-side unmap of the duplicate
	if b.CPUPinned {
		d.host.Unpin(b.Bytes())
		b.CPUPinned = false
	}
	d.host.Release(b.Bytes())
	b.CPUHasPages = false
	b.CPUMapped = false
	b.CPUStale = false
	d.touch(b)
	return cur
}

// collapseDupToCPU drops the GPU copy of a duplicated block, leaving the
// host copy authoritative (used when the CPU writes).
func (d *Driver) collapseDupToCPU(b *vaspace.Block, now sim.Time) sim.Time {
	cur := now
	if b.Chunk != nil {
		dev := d.devs[b.GPUIndex]
		dev.Detach(b.Chunk)
		dev.PushFree(b.Chunk)
		b.Chunk = nil
		cur += dev.Profile().UnmapPerBlock
		d.m.AddUnmap(1)
	}
	b.GPUMapped = false
	b.Residency = vaspace.CPUResident
	b.CPUMapped = true
	d.touch(b)
	return cur
}

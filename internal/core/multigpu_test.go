package core

import (
	"strings"
	"testing"

	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/trace"
	"uvmdiscard/internal/units"
)

// peerDriver builds a two-GPU topology: a primary and one peer over the
// default NVLink-class fabric (§2.3).
func peerDriver(t *testing.T, blocks, peerBlocks int) *Driver {
	t.Helper()
	d, err := New(Config{
		GPU:      gpudev.Generic(units.Size(blocks) * units.BlockSize),
		PeerGPUs: []gpudev.Profile{gpudev.Generic(units.Size(peerBlocks) * units.BlockSize)},
		Link:     pcie.Preset(pcie.Gen4),
		Trace:    trace.NewRecorder(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// Discarding a block resident on a peer GPU must move its chunk to THAT
// device's discarded queue, and recovery must happen there too.
func TestDiscardOnPeerGPU(t *testing.T) {
	d := peerDriver(t, 8, 8)
	a := mustAlloc(t, d, "a", units.BlockSize)
	if _, err := d.GPUAccessOn(1, a.Blocks(), Write, 0); err != nil {
		t.Fatal(err)
	}
	b := a.Block(0)
	if b.GPUIndex != 1 {
		t.Fatalf("setup: block on GPU %d, want 1", b.GPUIndex)
	}

	if _, err := d.Discard(a, 0, uint64(units.BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	peer := d.DeviceAt(1)
	if got := peer.QueueLen(gpudev.QueueDiscarded); got != 1 {
		t.Fatalf("peer discarded queue has %d chunks, want 1", got)
	}
	if got := d.Device().QueueLen(gpudev.QueueDiscarded); got != 0 {
		t.Fatalf("primary discarded queue has %d chunks, want 0", got)
	}
	if b.GPUMapped {
		t.Error("eager discard left the peer mapping intact")
	}

	// Re-access on the same peer recovers the chunk in place (§5.7):
	// back on the used queue, no cross-GPU traffic.
	if _, err := d.GPUAccessOn(1, a.Blocks(), Write, 0); err != nil {
		t.Fatal(err)
	}
	if got := peer.QueueLen(gpudev.QueueUsed); got != 1 {
		t.Fatalf("after recovery: peer used queue has %d chunks, want 1", got)
	}
	if bytes, _ := d.Metrics().Peer(); bytes != 0 {
		t.Errorf("in-place recovery moved %d peer bytes", bytes)
	}
	if err := d.CheckNow(); err != nil {
		t.Fatal(err)
	}
}

// A block discarded on a peer and then touched on another GPU takes the
// actPeerDead path: the remote chunk is reclaimed with no peer transfer
// (the §5.1 saving, credited to PeerSaved) and fresh zeroed memory is
// populated locally.
func TestPeerDeadSkipsTransfer(t *testing.T) {
	d := peerDriver(t, 8, 8)
	a := mustAlloc(t, d, "a", units.BlockSize)
	if _, err := d.GPUAccessOn(1, a.Blocks(), Write, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Discard(a, 0, uint64(units.BlockSize), 0); err != nil {
		t.Fatal(err)
	}

	if _, err := d.GPUAccessOn(0, a.Blocks(), Write, 0); err != nil {
		t.Fatal(err)
	}
	b := a.Block(0)
	if b.GPUIndex != 0 || b.Discarded {
		t.Fatalf("after touch on GPU 0: GPUIndex=%d Discarded=%v", b.GPUIndex, b.Discarded)
	}
	if got := d.Metrics().PeerSaved(); got != uint64(units.BlockSize) {
		t.Errorf("peer bytes saved by discard = %d, want %d", got, units.BlockSize)
	}
	if bytes, _ := d.Metrics().Peer(); bytes != 0 {
		t.Errorf("dead peer block still crossed the fabric: %d bytes", bytes)
	}
	peer := d.DeviceAt(1)
	if got := peer.QueueLen(gpudev.QueueFree); got != 8 {
		t.Errorf("peer free queue has %d chunks, want all 8 back", got)
	}
	if err := d.CheckNow(); err != nil {
		t.Fatal(err)
	}
}

// The undiscarded control: a live block migrates over the peer fabric and
// pays for the transfer — the baseline the PeerSaved metric is measured
// against.
func TestPeerMigrationPaysTransfer(t *testing.T) {
	d := peerDriver(t, 8, 8)
	a := mustAlloc(t, d, "a", units.BlockSize)
	if _, err := d.GPUAccessOn(1, a.Blocks(), Write, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.GPUAccessOn(0, a.Blocks(), Read, 0); err != nil {
		t.Fatal(err)
	}
	if bytes, ops := d.Metrics().Peer(); bytes != uint64(units.BlockSize) || ops != 1 {
		t.Errorf("peer traffic = %d bytes / %d ops, want %d / 1", bytes, ops, units.BlockSize)
	}
	if got := d.Metrics().PeerSaved(); got != 0 {
		t.Errorf("live migration credited %d saved peer bytes", got)
	}
	if err := d.CheckNow(); err != nil {
		t.Fatal(err)
	}
}

// A lazy discard on a peer defers its unmap there; reclaiming the chunk
// from another GPU's touch must pay that unmap on the peer's books.
func TestLazyDiscardOnPeerDefersUnmap(t *testing.T) {
	d := peerDriver(t, 8, 8)
	a := mustAlloc(t, d, "a", units.BlockSize)
	if _, err := d.GPUAccessOn(1, a.Blocks(), Write, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.DiscardLazy(a, 0, uint64(units.BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	b := a.Block(0)
	if !b.GPUMapped || !b.Chunk.NeedsUnmapOnReclaim {
		t.Fatalf("setup: lazy discard state wrong: mapped=%v marker=%v",
			b.GPUMapped, b.Chunk.NeedsUnmapOnReclaim)
	}
	unmapsBefore := d.Metrics().Unmaps()

	// Touch on GPU 0: the peer chunk is reclaimed (actPeerDead) and the
	// deferred unmap comes due now (§5.6).
	if _, err := d.GPUAccessOn(0, a.Blocks(), Write, 0); err != nil {
		t.Fatal(err)
	}
	if got := d.Metrics().Unmaps(); got != unmapsBefore+1 {
		t.Errorf("deferred unmap not paid at peer reclaim: %d unmaps, want %d",
			got, unmapsBefore+1)
	}
	if err := d.CheckNow(); err != nil {
		t.Fatal(err)
	}
}

// Byte conservation must hold per device: the sanitizer sweeps every GPU,
// and a chunk leaked from a PEER device is caught and attributed to it.
func TestSanitizerByteConservationAcrossDevices(t *testing.T) {
	d := peerDriver(t, 8, 4)
	a := mustAlloc(t, d, "a", 2*units.BlockSize)
	p := mustAlloc(t, d, "p", 2*units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)
	if _, err := d.GPUAccessOn(1, p.Blocks(), Write, 0); err != nil {
		t.Fatal(err)
	}
	// A cudaMalloc buffer on the primary exercises the detached-chunk
	// side of the conservation check.
	bufs, err := d.MallocDevice(units.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.CheckNow(); err != nil {
		t.Fatalf("consistent two-GPU state flagged: %v", err)
	}

	// Leak a chunk from the peer: peers have no device buffers, so any
	// detached chunk there is corruption.
	d.DeviceAt(1).Detach(p.Block(0).Chunk)
	mustViolate(t, d, "GPU 1", "no queue")

	// Repair and re-verify, then free the device buffer.
	d.DeviceAt(1).PushUsed(p.Block(0).Chunk)
	if err := d.CheckNow(); err != nil {
		t.Fatal(err)
	}
	d.FreeDevice(bufs)
	if err := d.CheckNow(); err != nil {
		t.Fatal(err)
	}
}

// Device-buffer accounting drift on the primary is also conservation
// corruption: deviceAllocBytes must match the tracked chunks.
func TestSanitizerDetectsDeviceAllocDrift(t *testing.T) {
	d := peerDriver(t, 8, 4)
	if _, err := d.MallocDevice(units.BlockSize); err != nil {
		t.Fatal(err)
	}
	d.deviceAllocBytes += units.BlockSize
	err := d.CheckNow()
	if err == nil {
		t.Fatal("deviceAllocBytes drift not caught")
	}
	if !strings.Contains(err.Error(), "deviceAllocBytes") {
		t.Errorf("diagnostic %q does not mention deviceAllocBytes", err)
	}
}

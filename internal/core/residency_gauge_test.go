package core

import (
	"testing"

	"uvmdiscard/internal/units"
)

// PublishResidency mirrors the device's queue occupancy into the
// collector's per-device gauges — the layer the uvmsimd /metrics exporter
// renders with device="gpuN" labels.
func TestPublishResidencyMirrorsQueues(t *testing.T) {
	d := testDriver(t, 8)
	a := mustAlloc(t, d, "buf", 3*units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)

	d.PublishResidency()
	res := d.Metrics().DeviceResidency()
	if len(res) != 1 {
		t.Fatalf("residency for %d devices, want 1", len(res))
	}
	r := res[0]
	bs := uint64(units.BlockSize)
	if r.CapacityBytes != 8*bs {
		t.Errorf("capacity = %d, want %d", r.CapacityBytes, 8*bs)
	}
	if r.UsedBytes != 3*bs {
		t.Errorf("used = %d, want %d", r.UsedBytes, 3*bs)
	}
	if r.FreeBytes != 5*bs {
		t.Errorf("free = %d, want %d", r.FreeBytes, 5*bs)
	}

	// Discarding moves the chunks: the gauges must follow.
	if _, err := d.Discard(a, 0, uint64(a.Size()), 0); err != nil {
		t.Fatal(err)
	}
	d.PublishResidency()
	r = d.Metrics().DeviceResidency()[0]
	if r.UsedBytes != 0 || r.DiscardedBytes != 3*bs {
		t.Errorf("after discard: used=%d discarded=%d, want 0/%d",
			r.UsedBytes, r.DiscardedBytes, 3*bs)
	}
	var total uint64
	for _, q := range []uint64{r.FreeBytes, r.UnusedBytes, r.UsedBytes,
		r.DiscardedBytes, r.ReservedBytes, r.PoisonedBytes} {
		total += q
	}
	if total != r.CapacityBytes {
		t.Errorf("queue bytes %d do not cover capacity %d", total, r.CapacityBytes)
	}
	// Sanity: the same numbers are visible through a detached snapshot.
	if snap := d.Metrics().Snapshot().DeviceResidency(); snap[0] != r {
		t.Errorf("snapshot residency %+v != live %+v", snap[0], r)
	}
}

package core

import (
	"testing"

	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/trace"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/vaspace"
)

// testDriver builds a driver with a small generic GPU of the given capacity
// in blocks, tracing enabled.
func testDriver(t *testing.T, blocks int) *Driver {
	t.Helper()
	d, err := New(Config{
		GPU:   gpudev.Generic(units.Size(blocks) * units.BlockSize),
		Link:  pcie.Preset(pcie.Gen4),
		Trace: trace.NewRecorder(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func mustAlloc(t *testing.T, d *Driver, name string, size units.Size) *vaspace.Alloc {
	t.Helper()
	a, err := d.AllocManaged(name, size)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func gpuAccess(t *testing.T, d *Driver, blocks []*vaspace.Block, mode AccessMode) {
	t.Helper()
	if _, err := d.GPUAccess(blocks, mode, 0); err != nil {
		t.Fatal(err)
	}
}

// --- Figure 1: typical UVM buffer lifetime ---

func TestFigure1Lifecycle(t *testing.T) {
	d := testDriver(t, 8)
	a := mustAlloc(t, d, "buf", 2*units.BlockSize)

	// Step 1: host writes initial data — zero-filled CPU pages.
	d.CPUAccess(a.Blocks(), Write, 0)
	for _, b := range a.Blocks() {
		if b.Residency != vaspace.CPUResident || !b.CPUHasPages || b.CPUPinned {
			t.Fatalf("after host write: %+v", b)
		}
	}
	if d.Host().Resident() != 2*units.BlockSize {
		t.Errorf("host resident = %s", units.Format(d.Host().Resident()))
	}

	// Step 2: prefetch to GPU — migration; CPU pages stay pinned.
	if _, err := d.PrefetchToGPU(a, 0, uint64(a.Size()), 0); err != nil {
		t.Fatal(err)
	}
	for _, b := range a.Blocks() {
		if b.Residency != vaspace.GPUResident || !b.GPUMapped {
			t.Fatalf("after prefetch: %+v", b)
		}
		if !b.CPUPinned {
			t.Error("CPU pages must remain pinned while GPU-mapped (§2.2)")
		}
	}
	if got := d.Metrics().Bytes(metrics.H2D, metrics.CausePrefetch); got != uint64(2*units.BlockSize) {
		t.Errorf("prefetch H2D bytes = %d", got)
	}

	// GPU access is now a local hit: no new faults or transfers.
	gpuAccess(t, d, a.Blocks(), Read)
	if batches, _ := d.Metrics().FaultBatches(); batches != 0 {
		t.Errorf("resident access faulted: %d batches", batches)
	}

	// Step 3: host touches the buffer — migrate back, GPU chunks freed.
	d.CPUAccess(a.Blocks(), Read, 0)
	for _, b := range a.Blocks() {
		if b.Residency != vaspace.CPUResident || b.Chunk != nil || b.CPUPinned {
			t.Fatalf("after host read-back: %+v", b)
		}
	}
	if got := d.Metrics().TotalBytes(metrics.D2H); got != uint64(2*units.BlockSize) {
		t.Errorf("D2H bytes = %d", got)
	}
	if d.Device().QueueLen(gpudev.QueueFree) != 8 {
		t.Errorf("free queue = %d after migration back", d.Device().QueueLen(gpudev.QueueFree))
	}
	if err := d.Device().CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// --- First touch on the GPU: zero-fill, no transfer ---

func TestFirstTouchOnGPUZeroFills(t *testing.T) {
	d := testDriver(t, 8)
	a := mustAlloc(t, d, "tmp", 3*units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)
	if d.Metrics().Traffic() != 0 {
		t.Errorf("first GPU touch moved %d bytes over PCIe", d.Metrics().Traffic())
	}
	zb, _ := d.Metrics().ZeroFills()
	if zb != 3 {
		t.Errorf("zero-filled %d blocks, want 3", zb)
	}
	for _, b := range a.Blocks() {
		if b.Residency != vaspace.GPUResident || b.Chunk.PreparedPages != units.PagesPerBlock {
			t.Fatalf("block not prepared: %+v", b)
		}
	}
	batches, blocks := d.Metrics().FaultBatches()
	if batches == 0 || blocks != 3 {
		t.Errorf("fault batches %d / blocks %d", batches, blocks)
	}
}

// --- Figure 2 without discard: the RMT ping-pong ---

func TestFigure2RedundantPingPong(t *testing.T) {
	d := testDriver(t, 4) // 4 usable chunks
	tmp := mustAlloc(t, d, "tmp", 3*units.BlockSize)
	other := mustAlloc(t, d, "other", 3*units.BlockSize)

	// GPU writes short-lived data to tmp.
	gpuAccess(t, d, tmp.Blocks(), Write)
	// Pressure: other needs 3 chunks; only 1 free -> 2 LRU evictions.
	gpuAccess(t, d, other.Blocks(), Write)
	if got := d.Metrics().Bytes(metrics.D2H, metrics.CauseEviction); got != uint64(2*units.BlockSize) {
		t.Fatalf("eviction D2H = %d bytes", got)
	}
	// tmp is re-accessed (overwritten): evicted blocks migrate back.
	gpuAccess(t, d, tmp.Blocks(), Write)
	if got := d.Metrics().Bytes(metrics.H2D, metrics.CauseFault); got == 0 {
		t.Fatal("no fault-driven H2D on re-access")
	}
	// The RMT analyzer must classify the round trip as fully redundant.
	an := trace.Analyze(d.Trace())
	if an.Redundant() != an.Total() || an.Total() == 0 {
		t.Errorf("analysis: %v", an)
	}
}

// --- Figure 2 with discard: transfers skipped in both directions ---

func TestFigure2DiscardEliminatesRMTs(t *testing.T) {
	d := testDriver(t, 4)
	tmp := mustAlloc(t, d, "tmp", 3*units.BlockSize)
	other := mustAlloc(t, d, "other", 3*units.BlockSize)

	gpuAccess(t, d, tmp.Blocks(), Write)
	if _, err := d.Discard(tmp, 0, uint64(tmp.Size()), 0); err != nil {
		t.Fatal(err)
	}
	if d.Device().QueueLen(gpudev.QueueDiscarded) != 3 {
		t.Fatalf("discarded queue = %d", d.Device().QueueLen(gpudev.QueueDiscarded))
	}
	// Pressure: eviction reclaims discarded chunks without transfers.
	gpuAccess(t, d, other.Blocks(), Write)
	if got := d.Metrics().Bytes(metrics.D2H, metrics.CauseEviction); got != 0 {
		t.Fatalf("eviction transferred %d bytes despite discard", got)
	}
	if d.Metrics().Evictions(metrics.EvictDiscarded) == 0 {
		t.Error("no discarded-queue reclamations recorded")
	}
	_, savedD2H := d.Metrics().Saved()
	if savedD2H == 0 {
		t.Error("no saved D2H recorded")
	}
	// Re-accessing tmp allocates fresh zeroed chunks: no H2D at all. (Live
	// "other" data may be LRU-evicted to make room — that D2H is genuine,
	// not an RMT.)
	gpuAccess(t, d, tmp.Blocks(), Write)
	if d.Metrics().TotalBytes(metrics.H2D) != 0 {
		t.Errorf("H2D traffic = %d despite discard", d.Metrics().TotalBytes(metrics.H2D))
	}
}

// --- Eviction priority: unused, then discarded, then LRU (§5.5) ---

func TestEvictionOrder(t *testing.T) {
	d := testDriver(t, 4)
	a := mustAlloc(t, d, "a", units.BlockSize)
	b := mustAlloc(t, d, "b", units.BlockSize)
	c := mustAlloc(t, d, "c", 2*units.BlockSize)

	gpuAccess(t, d, a.Blocks(), Write) // a on used queue
	gpuAccess(t, d, b.Blocks(), Write) // b on used queue
	// Free an allocation to stock the unused queue.
	aux := mustAlloc(t, d, "aux", units.BlockSize)
	gpuAccess(t, d, aux.Blocks(), Write)
	if err := d.FreeManaged(aux); err != nil {
		t.Fatal(err)
	}
	if d.Device().QueueLen(gpudev.QueueUnused) != 1 {
		t.Fatalf("unused queue = %d", d.Device().QueueLen(gpudev.QueueUnused))
	}
	// Discard b to stock the discarded queue.
	if _, err := d.Discard(b, 0, uint64(b.Size()), 0); err != nil {
		t.Fatal(err)
	}

	// c needs two chunks; free queue is empty (4 = a + b + aux-freed + 1
	// free... recount: 4 total; a=1, b=1, aux freed->unused=1, free=1).
	// First chunk: free queue. Second: unused queue. Third (none needed).
	gpuAccess(t, d, c.Blocks(), Write)
	if d.Metrics().Evictions(metrics.EvictUnused) != 1 {
		t.Errorf("unused evictions = %d, want 1", d.Metrics().Evictions(metrics.EvictUnused))
	}
	if d.Metrics().Evictions(metrics.EvictLRU) != 0 {
		t.Errorf("LRU evicted while unused/discarded available")
	}
	// One more block of pressure: now the discarded queue supplies it.
	e := mustAlloc(t, d, "e", units.BlockSize)
	gpuAccess(t, d, e.Blocks(), Write)
	if d.Metrics().Evictions(metrics.EvictDiscarded) != 1 {
		t.Errorf("discarded evictions = %d, want 1", d.Metrics().Evictions(metrics.EvictDiscarded))
	}
	// And further pressure falls back to LRU swap-out.
	f := mustAlloc(t, d, "f", units.BlockSize)
	gpuAccess(t, d, f.Blocks(), Write)
	if d.Metrics().Evictions(metrics.EvictLRU) != 1 {
		t.Errorf("LRU evictions = %d, want 1", d.Metrics().Evictions(metrics.EvictLRU))
	}
	if err := d.Device().CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// --- §5.7: access after discard recovers the chunk ---

func TestAccessAfterEagerDiscardRecovers(t *testing.T) {
	d := testDriver(t, 8)
	a := mustAlloc(t, d, "a", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)
	chunk := a.Block(0).Chunk

	if _, err := d.Discard(a, 0, uint64(a.Size()), 0); err != nil {
		t.Fatal(err)
	}
	if a.Block(0).GPUMapped {
		t.Error("eager discard left GPU mapping")
	}
	if d.Metrics().Unmaps() != 1 {
		t.Errorf("unmaps = %d", d.Metrics().Unmaps())
	}

	// Re-access before any pressure: same chunk recovered, remapped.
	gpuAccess(t, d, a.Blocks(), Write)
	if a.Block(0).Chunk != chunk {
		t.Error("recovery did not reuse the same chunk")
	}
	if !a.Block(0).GPUMapped || a.Block(0).Discarded {
		t.Error("recovery state wrong")
	}
	if chunk.Queue() != gpudev.QueueUsed {
		t.Errorf("recovered chunk on %v", chunk.Queue())
	}
	if d.Metrics().Traffic() != 0 {
		t.Error("recovery should not touch PCIe")
	}
	// Eager recovery pays a map (the one destroyed at discard).
	if d.Metrics().Maps() < 2 { // initial map + recovery remap
		t.Errorf("maps = %d", d.Metrics().Maps())
	}
	// The recovered chunk was fully prepared: no re-zeroing.
	zb, _ := d.Metrics().ZeroFills()
	if zb != 1 { // only the first-touch zero
		t.Errorf("zero fills = %d, want 1", zb)
	}
}

func TestPrefetchAfterLazyDiscardIsCheap(t *testing.T) {
	d := testDriver(t, 8)
	a := mustAlloc(t, d, "a", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)

	if _, err := d.DiscardLazy(a, 0, uint64(a.Size()), 0); err != nil {
		t.Fatal(err)
	}
	b := a.Block(0)
	if !b.GPUMapped {
		t.Fatal("lazy discard must keep mappings")
	}
	if !b.Chunk.NeedsUnmapOnReclaim {
		t.Error("lazy-discarded chunk must owe an unmap at reclaim")
	}
	if d.Metrics().Unmaps() != 0 {
		t.Error("lazy discard unmapped eagerly")
	}
	// The mandatory prefetch re-sets the dirty bit and recovers the chunk.
	if _, err := d.PrefetchToGPU(a, 0, uint64(a.Size()), 0); err != nil {
		t.Fatal(err)
	}
	if b.Discarded || b.Chunk.Queue() != gpudev.QueueUsed {
		t.Error("prefetch did not revive lazily discarded block")
	}
	if d.Metrics().Maps() != 1 { // only the initial map; nothing destroyed
		t.Errorf("maps = %d, want 1", d.Metrics().Maps())
	}
	if d.Metrics().Traffic() != 0 {
		t.Error("lazy recovery should not touch PCIe")
	}
}

// --- The lazy-protocol hazard: write without prefetch can lose data ---

func TestLazyDiscardWriteWithoutPrefetchLosesData(t *testing.T) {
	d := testDriver(t, 2)
	a := mustAlloc(t, d, "a", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)
	a.Data()[0] = 0xAB // functional payload written by the kernel

	if _, err := d.DiscardLazy(a, 0, uint64(a.Size()), 0); err != nil {
		t.Fatal(err)
	}
	// Protocol violation: the GPU writes new data without the mandatory
	// prefetch. No fault occurs (mappings intact) and the driver never
	// learns the block is live again.
	gpuAccess(t, d, a.Blocks(), Write)
	a.Data()[0] = 0xCD // the new value
	if !a.Block(0).Discarded {
		t.Fatal("silent access must not clear the discard state")
	}

	// Memory pressure reclaims the chunk without a transfer: the new
	// value is lost — reads observe zeros.
	other := mustAlloc(t, d, "other", 2*units.BlockSize)
	gpuAccess(t, d, other.Blocks(), Write)
	if a.Data()[0] != 0 {
		t.Errorf("data survived reclaim: %#x (hazard not modeled)", a.Data()[0])
	}
	if a.Block(0).Residency != vaspace.Untouched {
		t.Errorf("reclaimed block residency = %v", a.Block(0).Residency)
	}
	// The deferred unmap was paid at reclaim.
	if d.Metrics().Unmaps() == 0 {
		t.Error("deferred unmap not charged")
	}
}

// With the correct protocol (prefetch first), the same sequence keeps data.
func TestLazyDiscardWithPrefetchKeepsData(t *testing.T) {
	d := testDriver(t, 3)
	a := mustAlloc(t, d, "a", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)
	if _, err := d.DiscardLazy(a, 0, uint64(a.Size()), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.PrefetchToGPU(a, 0, uint64(a.Size()), 0); err != nil {
		t.Fatal(err)
	}
	gpuAccess(t, d, a.Blocks(), Write)
	a.Data()[0] = 0xCD
	other := mustAlloc(t, d, "other", 2*units.BlockSize)
	gpuAccess(t, d, other.Blocks(), Write) // pressure
	if a.Data()[0] != 0xCD {
		t.Errorf("data lost despite correct protocol: %#x", a.Data()[0])
	}
}

// --- §4.1 semantics: write-after-discard always visible ---

func TestWriteAfterDiscardVisibleOnCPU(t *testing.T) {
	d := testDriver(t, 4)
	a := mustAlloc(t, d, "a", units.BlockSize)
	d.CPUAccess(a.Blocks(), Write, 0)
	a.Data()[7] = 0x11
	if _, err := d.Discard(a, 0, uint8Len(a), 0); err != nil {
		t.Fatal(err)
	}
	// CPU write revives the block.
	d.CPUAccess(a.Blocks(), Write, 0)
	a.Data()[7] = 0x22
	if a.Block(0).Discarded {
		t.Fatal("write did not clear discard")
	}
	// Migrate to GPU and back: the value must survive (a real transfer
	// must happen).
	gpuAccess(t, d, a.Blocks(), Read)
	d.CPUAccess(a.Blocks(), Read, 0)
	if a.Data()[7] != 0x22 {
		t.Errorf("value = %#x, want 0x22", a.Data()[7])
	}
	if d.Metrics().TotalBytes(metrics.H2D) == 0 || d.Metrics().TotalBytes(metrics.D2H) == 0 {
		t.Error("revived data should migrate for real")
	}
}

func TestDiscardedCPUBlockSkipsH2D(t *testing.T) {
	d := testDriver(t, 4)
	a := mustAlloc(t, d, "a", 2*units.BlockSize)
	d.CPUAccess(a.Blocks(), Write, 0)
	if _, err := d.Discard(a, 0, uint64(a.Size()), 0); err != nil {
		t.Fatal(err)
	}
	// GPU access: driver skips the migration and zero-fills.
	gpuAccess(t, d, a.Blocks(), Write)
	if d.Metrics().TotalBytes(metrics.H2D) != 0 {
		t.Errorf("H2D = %d despite discard", d.Metrics().TotalBytes(metrics.H2D))
	}
	saved, _ := d.Metrics().Saved()
	if saved != uint64(2*units.BlockSize) {
		t.Errorf("saved H2D = %d", saved)
	}
	// Host pages were released.
	if d.Host().Resident() != 0 {
		t.Errorf("host resident = %d", d.Host().Resident())
	}
}

func uint8Len(a *vaspace.Alloc) uint64 { return uint64(a.Size()) }

// --- Discard granularity (§5.4) ---

func TestDiscardIgnoresPartialBlocks(t *testing.T) {
	d := testDriver(t, 8)
	a := mustAlloc(t, d, "a", 4*units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)
	// Discard [1MiB, 5MiB): only block 1 is fully covered.
	if _, err := d.Discard(a, uint64(units.MiB), uint64(4*units.MiB), 0); err != nil {
		t.Fatal(err)
	}
	if d.Device().QueueLen(gpudev.QueueDiscarded) != 1 {
		t.Errorf("discarded queue = %d, want 1", d.Device().QueueLen(gpudev.QueueDiscarded))
	}
	if !a.Block(1).Discarded || a.Block(0).Discarded || a.Block(2).Discarded {
		t.Error("wrong blocks discarded")
	}
	_, covered := d.Metrics().Discards()
	if covered != 1 {
		t.Errorf("covered blocks = %d", covered)
	}
}

func TestDiscardIdempotent(t *testing.T) {
	d := testDriver(t, 4)
	a := mustAlloc(t, d, "a", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)
	for i := 0; i < 3; i++ {
		if _, err := d.Discard(a, 0, uint64(a.Size()), 0); err != nil {
			t.Fatal(err)
		}
	}
	if d.Device().QueueLen(gpudev.QueueDiscarded) != 1 {
		t.Errorf("discarded queue = %d", d.Device().QueueLen(gpudev.QueueDiscarded))
	}
	if d.Metrics().Unmaps() != 1 {
		t.Errorf("unmaps = %d, want 1 (idempotent)", d.Metrics().Unmaps())
	}
}

func TestDiscardUntouchedIsNoOp(t *testing.T) {
	d := testDriver(t, 4)
	a := mustAlloc(t, d, "a", units.BlockSize)
	if _, err := d.Discard(a, 0, uint64(a.Size()), 0); err != nil {
		t.Fatal(err)
	}
	if a.Block(0).Discarded {
		t.Error("untouched block marked discarded")
	}
}

// --- FreeManaged ---

func TestFreeManagedReleasesResources(t *testing.T) {
	d := testDriver(t, 4)
	a := mustAlloc(t, d, "a", 2*units.BlockSize)
	d.CPUAccess(a.Blocks(), Write, 0)
	gpuAccess(t, d, a.Blocks(), Read)
	if err := d.FreeManaged(a); err != nil {
		t.Fatal(err)
	}
	if d.Host().Resident() != 0 || d.Host().Pinned() != 0 {
		t.Errorf("host not released: resident %d pinned %d",
			d.Host().Resident(), d.Host().Pinned())
	}
	if d.Device().QueueLen(gpudev.QueueUnused) != 2 {
		t.Errorf("unused queue = %d, want 2", d.Device().QueueLen(gpudev.QueueUnused))
	}
	if d.FreeManaged(a) == nil {
		t.Error("double free accepted")
	}
}

// --- No-UVM device buffers ---

func TestMallocDevice(t *testing.T) {
	d := testDriver(t, 4)
	chunks, err := d.MallocDevice(2 * units.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 2 || d.DeviceAllocBytes() != 2*units.BlockSize {
		t.Errorf("chunks %d, bytes %d", len(chunks), d.DeviceAllocBytes())
	}
	// Over-allocation fails (the Listing 4 failure mode).
	if _, err := d.MallocDevice(3 * units.BlockSize); err == nil {
		t.Error("oversized cudaMalloc succeeded")
	}
	d.FreeDevice(chunks)
	if d.DeviceAllocBytes() != 0 || d.Device().QueueLen(gpudev.QueueFree) != 4 {
		t.Error("FreeDevice did not restore chunks")
	}
}

func TestOutOfGPUMemory(t *testing.T) {
	d := testDriver(t, 4)
	chunks, err := d.MallocDevice(4 * units.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	defer d.FreeDevice(chunks)
	a := mustAlloc(t, d, "a", units.BlockSize)
	if _, err := d.GPUAccess(a.Blocks(), Write, 0); err == nil {
		t.Error("expected out-of-memory error")
	}
}

func TestExplicitCopy(t *testing.T) {
	d := testDriver(t, 4)
	end := d.ExplicitCopy(metrics.H2D, units.BlockSize, 0)
	if end <= 0 {
		t.Error("copy took no time")
	}
	if d.Metrics().Bytes(metrics.H2D, metrics.CauseMemcpy) != uint64(units.BlockSize) {
		t.Error("memcpy traffic not recorded")
	}
	if d.ExplicitCopy(metrics.D2H, 0, 5) != 5 {
		t.Error("zero-byte copy should be free")
	}
}

// --- Coalescing: contiguous prefetch uses few DMA ops ---

func TestPrefetchCoalescesTransfers(t *testing.T) {
	d := testDriver(t, 40)
	a := mustAlloc(t, d, "a", 32*units.BlockSize)
	d.CPUAccess(a.Blocks(), Write, 0)
	if _, err := d.PrefetchToGPU(a, 0, uint64(a.Size()), 0); err != nil {
		t.Fatal(err)
	}
	ops := d.Metrics().Ops(metrics.H2D, metrics.CausePrefetch)
	if ops != 1 {
		t.Errorf("prefetch used %d DMA ops, want 1 coalesced op", ops)
	}
	if d.Metrics().Bytes(metrics.H2D, metrics.CausePrefetch) != uint64(32*units.BlockSize) {
		t.Error("coalesced bytes wrong")
	}
}

// Coalescing matters: one big op is faster than per-block ops (Figure 4).
func TestCoalescedFasterThanPerBlock(t *testing.T) {
	link := pcie.Preset(pcie.Gen3)
	one := link.TransferTime(uint64(32 * units.BlockSize))
	var split sim32
	for i := 0; i < 32; i++ {
		split += sim32(link.TransferTime(uint64(units.BlockSize)))
	}
	if sim32(one) >= split {
		t.Errorf("coalesced %v !< split %v", one, split)
	}
}

type sim32 = int64

// --- Thrashing: footprint > capacity with repeated passes ---

func TestLRUThrashing(t *testing.T) {
	d := testDriver(t, 4)
	a := mustAlloc(t, d, "a", 8*units.BlockSize) // 2x capacity
	d.CPUAccess(a.Blocks(), Write, 0)

	// Two sequential passes over the whole buffer: with LRU and footprint
	// 2x capacity, every access in every pass misses.
	for pass := 0; pass < 2; pass++ {
		for _, b := range a.Blocks() {
			gpuAccess(t, d, []*vaspace.Block{b}, Read)
		}
	}
	h2d := d.Metrics().TotalBytes(metrics.H2D)
	if h2d != uint64(16*units.BlockSize) {
		t.Errorf("H2D = %d blocks worth, want 16 (full thrash)",
			h2d/uint64(units.BlockSize))
	}
}

// --- CPU access to eager-discarded CPU-resident block refaults ---

func TestEagerDiscardDestroysCPUMapping(t *testing.T) {
	d := testDriver(t, 4)
	a := mustAlloc(t, d, "a", units.BlockSize)
	d.CPUAccess(a.Blocks(), Write, 0)
	if _, err := d.Discard(a, 0, uint64(a.Size()), 0); err != nil {
		t.Fatal(err)
	}
	if a.Block(0).CPUMapped {
		t.Fatal("eager discard left CPU mapping")
	}
	d.CPUAccess(a.Blocks(), Read, 0)
	if !a.Block(0).CPUMapped {
		t.Error("CPU access did not re-establish mapping")
	}
	// A read does not revive the block (§4.1: reads are unstable until a
	// write).
	if !a.Block(0).Discarded {
		t.Error("read revived discarded block")
	}
}

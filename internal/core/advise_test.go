package core

import (
	"testing"

	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/vaspace"
)

func TestAdviceStrings(t *testing.T) {
	for _, a := range []Advice{AdviseSetPreferredCPU, AdviseSetPreferredGPU,
		AdviseUnsetPreferred, AdviseSetReadMostly, AdviseUnsetReadMostly} {
		if a.String() == "" {
			t.Errorf("advice %d has empty name", int(a))
		}
	}
	if Advice(99).String() == "" {
		t.Error("unknown advice should stringify")
	}
}

func TestMemAdviseBadRange(t *testing.T) {
	d := testDriver(t, 4)
	a := mustAlloc(t, d, "a", units.BlockSize)
	if _, err := d.MemAdvise(a, 0, uint64(2*units.BlockSize), AdviseSetReadMostly, 0); err == nil {
		t.Error("out-of-range advice accepted")
	}
	if _, err := d.MemAdvise(a, 0, uint64(a.Size()), Advice(42), 0); err == nil {
		t.Error("unknown advice accepted")
	}
}

// SetPreferredLocation(CPU): GPU accesses map host memory instead of
// migrating — even on a non-coherent PCIe link (zero-copy sysmem).
func TestPreferredCPUServesRemotely(t *testing.T) {
	d := testDriver(t, 8)
	a := mustAlloc(t, d, "a", units.BlockSize)
	d.CPUAccess(a.Blocks(), Write, 0)
	if _, err := d.MemAdvise(a, 0, uint64(a.Size()), AdviseSetPreferredCPU, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		gpuAccess(t, d, a.Blocks(), Read)
		if a.Block(0).Residency != vaspace.CPUResident {
			t.Fatalf("access %d migrated a PreferCPU block", i)
		}
	}
	if got := d.Metrics().Bytes(metrics.H2D, metrics.CauseRemote); got != uint64(5*units.BlockSize) {
		t.Errorf("remote bytes = %d", got)
	}
	// Unset: the next access migrates normally.
	if _, err := d.MemAdvise(a, 0, uint64(a.Size()), AdviseUnsetPreferred, 0); err != nil {
		t.Fatal(err)
	}
	gpuAccess(t, d, a.Blocks(), Read)
	if a.Block(0).Residency != vaspace.GPUResident {
		t.Error("unset preference did not restore migration")
	}
}

// A prefetch is an explicit directive: it migrates even a PreferCPU block.
func TestPrefetchOverridesPreferredCPU(t *testing.T) {
	d := testDriver(t, 8)
	a := mustAlloc(t, d, "a", units.BlockSize)
	d.CPUAccess(a.Blocks(), Write, 0)
	if _, err := d.MemAdvise(a, 0, uint64(a.Size()), AdviseSetPreferredCPU, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.PrefetchToGPU(a, 0, uint64(a.Size()), 0); err != nil {
		t.Fatal(err)
	}
	if a.Block(0).Residency != vaspace.GPUResident {
		t.Error("prefetch should migrate despite PreferCPU")
	}
}

// SetPreferredLocation(GPU): the eviction process passes over the block
// while other victims exist.
func TestPreferredGPUSkipsEviction(t *testing.T) {
	d := testDriver(t, 4)
	pinned := mustAlloc(t, d, "pinned", units.BlockSize)
	victim := mustAlloc(t, d, "victim", units.BlockSize)
	if _, err := d.MemAdvise(pinned, 0, uint64(pinned.Size()), AdviseSetPreferredGPU, 0); err != nil {
		t.Fatal(err)
	}
	gpuAccess(t, d, pinned.Blocks(), Write) // pinned is the LRU oldest
	gpuAccess(t, d, victim.Blocks(), Write)
	// Pressure: 3 more blocks needed; only 2 free -> one LRU eviction.
	big := mustAlloc(t, d, "big", 3*units.BlockSize)
	gpuAccess(t, d, big.Blocks(), Write)
	if pinned.Block(0).Residency != vaspace.GPUResident {
		t.Error("PreferGPU block evicted while another victim existed")
	}
	if victim.Block(0).Residency != vaspace.CPUResident {
		t.Error("expected the non-preferred block to be the victim")
	}
}

// The hint is advice, not a guarantee: if everything is preferred, the LRU
// victim is evicted anyway.
func TestPreferredGPUFallback(t *testing.T) {
	d := testDriver(t, 2)
	a := mustAlloc(t, d, "a", 2*units.BlockSize)
	if _, err := d.MemAdvise(a, 0, uint64(a.Size()), AdviseSetPreferredGPU, 0); err != nil {
		t.Fatal(err)
	}
	gpuAccess(t, d, a.Blocks(), Write)
	b := mustAlloc(t, d, "b", units.BlockSize)
	gpuAccess(t, d, b.Blocks(), Write) // must evict something
	if b.Block(0).Residency != vaspace.GPUResident {
		t.Error("allocation failed despite evictable (preferred) blocks")
	}
}

// SetReadMostly: a GPU read duplicates the block; subsequent host reads
// are local (no D2H), and eviction of the duplicate moves nothing.
func TestReadMostlyDuplication(t *testing.T) {
	d := testDriver(t, 4)
	a := mustAlloc(t, d, "weights", units.BlockSize)
	d.CPUAccess(a.Blocks(), Write, 0)
	if _, err := d.MemAdvise(a, 0, uint64(a.Size()), AdviseSetReadMostly, 0); err != nil {
		t.Fatal(err)
	}
	gpuAccess(t, d, a.Blocks(), Read) // duplicates H2D
	b := a.Block(0)
	if b.Residency != vaspace.GPUResident || !b.CPUHasPages || b.CPUStale || !b.CPUMapped {
		t.Fatalf("not duplicated: %+v", b)
	}
	h2dAfterDup := d.Metrics().TotalBytes(metrics.H2D)

	// Host read: local, no new traffic.
	d.CPUAccess(a.Blocks(), Read, 0)
	if d.Metrics().TotalBytes(metrics.D2H) != 0 {
		t.Error("host read of a duplicate transferred D2H")
	}
	if b.Residency != vaspace.GPUResident {
		t.Error("host read collapsed the duplicate")
	}

	// Pressure: evicting the duplicate costs no transfer.
	big := mustAlloc(t, d, "big", 4*units.BlockSize)
	gpuAccess(t, d, big.Blocks(), Write)
	if b.Residency != vaspace.CPUResident {
		t.Fatal("duplicate not dropped under pressure")
	}
	if d.Metrics().TotalBytes(metrics.D2H) != 0 {
		t.Errorf("evicting a duplicate transferred %d bytes", d.Metrics().TotalBytes(metrics.D2H))
	}
	if d.Metrics().TotalBytes(metrics.H2D) != h2dAfterDup {
		t.Error("unexpected extra H2D")
	}
}

// A CPU read of a GPU-resident read-mostly block duplicates D2H and keeps
// the GPU copy.
func TestReadMostlyDuplicatesTowardHost(t *testing.T) {
	d := testDriver(t, 4)
	a := mustAlloc(t, d, "a", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write) // born on GPU
	if _, err := d.MemAdvise(a, 0, uint64(a.Size()), AdviseSetReadMostly, 0); err != nil {
		t.Fatal(err)
	}
	d.CPUAccess(a.Blocks(), Read, 0)
	b := a.Block(0)
	if b.Residency != vaspace.GPUResident || !b.CPUHasPages || b.CPUStale {
		t.Fatalf("not duplicated toward host: %+v", b)
	}
	if d.Metrics().TotalBytes(metrics.D2H) != uint64(units.BlockSize) {
		t.Error("duplication D2H missing")
	}
	// Another GPU access stays a local hit.
	faultsBefore, _ := d.Metrics().FaultBatches()
	gpuAccess(t, d, a.Blocks(), Read)
	faultsAfter, _ := d.Metrics().FaultBatches()
	if faultsAfter != faultsBefore {
		t.Error("GPU re-access of duplicate faulted")
	}
}

// Writes collapse duplication: a GPU write drops the host copy, a host
// write drops the GPU copy.
func TestWritesCollapseDuplicate(t *testing.T) {
	// GPU write collapses host side.
	d := testDriver(t, 4)
	a := mustAlloc(t, d, "a", units.BlockSize)
	d.CPUAccess(a.Blocks(), Write, 0)
	if _, err := d.MemAdvise(a, 0, uint64(a.Size()), AdviseSetReadMostly, 0); err != nil {
		t.Fatal(err)
	}
	gpuAccess(t, d, a.Blocks(), Read)  // duplicate
	gpuAccess(t, d, a.Blocks(), Write) // collapse
	b := a.Block(0)
	if b.CPUHasPages || b.Residency != vaspace.GPUResident {
		t.Errorf("GPU write did not collapse host copy: %+v", b)
	}
	if d.Host().Resident() != 0 {
		t.Errorf("host pages leaked: %d", d.Host().Resident())
	}

	// Host write collapses GPU side.
	d2 := testDriver(t, 4)
	a2 := mustAlloc(t, d2, "a", units.BlockSize)
	d2.CPUAccess(a2.Blocks(), Write, 0)
	if _, err := d2.MemAdvise(a2, 0, uint64(a2.Size()), AdviseSetReadMostly, 0); err != nil {
		t.Fatal(err)
	}
	gpuAccess(t, d2, a2.Blocks(), Read) // duplicate
	d2.CPUAccess(a2.Blocks(), Write, 0) // collapse
	b2 := a2.Block(0)
	if b2.Residency != vaspace.CPUResident || b2.Chunk != nil {
		t.Errorf("host write did not collapse GPU copy: %+v", b2)
	}
	if d2.Device().QueueLen(gpudev.QueueFree) != 4 {
		t.Error("GPU chunk not freed on collapse")
	}
}

// Unsetting read-mostly collapses any existing duplicate toward the GPU.
func TestUnsetReadMostlyCollapses(t *testing.T) {
	d := testDriver(t, 4)
	a := mustAlloc(t, d, "a", units.BlockSize)
	d.CPUAccess(a.Blocks(), Write, 0)
	if _, err := d.MemAdvise(a, 0, uint64(a.Size()), AdviseSetReadMostly, 0); err != nil {
		t.Fatal(err)
	}
	gpuAccess(t, d, a.Blocks(), Read)
	if _, err := d.MemAdvise(a, 0, uint64(a.Size()), AdviseUnsetReadMostly, 0); err != nil {
		t.Fatal(err)
	}
	b := a.Block(0)
	if b.ReadMostly || b.CPUHasPages {
		t.Errorf("unset did not collapse: %+v", b)
	}
}

// Discard composes with read-mostly: discarding a duplicated block kills
// both copies' contents.
func TestDiscardOnDuplicatedBlock(t *testing.T) {
	d := testDriver(t, 4)
	a := mustAlloc(t, d, "a", units.BlockSize)
	d.CPUAccess(a.Blocks(), Write, 0)
	if _, err := d.MemAdvise(a, 0, uint64(a.Size()), AdviseSetReadMostly, 0); err != nil {
		t.Fatal(err)
	}
	gpuAccess(t, d, a.Blocks(), Read)
	if _, err := d.Discard(a, 0, uint64(a.Size()), 0); err != nil {
		t.Fatal(err)
	}
	if !a.Block(0).Discarded {
		t.Fatal("duplicated block not discarded")
	}
	// Pressure reclaims the chunk without a transfer.
	big := mustAlloc(t, d, "big", 4*units.BlockSize)
	gpuAccess(t, d, big.Blocks(), Write)
	if d.Metrics().TotalBytes(metrics.D2H) != 0 {
		t.Error("discarded duplicate transferred on reclaim")
	}
}

package core

import (
	"strings"
	"testing"

	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/units"
)

// These tests pin the incremental sanitizer's contract (§15 of DESIGN.md):
// corruption on a block an operation touches is caught by the O(touched)
// incremental pass itself — no full audit needed — while corruption on
// state no operation touches is invisible to it and is picked up by the
// next scheduled full audit.

// incrDriver builds a sanitized driver with stride 1 and the given full-
// audit period, so every operation checks and the incremental/full split
// is the only variable.
func incrDriver(t *testing.T, fullAuditEvery int) *Driver {
	t.Helper()
	p := DefaultParams()
	p.CheckInvariants = true
	p.CheckInvariantsEvery = 1
	p.FullAuditEvery = fullAuditEvery
	d, err := New(Config{GPU: gpudev.Generic(8 * units.BlockSize), Params: &p})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// expectPanic runs fn and returns the recovered panic message ("" if none).
func expectPanic(fn func()) (msg string) {
	defer func() {
		if r := recover(); r != nil {
			msg = r.(string)
		}
	}()
	fn()
	return ""
}

func TestIncrementalSanitizerCatchesTouchedCorruption(t *testing.T) {
	// A full audit would only ever run after ~2^30 checks: whatever the
	// next operation's verify catches, the incremental pass caught.
	d := incrDriver(t, 1<<30)
	a := mustAlloc(t, d, "a", units.BlockSize)
	b := mustAlloc(t, d, "b", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)
	gpuAccess(t, d, b.Blocks(), Write)

	// Break a's chunk back-pointer. Discard touches exactly that block, so
	// its verify re-validates it incrementally.
	a.Block(0).Chunk.Owner = b.Block(0)
	msg := expectPanic(func() {
		if _, err := d.Discard(a, 0, uint64(units.BlockSize), 0); err != nil {
			t.Fatal(err)
		}
	})
	if msg == "" {
		t.Fatal("incremental check missed corruption on a touched block")
	}
	if !strings.Contains(msg, "whose owner is") {
		t.Errorf("panic %q does not name the back-pointer violation", msg)
	}
}

func TestIncrementalSanitizerDefersUntouchedCorruption(t *testing.T) {
	// Corruption on a block no subsequent operation touches: invisible to
	// the incremental pass by design.
	d := incrDriver(t, 1<<30)
	a := mustAlloc(t, d, "a", units.BlockSize)
	b := mustAlloc(t, d, "b", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)
	a.Block(0).Chunk.NeedsUnmapOnReclaim = true

	for i := 0; i < 10; i++ {
		if msg := expectPanic(func() {
			d.CPUAccess(b.Blocks(), Read, 0)
		}); msg != "" {
			t.Fatalf("incremental-only check flagged untouched corruption: %s", msg)
		}
	}
	// The blind spot is bounded: an explicit full sweep still finds it.
	if err := d.CheckNow(); err == nil {
		t.Fatal("full sweep missed the seeded stray deferred-unmap marker")
	}
}

func TestIncrementalSanitizerFullAuditCatchesUp(t *testing.T) {
	// With a small full-audit period the same untouched corruption is
	// caught within FullAuditEvery operations.
	const every = 4
	d := incrDriver(t, every)
	a := mustAlloc(t, d, "a", units.BlockSize)
	b := mustAlloc(t, d, "b", units.BlockSize)
	gpuAccess(t, d, a.Blocks(), Write)
	a.Block(0).Chunk.NeedsUnmapOnReclaim = true

	caught := false
	for i := 0; i < every; i++ {
		if msg := expectPanic(func() {
			d.CPUAccess(b.Blocks(), Read, 0)
		}); msg != "" {
			caught = true
			break
		}
	}
	if !caught {
		t.Fatalf("no full audit ran within %d checks (FullAuditEvery=%d)", every, every)
	}
}

package core

import (
	"testing"

	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/hostmem"
	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/vaspace"
)

// TestRandomProgramInvariants drives the whole driver — multi-GPU,
// discards of both flavors, advice, prefetches, frees — with long random
// programs and checks global invariants after every operation:
//
//  1. Device queue bookkeeping is consistent (CheckInvariants).
//  2. Every GPU-resident block's chunk back-pointer is correct, on the
//     right device, and on a plausible queue.
//  3. Host accounting matches the blocks that claim host pages, and
//     pinned never exceeds resident.
//  4. Virtual time never goes backwards.
//  5. No operation fails (the GPUs always have evictable capacity).
func TestRandomProgramInvariants(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			runRandomProgram(t, seed)
		})
	}
}

func runRandomProgram(t *testing.T, seed uint64) {
	t.Helper()
	rng := sim.NewRNG(seed)
	host := hostmem.New(2 * units.GiB)
	params := DefaultParams()
	if seed%3 == 0 {
		params.RemoteAccessMigrateThreshold = 2
	}
	if seed%4 == 0 {
		params.ImmediateReclaim = true
	}
	link := pcie.Preset(pcie.Gen4)
	if seed%3 == 0 {
		link = pcie.Preset(pcie.GenNVLink)
	}
	d, err := New(Config{
		GPU:      gpudev.Generic(12 * units.BlockSize),
		PeerGPUs: []gpudev.Profile{gpudev.Generic(8 * units.BlockSize)},
		Host:     host,
		Link:     link,
		Params:   &params,
	})
	if err != nil {
		t.Fatal(err)
	}

	var allocs []*vaspace.Alloc
	var now sim.Time
	advance := func(done sim.Time) {
		if done < now {
			t.Fatalf("seed %d: time went backwards: %v < %v", seed, done, now)
		}
		now = done
	}
	randAlloc := func() *vaspace.Alloc {
		if len(allocs) == 0 {
			return nil
		}
		return allocs[rng.Intn(len(allocs))]
	}

	for op := 0; op < 400; op++ {
		switch rng.Intn(12) {
		case 0: // allocate
			if len(allocs) < 8 {
				size := units.Size(rng.Intn(5)+1) * units.BlockSize
				if rng.Intn(3) == 0 {
					size -= units.Size(rng.Intn(int(units.BlockSize) / 2)) // unaligned tail
				}
				a, err := d.AllocManaged("r", size)
				if err != nil {
					t.Fatalf("seed %d op %d: alloc: %v", seed, op, err)
				}
				allocs = append(allocs, a)
			}
		case 1: // free
			if len(allocs) > 2 {
				i := rng.Intn(len(allocs))
				if err := d.FreeManaged(allocs[i]); err != nil {
					t.Fatalf("seed %d op %d: free: %v", seed, op, err)
				}
				allocs = append(allocs[:i], allocs[i+1:]...)
			}
		case 2, 3: // GPU access on a random device
			if a := randAlloc(); a != nil {
				gpu := rng.Intn(d.NumGPUs())
				mode := AccessMode(rng.Intn(3))
				done, err := d.GPUAccessOn(gpu, a.Blocks(), mode, now)
				if err != nil {
					t.Fatalf("seed %d op %d: gpu access: %v", seed, op, err)
				}
				advance(done)
			}
		case 4, 5: // CPU access
			if a := randAlloc(); a != nil {
				advance(d.CPUAccess(a.Blocks(), AccessMode(rng.Intn(3)), now))
			}
		case 6: // prefetch to a random GPU
			if a := randAlloc(); a != nil {
				done, err := d.PrefetchToGPUOn(rng.Intn(d.NumGPUs()), a, 0, uint64(a.Size()), now)
				if err != nil {
					t.Fatalf("seed %d op %d: prefetch: %v", seed, op, err)
				}
				advance(done)
			}
		case 7: // prefetch to CPU
			if a := randAlloc(); a != nil {
				done, err := d.PrefetchToCPU(a, 0, uint64(a.Size()), now)
				if err != nil {
					t.Fatalf("seed %d op %d: cpu prefetch: %v", seed, op, err)
				}
				advance(done)
			}
		case 8: // eager discard (possibly partial range)
			if a := randAlloc(); a != nil {
				off := uint64(rng.Intn(a.NumBlocks())) * uint64(units.BlockSize)
				length := uint64(a.Size()) - off
				done, err := d.Discard(a, off, length, now)
				if err != nil {
					t.Fatalf("seed %d op %d: discard: %v", seed, op, err)
				}
				advance(done)
			}
		case 9: // lazy discard
			if a := randAlloc(); a != nil {
				done, err := d.DiscardLazy(a, 0, uint64(a.Size()), now)
				if err != nil {
					t.Fatalf("seed %d op %d: lazy discard: %v", seed, op, err)
				}
				advance(done)
			}
		case 10: // advice
			if a := randAlloc(); a != nil {
				adv := []Advice{
					AdviseSetPreferredCPU, AdviseSetPreferredGPU, AdviseUnsetPreferred,
					AdviseSetReadMostly, AdviseUnsetReadMostly,
				}[rng.Intn(5)]
				done, err := d.MemAdvise(a, 0, uint64(a.Size()), adv, now)
				if err != nil {
					t.Fatalf("seed %d op %d: advise: %v", seed, op, err)
				}
				advance(done)
			}
		case 11: // device buffer churn on the primary GPU
			if chunks, err := d.MallocDevice(units.BlockSize); err == nil {
				d.FreeDevice(chunks)
			}
		}
		checkGlobalInvariants(t, d, allocs, seed, op)
	}
}

func checkGlobalInvariants(t *testing.T, d *Driver, allocs []*vaspace.Alloc, seed uint64, op int) {
	t.Helper()
	for i := 0; i < d.NumGPUs(); i++ {
		if err := d.DeviceAt(i).CheckInvariants(); err != nil {
			t.Fatalf("seed %d op %d: GPU %d: %v", seed, op, i, err)
		}
	}
	var wantResident, wantPinned units.Size
	for _, a := range allocs {
		for _, b := range a.Blocks() {
			if b.CPUHasPages {
				wantResident += b.Bytes()
			}
			if b.CPUPinned {
				wantPinned += b.Bytes()
				if !b.CPUHasPages {
					t.Fatalf("seed %d op %d: pinned without pages: %+v", seed, op, b)
				}
			}
			switch b.Residency {
			case vaspace.GPUResident:
				if b.Chunk == nil {
					t.Fatalf("seed %d op %d: GPU-resident without chunk", seed, op)
				}
				if b.Chunk.Owner != b {
					t.Fatalf("seed %d op %d: chunk owner back-pointer wrong", seed, op)
				}
				q := b.Chunk.Queue()
				if q != gpudev.QueueUsed && q != gpudev.QueueDiscarded {
					t.Fatalf("seed %d op %d: resident chunk on queue %v", seed, op, q)
				}
				if b.Discarded != (q == gpudev.QueueDiscarded) {
					t.Fatalf("seed %d op %d: discard state %v but queue %v",
						seed, op, b.Discarded, q)
				}
				if b.GPUIndex < 0 || b.GPUIndex >= d.NumGPUs() {
					t.Fatalf("seed %d op %d: GPU index %d", seed, op, b.GPUIndex)
				}
			case vaspace.CPUResident:
				if b.Chunk != nil {
					t.Fatalf("seed %d op %d: CPU-resident with chunk", seed, op)
				}
				if !b.CPUHasPages {
					t.Fatalf("seed %d op %d: CPU-resident without pages", seed, op)
				}
			case vaspace.Untouched:
				if b.Chunk != nil || b.CPUHasPages {
					t.Fatalf("seed %d op %d: untouched with backing: %+v", seed, op, b)
				}
			}
		}
	}
	if got := d.Host().Resident(); got != wantResident {
		t.Fatalf("seed %d op %d: host resident %d, blocks claim %d", seed, op, got, wantResident)
	}
	if got := d.Host().Pinned(); got != wantPinned {
		t.Fatalf("seed %d op %d: host pinned %d, blocks claim %d", seed, op, got, wantPinned)
	}
	_ = metrics.H2D
}

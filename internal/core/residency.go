package core

import (
	"fmt"

	"uvmdiscard/internal/faultinject"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/trace"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/vaspace"
)

// ErrOutOfGPUMemory is returned when neither the free queue nor any
// eviction source can supply a chunk — only possible when non-UVM device
// buffers or the oversubscription reservation hold everything.
var ErrOutOfGPUMemory = fmt.Errorf("core: GPU memory exhausted and nothing is evictable")

// allocChunk obtains a chunk on GPU gpu for block b, running the eviction
// process (§5.5) if the free queue is empty: unused queue first, then the
// discarded queue (no transfer either way), then swap-out of the LRU used
// chunk (a D2H transfer). Returns the chunk and the time it is ready.
func (d *Driver) allocChunk(b *vaspace.Block, gpu int, now sim.Time) (*gpudev.Chunk, sim.Time, error) {
	// Run-control checkpoint inside the eviction process: under memory
	// pressure a single access can trigger a long train of evictions, and a
	// deadline must be able to stop the run between them. The queues are
	// consistent here — nothing has been popped for this allocation yet.
	d.checkpoint("evict", now)
	dev := d.devs[gpu]
	if c := dev.PopFree(); c != nil {
		d.m.AddEviction(metrics.EvictFree)
		return d.assign(c, b), now, nil
	}
	for _, src := range d.p.EvictionOrder {
		switch src {
		case metrics.EvictUnused:
			if c := dev.PopUnused(); c != nil {
				d.m.AddEviction(metrics.EvictUnused)
				return d.assign(c, b), now, nil
			}
		case metrics.EvictDiscarded:
			if c := dev.PopDiscarded(); c != nil {
				done := d.reclaimDiscarded(c, now)
				d.m.AddEviction(metrics.EvictDiscarded)
				return d.assign(c, b), done, nil
			}
		case metrics.EvictLRU:
			if victim := d.lruVictim(gpu); victim != nil {
				done := d.evictUsed(victim, now)
				d.m.AddEviction(metrics.EvictLRU)
				return d.assign(victim, b), done, nil
			}
		}
	}
	return nil, now, ErrOutOfGPUMemory
}

// lruVictim picks the least-recently-used chunk whose block is not pinned
// to the GPU by SetPreferredLocation; if everything is preferred, the
// plain LRU victim is taken anyway (the hint is advice, not a guarantee).
func (d *Driver) lruVictim(gpu int) *gpudev.Chunk {
	var fallback *gpudev.Chunk
	var victim *gpudev.Chunk
	d.devs[gpu].EachUsed(func(c *gpudev.Chunk) bool {
		if fallback == nil {
			fallback = c
		}
		vb, ok := c.Owner.(*vaspace.Block)
		if !ok || vb.Preferred != vaspace.PreferGPU {
			victim = c
			return false
		}
		return true
	})
	if victim != nil {
		return victim
	}
	return fallback
}

// assign points a detached chunk at its new owning block and resets
// per-tenancy state.
func (d *Driver) assign(c *gpudev.Chunk, b *vaspace.Block) *gpudev.Chunk {
	c.Owner = b
	c.PreparedPages = 0
	c.NeedsUnmapOnReclaim = false
	return c
}

// reclaimDiscarded reclaims a chunk popped from the discarded queue: its
// owner's data dies (reads afterwards observe zeros), the stale pinned host
// copy is released, and — for lazily discarded blocks — the deferred unmap
// is paid now (§5.6). No data transfer happens: this is the paper's saved
// D2H.
func (d *Driver) reclaimDiscarded(c *gpudev.Chunk, now sim.Time) sim.Time {
	vb := c.Owner.(*vaspace.Block)
	cur := now
	if c.NeedsUnmapOnReclaim {
		cur = d.unmapBlock(d.devs[vb.GPUIndex], cur)
	}
	d.m.AddSaved(metrics.D2H, uint64(vb.Bytes()))
	if vb.CPUHasPages {
		if vb.CPUPinned {
			d.host.Unpin(vb.Bytes())
		}
		d.host.Release(vb.Bytes())
	}
	vb.Alloc.ZeroBlockData(vb.Index)
	vb.Residency = vaspace.Untouched
	vb.Chunk = nil
	vb.GPUMapped, vb.CPUMapped = false, false
	vb.CPUHasPages, vb.CPUPinned, vb.CPUStale = false, false, false
	vb.Discarded, vb.LazyDiscard = false, false
	vb.Degraded = false
	d.touch(vb)
	return cur
}

// evictUsed swaps the LRU victim out to host DRAM (§2.2 step 3): a D2H
// transfer plus PTE teardown. For partially discarded blocks (§5.4
// ablation) only the live 4 KiB pages move, each as its own small DMA
// operation.
func (d *Driver) evictUsed(c *gpudev.Chunk, now sim.Time) sim.Time {
	vb := c.Owner.(*vaspace.Block)
	dev := d.devs[vb.GPUIndex]
	dev.Detach(c)

	if isDuplicated(vb) {
		// A read-mostly duplicate: the host copy is already valid, so the
		// GPU copy is simply dropped — no transfer (the SetReadMostly
		// payoff under pressure).
		cur := d.unmapBlock(dev, now)
		if vb.CPUPinned {
			d.host.Unpin(vb.Bytes())
			vb.CPUPinned = false
		}
		vb.CPUMapped = true
		vb.GPUMapped = false
		vb.Residency = vaspace.CPUResident
		vb.Chunk = nil
		vb.RemoteAccesses = 0
		d.touch(vb)
		return cur
	}

	bytes, xfer := d.migrationCost(vb)
	if dead := vb.Bytes() - bytes; dead > 0 {
		// A partial discard (§5.4) left only LivePages of the block live:
		// the dead remainder never crosses the link, which is exactly the
		// "saved by discard" D2H traffic the ablation reports.
		d.m.AddSaved(metrics.D2H, uint64(dead))
	}
	cur := d.unmapBlock(dev, now)
	cur = d.reserveD2H(vb, xfer, cur)
	d.m.AddTransfer(metrics.D2H, metrics.CauseEviction, uint64(bytes))
	d.record(cur, trace.TransferD2H, vb, bytes)

	if vb.CPUHasPages {
		if vb.CPUPinned {
			d.host.Unpin(vb.Bytes())
		}
	} else {
		if err := d.host.Reserve(vb.Bytes()); err != nil {
			panic(err) // host swap exhausted: configuration error
		}
		vb.CPUHasPages = true
	}
	vb.CPUPinned = false
	vb.CPUMapped = true
	vb.GPUMapped = false
	vb.Residency = vaspace.CPUResident
	vb.CPUStale = false
	vb.RemoteAccesses = 0
	vb.Chunk = nil
	d.touch(vb)
	return cur
}

// migrationCost returns (bytes moved, link time) for migrating one block in
// either direction, honouring partial-discard splitting.
func (d *Driver) migrationCost(b *vaspace.Block) (units.Size, sim.Time) {
	if b.LivePages > 0 {
		n := units.Size(b.LivePages) * units.PageSize
		t := sim.Time(b.LivePages)*d.p.PageDMALatency + sim.TransferTime(uint64(n), d.link.PeakBandwidth())
		return n, t
	}
	n := b.Bytes()
	return n, d.link.TransferTime(uint64(n))
}

// blockAction classifies what making a block GPU-resident requires.
type blockAction int

const (
	actHit      blockAction = iota // already resident & live: recency touch
	actSilent                      // lazily discarded & resident: GPU access proceeds with no fault and no driver knowledge (§5.2 hazard)
	actRecover                     // discarded & still resident: recover chunk (§5.7)
	actZero                        // allocate fresh zeroed chunk (untouched, or discarded-on-CPU)
	actTransfer                    // allocate chunk and migrate from host
	actRemote                      // serve the access over a coherent link without migrating (§2.3)
	actPeer                        // migrate from another GPU over the peer fabric (§2.3)
	actPeerDead                    // discarded on another GPU: reclaim there, zero here
)

func (d *Driver) classifyForGPU(b *vaspace.Block, gpu int, viaFault bool) blockAction {
	switch b.Residency {
	case vaspace.GPUResident:
		if b.GPUIndex != gpu {
			if b.Discarded {
				return actPeerDead
			}
			return actPeer
		}
		if !b.Discarded {
			return actHit
		}
		if b.LazyDiscard && viaFault {
			// Mappings are intact, so the access does not fault and the
			// driver never learns about it: the chunk stays on the
			// discarded queue and may be reclaimed later, losing the new
			// values. Correct programs prefetch first (§5.2).
			return actSilent
		}
		return actRecover
	case vaspace.CPUResident:
		if b.Discarded {
			return actZero
		}
		if viaFault && b.Degraded {
			// The migration retry budget was exhausted earlier: faulting
			// accesses go remote until a prefetch re-attempts (and, on
			// success, clears) the migration.
			return actRemote
		}
		if viaFault && b.Preferred == vaspace.PreferCPU {
			// SetPreferredLocation(CPU): the driver maps host memory for
			// the GPU (zero-copy) rather than migrating.
			return actRemote
		}
		if viaFault && d.remoteAccessEnabled() &&
			b.RemoteAccesses < d.p.RemoteAccessMigrateThreshold {
			// Coherent hardware satisfies the access in place; the
			// driver's access counters decide when migrating pays off.
			return actRemote
		}
		return actTransfer
	default: // Untouched
		return actZero
	}
}

// faults reports whether an action requires fault servicing when reached
// via a GPU access (rather than a prefetch). Remote accesses do not fault:
// the coherence hardware handles them without driver involvement.
func (a blockAction) faults() bool {
	return a != actHit && a != actSilent && a != actRemote
}

// remoteAccessEnabled reports whether the coherent remote-access mode is
// active: the link must be coherent and the policy threshold positive.
func (d *Driver) remoteAccessEnabled() bool {
	return d.link.Coherent() && d.p.RemoteAccessMigrateThreshold > 0
}

// ensureGPUBlocks makes every block GPU-resident (or leaves it silently
// discarded in the lazy-hazard case), in slice order, coalescing contiguous
// host-to-device migrations into single DMA operations. When viaFault is
// true the blocks arrive via GPU page faults and fault-servicing costs are
// charged in batches of Params.FaultBatchBlocks.
//
// It returns the completion time of the last operation.
func (d *Driver) ensureGPUBlocks(blocks []*vaspace.Block, now sim.Time, cause metrics.Cause, viaFault bool, gpu int) (sim.Time, error) {
	cur := now
	dev := d.devs[gpu]

	// Fault service cost: replayable faults are reported in batches; the
	// driver pays a batch latency plus per-block work (§2.2).
	if viaFault {
		misses := 0
		for _, b := range blocks {
			if d.classifyForGPU(b, gpu, viaFault).faults() {
				misses++
			}
		}
		total := misses
		for misses > 0 {
			n := misses
			if n > d.p.FaultBatchBlocks {
				n = d.p.FaultBatchBlocks
			}
			cur += dev.Profile().FaultBatchLatency + sim.Time(n)*dev.Profile().FaultPerBlock
			d.m.AddFaultBatch(n)
			misses -= n
		}
		if d.fi != nil && total > 0 {
			if rounds := d.fi.OverflowRounds(total); rounds > 0 {
				// The replayable fault buffer overflowed: faults beyond its
				// capacity were dropped by the hardware and re-raised, each
				// replay round costing another buffer drain.
				cur += sim.Time(rounds) * dev.Profile().FaultBatchLatency
				d.m.AddFaultReplay(rounds)
			}
		}
	}

	// State transitions + data movement, with H2D coalescing across
	// consecutive full-block transfers. Per-block bookkeeping (map counts,
	// trace records) amortizes into the same per-run flush the DMA
	// reservation already uses; the run's block list is only materialized
	// when a trace recorder needs it, via the driver's run scratch.
	var runBytes units.Size
	var runCount int
	d.runScratch = d.runScratch[:0] // may hold stale blocks after an aborted run
	flush := func() {
		if runBytes == 0 {
			return
		}
		_, end := d.dma.Reserve(cur, d.scaleDMA(d.link.TransferTime(uint64(runBytes)), cur))
		cur = end
		d.m.AddTransfer(metrics.H2D, cause, uint64(runBytes))
		d.m.AddMap(runCount)
		for _, rb := range d.runScratch {
			d.record(cur, trace.TransferH2D, rb, rb.Bytes())
		}
		runBytes, runCount = 0, 0
		d.runScratch = d.runScratch[:0]
	}

	for _, b := range blocks {
		d.checkpoint("ensure-gpu", cur)
		act := d.classifyForGPU(b, gpu, viaFault)
		if act != actTransfer || b.LivePages > 0 {
			flush()
		}
		switch act {
		case actHit:
			if b.Chunk.Queue() == gpudev.QueueUsed {
				dev.Touch(b.Chunk)
			}
			if viaFault && b.LivePages > 0 {
				// The block's 2 MiB mapping was split by a partial
				// discard: 4 KiB PTEs blow the TLB coverage (§5.4).
				cur += d.p.SplitTLBPenalty
			}
			if !viaFault {
				// A prefetch of already-resident memory neither transfers
				// nor prefaults; it only updates access recency — and that
				// bookkeeping still costs driver time (§7.5.1).
				cur += d.p.PrefetchRecencyPerBlock
			}
		case actSilent:
			// Nothing: no fault, no driver knowledge. Under the
			// sanitizer's strict protocol mode this hazard panics at the
			// access instead of losing the data at some later reclaim.
			if d.p.PanicOnSilentReuse {
				panic("core: sanitizer: " + silentReuseDiag(b))
			}
		case actRemote:
			// The GPU reads/writes host memory through the link without
			// migrating (coherent hardware, or a zero-copy mapping for a
			// PreferCPU block). Bandwidth still bounds it. Preferred
			// blocks never promote; counter-mode blocks do.
			_, cur = d.dma.Reserve(cur, d.scaleDMA(d.link.RemoteAccessTime(uint64(b.Bytes())), cur))
			d.m.AddTransfer(metrics.H2D, metrics.CauseRemote, uint64(b.Bytes()))
			if b.Preferred != vaspace.PreferCPU && !b.Degraded {
				// Degraded blocks never promote on access counters: only a
				// prefetch re-attempts the failed migration.
				b.RemoteAccesses++
			}
		case actRecover:
			cur = d.recoverDiscarded(b, cur, viaFault)
		case actPeer:
			var err error
			cur, err = d.migratePeer(b, gpu, cur)
			if err != nil {
				return cur, err
			}
		case actPeerDead:
			// Discarded on a peer GPU: reclaim the remote chunk without a
			// peer transfer, then fall through to fresh zeroed memory here.
			d.m.AddPeerSaved(uint64(b.Bytes()))
			remote := d.devs[b.GPUIndex]
			old := b.Chunk
			remote.Detach(old)
			cur = d.reclaimDiscarded(old, cur) // clears b.Chunk and discard state
			remote.PushFree(old)
			fallthrough
		case actZero:
			var err error
			cur, err = d.populateZeroed(b, gpu, cur)
			if err != nil {
				return cur, err
			}
		case actTransfer:
			// Fault injection: draw this block's migration outcome before
			// any state transition, so a block that ends up degrading never
			// half-commits. A failed first attempt flushes the pending
			// coalesced run (the engine aborted mid-stream) and retries
			// with backoff; exhaustion degrades to host-pinned access.
			if d.fi != nil && d.fi.DMAFails() {
				flush()
				ready, ok := d.retryH2D(b, cur)
				cur = ready
				if !ok {
					cur = d.degradeToHost(b, cur)
					continue
				}
			}
			chunk, ready, err := d.allocChunk(b, gpu, cur)
			if err != nil {
				return cur, err
			}
			cur = ready
			b.Chunk = chunk
			if b.LivePages > 0 {
				// Partial block: page-granular migration, not coalesced.
				n, t := d.migrationCost(b)
				_, cur = d.dma.Reserve(cur, d.scaleDMA(t, cur))
				d.m.AddTransfer(metrics.H2D, cause, uint64(n))
				d.m.AddMap(1)
				d.record(cur, trace.TransferH2D, b, n)
				chunk.PreparedPages = units.PagesPerBlock // live pages moved, rest zeroed below cost
			} else {
				// PTE establishment for bulk migrations is pipelined with
				// the copy engine (unlike recovery remaps, which sit on the
				// critical path), so only the bookkeeping is counted — and
				// that bookkeeping amortizes into the run's flush.
				runBytes += b.Bytes()
				runCount++
				if d.tr != nil {
					d.runScratch = append(d.runScratch, b)
				}
				chunk.PreparedPages = units.PagesPerBlock
			}
			b.GPUIndex = gpu
			// Host pages stay pinned while the block is GPU-mapped (§2.2).
			if !b.CPUPinned {
				d.host.Pin(b.Bytes())
				b.CPUPinned = true
			}
			if b.ReadMostly {
				// SetReadMostly: this is a read-only duplication — the
				// host copy stays valid and mapped.
				b.CPUStale = false
			} else {
				b.CPUMapped = false
				b.CPUStale = true
			}
			b.Residency = vaspace.GPUResident
			b.GPUMapped = true
			b.Degraded = false
			b.RemoteAccesses = 0
			dev.PushUsed(b.Chunk)
			d.touch(b)
		}
	}
	flush()
	return cur, nil
}

// recoverDiscarded handles re-use of a block that was discarded but whose
// chunk is still on the discarded queue (§5.7): the chunk moves back to the
// MRU end of the used queue. Under UvmDiscard the eagerly destroyed
// mappings must be re-established; under UvmDiscardLazy nothing was
// destroyed. A chunk that was never fully prepared is re-zeroed.
func (d *Driver) recoverDiscarded(b *vaspace.Block, now sim.Time, viaFault bool) sim.Time {
	cur := now
	c := b.Chunk
	dev := d.devs[b.GPUIndex]
	dev.Detach(c)
	if !b.GPUMapped {
		cur += dev.Profile().MapPerBlock
		d.m.AddMap(1)
		b.GPUMapped = true
	}
	if !d.p.PreparedTracking || c.PreparedPages < units.PagesPerBlock {
		cur += dev.Profile().ZeroTimeBlock()
		d.m.AddZeroFill(1, 0)
		c.PreparedPages = units.PagesPerBlock
		b.Alloc.ZeroBlockData(b.Index)
		d.record(cur, trace.ZeroFill, b, b.Bytes())
	}
	c.NeedsUnmapOnReclaim = false
	b.Discarded, b.LazyDiscard = false, false
	dev.PushUsed(c)
	d.touch(b)
	return cur
}

// migratePeer moves a block between GPUs over the peer fabric (§2.3): a
// chunk is allocated on the target, the data crosses the GPU-to-GPU link
// (no host DRAM involvement), and the source chunk is freed.
func (d *Driver) migratePeer(b *vaspace.Block, gpu int, now sim.Time) (sim.Time, error) {
	src := d.devs[b.GPUIndex]
	oldChunk := b.Chunk
	chunk, cur, err := d.allocChunk(b, gpu, now)
	if err != nil {
		return cur, err
	}
	n := uint64(b.Bytes())
	end, ok := d.reserveTransfer(d.peer, faultinject.LinkPeer, d.peerLink.TransferTime(n), cur)
	if ok {
		cur = end
		d.m.AddPeer(n)
	} else {
		// The peer fabric will not carry this block: bounce it through
		// host DRAM on the DMA engine instead (D2H off the source, H2D
		// onto the target). The bounce legs are not re-injected — the
		// degradation path must terminate.
		_, mid := d.dma.Reserve(end, d.scaleDMA(d.link.TransferTime(n), end))
		_, cur = d.dma.Reserve(mid, d.scaleDMA(d.link.TransferTime(n), mid))
		d.m.AddTransfer(metrics.D2H, metrics.CauseFault, n)
		d.m.AddTransfer(metrics.H2D, metrics.CauseFault, n)
		d.m.AddDegraded(n)
	}
	d.record(cur, trace.TransferPeer, b, b.Bytes())
	cur = d.unmapBlock(src, cur)
	src.Detach(oldChunk)
	src.PushFree(oldChunk)
	chunk.PreparedPages = units.PagesPerBlock
	b.Chunk = chunk
	b.GPUIndex = gpu
	b.GPUMapped = true
	b.RemoteAccesses = 0
	d.devs[gpu].PushUsed(chunk)
	d.touch(b)
	return cur, nil
}

// populateZeroed allocates, zeroes, and maps a fresh chunk for a block with
// no live data: first touch of an untouched block, or re-population of a
// block whose contents were discarded while CPU-resident — the latter is
// the paper's saved H2D (§5.3 scenario two).
func (d *Driver) populateZeroed(b *vaspace.Block, gpu int, now sim.Time) (sim.Time, error) {
	if b.Discarded {
		// Skip the H2D transfer the non-discard driver would have done.
		d.m.AddSaved(metrics.H2D, uint64(b.Bytes()))
		if b.CPUHasPages {
			if b.CPUPinned {
				d.host.Unpin(b.Bytes())
			}
			d.host.Release(b.Bytes())
			b.CPUHasPages, b.CPUPinned = false, false
		}
		b.Alloc.ZeroBlockData(b.Index)
		b.Discarded, b.LazyDiscard = false, false
	}
	chunk, cur, err := d.allocChunk(b, gpu, now)
	if err != nil {
		return cur, err
	}
	dev := d.devs[gpu]
	cur += dev.Profile().ZeroTimeBlock() + dev.Profile().MapPerBlock
	d.m.AddZeroFill(1, 0)
	d.m.AddMap(1)
	chunk.PreparedPages = units.PagesPerBlock
	b.Chunk = chunk
	b.Residency = vaspace.GPUResident
	b.GPUIndex = gpu
	b.GPUMapped = true
	b.CPUMapped = false
	b.Degraded = false
	dev.PushUsed(chunk)
	d.touch(b)
	d.record(cur, trace.ZeroFill, b, b.Bytes())
	return cur, nil
}

// ensureCPUBlock makes one block CPU-accessible. GPU-resident live data
// migrates D2H; discarded GPU data is reclaimed without a transfer and the
// host observes zeros (§5.3 scenario one from the CPU side). Read-mostly
// GPU-resident blocks are *duplicated* to the host on reads rather than
// migrated (the write-intent collapse happens in CPUAccess).
func (d *Driver) ensureCPUBlock(b *vaspace.Block, now sim.Time, cause metrics.Cause, forWrite bool) sim.Time {
	cur := now
	d.touch(b)
	switch b.Residency {
	case vaspace.CPUResident:
		if !b.CPUMapped {
			// The eager discard destroyed the CPU mapping; re-fault.
			cur += d.p.CPUMinorFault
			b.CPUMapped = true
		}
	case vaspace.Untouched:
		if err := d.host.Reserve(b.Bytes()); err != nil {
			panic(err)
		}
		cur += d.p.CPUFirstTouchPerBlock
		b.CPUHasPages = true
		b.CPUMapped = true
		b.Residency = vaspace.CPUResident
	case vaspace.GPUResident:
		if isDuplicated(b) {
			// Valid host copy already: a local access.
			if !b.CPUMapped {
				cur += d.p.CPUMinorFault
				b.CPUMapped = true
			}
			return cur
		}
		if b.ReadMostly && !b.Discarded && !forWrite {
			// Duplicate the block to the host, keeping the GPU copy: a
			// D2H copy, after which reads are local on both sides.
			bytes, xfer := d.migrationCost(b)
			cur = d.reserveD2H(b, xfer, cur)
			d.m.AddTransfer(metrics.D2H, cause, uint64(bytes))
			d.record(cur, trace.TransferD2H, b, bytes)
			if !b.CPUHasPages {
				if err := d.host.Reserve(b.Bytes()); err != nil {
					panic(err)
				}
				b.CPUHasPages = true
			}
			b.CPUStale = false
			b.CPUMapped = true
			return cur
		}
		c := b.Chunk
		dev := d.devs[b.GPUIndex]
		if b.Discarded {
			// Reclaim without transferring: saved D2H.
			dev.Detach(c)
			if c.NeedsUnmapOnReclaim {
				cur = d.unmapBlock(dev, cur)
			}
			d.m.AddSaved(metrics.D2H, uint64(b.Bytes()))
			dev.PushFree(c)
			b.Alloc.ZeroBlockData(b.Index)
			b.Discarded, b.LazyDiscard = false, false
		} else {
			dev.Detach(c)
			bytes, xfer := d.migrationCost(b)
			cur = d.unmapBlock(dev, cur)
			cur = d.reserveD2H(b, xfer, cur)
			d.m.AddTransfer(metrics.D2H, cause, uint64(bytes))
			d.record(cur, trace.TransferD2H, b, bytes)
			dev.PushFree(c)
		}
		if b.CPUHasPages {
			if b.CPUPinned {
				d.host.Unpin(b.Bytes())
			}
		} else {
			if err := d.host.Reserve(b.Bytes()); err != nil {
				panic(err)
			}
			b.CPUHasPages = true
		}
		b.CPUPinned = false
		b.CPUMapped = true
		b.GPUMapped = false
		b.CPUStale = false
		b.Chunk = nil
		b.Residency = vaspace.CPUResident
	}
	return cur
}

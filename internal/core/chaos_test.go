package core

import (
	"errors"
	"flag"
	"fmt"
	"testing"

	"uvmdiscard/internal/faultinject"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/hostmem"
	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/vaspace"
)

// The chaos harness: randomized workloads under randomized fault schedules,
// with the runtime sanitizer at stride 1 (via TestMain) and the strict
// lazy-discard protocol mode on. Unlike random_test.go, the generated
// program is protocol-correct — every lazily discarded allocation is
// prefetched before its next GPU use — so any sanitizer panic or silent
// data loss is a driver recovery bug, not an application one.
//
// After each program the harness audits the fault ledger: every injected
// migration/unmap failure must appear in the metrics as a retry (or, past
// the budget, a degradation), every buffer overflow as replayed rounds, and
// every poisoned chunk on a quarantine queue. Faults are never silently
// dropped.

var chaosSeed = flag.Uint64("chaos.seed", 0,
	"run the chaos harness with this single seed instead of the built-in set (CI matrix knob)")

func TestChaosRandomFaults(t *testing.T) {
	seeds := []uint64{1, 2, 3, 21, 22, 23, 31, 32, 33}
	if testing.Short() {
		seeds = seeds[:3]
	}
	if *chaosSeed != 0 {
		seeds = []uint64{*chaosSeed}
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runChaosProgram(t, seed)
		})
	}
}

// chaosSchedule derives a randomized fault schedule from the harness seed.
// All probabilities stay moderate so programs make progress; the injector
// seed differs from the workload seed so the two streams never correlate.
func chaosSchedule(rng *sim.RNG, seed uint64) *faultinject.Config {
	cfg := &faultinject.Config{
		Seed:          seed*2654435761 + 1,
		DMAFailProb:   float64(rng.Intn(16)) / 100, // 0 .. 0.15
		PeerFailProb:  float64(rng.Intn(16)) / 100,
		UnmapFailProb: float64(rng.Intn(11)) / 100, // 0 .. 0.10
		PoisonProb:    float64(rng.Intn(3)) / 500,  // 0 .. 0.004
	}
	if rng.Intn(2) == 0 {
		cfg.FaultBufferBlocks = rng.Intn(6) + 2 // 2 .. 7, smaller than batches
	}
	for _, link := range []faultinject.LinkID{faultinject.LinkPCIe, faultinject.LinkPeer} {
		if rng.Intn(2) == 0 {
			cfg.Windows = append(cfg.Windows, faultinject.Window{
				Link:   link,
				Start:  sim.Time(rng.Intn(50)) * sim.Millisecond,
				Dur:    sim.Time(rng.Intn(40)+10) * sim.Millisecond,
				Factor: 1 + float64(rng.Intn(70))/10,
			})
		}
	}
	return cfg
}

func runChaosProgram(t *testing.T, seed uint64) {
	t.Helper()
	rng := sim.NewRNG(seed)
	fcfg := chaosSchedule(rng, seed)
	t.Logf("seed %d schedule: %s", seed, fcfg.Describe())

	params := DefaultParams()
	params.PanicOnSilentReuse = true
	params.MaxMigrateRetries = rng.Intn(5)
	if seed%3 == 0 {
		params.RemoteAccessMigrateThreshold = 2
	}
	if seed%4 == 0 {
		params.ImmediateReclaim = true
	}
	link := pcie.Preset(pcie.Gen4)
	if seed%3 == 0 {
		link = pcie.Preset(pcie.GenNVLink)
	}
	d, err := New(Config{
		GPU:      gpudev.Generic(16 * units.BlockSize),
		PeerGPUs: []gpudev.Profile{gpudev.Generic(8 * units.BlockSize)},
		Host:     hostmem.New(2 * units.GiB),
		Link:     link,
		Params:   &params,
		Faults:   fcfg,
	})
	if err != nil {
		t.Fatal(err)
	}

	var allocs []*vaspace.Alloc
	// lazyDirty marks allocations with lazily discarded blocks that have not
	// been re-prefetched yet: GPU-accessing one without the mandatory
	// prefetch is the §5.2 protocol violation PanicOnSilentReuse escalates,
	// and the chaos program must stay protocol-correct.
	lazyDirty := map[*vaspace.Alloc]bool{}
	var now sim.Time
	advance := func(done sim.Time) {
		if done < now {
			t.Fatalf("seed %d: time went backwards: %v < %v", seed, done, now)
		}
		now = done
	}
	randAlloc := func() *vaspace.Alloc {
		if len(allocs) == 0 {
			return nil
		}
		return allocs[rng.Intn(len(allocs))]
	}
	poisonedChunks := func() int {
		n := 0
		for i := 0; i < d.NumGPUs(); i++ {
			n += d.DeviceAt(i).QueueLen(gpudev.QueuePoisoned)
		}
		return n
	}
	// tolerateOOM: poison permanently shrinks GPU capacity, so once chunks
	// are quarantined an out-of-memory result is a legitimate outcome, not
	// a harness failure.
	tolerateOOM := func(err error, what string, op int) bool {
		if err == nil {
			return false
		}
		if errors.Is(err, ErrOutOfGPUMemory) && poisonedChunks() > 0 {
			return true
		}
		t.Fatalf("seed %d op %d: %s: %v", seed, op, what, err)
		return true
	}

	ops := 300
	if testing.Short() {
		ops = 150
	}
	for op := 0; op < ops; op++ {
		switch rng.Intn(12) {
		case 0: // allocate
			if len(allocs) < 8 {
				size := units.Size(rng.Intn(5)+1) * units.BlockSize
				if rng.Intn(3) == 0 {
					size -= units.Size(rng.Intn(int(units.BlockSize) / 2))
				}
				a, err := d.AllocManaged("chaos", size)
				if err != nil {
					t.Fatalf("seed %d op %d: alloc: %v", seed, op, err)
				}
				allocs = append(allocs, a)
			}
		case 1: // free
			if len(allocs) > 2 {
				i := rng.Intn(len(allocs))
				if err := d.FreeManaged(allocs[i]); err != nil {
					t.Fatalf("seed %d op %d: free: %v", seed, op, err)
				}
				delete(lazyDirty, allocs[i])
				allocs = append(allocs[:i], allocs[i+1:]...)
			}
		case 2, 3: // GPU access (with the mandatory prefetch after lazy discard)
			if a := randAlloc(); a != nil {
				gpu := rng.Intn(d.NumGPUs())
				if lazyDirty[a] {
					done, err := d.PrefetchToGPUOn(gpu, a, 0, uint64(a.Size()), now)
					if tolerateOOM(err, "mandatory prefetch", op) {
						break
					}
					delete(lazyDirty, a)
					advance(done)
				}
				done, err := d.GPUAccessOn(gpu, a.Blocks(), AccessMode(rng.Intn(3)), now)
				if tolerateOOM(err, "gpu access", op) {
					break
				}
				advance(done)
			}
		case 4, 5: // CPU access
			if a := randAlloc(); a != nil {
				mode := AccessMode(rng.Intn(3))
				advance(d.CPUAccess(a.Blocks(), mode, now))
				if mode.writes() {
					// A host write revives every discarded block (§4.1).
					delete(lazyDirty, a)
				}
			}
		case 6: // prefetch to a random GPU
			if a := randAlloc(); a != nil {
				done, err := d.PrefetchToGPUOn(rng.Intn(d.NumGPUs()), a, 0, uint64(a.Size()), now)
				if tolerateOOM(err, "prefetch", op) {
					break
				}
				delete(lazyDirty, a)
				advance(done)
			}
		case 7: // prefetch to CPU
			if a := randAlloc(); a != nil {
				done, err := d.PrefetchToCPU(a, 0, uint64(a.Size()), now)
				if err != nil {
					t.Fatalf("seed %d op %d: cpu prefetch: %v", seed, op, err)
				}
				advance(done)
			}
		case 8: // eager discard
			if a := randAlloc(); a != nil {
				off := uint64(rng.Intn(a.NumBlocks())) * uint64(units.BlockSize)
				done, err := d.Discard(a, off, uint64(a.Size())-off, now)
				if err != nil {
					t.Fatalf("seed %d op %d: discard: %v", seed, op, err)
				}
				advance(done)
			}
		case 9: // lazy discard: the alloc now needs a prefetch before GPU use
			if a := randAlloc(); a != nil {
				done, err := d.DiscardLazy(a, 0, uint64(a.Size()), now)
				if err != nil {
					t.Fatalf("seed %d op %d: lazy discard: %v", seed, op, err)
				}
				lazyDirty[a] = true
				advance(done)
			}
		case 10: // advice
			if a := randAlloc(); a != nil {
				adv := []Advice{
					AdviseSetPreferredCPU, AdviseSetPreferredGPU, AdviseUnsetPreferred,
					AdviseSetReadMostly, AdviseUnsetReadMostly,
				}[rng.Intn(5)]
				done, err := d.MemAdvise(a, 0, uint64(a.Size()), adv, now)
				if err != nil {
					t.Fatalf("seed %d op %d: advise: %v", seed, op, err)
				}
				advance(done)
			}
		case 11: // device buffer churn + explicit copies (No-UVM path)
			if chunks, err := d.MallocDevice(units.BlockSize); err == nil {
				advance(d.ExplicitCopy(metricsDir(rng), units.BlockSize, now))
				d.FreeDevice(chunks)
			}
		}
		if err := d.CheckNow(); err != nil {
			t.Fatalf("seed %d op %d: sanitizer: %v", seed, op, err)
		}
	}

	// The fault ledger must balance: nothing injected may vanish.
	st := d.Injector().Stats()
	m := d.Metrics()
	if got := m.MigrateRetries(); got != st.DMAFailures+st.PeerFailures {
		t.Errorf("seed %d: injected %d DMA + %d peer failures but recorded %d migrate retries",
			seed, st.DMAFailures, st.PeerFailures, got)
	}
	if got := m.UnmapRetries(); got != st.UnmapFailures {
		t.Errorf("seed %d: injected %d unmap failures but recorded %d reissues",
			seed, st.UnmapFailures, got)
	}
	if st.Overflows > 0 && m.FaultReplays() == 0 {
		t.Errorf("seed %d: %d buffer overflows but no replayed fault rounds", seed, st.Overflows)
	}
	if chunks, _, _ := m.Poisoned(); int(chunks) != poisonedChunks() {
		t.Errorf("seed %d: %d poison events recorded but %d chunks quarantined",
			seed, chunks, poisonedChunks())
	}
	if err := d.CheckNow(); err != nil {
		t.Fatalf("seed %d: final sweep: %v", seed, err)
	}
	t.Logf("seed %d: %d migrate retries, %d unmap reissues, %d replays, %d degraded, %d poisoned",
		seed, m.MigrateRetries(), m.UnmapRetries(), m.FaultReplays(),
		func() int64 { n, _ := m.Degraded(); return n }(), poisonedChunks())
}

func metricsDir(rng *sim.RNG) metrics.Direction {
	if rng.Intn(2) == 0 {
		return metrics.H2D
	}
	return metrics.D2H
}

package core

import (
	"fmt"

	"uvmdiscard/internal/faultinject"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/hostmem"
	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/runctl"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/trace"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/vaspace"
)

// Config assembles a driver instance.
type Config struct {
	// GPU is the hardware profile of the primary GPU (index 0).
	GPU gpudev.Profile
	// PeerGPUs adds further GPUs (indices 1..n) connected to the primary
	// through PeerLink — the multi-GPU topology §2.3 and §5.1 describe.
	PeerGPUs []gpudev.Profile
	// PeerLink is the GPU-to-GPU fabric (NVLink/NVSwitch class); defaults
	// to a 600 GB/s NVSwitch-like link, the figure the paper quotes for
	// A100 systems (§2.3).
	PeerLink *pcie.Link
	// ReservedBytes of GPU memory are pinned away to force an
	// oversubscription ratio, modeling the paper's idle co-resident
	// program (§7.1). Applies to the primary GPU.
	ReservedBytes units.Size
	// Link is the CPU-GPU interconnect; defaults to PCIe-4 if nil.
	Link *pcie.Link
	// Host models host DRAM; defaults to the paper's 64 GB host if nil.
	Host *hostmem.Host
	// Params are driver policy knobs; zero value means DefaultParams.
	Params *Params
	// Costs are the API cost models; nil means DefaultAPICosts (Table 2).
	Costs *APICosts
	// Metrics receives instrumentation; nil allocates a fresh collector.
	Metrics *metrics.Collector
	// Trace, when non-nil, records driver events for RMT analysis.
	Trace *trace.Recorder
	// Faults, when non-nil and enabled, attaches a fault-injection
	// schedule (internal/faultinject). New builds a fresh Injector from
	// it, so a Config (and its schedule) may be shared across runs while
	// injector state never is.
	Faults *faultinject.Config
	// Control, when non-nil, attaches a run control (internal/runctl):
	// the driver loop polls it at operation boundaries and aborts the run
	// with a structured *runctl.Interrupt once the run's context is
	// canceled or a wall-clock / sim-time budget is exhausted. Unlike
	// Faults, a Control is stateful and single-threaded: it must be fresh
	// per run and never shared between concurrent runs.
	Control *runctl.Control
}

// Driver is the UVM driver model for one or more GPUs. It owns each
// device's physical-chunk queues, the unified VA space, and the DMA
// engines.
type Driver struct {
	devs     []*gpudev.Device
	host     *hostmem.Host
	link     *pcie.Link
	peerLink *pcie.Link
	space    *vaspace.Space
	m        *metrics.Collector
	tr       *trace.Recorder
	p        Params
	costs    *APICosts
	fi       *faultinject.Injector // nil when running fault-free
	ctl      *runctl.Control       // nil when the run is unbounded

	// dma is the migration path between host and device. Although PCIe is
	// full duplex and the GPU has per-direction copy engines, the paper's
	// platform bottlenecks both directions in host DRAM ("the CPU DRAM is
	// DDR4 3200, so PCIe-4 throughput is bottlenecked at 25 GB/s", §7.1),
	// so H2D and D2H share one engine. Driver-side bookkeeping (fault
	// service, PTE work, zero-fills) is charged inline on the issuing
	// operation's timeline: the real driver parallelizes that work across
	// VA ranges, so a global serial resource would over-serialize.
	dma *sim.Engine
	// peer is the GPU-to-GPU fabric: peer migrations do not cross host
	// DRAM, so they get their own engine.
	peer *sim.Engine

	deviceAllocBytes units.Size // non-UVM cudaMalloc'd bytes (chunks held)
	// deviceChunkCount tracks how many chunks those bytes pin. Membership
	// itself lives on the chunks (gpudev.Chunk.DeviceBuffer), so hot-path
	// ownership tests are a field load; the count is what the sanitizer's
	// O(1) conservation check compares against detached chunks.
	deviceChunkCount int

	// opCount numbers the public driver operations for the sanitizer's
	// sampling stride (sanitizer.go). A Driver is single-threaded per
	// run (see internal/experiments isolation rules), so no lock.
	opCount uint64
	// pubTick counts checkpoints for the residency-gauge publishing stride
	// (see checkpoint / PublishResidency). Same single-threaded rule.
	pubTick uint64

	// Scratch buffers reused across driver operations so the hot path does
	// not allocate per access. The rules (DESIGN.md §15): a scratch is
	// valid only for the duration of one public driver operation, is
	// always re-sliced to [:0] before use, and no callee may retain a
	// reference past the operation. rangeScratch backs the block lists the
	// CUDA-facing entry points build; edgeScratch backs discard's partial-
	// edge list, which must coexist with the whole-block list of the same
	// call; runScratch backs the per-run block list of coalesced
	// transfers in ensureGPUBlocks (only materialized when tracing).
	rangeScratch []*vaspace.Block
	edgeScratch  []*vaspace.Block
	runScratch   []*vaspace.Block

	// Incremental-sanitizer state (sanitizer.go): blocks whose structural
	// state changed since the last check, and how many incremental checks
	// have run since the last full audit. Only maintained when
	// p.CheckInvariants is on.
	touched         []*vaspace.Block
	checksSinceFull int
}

// scratchCap is the initial capacity of the driver's scratch block slices:
// 256 blocks covers a 512 MiB operation range, comfortably beyond the
// prefetch/discard windows the workloads issue, at 2 KiB per slice. Larger
// ranges still work — the slice grows once and keeps the larger backing.
const scratchCap = 256

// Default interconnects are immutable after construction (pcie.Link has no
// setters), so every driver built without an explicit link shares one
// instance instead of rebuilding it per run.
var (
	// NVSwitch-class fabric: "the GPU-to-GPU remote access bandwidth is
	// limited to 600 GB/s" (§2.3).
	sharedDefaultPeerLink = pcie.NewLink(pcie.GenNVLink, 600e9, sim.Micros(4))
	sharedDefaultLink     = pcie.Preset(pcie.Gen4)
)

var (
	forceCheckInvariants      bool
	forceCheckInvariantsEvery int
)

// EnableInvariantChecksForTests turns the runtime sanitizer on for every
// driver subsequently built by New, regardless of Params.CheckInvariants,
// with the given sampling stride (values < 2 mean every operation). It
// exists for TestMain functions — the core and experiments test binaries
// call it so every driver constructed anywhere in a test run is checked —
// and must only be called before tests start.
func EnableInvariantChecksForTests(stride int) {
	forceCheckInvariants = true
	forceCheckInvariantsEvery = stride
}

// New builds a driver.
func New(cfg Config) (*Driver, error) {
	p := DefaultParams()
	if cfg.Params != nil {
		p = *cfg.Params
	}
	if forceCheckInvariants && !p.CheckInvariants {
		p.CheckInvariants = true
		p.CheckInvariantsEvery = forceCheckInvariantsEvery
		// Test mode wants maximal detection promptness: every check is a
		// full sweep, never the incremental pass.
		p.FullAuditEvery = 1
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	devs := []*gpudev.Device{}
	dev, err := gpudev.NewDevice(cfg.GPU, cfg.ReservedBytes)
	if err != nil {
		return nil, err
	}
	devs = append(devs, dev)
	for i, prof := range cfg.PeerGPUs {
		pd, err := gpudev.NewDevice(prof, 0)
		if err != nil {
			return nil, fmt.Errorf("core: peer GPU %d: %w", i+1, err)
		}
		devs = append(devs, pd)
	}
	peerLink := cfg.PeerLink
	if peerLink == nil {
		peerLink = sharedDefaultPeerLink
	}
	link := cfg.Link
	if link == nil {
		link = sharedDefaultLink
	}
	host := cfg.Host
	if host == nil {
		host = hostmem.Default()
	}
	m := cfg.Metrics
	if m == nil {
		m = metrics.New()
	}
	costs := cfg.Costs
	if costs == nil {
		// Cost curves are immutable after construction, so every driver
		// with default costs shares one instance instead of rebuilding the
		// Table 2 interpolation tables per run (visible in alloc profiles
		// of experiment sweeps, which build thousands of drivers).
		costs = sharedDefaultCosts
	}
	var fi *faultinject.Injector
	if cfg.Faults != nil && cfg.Faults.Enabled() {
		fi, err = faultinject.New(*cfg.Faults)
		if err != nil {
			return nil, err
		}
	}
	return &Driver{
		devs:     devs,
		host:     host,
		link:     link,
		peerLink: peerLink,
		space:    vaspace.NewSpace(),
		m:        m,
		tr:       cfg.Trace,
		p:        p,
		costs:    costs,
		fi:       fi,
		ctl:      cfg.Control,
		dma:      sim.NewEngine("dma"),
		peer:     sim.NewEngine("peer-fabric"),
		// Pre-size the range scratch for a typical prefetch/discard window
		// (scratchCap blocks) so per-driver first use does not replay the
		// whole append growth chain — experiment sweeps build thousands of
		// short-lived drivers and pay that chain once each otherwise.
		// edgeScratch and runScratch stay nil: most runs never take the
		// partial-edge or traced paths that fill them.
		rangeScratch: make([]*vaspace.Block, 0, scratchCap),
	}, nil
}

// Device returns the primary GPU device model.
func (d *Driver) Device() *gpudev.Device { return d.devs[0] }

// DeviceAt returns the i'th GPU device model.
func (d *Driver) DeviceAt(i int) *gpudev.Device { return d.devs[i] }

// NumGPUs returns how many GPUs the driver manages.
func (d *Driver) NumGPUs() int { return len(d.devs) }

// PeerLink returns the GPU-to-GPU fabric model.
func (d *Driver) PeerLink() *pcie.Link { return d.peerLink }

// EnginePeer exposes the peer fabric engine.
func (d *Driver) EnginePeer() *sim.Engine { return d.peer }

// Host returns the host memory model.
func (d *Driver) Host() *hostmem.Host { return d.host }

// Link returns the interconnect model.
func (d *Driver) Link() *pcie.Link { return d.link }

// Space returns the unified VA space.
func (d *Driver) Space() *vaspace.Space { return d.space }

// Metrics returns the instrumentation collector.
func (d *Driver) Metrics() *metrics.Collector { return d.m }

// Trace returns the trace recorder (may be nil).
func (d *Driver) Trace() *trace.Recorder { return d.tr }

// Costs returns the API cost models.
func (d *Driver) Costs() *APICosts { return d.costs }

// Params returns the active policy parameters.
func (d *Driver) Params() Params { return d.p }

// Control returns the run control (may be nil).
func (d *Driver) Control() *runctl.Control { return d.ctl }

// HasFaultInjection reports whether a fault-injection schedule is attached.
// Checkpoint capture refuses faulted runs: injector state (pending schedule
// position, retry backoff) is not serialized, so a resumed run would diverge
// from an uninterrupted one.
func (d *Driver) HasFaultInjection() bool { return d.fi != nil }

// RestoreDeviceAlloc overwrites the non-UVM device-buffer accounting from a
// checkpoint snapshot. Validated rather than trusted: the inputs come from a
// decoded file, and the pair must be internally consistent (whole chunks)
// or the sanitizer's conservation check would fail in a misleading place.
func (d *Driver) RestoreDeviceAlloc(bytes units.Size, chunks int) error {
	if chunks < 0 || bytes < 0 {
		return fmt.Errorf("core: restore with negative device-buffer accounting (%d chunks, %s)",
			chunks, units.Format(bytes))
	}
	if bytes != units.Size(chunks)*units.BlockSize {
		return fmt.Errorf("core: restore device-buffer accounting mismatch: %s is not %d whole chunks",
			units.Format(bytes), chunks)
	}
	d.deviceAllocBytes = bytes
	d.deviceChunkCount = chunks
	return nil
}

// checkpoint polls the run control at a driver operation boundary. All
// call sites sit at points where the memory-management state is
// self-consistent (between per-block transitions, before an eviction pops a
// queue), so an aborted run always passes the runtime sanitizer — the
// invariant the service's deadline tests pin down. The abort is a typed
// panic that runctl.Recover converts back into an error at the workload
// boundary; it never escapes to callers as a panic.
func (d *Driver) checkpoint(op string, now sim.Time) {
	if d.ctl == nil {
		return
	}
	if i := d.ctl.Check(op, now); i != nil {
		runctl.Abort(i)
	}
	// Controlled runs are service runs: republish the residency gauges on a
	// stride so a /metrics scrape of a live run sees fresh per-device
	// occupancy without a collector-mutex acquisition per driver operation.
	d.pubTick++
	if d.pubTick&(residencyPublishStride-1) == 0 {
		d.PublishResidency()
	}
}

// residencyPublishStride is how many checkpoints elapse between residency
// gauge refreshes; a power of two so the stride test is a mask.
const residencyPublishStride = 64

// PublishResidency pushes every device's current queue occupancy into the
// metrics collector as per-device gauges (metrics.DeviceResidency).
// Chunks are uniform (units.BlockSize), so occupancy is queue length times
// chunk size. The driver calls this on a stride from checkpoint during
// controlled (service) runs, and workloads.Collect calls it once at the end
// of every run so finished results always carry final residency. It reads
// only queue lengths and never mutates driver state, so publishing has no
// effect on simulated time or determinism.
func (d *Driver) PublishResidency() {
	for i, dev := range d.devs {
		bs := uint64(units.BlockSize)
		d.m.SetDeviceResidency(i, metrics.DeviceResidency{
			CapacityBytes:  bs * uint64(dev.TotalChunks()),
			FreeBytes:      bs * uint64(dev.QueueLen(gpudev.QueueFree)),
			UnusedBytes:    bs * uint64(dev.QueueLen(gpudev.QueueUnused)),
			UsedBytes:      bs * uint64(dev.QueueLen(gpudev.QueueUsed)),
			DiscardedBytes: bs * uint64(dev.QueueLen(gpudev.QueueDiscarded)),
			ReservedBytes:  bs * uint64(dev.QueueLen(gpudev.QueueReserved)),
			PoisonedBytes:  bs * uint64(dev.QueueLen(gpudev.QueuePoisoned)),
		})
	}
}

// EngineDMA exposes the shared migration engine (for utilization
// reporting).
func (d *Driver) EngineDMA() *sim.Engine { return d.dma }

// AllocManaged reserves a unified (cudaMallocManaged) allocation. No
// physical memory is committed; first touch populates it (§2.2).
func (d *Driver) AllocManaged(name string, size units.Size) (*vaspace.Alloc, error) {
	return d.space.Alloc(name, size)
}

// FreeManaged releases a managed allocation: GPU-resident chunks go to the
// unused queue (dead data, reclaimable without transfer), host pages are
// released, VA space is forgotten.
func (d *Driver) FreeManaged(a *vaspace.Alloc) error {
	if a.Freed() {
		return fmt.Errorf("core: free of already-freed %s", a.Name())
	}
	for i := 0; i < a.NumBlocks(); i++ {
		b := a.Block(i)
		if b.Chunk != nil {
			dev := d.devs[b.GPUIndex]
			dev.Detach(b.Chunk)
			// Freeing tears down the VA range and its mappings with it,
			// so a lazily discarded chunk's deferred unmap (§5.6) no
			// longer applies at reclaim time; leaving the marker set
			// would charge a phantom unmap when the unused chunk is
			// reused.
			b.Chunk.NeedsUnmapOnReclaim = false
			b.Chunk.Owner = nil
			dev.PushUnused(b.Chunk)
			b.Chunk = nil
		}
		if b.CPUHasPages {
			if b.CPUPinned {
				d.host.Unpin(b.Bytes())
			}
			d.host.Release(b.Bytes())
		}
		b.Residency = vaspace.Untouched
		b.CPUHasPages, b.CPUPinned, b.CPUStale = false, false, false
		b.GPUMapped, b.CPUMapped = false, false
		b.Discarded, b.LazyDiscard = false, false
		b.Degraded = false
		b.LivePages = 0
	}
	if err := d.space.Free(a); err != nil {
		return err
	}
	d.verify("FreeManaged")
	return nil
}

// MallocDevice claims chunks for a classic (non-UVM) device buffer; they
// come out of the free queue permanently until FreeDevice. This is the
// Listing 1 / Listing 4 programming model: it fails when the buffer does
// not fit in the remaining GPU memory.
func (d *Driver) MallocDevice(size units.Size) ([]*gpudev.Chunk, error) {
	n := units.BlocksIn(size)
	dev := d.devs[0]
	if n > dev.QueueLen(gpudev.QueueFree) {
		return nil, fmt.Errorf("core: cudaMalloc of %s fails: out of GPU memory (%d free chunks)",
			units.Format(size), dev.QueueLen(gpudev.QueueFree))
	}
	chunks := make([]*gpudev.Chunk, n)
	for i := range chunks {
		c := dev.PopFree()
		if c == nil {
			// Roll back: should be impossible after the check above.
			for _, cc := range chunks[:i] {
				dev.PushFree(cc)
			}
			return nil, fmt.Errorf("core: free queue underflow")
		}
		chunks[i] = c
	}
	d.deviceAllocBytes += units.Size(n) * units.BlockSize
	d.deviceChunkCount += n
	for _, c := range chunks {
		c.DeviceBuffer = true
	}
	d.verify("MallocDevice")
	return chunks, nil
}

// FreeDevice returns cudaMalloc'd chunks to the free queue. Chunks that are
// not currently tracked as device allocations — a double free, or a chunk
// that never came from MallocDevice — are ignored: pushing them would
// corrupt the free queue and underflow the byte counter.
func (d *Driver) FreeDevice(chunks []*gpudev.Chunk) {
	for _, c := range chunks {
		if !c.DeviceBuffer {
			continue
		}
		c.DeviceBuffer = false
		d.deviceChunkCount--
		d.devs[0].PushFree(c)
		d.deviceAllocBytes -= units.BlockSize
	}
	d.verify("FreeDevice")
}

// DeviceAllocBytes returns bytes currently held by non-UVM device buffers.
func (d *Driver) DeviceAllocBytes() units.Size { return d.deviceAllocBytes }

// ExplicitCopy times a cudaMemcpy of n bytes in the given direction (the
// No-UVM programming model's transfers), returning the completion time.
// Injected DMA failures are retried with backoff; once the budget is
// exhausted the copy drains through the PIO path at remote-access cost. The
// bytes are accounted exactly once regardless of how many attempts fail.
func (d *Driver) ExplicitCopy(dir metrics.Direction, n units.Size, now sim.Time) sim.Time {
	if n == 0 {
		return now
	}
	d.checkpoint("ExplicitCopy", now)
	end, ok := d.reserveTransfer(d.dma, faultinject.LinkPCIe, d.link.TransferTime(uint64(n)), now)
	if !ok {
		_, end = d.dma.Reserve(end, d.scaleDMA(d.link.RemoteAccessTime(uint64(n)), end))
		d.m.AddDegraded(uint64(n))
	}
	d.m.AddTransfer(dir, metrics.CauseMemcpy, uint64(n))
	return end
}

// record emits a trace event if tracing is on.
func (d *Driver) record(t sim.Time, kind trace.Kind, b *vaspace.Block, bytes units.Size) {
	if d.tr == nil {
		return
	}
	d.tr.Record(trace.Event{
		T: t, Kind: kind, Alloc: b.Alloc.ID(), Block: b.Index, Bytes: uint64(bytes),
	})
}

package core

import (
	"os"
	"testing"
)

// TestMain turns the runtime sanitizer on for every driver any core test
// builds, checking the full invariant sweep after every driver operation.
// Tests that need a knob the sanitizer forbids (e.g. modeling the §5.2
// lazy-reuse hazard) opt into that behavior explicitly via Params.
func TestMain(m *testing.M) {
	EnableInvariantChecksForTests(1)
	os.Exit(m.Run())
}

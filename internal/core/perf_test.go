package core

import (
	"testing"

	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/vaspace"
)

// Micro-benchmarks for the driver's hot paths — these bound how fast the
// simulator itself runs (simulated block-operations per wall-second), which
// matters because the DL sweeps push hundreds of thousands of block ops per
// experiment.

func benchDriver(b *testing.B, blocks int) (*Driver, *vaspace.Alloc) {
	b.Helper()
	d, err := New(Config{GPU: gpudev.Generic(units.Size(blocks) * units.BlockSize)})
	if err != nil {
		b.Fatal(err)
	}
	a, err := d.AllocManaged("bench", units.Size(blocks/2)*units.BlockSize)
	if err != nil {
		b.Fatal(err)
	}
	return d, a
}

func BenchmarkDriverResidentHit(b *testing.B) {
	d, a := benchDriver(b, 256)
	if _, err := d.GPUAccess(a.Blocks(), Write, 0); err != nil {
		b.Fatal(err)
	}
	blocks := a.Blocks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.GPUAccess(blocks, Read, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(blocks)*b.N)/b.Elapsed().Seconds(), "blockops/s")
}

func BenchmarkDriverMigrationPingPong(b *testing.B) {
	d, a := benchDriver(b, 256)
	blocks := a.Blocks()
	d.CPUAccess(blocks, Write, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.GPUAccess(blocks, Read, 0); err != nil {
			b.Fatal(err)
		}
		d.CPUAccess(blocks, Read, 0)
	}
	b.ReportMetric(float64(2*len(blocks)*b.N)/b.Elapsed().Seconds(), "blockops/s")
}

func BenchmarkDriverDiscardRecover(b *testing.B) {
	d, a := benchDriver(b, 256)
	if _, err := d.GPUAccess(a.Blocks(), Write, 0); err != nil {
		b.Fatal(err)
	}
	size := uint64(a.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Discard(a, 0, size, 0); err != nil {
			b.Fatal(err)
		}
		if _, err := d.PrefetchToGPU(a, 0, size, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDriverEvictionChurn(b *testing.B) {
	// Footprint 2x capacity: every access round is all-miss with LRU
	// evictions — the simulator's worst case.
	d, err := New(Config{GPU: gpudev.Generic(64 * units.BlockSize)})
	if err != nil {
		b.Fatal(err)
	}
	a, err := d.AllocManaged("churn", 128*units.BlockSize)
	if err != nil {
		b.Fatal(err)
	}
	blocks := a.Blocks()
	d.CPUAccess(blocks, Write, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.GPUAccess(blocks, Read, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(blocks)*b.N)/b.Elapsed().Seconds(), "blockops/s")
}

package core

import (
	"fmt"

	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/trace"
	"uvmdiscard/internal/vaspace"
)

// AccessMode describes how a processor uses a range: reading existing data,
// overwriting it without reading, or both. This is the application-level
// knowledge the RMT analysis keys on — UVM itself cannot observe it, which
// is exactly the semantic gap the discard directive bridges (§3.1).
type AccessMode int

const (
	// Read consumes the range's current contents.
	Read AccessMode = iota
	// Write overwrites the range without reading its previous contents.
	Write
	// ReadWrite reads then updates the range.
	ReadWrite
)

// String names the mode.
func (m AccessMode) String() string {
	switch m {
	case Read:
		return "R"
	case Write:
		return "W"
	case ReadWrite:
		return "RW"
	default:
		return fmt.Sprintf("AccessMode(%d)", int(m))
	}
}

func (m AccessMode) reads() bool  { return m == Read || m == ReadWrite }
func (m AccessMode) writes() bool { return m == Write || m == ReadWrite }

// GPUAccess services one GPU-side access to a set of blocks during kernel
// execution: non-resident blocks fault in (with batched fault service and
// coalesced migrations), resident blocks update LRU recency. It returns the
// time the access can proceed.
//
// Lazily discarded blocks that are still resident are touched silently —
// the hardware has no per-PTE dirty bits, so the driver never observes the
// access and the block stays discarded (§5.2). A write through such a
// mapping is the protocol hazard UvmDiscardLazy documents: issue the
// mandatory prefetch first.
func (d *Driver) GPUAccess(blocks []*vaspace.Block, mode AccessMode, now sim.Time) (sim.Time, error) {
	return d.GPUAccessOn(0, blocks, mode, now)
}

// GPUAccessOn is GPUAccess targeted at a specific GPU (multi-GPU systems):
// blocks resident on a peer migrate over the peer fabric.
func (d *Driver) GPUAccessOn(gpu int, blocks []*vaspace.Block, mode AccessMode, now sim.Time) (sim.Time, error) {
	d.checkpoint("GPUAccess", now)
	now = d.maybePoison(now)
	done, err := d.ensureGPUBlocks(blocks, now, metrics.CauseFault, true, gpu)
	if err != nil {
		return done, err
	}
	for _, b := range blocks {
		if mode.reads() {
			d.record(done, trace.GPURead, b, b.Bytes())
		}
		if mode.writes() {
			d.record(done, trace.GPUWrite, b, b.Bytes())
			if isDuplicated(b) {
				// A write to a read-mostly duplicate collapses it: the
				// host copy is dropped (§ SetReadMostly semantics).
				done = d.collapseDupToGPU(b, done)
			} else if b.Residency == vaspace.GPUResident && b.Chunk != nil {
				b.CPUStale = true
			}
		}
	}
	d.verify("GPUAccess")
	return done, nil
}

// CPUAccess services host-side accesses: GPU-resident data migrates back
// (or is reclaimed without a transfer if discarded), untouched blocks
// populate zero-filled host pages. A write revives a discarded block — a
// value written after the discard is guaranteed to be seen (§4.1).
func (d *Driver) CPUAccess(blocks []*vaspace.Block, mode AccessMode, now sim.Time) sim.Time {
	cur := d.maybePoison(now)
	for _, b := range blocks {
		cur = d.cpuAccessBlock(b, mode, cur)
	}
	d.verify("CPUAccess")
	return cur
}

// CPUAccessRange is CPUAccess over [off, off+length) of one allocation,
// visiting the covered blocks by index instead of requiring the caller to
// materialize a block list — the host-access path for large buffers, where
// building a multi-thousand-entry []*Block per call dominated allocations.
func (d *Driver) CPUAccessRange(a *vaspace.Alloc, off, length uint64, mode AccessMode, now sim.Time) (sim.Time, error) {
	first, last, err := a.BlockSpan(off, length, false)
	if err != nil {
		return now, err
	}
	cur := d.maybePoison(now)
	for i := first; i <= last; i++ {
		cur = d.cpuAccessBlock(a.Block(i), mode, cur)
	}
	d.verify("CPUAccess")
	return cur, nil
}

// cpuAccessBlock services one block of a host-side access: the shared body
// of CPUAccess and CPUAccessRange.
func (d *Driver) cpuAccessBlock(b *vaspace.Block, mode AccessMode, cur sim.Time) sim.Time {
	d.checkpoint("CPUAccess", cur)
	cur = d.ensureCPUBlock(b, cur, metrics.CauseFault, mode.writes())
	if mode.reads() {
		d.record(cur, trace.CPURead, b, b.Bytes())
	}
	if mode.writes() {
		d.record(cur, trace.CPUWrite, b, b.Bytes())
		if isDuplicated(b) {
			// A host write to a read-mostly duplicate collapses it:
			// the GPU copy is dropped.
			cur = d.collapseDupToCPU(b, cur)
		}
		b.Discarded, b.LazyDiscard = false, false
	}
	return cur
}

// PrefetchToGPU implements cudaMemPrefetchAsync toward the GPU: it
// pre-faults the covered blocks so subsequent kernel accesses are local
// (§2.1), migrating CPU-resident data, zero-populating untouched or
// discarded regions, and recovering still-resident discarded chunks. Under
// UvmDiscardLazy this prefetch is also the mandatory operation that re-sets
// the software dirty bits (§5.2).
func (d *Driver) PrefetchToGPU(a *vaspace.Alloc, off, length uint64, now sim.Time) (sim.Time, error) {
	return d.PrefetchToGPUOn(0, a, off, length, now)
}

// PrefetchToGPUOn prefetches toward a specific GPU.
func (d *Driver) PrefetchToGPUOn(gpu int, a *vaspace.Alloc, off, length uint64, now sim.Time) (sim.Time, error) {
	d.checkpoint("PrefetchToGPU", now)
	blocks, err := a.AppendBlockRange(d.rangeScratch[:0], off, length, false)
	d.rangeScratch = blocks[:0]
	if err != nil {
		return now, err
	}
	done, err := d.ensureGPUBlocks(blocks, now, metrics.CausePrefetch, false, gpu)
	if err != nil {
		return done, err
	}
	d.verify("PrefetchToGPU")
	return done, nil
}

// PrefetchToCPU migrates the covered blocks toward the host.
func (d *Driver) PrefetchToCPU(a *vaspace.Alloc, off, length uint64, now sim.Time) (sim.Time, error) {
	blocks, err := a.AppendBlockRange(d.rangeScratch[:0], off, length, false)
	d.rangeScratch = blocks[:0]
	if err != nil {
		return now, err
	}
	cur := now
	for _, b := range blocks {
		d.checkpoint("PrefetchToCPU", cur)
		cur = d.ensureCPUBlock(b, cur, metrics.CausePrefetch, false)
	}
	d.verify("PrefetchToCPU")
	return cur, nil
}

package core

import (
	"math"
	"sort"

	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
)

// CostCurve maps a buffer size to a host-side API cost by piecewise-linear
// interpolation in (log2 size, cost) space between calibration anchors.
// Below the first anchor the cost is clamped to the first anchor's value
// (small calls are dominated by fixed overhead); above the last anchor the
// final segment's per-byte slope extrapolates linearly in bytes.
type CostCurve struct {
	name    string
	anchors []costAnchor
}

type costAnchor struct {
	bytes units.Size
	cost  sim.Time
}

// NewCostCurve builds a curve from (size, cost) anchors; anchors need not
// be sorted but sizes must be distinct and positive.
func NewCostCurve(name string, anchors map[units.Size]sim.Time) *CostCurve {
	c := &CostCurve{name: name}
	for b, t := range anchors {
		if b == 0 {
			panic("core: zero-size cost anchor")
		}
		c.anchors = append(c.anchors, costAnchor{b, t})
	}
	if len(c.anchors) < 2 {
		panic("core: cost curve needs at least two anchors")
	}
	sort.Slice(c.anchors, func(i, j int) bool { return c.anchors[i].bytes < c.anchors[j].bytes })
	return c
}

// Name returns the curve's API name.
func (c *CostCurve) Name() string { return c.name }

// Eval returns the modeled cost of one API call covering n bytes.
func (c *CostCurve) Eval(n units.Size) sim.Time {
	if n == 0 {
		return 0
	}
	first := c.anchors[0]
	if n <= first.bytes {
		return first.cost
	}
	last := c.anchors[len(c.anchors)-1]
	if n >= last.bytes {
		// Linear-in-bytes extrapolation using the final segment's slope.
		prev := c.anchors[len(c.anchors)-2]
		slope := float64(last.cost-prev.cost) / float64(last.bytes-prev.bytes)
		extra := slope * float64(n-last.bytes)
		if extra < 0 {
			extra = 0
		}
		return last.cost + sim.Time(extra)
	}
	// Interpolate in log2(bytes).
	i := sort.Search(len(c.anchors), func(i int) bool { return c.anchors[i].bytes >= n })
	lo, hi := c.anchors[i-1], c.anchors[i]
	f := (math.Log2(float64(n)) - math.Log2(float64(lo.bytes))) /
		(math.Log2(float64(hi.bytes)) - math.Log2(float64(lo.bytes)))
	return lo.cost + sim.Time(f*float64(hi.cost-lo.cost))
}

// APICosts bundles the host-side cost models for the CUDA calls the paper
// measures in Table 2, plus the calls the runtime needs that Table 2 does
// not cover. Anchor values are the paper's measurements on the 3080 Ti
// platform.
type APICosts struct {
	// Malloc is cudaMalloc (device buffer allocation).
	Malloc *CostCurve
	// Free is cudaFree.
	Free *CostCurve
	// Discard is the eager UvmDiscard call (PTE destruction included in
	// the measured call cost).
	Discard *CostCurve
	// DiscardLazy is UvmDiscardLazy: clearing software dirty bits only,
	// roughly an order of magnitude cheaper than Discard.
	DiscardLazy *CostCurve
	// MallocManaged is cudaMallocManaged: VA-space reservation only.
	MallocManaged *CostCurve
	// PrefetchIssue is the host-side cost to enqueue one
	// cudaMemPrefetchAsync (the transfer itself is asynchronous).
	PrefetchIssue sim.Time
	// KernelLaunch is the host-side cost to enqueue a kernel.
	KernelLaunch sim.Time
}

// sharedDefaultCosts is the one instance handed to every driver built with
// Config.Costs == nil. CostCurves are immutable after NewCostCurve and
// APICosts fields are never written post-construction, so sharing is safe;
// it avoids rebuilding (and re-sorting) the Table 2 anchor tables per run.
// DefaultAPICosts itself still returns a fresh value so external callers
// that do want a private copy keep getting one.
var sharedDefaultCosts = DefaultAPICosts()

// DefaultAPICosts returns curves anchored on Table 2.
func DefaultAPICosts() *APICosts {
	return &APICosts{
		Malloc: NewCostCurve("cudaMalloc", map[units.Size]sim.Time{
			2 * units.MiB:   sim.Micros(48),
			8 * units.MiB:   sim.Micros(184),
			32 * units.MiB:  sim.Micros(726),
			128 * units.MiB: sim.Micros(939),
		}),
		Free: NewCostCurve("cudaFree", map[units.Size]sim.Time{
			2 * units.MiB:   sim.Micros(32),
			8 * units.MiB:   sim.Micros(38),
			32 * units.MiB:  sim.Micros(63),
			128 * units.MiB: sim.Micros(1184),
		}),
		Discard: NewCostCurve("UvmDiscard", map[units.Size]sim.Time{
			2 * units.MiB:   sim.Micros(4),
			8 * units.MiB:   sim.Micros(7),
			32 * units.MiB:  sim.Micros(20),
			128 * units.MiB: sim.Micros(70),
		}),
		DiscardLazy: NewCostCurve("UvmDiscardLazy", map[units.Size]sim.Time{
			2 * units.MiB:   sim.Micros(0.6),
			8 * units.MiB:   sim.Micros(0.9),
			32 * units.MiB:  sim.Micros(2.2),
			128 * units.MiB: sim.Micros(7),
		}),
		MallocManaged: NewCostCurve("cudaMallocManaged", map[units.Size]sim.Time{
			2 * units.MiB: sim.Micros(9),
			units.GiB:     sim.Micros(30),
		}),
		PrefetchIssue: sim.Micros(6),
		KernelLaunch:  sim.Micros(7),
	}
}

package gpudev

import (
	"testing"

	"uvmdiscard/internal/units"
)

// benchDevice builds a small device for queue micro-benchmarks: 128 chunks,
// no reservation.
func benchDevice(tb testing.TB) *Device {
	tb.Helper()
	d, err := NewDevice(Generic(256*units.MiB), 0)
	if err != nil {
		tb.Fatal(err)
	}
	return d
}

// The queue operations below are the driver's per-fault and per-eviction
// inner loop (§5.5): every GPU page fault pops a chunk, every eviction
// detaches and re-queues one. They must stay allocation-free — the chunk
// lists are int32 indices into the device's flat chunk array precisely so
// that steady-state migration touches no allocator.

func BenchmarkPopFreePushUsed(b *testing.B) {
	d := benchDevice(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := d.PopFree()
		d.PushUsed(c)
		d.Detach(c)
		d.PushFree(c)
	}
}

func BenchmarkDetachRequeue(b *testing.B) {
	d := benchDevice(b)
	// One resident chunk cycling through the dead-data queues, as a
	// discard followed by a repurposing fault does.
	c := d.PopFree()
	d.PushUsed(c)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Detach(c)
		d.PushDiscarded(c)
		d.Detach(c)
		d.PushUnused(c)
		d.Detach(c)
		d.PushUsed(c)
	}
}

func BenchmarkLRUVictim(b *testing.B) {
	d := benchDevice(b)
	for d.QueueLen(QueueFree) > 0 {
		d.PushUsed(d.PopFree())
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := d.LRUVictim()
		if v == nil {
			b.Fatal("no LRU victim with a full used queue")
		}
		d.Touch(v) // rotate so the scan stays warm
	}
}

func BenchmarkTouchMRU(b *testing.B) {
	d := benchDevice(b)
	for d.QueueLen(QueueFree) > 0 {
		d.PushUsed(d.PopFree())
	}
	c := d.LRUVictim()
	d.Touch(c)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Touch(c) // already MRU: the fast path every warm re-access takes
	}
}

func BenchmarkTouchRotate(b *testing.B) {
	d := benchDevice(b)
	for d.QueueLen(QueueFree) > 0 {
		d.PushUsed(d.PopFree())
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Touch(d.LRUVictim()) // coldest to hottest: the unlink+relink path
	}
}

// TestQueueOpsAllocFree pins the zero-allocation property the benchmarks
// above measure, so a regression fails `go test` rather than only showing
// up in a benchmark diff.
func TestQueueOpsAllocFree(t *testing.T) {
	d := benchDevice(t)
	if allocs := testing.AllocsPerRun(100, func() {
		c := d.PopFree()
		d.PushUsed(c)
		d.Detach(c)
		d.PushFree(c)
	}); allocs != 0 {
		t.Errorf("pop/push cycle allocates %v times per run, want 0", allocs)
	}

	for d.QueueLen(QueueFree) > 0 {
		d.PushUsed(d.PopFree())
	}
	if allocs := testing.AllocsPerRun(100, func() {
		v := d.LRUVictim()
		d.Touch(v)
		d.Touch(v) // MRU fast path
	}); allocs != 0 {
		t.Errorf("LRU victim + touch allocates %v times per run, want 0", allocs)
	}
}

package gpudev

import (
	"fmt"

	"uvmdiscard/internal/units"
)

// Device is the physical-memory side of one GPU: a fixed pool of 2 MiB
// chunks distributed across the driver's page queues. The device is purely
// mechanical — *which* chunk moves *where* and *when* is decided by the UVM
// driver in internal/core; the device enforces the queue invariants.
type Device struct {
	profile   Profile
	chunks    []Chunk
	free      chunkList
	unused    chunkList
	used      chunkList // head = LRU, tail = MRU
	discarded chunkList
	reserved  chunkList
	poisoned  chunkList
}

// NewDevice builds a device from a profile, with reservedBytes of capacity
// pinned away to model an idle co-resident program (the paper's mechanism
// for forcing oversubscription ratios, §7.1). reservedBytes is rounded up to
// whole chunks and must leave at least one chunk available.
func NewDevice(profile Profile, reservedBytes units.Size) (*Device, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	total := int(profile.MemoryBytes / units.BlockSize)
	res := units.BlocksIn(reservedBytes)
	if res >= total {
		return nil, fmt.Errorf("gpudev: reservation %s leaves no usable memory on %s (%d chunks)",
			units.Format(reservedBytes), profile.Name, total)
	}
	d := &Device{profile: profile, chunks: make([]Chunk, total)}
	for _, l := range []*chunkList{&d.free, &d.unused, &d.used, &d.discarded, &d.reserved, &d.poisoned} {
		l.init()
	}
	for i := range d.chunks {
		d.chunks[i].id = int32(i)
	}
	d.linkRange(&d.reserved, 0, res, QueueReserved)
	d.linkRange(&d.free, res, total, QueueFree)
	return d, nil
}

// linkRange threads chunks [lo, hi) onto l in index order with direct
// prev/next stores — the same list shape hi-lo pushTail calls would build.
// Experiment sweeps construct thousands of devices with tens of thousands of
// chunks each, so initialization is linked arithmetically instead of through
// the per-chunk push path.
func (d *Device) linkRange(l *chunkList, lo, hi int, k QueueKind) {
	if lo >= hi {
		return
	}
	for i := lo; i < hi; i++ {
		d.chunks[i].queue = k
		d.chunks[i].prev = int32(i - 1)
		d.chunks[i].next = int32(i + 1)
	}
	d.chunks[lo].prev = noChunk
	d.chunks[hi-1].next = noChunk
	l.head, l.tail = int32(lo), int32(hi-1)
	l.size = hi - lo
}

// Profile returns the device's hardware profile.
func (d *Device) Profile() *Profile { return &d.profile }

// TotalChunks returns the number of chunks the device manages, including
// reserved ones.
func (d *Device) TotalChunks() int { return len(d.chunks) }

// UsableChunks returns the chunks available to the application (total minus
// reserved and minus any chunks retired to the poisoned queue).
func (d *Device) UsableChunks() int {
	return len(d.chunks) - d.reserved.size - d.poisoned.size
}

// UsableBytes returns the application-visible capacity in bytes.
func (d *Device) UsableBytes() units.Size {
	return units.Size(d.UsableChunks()) * units.BlockSize
}

// QueueLen returns the current length of a queue.
func (d *Device) QueueLen(k QueueKind) int {
	switch k {
	case QueueFree:
		return d.free.size
	case QueueUnused:
		return d.unused.size
	case QueueUsed:
		return d.used.size
	case QueueDiscarded:
		return d.discarded.size
	case QueueReserved:
		return d.reserved.size
	case QueuePoisoned:
		return d.poisoned.size
	default:
		return 0
	}
}

// PopFree removes and returns a chunk from the free queue, or nil if empty.
func (d *Device) PopFree() *Chunk { return d.popFrom(&d.free) }

// PopUnused removes and returns the oldest chunk on the unused FIFO, or nil.
func (d *Device) PopUnused() *Chunk { return d.popFrom(&d.unused) }

// PopDiscarded removes and returns the oldest chunk on the discarded FIFO,
// or nil. FIFO order maximizes each discarded chunk's residence time so
// re-accesses can recover it cheaply (§5.5).
func (d *Device) PopDiscarded() *Chunk { return d.popFrom(&d.discarded) }

// LRUVictim returns (without removing) the least-recently-used chunk on the
// used queue, or nil if the queue is empty.
func (d *Device) LRUVictim() *Chunk {
	if d.used.head == noChunk {
		return nil
	}
	return &d.chunks[d.used.head]
}

func (d *Device) popFrom(l *chunkList) *Chunk {
	c := l.popHead(d.chunks)
	if c != nil {
		c.queue = QueueNone
	}
	return c
}

// Detach removes a chunk from whatever queue it is on, leaving it owned by
// the caller (queue = none). Used when the driver reclaims a specific chunk
// (e.g. the LRU victim, or recovery of a discarded chunk on re-access).
func (d *Device) Detach(c *Chunk) {
	switch c.queue {
	case QueueFree:
		d.free.remove(d.chunks, c)
	case QueueUnused:
		d.unused.remove(d.chunks, c)
	case QueueUsed:
		d.used.remove(d.chunks, c)
	case QueueDiscarded:
		d.discarded.remove(d.chunks, c)
	case QueueReserved:
		d.reserved.remove(d.chunks, c)
	case QueuePoisoned:
		// Poison retires a chunk permanently: ECC page retirement has no
		// un-retire, so nothing may pull it back into service.
		panic(fmt.Sprintf("gpudev: detaching poisoned chunk %d: retired chunks never leave quarantine", c.id))
	case QueueNone:
		panic("gpudev: detaching chunk that is already detached")
	}
	c.queue = QueueNone
}

// PushUsed places a detached chunk at the MRU end of the used queue.
func (d *Device) PushUsed(c *Chunk) { d.pushTo(&d.used, c, QueueUsed) }

// PushUnused places a detached chunk on the unused FIFO.
func (d *Device) PushUnused(c *Chunk) { d.pushTo(&d.unused, c, QueueUnused) }

// PushDiscarded places a detached chunk on the discarded FIFO.
func (d *Device) PushDiscarded(c *Chunk) { d.pushTo(&d.discarded, c, QueueDiscarded) }

// PushPoisoned quarantines a detached chunk hit by an ECC-style
// uncorrectable error: the chunk is retired from service with all per-use
// state cleared, reducing the device's usable capacity for the rest of the
// run. The eviction process never consults this queue.
func (d *Device) PushPoisoned(c *Chunk) {
	c.Owner = nil
	c.PreparedPages = 0
	c.NeedsUnmapOnReclaim = false
	d.pushTo(&d.poisoned, c, QueuePoisoned)
}

// PushFree returns a detached chunk to the free queue, clearing per-use
// state: a freed chunk has no owner, no preparedness, no pending unmap.
func (d *Device) PushFree(c *Chunk) {
	c.Owner = nil
	c.PreparedPages = 0
	c.NeedsUnmapOnReclaim = false
	d.pushTo(&d.free, c, QueueFree)
}

func (d *Device) pushTo(l *chunkList, c *Chunk, k QueueKind) {
	if c.queue != QueueNone {
		panic(fmt.Sprintf("gpudev: pushing chunk %d to %v while still on %v", c.id, k, c.queue))
	}
	c.queue = k
	l.pushTail(d.chunks, c)
}

// Touch records a use of a chunk on the used queue, moving it to the MRU
// end. Touching a chunk on any other queue is a driver bug.
func (d *Device) Touch(c *Chunk) {
	if c.queue != QueueUsed {
		panic(fmt.Sprintf("gpudev: touch of chunk %d on queue %v", c.id, c.queue))
	}
	if d.used.tail == c.id {
		return // already MRU: remove+push would be the identity
	}
	d.used.remove(d.chunks, c)
	c.queue = QueueNone
	d.PushUsed(c)
}

// EachUsed visits used-queue chunks from LRU to MRU; fn returning false
// stops the walk.
func (d *Device) EachUsed(fn func(*Chunk) bool) { d.used.forEach(d.chunks, fn) }

// EachChunk visits every chunk the device manages — whatever queue it is
// on, including detached (queue = none) chunks — in chunk-id order; fn
// returning false stops the walk. The core sanitizer uses this for its
// chunk-in-exactly-one-queue and byte-conservation sweeps.
func (d *Device) EachChunk(fn func(*Chunk) bool) {
	for i := range d.chunks {
		if !fn(&d.chunks[i]) {
			return
		}
	}
}

// EachDiscarded visits discarded-queue chunks in FIFO order.
func (d *Device) EachDiscarded(fn func(*Chunk) bool) { d.discarded.forEach(d.chunks, fn) }

// QueuedChunks returns the number of chunks currently on any queue, from
// the queues' O(1) size counters. TotalChunks() - QueuedChunks() is the
// number of detached chunks, which the incremental sanitizer checks against
// the driver's device-buffer accounting without walking the chunk array.
func (d *Device) QueuedChunks() int {
	return d.free.size + d.unused.size + d.used.size + d.discarded.size +
		d.reserved.size + d.poisoned.size
}

// ChunkByID returns the chunk with the given id, or an error when the id is
// out of range. It is the checkpoint-restore lookup: snapshot payloads name
// chunks by id, and a corrupt snapshot must produce an error, not an
// out-of-bounds panic.
func (d *Device) ChunkByID(id int32) (*Chunk, error) {
	if id < 0 || int(id) >= len(d.chunks) {
		return nil, fmt.Errorf("gpudev: chunk id %d outside [0,%d)", id, len(d.chunks))
	}
	return &d.chunks[id], nil
}

// AppendQueueIDs appends the ids of the chunks on queue k, in list order
// (head first), to dst and returns it. Checkpoint capture records every
// queue's exact order this way: FIFO position and LRU position are part of
// the simulation state, and a resumed run must replay evictions in the same
// order an uninterrupted one would.
func (d *Device) AppendQueueIDs(dst []int32, k QueueKind) []int32 {
	var l *chunkList
	switch k {
	case QueueFree:
		l = &d.free
	case QueueUnused:
		l = &d.unused
	case QueueUsed:
		l = &d.used
	case QueueDiscarded:
		l = &d.discarded
	case QueueReserved:
		l = &d.reserved
	case QueuePoisoned:
		l = &d.poisoned
	default:
		return dst
	}
	for i := l.head; i != noChunk; i = d.chunks[i].next {
		dst = append(dst, i)
	}
	return dst
}

// RestoreQueues relinks every queue to the exact sequences a checkpoint
// snapshot recorded, in head-to-tail order. Ids absent from every sequence
// are left detached (queue = none) — those are the cudaMalloc'd device
// buffers, which the driver accounts separately. All per-use chunk fields
// (Owner, PreparedPages, ...) are cleared; the caller reapplies them from the
// snapshot after relinking. The sequences are validated — every id in range
// and no id listed twice — and an invalid set of sequences returns an error
// with the device unmodified, so a corrupt snapshot can never half-restore a
// device.
func (d *Device) RestoreQueues(free, unused, used, discarded, reserved, poisoned []int32) error {
	seqs := []struct {
		l   *chunkList
		k   QueueKind
		ids []int32
	}{
		{&d.free, QueueFree, free}, {&d.unused, QueueUnused, unused},
		{&d.used, QueueUsed, used}, {&d.discarded, QueueDiscarded, discarded},
		{&d.reserved, QueueReserved, reserved}, {&d.poisoned, QueuePoisoned, poisoned},
	}
	seen := make([]bool, len(d.chunks))
	for _, q := range seqs {
		for _, id := range q.ids {
			if id < 0 || int(id) >= len(d.chunks) {
				return fmt.Errorf("gpudev: restore: %v queue names chunk %d outside [0,%d)",
					q.k, id, len(d.chunks))
			}
			if seen[id] {
				return fmt.Errorf("gpudev: restore: chunk %d listed on more than one queue", id)
			}
			seen[id] = true
		}
	}
	for i := range d.chunks {
		c := &d.chunks[i]
		c.queue = QueueNone
		c.prev, c.next = noChunk, noChunk
		c.Owner = nil
		c.PreparedPages = 0
		c.NeedsUnmapOnReclaim = false
		c.DeviceBuffer = false
	}
	for _, q := range seqs {
		q.l.init()
		q.l.size = 0
		for _, id := range q.ids {
			c := &d.chunks[id]
			c.queue = q.k
			q.l.pushTail(d.chunks, c)
		}
	}
	return nil
}

// CheckInvariants verifies that every chunk is on exactly the queue its
// state claims and that queue sizes add up. It is called from tests and is
// cheap enough to sprinkle into long simulations when debugging.
func (d *Device) CheckInvariants() error {
	sum := d.free.size + d.unused.size + d.used.size + d.discarded.size +
		d.reserved.size + d.poisoned.size
	detached := 0
	for i := range d.chunks {
		if d.chunks[i].queue == QueueNone {
			detached++
		}
	}
	if sum+detached != len(d.chunks) {
		return fmt.Errorf("gpudev: queue sizes %d + detached %d != total %d", sum, detached, len(d.chunks))
	}
	for _, q := range []struct {
		l *chunkList
		k QueueKind
	}{
		{&d.free, QueueFree}, {&d.unused, QueueUnused}, {&d.used, QueueUsed},
		{&d.discarded, QueueDiscarded}, {&d.reserved, QueueReserved},
		{&d.poisoned, QueuePoisoned},
	} {
		n := 0
		for i := q.l.head; i != noChunk; i = d.chunks[i].next {
			c := &d.chunks[i]
			if c.queue != q.k {
				return fmt.Errorf("gpudev: chunk %d on %v list claims queue %v", c.id, q.k, c.queue)
			}
			n++
		}
		if n != q.l.size {
			return fmt.Errorf("gpudev: %v list size %d but %d reachable", q.k, q.l.size, n)
		}
	}
	return nil
}

// Package gpudev models the GPU as the UVM driver sees it: a pool of 2 MiB
// physical chunks organized into the driver's page queues (free, unused,
// used, discarded — §5.5 of the paper), plus hardware rate parameters used
// for timing (local bandwidth, zero-fill engine, compute throughput).
package gpudev

import (
	"fmt"

	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
)

// Profile captures the hardware parameters of a GPU model that the
// experiments depend on. Rates are bytes/second unless noted.
type Profile struct {
	// Name is a display name, e.g. "RTX 3080 Ti".
	Name string
	// MemoryBytes is the usable GPU DRAM capacity. The paper's 3080 Ti
	// reports 11.77 GB usable out of 12 GB.
	MemoryBytes units.Size
	// LocalBandwidth is GPU DRAM bandwidth for on-device work.
	LocalBandwidth float64
	// ZeroBandwidthBlock is the copy-engine zero-fill rate when clearing a
	// whole 2 MiB chunk. Large contiguous zeroing is fast (§5.4).
	ZeroBandwidthBlock float64
	// ZeroBandwidthPage is the effective zero-fill rate when clearing
	// individual 4 KiB pages (sub-block work is much slower per byte).
	ZeroBandwidthPage float64
	// ComputeTFLOPS is peak single-precision throughput, used by workloads
	// to derive kernel durations.
	ComputeTFLOPS float64
	// FaultBatchLatency is the fixed cost of servicing one batch of GPU
	// page faults (replayable faults are reported to and handled by the
	// driver on the CPU).
	FaultBatchLatency sim.Time
	// FaultPerBlock is the additional driver cost per faulted 2 MiB block
	// within a batch.
	FaultPerBlock sim.Time
	// UnmapPerBlock is the cost to clear GPU PTEs and invalidate TLBs for
	// one 2 MiB block, including the interconnect round trip (§5.1).
	UnmapPerBlock sim.Time
	// MapPerBlock is the cost to establish GPU PTEs for one 2 MiB block.
	MapPerBlock sim.Time
}

// Validate reports whether the profile is internally consistent.
func (p *Profile) Validate() error {
	switch {
	case p.MemoryBytes < units.BlockSize:
		return fmt.Errorf("gpudev: profile %q has less than one block of memory", p.Name)
	case p.LocalBandwidth <= 0, p.ZeroBandwidthBlock <= 0, p.ZeroBandwidthPage <= 0:
		return fmt.Errorf("gpudev: profile %q has non-positive bandwidth", p.Name)
	case p.ComputeTFLOPS <= 0:
		return fmt.Errorf("gpudev: profile %q has non-positive compute rate", p.Name)
	case p.FaultBatchLatency < 0 || p.FaultPerBlock < 0 || p.UnmapPerBlock < 0 || p.MapPerBlock < 0:
		return fmt.Errorf("gpudev: profile %q has negative cost", p.Name)
	}
	return nil
}

// RTX3080Ti is the paper's primary evaluation GPU (§7.1): 12 GB card with
// 11.77 GB usable, ~912 GB/s local bandwidth, 34 TFLOPS.
func RTX3080Ti() Profile {
	return Profile{
		Name:               "RTX 3080 Ti",
		MemoryBytes:        11_770_000_000,
		LocalBandwidth:     912e9,
		ZeroBandwidthBlock: 400e9,
		ZeroBandwidthPage:  25e9,
		ComputeTFLOPS:      34,
		FaultBatchLatency:  sim.Micros(25),
		FaultPerBlock:      sim.Micros(6),
		UnmapPerBlock:      sim.Micros(2.2),
		MapPerBlock:        sim.Micros(3.0),
	}
}

// A100 is the data-center GPU §2.3 quotes: "the GPU local memory bandwidth
// is over 2 TB/s, but the GPU-to-GPU remote access bandwidth is limited to
// 600 GB/s ... the GPU-to-CPU remote access bandwidth is limited to
// 25 GB/s." 80 GB SXM variant.
func A100() Profile {
	return Profile{
		Name:               "A100 80GB",
		MemoryBytes:        80_000_000_000,
		LocalBandwidth:     2039e9,
		ZeroBandwidthBlock: 900e9,
		ZeroBandwidthPage:  50e9,
		ComputeTFLOPS:      19.5,
		FaultBatchLatency:  sim.Micros(22),
		FaultPerBlock:      sim.Micros(5),
		UnmapPerBlock:      sim.Micros(2.0),
		MapPerBlock:        sim.Micros(2.6),
	}
}

// GTX1070 is the GPU used for Table 1 (8 GB, PCIe-3 era).
func GTX1070() Profile {
	return Profile{
		Name:               "GTX 1070",
		MemoryBytes:        8_106_000_000,
		LocalBandwidth:     256e9,
		ZeroBandwidthBlock: 120e9,
		ZeroBandwidthPage:  10e9,
		ComputeTFLOPS:      6.5,
		FaultBatchLatency:  sim.Micros(35),
		FaultPerBlock:      sim.Micros(8),
		UnmapPerBlock:      sim.Micros(2.8),
		MapPerBlock:        sim.Micros(3.8),
	}
}

// Generic returns a small synthetic GPU, convenient for tests: capacity is
// rounded down to whole blocks.
func Generic(memory units.Size) Profile {
	return Profile{
		Name:               "Generic",
		MemoryBytes:        memory,
		LocalBandwidth:     500e9,
		ZeroBandwidthBlock: 300e9,
		ZeroBandwidthPage:  20e9,
		ComputeTFLOPS:      10,
		FaultBatchLatency:  sim.Micros(25),
		FaultPerBlock:      sim.Micros(6),
		UnmapPerBlock:      sim.Micros(2.2),
		MapPerBlock:        sim.Micros(3.0),
	}
}

// ZeroTimeBlock returns the time to zero-fill one whole 2 MiB chunk.
func (p *Profile) ZeroTimeBlock() sim.Time {
	return sim.TransferTime(uint64(units.BlockSize), p.ZeroBandwidthBlock)
}

// ZeroTimePages returns the time to zero-fill n 4 KiB pages individually.
func (p *Profile) ZeroTimePages(n int) sim.Time {
	return sim.TransferTime(uint64(n)*uint64(units.PageSize), p.ZeroBandwidthPage)
}

package gpudev

import "fmt"

// QueueKind identifies which of the driver's physical page queues a chunk is
// on (§5.5).
type QueueKind int

const (
	// QueueNone means the chunk is not tracked by the device (never the
	// case for chunks owned by a Device).
	QueueNone QueueKind = iota
	// QueueFree holds chunks readily available for allocation.
	QueueFree
	// QueueUnused is a FIFO of leftover chunks from the eviction process;
	// they hold no useful data and can be reclaimed without a transfer.
	QueueUnused
	// QueueUsed is the pseudo-LRU queue of chunks in active use. Eviction
	// from here swaps the contents out to the CPU (a D2H transfer).
	QueueUsed
	// QueueDiscarded is the FIFO added by the paper: chunks whose contents
	// were discarded. Reclaimable without a transfer; FIFO order maximizes
	// the window for cheap recovery on re-access (§5.5).
	QueueDiscarded
	// QueueReserved holds chunks pinned by the oversubscription knob
	// (modeling the paper's idle GPU-memory-occupying program).
	QueueReserved
	// QueuePoisoned quarantines chunks hit by an ECC-style uncorrectable
	// error (fault injection): they are retired from service, excluded
	// from the eviction order, and never return to the free queue. The
	// sanitizer's conservation sweep still counts them against capacity.
	QueuePoisoned
)

// String returns a short queue name.
func (k QueueKind) String() string {
	switch k {
	case QueueNone:
		return "none"
	case QueueFree:
		return "free"
	case QueueUnused:
		return "unused"
	case QueueUsed:
		return "used"
	case QueueDiscarded:
		return "discarded"
	case QueueReserved:
		return "reserved"
	case QueuePoisoned:
		return "poisoned"
	default:
		return fmt.Sprintf("QueueKind(%d)", int(k))
	}
}

// Chunk is one 2 MiB GPU physical page. Chunks are owned by a Device and
// live on exactly one queue at all times.
//
// Queue links are int32 indices into the owning Device's chunk array
// rather than pointers. The chunk pool is a single fixed-size slice, so an
// index identifies a chunk as well as a pointer does — and moving a chunk
// between queues then writes only plain integers, which keeps the GC's
// write barrier entirely off the driver's hottest path (queue pushes and
// LRU touches showed up as wbBufFlush time in the PR 9 CPU profile).
type Chunk struct {
	id    int32
	queue QueueKind
	prev  int32 // index of previous chunk on the queue, or noChunk
	next  int32 // index of next chunk on the queue, or noChunk

	// Owner is an opaque back-pointer set by the driver to the virtual
	// block currently mapped to this chunk (nil when unowned). The device
	// never interprets it; it exists so eviction can find the victim's
	// virtual state without an O(n) search.
	Owner any

	// PreparedPages counts how many of the chunk's 512 4 KiB pages have
	// been zeroed or migrated into since allocation (§5.7). A chunk is
	// "fully prepared" when PreparedPages == units.PagesPerBlock.
	PreparedPages int

	// NeedsUnmapOnReclaim marks a lazily-discarded chunk whose GPU
	// mappings still exist; reclaiming it must pay the unmap cost that
	// UvmDiscard would have paid eagerly (§5.6).
	NeedsUnmapOnReclaim bool

	// DeviceBuffer marks a chunk held by a classic (non-UVM) cudaMalloc
	// device buffer: detached from every queue until cudaFree returns it.
	// The driver sets and clears it (core MallocDevice/FreeDevice); it
	// replaces the old side-table of device-buffer chunks so membership
	// tests are a field load instead of a map probe.
	DeviceBuffer bool
}

// noChunk is the nil value of a chunk-index link.
const noChunk int32 = -1

// ID returns the chunk's index within its device.
func (c *Chunk) ID() int { return int(c.id) }

// Queue returns the queue the chunk currently occupies.
func (c *Chunk) Queue() QueueKind { return c.queue }

// chunkList is an intrusive doubly-linked list over a device's chunk
// array, linked by indices. The head is the next element to pop; pushes go
// to the tail. For the used queue this makes the head the LRU side and the
// tail the MRU side. Every operation takes the owning device's chunk slice
// to resolve links.
type chunkList struct {
	head, tail int32
	size       int
}

func (l *chunkList) init() {
	l.head, l.tail = noChunk, noChunk
}

func (l *chunkList) pushTail(chunks []Chunk, c *Chunk) {
	c.prev, c.next = l.tail, noChunk
	if l.tail != noChunk {
		chunks[l.tail].next = c.id
	} else {
		l.head = c.id
	}
	l.tail = c.id
	l.size++
}

func (l *chunkList) remove(chunks []Chunk, c *Chunk) {
	if c.prev != noChunk {
		chunks[c.prev].next = c.next
	} else {
		l.head = c.next
	}
	if c.next != noChunk {
		chunks[c.next].prev = c.prev
	} else {
		l.tail = c.prev
	}
	c.prev, c.next = noChunk, noChunk
	l.size--
}

func (l *chunkList) popHead(chunks []Chunk) *Chunk {
	if l.head == noChunk {
		return nil
	}
	c := &chunks[l.head]
	l.remove(chunks, c)
	return c
}

// forEach visits chunks from head (next-to-pop / LRU) to tail.
func (l *chunkList) forEach(chunks []Chunk, fn func(*Chunk) bool) {
	for i := l.head; i != noChunk; {
		c := &chunks[i]
		next := c.next // fn may move c to another list
		if !fn(c) {
			return
		}
		i = next
	}
}

package gpudev

import (
	"testing"
	"testing/quick"

	"uvmdiscard/internal/units"
)

func newTestDevice(t *testing.T, blocks int, reservedBlocks int) *Device {
	t.Helper()
	d, err := NewDevice(Generic(units.Size(blocks)*units.BlockSize),
		units.Size(reservedBlocks)*units.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestProfilesValidate(t *testing.T) {
	for _, p := range []Profile{RTX3080Ti(), GTX1070(), Generic(units.GiB)} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestProfileValidationErrors(t *testing.T) {
	bad := Generic(units.GiB)
	bad.MemoryBytes = units.KiB
	if bad.Validate() == nil {
		t.Error("tiny memory accepted")
	}
	bad = Generic(units.GiB)
	bad.LocalBandwidth = 0
	if bad.Validate() == nil {
		t.Error("zero bandwidth accepted")
	}
	bad = Generic(units.GiB)
	bad.ComputeTFLOPS = -1
	if bad.Validate() == nil {
		t.Error("negative compute accepted")
	}
	bad = Generic(units.GiB)
	bad.UnmapPerBlock = -1
	if bad.Validate() == nil {
		t.Error("negative cost accepted")
	}
}

func TestZeroTimes(t *testing.T) {
	p := RTX3080Ti()
	// Whole-block zeroing must be faster per byte than page-wise zeroing.
	blockRate := float64(units.BlockSize) / p.ZeroTimeBlock().Seconds()
	pageRate := float64(units.BlockSize) / p.ZeroTimePages(units.PagesPerBlock).Seconds()
	if blockRate <= pageRate {
		t.Errorf("block zero rate %v not faster than page-wise %v", blockRate, pageRate)
	}
	if p.ZeroTimePages(0) != 0 {
		t.Error("zeroing 0 pages should be free")
	}
}

func TestNewDeviceReservation(t *testing.T) {
	d := newTestDevice(t, 10, 4)
	if d.TotalChunks() != 10 {
		t.Errorf("total = %d", d.TotalChunks())
	}
	if d.UsableChunks() != 6 {
		t.Errorf("usable = %d", d.UsableChunks())
	}
	if d.UsableBytes() != 6*units.BlockSize {
		t.Errorf("usable bytes = %d", d.UsableBytes())
	}
	if d.QueueLen(QueueReserved) != 4 || d.QueueLen(QueueFree) != 6 {
		t.Errorf("queues: reserved=%d free=%d", d.QueueLen(QueueReserved), d.QueueLen(QueueFree))
	}
	if err := d.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestNewDeviceRejectsFullReservation(t *testing.T) {
	if _, err := NewDevice(Generic(4*units.BlockSize), 4*units.BlockSize); err == nil {
		t.Error("full reservation accepted")
	}
	if _, err := NewDevice(Generic(4*units.BlockSize), 5*units.BlockSize); err == nil {
		t.Error("over-reservation accepted")
	}
}

func TestQueueKindString(t *testing.T) {
	names := map[QueueKind]string{
		QueueNone: "none", QueueFree: "free", QueueUnused: "unused",
		QueueUsed: "used", QueueDiscarded: "discarded", QueueReserved: "reserved",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if QueueKind(99).String() == "" {
		t.Error("unknown kind should still stringify")
	}
}

func TestPopFreeExhaustion(t *testing.T) {
	d := newTestDevice(t, 4, 0)
	for i := 0; i < 4; i++ {
		c := d.PopFree()
		if c == nil {
			t.Fatalf("pop %d returned nil", i)
		}
		if c.Queue() != QueueNone {
			t.Errorf("popped chunk on queue %v", c.Queue())
		}
		d.PushUsed(c)
	}
	if d.PopFree() != nil {
		t.Error("pop from empty free queue returned a chunk")
	}
	if d.QueueLen(QueueUsed) != 4 {
		t.Errorf("used = %d", d.QueueLen(QueueUsed))
	}
	if err := d.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestLRUOrder(t *testing.T) {
	d := newTestDevice(t, 4, 0)
	var cs []*Chunk
	for i := 0; i < 3; i++ {
		c := d.PopFree()
		d.PushUsed(c)
		cs = append(cs, c)
	}
	if d.LRUVictim() != cs[0] {
		t.Fatal("oldest push should be LRU victim")
	}
	d.Touch(cs[0]) // cs[0] becomes MRU
	if d.LRUVictim() != cs[1] {
		t.Error("after touch, cs[1] should be LRU victim")
	}
	d.Touch(cs[1])
	d.Touch(cs[2])
	if d.LRUVictim() != cs[0] {
		t.Error("after touching all, cs[0] should again be LRU victim")
	}
}

func TestTouchPanicsOffUsedQueue(t *testing.T) {
	d := newTestDevice(t, 2, 0)
	c := d.PopFree()
	defer func() {
		if recover() == nil {
			t.Error("expected panic touching detached chunk")
		}
	}()
	d.Touch(c)
}

func TestDiscardedFIFO(t *testing.T) {
	d := newTestDevice(t, 4, 0)
	a, b := d.PopFree(), d.PopFree()
	d.PushDiscarded(a)
	d.PushDiscarded(b)
	if got := d.PopDiscarded(); got != a {
		t.Error("discarded queue not FIFO")
	}
	if got := d.PopDiscarded(); got != b {
		t.Error("discarded queue not FIFO (second)")
	}
	if d.PopDiscarded() != nil {
		t.Error("empty discarded queue returned chunk")
	}
}

func TestUnusedFIFO(t *testing.T) {
	d := newTestDevice(t, 4, 0)
	a, b := d.PopFree(), d.PopFree()
	d.PushUnused(a)
	d.PushUnused(b)
	if d.PopUnused() != a || d.PopUnused() != b {
		t.Error("unused queue not FIFO")
	}
}

func TestPushFreeClearsState(t *testing.T) {
	d := newTestDevice(t, 2, 0)
	c := d.PopFree()
	c.Owner = "block"
	c.PreparedPages = units.PagesPerBlock
	c.NeedsUnmapOnReclaim = true
	d.PushFree(c)
	if c.Owner != nil || c.PreparedPages != 0 || c.NeedsUnmapOnReclaim {
		t.Error("PushFree did not clear chunk state")
	}
	if c.Queue() != QueueFree {
		t.Errorf("queue = %v", c.Queue())
	}
}

func TestDetach(t *testing.T) {
	d := newTestDevice(t, 3, 0)
	c := d.PopFree()
	d.PushDiscarded(c)
	d.Detach(c)
	if c.Queue() != QueueNone {
		t.Errorf("queue = %v after detach", c.Queue())
	}
	if d.QueueLen(QueueDiscarded) != 0 {
		t.Error("discarded queue still holds detached chunk")
	}
	d.PushUsed(c)
	if err := d.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestDoubleDetachPanics(t *testing.T) {
	d := newTestDevice(t, 2, 0)
	c := d.PopFree()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on double detach")
		}
	}()
	d.Detach(c)
}

func TestDoublePushPanics(t *testing.T) {
	d := newTestDevice(t, 2, 0)
	c := d.PopFree()
	d.PushUsed(c)
	defer func() {
		if recover() == nil {
			t.Error("expected panic pushing chunk already on a queue")
		}
	}()
	d.PushUnused(c)
}

func TestEachUsedOrder(t *testing.T) {
	d := newTestDevice(t, 5, 0)
	var want []int
	for i := 0; i < 4; i++ {
		c := d.PopFree()
		d.PushUsed(c)
		want = append(want, c.ID())
	}
	var got []int
	d.EachUsed(func(c *Chunk) bool {
		got = append(got, c.ID())
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("visited %d chunks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	d.EachUsed(func(*Chunk) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

// Property: a random sequence of legal queue operations preserves the
// invariant that every chunk is on exactly one queue (or deliberately
// detached) and that queue bookkeeping matches reachability.
func TestQueueOperationsPreserveInvariants(t *testing.T) {
	f := func(ops []uint8) bool {
		d, err := NewDevice(Generic(8*units.BlockSize), 0)
		if err != nil {
			return false
		}
		var detached []*Chunk
		for _, op := range ops {
			switch op % 6 {
			case 0:
				if c := d.PopFree(); c != nil {
					detached = append(detached, c)
				}
			case 1:
				if c := d.PopUnused(); c != nil {
					detached = append(detached, c)
				}
			case 2:
				if c := d.PopDiscarded(); c != nil {
					detached = append(detached, c)
				}
			case 3:
				if len(detached) > 0 {
					c := detached[len(detached)-1]
					detached = detached[:len(detached)-1]
					d.PushUsed(c)
				}
			case 4:
				if len(detached) > 0 {
					c := detached[len(detached)-1]
					detached = detached[:len(detached)-1]
					d.PushDiscarded(c)
				}
			case 5:
				if v := d.LRUVictim(); v != nil {
					d.Detach(v)
					d.PushUnused(v)
				}
			}
			if err := d.CheckInvariants(); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestA100Profile(t *testing.T) {
	p := A100()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The §2.3 quotes: local bandwidth over 2 TB/s, 80 GB class.
	if p.LocalBandwidth < 2e12 {
		t.Errorf("A100 local bandwidth = %v, want > 2 TB/s", p.LocalBandwidth)
	}
	if p.MemoryBytes < 40_000_000_000 {
		t.Errorf("A100 memory = %d", p.MemoryBytes)
	}
}

func TestPoisonedQueueQuarantine(t *testing.T) {
	d := newTestDevice(t, 8, 0)
	c := d.PopFree()
	c.Owner = "victim"
	c.PreparedPages = 3
	c.NeedsUnmapOnReclaim = true
	d.PushPoisoned(c)
	if q := c.Queue(); q != QueuePoisoned {
		t.Fatalf("queue = %v", q)
	}
	if c.Owner != nil || c.PreparedPages != 0 || c.NeedsUnmapOnReclaim {
		t.Fatalf("per-use state survived quarantine: %+v", c)
	}
	if got := d.QueueLen(QueuePoisoned); got != 1 {
		t.Fatalf("poisoned len = %d", got)
	}
	// Poison reduces usable capacity; total conservation still holds.
	if got, want := d.UsableChunks(), 7; got != want {
		t.Fatalf("usable = %d, want %d", got, want)
	}
	if err := d.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Retirement is permanent: pulling a poisoned chunk back is a bug.
	defer func() {
		if recover() == nil {
			t.Fatal("Detach of a poisoned chunk did not panic")
		}
	}()
	d.Detach(c)
}

// Package advisor diagnoses where a program should insert discard
// directives — the extension the paper sketches in its related work: "a
// compiler-assisted approach that detects the buffer reuse distance can be
// extended to diagnose the insertion of UvmDiscard API calls" (§8).
//
// Instead of compiler analysis, the advisor consumes the driver's event
// trace from a profiling run. For every block it finds *dead intervals*:
// spans between the last consuming use of the block's contents (a read)
// and the next event that kills them (an overwrite, a discard that is
// already present, or the end of the program). A transfer inside a dead
// interval moved dead bytes; discarding the block at the interval's start
// would have prevented it. Dead intervals are aggregated per allocation
// into ranked recommendations with the exact savings the discard would
// realize.
package advisor

import (
	"fmt"
	"sort"
	"strings"

	"uvmdiscard/internal/trace"
)

// Recommendation is one suggested discard site, aggregated per allocation.
type Recommendation struct {
	// AllocID identifies the buffer.
	AllocID int
	// AllocName is the buffer's debug name when the caller supplies a
	// resolver; otherwise "alloc-<id>".
	AllocName string
	// Blocks is how many distinct 2 MiB blocks of the allocation have at
	// least one dead interval.
	Blocks int
	// DeadIntervals counts dead intervals across the allocation.
	DeadIntervals int
	// WastedBytes is the transfer volume that occurred inside dead
	// intervals — what the suggested discards would have eliminated.
	WastedBytes uint64
	// AlreadyDiscarded reports whether the program already issues some
	// discards on this buffer (partial coverage).
	AlreadyDiscarded bool
}

// Report is the advisor's output.
type Report struct {
	// Recommendations, ranked by wasted bytes, largest first.
	Recommendations []Recommendation
	// TotalTraffic is the trace's transfer volume.
	TotalTraffic uint64
	// TotalWasted is the sum of wasted bytes over all recommendations.
	TotalWasted uint64
}

// Potential returns the fraction of the trace's traffic the suggested
// discards would eliminate.
func (r *Report) Potential() float64 {
	if r.TotalTraffic == 0 {
		return 0
	}
	return float64(r.TotalWasted) / float64(r.TotalTraffic)
}

// String renders the report as a ranked table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "discard advisor: %.2f GB of %.2f GB traffic (%.0f%%) moved dead data\n",
		float64(r.TotalWasted)/1e9, float64(r.TotalTraffic)/1e9, 100*r.Potential())
	for i, rec := range r.Recommendations {
		marker := ""
		if rec.AlreadyDiscarded {
			marker = " (partially discarded already)"
		}
		fmt.Fprintf(&b, "%2d. %-20s %8.3f GB wasted across %d blocks, %d dead intervals%s\n",
			i+1, rec.AllocName, float64(rec.WastedBytes)/1e9,
			rec.Blocks, rec.DeadIntervals, marker)
	}
	if len(r.Recommendations) == 0 {
		b.WriteString("no redundant transfers found: every migrated byte was consumed\n")
	}
	return b.String()
}

// NameResolver maps an allocation ID to a human-readable name.
type NameResolver func(allocID int) string

// Analyze scans a profiling trace and produces discard recommendations.
// resolve may be nil.
func Analyze(rec *trace.Recorder, resolve NameResolver) *Report {
	rep := &Report{}
	if rec == nil || rec.Len() == 0 {
		return rep
	}
	type blockKey struct{ alloc, block int }
	perBlock := map[blockKey][]trace.Event{}
	for _, ev := range rec.Events() {
		k := blockKey{ev.Alloc, ev.Block}
		perBlock[k] = append(perBlock[k], ev)
		if ev.Kind == trace.TransferH2D || ev.Kind == trace.TransferD2H {
			rep.TotalTraffic += ev.Bytes
		}
	}

	perAlloc := map[int]*allocAgg{}
	for k, evs := range perBlock {
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].T < evs[j].T })
		wasted, intervals, sawDiscard := deadIntervalWaste(evs)
		if sawDiscard {
			a := ensureAgg(perAlloc, k.alloc)
			a.discarded = true
		}
		if wasted == 0 {
			continue
		}
		a := ensureAgg(perAlloc, k.alloc)
		a.blocks[k.block] = true
		a.intervals += intervals
		a.wasted += wasted
	}

	for id, a := range perAlloc {
		if a.wasted == 0 {
			continue
		}
		name := fmt.Sprintf("alloc-%d", id)
		if resolve != nil {
			if n := resolve(id); n != "" {
				name = n
			}
		}
		rep.Recommendations = append(rep.Recommendations, Recommendation{
			AllocID:          id,
			AllocName:        name,
			Blocks:           len(a.blocks),
			DeadIntervals:    a.intervals,
			WastedBytes:      a.wasted,
			AlreadyDiscarded: a.discarded,
		})
		rep.TotalWasted += a.wasted
	}
	sort.Slice(rep.Recommendations, func(i, j int) bool {
		if rep.Recommendations[i].WastedBytes != rep.Recommendations[j].WastedBytes {
			return rep.Recommendations[i].WastedBytes > rep.Recommendations[j].WastedBytes
		}
		return rep.Recommendations[i].AllocID < rep.Recommendations[j].AllocID
	})
	return rep
}

type allocAgg struct {
	blocks    map[int]bool
	intervals int
	wasted    uint64
	discarded bool
}

func ensureAgg(m map[int]*allocAgg, id int) *allocAgg {
	a := m[id]
	if a == nil {
		a = &allocAgg{blocks: map[int]bool{}}
		m[id] = a
	}
	return a
}

// deadIntervalWaste walks one block's event timeline and accumulates the
// transfer bytes that happened while the block's contents were dead: after
// the last read of a generation of data, once the next write/discard
// proves no further read was coming.
func deadIntervalWaste(evs []trace.Event) (wasted uint64, intervals int, sawDiscard bool) {
	var pendingDead uint64 // transfer bytes since the last consuming read
	var inInterval bool
	closeInterval := func() {
		if pendingDead > 0 {
			wasted += pendingDead
			intervals++
		}
		pendingDead = 0
		inInterval = false
	}
	for _, ev := range evs {
		switch ev.Kind {
		case trace.GPURead, trace.CPURead:
			// The data was consumed: transfers so far were useful.
			pendingDead = 0
			inInterval = false
		case trace.GPUWrite, trace.CPUWrite, trace.ZeroFill:
			// Previous contents died without the pending transfers being
			// read: they were wasted.
			closeInterval()
		case trace.Discard:
			sawDiscard = true
			closeInterval()
		case trace.TransferH2D, trace.TransferD2H:
			pendingDead += ev.Bytes
			inInterval = true
		}
	}
	// Data never consumed again before the program ended.
	_ = inInterval
	closeInterval()
	return wasted, intervals, sawDiscard
}

package advisor

import (
	"strings"
	"testing"

	"uvmdiscard/internal/core"
	"uvmdiscard/internal/cuda"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/trace"
	"uvmdiscard/internal/units"
)

func ev(t sim.Time, k trace.Kind, alloc, block int, bytes uint64) trace.Event {
	return trace.Event{T: t, Kind: k, Alloc: alloc, Block: block, Bytes: bytes}
}

func TestEmptyTrace(t *testing.T) {
	rep := Analyze(nil, nil)
	if rep.Potential() != 0 || len(rep.Recommendations) != 0 {
		t.Error("nil trace should yield empty report")
	}
	if !strings.Contains(rep.String(), "no redundant transfers") {
		t.Error("empty report message missing")
	}
	rep = Analyze(trace.NewRecorder(), nil)
	if rep.TotalTraffic != 0 {
		t.Error("empty recorder not empty")
	}
}

// The canonical RMT ping-pong: written, evicted, migrated back, and only
// then overwritten — both transfers were wasted, so the advisor must flag
// the buffer.
func TestFlagsPingPong(t *testing.T) {
	r := trace.NewRecorder()
	r.Record(ev(1, trace.GPUWrite, 7, 0, 100))
	r.Record(ev(2, trace.TransferD2H, 7, 0, 100))
	r.Record(ev(3, trace.TransferH2D, 7, 0, 100))
	r.Record(ev(4, trace.GPUWrite, 7, 0, 100))
	rep := Analyze(r, func(id int) string { return "temp-buffer" })
	if len(rep.Recommendations) != 1 {
		t.Fatalf("recommendations = %d", len(rep.Recommendations))
	}
	rec := rep.Recommendations[0]
	if rec.AllocID != 7 || rec.AllocName != "temp-buffer" {
		t.Errorf("identity wrong: %+v", rec)
	}
	if rec.WastedBytes != 200 {
		t.Errorf("wasted = %d, want 200 (both directions)", rec.WastedBytes)
	}
	if rec.DeadIntervals != 1 {
		t.Errorf("intervals = %d", rec.DeadIntervals)
	}
	if rep.Potential() != 1.0 {
		t.Errorf("potential = %v, want 1.0", rep.Potential())
	}
}

// Consumed transfers must not be flagged.
func TestUsefulTransfersNotFlagged(t *testing.T) {
	r := trace.NewRecorder()
	r.Record(ev(1, trace.TransferH2D, 1, 0, 100))
	r.Record(ev(2, trace.GPURead, 1, 0, 100))
	r.Record(ev(3, trace.TransferD2H, 1, 0, 100))
	r.Record(ev(4, trace.CPURead, 1, 0, 100))
	rep := Analyze(r, nil)
	if len(rep.Recommendations) != 0 {
		t.Errorf("useful transfers flagged: %+v", rep.Recommendations)
	}
	if rep.TotalTraffic != 200 {
		t.Errorf("traffic = %d", rep.TotalTraffic)
	}
}

// A transfer whose data is never touched again is wasted.
func TestTrailingTransferWasted(t *testing.T) {
	r := trace.NewRecorder()
	r.Record(ev(1, trace.GPUWrite, 2, 0, 100))
	r.Record(ev(2, trace.TransferD2H, 2, 0, 100))
	rep := Analyze(r, nil)
	if rep.TotalWasted != 100 {
		t.Errorf("wasted = %d, want 100", rep.TotalWasted)
	}
	if rep.Recommendations[0].AllocName != "alloc-2" {
		t.Errorf("default name = %q", rep.Recommendations[0].AllocName)
	}
}

// Buffers that already get discarded are marked so the user knows coverage
// is partial rather than missing.
func TestAlreadyDiscardedMarked(t *testing.T) {
	r := trace.NewRecorder()
	// Block 0: discard present, still one wasted transfer beforehand.
	r.Record(ev(1, trace.TransferH2D, 3, 0, 100))
	r.Record(ev(2, trace.GPUWrite, 3, 0, 100))
	r.Record(ev(3, trace.Discard, 3, 0, 100))
	rep := Analyze(r, nil)
	if len(rep.Recommendations) != 1 || !rep.Recommendations[0].AlreadyDiscarded {
		t.Errorf("discard coverage not marked: %+v", rep.Recommendations)
	}
	if !strings.Contains(rep.String(), "partially discarded") {
		t.Error("marker missing from rendering")
	}
}

// Ranking: the biggest waster comes first; ties break by alloc ID.
func TestRanking(t *testing.T) {
	r := trace.NewRecorder()
	r.Record(ev(1, trace.TransferH2D, 1, 0, 50))
	r.Record(ev(2, trace.GPUWrite, 1, 0, 50))
	r.Record(ev(1, trace.TransferH2D, 2, 0, 500))
	r.Record(ev(2, trace.GPUWrite, 2, 0, 500))
	rep := Analyze(r, nil)
	if len(rep.Recommendations) != 2 || rep.Recommendations[0].AllocID != 2 {
		t.Errorf("ranking wrong: %+v", rep.Recommendations)
	}
}

// Multiple generations on one block accumulate intervals.
func TestMultipleDeadIntervals(t *testing.T) {
	r := trace.NewRecorder()
	for g := 0; g < 3; g++ {
		base := sim.Time(10 * g)
		r.Record(ev(base+1, trace.TransferH2D, 1, 0, 100))
		r.Record(ev(base+2, trace.GPUWrite, 1, 0, 100))
	}
	rep := Analyze(r, nil)
	if rep.Recommendations[0].DeadIntervals != 3 {
		t.Errorf("intervals = %d, want 3", rep.Recommendations[0].DeadIntervals)
	}
	if rep.TotalWasted != 300 {
		t.Errorf("wasted = %d", rep.TotalWasted)
	}
}

// End-to-end: profile a Figure 2-style program through the real driver and
// confirm the advisor points at the temporary buffer and quantifies the
// waste the discard experiments actually recover.
func TestEndToEndAdvice(t *testing.T) {
	ctx, err := cuda.NewContext(core.Config{
		GPU:   gpudev.Generic(4 * units.BlockSize),
		Trace: trace.NewRecorder(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tmp, _ := ctx.MallocManaged("scratch", 3*units.BlockSize)
	other, _ := ctx.MallocManaged("live", 3*units.BlockSize)
	s := ctx.Stream("s")
	launch := func(buf *cuda.Buffer, mode core.AccessMode) {
		t.Helper()
		if err := s.Launch(cuda.Kernel{Name: "k",
			Accesses: []cuda.Access{{Buf: buf, Mode: mode}}}); err != nil {
			t.Fatal(err)
		}
	}
	launch(tmp, core.Write)   // scratch written
	launch(other, core.Write) // pressure: scratch evicted (D2H, dead)
	launch(tmp, core.Write)   // scratch overwritten: the H2D was dead too
	launch(other, core.Read)  // live data consumed
	ctx.DeviceSynchronize()

	space := ctx.Driver().Space()
	rep := Analyze(ctx.Driver().Trace(), func(id int) string {
		if a := space.ByID(id); a != nil {
			return a.Name()
		}
		return ""
	})
	if len(rep.Recommendations) == 0 {
		t.Fatal("no advice for an RMT-heavy program")
	}
	top := rep.Recommendations[0]
	if top.AllocName != "scratch" {
		t.Errorf("top recommendation = %q, want scratch", top.AllocName)
	}
	if top.WastedBytes == 0 {
		t.Error("no waste quantified")
	}
}

// Resolver fallback: empty resolver result keeps the default name.
func TestResolverFallback(t *testing.T) {
	r := trace.NewRecorder()
	r.Record(ev(1, trace.TransferH2D, 9, 0, 10))
	rep := Analyze(r, func(int) string { return "" })
	if rep.Recommendations[0].AllocName != "alloc-9" {
		t.Errorf("name = %q", rep.Recommendations[0].AllocName)
	}
}

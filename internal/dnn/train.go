package dnn

import (
	"fmt"

	"uvmdiscard/internal/core"
	"uvmdiscard/internal/cuda"
	"uvmdiscard/internal/runctl"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
)

// TrainConfig describes one training measurement.
type TrainConfig struct {
	// Model is the network to train.
	Model *ModelSpec
	// Batch is the mini-batch size; memory scales linearly with it.
	Batch int
	// Steps is how many mini-batches to run. The first step populates
	// memory and is excluded from the throughput measurement, mirroring
	// the paper's warm-up discipline (§7.5).
	Steps int
	// Recompute enables activation recomputation (gradient
	// checkpointing): backward stashes are not stored; each layer's
	// backward re-runs its forward into a shared scratch buffer. This
	// trades ~1.6x compute for a much smaller footprint — the §8
	// alternative that "does not ultimately avoid RMTs" once even the
	// reduced footprint oversubscribes.
	Recompute bool
}

// DefaultSteps is the mini-batch count used when TrainConfig.Steps is zero.
const DefaultSteps = 5

// TrainResult couples the generic workload result with throughput.
type TrainResult struct {
	workloads.Result
	// Throughput is training speed in samples (images) per second over
	// the measured (post-warm-up) steps.
	Throughput float64
	// Footprint is the CUDA allocation footprint of the run.
	Footprint units.Size
}

// Train runs the configured training under a system and platform.
//
// The per-step program follows Listing 6 (with the discard lines dropped
// for UVM-opt, and explicit buffers with memcpy for No-UVM per Listing 4):
// generate and prefetch the batch, forward through every layer writing its
// activation buffer (each layer's cuDNN workspace dies right after the
// layer), then backward from the last layer — each backward step consumes
// the downstream activation (dead afterwards) and produces gradients that
// the weight update consumes (dead afterwards).
//
// All DL discards are paired with the prefetch that repurposes the buffer
// on its next use, so UvmDiscardLazy replaces every one of them (§7.5).
func Train(p workloads.Platform, sys workloads.System, cfg TrainConfig) (res TrainResult, err error) {
	defer runctl.Recover(&err)
	if cfg.Model == nil || cfg.Batch <= 0 {
		return TrainResult{}, fmt.Errorf("dnn: invalid config %+v", cfg)
	}
	if err := cfg.Model.Validate(); err != nil {
		return TrainResult{}, err
	}
	steps := cfg.Steps
	if steps <= 0 {
		steps = DefaultSteps
	}
	if sys == workloads.PyTorchLMS {
		return TrainResult{}, fmt.Errorf("dnn: PyTorch-LMS training lives in internal/lms")
	}
	footprint := cfg.Model.FootprintBytes(cfg.Batch)
	if cfg.Recompute {
		footprint = cfg.Model.RecomputeFootprintBytes(cfg.Batch)
	}
	ctx, err := p.NewContext(footprint)
	if err != nil {
		return TrainResult{}, err
	}
	if sys == workloads.NoUVM {
		return trainNoUVM(ctx, cfg, steps, footprint)
	}
	return trainUVM(ctx, sys, cfg, steps, footprint)
}

// trainUVM implements Listing 6 (UvmDiscard / UvmDiscardLazy) and its
// discard-free variant (UVM-opt).
func trainUVM(ctx *cuda.Context, sys workloads.System, cfg TrainConfig, steps int, footprint units.Size) (TrainResult, error) {
	m := cfg.Model
	batch := units.Size(cfg.Batch)
	nm := m.names()

	alloc := func(name string, n units.Size) (*cuda.Buffer, error) {
		return ctx.MallocManaged(name, n)
	}
	data, err := alloc("data", batch*m.SampleBytes)
	if err != nil {
		return TrainResult{}, err
	}
	labels, err := alloc("labels", batch*m.LabelBytes)
	if err != nil {
		return TrainResult{}, err
	}
	grad, err := alloc("gradients", batch*m.MaxOutPerSample())
	if err != nil {
		return TrainResult{}, err
	}
	outputs := make([]*cuda.Buffer, len(m.Layers))
	stashes := make([]*cuda.Buffer, len(m.Layers))
	weights := make([]*cuda.Buffer, len(m.Layers))
	workspaces := make([]*cuda.Buffer, len(m.Layers))
	var recomputeBuf *cuda.Buffer
	if cfg.Recompute {
		// One shared scratch holds the recomputed intermediates of the
		// layer currently running backward.
		size := batch * m.MaxStashPerSample(cfg.Batch)
		if size < units.PageSize {
			size = units.PageSize
		}
		if recomputeBuf, err = alloc("recompute", size); err != nil {
			return TrainResult{}, err
		}
	}
	for i, l := range m.Layers {
		if outputs[i], err = alloc(nm[i].Out, batch*l.OutPerSample); err != nil {
			return TrainResult{}, err
		}
		if cfg.Recompute {
			stashes[i] = recomputeBuf
		} else {
			// Tensors the forward pass saves for this layer's backward
			// pass (the library's algorithm choice may inflate them,
			// Figure 5).
			stash := batch * m.StashBytes(l, cfg.Batch)
			if stash < units.PageSize {
				stash = units.PageSize
			}
			if stashes[i], err = alloc(nm[i].Stash, stash); err != nil {
				return TrainResult{}, err
			}
		}
		// Weights + weight gradients + optimizer state.
		if weights[i], err = alloc(nm[i].W, 3*l.WeightBytes); err != nil {
			return TrainResult{}, err
		}
		// cuDNN scratch: dead right after each kernel that uses it.
		ws := l.WorkspaceFixed
		if ws < units.PageSize {
			ws = units.PageSize
		}
		if workspaces[i], err = alloc(nm[i].Ws, ws); err != nil {
			return TrainResult{}, err
		}
	}

	copyStream := ctx.Stream("copy")
	computeStream := ctx.Stream("compute")

	// The per-step kernel specs are step-invariant — same buffers, names,
	// and compute times every mini-batch — so they are built once here
	// instead of being reassembled inside the training loop (the loop runs
	// steps × layers launches and dominated the allocation profile).
	fwdKernels := make([]cuda.Kernel, len(m.Layers))
	bwdKernels := make([]cuda.Kernel, len(m.Layers))
	updKernels := make([]cuda.Kernel, len(m.Layers))
	refwdKernels := make([]cuda.Kernel, len(m.Layers))
	for i, l := range m.Layers {
		in := data
		if i > 0 {
			in = outputs[i-1]
		}
		accesses := []cuda.Access{
			{Buf: in, Mode: core.Read},
			{Buf: weights[i], Mode: core.Read},
			{Buf: workspaces[i], Mode: core.ReadWrite},
			{Buf: outputs[i], Mode: core.Write},
		}
		if !cfg.Recompute {
			accesses = append(accesses, cuda.Access{Buf: stashes[i], Mode: core.Write})
		}
		fwdKernels[i] = cuda.Kernel{
			Name:     nm[i].Fwd,
			Compute:  layerTime(ctx, m, l, cfg.Batch, 1),
			Accesses: accesses,
		}
		down := labels
		if i < len(m.Layers)-1 {
			down = outputs[i+1]
		}
		bwdKernels[i] = cuda.Kernel{
			Name:    nm[i].Bwd,
			Compute: layerTime(ctx, m, l, cfg.Batch, 2),
			Accesses: []cuda.Access{
				{Buf: down, Mode: core.Read},
				{Buf: outputs[i], Mode: core.Read},
				{Buf: stashes[i], Mode: core.Read},
				{Buf: weights[i], Mode: core.Read},
				{Buf: workspaces[i], Mode: core.ReadWrite},
				{Buf: grad, Mode: core.Write},
			},
		}
		updKernels[i] = cuda.Kernel{
			Name:    nm[i].Upd,
			Compute: ctx.ComputeForBytes(float64(3 * l.WeightBytes)),
			Accesses: []cuda.Access{
				{Buf: grad, Mode: core.Read},
				{Buf: weights[i], Mode: core.ReadWrite},
			},
		}
		if cfg.Recompute {
			refwdKernels[i] = cuda.Kernel{
				Name:    nm[i].Refwd,
				Compute: layerTime(ctx, m, l, cfg.Batch, 1),
				Accesses: []cuda.Access{
					{Buf: in, Mode: core.Read},
					{Buf: weights[i], Mode: core.Read},
					{Buf: stashes[i], Mode: core.Write},
				},
			}
		}
	}

	// Initialize weights on the GPU (first touch maps zeroed chunks; a
	// short init kernel writes them).
	for i, l := range m.Layers {
		err := computeStream.Launch(cuda.Kernel{
			Name:     nm[i].Init,
			Compute:  ctx.ComputeForBytes(float64(3 * l.WeightBytes)),
			Accesses: []cuda.Access{{Buf: weights[i], Mode: core.Write}},
		})
		if err != nil {
			return TrainResult{}, err
		}
	}

	discard := func(b *cuda.Buffer) error {
		return workloads.Discard(sys, computeStream, b)
	}
	// prefetch pulls a buffer in on the copy stream and orders the
	// compute stream after it — the overlap the "-opt" baseline uses.
	prefetch := func(b *cuda.Buffer) error {
		if err := copyStream.PrefetchAll(b, cuda.ToGPU); err != nil {
			return err
		}
		ev := ctx.NewEvent()
		copyStream.RecordEvent(ev)
		computeStream.WaitEvent(ev)
		return nil
	}
	// Discards apply at computeStream order; the repurposing prefetch on
	// the copy stream must not be issued before the discard is — order
	// the copy stream behind the discard.
	orderCopyAfterCompute := func() {
		ev := ctx.NewEvent()
		computeStream.RecordEvent(ev)
		copyStream.WaitEvent(ev)
	}

	var measureFrom sim.Time
	for step := 0; step < steps; step++ {
		if step == 1 {
			ctx.DeviceSynchronize()
			measureFrom = ctx.Elapsed()
		}
		// Generate and stage the batch.
		if err := data.HostWrite(0, data.Size()); err != nil {
			return TrainResult{}, err
		}
		if err := labels.HostWrite(0, labels.Size()); err != nil {
			return TrainResult{}, err
		}
		if err := prefetch(data); err != nil {
			return TrainResult{}, err
		}
		if err := prefetch(labels); err != nil {
			return TrainResult{}, err
		}

		// Forward.
		for i := range m.Layers {
			if err := prefetch(outputs[i]); err != nil {
				return TrainResult{}, err
			}
			if !cfg.Recompute {
				if err := prefetch(stashes[i]); err != nil {
					return TrainResult{}, err
				}
			}
			if err := prefetch(workspaces[i]); err != nil {
				return TrainResult{}, err
			}
			if err := computeStream.Launch(fwdKernels[i]); err != nil {
				return TrainResult{}, err
			}
			// The cuDNN scratch dies with the layer (§7.5: "intermediate
			// buffers used by the CUDNN library can be discarded").
			if err := discard(workspaces[i]); err != nil {
				return TrainResult{}, err
			}
			orderCopyAfterCompute()
		}

		// Backward: layer i consumes outputs[i+1] (the loss/labels for the
		// last layer), outputs[i], weights; produces the shared gradient
		// buffer; the update consumes it (Listing 6).
		for i := len(m.Layers) - 1; i >= 0; i-- {
			if err := prefetch(grad); err != nil {
				return TrainResult{}, err
			}
			// Bring the activations and stash saved by the forward pass
			// back in ahead of the kernel (Listing 6's backward prefetch).
			if err := prefetch(outputs[i]); err != nil {
				return TrainResult{}, err
			}
			if cfg.Recompute {
				// Re-run this layer's forward to regenerate the
				// intermediates the backward needs — the recomputation
				// cost gradient checkpointing pays.
				if err := prefetch(stashes[i]); err != nil {
					return TrainResult{}, err
				}
				if err := computeStream.Launch(refwdKernels[i]); err != nil {
					return TrainResult{}, err
				}
			} else if err := prefetch(stashes[i]); err != nil {
				return TrainResult{}, err
			}
			if err := prefetch(workspaces[i]); err != nil {
				return TrainResult{}, err
			}
			if err := computeStream.Launch(bwdKernels[i]); err != nil {
				return TrainResult{}, err
			}
			// outputs[i+1] now holds useless data (Listing 6), and this
			// layer's stash has served its purpose.
			if i < len(m.Layers)-1 {
				if err := discard(outputs[i+1]); err != nil {
					return TrainResult{}, err
				}
			}
			if err := discard(stashes[i]); err != nil {
				return TrainResult{}, err
			}
			if err := discard(workspaces[i]); err != nil {
				return TrainResult{}, err
			}
			if err := computeStream.Launch(updKernels[i]); err != nil {
				return TrainResult{}, err
			}
			// gradients now hold useless data (Listing 6).
			if err := discard(grad); err != nil {
				return TrainResult{}, err
			}
			orderCopyAfterCompute()
		}
	}
	ctx.DeviceSynchronize()

	res := workloads.CollectSince(sys, ctx, 0)
	elapsed := ctx.Elapsed() - measureFrom
	measured := steps - 1
	tr := TrainResult{Result: res, Footprint: footprint}
	if elapsed > 0 && measured > 0 {
		tr.Throughput = float64(cfg.Batch*measured) / elapsed.Seconds()
	}
	return tr, nil
}

// trainNoUVM implements Listing 4: explicit device buffers sized for the
// whole model (it fails when the footprint exceeds GPU memory) and explicit
// input memcpys. Kernels never fault, and there is no per-layer prefetch
// bookkeeping — which is why No-UVM edges out UVM-opt when everything fits
// (Figures 6, 7).
func trainNoUVM(ctx *cuda.Context, cfg TrainConfig, steps int, footprint units.Size) (TrainResult, error) {
	m := cfg.Model
	dev, err := ctx.Malloc(footprint)
	if err != nil {
		return TrainResult{}, fmt.Errorf("dnn: No-UVM cannot train %s at batch %d: %w",
			m.Name, cfg.Batch, err)
	}
	defer dev.Free()

	stream := ctx.Stream("main")
	nm := m.names()
	inputBytes := units.Size(cfg.Batch) * (m.SampleBytes + m.LabelBytes)
	var measureFrom sim.Time
	for step := 0; step < steps; step++ {
		if step == 1 {
			ctx.DeviceSynchronize()
			measureFrom = ctx.Elapsed()
		}
		stream.MemcpyHostToDevice(inputBytes)
		for i, l := range m.Layers {
			err := stream.Launch(cuda.Kernel{
				Name:    nm[i].Fwd,
				Compute: layerTime(ctx, m, l, cfg.Batch, 1),
			})
			if err != nil {
				return TrainResult{}, err
			}
		}
		for i := len(m.Layers) - 1; i >= 0; i-- {
			l := m.Layers[i]
			err := stream.Launch(cuda.Kernel{
				Name:    nm[i].Bwd,
				Compute: layerTime(ctx, m, l, cfg.Batch, 2) + ctx.ComputeForBytes(float64(3*l.WeightBytes)),
			})
			if err != nil {
				return TrainResult{}, err
			}
		}
	}
	ctx.DeviceSynchronize()
	res := workloads.CollectSince(workloads.NoUVM, ctx, 0)
	elapsed := ctx.Elapsed() - measureFrom
	tr := TrainResult{Result: res, Footprint: footprint}
	if measured := steps - 1; elapsed > 0 && measured > 0 {
		tr.Throughput = float64(cfg.Batch*measured) / elapsed.Seconds()
	}
	return tr, nil
}

// layerTime converts a layer's FLOP count at a batch size into kernel time
// on the context's GPU, scaled by the model's achieved efficiency. dir is 1
// for forward, 2 for backward (which costs roughly twice the forward).
func layerTime(ctx *cuda.Context, m *ModelSpec, l LayerSpec, batch int, dir float64) sim.Time {
	flops := l.FlopsPerSample * float64(batch) * dir
	eff := m.Efficiency
	tflops := ctx.Driver().Device().Profile().ComputeTFLOPS * eff
	return sim.Time(flops / (tflops * 1e12) * float64(sim.Second))
}

package dnn

import (
	"testing"

	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
)

func dpGPU() gpudev.Profile { return gpudev.Generic(512 * units.MiB) }

func TestDataParallelValidation(t *testing.T) {
	if _, err := TrainDataParallel(dpGPU(), pcie.Gen4, workloads.UVMOpt,
		DataParallelConfig{}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := TrainDataParallel(dpGPU(), pcie.Gen4, workloads.UVMOpt,
		DataParallelConfig{Model: tinyModel(), GlobalBatch: 7, GPUs: 2}); err == nil {
		t.Error("indivisible batch accepted")
	}
	if _, err := TrainDataParallel(dpGPU(), pcie.Gen4, workloads.NoUVM,
		DataParallelConfig{Model: tinyModel(), GlobalBatch: 8, GPUs: 2}); err == nil {
		t.Error("No-UVM accepted")
	}
}

// Two fitting replicas nearly double throughput over one GPU, minus the
// all-reduce cost.
func TestDataParallelScaling(t *testing.T) {
	m := tinyModel()
	one, err := TrainDataParallel(dpGPU(), pcie.Gen4, workloads.UVMOpt,
		DataParallelConfig{Model: m, GlobalBatch: 16, GPUs: 1, Steps: 4})
	if err != nil {
		t.Fatal(err)
	}
	two, err := TrainDataParallel(dpGPU(), pcie.Gen4, workloads.UVMOpt,
		DataParallelConfig{Model: m, GlobalBatch: 16, GPUs: 2, Steps: 4})
	if err != nil {
		t.Fatal(err)
	}
	speedup := two.Throughput / one.Throughput
	if speedup < 1.4 || speedup > 2.05 {
		t.Errorf("2-GPU speedup = %.2fx, want ~2x minus all-reduce", speedup)
	}
	// The all-reduce crossed the peer fabric.
	if two.Result.RemoteH2D != 0 {
		t.Error("unexpected remote traffic")
	}
}

// Sharding the batch halves each replica's footprint: pressure that
// saturates one GPU vanishes across two, shrinking both the traffic and
// the discard benefit (the same effect recomputation has).
func TestDataParallelReducesPressure(t *testing.T) {
	m := tinyModel()
	batch := 56 // one GPU: ~1 GB footprint vs 0.5 GB; two GPUs: fits
	one, err := TrainDataParallel(dpGPU(), pcie.Gen4, workloads.UVMOpt,
		DataParallelConfig{Model: m, GlobalBatch: batch, GPUs: 1, Steps: 3})
	if err != nil {
		t.Fatal(err)
	}
	two, err := TrainDataParallel(dpGPU(), pcie.Gen4, workloads.UVMOpt,
		DataParallelConfig{Model: m, GlobalBatch: batch, GPUs: 2, Steps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if two.TrafficBytes*2 > one.TrafficBytes {
		t.Errorf("sharding should slash PCIe traffic: %.3f GB vs %.3f GB",
			float64(two.TrafficBytes)/1e9, float64(one.TrafficBytes)/1e9)
	}
	if two.Throughput <= one.Throughput {
		t.Errorf("2 GPUs slower than 1: %.1f vs %.1f", two.Throughput, one.Throughput)
	}
}

// Discard still composes when a sharded replica remains oversubscribed.
func TestDataParallelWithDiscard(t *testing.T) {
	m := tinyModel()
	batch := 112 // each of 2 replicas still oversubscribes (~1 GB shard)
	base, err := TrainDataParallel(dpGPU(), pcie.Gen4, workloads.UVMOpt,
		DataParallelConfig{Model: m, GlobalBatch: batch, GPUs: 2, Steps: 3})
	if err != nil {
		t.Fatal(err)
	}
	disc, err := TrainDataParallel(dpGPU(), pcie.Gen4, workloads.UvmDiscard,
		DataParallelConfig{Model: m, GlobalBatch: batch, GPUs: 2, Steps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if disc.TrafficBytes >= base.TrafficBytes {
		t.Errorf("discard did not cut sharded traffic: %d >= %d",
			disc.TrafficBytes, base.TrafficBytes)
	}
	if disc.Throughput <= base.Throughput {
		t.Errorf("discard did not help sharded throughput: %.1f <= %.1f",
			disc.Throughput, base.Throughput)
	}
}

func TestDataParallelDeterminism(t *testing.T) {
	m := tinyModel()
	cfg := DataParallelConfig{Model: m, GlobalBatch: 32, GPUs: 2, Steps: 3}
	a, err := TrainDataParallel(dpGPU(), pcie.Gen4, workloads.UvmDiscard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainDataParallel(dpGPU(), pcie.Gen4, workloads.UvmDiscard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TrafficBytes != b.TrafficBytes || a.Throughput != b.Throughput {
		t.Error("data-parallel runs are not deterministic")
	}
}

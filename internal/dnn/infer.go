package dnn

import (
	"fmt"

	"uvmdiscard/internal/core"
	"uvmdiscard/internal/cuda"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/runctl"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
)

// gpudevProfile aliases the device profile for the stage builder.
type gpudevProfile = gpudev.Profile

// pcieLink resolves the platform's link preset.
func pcieLink(p workloads.Platform) *pcie.Link {
	gen := p.Gen
	if gen == 0 {
		gen = pcie.Gen4
	}
	return pcie.Preset(gen)
}

// InferConfig describes an inference-serving measurement: forward passes
// only, over a model whose *weights* dominate memory (the large-model
// serving regime). It exercises the interplay of the paper's discard
// directive with the cudaMemAdvise hints:
//
//   - Without hints, evicting a weight block under pressure transfers it
//     D2H even though it was never modified — NVIDIA GPUs lack per-PTE
//     dirty bits (§5), so the driver cannot know the copy is clean.
//   - SetReadMostly keeps a valid host copy, so weight evictions move
//     nothing; only the re-fetch H2D remains.
//   - Discard kills each activation buffer the moment the next layer has
//     consumed it.
type InferConfig struct {
	// Model to serve. Weights are loaded once and never modified.
	Model *ModelSpec
	// Batch is the request batch size.
	Batch int
	// Requests is how many batches to serve; the first warms the cache
	// and is excluded from throughput.
	Requests int
	// Discard enables activation discards.
	Discard bool
	// AdviseWeights applies SetReadMostly to all weights.
	AdviseWeights bool
	// GPUs partitions the model's layers across this many GPUs
	// (pipeline/model parallelism for serving): each stage holds its own
	// weights, and activations hand off over the peer fabric. Zero or one
	// serves on a single GPU.
	GPUs int
}

// LargeModel returns a synthetic serving model in the large-language-model
// shape: weight-dominated layers with small activations. total is the
// summed parameter size; layers controls granularity.
func LargeModel(total units.Size, layers int) *ModelSpec {
	if layers <= 0 {
		layers = 24
	}
	per := total / units.Size(layers)
	m := &ModelSpec{
		Name:        fmt.Sprintf("served-%s", units.Format(total)),
		SampleBytes: 64 * units.KiB,
		LabelBytes:  4 * units.KiB,
		Efficiency:  0.5,
	}
	for i := 0; i < layers; i++ {
		m.Layers = append(m.Layers, LayerSpec{
			Name:         fmt.Sprintf("block%d", i),
			OutPerSample: units.MiB,
			WeightBytes:  per,
			// Each served token-batch streams the layer's weights once.
			FlopsPerSample: 2 * float64(per) / 4,
		})
	}
	return m
}

// Infer serves Requests forward passes and reports throughput and traffic.
func Infer(p workloads.Platform, cfg InferConfig) (out TrainResult, err error) {
	defer runctl.Recover(&err)
	if cfg.Model == nil || cfg.Batch <= 0 {
		return TrainResult{}, fmt.Errorf("dnn: invalid inference config %+v", cfg)
	}
	if err := cfg.Model.Validate(); err != nil {
		return TrainResult{}, err
	}
	requests := cfg.Requests
	if requests <= 0 {
		requests = 4
	}
	m := cfg.Model
	batch := units.Size(cfg.Batch)
	gpus := cfg.GPUs
	if gpus <= 0 {
		gpus = 1
	}
	if gpus > len(m.Layers) {
		return TrainResult{}, fmt.Errorf("dnn: %d stages for %d layers", gpus, len(m.Layers))
	}

	// Inference footprint: single-copy weights plus double-buffered
	// activations and the input.
	footprint := m.TotalWeights() + batch*(m.SampleBytes+2*m.MaxOutPerSample())
	ctx, err := p.NewContext(footprint)
	if err != nil {
		return TrainResult{}, err
	}
	if gpus > 1 {
		// Rebuild the context with peer GPUs (the platform only sizes the
		// primary; pipeline stages replicate the profile).
		reserved, rerr := p.Reservation(footprint)
		if rerr != nil {
			return TrainResult{}, rerr
		}
		peers := make([]gpudevProfile, gpus-1)
		for i := range peers {
			peers[i] = p.GPU
		}
		ctx, err = cuda.NewContext(core.Config{
			GPU: p.GPU, PeerGPUs: peers, ReservedBytes: reserved,
			Link: pcieLink(p),
		})
		if err != nil {
			return TrainResult{}, err
		}
	}
	// stageOf balances layers across stages by weight volume.
	stageOf := make([]int, len(m.Layers))
	if gpus > 1 {
		perStage := m.TotalWeights() / units.Size(gpus)
		var acc units.Size
		stage := 0
		for i, l := range m.Layers {
			stageOf[i] = stage
			acc += l.WeightBytes
			if acc >= perStage && stage < gpus-1 {
				acc, stage = 0, stage+1
			}
		}
	}

	weights := make([]*cuda.Buffer, len(m.Layers))
	for i, l := range m.Layers {
		if weights[i], err = ctx.MallocManaged("w-"+l.Name, l.WeightBytes); err != nil {
			return TrainResult{}, err
		}
	}
	input, err := ctx.MallocManaged("input", batch*m.SampleBytes)
	if err != nil {
		return TrainResult{}, err
	}
	actA, err := ctx.MallocManaged("act-a", batch*m.MaxOutPerSample())
	if err != nil {
		return TrainResult{}, err
	}
	actB, err := ctx.MallocManaged("act-b", batch*m.MaxOutPerSample())
	if err != nil {
		return TrainResult{}, err
	}

	stream := ctx.Stream("serve")

	// Load the weights: the host materializes the checkpoint, optionally
	// marks it read-mostly, and the first pass pulls it in.
	for _, w := range weights {
		if err := w.HostWrite(0, w.Size()); err != nil {
			return TrainResult{}, err
		}
		if cfg.AdviseWeights {
			if err := stream.MemAdviseAll(w, core.AdviseSetReadMostly); err != nil {
				return TrainResult{}, err
			}
		}
	}

	var measureFrom sim.Time
	for req := 0; req < requests; req++ {
		if req == 1 {
			ctx.DeviceSynchronize()
			measureFrom = ctx.Elapsed()
		}
		if err := input.HostWrite(0, input.Size()); err != nil {
			return TrainResult{}, err
		}
		if err := stream.PrefetchAll(input, cuda.ToGPU); err != nil {
			return TrainResult{}, err
		}
		src, dst := actA, actB
		for i, l := range m.Layers {
			in := input
			if i > 0 {
				in = src
			}
			if cfg.Discard {
				// Repurposing a previously discarded activation buffer:
				// prefault it (§4.2).
				if err := stream.PrefetchAll(dst, cuda.ToGPU); err != nil {
					return TrainResult{}, err
				}
			}
			err := stream.Launch(cuda.Kernel{
				Name: "serve-" + l.Name, GPU: stageOf[i],
				Compute: layerTime(ctx, m, l, cfg.Batch, 1),
				Accesses: []cuda.Access{
					{Buf: weights[i], Mode: core.Read},
					{Buf: in, Mode: core.Read},
					{Buf: dst, Mode: core.Write},
				},
			})
			if err != nil {
				return TrainResult{}, err
			}
			if cfg.Discard && i > 0 {
				// The consumed activation is dead.
				if err := stream.DiscardAll(src); err != nil {
					return TrainResult{}, err
				}
			}
			src, dst = dst, src
		}
		// The final activation is the response; it is consumed (read) by
		// the serving layer and then dead.
		if err := src.HostRead(0, src.Size()); err != nil {
			return TrainResult{}, err
		}
		if cfg.Discard {
			if err := stream.DiscardAll(src); err != nil {
				return TrainResult{}, err
			}
		}
	}
	ctx.DeviceSynchronize()

	res := workloads.CollectSince(workloads.UVMOpt, ctx, 0)
	elapsed := ctx.Elapsed() - measureFrom
	tr := TrainResult{Result: res, Footprint: footprint}
	if measured := requests - 1; elapsed > 0 && measured > 0 {
		tr.Throughput = float64(cfg.Batch*measured) / elapsed.Seconds()
	}
	return tr, nil
}

// Package dnn models the paper's deep-learning training workloads (§7.5):
// layer-level network specifications (VGG-16, Darknet-19, ResNet-53, RNN)
// and a Darknet-style training loop expressed as UVM programs — the
// pseudo-code of Listings 4 and 6.
//
// A training step runs a forward pass that writes each layer's activation
// buffer (scratch cuDNN workspaces die immediately after each layer), and a
// backward pass that consumes activations to produce gradients and update
// weights — after which the consumed activation and the gradient buffer are
// dead. When the footprint exceeds GPU memory, UVM ping-pongs those dead
// intermediate buffers redundantly; the discard directives eliminate those
// transfers (Figures 3, 5, 6, 7).
package dnn

import (
	"fmt"

	"uvmdiscard/internal/units"
)

// LayerSpec describes one layer of a network.
type LayerSpec struct {
	// Name identifies the layer ("conv1_1", "fc6", …).
	Name string
	// OutPerSample is the activation output size per training sample.
	OutPerSample units.Size
	// WeightBytes is the parameter size (weights incl. biases).
	WeightBytes units.Size
	// StashPerSample is the per-sample memory the layer saves during the
	// forward pass for its own backward pass (pre-activations, im2col
	// copies, batch-norm statistics). It is live from forward until the
	// layer's backward completes — the calibrated bulk of training
	// memory, and the bulk of the *required* transfers under
	// oversubscription.
	StashPerSample units.Size
	// WorkspaceFixed is batch-independent cuDNN scratch; dead immediately
	// after each kernel that uses it (the paper's per-layer discard
	// target).
	WorkspaceFixed units.Size
	// FlopsPerSample is the forward FLOP count per sample; backward costs
	// twice that.
	FlopsPerSample float64
}

// ModelSpec is a full network plus training-process parameters.
type ModelSpec struct {
	// Name is the network name as the paper uses it.
	Name string
	// Layers in forward order.
	Layers []LayerSpec
	// SampleBytes is one input sample (e.g. a 224x224x3 fp32 image).
	SampleBytes units.Size
	// LabelBytes is one label.
	LabelBytes units.Size
	// Efficiency is the fraction of peak GPU FLOPS the training kernels
	// achieve (calibrated against Table 1's measured throughput).
	Efficiency float64
	// AlgoSwitch models the cuDNN behavior the paper observes under
	// Figure 5: "the amount of data transfers may drastically increase
	// because the CUDNN library switches to a different algorithm that
	// uses a different size of workspace buffer." Zero value disables it.
	AlgoSwitch AlgoSwitch

	// derived memoizes the per-layer name strings built from Layers; see
	// names().
	derived []layerNames
}

// layerNames holds the buffer and kernel name strings derived from one
// layer's name ("out-conv1_1", "fwd-conv1_1", …). A training run builds
// every one of them for every layer, and one ModelSpec typically serves a
// whole experiment table of runs, so the concatenations are memoized on the
// spec instead of being rebuilt per run.
type layerNames struct {
	Out, Stash, W, Ws          string
	Fwd, Bwd, Upd, Refwd, Init string
}

// names returns the memoized per-layer derived names, building them on
// first use. Layer names must not change afterwards; first use is not
// concurrency-safe (runners construct specs before spawning workers).
func (m *ModelSpec) names() []layerNames {
	if m.derived == nil {
		d := make([]layerNames, len(m.Layers))
		for i, l := range m.Layers {
			d[i] = layerNames{
				Out:   "out-" + l.Name,
				Stash: "stash-" + l.Name,
				W:     "w-" + l.Name,
				Ws:    "ws-" + l.Name,
				Fwd:   "fwd-" + l.Name,
				Bwd:   "bwd-" + l.Name,
				Upd:   "upd-" + l.Name,
				Refwd: "refwd-" + l.Name,
				Init:  "init-" + l.Name,
			}
		}
		m.derived = d
	}
	return m.derived
}

// AlgoSwitch is a batch-size threshold at which the library's algorithm
// choice changes the per-sample stash footprint by a multiplicative factor.
type AlgoSwitch struct {
	// AtBatch is the threshold batch size; 0 disables the switch.
	AtBatch int
	// StashFactor multiplies every layer's per-sample stash at and beyond
	// the threshold (>1 = the faster algorithm needs more workspace).
	StashFactor float64
}

// Validate checks internal consistency.
func (m *ModelSpec) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("dnn: model %q has no layers", m.Name)
	}
	if m.SampleBytes == 0 {
		return fmt.Errorf("dnn: model %q has no input size", m.Name)
	}
	if m.Efficiency <= 0 || m.Efficiency > 1 {
		return fmt.Errorf("dnn: model %q efficiency %v out of range", m.Name, m.Efficiency)
	}
	for _, l := range m.Layers {
		if l.OutPerSample == 0 || l.FlopsPerSample <= 0 {
			return fmt.Errorf("dnn: model %q layer %q incomplete", m.Name, l.Name)
		}
	}
	return nil
}

// TotalWeights returns the summed parameter bytes.
func (m *ModelSpec) TotalWeights() units.Size {
	var t units.Size
	for _, l := range m.Layers {
		t += l.WeightBytes
	}
	return t
}

// MaxOutPerSample returns the largest per-sample activation — the size
// basis of the shared gradient buffer.
func (m *ModelSpec) MaxOutPerSample() units.Size {
	var mx units.Size
	for _, l := range m.Layers {
		if l.OutPerSample > mx {
			mx = l.OutPerSample
		}
	}
	return mx
}

// PerSampleBytes returns the batch-proportional memory per sample:
// activations, backward stashes, the gradient buffer share, and the input
// (below any algorithm-switch threshold).
func (m *ModelSpec) PerSampleBytes() units.Size {
	t := m.SampleBytes + m.LabelBytes + m.MaxOutPerSample()
	for _, l := range m.Layers {
		t += l.OutPerSample + l.StashPerSample
	}
	return t
}

// StashBytes returns a layer's per-sample stash at a given batch size,
// honoring the algorithm switch.
func (m *ModelSpec) StashBytes(l LayerSpec, batch int) units.Size {
	if m.AlgoSwitch.AtBatch > 0 && batch >= m.AlgoSwitch.AtBatch && m.AlgoSwitch.StashFactor > 0 {
		return units.Size(float64(l.StashPerSample) * m.AlgoSwitch.StashFactor)
	}
	return l.StashPerSample
}

// FixedBytes returns the batch-independent memory: parameters (with
// gradients and optimizer state, 3x) and fixed workspaces.
func (m *ModelSpec) FixedBytes() units.Size {
	t := 3 * m.TotalWeights()
	for _, l := range m.Layers {
		t += l.WorkspaceFixed
	}
	return t
}

// FootprintBytes returns the CUDA allocation footprint at a batch size —
// the quantity the paper reports ("VGG-16 allocated 12.0 GB ... at batch
// size 75") — including any algorithm-switch discontinuity.
func (m *ModelSpec) FootprintBytes(batch int) units.Size {
	t := m.FixedBytes() + units.Size(batch)*m.PerSampleBytes()
	if m.AlgoSwitch.AtBatch > 0 && batch >= m.AlgoSwitch.AtBatch && m.AlgoSwitch.StashFactor > 0 {
		for _, l := range m.Layers {
			t += units.Size(batch) * (m.StashBytes(l, batch) - l.StashPerSample)
		}
	}
	return t
}

// RecomputeFootprintBytes returns the footprint when training with
// activation recomputation (gradient checkpointing): the per-layer
// backward stashes are not stored — only one shared recompute buffer the
// size of the largest stash exists (§8's Karma-style alternative).
func (m *ModelSpec) RecomputeFootprintBytes(batch int) units.Size {
	t := m.FixedBytes() + units.Size(batch)*(m.SampleBytes+m.LabelBytes+m.MaxOutPerSample())
	var maxStash units.Size
	for _, l := range m.Layers {
		t += units.Size(batch) * l.OutPerSample
		if s := m.StashBytes(l, batch); s > maxStash {
			maxStash = s
		}
	}
	return t + units.Size(batch)*maxStash
}

// MaxStashPerSample returns the largest per-sample stash at a batch size.
func (m *ModelSpec) MaxStashPerSample(batch int) units.Size {
	var mx units.Size
	for _, l := range m.Layers {
		if s := m.StashBytes(l, batch); s > mx {
			mx = s
		}
	}
	return mx
}

// ForwardFlops returns total forward FLOPs per sample.
func (m *ModelSpec) ForwardFlops() float64 {
	var t float64
	for _, l := range m.Layers {
		t += l.FlopsPerSample
	}
	return t
}

// Calibrate distributes stash and workspace memory across layers so that
// the model's footprint matches two measured (batch, bytes) points from the
// paper. The architecture fixes weights and activations; the per-layer
// backward stashes (batch-proportional) and fixed cuDNN workspaces are the
// unknowns the calibration solves for. Calibration fails if the measured
// points imply less memory than the architecture itself requires.
func (m *ModelSpec) Calibrate(batch1 int, bytes1 units.Size, batch2 int, bytes2 units.Size) error {
	if batch2 <= batch1 {
		return fmt.Errorf("dnn: calibration points must have increasing batch sizes")
	}
	// Zero out previous calibration to compute architectural baselines.
	for i := range m.Layers {
		m.Layers[i].StashPerSample = 0
		m.Layers[i].WorkspaceFixed = 0
	}
	slope := float64(bytes2-bytes1) / float64(batch2-batch1) // bytes per sample
	fixed := float64(bytes1) - slope*float64(batch1)
	basePer := float64(m.PerSampleBytes())
	baseFixed := float64(m.FixedBytes())
	wsPer := slope - basePer
	if wsPer < 0 {
		return fmt.Errorf("dnn: %s architecture needs %.0f B/sample but measurements imply %.0f",
			m.Name, basePer, slope)
	}
	wsFixed := fixed - baseFixed
	if wsFixed < 0 {
		wsFixed = 0 // architecture already accounts for the fixed part
	}
	// Distribute proportionally to activation size (larger layers need
	// larger scratch).
	var totalOut float64
	for _, l := range m.Layers {
		totalOut += float64(l.OutPerSample)
	}
	for i := range m.Layers {
		share := float64(m.Layers[i].OutPerSample) / totalOut
		m.Layers[i].StashPerSample = units.Size(wsPer * share)
		m.Layers[i].WorkspaceFixed = units.Size(wsFixed * share)
	}
	return nil
}

package dnn

import (
	"testing"

	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
)

// The calibration anchors from §7.5: model name -> (batch, GB) pairs.
var paperAllocations = map[string][2][2]float64{
	"VGG-16":     {{75, 12.0}, {150, 21.1}},
	"Darknet-19": {{171, 11.2}, {360, 23.4}},
	"ResNet-53":  {{56, 10.8}, {150, 28.5}},
	"RNN":        {{150, 10.2}, {300, 20.0}},
}

func TestZooValidates(t *testing.T) {
	for _, m := range Zoo() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

// Footprints must match the paper's reported CUDA allocations within 3%.
func TestFootprintMatchesPaper(t *testing.T) {
	for _, m := range Zoo() {
		anchors, ok := paperAllocations[m.Name]
		if !ok {
			t.Fatalf("no paper anchor for %s", m.Name)
		}
		for _, a := range anchors {
			batch, wantGB := int(a[0]), a[1]
			got := float64(m.FootprintBytes(batch)) / 1e9
			if got < wantGB*0.97 || got > wantGB*1.03 {
				t.Errorf("%s at batch %d: footprint %.2f GB, paper reports %.1f GB",
					m.Name, batch, got, wantGB)
			}
		}
	}
}

func TestFootprintLinearInBatch(t *testing.T) {
	m := VGG16()
	d1 := m.FootprintBytes(20) - m.FootprintBytes(10)
	d2 := m.FootprintBytes(110) - m.FootprintBytes(100)
	if d1 != d2 {
		t.Errorf("footprint not linear: slope %d vs %d", d1, d2)
	}
	if d1 != 10*m.PerSampleBytes() {
		t.Errorf("slope %d != 10*PerSampleBytes %d", d1, 10*m.PerSampleBytes())
	}
}

func TestArchitecturalSizes(t *testing.T) {
	vgg := VGG16()
	// VGG-16's parameters are ~553 MB fp32 (138M params).
	w := float64(vgg.TotalWeights()) / 1e6
	if w < 520 || w < 0 || w > 600 {
		t.Errorf("VGG-16 weights = %.0f MB, want ~553", w)
	}
	// Forward cost ~31 GFLOPs per sample (15.5 GMACs).
	gf := vgg.ForwardFlops() / 1e9
	if gf < 28 || gf > 34 {
		t.Errorf("VGG-16 forward = %.1f GFLOPs, want ~31", gf)
	}
	// Largest activation is conv1's 224*224*64 fp32 map.
	if vgg.MaxOutPerSample() != 224*224*64*4 {
		t.Errorf("max activation = %d", vgg.MaxOutPerSample())
	}
	if len(ResNet53().Layers) < 50 {
		t.Errorf("ResNet-53 has %d layers", len(ResNet53().Layers))
	}
}

func TestCalibrateErrors(t *testing.T) {
	m := VGG16()
	if err := m.Calibrate(100, units.GiB, 50, 2*units.GiB); err == nil {
		t.Error("non-increasing batches accepted")
	}
	// Measurements implying less than the architecture needs must fail.
	if err := m.Calibrate(100, units.GiB, 200, units.GiB+units.MiB); err == nil {
		t.Error("impossible slope accepted")
	}
}

func TestValidateErrors(t *testing.T) {
	m := &ModelSpec{Name: "empty"}
	if m.Validate() == nil {
		t.Error("empty model accepted")
	}
	m = VGG16()
	m.Efficiency = 0
	if m.Validate() == nil {
		t.Error("zero efficiency accepted")
	}
	m = VGG16()
	m.SampleBytes = 0
	if m.Validate() == nil {
		t.Error("zero sample accepted")
	}
	m = VGG16()
	m.Layers[0].FlopsPerSample = 0
	if m.Validate() == nil {
		t.Error("zero-flop layer accepted")
	}
}

// The Figure 5 note: above a threshold batch size the library switches
// algorithms and the workspace footprint jumps discontinuously.
func TestAlgoSwitchDiscontinuity(t *testing.T) {
	m := tinyModel()
	m.AlgoSwitch = AlgoSwitch{AtBatch: 40, StashFactor: 1.5}
	below := m.FootprintBytes(39)
	at := m.FootprintBytes(40)
	slope := m.FootprintBytes(39) - m.FootprintBytes(38)
	if at-below <= slope {
		t.Errorf("no discontinuity at the switch: %d vs linear slope %d", at-below, slope)
	}
	// Stash sizing follows.
	l := m.Layers[0]
	if m.StashBytes(l, 39) != l.StashPerSample {
		t.Error("below threshold should use the base stash")
	}
	if m.StashBytes(l, 40) <= l.StashPerSample {
		t.Error("at threshold the stash should grow")
	}
}

// The traffic jump shows up end to end: training just past the switch
// moves disproportionately more data.
func TestAlgoSwitchTrafficJump(t *testing.T) {
	base := tinyModel()
	switched := tinyModel()
	switched.AlgoSwitch = AlgoSwitch{AtBatch: 60, StashFactor: 2.0}
	p := tinyPlatform()
	cfg := func(m *ModelSpec) TrainConfig { return TrainConfig{Model: m, Batch: 60, Steps: 3} }
	plain, err := Train(p, workloads.UVMOpt, cfg(base))
	if err != nil {
		t.Fatal(err)
	}
	jumped, err := Train(p, workloads.UVMOpt, cfg(switched))
	if err != nil {
		t.Fatal(err)
	}
	if jumped.TrafficBytes <= plain.TrafficBytes {
		t.Errorf("algorithm switch should increase traffic: %d <= %d",
			jumped.TrafficBytes, plain.TrafficBytes)
	}
}

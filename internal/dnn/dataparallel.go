package dnn

import (
	"fmt"

	"uvmdiscard/internal/core"
	"uvmdiscard/internal/cuda"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/runctl"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
)

// DataParallelConfig describes multi-GPU data-parallel training: the batch
// splits across replicas, each GPU holds a full copy of the weights and its
// shard's activations, and gradients are exchanged over the peer fabric
// after every step.
type DataParallelConfig struct {
	// Model to train.
	Model *ModelSpec
	// GlobalBatch is the total batch; each GPU trains GlobalBatch/GPUs.
	GlobalBatch int
	// GPUs is the replica count (>= 1; 1 degenerates to Train).
	GPUs int
	// Steps as in TrainConfig.
	Steps int
}

// TrainDataParallel runs synchronous data-parallel training. Each replica
// executes the Listing 6 step over its shard on its own GPU and stream
// (replicas overlap in time); the step ends with a gradient exchange over
// the peer fabric and a local weight update. Oversubscription pressure is
// per-GPU: sharding the batch shrinks each replica's footprint, which —
// like recomputation — reduces the RMTs discard would otherwise eliminate.
func TrainDataParallel(gpu gpudev.Profile, gen pcie.Generation, sys workloads.System, cfg DataParallelConfig) (out TrainResult, err error) {
	defer runctl.Recover(&err)
	if cfg.Model == nil || cfg.GlobalBatch <= 0 || cfg.GPUs <= 0 {
		return TrainResult{}, fmt.Errorf("dnn: invalid data-parallel config %+v", cfg)
	}
	if err := cfg.Model.Validate(); err != nil {
		return TrainResult{}, err
	}
	if cfg.GlobalBatch%cfg.GPUs != 0 {
		return TrainResult{}, fmt.Errorf("dnn: global batch %d not divisible by %d GPUs",
			cfg.GlobalBatch, cfg.GPUs)
	}
	if sys != workloads.UVMOpt && sys != workloads.UvmDiscard && sys != workloads.UvmDiscardLazy {
		return TrainResult{}, fmt.Errorf("dnn: data-parallel training supports the UVM systems, not %v", sys)
	}
	steps := cfg.Steps
	if steps <= 0 {
		steps = DefaultSteps
	}
	m := cfg.Model
	shard := cfg.GlobalBatch / cfg.GPUs

	peers := make([]gpudev.Profile, cfg.GPUs-1)
	for i := range peers {
		peers[i] = gpu
	}
	ctx, err := cuda.NewContext(core.Config{
		GPU:      gpu,
		PeerGPUs: peers,
		Link:     pcie.Preset(gen),
	})
	if err != nil {
		return TrainResult{}, err
	}

	// Per-replica buffers.
	type replica struct {
		data, labels, grad *cuda.Buffer
		outputs, stashes   []*cuda.Buffer
		weights            []*cuda.Buffer
		stream, copy       *cuda.Stream
	}
	reps := make([]*replica, cfg.GPUs)
	batch := units.Size(shard)
	for g := 0; g < cfg.GPUs; g++ {
		r := &replica{
			stream: ctx.Stream(fmt.Sprintf("gpu%d-compute", g)),
			copy:   ctx.Stream(fmt.Sprintf("gpu%d-copy", g)),
		}
		alloc := func(name string, n units.Size) (*cuda.Buffer, error) {
			return ctx.MallocManaged(fmt.Sprintf("g%d-%s", g, name), n)
		}
		if r.data, err = alloc("data", batch*m.SampleBytes); err != nil {
			return TrainResult{}, err
		}
		if r.labels, err = alloc("labels", batch*m.LabelBytes); err != nil {
			return TrainResult{}, err
		}
		if r.grad, err = alloc("grad", batch*m.MaxOutPerSample()); err != nil {
			return TrainResult{}, err
		}
		for _, l := range m.Layers {
			ob, err := alloc("out-"+l.Name, batch*l.OutPerSample)
			if err != nil {
				return TrainResult{}, err
			}
			stash := batch * m.StashBytes(l, shard)
			if stash < units.PageSize {
				stash = units.PageSize
			}
			sb, err := alloc("stash-"+l.Name, stash)
			if err != nil {
				return TrainResult{}, err
			}
			wb, err := alloc("w-"+l.Name, 3*l.WeightBytes)
			if err != nil {
				return TrainResult{}, err
			}
			r.outputs = append(r.outputs, ob)
			r.stashes = append(r.stashes, sb)
			r.weights = append(r.weights, wb)
		}
		reps[g] = r
	}

	// Weight initialization per replica (on its own GPU).
	for g, r := range reps {
		for i, l := range m.Layers {
			if err := r.stream.Launch(cuda.Kernel{
				Name: "init-" + l.Name, GPU: g,
				Compute:  ctx.ComputeForBytes(float64(3 * l.WeightBytes)),
				Accesses: []cuda.Access{{Buf: r.weights[i], Mode: core.Write}},
			}); err != nil {
				return TrainResult{}, err
			}
		}
	}

	discard := func(s *cuda.Stream, b *cuda.Buffer) error {
		return workloads.Discard(sys, s, b)
	}

	var measureFrom sim.Time
	for step := 0; step < steps; step++ {
		if step == 1 {
			ctx.DeviceSynchronize()
			measureFrom = ctx.Elapsed()
		}
		for g, r := range reps {
			// Stage the shard.
			if err := r.data.HostWrite(0, r.data.Size()); err != nil {
				return TrainResult{}, err
			}
			if err := r.labels.HostWrite(0, r.labels.Size()); err != nil {
				return TrainResult{}, err
			}
			prefetch := func(b *cuda.Buffer) error {
				if err := r.copy.PrefetchAllTo(b, g); err != nil {
					return err
				}
				ev := ctx.NewEvent()
				r.copy.RecordEvent(ev)
				r.stream.WaitEvent(ev)
				return nil
			}
			if err := prefetch(r.data); err != nil {
				return TrainResult{}, err
			}
			if err := prefetch(r.labels); err != nil {
				return TrainResult{}, err
			}
			// Forward.
			for i, l := range m.Layers {
				in := r.data
				if i > 0 {
					in = r.outputs[i-1]
				}
				if err := prefetch(r.outputs[i]); err != nil {
					return TrainResult{}, err
				}
				if err := prefetch(r.stashes[i]); err != nil {
					return TrainResult{}, err
				}
				if err := r.stream.Launch(cuda.Kernel{
					Name: "fwd-" + l.Name, GPU: g,
					Compute: layerTime(ctx, m, l, shard, 1),
					Accesses: []cuda.Access{
						{Buf: in, Mode: core.Read},
						{Buf: r.weights[i], Mode: core.Read},
						{Buf: r.stashes[i], Mode: core.Write},
						{Buf: r.outputs[i], Mode: core.Write},
					},
				}); err != nil {
					return TrainResult{}, err
				}
				ev := ctx.NewEvent()
				r.stream.RecordEvent(ev)
				r.copy.WaitEvent(ev)
			}
			// Backward.
			for i := len(m.Layers) - 1; i >= 0; i-- {
				l := m.Layers[i]
				down := r.labels
				if i < len(m.Layers)-1 {
					down = r.outputs[i+1]
				}
				if err := prefetch(r.grad); err != nil {
					return TrainResult{}, err
				}
				if err := prefetch(r.outputs[i]); err != nil {
					return TrainResult{}, err
				}
				if err := prefetch(r.stashes[i]); err != nil {
					return TrainResult{}, err
				}
				if err := r.stream.Launch(cuda.Kernel{
					Name: "bwd-" + l.Name, GPU: g,
					Compute: layerTime(ctx, m, l, shard, 2),
					Accesses: []cuda.Access{
						{Buf: down, Mode: core.Read},
						{Buf: r.outputs[i], Mode: core.Read},
						{Buf: r.stashes[i], Mode: core.Read},
						{Buf: r.weights[i], Mode: core.ReadWrite},
						{Buf: r.grad, Mode: core.Write},
					},
				}); err != nil {
					return TrainResult{}, err
				}
				if i < len(m.Layers)-1 {
					if err := discard(r.stream, r.outputs[i+1]); err != nil {
						return TrainResult{}, err
					}
				}
				if err := discard(r.stream, r.stashes[i]); err != nil {
					return TrainResult{}, err
				}
				if err := discard(r.stream, r.grad); err != nil {
					return TrainResult{}, err
				}
				ev := ctx.NewEvent()
				r.stream.RecordEvent(ev)
				r.copy.WaitEvent(ev)
			}
		}
		// Synchronous all-reduce: every replica's weight gradients cross
		// the peer fabric. A ring all-reduce moves 2*(n-1)/n of the
		// gradient volume per replica; replicas then update locally.
		if cfg.GPUs > 1 {
			// The exchange is a barrier: no replica proceeds until the
			// slowest one arrives.
			barrier := ctx.NewEvent()
			slowest := reps[0].stream
			for _, r := range reps[1:] {
				if r.stream.Tail() > slowest.Tail() {
					slowest = r.stream
				}
			}
			slowest.RecordEvent(barrier)
			for _, r := range reps {
				r.stream.WaitEvent(barrier)
			}
			// A ring all-reduce moves 2*(n-1)/n of the gradient volume per
			// replica over the peer fabric; the collective blocks each
			// replica's stream for that long.
			gradBytes := float64(m.TotalWeights()) * 2 * float64(cfg.GPUs-1) / float64(cfg.GPUs)
			for g, r := range reps {
				if err := r.stream.Launch(cuda.Kernel{
					Name: "allreduce", GPU: g,
					Compute: sim.TransferTime(uint64(gradBytes),
						ctx.Driver().PeerLink().PeakBandwidth()),
				}); err != nil {
					return TrainResult{}, err
				}
				ctx.Metrics().AddPeer(uint64(gradBytes))
			}
		}
	}
	ctx.DeviceSynchronize()

	res := workloads.CollectSince(sys, ctx, 0)
	elapsed := ctx.Elapsed() - measureFrom
	tr := TrainResult{Result: res, Footprint: m.FootprintBytes(shard)}
	if measured := steps - 1; elapsed > 0 && measured > 0 {
		tr.Throughput = float64(cfg.GlobalBatch*measured) / elapsed.Seconds()
	}
	return tr, nil
}

package dnn

import (
	"fmt"

	"uvmdiscard/internal/units"
)

// The zoo builds the four networks the paper trains (§7.5): VGG-16,
// Darknet-19, and ResNet-53 on ImageNet (224x224x3 fp32 inputs), and a
// character RNN on the Shakespeare corpus. Layer geometry fixes activation
// and weight sizes; cuDNN workspace sizes are then calibrated against the
// paper's reported CUDA allocations at two batch sizes:
//
//	VGG-16:     12.0 GB @ 75,  21.1 GB @ 150
//	Darknet-19: 11.2 GB @ 171, 23.4 GB @ 360
//	ResNet-53:  10.8 GB @ 56,  28.5 GB @ 150
//	RNN:        10.2 GB @ 150, 20.0 GB @ 300
const (
	imageNetSample units.Size = 224 * 224 * 3 * 4
	imageNetLabel  units.Size = 4 * units.KiB
	bytesPerFloat             = 4
)

// conv builds a 3x3 (or kxk) convolution layer spec.
func conv(name string, outHW, cin, cout, k int) LayerSpec {
	return LayerSpec{
		Name:           name,
		OutPerSample:   units.Size(outHW * outHW * cout * bytesPerFloat),
		WeightBytes:    units.Size(k*k*cin*cout*bytesPerFloat + cout*bytesPerFloat),
		FlopsPerSample: 2 * float64(k*k*cin*cout*outHW*outHW),
	}
}

// fc builds a fully connected layer spec.
func fc(name string, in, out int) LayerSpec {
	return LayerSpec{
		Name:           name,
		OutPerSample:   units.Size(out * bytesPerFloat),
		WeightBytes:    units.Size((in + 1) * out * bytesPerFloat),
		FlopsPerSample: 2 * float64(in*out),
	}
}

func mustCalibrate(m *ModelSpec, b1 int, g1 float64, b2 int, g2 float64) *ModelSpec {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	if err := m.Calibrate(b1, units.Size(g1*1e9), b2, units.Size(g2*1e9)); err != nil {
		panic(err)
	}
	return m
}

// VGG16 returns the VGG-16 classifier (Simonyan & Zisserman).
func VGG16() *ModelSpec {
	m := &ModelSpec{
		Name:        "VGG-16",
		SampleBytes: imageNetSample,
		LabelBytes:  imageNetLabel,
		// Calibrated so Darknet-UVM VGG-16 training reaches Table 1's
		// measured 29 img/s at batch 40 on the GTX 1070. (Our FLOP counts
		// include the multiply and the add of each MAC.)
		Efficiency: 0.42,
		Layers: []LayerSpec{
			conv("conv1_1", 224, 3, 64, 3),
			conv("conv1_2", 224, 64, 64, 3),
			conv("conv2_1", 112, 64, 128, 3),
			conv("conv2_2", 112, 128, 128, 3),
			conv("conv3_1", 56, 128, 256, 3),
			conv("conv3_2", 56, 256, 256, 3),
			conv("conv3_3", 56, 256, 256, 3),
			conv("conv4_1", 28, 256, 512, 3),
			conv("conv4_2", 28, 512, 512, 3),
			conv("conv4_3", 28, 512, 512, 3),
			conv("conv5_1", 14, 512, 512, 3),
			conv("conv5_2", 14, 512, 512, 3),
			conv("conv5_3", 14, 512, 512, 3),
			fc("fc6", 25088, 4096),
			fc("fc7", 4096, 4096),
			fc("fc8", 4096, 1000),
		},
	}
	return mustCalibrate(m, 75, 12.0, 150, 21.1)
}

// Darknet19 returns the Darknet-19 classifier (YOLO's backbone).
func Darknet19() *ModelSpec {
	layers := []LayerSpec{
		conv("conv1", 224, 3, 32, 3),
		conv("conv2", 112, 32, 64, 3),
		conv("conv3", 56, 64, 128, 3),
		conv("conv4", 56, 128, 64, 1),
		conv("conv5", 56, 64, 128, 3),
		conv("conv6", 28, 128, 256, 3),
		conv("conv7", 28, 256, 128, 1),
		conv("conv8", 28, 128, 256, 3),
		conv("conv9", 14, 256, 512, 3),
		conv("conv10", 14, 512, 256, 1),
		conv("conv11", 14, 256, 512, 3),
		conv("conv12", 14, 512, 256, 1),
		conv("conv13", 14, 256, 512, 3),
		conv("conv14", 7, 512, 1024, 3),
		conv("conv15", 7, 1024, 512, 1),
		conv("conv16", 7, 512, 1024, 3),
		conv("conv17", 7, 1024, 512, 1),
		conv("conv18", 7, 512, 1024, 3),
		conv("conv19", 7, 1024, 1000, 1),
	}
	m := &ModelSpec{
		Name:        "Darknet-19",
		SampleBytes: imageNetSample,
		LabelBytes:  imageNetLabel,
		Efficiency:  0.30,
		Layers:      layers,
	}
	return mustCalibrate(m, 171, 11.2, 360, 23.4)
}

// ResNet53 returns the 53-layer residual classifier the paper trains.
func ResNet53() *ModelSpec {
	layers := []LayerSpec{
		conv("conv1", 224, 3, 32, 3),
		conv("conv2", 112, 32, 64, 3),
	}
	block := func(stage, n, hw, cmid, cout int) {
		for i := 0; i < n; i++ {
			layers = append(layers,
				conv(fmt.Sprintf("res%d_%d_a", stage, i), hw, cout, cmid, 1),
				conv(fmt.Sprintf("res%d_%d_b", stage, i), hw, cmid, cout, 3),
			)
		}
	}
	block(1, 1, 112, 32, 64)
	layers = append(layers, conv("down2", 56, 64, 128, 3))
	block(2, 2, 56, 64, 128)
	layers = append(layers, conv("down3", 28, 128, 256, 3))
	block(3, 8, 28, 128, 256)
	layers = append(layers, conv("down4", 14, 256, 512, 3))
	block(4, 8, 14, 256, 512)
	layers = append(layers, conv("down5", 7, 512, 1024, 3))
	block(5, 4, 7, 512, 1024)
	layers = append(layers, fc("fc", 1024, 1000))
	m := &ModelSpec{
		Name:        "ResNet-53",
		SampleBytes: imageNetSample,
		LabelBytes:  imageNetLabel,
		Efficiency:  0.30,
		Layers:      layers,
	}
	return mustCalibrate(m, 56, 10.8, 150, 28.5)
}

// RNN returns the character-level recurrent network trained on the
// Shakespeare corpus — the paper's compute-intensive case: large matrix
// multiplies per timestep over comparatively small activations.
func RNN() *ModelSpec {
	const (
		hidden   = 1024
		segments = 16 // unrolled sequence segments stored for backprop
		seqPer   = 36 // timesteps per segment
	)
	var layers []LayerSpec
	for i := 0; i < segments; i++ {
		layers = append(layers, LayerSpec{
			Name:         fmt.Sprintf("rnn_seg%d", i),
			OutPerSample: units.Size(seqPer * hidden * 2 * bytesPerFloat * 12), // states + cell scratch kept for backprop
			WeightBytes:  units.Size(8_300_000),
			// Three stacked recurrent layers' matmuls per timestep.
			FlopsPerSample: float64(seqPer) * 3 * 2 * 2 * float64(hidden) * float64(hidden) * 2,
		})
	}
	m := &ModelSpec{
		Name:        "RNN",
		SampleBytes: 64 * units.KiB,
		LabelBytes:  64 * units.KiB,
		Efficiency:  0.45,
		Layers:      layers,
	}
	return mustCalibrate(m, 150, 10.2, 300, 20.0)
}

// Zoo returns all four networks in the paper's order.
func Zoo() []*ModelSpec {
	return []*ModelSpec{VGG16(), Darknet19(), ResNet53(), RNN()}
}

package dnn

import (
	"testing"

	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
)

// tinyModel keeps training tests fast: a 4-layer network whose footprint
// crosses a small generic GPU at moderate batch sizes.
func tinyModel() *ModelSpec {
	m := &ModelSpec{
		Name:        "tiny",
		SampleBytes: 256 * units.KiB,
		LabelBytes:  4 * units.KiB,
		Efficiency:  0.4,
		Layers: []LayerSpec{
			{Name: "l1", OutPerSample: 2 * units.MiB, WeightBytes: 4 * units.MiB, FlopsPerSample: 2e8},
			{Name: "l2", OutPerSample: 2 * units.MiB, WeightBytes: 8 * units.MiB, FlopsPerSample: 4e8},
			{Name: "l3", OutPerSample: units.MiB, WeightBytes: 8 * units.MiB, FlopsPerSample: 4e8},
			{Name: "l4", OutPerSample: units.MiB / 2, WeightBytes: 2 * units.MiB, FlopsPerSample: 1e8},
		},
	}
	// Calibrate so each sample carries stash weight too: ~16 MiB/sample,
	// 100 MiB fixed.
	if err := m.Calibrate(10, 260*units.MiB, 50, 900*units.MiB); err != nil {
		panic(err)
	}
	return m
}

func tinyPlatform() workloads.Platform {
	p := workloads.DefaultPlatform()
	p.GPU = gpudev.Generic(512 * units.MiB)
	return p
}

func TestTrainFitsAllSystemsAgree(t *testing.T) {
	m := tinyModel()
	p := tinyPlatform()
	cfg := TrainConfig{Model: m, Batch: 8, Steps: 4} // ~0.33 GB fits in 0.5 GB
	var through []float64
	for _, sys := range []workloads.System{workloads.NoUVM, workloads.UVMOpt, workloads.UvmDiscard, workloads.UvmDiscardLazy} {
		r, err := Train(p, sys, cfg)
		if err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		if r.Throughput <= 0 {
			t.Fatalf("%v: zero throughput", sys)
		}
		through = append(through, r.Throughput)
		// When it fits, traffic is just per-step input staging.
		if r.TrafficGB() > 0.1 {
			t.Errorf("%v: traffic %.3f GB at fits", sys, r.TrafficGB())
		}
	}
	// No-UVM is the fastest (no driver bookkeeping); eager discard is the
	// slowest of the UVM variants (unnecessary unmapping, §7.5.1).
	noUVM, uvmOpt, eager, lazy := through[0], through[1], through[2], through[3]
	if noUVM < uvmOpt {
		t.Errorf("No-UVM (%.1f) should be at least as fast as UVM-opt (%.1f)", noUVM, uvmOpt)
	}
	if eager >= uvmOpt {
		t.Errorf("eager discard (%.1f) should cost throughput vs UVM-opt (%.1f) when fitting", eager, uvmOpt)
	}
	if lazy < eager {
		t.Errorf("lazy (%.1f) should beat eager (%.1f)", lazy, eager)
	}
}

func TestTrainOversubscribed(t *testing.T) {
	m := tinyModel()
	p := tinyPlatform()
	cfg := TrainConfig{Model: m, Batch: 60, Steps: 4} // ~1.06 GB vs 0.5 GB

	if _, err := Train(p, workloads.NoUVM, cfg); err == nil {
		t.Error("No-UVM should fail when the footprint exceeds GPU memory")
	}
	base, err := Train(p, workloads.UVMOpt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	disc, err := Train(p, workloads.UvmDiscard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := Train(p, workloads.UvmDiscardLazy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if disc.TrafficBytes >= base.TrafficBytes {
		t.Errorf("discard traffic %.2f GB >= baseline %.2f GB", disc.TrafficGB(), base.TrafficGB())
	}
	if disc.Throughput <= base.Throughput {
		t.Errorf("discard throughput %.1f <= baseline %.1f", disc.Throughput, base.Throughput)
	}
	if lazy.Throughput < disc.Throughput {
		t.Errorf("lazy (%.1f) should be >= eager (%.1f) when oversubscribed",
			lazy.Throughput, disc.Throughput)
	}
	if disc.SavedD2H == 0 {
		t.Error("no saved D2H under oversubscription")
	}
}

func TestTrainTrafficGrowsWithBatch(t *testing.T) {
	m := tinyModel()
	p := tinyPlatform()
	var prev uint64
	for _, batch := range []int{40, 60, 80} {
		r, err := Train(p, workloads.UVMOpt, TrainConfig{Model: m, Batch: batch, Steps: 3})
		if err != nil {
			t.Fatal(err)
		}
		if r.TrafficBytes <= prev {
			t.Errorf("traffic did not grow at batch %d: %d <= %d", batch, r.TrafficBytes, prev)
		}
		prev = r.TrafficBytes
	}
}

func TestTrainThroughputFallsWithOversubscription(t *testing.T) {
	m := tinyModel()
	p := tinyPlatform()
	fits, err := Train(p, workloads.UVMOpt, TrainConfig{Model: m, Batch: 8, Steps: 4})
	if err != nil {
		t.Fatal(err)
	}
	over, err := Train(p, workloads.UVMOpt, TrainConfig{Model: m, Batch: 70, Steps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if over.Throughput >= fits.Throughput {
		t.Errorf("throughput should fall under oversubscription: %.1f >= %.1f",
			over.Throughput, fits.Throughput)
	}
}

func TestTrainInvalidConfigs(t *testing.T) {
	p := tinyPlatform()
	if _, err := Train(p, workloads.UVMOpt, TrainConfig{}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Train(p, workloads.UVMOpt, TrainConfig{Model: tinyModel(), Batch: 0}); err == nil {
		t.Error("zero batch accepted")
	}
	if _, err := Train(p, workloads.PyTorchLMS, TrainConfig{Model: tinyModel(), Batch: 4}); err == nil {
		t.Error("LMS should be rejected here (lives in internal/lms)")
	}
}

func TestTrainDeterminism(t *testing.T) {
	m := tinyModel()
	p := tinyPlatform()
	cfg := TrainConfig{Model: m, Batch: 50, Steps: 3}
	a, err := Train(p, workloads.UvmDiscard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(p, workloads.UvmDiscard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TrafficBytes != b.TrafficBytes || a.Throughput != b.Throughput {
		t.Error("training runs are not deterministic")
	}
}

// Recomputation drops the stored stashes: the footprint shrinks to the
// activations plus one shared scratch.
func TestRecomputeFootprint(t *testing.T) {
	m := tinyModel()
	for _, batch := range []int{8, 40, 90} {
		full := m.FootprintBytes(batch)
		rec := m.RecomputeFootprintBytes(batch)
		if rec >= full {
			t.Errorf("batch %d: recompute footprint %d not smaller than %d", batch, rec, full)
		}
	}
	if m.MaxStashPerSample(10) == 0 {
		t.Error("max stash should be positive after calibration")
	}
}

// At a batch where normal training oversubscribes but the recompute
// footprint fits, recomputation eliminates the transfers at a compute cost.
func TestRecomputeTradesComputeForTraffic(t *testing.T) {
	m := tinyModel()
	p := tinyPlatform()
	batch := 36 // full footprint ~0.69 GB vs 0.5 GB GPU; recompute ~0.49 GB fits
	if m.FootprintBytes(batch) <= 512*units.MiB {
		t.Fatalf("test premise broken: full footprint fits (%d)", m.FootprintBytes(batch))
	}
	if m.RecomputeFootprintBytes(batch) > 512*units.MiB {
		t.Fatalf("test premise broken: recompute footprint does not fit (%d)",
			m.RecomputeFootprintBytes(batch))
	}
	normal, err := Train(p, workloads.UVMOpt, TrainConfig{Model: m, Batch: batch, Steps: 3})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Train(p, workloads.UVMOpt, TrainConfig{Model: m, Batch: batch, Steps: 3, Recompute: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.TrafficBytes*4 > normal.TrafficBytes {
		t.Errorf("recompute should eliminate most traffic: %.3f GB vs %.3f GB",
			float64(rec.TrafficBytes)/1e9, float64(normal.TrafficBytes)/1e9)
	}
	if rec.Footprint >= normal.Footprint {
		t.Error("recompute footprint not reported smaller")
	}
	// The recompute run pays extra forward passes: a fitting run without
	// recompute at a small batch beats a fitting recompute run per sample.
	smallFit, err := Train(p, workloads.UVMOpt, TrainConfig{Model: m, Batch: 8, Steps: 3})
	if err != nil {
		t.Fatal(err)
	}
	perSampleFit := 1.0 / smallFit.Throughput * 8
	perSampleRec := 1.0 / rec.Throughput * float64(batch)
	_ = perSampleFit
	_ = perSampleRec
	// (Throughput comparisons across batch sizes are apples-to-oranges in
	// general; the essential assertions are the traffic and footprint.)
}

// Recomputation composes with discard without errors and with no more
// traffic than recomputation alone.
func TestRecomputeComposesWithDiscard(t *testing.T) {
	m := tinyModel()
	p := tinyPlatform()
	cfg := TrainConfig{Model: m, Batch: 90, Steps: 3, Recompute: true}
	plain, err := Train(p, workloads.UVMOpt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	withDiscard, err := Train(p, workloads.UvmDiscard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if withDiscard.TrafficBytes > plain.TrafficBytes {
		t.Errorf("discard increased recompute traffic: %d > %d",
			withDiscard.TrafficBytes, plain.TrafficBytes)
	}
}

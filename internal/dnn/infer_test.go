package dnn

import (
	"testing"

	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
)

func servingPlatform() workloads.Platform {
	p := workloads.DefaultPlatform()
	p.GPU = gpudev.Generic(256 * units.MiB)
	return p
}

func servedModel() *ModelSpec {
	return LargeModel(384*units.MiB, 8) // 1.5x GPU memory in weights
}

func TestLargeModelShape(t *testing.T) {
	m := LargeModel(240*units.MiB, 6)
	if len(m.Layers) != 6 {
		t.Fatalf("layers = %d", len(m.Layers))
	}
	if m.TotalWeights() != 240*units.MiB {
		t.Errorf("weights = %s", units.Format(m.TotalWeights()))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if LargeModel(units.GiB, 0).Layers == nil {
		t.Error("default layer count broken")
	}
}

func TestInferWeightsEvictWithoutHints(t *testing.T) {
	r, err := Infer(servingPlatform(), InferConfig{
		Model: servedModel(), Batch: 8, Requests: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Oversubscribed weights ping-pong: substantial D2H despite the
	// weights never being modified.
	if r.D2HBytes < uint64(100*units.MiB) {
		t.Errorf("expected weight eviction D2H, got %.3f GB", float64(r.D2HBytes)/1e9)
	}
	if r.Throughput <= 0 {
		t.Error("no throughput")
	}
}

func TestReadMostlyEliminatesWeightEvictions(t *testing.T) {
	base, err := Infer(servingPlatform(), InferConfig{
		Model: servedModel(), Batch: 8, Requests: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	hinted, err := Infer(servingPlatform(), InferConfig{
		Model: servedModel(), Batch: 8, Requests: 3, AdviseWeights: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hinted.D2HBytes*4 > base.D2HBytes {
		t.Errorf("read-mostly should eliminate most D2H: %.3f GB vs %.3f GB",
			float64(hinted.D2HBytes)/1e9, float64(base.D2HBytes)/1e9)
	}
	if hinted.Throughput <= base.Throughput {
		t.Errorf("read-mostly should improve throughput: %.1f vs %.1f",
			hinted.Throughput, base.Throughput)
	}
}

func TestInferDiscardAndHintsCompose(t *testing.T) {
	both, err := Infer(servingPlatform(), InferConfig{
		Model: servedModel(), Batch: 8, Requests: 3,
		Discard: true, AdviseWeights: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	only, err := Infer(servingPlatform(), InferConfig{
		Model: servedModel(), Batch: 8, Requests: 3, AdviseWeights: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if both.TrafficBytes > only.TrafficBytes {
		t.Errorf("adding discard should not add traffic: %.3f vs %.3f GB",
			float64(both.TrafficBytes)/1e9, float64(only.TrafficBytes)/1e9)
	}
}

func TestInferInvalidConfig(t *testing.T) {
	if _, err := Infer(servingPlatform(), InferConfig{}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Infer(servingPlatform(), InferConfig{Model: servedModel()}); err == nil {
		t.Error("zero batch accepted")
	}
}

func TestInferDeterminism(t *testing.T) {
	cfg := InferConfig{Model: servedModel(), Batch: 8, Requests: 3, Discard: true}
	a, err := Infer(servingPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Infer(servingPlatform(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TrafficBytes != b.TrafficBytes || a.Runtime != b.Runtime {
		t.Error("inference runs are not deterministic")
	}
}

// Pipeline serving: splitting the stages across two GPUs halves each
// stage's weight footprint — the weights fit, the ping-pong disappears,
// and the activations hand off over the peer fabric.
func TestInferPipelineAcrossGPUs(t *testing.T) {
	one, err := Infer(servingPlatform(), InferConfig{
		Model: servedModel(), Batch: 8, Requests: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Infer(servingPlatform(), InferConfig{
		Model: servedModel(), Batch: 8, Requests: 3, GPUs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 384 MiB of weights across two 256 MiB GPUs: everything fits.
	if two.TrafficBytes*2 > one.TrafficBytes {
		t.Errorf("pipelining should slash PCIe traffic: %.3f GB vs %.3f GB",
			float64(two.TrafficBytes)/1e9, float64(one.TrafficBytes)/1e9)
	}
	if two.PeerBytes == 0 {
		t.Error("no peer handoffs recorded")
	}
	if two.Throughput <= one.Throughput {
		t.Errorf("pipeline not faster: %.1f <= %.1f", two.Throughput, one.Throughput)
	}
	// Validation: more stages than layers.
	if _, err := Infer(servingPlatform(), InferConfig{
		Model: servedModel(), Batch: 8, GPUs: 99,
	}); err == nil {
		t.Error("over-partitioning accepted")
	}
}

package promexp

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenFamilies is a fixed exposition exercising every renderer feature:
// counters with and without labels, gauges, label-value escaping, and a
// histogram with cumulative buckets.
func goldenFamilies(t *testing.T) []Family {
	t.Helper()
	h := MustHistogram(0.1, 0.5, 1)
	for _, v := range []float64{0.05, 0.05, 0.3, 0.7, 2.5} {
		h.Observe(v)
	}
	return []Family{
		Counter("uvmsim_transfer_bytes_total",
			"Bytes moved over the simulated interconnect.",
			1<<30, L("device", "gpu0"), L("direction", "H2D"), L("cause", "fault")),
		{
			Name: "uvmsim_evictions_total",
			Help: "Chunk allocations by eviction source.",
			Kind: KindCounter,
			Samples: []Sample{
				{Labels: []Label{L("device", "gpu0"), L("source", "discarded")}, Value: 42},
				{Labels: []Label{L("device", "gpu0"), L("source", "lru")}, Value: 7},
			},
		},
		Gauge("uvmsimd_queue_depth", "Jobs waiting in the admission queue.", 3),
		Gauge("uvmsim_escape_check",
			"Label values with \\ backslash, \" quote, and\nnewline survive.",
			1, L("path", `C:\tmp`), L("quote", `say "hi"`), L("nl", "a\nb")),
		h.Family("uvmsimd_job_duration_seconds",
			"Wall-clock latency of finished jobs."),
	}
}

func TestWriteGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, goldenFamilies(t)); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.prom")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("rendering drifted from golden file:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
	// The golden exposition must satisfy our own checker.
	if probs := CheckText(buf.Bytes()); len(probs) != 0 {
		t.Errorf("golden exposition fails Check: %v", probs)
	}
}

func TestWriteRejectsBadNames(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []Family{Counter("0bad", "", 1)}); err == nil {
		t.Error("invalid metric name accepted")
	}
	if err := Write(&buf, []Family{Counter("ok_total", "", 1, L("0bad", "x"))}); err == nil {
		t.Error("invalid label name accepted")
	}
}

func TestHistogramBucketsCumulativeAndMonotonic(t *testing.T) {
	h := MustHistogram(1, 2, 4)
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	f := h.Family("d_seconds", "")
	// buckets: le=1 -> 1, le=2 -> 3, le=4 -> 4, +Inf -> 5
	wantCum := []float64{1, 3, 4, 5}
	var got []float64
	for _, s := range f.Samples {
		if s.Suffix == "_bucket" {
			got = append(got, s.Value)
		}
	}
	if len(got) != len(wantCum) {
		t.Fatalf("bucket samples = %v, want %v", got, wantCum)
	}
	for i := range got {
		if got[i] != wantCum[i] {
			t.Errorf("bucket %d = %v, want %v", i, got[i], wantCum[i])
		}
	}
	if mean, ok := h.Mean(); !ok || math.Abs(mean-(0.5+1.5+1.5+3+100)/5) > 1e-9 {
		t.Errorf("Mean = %v, %v", mean, ok)
	}
	// A boundary value lands in the bucket whose le equals it.
	hb := MustHistogram(1, 2)
	hb.Observe(1)
	if f := hb.Family("b", ""); f.Samples[0].Value != 1 {
		t.Errorf("value on bucket boundary not counted le-inclusive: %+v", f.Samples)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(2, 1); err == nil {
		t.Error("unsorted bounds accepted")
	}
	if _, err := NewHistogram(1, 1); err == nil {
		t.Error("duplicate bounds accepted")
	}
	if _, err := NewHistogram(math.Inf(1)); err == nil {
		t.Error("+Inf bound accepted")
	}
	if h, err := NewHistogram(); err != nil || len(h.bounds) != len(DefBuckets) {
		t.Errorf("default buckets: %v, %v", h, err)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := MustHistogram(DefBuckets...)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i%200) / 100)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d, want 8000", h.Count())
	}
}

func TestCheckCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string // substring of a reported problem; "" means clean
	}{
		{"clean", "# TYPE a_total counter\na_total 1\n", ""},
		{"clean labels", "a{x=\"1\",y=\"2\"} 3\n", ""},
		{"bad name", "2bad 1\n", "invalid metric name"},
		{"bad label", "a{__x=\"1\"} 1\n", "invalid label name"},
		{"dup label", "a{x=\"1\",x=\"2\"} 1\n", "duplicate label"},
		{"bad value", "a one\n", "bad value"},
		{"bad escape", "a{x=\"\\t\"} 1\n", "invalid escape"},
		{"dup sample", "a 1\na 2\n", "duplicate sample"},
		{"dup type", "# TYPE a counter\n# TYPE a gauge\n", "duplicate TYPE"},
		{"unknown type", "# TYPE a flurble\n", "unknown TYPE"},
		{"type after samples", "a 1\n# TYPE a counter\n", "after its samples"},
		{"negative counter", "# TYPE a counter\na -1\n", "negative value"},
		{"interleaved", "a 1\nb 1\na{x=\"1\"} 2\n", "not contiguous"},
		{"hist no inf",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
			`missing le="+Inf"`},
		{"hist not monotonic",
			"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 6\nh_sum 1\nh_count 6\n",
			"not monotonically"},
		{"hist inf vs count",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 6\nh_sum 1\nh_count 7\n",
			"!= _count"},
		{"hist unsorted le",
			"# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
			"not sorted"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			probs := CheckText([]byte(tc.text))
			if tc.want == "" {
				if len(probs) != 0 {
					t.Errorf("clean exposition reported: %v", probs)
				}
				return
			}
			for _, p := range probs {
				if strings.Contains(p, tc.want) {
					return
				}
			}
			t.Errorf("problems %v do not mention %q", probs, tc.want)
		})
	}
}

// Package promexp renders metrics in the Prometheus text exposition format
// (version 0.0.4) using only the standard library. It is the scrape surface
// of the uvmsimd observability plane: the service builds a []Family on every
// GET /metrics from its counters, queue gauges, latency histograms, and the
// simulation collectors of active runs, and Write renders them with HELP and
// TYPE lines, escaped label values, and deterministic ordering.
//
// The package deliberately has no registry and no background state: a scrape
// is a pure function of the samples the caller assembles, which keeps the
// exporter trivially consistent with the snapshot semantics of
// metrics.Collector (every scrape sees one atomic snapshot per collector,
// never a torn read). The only stateful type is Histogram, whose Observe is
// safe for concurrent use because the service's worker pool records job
// latencies from many goroutines.
//
// lint.go holds Check, a validator for the same format; cmd/uvmlint -expfmt
// and CI use it to prove the served exposition parses.
package promexp

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind is a metric family's TYPE.
type Kind int

const (
	// KindCounter is a monotonically increasing value.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a bucketed distribution (_bucket/_sum/_count
	// samples with an "le" label).
	KindHistogram
	// KindUntyped is a value with no declared type.
	KindUntyped
)

// String renders the TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	case KindUntyped:
		return "untyped"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Label is one name="value" pair. Values may contain any UTF-8; Write
// escapes backslashes, quotes, and newlines.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for building a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Sample is one exposition line of a family. Suffix is empty for plain
// counters and gauges; histogram samples use "_bucket", "_sum", "_count".
type Sample struct {
	Suffix string
	Labels []Label
	Value  float64
}

// Family is one metric family: a HELP line, a TYPE line, and its samples.
type Family struct {
	Name    string
	Help    string
	Kind    Kind
	Samples []Sample
}

// Counter builds a single-sample counter family.
func Counter(name, help string, v float64, labels ...Label) Family {
	return Family{Name: name, Help: help, Kind: KindCounter,
		Samples: []Sample{{Labels: labels, Value: v}}}
}

// Gauge builds a single-sample gauge family.
func Gauge(name, help string, v float64, labels ...Label) Family {
	return Family{Name: name, Help: help, Kind: KindGauge,
		Samples: []Sample{{Labels: labels, Value: v}}}
}

// metricNameOK matches the Prometheus metric-name grammar.
func metricNameOK(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		letter := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !letter && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// labelNameOK matches the Prometheus label-name grammar (no colons).
func labelNameOK(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		letter := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !letter && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// escapeHelp escapes a HELP text: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trip float, with the spelled-out specials.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Write renders the families in order. It returns an error (writing
// nothing further) on an invalid metric or label name, so a typo in a new
// metric fails the exporter's own tests instead of producing a scrape the
// server cannot ingest.
func Write(w io.Writer, families []Family) error {
	var b strings.Builder
	for _, f := range families {
		if !metricNameOK(f.Name) {
			return fmt.Errorf("promexp: invalid metric name %q", f.Name)
		}
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, s := range f.Samples {
			b.WriteString(f.Name)
			b.WriteString(s.Suffix)
			if len(s.Labels) > 0 {
				b.WriteByte('{')
				for i, l := range s.Labels {
					if !labelNameOK(l.Name) {
						return fmt.Errorf("promexp: metric %s: invalid label name %q", f.Name, l.Name)
					}
					if i > 0 {
						b.WriteByte(',')
					}
					fmt.Fprintf(&b, `%s="%s"`, l.Name, escapeLabel(l.Value))
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatValue(s.Value))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// SortSamples orders a family's samples by their label values, for
// deterministic output when samples are assembled from map iteration.
func SortSamples(f *Family) {
	sort.SliceStable(f.Samples, func(i, j int) bool {
		a, b := f.Samples[i], f.Samples[j]
		if a.Suffix != b.Suffix {
			return a.Suffix < b.Suffix
		}
		for k := 0; k < len(a.Labels) && k < len(b.Labels); k++ {
			if a.Labels[k].Value != b.Labels[k].Value {
				return a.Labels[k].Value < b.Labels[k].Value
			}
		}
		return len(a.Labels) < len(b.Labels)
	})
}

// DefBuckets are the default latency buckets in seconds, spanning the
// quick-mode runs (milliseconds) through full-size experiment batches
// (minutes).
var DefBuckets = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Histogram is a fixed-bucket histogram safe for concurrent observation.
// Buckets are cumulative only at render time; internally each bucket counts
// its own interval so Observe is one binary search and two adds.
type Histogram struct {
	bounds []float64 // sorted upper bounds; +Inf is implicit

	mu     sync.Mutex
	counts []uint64 // len(bounds)+1: the last slot is the +Inf overflow
	sum    float64
	count  uint64
}

// NewHistogram builds a histogram with the given bucket upper bounds, which
// must be sorted strictly ascending and finite. Passing no bounds uses
// DefBuckets.
func NewHistogram(bounds ...float64) (*Histogram, error) {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("promexp: bucket bound %v is not finite", b)
		}
		if i > 0 && b <= bounds[i-1] {
			return nil, fmt.Errorf("promexp: bucket bounds not strictly ascending at %v", b)
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]uint64, len(bounds)+1)
	return h, nil
}

// MustHistogram is NewHistogram for static bucket layouts.
func MustHistogram(bounds ...float64) *Histogram {
	h, err := NewHistogram(bounds...)
	if err != nil {
		panic(err)
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: its bucket
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Mean returns the mean of all observations and whether any exist. The
// service uses it as its job-latency estimate when deriving Retry-After.
func (h *Histogram) Mean() (float64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0, false
	}
	return h.sum / float64(h.count), true
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Family renders the histogram as an exposition family: cumulative
// _bucket samples per bound plus le="+Inf", then _sum and _count. The
// labels are attached to every sample (before the le label).
func (h *Histogram) Family(name, help string, labels ...Label) Family {
	h.mu.Lock()
	counts := append([]uint64(nil), h.counts...)
	sum, count := h.sum, h.count
	h.mu.Unlock()

	f := Family{Name: name, Help: help, Kind: KindHistogram}
	var cum uint64
	for i, bound := range h.bounds {
		cum += counts[i]
		f.Samples = append(f.Samples, Sample{
			Suffix: "_bucket",
			Labels: append(append([]Label(nil), labels...), L("le", formatValue(bound))),
			Value:  float64(cum),
		})
	}
	f.Samples = append(f.Samples,
		Sample{Suffix: "_bucket",
			Labels: append(append([]Label(nil), labels...), L("le", "+Inf")),
			Value:  float64(count)},
		Sample{Suffix: "_sum", Labels: labels, Value: sum},
		Sample{Suffix: "_count", Labels: labels, Value: float64(count)},
	)
	return f
}

package promexp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Check validates a Prometheus text exposition read from r and returns one
// problem string per violation (empty means the exposition is well formed).
// It is the gate CI closes over the live /metrics endpoint: cmd/uvmlint
// -expfmt feeds a scrape through it, and the exporter's own tests feed it
// every rendering.
//
// Checked, per the text-format spec:
//
//   - line syntax: HELP/TYPE comments, samples as name[{labels}] value
//     [timestamp], blank lines and free comments allowed;
//   - metric and label names match the grammar; label values use only the
//     \\, \", and \n escapes; no duplicate label names in one sample;
//   - TYPE is a known kind, appears at most once per family, and precedes
//     that family's samples; a family's samples are contiguous;
//   - values parse as Go floats or the +Inf/-Inf/NaN specials;
//   - no two samples share a name and label set;
//   - histogram families have le-sorted, monotonically non-decreasing
//     cumulative buckets per label set, ending in an le="+Inf" bucket that
//     equals the family's _count.
func Check(r io.Reader) []string {
	c := &checker{
		types:    map[string]string{},
		helps:    map[string]bool{},
		seen:     map[string]int{},
		seenLine: map[string]int{},
		closed:   map[string]bool{},
		hists:    map[string]*histCheck{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		c.line(line, sc.Text())
	}
	if err := sc.Err(); err != nil {
		c.addf(line, "read error: %v", err)
	}
	c.finish()
	return c.problems
}

// CheckText is Check over an in-memory exposition.
func CheckText(b []byte) []string { return Check(strings.NewReader(string(b))) }

type histCheck struct {
	// buckets maps a label fingerprint (le excluded) to its le->count
	// pairs, in order of appearance.
	buckets map[string][]bucket
	counts  map[string]float64 // _count per label fingerprint
	order   []string           // fingerprints in first-seen order
}

type bucket struct {
	le    float64
	count float64
	line  int
}

type checker struct {
	problems []string
	types    map[string]string // family -> declared TYPE
	helps    map[string]bool
	seen     map[string]int  // family -> sample count
	seenLine map[string]int  // series fingerprint -> first line
	closed   map[string]bool // family had samples and a different family followed
	hists    map[string]*histCheck
	current  string // family of the most recent sample
}

func (c *checker) addf(line int, format string, args ...any) {
	c.problems = append(c.problems, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

func (c *checker) line(n int, s string) {
	if strings.TrimSpace(s) == "" {
		return
	}
	if strings.HasPrefix(s, "#") {
		c.comment(n, s)
		return
	}
	c.sample(n, s)
}

func (c *checker) comment(n int, s string) {
	fields := strings.SplitN(s, " ", 4)
	if len(fields) < 2 {
		return // free-form comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !metricNameOK(fields[2]) {
			c.addf(n, "malformed HELP line %q", s)
			return
		}
		if c.helps[fields[2]] {
			c.addf(n, "duplicate HELP for %s", fields[2])
		}
		c.helps[fields[2]] = true
	case "TYPE":
		if len(fields) < 4 || !metricNameOK(fields[2]) {
			c.addf(n, "malformed TYPE line %q", s)
			return
		}
		name, kind := fields[2], strings.TrimSpace(fields[3])
		switch kind {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			c.addf(n, "unknown TYPE %q for %s", kind, name)
		}
		if _, dup := c.types[name]; dup {
			c.addf(n, "duplicate TYPE for %s", name)
		}
		if c.seen[name] > 0 {
			c.addf(n, "TYPE for %s appears after its samples", name)
		}
		c.types[name] = kind
	}
}

// baseName strips a histogram/summary suffix when the base family was
// declared with that type.
func (c *checker) baseName(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base == name {
			continue
		}
		if t, ok := c.types[base]; ok && (t == "histogram" || t == "summary") {
			return base
		}
	}
	return name
}

func (c *checker) sample(n int, s string) {
	name, labels, rest, err := parseSampleLine(s)
	if err != nil {
		c.addf(n, "%v", err)
		return
	}
	if !metricNameOK(name) {
		c.addf(n, "invalid metric name %q", name)
		return
	}
	dup := map[string]bool{}
	for _, l := range labels {
		if l.Name != "le" && l.Name != "quantile" && !labelNameOK(l.Name) {
			c.addf(n, "metric %s: invalid label name %q", name, l.Name)
		}
		if dup[l.Name] {
			c.addf(n, "metric %s: duplicate label %q", name, l.Name)
		}
		dup[l.Name] = true
	}
	valueStr := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		valueStr = rest[:i]
		ts := strings.TrimSpace(rest[i:])
		if ts != "" {
			if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
				c.addf(n, "metric %s: bad timestamp %q", name, ts)
			}
		}
	}
	value, err := parseValue(valueStr)
	if err != nil {
		c.addf(n, "metric %s: %v", name, err)
		return
	}

	family := c.baseName(name)
	if c.closed[family] && family != c.current {
		c.addf(n, "samples of %s are not contiguous", family)
	}
	if c.current != "" && c.current != family {
		c.closed[c.current] = true
	}
	c.current = family
	c.seen[family]++

	fp := fingerprint(name, labels)
	if line, ok := c.seenLine[fp]; ok {
		c.addf(n, "duplicate sample %s (first at line %d)", fp, line)
	} else {
		c.seenLine[fp] = n
	}

	if t := c.types[family]; t == "counter" && value < 0 {
		c.addf(n, "counter %s has negative value %v", name, value)
	}
	if c.types[family] == "histogram" {
		c.histSample(n, family, name, labels, value)
	}
}

func (c *checker) histSample(n int, family, name string, labels []Label, value float64) {
	h := c.hists[family]
	if h == nil {
		h = &histCheck{buckets: map[string][]bucket{}, counts: map[string]float64{}}
		c.hists[family] = h
	}
	// Fingerprint without le, so buckets of one series group together.
	var rest []Label
	le := math.NaN()
	for _, l := range labels {
		if l.Name == "le" {
			v, err := parseValue(l.Value)
			if err != nil {
				c.addf(n, "histogram %s: bad le %q", family, l.Value)
				return
			}
			le = v
			continue
		}
		rest = append(rest, l)
	}
	fp := fingerprint(family, rest)
	switch {
	case strings.HasSuffix(name, "_bucket"):
		if math.IsNaN(le) {
			c.addf(n, "histogram %s: _bucket sample without le label", family)
			return
		}
		if _, ok := h.buckets[fp]; !ok {
			h.order = append(h.order, fp)
		}
		h.buckets[fp] = append(h.buckets[fp], bucket{le: le, count: value, line: n})
	case strings.HasSuffix(name, "_count"):
		h.counts[fp] = value
	}
}

func (c *checker) finish() {
	for family, h := range c.hists {
		for _, fp := range h.order {
			bs := h.buckets[fp]
			for i := 1; i < len(bs); i++ {
				if bs[i].le <= bs[i-1].le {
					c.addf(bs[i].line, "histogram %s{%s}: le buckets not sorted ascending", family, fp)
				}
				if bs[i].count < bs[i-1].count {
					c.addf(bs[i].line, "histogram %s{%s}: bucket counts not monotonically non-decreasing (%v after %v)",
						family, fp, bs[i].count, bs[i-1].count)
				}
			}
			last := bs[len(bs)-1]
			if !math.IsInf(last.le, +1) {
				c.addf(last.line, "histogram %s{%s}: missing le=\"+Inf\" bucket", family, fp)
				continue
			}
			if count, ok := h.counts[fp]; ok && count != last.count {
				c.addf(last.line, "histogram %s{%s}: +Inf bucket %v != _count %v",
					family, fp, last.count, count)
			}
		}
	}
}

// fingerprint renders name plus sorted labels as a series identity.
func fingerprint(name string, labels []Label) string {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteString(name)
	for _, l := range ls {
		fmt.Fprintf(&b, ",%s=%s", l.Name, l.Value)
	}
	return b.String()
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	case "":
		return 0, fmt.Errorf("missing value")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	return v, nil
}

// parseSampleLine splits `name{label="v",...} value [ts]` into parts,
// validating the label-value escape discipline.
func parseSampleLine(s string) (name string, labels []Label, rest string, err error) {
	i := strings.IndexAny(s, "{ \t")
	if i < 0 {
		return "", nil, "", fmt.Errorf("malformed sample %q", s)
	}
	name = s[:i]
	if s[i] != '{' {
		return name, nil, strings.TrimSpace(s[i:]), nil
	}
	p := i + 1
	for {
		for p < len(s) && (s[p] == ' ' || s[p] == ',') {
			p++
		}
		if p >= len(s) {
			return "", nil, "", fmt.Errorf("unterminated label set in %q", s)
		}
		if s[p] == '}' {
			p++
			break
		}
		eq := strings.IndexByte(s[p:], '=')
		if eq < 0 {
			return "", nil, "", fmt.Errorf("label without '=' in %q", s)
		}
		lname := strings.TrimSpace(s[p : p+eq])
		p += eq + 1
		if p >= len(s) || s[p] != '"' {
			return "", nil, "", fmt.Errorf("label value for %s not quoted in %q", lname, s)
		}
		p++
		var val strings.Builder
		for {
			if p >= len(s) {
				return "", nil, "", fmt.Errorf("unterminated label value for %s in %q", lname, s)
			}
			ch := s[p]
			if ch == '"' {
				p++
				break
			}
			if ch == '\\' {
				if p+1 >= len(s) {
					return "", nil, "", fmt.Errorf("dangling escape in label value for %s", lname)
				}
				switch s[p+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", nil, "", fmt.Errorf("invalid escape \\%c in label value for %s", s[p+1], lname)
				}
				p += 2
				continue
			}
			val.WriteByte(ch)
			p++
		}
		labels = append(labels, Label{Name: lname, Value: val.String()})
	}
	return name, labels, strings.TrimSpace(s[p:]), nil
}

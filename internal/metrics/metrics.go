// Package metrics collects the driver-level instrumentation the paper's
// evaluation reports: PCIe traffic split by direction and cause, fault and
// eviction counts, zero-fill work, API time, and the transfers *avoided* by
// the discard directive.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
)

// Direction of a transfer over the interconnect.
type Direction int

const (
	// H2D is host-to-device (CPU → GPU).
	H2D Direction = iota
	// D2H is device-to-host (GPU → CPU).
	D2H
	numDirections
)

// String returns "H2D" or "D2H".
func (d Direction) String() string {
	switch d {
	case H2D:
		return "H2D"
	case D2H:
		return "D2H"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Cause classifies why a transfer happened.
type Cause int

const (
	// CauseFault is a migration triggered by a GPU or CPU page fault.
	CauseFault Cause = iota
	// CausePrefetch is a migration performed by cudaMemPrefetchAsync.
	CausePrefetch
	// CauseEviction is a swap-out performed by the eviction process under
	// GPU memory pressure.
	CauseEviction
	// CauseMemcpy is an explicit cudaMemcpy (No-UVM baseline only).
	CauseMemcpy
	// CauseRemote is a cache-coherent remote access over an NVLink-class
	// interconnect: data crosses the link without migrating (§2.3).
	CauseRemote
	numCauses
)

// String names the cause.
func (c Cause) String() string {
	switch c {
	case CauseFault:
		return "fault"
	case CausePrefetch:
		return "prefetch"
	case CauseEviction:
		return "eviction"
	case CauseMemcpy:
		return "memcpy"
	case CauseRemote:
		return "remote"
	default:
		return fmt.Sprintf("Cause(%d)", int(c))
	}
}

// EvictSource classifies where the eviction process found a chunk (§5.5).
type EvictSource int

const (
	// EvictFree means the allocation was satisfied from the free queue (no
	// eviction needed).
	EvictFree EvictSource = iota
	// EvictUnused reclaimed a leftover chunk (no transfer).
	EvictUnused
	// EvictDiscarded reclaimed a discarded chunk (no transfer — the
	// paper's savings mechanism).
	EvictDiscarded
	// EvictLRU swapped out the least-recently-used chunk (D2H transfer).
	EvictLRU
	numEvictSources
)

// String names the eviction source.
func (s EvictSource) String() string {
	switch s {
	case EvictFree:
		return "free"
	case EvictUnused:
		return "unused"
	case EvictDiscarded:
		return "discarded"
	case EvictLRU:
		return "lru"
	default:
		return fmt.Sprintf("EvictSource(%d)", int(s))
	}
}

// Collector accumulates counters for one simulation run. The zero value is
// ready to use.
//
// Ownership model (hot path): the counters are lock-free atomics. The
// driver goroutine that owns a run is the only writer on the Add* paths,
// so an add is a single uncontended atomic RMW — no mutex, no lock
// acquisition in the driver loop. Concurrent readers (the service's
// /metrics exporter snapshotting a live run, SSE progress reporters) load
// the same atomics, so scraping a running collector stays race-free. Each
// counter is individually exact and monotonic; a snapshot taken mid-add
// may be skewed by the operation in flight, which monotonic counters
// tolerate. Deterministic outputs only ever read a collector after its
// run finished, where every view is exact.
//
// The mutex below guards only the cold composite state declared after it:
// the per-device residency gauges (republished at checkpoint stride, not
// per-op) and the API-time map.
type Collector struct {
	bytes    [numDirections][numCauses]atomic.Uint64
	ops      [numDirections][numCauses]atomic.Int64
	evicts   [numEvictSources]atomic.Int64
	savedH2D atomic.Uint64 // bytes of H2D transfer avoided by discard
	savedD2H atomic.Uint64 // bytes of D2H transfer avoided by discard

	peerBytes atomic.Uint64 // GPU-to-GPU transfers (do not cross host DRAM)
	peerOps   atomic.Int64
	peerSaved atomic.Uint64 // peer transfers avoided by discard

	faultBatches  atomic.Int64
	faultedBlocks atomic.Int64
	zeroBlocks    atomic.Int64
	zeroPages     atomic.Int64
	unmapBlocks   atomic.Int64
	mapBlocks     atomic.Int64
	discardCalls  atomic.Int64
	discardBlocks atomic.Int64

	// Fault-recovery instrumentation (internal/faultinject): every injected
	// failure the driver survives is visible here, so the chaos harness can
	// prove none was silently dropped.
	migrateRetries atomic.Int64  // failed DMA/peer migration attempts that were retried
	unmapRetries   atomic.Int64  // reissued unmap/TLB shootdowns
	faultReplays   atomic.Int64  // replayed fault rounds after buffer overflow
	degradedBlocks atomic.Int64  // migrations degraded to coherent host-pinned access
	degradedBytes  atomic.Uint64 // bytes served through the degradation path
	poisonedChunks atomic.Int64  // chunks quarantined by ECC-style poison
	poisonLost     atomic.Uint64 // poisoned bytes with no valid host copy (data lost)
	poisonSaved    atomic.Uint64 // poisoned bytes recovered from a valid host copy

	mu sync.Mutex

	// devRes holds per-device residency gauges, indexed by GPU. Unlike the
	// counters above these are point-in-time values: the driver republishes
	// them at checkpoints (core.Driver.PublishResidency) and the service's
	// /metrics exporter renders them with device="gpuN" labels.
	devRes []DeviceResidency
	// devResInline backs devRes in the single-GPU case so the first
	// PublishResidency of a run does not heap-allocate; multi-GPU runs
	// grow onto the heap as usual.
	devResInline [1]DeviceResidency

	apiTime map[string]sim.Time
}

// DeviceResidency is a point-in-time view of one simulated GPU's physical
// chunk pool, in bytes, split by the driver's page queues (§5.5). Used is
// live resident data; Unused and Discarded hold dead data reclaimable
// without a transfer; Reserved models the oversubscription knob's idle
// co-resident program; Poisoned is ECC-quarantined capacity.
type DeviceResidency struct {
	CapacityBytes  uint64
	FreeBytes      uint64
	UnusedBytes    uint64
	UsedBytes      uint64
	DiscardedBytes uint64
	ReservedBytes  uint64
	PoisonedBytes  uint64
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{apiTime: make(map[string]sim.Time)}
}

// AddTransfer records a transfer of n bytes.
func (c *Collector) AddTransfer(dir Direction, cause Cause, n uint64) {
	c.bytes[dir][cause].Add(n)
	c.ops[dir][cause].Add(1)
}

// AddSaved records n bytes of transfer avoided because the data was
// discarded.
func (c *Collector) AddSaved(dir Direction, n uint64) {
	if dir == H2D {
		c.savedH2D.Add(n)
	} else {
		c.savedD2H.Add(n)
	}
}

// AddPeer records a GPU-to-GPU transfer of n bytes over the peer fabric.
func (c *Collector) AddPeer(n uint64) {
	c.peerBytes.Add(n)
	c.peerOps.Add(1)
}

// AddPeerSaved records n bytes of peer transfer avoided by discard.
func (c *Collector) AddPeerSaved(n uint64) {
	c.peerSaved.Add(n)
}

// Peer returns (bytes, ops) of GPU-to-GPU traffic.
func (c *Collector) Peer() (bytes uint64, ops int64) {
	return c.peerBytes.Load(), c.peerOps.Load()
}

// PeerSaved returns the peer-transfer bytes avoided by discard.
func (c *Collector) PeerSaved() uint64 {
	return c.peerSaved.Load()
}

// AddEviction records one chunk allocation satisfied from the given source.
func (c *Collector) AddEviction(src EvictSource) {
	c.evicts[src].Add(1)
}

// AddFaultBatch records one fault-service batch covering n blocks.
func (c *Collector) AddFaultBatch(blocks int) {
	c.faultBatches.Add(1)
	c.faultedBlocks.Add(int64(blocks))
}

// AddZeroFill records zero-fill work: whole blocks and loose 4 KiB pages.
func (c *Collector) AddZeroFill(blocks, pages int) {
	c.zeroBlocks.Add(int64(blocks))
	c.zeroPages.Add(int64(pages))
}

// AddUnmap records PTE-destruction work on n blocks.
func (c *Collector) AddUnmap(blocks int) {
	c.unmapBlocks.Add(int64(blocks))
}

// AddMap records PTE-establishment work on n blocks.
func (c *Collector) AddMap(blocks int) {
	c.mapBlocks.Add(int64(blocks))
}

// AddDiscard records one discard API call covering n blocks.
func (c *Collector) AddDiscard(blocks int) {
	c.discardCalls.Add(1)
	c.discardBlocks.Add(int64(blocks))
}

// AddMigrateRetry records one failed DMA or peer migration attempt that the
// driver retried (or, once retries were exhausted, degraded).
func (c *Collector) AddMigrateRetry() {
	c.migrateRetries.Add(1)
}

// AddUnmapRetry records one reissued unmap/TLB shootdown.
func (c *Collector) AddUnmapRetry() {
	c.unmapRetries.Add(1)
}

// AddFaultReplay records n replayed fault rounds forced by a
// replayable-fault-buffer overflow.
func (c *Collector) AddFaultReplay(rounds int) {
	c.faultReplays.Add(int64(rounds))
}

// AddDegraded records one block migration that fell back to coherent
// host-pinned access after exhausting its retries.
func (c *Collector) AddDegraded(bytes uint64) {
	c.degradedBlocks.Add(1)
	c.degradedBytes.Add(bytes)
}

// AddPoison records one chunk quarantined by ECC-style poison: recovered
// bytes had a valid host copy, lost bytes did not.
func (c *Collector) AddPoison(recovered, lost uint64) {
	c.poisonedChunks.Add(1)
	c.poisonSaved.Add(recovered)
	c.poisonLost.Add(lost)
}

// MigrateRetries returns the number of retried migration attempts.
func (c *Collector) MigrateRetries() int64 {
	return c.migrateRetries.Load()
}

// UnmapRetries returns the number of reissued unmap shootdowns.
func (c *Collector) UnmapRetries() int64 {
	return c.unmapRetries.Load()
}

// FaultReplays returns the number of replayed fault rounds.
func (c *Collector) FaultReplays() int64 {
	return c.faultReplays.Load()
}

// Degraded returns (blocks, bytes) that fell back to coherent host-pinned
// access.
func (c *Collector) Degraded() (blocks int64, bytes uint64) {
	return c.degradedBlocks.Load(), c.degradedBytes.Load()
}

// Poisoned returns quarantined-chunk counts: recovered bytes had a valid
// host copy, lost bytes did not.
func (c *Collector) Poisoned() (chunks int64, recovered, lost uint64) {
	return c.poisonedChunks.Load(), c.poisonSaved.Load(), c.poisonLost.Load()
}

// SetDeviceResidency records a point-in-time residency view for GPU gpu,
// growing the per-device table as needed.
func (c *Collector) SetDeviceResidency(gpu int, r DeviceResidency) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.devRes == nil {
		c.devRes = c.devResInline[:0]
	}
	for len(c.devRes) <= gpu {
		c.devRes = append(c.devRes, DeviceResidency{})
	}
	c.devRes[gpu] = r
}

// DeviceResidency returns a copy of the per-device residency gauges, one
// entry per GPU that has published (empty until the driver's first
// PublishResidency).
func (c *Collector) DeviceResidency() []DeviceResidency {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]DeviceResidency(nil), c.devRes...)
}

// Merge adds src's counters into c. The service's /metrics exporter uses it
// to maintain one cumulative simulation collector across finished runs, so
// the exported counters stay monotonic while each run keeps its own
// isolated collector. Residency gauges are not counters: src's gauges
// overwrite c's when src has published any (last run wins). src is
// snapshotted first, so merging a live collector is safe.
func (c *Collector) Merge(src *Collector) {
	s := src.Snapshot()
	for dir := Direction(0); dir < numDirections; dir++ {
		for cause := Cause(0); cause < numCauses; cause++ {
			c.bytes[dir][cause].Add(s.bytes[dir][cause].Load())
			c.ops[dir][cause].Add(s.ops[dir][cause].Load())
		}
	}
	for es := EvictSource(0); es < numEvictSources; es++ {
		c.evicts[es].Add(s.evicts[es].Load())
	}
	c.savedH2D.Add(s.savedH2D.Load())
	c.savedD2H.Add(s.savedD2H.Load())
	c.peerBytes.Add(s.peerBytes.Load())
	c.peerOps.Add(s.peerOps.Load())
	c.peerSaved.Add(s.peerSaved.Load())
	c.faultBatches.Add(s.faultBatches.Load())
	c.faultedBlocks.Add(s.faultedBlocks.Load())
	c.zeroBlocks.Add(s.zeroBlocks.Load())
	c.zeroPages.Add(s.zeroPages.Load())
	c.unmapBlocks.Add(s.unmapBlocks.Load())
	c.mapBlocks.Add(s.mapBlocks.Load())
	c.discardCalls.Add(s.discardCalls.Load())
	c.discardBlocks.Add(s.discardBlocks.Load())
	c.migrateRetries.Add(s.migrateRetries.Load())
	c.unmapRetries.Add(s.unmapRetries.Load())
	c.faultReplays.Add(s.faultReplays.Load())
	c.degradedBlocks.Add(s.degradedBlocks.Load())
	c.degradedBytes.Add(s.degradedBytes.Load())
	c.poisonedChunks.Add(s.poisonedChunks.Load())
	c.poisonLost.Add(s.poisonLost.Load())
	c.poisonSaved.Add(s.poisonSaved.Load())
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(s.devRes) > 0 {
		c.devRes = append(c.devRes[:0], s.devRes...)
	}
	if c.apiTime == nil {
		c.apiTime = make(map[string]sim.Time, len(s.apiTime))
	}
	for k, v := range s.apiTime {
		c.apiTime[k] += v
	}
}

// AddAPITime attributes host-side time to a named API.
func (c *Collector) AddAPITime(api string, t sim.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.apiTime == nil {
		c.apiTime = make(map[string]sim.Time)
	}
	c.apiTime[api] += t
}

// Bytes returns the bytes transferred in dir for cause.
func (c *Collector) Bytes(dir Direction, cause Cause) uint64 {
	return c.bytes[dir][cause].Load()
}

// Ops returns the number of DMA operations in dir for cause.
func (c *Collector) Ops(dir Direction, cause Cause) int64 {
	return c.ops[dir][cause].Load()
}

// TotalBytes returns all interconnect traffic in one direction.
func (c *Collector) TotalBytes(dir Direction) uint64 {
	var t uint64
	for cause := Cause(0); cause < numCauses; cause++ {
		t += c.bytes[dir][cause].Load()
	}
	return t
}

// Traffic returns total interconnect traffic in both directions — the
// quantity the paper's "PCIe traffic (GB)" tables report.
func (c *Collector) Traffic() uint64 {
	return c.TotalBytes(H2D) + c.TotalBytes(D2H)
}

// Saved returns the bytes of transfer avoided by discard in each direction.
func (c *Collector) Saved() (h2d, d2h uint64) {
	return c.savedH2D.Load(), c.savedD2H.Load()
}

// Evictions returns the count for one eviction source.
func (c *Collector) Evictions(src EvictSource) int64 {
	return c.evicts[src].Load()
}

// FaultBatches returns (batches, totalFaultedBlocks).
func (c *Collector) FaultBatches() (batches, blocks int64) {
	return c.faultBatches.Load(), c.faultedBlocks.Load()
}

// ZeroFills returns (wholeBlocks, loosePages).
func (c *Collector) ZeroFills() (blocks, pages int64) {
	return c.zeroBlocks.Load(), c.zeroPages.Load()
}

// Unmaps returns the number of blocks whose PTEs were destroyed.
func (c *Collector) Unmaps() int64 {
	return c.unmapBlocks.Load()
}

// Maps returns the number of blocks whose PTEs were established.
func (c *Collector) Maps() int64 {
	return c.mapBlocks.Load()
}

// Discards returns (calls, blocksCovered).
func (c *Collector) Discards() (calls, blocks int64) {
	return c.discardCalls.Load(), c.discardBlocks.Load()
}

// APITime returns accumulated host time for a named API.
func (c *Collector) APITime(api string) sim.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.apiTime[api]
}

// Reset zeroes all counters.
func (c *Collector) Reset() {
	for dir := Direction(0); dir < numDirections; dir++ {
		for cause := Cause(0); cause < numCauses; cause++ {
			c.bytes[dir][cause].Store(0)
			c.ops[dir][cause].Store(0)
		}
	}
	for es := EvictSource(0); es < numEvictSources; es++ {
		c.evicts[es].Store(0)
	}
	c.savedH2D.Store(0)
	c.savedD2H.Store(0)
	c.peerBytes.Store(0)
	c.peerOps.Store(0)
	c.peerSaved.Store(0)
	c.faultBatches.Store(0)
	c.faultedBlocks.Store(0)
	c.zeroBlocks.Store(0)
	c.zeroPages.Store(0)
	c.unmapBlocks.Store(0)
	c.mapBlocks.Store(0)
	c.discardCalls.Store(0)
	c.discardBlocks.Store(0)
	c.migrateRetries.Store(0)
	c.unmapRetries.Store(0)
	c.faultReplays.Store(0)
	c.degradedBlocks.Store(0)
	c.degradedBytes.Store(0)
	c.poisonedChunks.Store(0)
	c.poisonLost.Store(0)
	c.poisonSaved.Store(0)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.devRes = nil
	c.apiTime = make(map[string]sim.Time)
}

// Snapshot returns an independent copy of the collector's current state.
// The copy is detached: later additions to c do not show up in it, so a
// live-progress reporter can render a consistent view while the run
// continues. Each counter is read atomically; a snapshot of a collector
// whose run has finished is exact.
func (c *Collector) Snapshot() *Collector {
	s := &Collector{}
	for dir := Direction(0); dir < numDirections; dir++ {
		for cause := Cause(0); cause < numCauses; cause++ {
			s.bytes[dir][cause].Store(c.bytes[dir][cause].Load())
			s.ops[dir][cause].Store(c.ops[dir][cause].Load())
		}
	}
	for es := EvictSource(0); es < numEvictSources; es++ {
		s.evicts[es].Store(c.evicts[es].Load())
	}
	s.savedH2D.Store(c.savedH2D.Load())
	s.savedD2H.Store(c.savedD2H.Load())
	s.peerBytes.Store(c.peerBytes.Load())
	s.peerOps.Store(c.peerOps.Load())
	s.peerSaved.Store(c.peerSaved.Load())
	s.faultBatches.Store(c.faultBatches.Load())
	s.faultedBlocks.Store(c.faultedBlocks.Load())
	s.zeroBlocks.Store(c.zeroBlocks.Load())
	s.zeroPages.Store(c.zeroPages.Load())
	s.unmapBlocks.Store(c.unmapBlocks.Load())
	s.mapBlocks.Store(c.mapBlocks.Load())
	s.discardCalls.Store(c.discardCalls.Load())
	s.discardBlocks.Store(c.discardBlocks.Load())
	s.migrateRetries.Store(c.migrateRetries.Load())
	s.unmapRetries.Store(c.unmapRetries.Load())
	s.faultReplays.Store(c.faultReplays.Load())
	s.degradedBlocks.Store(c.degradedBlocks.Load())
	s.degradedBytes.Store(c.degradedBytes.Load())
	s.poisonedChunks.Store(c.poisonedChunks.Load())
	s.poisonLost.Store(c.poisonLost.Load())
	s.poisonSaved.Store(c.poisonSaved.Load())
	c.mu.Lock()
	defer c.mu.Unlock()
	s.devRes = append([]DeviceResidency(nil), c.devRes...)
	s.apiTime = make(map[string]sim.Time, len(c.apiTime))
	for k, v := range c.apiTime {
		s.apiTime[k] = v
	}
	return s
}

// Summary renders a human-readable multi-line report.
func (c *Collector) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "traffic: total %.2f GB (H2D %.2f GB, D2H %.2f GB)\n",
		units.GB(c.TotalBytes(H2D)+c.TotalBytes(D2H)),
		units.GB(c.TotalBytes(H2D)), units.GB(c.TotalBytes(D2H)))
	for dir := Direction(0); dir < numDirections; dir++ {
		for cause := Cause(0); cause < numCauses; cause++ {
			n := c.bytes[dir][cause].Load()
			if n == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %s/%s: %.2f GB in %d ops\n",
				dir, cause, units.GB(n), c.ops[dir][cause].Load())
		}
	}
	fmt.Fprintf(&b, "saved by discard: H2D %.2f GB, D2H %.2f GB\n",
		units.GB(c.savedH2D.Load()), units.GB(c.savedD2H.Load()))
	if c.peerBytes.Load() > 0 || c.peerSaved.Load() > 0 {
		fmt.Fprintf(&b, "peer (GPU-GPU): %.2f GB in %d ops; saved by discard %.2f GB\n",
			units.GB(c.peerBytes.Load()), c.peerOps.Load(), units.GB(c.peerSaved.Load()))
	}
	fmt.Fprintf(&b, "evictions: free %d, unused %d, discarded %d, lru %d\n",
		c.evicts[EvictFree].Load(), c.evicts[EvictUnused].Load(),
		c.evicts[EvictDiscarded].Load(), c.evicts[EvictLRU].Load())
	fmt.Fprintf(&b, "faults: %d batches, %d blocks; zero-fill: %d blocks + %d pages\n",
		c.faultBatches.Load(), c.faultedBlocks.Load(), c.zeroBlocks.Load(), c.zeroPages.Load())
	fmt.Fprintf(&b, "PTE ops: %d unmapped, %d mapped; discards: %d calls over %d blocks\n",
		c.unmapBlocks.Load(), c.mapBlocks.Load(), c.discardCalls.Load(), c.discardBlocks.Load())
	// Resilience lines appear only when fault injection actually fired, so
	// fault-free runs render byte-identical summaries to earlier versions.
	if c.migrateRetries.Load() > 0 || c.unmapRetries.Load() > 0 || c.faultReplays.Load() > 0 {
		fmt.Fprintf(&b, "fault recovery: %d migrate retries, %d unmap reissues, %d replayed fault rounds\n",
			c.migrateRetries.Load(), c.unmapRetries.Load(), c.faultReplays.Load())
	}
	if c.degradedBlocks.Load() > 0 {
		fmt.Fprintf(&b, "degraded to host-pinned: %d transfers, %.2f GB\n",
			c.degradedBlocks.Load(), units.GB(c.degradedBytes.Load()))
	}
	if c.poisonedChunks.Load() > 0 {
		fmt.Fprintf(&b, "poisoned chunks: %d quarantined (%.2f GB recovered from host, %.2f GB lost)\n",
			c.poisonedChunks.Load(), units.GB(c.poisonSaved.Load()), units.GB(c.poisonLost.Load()))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.apiTime) > 0 {
		names := make([]string, 0, len(c.apiTime))
		for k := range c.apiTime {
			names = append(names, k)
		}
		sort.Strings(names)
		b.WriteString("API time:")
		for _, k := range names {
			fmt.Fprintf(&b, " %s=%v", k, c.apiTime[k])
		}
		b.WriteString("\n")
	}
	return b.String()
}

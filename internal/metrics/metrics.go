// Package metrics collects the driver-level instrumentation the paper's
// evaluation reports: PCIe traffic split by direction and cause, fault and
// eviction counts, zero-fill work, API time, and the transfers *avoided* by
// the discard directive.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
)

// Direction of a transfer over the interconnect.
type Direction int

const (
	// H2D is host-to-device (CPU → GPU).
	H2D Direction = iota
	// D2H is device-to-host (GPU → CPU).
	D2H
	numDirections
)

// String returns "H2D" or "D2H".
func (d Direction) String() string {
	switch d {
	case H2D:
		return "H2D"
	case D2H:
		return "D2H"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Cause classifies why a transfer happened.
type Cause int

const (
	// CauseFault is a migration triggered by a GPU or CPU page fault.
	CauseFault Cause = iota
	// CausePrefetch is a migration performed by cudaMemPrefetchAsync.
	CausePrefetch
	// CauseEviction is a swap-out performed by the eviction process under
	// GPU memory pressure.
	CauseEviction
	// CauseMemcpy is an explicit cudaMemcpy (No-UVM baseline only).
	CauseMemcpy
	// CauseRemote is a cache-coherent remote access over an NVLink-class
	// interconnect: data crosses the link without migrating (§2.3).
	CauseRemote
	numCauses
)

// String names the cause.
func (c Cause) String() string {
	switch c {
	case CauseFault:
		return "fault"
	case CausePrefetch:
		return "prefetch"
	case CauseEviction:
		return "eviction"
	case CauseMemcpy:
		return "memcpy"
	case CauseRemote:
		return "remote"
	default:
		return fmt.Sprintf("Cause(%d)", int(c))
	}
}

// EvictSource classifies where the eviction process found a chunk (§5.5).
type EvictSource int

const (
	// EvictFree means the allocation was satisfied from the free queue (no
	// eviction needed).
	EvictFree EvictSource = iota
	// EvictUnused reclaimed a leftover chunk (no transfer).
	EvictUnused
	// EvictDiscarded reclaimed a discarded chunk (no transfer — the
	// paper's savings mechanism).
	EvictDiscarded
	// EvictLRU swapped out the least-recently-used chunk (D2H transfer).
	EvictLRU
	numEvictSources
)

// String names the eviction source.
func (s EvictSource) String() string {
	switch s {
	case EvictFree:
		return "free"
	case EvictUnused:
		return "unused"
	case EvictDiscarded:
		return "discarded"
	case EvictLRU:
		return "lru"
	default:
		return fmt.Sprintf("EvictSource(%d)", int(s))
	}
}

// Collector accumulates counters for one simulation run. The zero value is
// ready to use.
//
// A Collector is safe for concurrent use: every method takes an internal
// mutex, so a progress reporter may call the getters (or Snapshot) while
// the run that owns the collector is still adding to it. The parallel
// experiment runner relies on this; see internal/experiments.
type Collector struct {
	mu sync.Mutex

	bytes    [numDirections][numCauses]uint64
	ops      [numDirections][numCauses]int64
	evicts   [numEvictSources]int64
	savedH2D uint64 // bytes of H2D transfer avoided by discard
	savedD2H uint64 // bytes of D2H transfer avoided by discard

	peerBytes uint64 // GPU-to-GPU transfers (do not cross host DRAM)
	peerOps   int64
	peerSaved uint64 // peer transfers avoided by discard

	faultBatches  int64
	faultedBlocks int64
	zeroBlocks    int64
	zeroPages     int64
	unmapBlocks   int64
	mapBlocks     int64
	discardCalls  int64
	discardBlocks int64

	// Fault-recovery instrumentation (internal/faultinject): every injected
	// failure the driver survives is visible here, so the chaos harness can
	// prove none was silently dropped.
	migrateRetries int64  // failed DMA/peer migration attempts that were retried
	unmapRetries   int64  // reissued unmap/TLB shootdowns
	faultReplays   int64  // replayed fault rounds after buffer overflow
	degradedBlocks int64  // migrations degraded to coherent host-pinned access
	degradedBytes  uint64 // bytes served through the degradation path
	poisonedChunks int64  // chunks quarantined by ECC-style poison
	poisonLost     uint64 // poisoned bytes with no valid host copy (data lost)
	poisonSaved    uint64 // poisoned bytes recovered from a valid host copy

	// devRes holds per-device residency gauges, indexed by GPU. Unlike the
	// counters above these are point-in-time values: the driver republishes
	// them at checkpoints (core.Driver.PublishResidency) and the service's
	// /metrics exporter renders them with device="gpuN" labels.
	devRes []DeviceResidency

	apiTime map[string]sim.Time
}

// DeviceResidency is a point-in-time view of one simulated GPU's physical
// chunk pool, in bytes, split by the driver's page queues (§5.5). Used is
// live resident data; Unused and Discarded hold dead data reclaimable
// without a transfer; Reserved models the oversubscription knob's idle
// co-resident program; Poisoned is ECC-quarantined capacity.
type DeviceResidency struct {
	CapacityBytes  uint64
	FreeBytes      uint64
	UnusedBytes    uint64
	UsedBytes      uint64
	DiscardedBytes uint64
	ReservedBytes  uint64
	PoisonedBytes  uint64
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{apiTime: make(map[string]sim.Time)}
}

// AddTransfer records a transfer of n bytes.
func (c *Collector) AddTransfer(dir Direction, cause Cause, n uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bytes[dir][cause] += n
	c.ops[dir][cause]++
}

// AddSaved records n bytes of transfer avoided because the data was
// discarded.
func (c *Collector) AddSaved(dir Direction, n uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if dir == H2D {
		c.savedH2D += n
	} else {
		c.savedD2H += n
	}
}

// AddPeer records a GPU-to-GPU transfer of n bytes over the peer fabric.
func (c *Collector) AddPeer(n uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.peerBytes += n
	c.peerOps++
}

// AddPeerSaved records n bytes of peer transfer avoided by discard.
func (c *Collector) AddPeerSaved(n uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.peerSaved += n
}

// Peer returns (bytes, ops) of GPU-to-GPU traffic.
func (c *Collector) Peer() (bytes uint64, ops int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peerBytes, c.peerOps
}

// PeerSaved returns the peer-transfer bytes avoided by discard.
func (c *Collector) PeerSaved() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peerSaved
}

// AddEviction records one chunk allocation satisfied from the given source.
func (c *Collector) AddEviction(src EvictSource) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evicts[src]++
}

// AddFaultBatch records one fault-service batch covering n blocks.
func (c *Collector) AddFaultBatch(blocks int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.faultBatches++
	c.faultedBlocks += int64(blocks)
}

// AddZeroFill records zero-fill work: whole blocks and loose 4 KiB pages.
func (c *Collector) AddZeroFill(blocks, pages int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.zeroBlocks += int64(blocks)
	c.zeroPages += int64(pages)
}

// AddUnmap records PTE-destruction work on n blocks.
func (c *Collector) AddUnmap(blocks int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.unmapBlocks += int64(blocks)
}

// AddMap records PTE-establishment work on n blocks.
func (c *Collector) AddMap(blocks int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mapBlocks += int64(blocks)
}

// AddDiscard records one discard API call covering n blocks.
func (c *Collector) AddDiscard(blocks int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.discardCalls++
	c.discardBlocks += int64(blocks)
}

// AddMigrateRetry records one failed DMA or peer migration attempt that the
// driver retried (or, once retries were exhausted, degraded).
func (c *Collector) AddMigrateRetry() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.migrateRetries++
}

// AddUnmapRetry records one reissued unmap/TLB shootdown.
func (c *Collector) AddUnmapRetry() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.unmapRetries++
}

// AddFaultReplay records n replayed fault rounds forced by a
// replayable-fault-buffer overflow.
func (c *Collector) AddFaultReplay(rounds int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.faultReplays += int64(rounds)
}

// AddDegraded records one block migration that fell back to coherent
// host-pinned access after exhausting its retries.
func (c *Collector) AddDegraded(bytes uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.degradedBlocks++
	c.degradedBytes += bytes
}

// AddPoison records one chunk quarantined by ECC-style poison: recovered
// bytes had a valid host copy, lost bytes did not.
func (c *Collector) AddPoison(recovered, lost uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.poisonedChunks++
	c.poisonSaved += recovered
	c.poisonLost += lost
}

// MigrateRetries returns the number of retried migration attempts.
func (c *Collector) MigrateRetries() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.migrateRetries
}

// UnmapRetries returns the number of reissued unmap shootdowns.
func (c *Collector) UnmapRetries() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.unmapRetries
}

// FaultReplays returns the number of replayed fault rounds.
func (c *Collector) FaultReplays() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.faultReplays
}

// Degraded returns (blocks, bytes) that fell back to coherent host-pinned
// access.
func (c *Collector) Degraded() (blocks int64, bytes uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degradedBlocks, c.degradedBytes
}

// Poisoned returns quarantined-chunk counts: recovered bytes had a valid
// host copy, lost bytes did not.
func (c *Collector) Poisoned() (chunks int64, recovered, lost uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.poisonedChunks, c.poisonSaved, c.poisonLost
}

// SetDeviceResidency records a point-in-time residency view for GPU gpu,
// growing the per-device table as needed.
func (c *Collector) SetDeviceResidency(gpu int, r DeviceResidency) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.devRes) <= gpu {
		c.devRes = append(c.devRes, DeviceResidency{})
	}
	c.devRes[gpu] = r
}

// DeviceResidency returns a copy of the per-device residency gauges, one
// entry per GPU that has published (empty until the driver's first
// PublishResidency).
func (c *Collector) DeviceResidency() []DeviceResidency {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]DeviceResidency(nil), c.devRes...)
}

// Merge adds src's counters into c. The service's /metrics exporter uses it
// to maintain one cumulative simulation collector across finished runs, so
// the exported counters stay monotonic while each run keeps its own
// isolated collector. Residency gauges are not counters: src's gauges
// overwrite c's when src has published any (last run wins). src is
// snapshotted first, so merging a live collector is safe.
func (c *Collector) Merge(src *Collector) {
	s := src.Snapshot()
	c.mu.Lock()
	defer c.mu.Unlock()
	for dir := Direction(0); dir < numDirections; dir++ {
		for cause := Cause(0); cause < numCauses; cause++ {
			c.bytes[dir][cause] += s.bytes[dir][cause]
			c.ops[dir][cause] += s.ops[dir][cause]
		}
	}
	for es := EvictSource(0); es < numEvictSources; es++ {
		c.evicts[es] += s.evicts[es]
	}
	c.savedH2D += s.savedH2D
	c.savedD2H += s.savedD2H
	c.peerBytes += s.peerBytes
	c.peerOps += s.peerOps
	c.peerSaved += s.peerSaved
	c.faultBatches += s.faultBatches
	c.faultedBlocks += s.faultedBlocks
	c.zeroBlocks += s.zeroBlocks
	c.zeroPages += s.zeroPages
	c.unmapBlocks += s.unmapBlocks
	c.mapBlocks += s.mapBlocks
	c.discardCalls += s.discardCalls
	c.discardBlocks += s.discardBlocks
	c.migrateRetries += s.migrateRetries
	c.unmapRetries += s.unmapRetries
	c.faultReplays += s.faultReplays
	c.degradedBlocks += s.degradedBlocks
	c.degradedBytes += s.degradedBytes
	c.poisonedChunks += s.poisonedChunks
	c.poisonLost += s.poisonLost
	c.poisonSaved += s.poisonSaved
	if len(s.devRes) > 0 {
		c.devRes = append(c.devRes[:0], s.devRes...)
	}
	if c.apiTime == nil {
		c.apiTime = make(map[string]sim.Time, len(s.apiTime))
	}
	for k, v := range s.apiTime {
		c.apiTime[k] += v
	}
}

// AddAPITime attributes host-side time to a named API.
func (c *Collector) AddAPITime(api string, t sim.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.apiTime == nil {
		c.apiTime = make(map[string]sim.Time)
	}
	c.apiTime[api] += t
}

// Bytes returns the bytes transferred in dir for cause.
func (c *Collector) Bytes(dir Direction, cause Cause) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes[dir][cause]
}

// Ops returns the number of DMA operations in dir for cause.
func (c *Collector) Ops(dir Direction, cause Cause) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops[dir][cause]
}

// TotalBytes returns all interconnect traffic in one direction.
func (c *Collector) TotalBytes(dir Direction) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalBytesLocked(dir)
}

func (c *Collector) totalBytesLocked(dir Direction) uint64 {
	var t uint64
	for cause := Cause(0); cause < numCauses; cause++ {
		t += c.bytes[dir][cause]
	}
	return t
}

// Traffic returns total interconnect traffic in both directions — the
// quantity the paper's "PCIe traffic (GB)" tables report.
func (c *Collector) Traffic() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalBytesLocked(H2D) + c.totalBytesLocked(D2H)
}

// Saved returns the bytes of transfer avoided by discard in each direction.
func (c *Collector) Saved() (h2d, d2h uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.savedH2D, c.savedD2H
}

// Evictions returns the count for one eviction source.
func (c *Collector) Evictions(src EvictSource) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evicts[src]
}

// FaultBatches returns (batches, totalFaultedBlocks).
func (c *Collector) FaultBatches() (batches, blocks int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.faultBatches, c.faultedBlocks
}

// ZeroFills returns (wholeBlocks, loosePages).
func (c *Collector) ZeroFills() (blocks, pages int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.zeroBlocks, c.zeroPages
}

// Unmaps returns the number of blocks whose PTEs were destroyed.
func (c *Collector) Unmaps() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.unmapBlocks
}

// Maps returns the number of blocks whose PTEs were established.
func (c *Collector) Maps() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mapBlocks
}

// Discards returns (calls, blocksCovered).
func (c *Collector) Discards() (calls, blocks int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.discardCalls, c.discardBlocks
}

// APITime returns accumulated host time for a named API.
func (c *Collector) APITime(api string) sim.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.apiTime[api]
}

// Reset zeroes all counters.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bytes = [numDirections][numCauses]uint64{}
	c.ops = [numDirections][numCauses]int64{}
	c.evicts = [numEvictSources]int64{}
	c.savedH2D, c.savedD2H = 0, 0
	c.peerBytes, c.peerOps, c.peerSaved = 0, 0, 0
	c.faultBatches, c.faultedBlocks = 0, 0
	c.zeroBlocks, c.zeroPages = 0, 0
	c.unmapBlocks, c.mapBlocks = 0, 0
	c.discardCalls, c.discardBlocks = 0, 0
	c.migrateRetries, c.unmapRetries, c.faultReplays = 0, 0, 0
	c.degradedBlocks, c.degradedBytes = 0, 0
	c.poisonedChunks, c.poisonLost, c.poisonSaved = 0, 0, 0
	c.devRes = nil
	c.apiTime = make(map[string]sim.Time)
}

// Snapshot returns an independent copy of the collector's current state,
// taken atomically. The copy is detached: later additions to c do not show
// up in it, so a live-progress reporter can render a consistent view while
// the run continues.
func (c *Collector) Snapshot() *Collector {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := &Collector{
		bytes:         c.bytes,
		ops:           c.ops,
		evicts:        c.evicts,
		savedH2D:      c.savedH2D,
		savedD2H:      c.savedD2H,
		peerBytes:     c.peerBytes,
		peerOps:       c.peerOps,
		peerSaved:     c.peerSaved,
		faultBatches:  c.faultBatches,
		faultedBlocks: c.faultedBlocks,
		zeroBlocks:    c.zeroBlocks,
		zeroPages:     c.zeroPages,
		unmapBlocks:   c.unmapBlocks,
		mapBlocks:     c.mapBlocks,
		discardCalls:  c.discardCalls,
		discardBlocks: c.discardBlocks,

		migrateRetries: c.migrateRetries,
		unmapRetries:   c.unmapRetries,
		faultReplays:   c.faultReplays,
		degradedBlocks: c.degradedBlocks,
		degradedBytes:  c.degradedBytes,
		poisonedChunks: c.poisonedChunks,
		poisonLost:     c.poisonLost,
		poisonSaved:    c.poisonSaved,

		devRes: append([]DeviceResidency(nil), c.devRes...),

		apiTime: make(map[string]sim.Time, len(c.apiTime)),
	}
	for k, v := range c.apiTime {
		s.apiTime[k] = v
	}
	return s
}

// Summary renders a human-readable multi-line report.
func (c *Collector) Summary() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "traffic: total %.2f GB (H2D %.2f GB, D2H %.2f GB)\n",
		units.GB(c.totalBytesLocked(H2D)+c.totalBytesLocked(D2H)),
		units.GB(c.totalBytesLocked(H2D)), units.GB(c.totalBytesLocked(D2H)))
	for dir := Direction(0); dir < numDirections; dir++ {
		for cause := Cause(0); cause < numCauses; cause++ {
			if c.bytes[dir][cause] == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %s/%s: %.2f GB in %d ops\n",
				dir, cause, units.GB(c.bytes[dir][cause]), c.ops[dir][cause])
		}
	}
	fmt.Fprintf(&b, "saved by discard: H2D %.2f GB, D2H %.2f GB\n",
		units.GB(c.savedH2D), units.GB(c.savedD2H))
	if c.peerBytes > 0 || c.peerSaved > 0 {
		fmt.Fprintf(&b, "peer (GPU-GPU): %.2f GB in %d ops; saved by discard %.2f GB\n",
			units.GB(c.peerBytes), c.peerOps, units.GB(c.peerSaved))
	}
	fmt.Fprintf(&b, "evictions: free %d, unused %d, discarded %d, lru %d\n",
		c.evicts[EvictFree], c.evicts[EvictUnused], c.evicts[EvictDiscarded], c.evicts[EvictLRU])
	fmt.Fprintf(&b, "faults: %d batches, %d blocks; zero-fill: %d blocks + %d pages\n",
		c.faultBatches, c.faultedBlocks, c.zeroBlocks, c.zeroPages)
	fmt.Fprintf(&b, "PTE ops: %d unmapped, %d mapped; discards: %d calls over %d blocks\n",
		c.unmapBlocks, c.mapBlocks, c.discardCalls, c.discardBlocks)
	// Resilience lines appear only when fault injection actually fired, so
	// fault-free runs render byte-identical summaries to earlier versions.
	if c.migrateRetries > 0 || c.unmapRetries > 0 || c.faultReplays > 0 {
		fmt.Fprintf(&b, "fault recovery: %d migrate retries, %d unmap reissues, %d replayed fault rounds\n",
			c.migrateRetries, c.unmapRetries, c.faultReplays)
	}
	if c.degradedBlocks > 0 {
		fmt.Fprintf(&b, "degraded to host-pinned: %d transfers, %.2f GB\n",
			c.degradedBlocks, units.GB(c.degradedBytes))
	}
	if c.poisonedChunks > 0 {
		fmt.Fprintf(&b, "poisoned chunks: %d quarantined (%.2f GB recovered from host, %.2f GB lost)\n",
			c.poisonedChunks, units.GB(c.poisonSaved), units.GB(c.poisonLost))
	}
	if len(c.apiTime) > 0 {
		names := make([]string, 0, len(c.apiTime))
		for k := range c.apiTime {
			names = append(names, k)
		}
		sort.Strings(names)
		b.WriteString("API time:")
		for _, k := range names {
			fmt.Fprintf(&b, " %s=%v", k, c.apiTime[k])
		}
		b.WriteString("\n")
	}
	return b.String()
}

package metrics

import (
	"strings"
	"sync"
	"testing"

	"uvmdiscard/internal/sim"
)

func TestTransfersAndTotals(t *testing.T) {
	c := New()
	c.AddTransfer(H2D, CauseFault, 100)
	c.AddTransfer(H2D, CausePrefetch, 200)
	c.AddTransfer(D2H, CauseEviction, 300)
	c.AddTransfer(D2H, CauseMemcpy, 50)

	if c.Bytes(H2D, CauseFault) != 100 {
		t.Errorf("fault bytes = %d", c.Bytes(H2D, CauseFault))
	}
	if c.Ops(H2D, CausePrefetch) != 1 {
		t.Errorf("prefetch ops = %d", c.Ops(H2D, CausePrefetch))
	}
	if c.TotalBytes(H2D) != 300 {
		t.Errorf("H2D total = %d", c.TotalBytes(H2D))
	}
	if c.TotalBytes(D2H) != 350 {
		t.Errorf("D2H total = %d", c.TotalBytes(D2H))
	}
	if c.Traffic() != 650 {
		t.Errorf("traffic = %d", c.Traffic())
	}
}

func TestSaved(t *testing.T) {
	c := New()
	c.AddSaved(H2D, 10)
	c.AddSaved(D2H, 20)
	c.AddSaved(D2H, 5)
	h, d := c.Saved()
	if h != 10 || d != 25 {
		t.Errorf("saved = %d/%d", h, d)
	}
}

func TestEvictionCounters(t *testing.T) {
	c := New()
	c.AddEviction(EvictFree)
	c.AddEviction(EvictDiscarded)
	c.AddEviction(EvictDiscarded)
	c.AddEviction(EvictLRU)
	if c.Evictions(EvictFree) != 1 || c.Evictions(EvictDiscarded) != 2 ||
		c.Evictions(EvictLRU) != 1 || c.Evictions(EvictUnused) != 0 {
		t.Error("eviction counters wrong")
	}
}

func TestFaultZeroMapCounters(t *testing.T) {
	c := New()
	c.AddFaultBatch(3)
	c.AddFaultBatch(2)
	batches, blocks := c.FaultBatches()
	if batches != 2 || blocks != 5 {
		t.Errorf("faults = %d/%d", batches, blocks)
	}
	c.AddZeroFill(2, 10)
	zb, zp := c.ZeroFills()
	if zb != 2 || zp != 10 {
		t.Errorf("zeros = %d/%d", zb, zp)
	}
	c.AddUnmap(4)
	c.AddMap(7)
	if c.Unmaps() != 4 || c.Maps() != 7 {
		t.Error("map counters wrong")
	}
	c.AddDiscard(16)
	calls, covered := c.Discards()
	if calls != 1 || covered != 16 {
		t.Errorf("discards = %d/%d", calls, covered)
	}
}

func TestAPITime(t *testing.T) {
	c := New()
	c.AddAPITime("cudaMalloc", sim.Micros(48))
	c.AddAPITime("cudaMalloc", sim.Micros(2))
	if c.APITime("cudaMalloc") != sim.Micros(50) {
		t.Errorf("api time = %v", c.APITime("cudaMalloc"))
	}
	if c.APITime("unknown") != 0 {
		t.Error("unknown api time nonzero")
	}
}

func TestZeroValueCollectorUsable(t *testing.T) {
	var c Collector
	c.AddAPITime("x", 1) // must not panic on nil map
	c.AddTransfer(H2D, CauseFault, 1)
	if c.Traffic() != 1 {
		t.Error("zero-value collector broken")
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.AddTransfer(H2D, CauseFault, 100)
	c.AddEviction(EvictLRU)
	c.AddAPITime("x", 5)
	c.Reset()
	if c.Traffic() != 0 || c.Evictions(EvictLRU) != 0 || c.APITime("x") != 0 {
		t.Error("reset incomplete")
	}
	c.AddAPITime("y", 1) // map must be re-usable after reset
}

func TestStringers(t *testing.T) {
	if H2D.String() != "H2D" || D2H.String() != "D2H" {
		t.Error("direction names")
	}
	if CauseFault.String() != "fault" || CausePrefetch.String() != "prefetch" ||
		CauseEviction.String() != "eviction" || CauseMemcpy.String() != "memcpy" {
		t.Error("cause names")
	}
	for _, s := range []EvictSource{EvictFree, EvictUnused, EvictDiscarded, EvictLRU} {
		if s.String() == "" {
			t.Error("empty eviction source name")
		}
	}
	if Direction(9).String() == "" || Cause(9).String() == "" || EvictSource(9).String() == "" {
		t.Error("unknown enum values should still stringify")
	}
}

func TestSummaryMentionsKeyFields(t *testing.T) {
	c := New()
	c.AddTransfer(H2D, CausePrefetch, 1_000_000_000)
	c.AddSaved(D2H, 2_000_000_000)
	c.AddEviction(EvictDiscarded)
	c.AddAPITime("UvmDiscard", sim.Micros(4))
	s := c.Summary()
	for _, want := range []string{"traffic", "H2D/prefetch", "saved by discard", "discarded 1", "UvmDiscard"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

// The collector must tolerate concurrent writers and readers: the parallel
// experiment runner snapshots collectors for live progress while the owning
// run is still adding to them. The race detector is the real assertion here.
func TestCollectorConcurrentAccess(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.AddTransfer(H2D, CauseFault, 10)
				c.AddSaved(D2H, 5)
				c.AddEviction(EvictLRU)
				c.AddAPITime("api", sim.Micros(1))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = c.Traffic()
			_ = c.Snapshot().Summary()
		}
	}()
	wg.Wait()
	if got := c.Bytes(H2D, CauseFault); got != 4*500*10 {
		t.Errorf("concurrent adds lost updates: %d", got)
	}
}

// Snapshot is a detached, consistent copy.
func TestCollectorSnapshotDetached(t *testing.T) {
	c := New()
	c.AddTransfer(D2H, CauseEviction, 100)
	c.AddAPITime("x", sim.Micros(2))
	s := c.Snapshot()
	c.AddTransfer(D2H, CauseEviction, 900)
	c.AddAPITime("x", sim.Micros(8))
	if got := s.Bytes(D2H, CauseEviction); got != 100 {
		t.Errorf("snapshot bytes = %d, want 100", got)
	}
	if got := s.APITime("x"); got != sim.Micros(2) {
		t.Errorf("snapshot api time = %v, want 2µs", got)
	}
	if got := c.Bytes(D2H, CauseEviction); got != 1000 {
		t.Errorf("live collector = %d, want 1000", got)
	}
}

package metrics

import "uvmdiscard/internal/sim"

// CounterState is a plain-data, JSON-serializable image of every counter a
// Collector accumulates. It is the checkpoint payload for metrics: a
// snapshot taken mid-run with State is restored by Reset + AddState on a
// fresh collector, after which the resumed run's counters continue exactly
// where the interrupted run's left off — the byte-identical-output invariant
// extends to every reported counter.
//
// Residency gauges are deliberately absent: they are point-in-time views the
// driver republishes (PublishResidency), not accumulated state.
type CounterState struct {
	Bytes [2][5]uint64 `json:"bytes"`
	Ops   [2][5]int64  `json:"ops"`

	Evicts   [4]int64 `json:"evicts"`
	SavedH2D uint64   `json:"saved_h2d"`
	SavedD2H uint64   `json:"saved_d2h"`

	PeerBytes uint64 `json:"peer_bytes"`
	PeerOps   int64  `json:"peer_ops"`
	PeerSaved uint64 `json:"peer_saved"`

	FaultBatches  int64 `json:"fault_batches"`
	FaultedBlocks int64 `json:"faulted_blocks"`
	ZeroBlocks    int64 `json:"zero_blocks"`
	ZeroPages     int64 `json:"zero_pages"`
	UnmapBlocks   int64 `json:"unmap_blocks"`
	MapBlocks     int64 `json:"map_blocks"`
	DiscardCalls  int64 `json:"discard_calls"`
	DiscardBlocks int64 `json:"discard_blocks"`

	MigrateRetries int64  `json:"migrate_retries"`
	UnmapRetries   int64  `json:"unmap_retries"`
	FaultReplays   int64  `json:"fault_replays"`
	DegradedBlocks int64  `json:"degraded_blocks"`
	DegradedBytes  uint64 `json:"degraded_bytes"`
	PoisonedChunks int64  `json:"poisoned_chunks"`
	PoisonLost     uint64 `json:"poison_lost"`
	PoisonSaved    uint64 `json:"poison_saved"`

	APITime map[string]sim.Time `json:"api_time,omitempty"`
}

// State captures every counter into a CounterState. Like Snapshot, each
// counter is read atomically; a state captured after the owning run has
// quiesced (the only point checkpoints are taken) is exact.
func (c *Collector) State() CounterState {
	var s CounterState
	for dir := Direction(0); dir < numDirections; dir++ {
		for cause := Cause(0); cause < numCauses; cause++ {
			s.Bytes[dir][cause] = c.bytes[dir][cause].Load()
			s.Ops[dir][cause] = c.ops[dir][cause].Load()
		}
	}
	for es := EvictSource(0); es < numEvictSources; es++ {
		s.Evicts[es] = c.evicts[es].Load()
	}
	s.SavedH2D = c.savedH2D.Load()
	s.SavedD2H = c.savedD2H.Load()
	s.PeerBytes = c.peerBytes.Load()
	s.PeerOps = c.peerOps.Load()
	s.PeerSaved = c.peerSaved.Load()
	s.FaultBatches = c.faultBatches.Load()
	s.FaultedBlocks = c.faultedBlocks.Load()
	s.ZeroBlocks = c.zeroBlocks.Load()
	s.ZeroPages = c.zeroPages.Load()
	s.UnmapBlocks = c.unmapBlocks.Load()
	s.MapBlocks = c.mapBlocks.Load()
	s.DiscardCalls = c.discardCalls.Load()
	s.DiscardBlocks = c.discardBlocks.Load()
	s.MigrateRetries = c.migrateRetries.Load()
	s.UnmapRetries = c.unmapRetries.Load()
	s.FaultReplays = c.faultReplays.Load()
	s.DegradedBlocks = c.degradedBlocks.Load()
	s.DegradedBytes = c.degradedBytes.Load()
	s.PoisonedChunks = c.poisonedChunks.Load()
	s.PoisonLost = c.poisonLost.Load()
	s.PoisonSaved = c.poisonSaved.Load()
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.apiTime) > 0 {
		s.APITime = make(map[string]sim.Time, len(c.apiTime))
		for k, v := range c.apiTime {
			s.APITime[k] = v
		}
	}
	return s
}

// AddState adds a previously captured CounterState into c. Restore pattern:
// Reset then AddState leaves the collector carrying exactly the snapshot's
// counters; AddState alone folds a snapshot into a cumulative collector.
func (c *Collector) AddState(s CounterState) {
	for dir := Direction(0); dir < numDirections; dir++ {
		for cause := Cause(0); cause < numCauses; cause++ {
			c.bytes[dir][cause].Add(s.Bytes[dir][cause])
			c.ops[dir][cause].Add(s.Ops[dir][cause])
		}
	}
	for es := EvictSource(0); es < numEvictSources; es++ {
		c.evicts[es].Add(s.Evicts[es])
	}
	c.savedH2D.Add(s.SavedH2D)
	c.savedD2H.Add(s.SavedD2H)
	c.peerBytes.Add(s.PeerBytes)
	c.peerOps.Add(s.PeerOps)
	c.peerSaved.Add(s.PeerSaved)
	c.faultBatches.Add(s.FaultBatches)
	c.faultedBlocks.Add(s.FaultedBlocks)
	c.zeroBlocks.Add(s.ZeroBlocks)
	c.zeroPages.Add(s.ZeroPages)
	c.unmapBlocks.Add(s.UnmapBlocks)
	c.mapBlocks.Add(s.MapBlocks)
	c.discardCalls.Add(s.DiscardCalls)
	c.discardBlocks.Add(s.DiscardBlocks)
	c.migrateRetries.Add(s.MigrateRetries)
	c.unmapRetries.Add(s.UnmapRetries)
	c.faultReplays.Add(s.FaultReplays)
	c.degradedBlocks.Add(s.DegradedBlocks)
	c.degradedBytes.Add(s.DegradedBytes)
	c.poisonedChunks.Add(s.PoisonedChunks)
	c.poisonLost.Add(s.PoisonLost)
	c.poisonSaved.Add(s.PoisonSaved)
	if len(s.APITime) > 0 {
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.apiTime == nil {
			c.apiTime = make(map[string]sim.Time, len(s.APITime))
		}
		for k, v := range s.APITime {
			c.apiTime[k] += v
		}
	}
}

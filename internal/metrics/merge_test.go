package metrics

import (
	"testing"

	"uvmdiscard/internal/sim"
)

// Merge sums every counter family and adopts the source's residency gauges,
// which is what keeps the /metrics exporter's cumulative collector
// monotonic as finished runs fold in.
func TestMergeSumsCountersAndAdoptsGauges(t *testing.T) {
	a, b := New(), New()
	a.AddTransfer(H2D, CauseFault, 100)
	b.AddTransfer(H2D, CauseFault, 23)
	b.AddTransfer(D2H, CauseEviction, 7)
	a.AddSaved(H2D, 11)
	b.AddSaved(D2H, 5)
	a.AddEviction(EvictLRU)
	b.AddEviction(EvictLRU)
	b.AddEviction(EvictDiscarded)
	b.AddDiscard(3)
	b.AddPoison(8, 2)
	a.AddAPITime("discard", sim.Time(4))
	b.AddAPITime("discard", sim.Time(6))
	b.SetDeviceResidency(1, DeviceResidency{UsedBytes: 42, CapacityBytes: 100})

	a.Merge(b)
	if got := a.Bytes(H2D, CauseFault); got != 123 {
		t.Errorf("H2D fault bytes = %d, want 123", got)
	}
	if got := a.Bytes(D2H, CauseEviction); got != 7 {
		t.Errorf("D2H eviction bytes = %d, want 7", got)
	}
	h2d, d2h := a.Saved()
	if h2d != 11 || d2h != 5 {
		t.Errorf("Saved = %d/%d, want 11/5", h2d, d2h)
	}
	if got := a.Evictions(EvictLRU); got != 2 {
		t.Errorf("LRU evictions = %d, want 2", got)
	}
	if calls, blocks := a.Discards(); calls != 1 || blocks != 3 {
		t.Errorf("Discards = %d/%d, want 1/3", calls, blocks)
	}
	if chunks, rec, lost := a.Poisoned(); chunks != 1 || rec != 8 || lost != 2 {
		t.Errorf("Poisoned = %d/%d/%d", chunks, rec, lost)
	}
	if got := a.APITime("discard"); got != 10 {
		t.Errorf("APITime = %v, want 10", got)
	}
	res := a.DeviceResidency()
	if len(res) != 2 || res[1].UsedBytes != 42 {
		t.Errorf("residency gauges not adopted: %+v", res)
	}

	// Merging a collector with no published gauges must not clobber a's.
	a.Merge(New())
	if res := a.DeviceResidency(); len(res) != 2 || res[1].UsedBytes != 42 {
		t.Errorf("empty merge clobbered gauges: %+v", res)
	}
}

// Residency gauges survive Snapshot and are cleared by Reset.
func TestDeviceResidencySnapshotReset(t *testing.T) {
	c := New()
	c.SetDeviceResidency(0, DeviceResidency{UsedBytes: 7})
	s := c.Snapshot()
	c.SetDeviceResidency(0, DeviceResidency{UsedBytes: 9})
	if got := s.DeviceResidency()[0].UsedBytes; got != 7 {
		t.Errorf("snapshot residency = %d, want detached 7", got)
	}
	c.Reset()
	if got := c.DeviceResidency(); len(got) != 0 {
		t.Errorf("Reset left residency gauges: %+v", got)
	}
}

package metrics

import "sync/atomic"

// ServiceCollector counts the uvmsimd service's admission and outcome
// events. Unlike Collector — which is per-run, single-threaded simulation
// state — a ServiceCollector is shared by every goroutine in the service
// process, so all counters are atomics. Interrupted work is a first-class
// outcome here: a canceled or deadline-expired run increments its own
// counter and is never folded into Failed or silently dropped.
type ServiceCollector struct {
	// Admitted counts jobs accepted into the bounded queue.
	Admitted atomic.Int64
	// Shed counts jobs refused: queue-full 503s plus jobs still queued when
	// a graceful shutdown drained the queue.
	Shed atomic.Int64
	// Completed counts jobs that finished successfully.
	Completed atomic.Int64
	// Failed counts jobs that finished with a genuine error (not an
	// interruption).
	Failed atomic.Int64
	// Canceled counts runs interrupted by explicit cancellation (DELETE on
	// the job, or the batch context dying).
	Canceled atomic.Int64
	// DeadlineExpired counts runs the watchdog killed at their wall-clock
	// deadline.
	DeadlineExpired atomic.Int64
	// BudgetExpired counts runs stopped by their simulated-time budget.
	BudgetExpired atomic.Int64
	// Panics counts panics recovered by per-request isolation; the job
	// fails, the worker survives.
	Panics atomic.Int64
	// Resumed counts journaled experiment results served without re-running
	// when a batch resumed from its journal, plus workload runs resumed from
	// an on-disk checkpoint snapshot.
	Resumed atomic.Int64
	// CheckpointsSaved counts snapshot files durably written for
	// checkpoint-enabled workload runs.
	CheckpointsSaved atomic.Int64
	// CheckpointsCorrupt counts restore attempts that rejected a torn or
	// corrupt snapshot and fell back to a from-zero run.
	CheckpointsCorrupt atomic.Int64
}

// ServiceSnapshot is a point-in-time copy of the counters, shaped for JSON.
type ServiceSnapshot struct {
	Admitted        int64 `json:"admitted"`
	Shed            int64 `json:"shed"`
	Completed       int64 `json:"completed"`
	Failed          int64 `json:"failed"`
	Canceled        int64 `json:"canceled"`
	DeadlineExpired int64 `json:"deadline_expired"`
	BudgetExpired   int64 `json:"budget_expired"`
	Panics          int64 `json:"panics"`
	Resumed         int64 `json:"resumed"`

	CheckpointsSaved   int64 `json:"checkpoints_saved"`
	CheckpointsCorrupt int64 `json:"checkpoints_corrupt"`
}

// Snapshot copies the counters.
func (s *ServiceCollector) Snapshot() ServiceSnapshot {
	return ServiceSnapshot{
		Admitted:        s.Admitted.Load(),
		Shed:            s.Shed.Load(),
		Completed:       s.Completed.Load(),
		Failed:          s.Failed.Load(),
		Canceled:        s.Canceled.Load(),
		DeadlineExpired: s.DeadlineExpired.Load(),
		BudgetExpired:   s.BudgetExpired.Load(),
		Panics:          s.Panics.Load(),
		Resumed:         s.Resumed.Load(),

		CheckpointsSaved:   s.CheckpointsSaved.Load(),
		CheckpointsCorrupt: s.CheckpointsCorrupt.Load(),
	}
}

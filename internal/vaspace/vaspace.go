// Package vaspace models the unified virtual address space that UVM
// provides across the host and the GPU (§2.1): allocations carved into
// 2 MiB virtual blocks, each with residency, mapping, discard, and
// preparedness state.
//
// Allocations optionally carry backing bytes so that example programs can
// compute real results through the simulated memory system; the driver
// zeroes the backing of reclaimed discarded blocks, which makes the paper's
// §4.1 semantics ("a read after discard returns zeros or some previously
// written values") directly observable and testable.
package vaspace

import (
	"fmt"
	"sort"

	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/units"
)

// Residency says where a block's authoritative data currently lives.
type Residency int

const (
	// Untouched blocks have never been populated anywhere; first touch
	// maps zero-filled memory at the touching processor (§2.2). Reclaimed
	// discarded blocks also return to this state: their next use observes
	// zeros.
	Untouched Residency = iota
	// CPUResident blocks live in host DRAM.
	CPUResident
	// GPUResident blocks live in a GPU chunk (Block.Chunk is non-nil).
	GPUResident
)

// String names the residency.
func (r Residency) String() string {
	switch r {
	case Untouched:
		return "untouched"
	case CPUResident:
		return "cpu"
	case GPUResident:
		return "gpu"
	default:
		return fmt.Sprintf("Residency(%d)", int(r))
	}
}

// Preference pins a block's home location (the cudaMemAdvise
// SetPreferredLocation hint).
type Preference int

const (
	// PreferNone lets the fault-driven policy place the block.
	PreferNone Preference = iota
	// PreferCPU keeps the block in host DRAM; GPU accesses map it
	// remotely instead of migrating.
	PreferCPU
	// PreferGPU keeps the block in GPU memory; the eviction process
	// avoids it while other victims exist.
	PreferGPU
)

// String names the preference.
func (p Preference) String() string {
	switch p {
	case PreferNone:
		return "none"
	case PreferCPU:
		return "cpu"
	case PreferGPU:
		return "gpu"
	default:
		return fmt.Sprintf("Preference(%d)", int(p))
	}
}

// Block is one 2 MiB-aligned virtual block of an allocation — the
// granularity at which the driver migrates, discards, and evicts (§5.4).
type Block struct {
	// Alloc is the owning allocation.
	Alloc *Alloc
	// Index is the block's position within the allocation.
	Index int

	// Residency is where the data lives now.
	Residency Residency
	// Chunk is the GPU physical chunk when GPUResident, else nil.
	Chunk *gpudev.Chunk
	// GPUIndex identifies which GPU holds Chunk (multi-GPU systems);
	// meaningful only while GPUResident.
	GPUIndex int
	// CPUHasPages reports that host physical pages exist for this block
	// (counted against host DRAM). They may be the live copy (CPUResident)
	// or a pinned stale copy kept while the block is GPU-mapped.
	CPUHasPages bool
	// CPUPinned reports that the host pages are pinned (they remain
	// pinned while the block is GPU-mapped, §2.2). Implies CPUHasPages.
	CPUPinned bool
	// CPUStale means the pinned host copy predates newer GPU writes; a
	// D2H migration must actually transfer (it always does in UVM — the
	// flag exists for bookkeeping and tests).
	CPUStale bool

	// GPUMapped reports whether GPU PTEs exist for the block. UvmDiscard
	// eagerly destroys them (§5.1); a later GPU access then faults.
	GPUMapped bool
	// CPUMapped reports whether CPU PTEs exist (also destroyed by the
	// eager discard).
	CPUMapped bool

	// Discarded is the paper's directive state: the block's contents are
	// dead and its next transfer may be skipped (§4.1).
	Discarded bool
	// LazyDiscard marks that the discard used the UvmDiscardLazy path:
	// mappings were kept and a software dirty bit was cleared instead
	// (§5.2). Meaningful only while Discarded.
	LazyDiscard bool

	// Preferred is the SetPreferredLocation hint for this block.
	Preferred Preference
	// ReadMostly is the SetReadMostly hint: the block may be *duplicated*
	// read-only on both processors so reads are local everywhere. The
	// block is currently duplicated when it is GPUResident with
	// CPUHasPages and a non-stale host copy; a write from either side
	// collapses the duplication.
	ReadMostly bool

	// Degraded marks a CPU-resident block whose migration to the GPU
	// exhausted its retry budget (fault injection): until a prefetch
	// succeeds, faulting GPU accesses are served over the interconnect at
	// coherent host-pinned cost instead of re-attempting the migration.
	Degraded bool

	// RemoteAccesses counts GPU accesses served remotely over a coherent
	// interconnect since the block last became CPU-resident; the driver's
	// access-counter policy migrates the block once it crosses a
	// threshold (§2.3).
	RemoteAccesses int

	// LivePages, when non-zero, records that a *partial* discard (the
	// §5.4 ablation) left this many 4 KiB pages of live data in the
	// block; migrating the block then moves only the live pages but at
	// 4 KiB DMA granularity, which is far slower per byte.
	LivePages int
}

// Bytes returns the block's size: BlockSize except possibly for the final
// block of an unaligned allocation, which covers only the remainder.
func (b *Block) Bytes() units.Size {
	off := units.Size(b.Index) * units.BlockSize
	rem := b.Alloc.size - off
	if rem > units.BlockSize {
		return units.BlockSize
	}
	return rem
}

// VA returns the block's starting virtual address.
func (b *Block) VA() uint64 {
	return b.Alloc.base + uint64(b.Index)*uint64(units.BlockSize)
}

// Alloc is one unified-memory allocation (cudaMallocManaged result).
type Alloc struct {
	id     int
	name   string
	base   uint64
	size   units.Size
	blocks []Block
	space  *Space
	freed  bool

	backing []byte // lazily allocated functional payload
}

// ID returns the allocation's id within its space.
func (a *Alloc) ID() int { return a.id }

// Name returns the debug name given at allocation.
func (a *Alloc) Name() string { return a.name }

// Base returns the starting virtual address (2 MiB aligned).
func (a *Alloc) Base() uint64 { return a.base }

// Size returns the requested size in bytes.
func (a *Alloc) Size() units.Size { return a.size }

// NumBlocks returns how many 2 MiB blocks cover the allocation.
func (a *Alloc) NumBlocks() int { return len(a.blocks) }

// Freed reports whether the allocation has been freed.
func (a *Alloc) Freed() bool { return a.freed }

// Block returns the i'th block.
func (a *Alloc) Block(i int) *Block { return &a.blocks[i] }

// Blocks returns all blocks of the allocation.
func (a *Alloc) Blocks() []*Block {
	out := make([]*Block, len(a.blocks))
	for i := range a.blocks {
		out[i] = &a.blocks[i]
	}
	return out
}

// BlockRange returns the blocks covering [off, off+length). When whole is
// true only blocks *fully* contained in the range are returned — the §5.4
// rule that discard prefers full 2 MiB regions and ignores partial ones.
func (a *Alloc) BlockRange(off, length units.Size, whole bool) ([]*Block, error) {
	first, last, err := a.blockSpan(off, length, whole)
	if err != nil || last < first {
		return nil, err
	}
	out := make([]*Block, 0, last-first+1)
	for i := first; i <= last; i++ {
		out = append(out, &a.blocks[i])
	}
	return out, nil
}

// AppendBlockRange is BlockRange appending into a caller-provided slice,
// for hot paths that reuse a scratch buffer across calls instead of
// allocating a fresh slice per access (BlockRange was 40% of all driver
// allocations). The appended-to slice is returned; on error or an empty
// span dst is returned unchanged.
func (a *Alloc) AppendBlockRange(dst []*Block, off, length units.Size, whole bool) ([]*Block, error) {
	first, last, err := a.blockSpan(off, length, whole)
	if err != nil {
		return dst, err
	}
	for i := first; i <= last; i++ {
		dst = append(dst, &a.blocks[i])
	}
	return dst, nil
}

// BlockSpan resolves [off, off+length) to inclusive block indices; an
// empty span is reported as last < first. Hot paths that only need to
// *visit* the covered blocks iterate the span with Block(i) instead of
// materializing a []*Block.
func (a *Alloc) BlockSpan(off, length units.Size, whole bool) (first, last int, err error) {
	return a.blockSpan(off, length, whole)
}

// blockSpan resolves [off, off+length) to inclusive block indices; an
// empty span is reported as last < first.
func (a *Alloc) blockSpan(off, length units.Size, whole bool) (first, last int, err error) {
	if off+length > a.size {
		return 0, -1, fmt.Errorf("vaspace: range [%d,+%d) outside %s (size %d)",
			off, length, a.name, a.size)
	}
	if length == 0 {
		return 0, -1, nil
	}
	if whole {
		firstByte := units.AlignUp(off, units.BlockSize)
		lastByte := units.AlignDown(off+length, units.BlockSize)
		// The final partial block of the allocation counts as whole if the
		// range covers the allocation to its end.
		if off+length == a.size {
			lastByte = a.size
		}
		if lastByte <= firstByte {
			return 0, -1, nil
		}
		return int(firstByte / units.BlockSize), units.BlocksIn(lastByte) - 1, nil
	}
	return int(off / units.BlockSize), int((off + length - 1) / units.BlockSize), nil
}

// Data returns the allocation's backing bytes, allocating them on first
// use. Functional example programs read and write through this; the driver
// zeroes sub-ranges when discarded data is reclaimed.
func (a *Alloc) Data() []byte {
	if a.backing == nil {
		a.backing = make([]byte, a.size)
	}
	return a.backing
}

// HasData reports whether backing bytes were materialized.
func (a *Alloc) HasData() bool { return a.backing != nil }

// ZeroBlockData zeroes the backing bytes of one block, if backing exists.
// Called by the driver when a discarded block's physical memory is
// reclaimed: subsequent reads observe zeros (§4.1).
func (a *Alloc) ZeroBlockData(idx int) {
	if a.backing == nil {
		return
	}
	start := units.Size(idx) * units.BlockSize
	end := start + a.blocks[idx].Bytes()
	for i := start; i < end; i++ {
		a.backing[i] = 0
	}
}

// Space is a unified virtual address space: an ordered set of allocations.
type Space struct {
	nextVA  uint64
	nextID  int
	allocs  map[int]*Alloc
	ordered []*Alloc
}

// NewSpace returns an empty address space. VAs start above zero so that
// address 0 is never valid.
func NewSpace() *Space {
	// Pre-size for a typical workload's handful of buffers so the first few
	// Alloc calls don't grow the map and ordered list step by step.
	return &Space{
		nextVA:  uint64(units.BlockSize),
		allocs:  make(map[int]*Alloc, 8),
		ordered: make([]*Alloc, 0, 8),
	}
}

// Alloc reserves size bytes of 2 MiB-aligned virtual address space.
func (s *Space) Alloc(name string, size units.Size) (*Alloc, error) {
	if size == 0 {
		return nil, fmt.Errorf("vaspace: zero-size allocation %q", name)
	}
	n := units.BlocksIn(size)
	a := &Alloc{
		id:     s.nextID,
		name:   name,
		base:   s.nextVA,
		size:   size,
		blocks: make([]Block, n),
		space:  s,
	}
	for i := range a.blocks {
		a.blocks[i].Alloc = a
		a.blocks[i].Index = i
	}
	s.nextID++
	s.nextVA += uint64(units.AlignUp(size, units.BlockSize))
	s.allocs[a.id] = a
	s.ordered = append(s.ordered, a)
	return a, nil
}

// Free marks an allocation freed and forgets it. The caller (the driver) is
// responsible for first releasing physical resources.
func (s *Space) Free(a *Alloc) error {
	if a.freed {
		return fmt.Errorf("vaspace: double free of %s", a.name)
	}
	a.freed = true
	delete(s.allocs, a.id)
	for i, x := range s.ordered {
		if x == a {
			s.ordered = append(s.ordered[:i], s.ordered[i+1:]...)
			break
		}
	}
	return nil
}

// Lookup finds the allocation containing virtual address va, or nil.
func (s *Space) Lookup(va uint64) *Alloc {
	i := sort.Search(len(s.ordered), func(i int) bool {
		a := s.ordered[i]
		return va < a.base+uint64(units.AlignUp(a.size, units.BlockSize))
	})
	if i < len(s.ordered) {
		a := s.ordered[i]
		if va >= a.base && va < a.base+uint64(a.size) {
			return a
		}
	}
	return nil
}

// ByID returns the live allocation with the given id, or nil.
func (s *Space) ByID(id int) *Alloc { return s.allocs[id] }

// Live returns all live allocations in allocation order.
func (s *Space) Live() []*Alloc {
	out := make([]*Alloc, len(s.ordered))
	copy(out, s.ordered)
	return out
}

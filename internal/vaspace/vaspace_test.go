package vaspace

import (
	"testing"
	"testing/quick"

	"uvmdiscard/internal/units"
)

func TestAllocBasics(t *testing.T) {
	s := NewSpace()
	a, err := s.Alloc("A", 5*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "A" || a.Size() != 5*units.MiB {
		t.Error("metadata wrong")
	}
	if a.NumBlocks() != 3 { // 5 MiB -> three 2 MiB blocks
		t.Errorf("blocks = %d", a.NumBlocks())
	}
	if !units.IsAligned(units.Size(a.Base()), units.BlockSize) {
		t.Error("base not 2 MiB aligned")
	}
	// Final block covers only the 1 MiB remainder.
	if a.Block(2).Bytes() != units.MiB {
		t.Errorf("tail block bytes = %d", a.Block(2).Bytes())
	}
	if a.Block(0).Bytes() != units.BlockSize {
		t.Errorf("full block bytes = %d", a.Block(0).Bytes())
	}
	if a.Block(1).VA() != a.Base()+uint64(units.BlockSize) {
		t.Error("block VA wrong")
	}
}

func TestAllocZeroSizeRejected(t *testing.T) {
	s := NewSpace()
	if _, err := s.Alloc("z", 0); err == nil {
		t.Error("zero-size allocation accepted")
	}
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	s := NewSpace()
	f := func(sizes []uint32) bool {
		type rng struct{ lo, hi uint64 }
		var rngs []rng
		for _, sz := range sizes {
			size := units.Size(sz%(64*uint32(units.MiB))) + 1
			a, err := s.Alloc("x", size)
			if err != nil {
				return false
			}
			r := rng{a.Base(), a.Base() + uint64(units.AlignUp(size, units.BlockSize))}
			for _, prev := range rngs {
				if r.lo < prev.hi && prev.lo < r.hi {
					return false
				}
			}
			rngs = append(rngs, r)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLookup(t *testing.T) {
	s := NewSpace()
	a, _ := s.Alloc("A", 3*units.MiB)
	b, _ := s.Alloc("B", units.BlockSize)
	if got := s.Lookup(a.Base()); got != a {
		t.Error("lookup of A base failed")
	}
	if got := s.Lookup(a.Base() + uint64(3*units.MiB) - 1); got != a {
		t.Error("lookup of A last byte failed")
	}
	// The aligned gap after A's 3 MiB (within its 4 MiB VA reservation)
	// belongs to no allocation.
	if got := s.Lookup(a.Base() + uint64(3*units.MiB)); got != nil {
		t.Errorf("lookup in A's alignment slack returned %v", got.Name())
	}
	if got := s.Lookup(b.Base()); got != b {
		t.Error("lookup of B failed")
	}
	if s.Lookup(0) != nil {
		t.Error("address 0 should be invalid")
	}
	if s.Lookup(1<<60) != nil {
		t.Error("wild address should be invalid")
	}
}

func TestFree(t *testing.T) {
	s := NewSpace()
	a, _ := s.Alloc("A", units.BlockSize)
	if err := s.Free(a); err != nil {
		t.Fatal(err)
	}
	if !a.Freed() {
		t.Error("not marked freed")
	}
	if s.Free(a) == nil {
		t.Error("double free accepted")
	}
	if s.Lookup(a.Base()) != nil {
		t.Error("freed allocation still found")
	}
	if s.ByID(a.ID()) != nil {
		t.Error("freed allocation still indexed")
	}
	if len(s.Live()) != 0 {
		t.Error("freed allocation still live")
	}
}

func TestBlockRangeWhole(t *testing.T) {
	s := NewSpace()
	a, _ := s.Alloc("A", 8*units.MiB) // 4 blocks

	// Exact full range covers all blocks.
	bs, err := a.BlockRange(0, 8*units.MiB, true)
	if err != nil || len(bs) != 4 {
		t.Fatalf("full range: %d blocks, err %v", len(bs), err)
	}

	// A partial range only yields fully covered blocks (§5.4: discard
	// ignores partial 2 MiB regions).
	bs, _ = a.BlockRange(units.MiB, 4*units.MiB, true) // covers [1MiB,5MiB)
	if len(bs) != 1 || bs[0].Index != 1 {
		t.Errorf("partial range: got %d blocks (first %v)", len(bs), idxOf(bs))
	}

	// A sub-block range yields nothing.
	bs, _ = a.BlockRange(units.MiB, units.MiB, true)
	if len(bs) != 0 {
		t.Errorf("sub-block range yielded %d blocks", len(bs))
	}
}

func TestBlockRangeWholeTail(t *testing.T) {
	s := NewSpace()
	a, _ := s.Alloc("A", 5*units.MiB) // 3 blocks, tail is 1 MiB
	// Range to the end of the allocation includes the partial tail block.
	bs, err := a.BlockRange(2*units.MiB, 3*units.MiB, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 2 || bs[0].Index != 1 || bs[1].Index != 2 {
		t.Errorf("tail range blocks = %v", idxOf(bs))
	}
}

func TestBlockRangePartialMode(t *testing.T) {
	s := NewSpace()
	a, _ := s.Alloc("A", 8*units.MiB)
	bs, err := a.BlockRange(units.MiB, 4*units.MiB, false)
	if err != nil {
		t.Fatal(err)
	}
	// [1MiB, 5MiB) touches blocks 0,1,2.
	if len(bs) != 3 || bs[0].Index != 0 || bs[2].Index != 2 {
		t.Errorf("partial-mode blocks = %v", idxOf(bs))
	}
}

func TestBlockRangeErrors(t *testing.T) {
	s := NewSpace()
	a, _ := s.Alloc("A", 2*units.MiB)
	if _, err := a.BlockRange(0, 3*units.MiB, false); err == nil {
		t.Error("out-of-bounds range accepted")
	}
	bs, err := a.BlockRange(0, 0, false)
	if err != nil || bs != nil {
		t.Error("empty range should return nil, nil")
	}
}

func TestBlockRangePropertyCoverage(t *testing.T) {
	s := NewSpace()
	a, _ := s.Alloc("A", 32*units.MiB)
	f := func(off32, len32 uint32) bool {
		off := units.Size(off32) % (32 * units.MiB)
		length := units.Size(len32) % (32*units.MiB - off)
		if length == 0 {
			return true
		}
		partial, err := a.BlockRange(off, length, false)
		if err != nil {
			return false
		}
		whole, err := a.BlockRange(off, length, true)
		if err != nil {
			return false
		}
		// whole-mode blocks are a subset of partial-mode blocks, and every
		// whole-mode block is fully inside the range.
		if len(whole) > len(partial) {
			return false
		}
		for _, b := range whole {
			lo := units.Size(b.Index) * units.BlockSize
			if lo < off || lo+b.Bytes() > off+length {
				return false
			}
		}
		// partial-mode covers every byte.
		covered := units.Size(0)
		for _, b := range partial {
			covered += b.Bytes()
		}
		return covered >= length
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBackingData(t *testing.T) {
	s := NewSpace()
	a, _ := s.Alloc("A", 3*units.MiB)
	if a.HasData() {
		t.Error("backing should be lazy")
	}
	d := a.Data()
	if len(d) != int(3*units.MiB) {
		t.Errorf("backing len = %d", len(d))
	}
	d[0] = 42
	d[2*int(units.MiB)] = 7
	a.ZeroBlockData(0)
	if a.Data()[0] != 0 {
		t.Error("block 0 not zeroed")
	}
	if a.Data()[2*int(units.MiB)] != 7 {
		t.Error("block 1 data clobbered by zeroing block 0")
	}
	// Zeroing the tail block must respect the allocation end.
	a.ZeroBlockData(1)
	if a.Data()[2*int(units.MiB)] != 0 {
		t.Error("tail block not zeroed")
	}
}

func TestZeroBlockDataWithoutBacking(t *testing.T) {
	s := NewSpace()
	a, _ := s.Alloc("A", units.BlockSize)
	a.ZeroBlockData(0) // must not allocate or panic
	if a.HasData() {
		t.Error("ZeroBlockData materialized backing")
	}
}

func TestResidencyString(t *testing.T) {
	if Untouched.String() != "untouched" || CPUResident.String() != "cpu" ||
		GPUResident.String() != "gpu" {
		t.Error("residency names")
	}
	if Residency(9).String() == "" {
		t.Error("unknown residency should stringify")
	}
}

func idxOf(bs []*Block) []int {
	out := make([]int, len(bs))
	for i, b := range bs {
		out[i] = b.Index
	}
	return out
}

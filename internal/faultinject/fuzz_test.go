package faultinject

import (
	"reflect"
	"testing"
)

// FuzzParseSpec drives the CLI spec grammar with adversarial input and
// holds ParseSpec to its contract: it either returns a one-line error or a
// schedule that (a) validates, (b) builds an injector, and (c) survives a
// Spec() → ParseSpec round trip unchanged. Any spec that parses but later
// crashes the engine (the NaN-probability / runaway-slow-factor class of
// bug) fails here instead of as a panic deep inside a run.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"",
		"seed=7",
		"seed=7,dma=0.05,unmap=0.01,fbcap=4",
		"dma=0.02,peer=0.01,unmap=0.005,poison=0.001,fbcap=8",
		"slow=pcie@1ms+5ms*3",
		"slow=pcie@1ms+5ms*3,slow=peer@0s+2ms*1.5",
		"dma=1,poison=0",
		// The historical panic class: values ParseFloat accepts but no
		// schedule may carry.
		"dma=NaN",
		"poison=+Inf",
		"slow=pcie@0s+1ms*NaN",
		"slow=pcie@0s+1ms*1e308",
		"slow=pcie@2540400h+2540400h*2",
		// Grammar edges.
		"fbcap=-1",
		"seed=notanumber",
		"slow=pcie@1ms",
		"slow=lan@1ms+1ms*2",
		"bogus=1",
		"=,=,=",
		"dma=0.02,,unmap=0.005,",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseSpec(spec)
		if err != nil {
			return // rejected specs just need to not panic
		}
		if verr := cfg.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted an invalid schedule: %v", spec, verr)
		}
		if _, nerr := New(*cfg); nerr != nil {
			t.Fatalf("ParseSpec(%q) accepted a schedule New rejects: %v", spec, nerr)
		}
		rendered := cfg.Spec()
		back, rerr := ParseSpec(rendered)
		if rerr != nil {
			t.Fatalf("Spec() output %q of %q does not re-parse: %v", rendered, spec, rerr)
		}
		if !reflect.DeepEqual(cfg, back) {
			t.Fatalf("round trip changed the schedule:\nspec %q\n got %+v\nback %+v (via %q)",
				spec, cfg, back, rendered)
		}
	})
}

// TestValidateRejectsNonFinite pins the exact hole the fuzz corpus
// documents: NaN slips through naive `< 0 || > 1` range checks, and a NaN
// or huge slow factor turns into a negative sim duration that crashes the
// engine mid-run. All must be rejected at spec time with an ordinary error.
func TestValidateRejectsNonFinite(t *testing.T) {
	for _, spec := range []string{
		"dma=NaN", "peer=NaN", "unmap=NaN", "poison=NaN",
		"dma=Inf", "poison=1.0000001",
		"slow=pcie@0s+1ms*NaN",
		"slow=pcie@0s+1ms*1e300",
		"slow=pcie@0s+1ms*0.5",
		"slow=pcie@2540400h+2540400h*2", // start+dur overflows int64 ns
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted a schedule that must be rejected", spec)
		}
	}
}

package faultinject

import (
	"testing"

	"uvmdiscard/internal/sim"
)

func TestParseSpecRoundTrip(t *testing.T) {
	cfg, err := ParseSpec("seed=7,dma=0.02,peer=0.01,unmap=0.005,poison=0.001,fbcap=8,slow=pcie@1ms+5ms*3,slow=peer@0s+2ms*1.5")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.DMAFailProb != 0.02 || cfg.PeerFailProb != 0.01 ||
		cfg.UnmapFailProb != 0.005 || cfg.PoisonProb != 0.001 || cfg.FaultBufferBlocks != 8 {
		t.Fatalf("parsed %+v", cfg)
	}
	if len(cfg.Windows) != 2 {
		t.Fatalf("got %d windows", len(cfg.Windows))
	}
	w := cfg.Windows[0]
	if w.Link != LinkPCIe || w.Start != sim.Millisecond || w.Dur != 5*sim.Millisecond || w.Factor != 3 {
		t.Fatalf("window 0: %+v", w)
	}
	// The rendered spec must parse back to the same schedule.
	again, err := ParseSpec(cfg.Spec())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", cfg.Spec(), err)
	}
	if again.Spec() != cfg.Spec() {
		t.Fatalf("spec not stable: %q vs %q", again.Spec(), cfg.Spec())
	}
}

func TestParseSpecEmptyAndErrors(t *testing.T) {
	cfg, err := ParseSpec("")
	if err != nil || cfg.Enabled() {
		t.Fatalf("empty spec: cfg=%+v err=%v", cfg, err)
	}
	for _, bad := range []string{
		"dma", "dma=2", "dma=-0.1", "nope=1", "fbcap=-1",
		"slow=pcie@1ms+5ms", "slow=nvlink@1ms+5ms*2", "slow=pcie@1ms+5ms*0.5",
		"slow=pcie@-1ms+5ms*2",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q: want error", bad)
		}
	}
}

func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, DMAFailProb: 0.3, UnmapFailProb: 0.2, PoisonProb: 0.1}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(cfg)
	for i := 0; i < 2000; i++ {
		switch i % 3 {
		case 0:
			if a.DMAFails() != b.DMAFails() {
				t.Fatalf("draw %d diverged", i)
			}
		case 1:
			if a.UnmapFails() != b.UnmapFails() {
				t.Fatalf("draw %d diverged", i)
			}
		case 2:
			if a.PoisonEvent() != b.PoisonEvent() {
				t.Fatalf("draw %d diverged", i)
			}
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	if a.Stats().DMAFailures == 0 || a.Stats().UnmapFailures == 0 {
		t.Fatalf("schedule injected nothing: %+v", a.Stats())
	}
}

func TestZeroProbabilitiesDrawNothing(t *testing.T) {
	in, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if in.DMAFails() || in.PeerFails() || in.UnmapFails() || in.PoisonEvent() {
			t.Fatal("zero-probability schedule injected a fault")
		}
	}
	// Zero-prob draws must not advance the RNG: stats and stream stay put.
	if in.Stats() != (Stats{}) {
		t.Fatalf("stats: %+v", in.Stats())
	}
}

func TestOverflowRounds(t *testing.T) {
	in, _ := New(Config{Seed: 1, FaultBufferBlocks: 4})
	cases := []struct{ faults, rounds int }{
		{0, 0}, {1, 0}, {4, 0}, {5, 1}, {8, 1}, {9, 2}, {16, 3},
	}
	for _, c := range cases {
		if got := in.OverflowRounds(c.faults); got != c.rounds {
			t.Errorf("OverflowRounds(%d) = %d, want %d", c.faults, got, c.rounds)
		}
	}
	unlimited, _ := New(Config{Seed: 1})
	if unlimited.OverflowRounds(1<<20) != 0 {
		t.Error("uncapped buffer overflowed")
	}
}

func TestScaleWindows(t *testing.T) {
	in, _ := New(Config{Seed: 1, Windows: []Window{
		{Link: LinkPCIe, Start: sim.Millisecond, Dur: sim.Millisecond, Factor: 3},
	}})
	base := sim.Micros(100)
	if got := in.Scale(LinkPCIe, base, 0); got != base {
		t.Errorf("before window: %v", got)
	}
	if got := in.Scale(LinkPCIe, base, sim.Millisecond); got != 3*base {
		t.Errorf("inside window: %v, want %v", got, 3*base)
	}
	if got := in.Scale(LinkPCIe, base, 2*sim.Millisecond); got != base {
		t.Errorf("after window (end exclusive): %v", got)
	}
	if got := in.Scale(LinkPeer, base, sim.Millisecond); got != base {
		t.Errorf("other link scaled: %v", got)
	}
}

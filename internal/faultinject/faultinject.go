// Package faultinject is the seeded, deterministic fault-injection
// subsystem for the simulated UVM driver. A production-scale UVM stack must
// survive exactly the conditions under which discard's savings matter most —
// oversubscription and memory pressure — so the driver's transfer and
// mapping paths consult an Injector at every point where real hardware can
// fail:
//
//   - DMA/migration transfer failure (H2D, D2H, and peer-fabric), answered
//     by the driver with bounded retry + exponential backoff in sim time and,
//     after Params.MaxMigrateRetries failures, graceful degradation to
//     coherent host-pinned access;
//   - replayable-fault-buffer overflow, forcing the GPU to re-raise (replay)
//     the faults that did not fit a buffer drain;
//   - transient unmap/TLB-shootdown failure, answered by reissuing the
//     shootdown;
//   - ECC-style chunk poison on resident pages, answered by quarantining the
//     chunk on the device's poisoned queue;
//   - interconnect degradation: per-link transfer-time multipliers over a
//     sim-time window.
//
// Determinism: an Injector owns one sim.RNG stream seeded from Config.Seed
// and draws from it once per decision, in driver issue order. A Driver is
// single-threaded per run and every run constructs its own Injector, so the
// same (workload, seed, schedule) triple always yields the same fault
// sequence — including across the parallel experiment runner's -j settings.
// An Injector must never be shared between runs.
package faultinject

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"uvmdiscard/internal/sim"
)

// maxSlowFactor bounds a degradation window's multiplier. Real
// interconnect brownouts are single-digit factors; the cap exists so a
// typo'd or fuzzed spec cannot scale a transfer past the int64 sim-time
// range.
const maxSlowFactor = 1000

// LinkID names an interconnect for degradation windows.
type LinkID int

const (
	// LinkPCIe is the CPU-GPU interconnect (the driver's DMA engine path).
	LinkPCIe LinkID = iota
	// LinkPeer is the GPU-to-GPU fabric.
	LinkPeer
)

// String returns the spec-grammar name of the link.
func (l LinkID) String() string {
	switch l {
	case LinkPCIe:
		return "pcie"
	case LinkPeer:
		return "peer"
	default:
		return fmt.Sprintf("LinkID(%d)", int(l))
	}
}

// Window degrades one link for a span of sim time: transfer durations on
// the link are multiplied by Factor while Start <= now < Start+Dur.
type Window struct {
	// Link selects which interconnect degrades.
	Link LinkID
	// Start is the sim time the degradation begins.
	Start sim.Time
	// Dur is how long the degradation lasts.
	Dur sim.Time
	// Factor multiplies transfer durations on the link (>= 1).
	Factor float64
}

// Config describes one fault schedule. The zero value injects nothing.
type Config struct {
	// Seed seeds the injector's RNG stream (0 is remapped by sim.NewRNG).
	Seed uint64
	// DMAFailProb is the per-attempt probability that an H2D or D2H DMA
	// migration fails and must be retried.
	DMAFailProb float64
	// PeerFailProb is the per-attempt failure probability on the peer
	// fabric (GPU-to-GPU migrations).
	PeerFailProb float64
	// UnmapFailProb is the per-attempt probability that an unmap/TLB
	// shootdown does not complete and must be reissued.
	UnmapFailProb float64
	// PoisonProb is the per-driver-operation probability of an ECC-style
	// uncorrectable error on one resident chunk, which the driver then
	// quarantines on the poisoned queue.
	PoisonProb float64
	// FaultBufferBlocks caps the replayable fault buffer, in blocks; a
	// fault batch larger than the cap overflows and the excess faults are
	// replayed. Zero means the buffer never overflows.
	FaultBufferBlocks int
	// Windows are the interconnect degradation windows.
	Windows []Window
}

// Enabled reports whether the schedule can inject anything at all.
func (c *Config) Enabled() bool {
	return c.DMAFailProb > 0 || c.PeerFailProb > 0 || c.UnmapFailProb > 0 ||
		c.PoisonProb > 0 || c.FaultBufferBlocks > 0 || len(c.Windows) > 0
}

// Validate checks the schedule.
func (c *Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"dma", c.DMAFailProb}, {"peer", c.PeerFailProb},
		{"unmap", c.UnmapFailProb}, {"poison", c.PoisonProb},
	} {
		// Written as a negated range so NaN (which fails every comparison)
		// is rejected instead of slipping through a `< 0 || > 1` check.
		if !(p.v >= 0 && p.v <= 1) {
			return fmt.Errorf("faultinject: %s probability %v outside [0,1]", p.name, p.v)
		}
	}
	if c.FaultBufferBlocks < 0 {
		return fmt.Errorf("faultinject: negative fault-buffer capacity %d", c.FaultBufferBlocks)
	}
	for i, w := range c.Windows {
		if w.Link != LinkPCIe && w.Link != LinkPeer {
			return fmt.Errorf("faultinject: window %d has unknown link %d", i, int(w.Link))
		}
		if w.Start < 0 || w.Dur <= 0 {
			return fmt.Errorf("faultinject: window %d has invalid span [%v,+%v)", i, w.Start, w.Dur)
		}
		if w.Start > math.MaxInt64-w.Dur {
			return fmt.Errorf("faultinject: window %d span [%v,+%v) overflows sim time", i, w.Start, w.Dur)
		}
		// Negated range so NaN and +Inf factors are rejected; an unbounded
		// factor would scale a transfer duration past the int64 sim-time
		// range and crash the engine with a negative duration.
		if !(w.Factor >= 1 && w.Factor <= maxSlowFactor) {
			return fmt.Errorf("faultinject: window %d factor %v outside [1,%v] (degradation only slows a link)", i, w.Factor, float64(maxSlowFactor))
		}
	}
	return nil
}

// Spec renders the schedule in the grammar ParseSpec accepts, so a schedule
// observed in a failing run can be replayed from the CLI verbatim.
func (c *Config) Spec() string {
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	if c.Seed != 0 {
		add("seed", strconv.FormatUint(c.Seed, 10))
	}
	if c.DMAFailProb > 0 {
		add("dma", trimFloat(c.DMAFailProb))
	}
	if c.PeerFailProb > 0 {
		add("peer", trimFloat(c.PeerFailProb))
	}
	if c.UnmapFailProb > 0 {
		add("unmap", trimFloat(c.UnmapFailProb))
	}
	if c.PoisonProb > 0 {
		add("poison", trimFloat(c.PoisonProb))
	}
	if c.FaultBufferBlocks > 0 {
		add("fbcap", strconv.Itoa(c.FaultBufferBlocks))
	}
	for _, w := range c.Windows {
		add("slow", fmt.Sprintf("%s@%s+%s*%s",
			w.Link, w.Start.Duration(), w.Dur.Duration(), trimFloat(w.Factor)))
	}
	return strings.Join(parts, ",")
}

func trimFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// ParseSpec parses a fault schedule from the CLI grammar: comma-separated
// key=value pairs.
//
//	seed=7            RNG seed for the fault stream
//	dma=0.02          H2D/D2H migration failure probability per attempt
//	peer=0.01         peer-fabric failure probability per attempt
//	unmap=0.005       unmap/TLB-shootdown failure probability per attempt
//	poison=0.001      per-operation ECC chunk-poison probability
//	fbcap=8           replayable fault buffer capacity in blocks
//	slow=pcie@1ms+5ms*3   multiply pcie transfer times by 3 during [1ms,6ms)
//
// slow may repeat; links are "pcie" and "peer"; times use Go duration
// syntax. An empty spec returns a schedule that injects nothing.
func ParseSpec(spec string) (*Config, error) {
	cfg := &Config{}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: %q is not key=value", part)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(val, 10, 64)
		case "dma":
			cfg.DMAFailProb, err = strconv.ParseFloat(val, 64)
		case "peer":
			cfg.PeerFailProb, err = strconv.ParseFloat(val, 64)
		case "unmap":
			cfg.UnmapFailProb, err = strconv.ParseFloat(val, 64)
		case "poison":
			cfg.PoisonProb, err = strconv.ParseFloat(val, 64)
		case "fbcap":
			cfg.FaultBufferBlocks, err = strconv.Atoi(val)
		case "slow":
			var w Window
			w, err = parseWindow(val)
			cfg.Windows = append(cfg.Windows, w)
		default:
			return nil, fmt.Errorf("faultinject: unknown key %q (want seed, dma, peer, unmap, poison, fbcap, slow)", key)
		}
		if err != nil {
			return nil, fmt.Errorf("faultinject: bad value for %s: %v", key, err)
		}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// parseWindow parses "link@start+dur*factor".
func parseWindow(s string) (Window, error) {
	var w Window
	linkPart, rest, ok := strings.Cut(s, "@")
	if !ok {
		return w, fmt.Errorf("%q: want link@start+dur*factor", s)
	}
	switch linkPart {
	case "pcie":
		w.Link = LinkPCIe
	case "peer":
		w.Link = LinkPeer
	default:
		return w, fmt.Errorf("unknown link %q (want pcie or peer)", linkPart)
	}
	startPart, rest, ok := strings.Cut(rest, "+")
	if !ok {
		return w, fmt.Errorf("%q: missing +dur", s)
	}
	durPart, factorPart, ok := strings.Cut(rest, "*")
	if !ok {
		return w, fmt.Errorf("%q: missing *factor", s)
	}
	start, err := time.ParseDuration(startPart)
	if err != nil {
		return w, err
	}
	dur, err := time.ParseDuration(durPart)
	if err != nil {
		return w, err
	}
	w.Start, w.Dur = sim.Time(start), sim.Time(dur)
	w.Factor, err = strconv.ParseFloat(factorPart, 64)
	return w, err
}

// Stats counts the faults an Injector actually delivered. The driver's
// recovery policies must account for every one of them: each delivered
// migration/unmap failure shows up as a retry in metrics, each overflow as
// a replayed fault round — the chaos harness asserts the books balance.
type Stats struct {
	// DMAFailures counts injected H2D/D2H migration failures.
	DMAFailures int64
	// PeerFailures counts injected peer-fabric failures.
	PeerFailures int64
	// UnmapFailures counts injected unmap/TLB-shootdown failures.
	UnmapFailures int64
	// Overflows counts fault batches that overflowed the buffer.
	Overflows int64
}

// Injector delivers one run's fault schedule. Not safe for concurrent use
// and never shared between runs (same rules as sim.RNG).
type Injector struct {
	cfg   Config
	rng   *sim.RNG
	stats Stats
}

// New builds an injector for one run from a validated schedule.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg, rng: sim.NewRNG(cfg.Seed)}, nil
}

// Config returns the injector's schedule.
func (in *Injector) Config() Config { return in.cfg }

// Stats returns the faults delivered so far.
func (in *Injector) Stats() Stats { return in.stats }

// DMAFails draws one H2D/D2H migration attempt; true means the attempt
// fails partway and the driver must retry or degrade.
func (in *Injector) DMAFails() bool {
	if in.cfg.DMAFailProb <= 0 {
		return false
	}
	if in.rng.Float64() < in.cfg.DMAFailProb {
		in.stats.DMAFailures++
		return true
	}
	return false
}

// PeerFails draws one peer-fabric transfer attempt.
func (in *Injector) PeerFails() bool {
	if in.cfg.PeerFailProb <= 0 {
		return false
	}
	if in.rng.Float64() < in.cfg.PeerFailProb {
		in.stats.PeerFailures++
		return true
	}
	return false
}

// UnmapFails draws one unmap/TLB-shootdown attempt.
func (in *Injector) UnmapFails() bool {
	if in.cfg.UnmapFailProb <= 0 {
		return false
	}
	if in.rng.Float64() < in.cfg.UnmapFailProb {
		in.stats.UnmapFailures++
		return true
	}
	return false
}

// PoisonEvent draws one driver operation; true means an ECC uncorrectable
// error hits a resident chunk now.
func (in *Injector) PoisonEvent() bool {
	if in.cfg.PoisonProb <= 0 {
		return false
	}
	return in.rng.Float64() < in.cfg.PoisonProb
}

// PickVictim selects which of n candidate chunks the poison event hits.
// n must be positive.
func (in *Injector) PickVictim(n int) int { return in.rng.Intn(n) }

// OverflowRounds reports how many extra buffer-drain rounds a fault batch
// of the given size forces: faults beyond the buffer capacity are dropped
// by the hardware and re-raised (replayed) after each drain.
func (in *Injector) OverflowRounds(faultedBlocks int) int {
	capacity := in.cfg.FaultBufferBlocks
	if capacity <= 0 || faultedBlocks <= capacity {
		return 0
	}
	in.stats.Overflows++
	return (faultedBlocks - 1) / capacity
}

// Scale applies any active degradation window to a transfer duration on the
// given link at sim time now.
func (in *Injector) Scale(link LinkID, dur sim.Time, now sim.Time) sim.Time {
	for _, w := range in.cfg.Windows {
		if w.Link == link && now >= w.Start && now < w.Start+w.Dur {
			dur = sim.Time(float64(dur) * w.Factor)
		}
	}
	return dur
}

// Describe renders a one-line human-readable summary of the schedule.
func (c *Config) Describe() string {
	if !c.Enabled() {
		return "no faults"
	}
	var parts []string
	if c.DMAFailProb > 0 {
		parts = append(parts, fmt.Sprintf("dma %.3g", c.DMAFailProb))
	}
	if c.PeerFailProb > 0 {
		parts = append(parts, fmt.Sprintf("peer %.3g", c.PeerFailProb))
	}
	if c.UnmapFailProb > 0 {
		parts = append(parts, fmt.Sprintf("unmap %.3g", c.UnmapFailProb))
	}
	if c.PoisonProb > 0 {
		parts = append(parts, fmt.Sprintf("poison %.3g", c.PoisonProb))
	}
	if c.FaultBufferBlocks > 0 {
		parts = append(parts, fmt.Sprintf("fbcap %d", c.FaultBufferBlocks))
	}
	links := map[LinkID]int{}
	for _, w := range c.Windows {
		links[w.Link]++
	}
	var names []string
	for l, n := range links {
		names = append(names, fmt.Sprintf("%s×%d", l, n))
	}
	sort.Strings(names)
	if len(names) > 0 {
		parts = append(parts, "slow "+strings.Join(names, "+"))
	}
	return strings.Join(parts, ", ")
}

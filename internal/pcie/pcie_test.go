package pcie

import (
	"testing"
	"testing/quick"

	"uvmdiscard/internal/units"
)

func TestPresets(t *testing.T) {
	g3, g4 := Preset(Gen3), Preset(Gen4)
	if g3.Generation() != Gen3 || g4.Generation() != Gen4 {
		t.Fatal("preset generation mismatch")
	}
	if g4.PeakBandwidth() <= g3.PeakBandwidth() {
		t.Error("Gen4 peak should exceed Gen3 peak")
	}
	if g3.Generation().String() == g4.Generation().String() {
		t.Error("generations should stringify differently")
	}
	if Gen3.String() != "PCIe-3" {
		t.Errorf("String = %q", Gen3.String())
	}
}

func TestUnknownGenerationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Preset(Generation(5))
}

func TestZeroBytesFree(t *testing.T) {
	l := Preset(Gen4)
	if l.TransferTime(0) != 0 {
		t.Error("zero-byte transfer should take zero time")
	}
	if l.Throughput(0) != 0 {
		t.Error("zero-byte throughput should be zero")
	}
}

// Figure 4 property: throughput increases monotonically with transfer size
// and saturates near the link peak for large transfers.
func TestThroughputCurveShape(t *testing.T) {
	for _, gen := range []Generation{Gen3, Gen4} {
		l := Preset(gen)
		sizes := []uint64{
			4 * units.KiB, 16 * units.KiB, 64 * units.KiB, 256 * units.KiB,
			units.MiB, 2 * units.MiB, 16 * units.MiB, 128 * units.MiB, units.GiB,
		}
		prev := 0.0
		for _, s := range sizes {
			tp := l.Throughput(s)
			if tp <= prev {
				t.Errorf("%v: throughput not monotonic at %s: %v <= %v",
					gen, units.Format(s), tp, prev)
			}
			if tp > l.PeakBandwidth() {
				t.Errorf("%v: throughput %v exceeds peak %v", gen, tp, l.PeakBandwidth())
			}
			prev = tp
		}
		// Large transfers reach at least 95% of peak.
		if tp := l.Throughput(units.GiB); tp < 0.95*l.PeakBandwidth() {
			t.Errorf("%v: 1 GiB transfer only reaches %.1f%% of peak",
				gen, 100*tp/l.PeakBandwidth())
		}
		// 4 KiB transfers are latency-bound: under 5% of peak.
		if tp := l.Throughput(4 * units.KiB); tp > 0.05*l.PeakBandwidth() {
			t.Errorf("%v: 4 KiB transfer reaches %.1f%% of peak, want latency-bound",
				gen, 100*tp/l.PeakBandwidth())
		}
	}
}

// A 2 MiB migration should already achieve a large fraction of peak — the
// §5.4 argument for preferring whole-block discards.
func TestTwoMiBNearPeak(t *testing.T) {
	for _, gen := range []Generation{Gen3, Gen4} {
		l := Preset(gen)
		frac := l.Throughput(2*units.MiB) / l.PeakBandwidth()
		if frac < 0.5 {
			t.Errorf("%v: 2 MiB reaches only %.0f%% of peak", gen, 100*frac)
		}
	}
}

func TestGen4FasterThanGen3(t *testing.T) {
	g3, g4 := Preset(Gen3), Preset(Gen4)
	for _, s := range []uint64{4 * units.KiB, 2 * units.MiB, units.GiB} {
		if g4.TransferTime(s) >= g3.TransferTime(s) {
			t.Errorf("Gen4 not faster than Gen3 at %s", units.Format(s))
		}
	}
}

func TestTransferTimeAdditiveProperty(t *testing.T) {
	// One big DMA op is never slower than two halves (it pays latency once).
	l := Preset(Gen3)
	f := func(a, b uint32) bool {
		whole := l.TransferTime(uint64(a) + uint64(b))
		split := l.TransferTime(uint64(a)) + l.TransferTime(uint64(b))
		return whole <= split
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewLinkValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewLink(Gen3, 0, 0) },
		func() { NewLink(Gen3, 1e9, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestNVLinkPreset(t *testing.T) {
	nv := Preset(GenNVLink)
	if !nv.Coherent() {
		t.Fatal("NVLink preset must be coherent")
	}
	if nv.Generation().String() != "NVLink" {
		t.Errorf("name = %q", nv.Generation().String())
	}
	if nv.PeakBandwidth() <= Preset(Gen4).PeakBandwidth() {
		t.Error("NVLink should out-bandwidth PCIe-4")
	}
	for _, gen := range []Generation{Gen3, Gen4} {
		if Preset(gen).Coherent() {
			t.Errorf("%v should not be coherent", gen)
		}
	}
}

func TestRemoteAccessTime(t *testing.T) {
	nv := Preset(GenNVLink)
	if nv.RemoteAccessTime(0) != 0 {
		t.Error("zero-byte remote access should be free")
	}
	// Remote access pays no DMA setup latency: for one block it is
	// cheaper than a migration.
	n := uint64(2 * units.MiB)
	if nv.RemoteAccessTime(n) >= nv.TransferTime(n) {
		t.Error("remote access should undercut a DMA op of the same size")
	}
}

// Package pcie models the CPU-GPU interconnect used by the UVM driver
// simulator.
//
// The paper's evaluation platform connects the GPU over PCIe 3 or PCIe 4
// (switchable on the B550 motherboard) and shows in Figure 4 that
// cudaMemPrefetchAsync throughput depends strongly on transfer size: tiny
// transfers are latency-bound, large ones approach the link's peak. We model
// each DMA operation as
//
//	time(bytes) = latency + bytes/peak
//
// which reproduces that saturation curve. Migrations in the driver happen at
// 2 MiB chunk granularity, and the driver batches contiguous chunks into
// larger DMA operations when it can, which is why the paper prefers full
// 2 MiB discards (§5.4): a 4 KiB transfer achieves well under 1 GB/s while a
// 2 MiB one reaches most of peak bandwidth.
package pcie

import (
	"fmt"

	"uvmdiscard/internal/sim"
)

// Generation identifies a PCIe generation preset.
type Generation int

const (
	// Gen3 is PCIe 3.0 x16: ~12.3 GB/s effective peak.
	Gen3 Generation = 3
	// Gen4 is PCIe 4.0 x16: ~24.7 GB/s effective peak. The paper notes the
	// platform's DDR4-3200 bottlenecks PCIe-4 at ~25 GB/s.
	Gen4 Generation = 4
	// GenNVLink is a cache-coherent CPU-GPU interconnect of the POWER9 /
	// NVLink class (§2.3): higher bandwidth and, crucially, coherent —
	// the GPU can access host memory remotely without migrating it.
	GenNVLink Generation = 9
)

// String returns "PCIe-3" style names matching the paper's table captions.
func (g Generation) String() string {
	if g == GenNVLink {
		return "NVLink"
	}
	return fmt.Sprintf("PCIe-%d", int(g))
}

// Link is an interconnect with a fixed per-operation latency and peak
// bandwidth. The zero value is unusable; use NewLink or a preset.
type Link struct {
	gen      Generation
	peak     float64  // bytes/second
	latency  sim.Time // per-DMA-operation setup latency
	coherent bool     // supports cache-coherent remote access (§2.3)
}

// NewLink builds a link from raw parameters. peak is in bytes/second.
func NewLink(gen Generation, peak float64, latency sim.Time) *Link {
	if peak <= 0 {
		panic("pcie: non-positive peak bandwidth")
	}
	if latency < 0 {
		panic("pcie: negative latency")
	}
	return &Link{gen: gen, peak: peak, latency: latency}
}

// Preset links are immutable after construction (Link has no setters), so
// each generation is built once and shared by every caller — experiment
// sweeps request a preset per run.
var (
	gen3Preset   = NewLink(Gen3, 12.3e9, sim.Micros(18))
	gen4Preset   = NewLink(Gen4, 24.7e9, sim.Micros(15))
	nvlinkPreset = func() *Link {
		l := NewLink(GenNVLink, 63e9, sim.Micros(9))
		l.coherent = true
		return l
	}()
)

// Preset returns the link model for a PCIe generation, calibrated so that
// the Figure 4 curve saturates near 12.3 GB/s (Gen3) and 24.7 GB/s (Gen4)
// with the knee between 256 KiB and 2 MiB.
func Preset(gen Generation) *Link {
	switch gen {
	case Gen3:
		return gen3Preset
	case Gen4:
		return gen4Preset
	case GenNVLink:
		return nvlinkPreset
	default:
		panic(fmt.Sprintf("pcie: unknown generation %d", int(gen)))
	}
}

// Generation returns the link's PCIe generation.
func (l *Link) Generation() Generation { return l.gen }

// PeakBandwidth returns the link's peak in bytes/second.
func (l *Link) PeakBandwidth() float64 { return l.peak }

// Latency returns the fixed per-operation setup latency.
func (l *Link) Latency() sim.Time { return l.latency }

// Coherent reports whether the link supports cache-coherent remote memory
// access: the GPU can read and write host memory directly (at link
// bandwidth) instead of migrating pages (§2.3).
func (l *Link) Coherent() bool { return l.coherent }

// RemoteAccessTime returns the time one remote access of n bytes occupies
// the link. Remote accesses are fine-grained loads/stores aggregated by
// the coherence hardware: no DMA setup latency, but the link's bandwidth
// bounds them.
func (l *Link) RemoteAccessTime(n uint64) sim.Time {
	if n == 0 {
		return 0
	}
	return sim.TransferTime(n, l.peak)
}

// TransferTime returns the time one DMA operation of n bytes occupies the
// link. Zero bytes take zero time (no operation is issued).
func (l *Link) TransferTime(n uint64) sim.Time {
	if n == 0 {
		return 0
	}
	return l.latency + sim.TransferTime(n, l.peak)
}

// Throughput returns the effective throughput in bytes/second achieved by a
// single transfer of n bytes — the quantity Figure 4 plots.
func (l *Link) Throughput(n uint64) float64 {
	if n == 0 {
		return 0
	}
	t := l.TransferTime(n)
	return float64(n) / t.Seconds()
}

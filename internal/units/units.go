// Package units provides byte-size types and helpers shared across the
// simulator. Sizes are plain uint64 byte counts; the helpers exist so that
// experiment tables and logs format sizes the same way everywhere.
package units

import (
	"fmt"
	"strconv"
	"strings"
)

// Size is a byte count.
type Size = uint64

// Common power-of-two sizes.
const (
	KiB Size = 1 << 10
	MiB Size = 1 << 20
	GiB Size = 1 << 30
	TiB Size = 1 << 40
)

// Page and block granularities used by the UVM driver model.
const (
	// PageSize is the small (system) page size: 4 KiB.
	PageSize Size = 4 * KiB
	// BlockSize is the big-page / chunk granularity the driver manages
	// physically: 2 MiB (§5.4 of the paper).
	BlockSize Size = 2 * MiB
	// PagesPerBlock is the number of 4 KiB pages in a 2 MiB block.
	PagesPerBlock = int(BlockSize / PageSize)
)

// AlignUp rounds n up to the next multiple of align. align must be a power
// of two.
func AlignUp(n, align Size) Size {
	return (n + align - 1) &^ (align - 1)
}

// AlignDown rounds n down to a multiple of align. align must be a power of
// two.
func AlignDown(n, align Size) Size {
	return n &^ (align - 1)
}

// IsAligned reports whether n is a multiple of align (a power of two).
func IsAligned(n, align Size) bool {
	return n&(align-1) == 0
}

// BlocksIn returns the number of 2 MiB blocks needed to cover n bytes.
func BlocksIn(n Size) int {
	return int(AlignUp(n, BlockSize) / BlockSize)
}

// PagesIn returns the number of 4 KiB pages needed to cover n bytes.
func PagesIn(n Size) int {
	return int(AlignUp(n, PageSize) / PageSize)
}

// Format renders a size with a binary-prefix unit, e.g. "5.66 GiB".
// Exact multiples print without a fraction ("2 MiB").
func Format(n Size) string {
	switch {
	case n >= TiB:
		return formatUnit(n, TiB, "TiB")
	case n >= GiB:
		return formatUnit(n, GiB, "GiB")
	case n >= MiB:
		return formatUnit(n, MiB, "MiB")
	case n >= KiB:
		return formatUnit(n, KiB, "KiB")
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func formatUnit(n, unit Size, suffix string) string {
	if n%unit == 0 {
		return fmt.Sprintf("%d %s", n/unit, suffix)
	}
	return fmt.Sprintf("%.2f %s", float64(n)/float64(unit), suffix)
}

// GB renders a size in decimal gigabytes with two decimals, matching the
// units used by the paper's traffic tables ("PCIe traffic (GB)").
func GB(n Size) float64 {
	return float64(n) / 1e9
}

// Parse parses strings like "512", "4KiB", "2MiB", "5.5GiB", "12GB"
// (decimal suffixes KB/MB/GB/TB use powers of ten). It accepts an optional
// space before the suffix.
func Parse(s string) (Size, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("units: empty size")
	}
	i := 0
	for i < len(s) && (s[i] == '.' || (s[i] >= '0' && s[i] <= '9')) {
		i++
	}
	numPart, suffix := s[:i], strings.TrimSpace(s[i:])
	if numPart == "" {
		return 0, fmt.Errorf("units: no number in %q", s)
	}
	val, err := strconv.ParseFloat(numPart, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad number in %q: %w", s, err)
	}
	var mult float64
	switch strings.ToUpper(suffix) {
	case "", "B":
		mult = 1
	case "KIB":
		mult = float64(KiB)
	case "MIB":
		mult = float64(MiB)
	case "GIB":
		mult = float64(GiB)
	case "TIB":
		mult = float64(TiB)
	case "KB":
		mult = 1e3
	case "MB":
		mult = 1e6
	case "GB":
		mult = 1e9
	case "TB":
		mult = 1e12
	default:
		return 0, fmt.Errorf("units: unknown suffix %q in %q", suffix, s)
	}
	if val < 0 {
		return 0, fmt.Errorf("units: negative size %q", s)
	}
	return Size(val * mult), nil
}

package units

import (
	"testing"
	"testing/quick"
)

func TestAlignUp(t *testing.T) {
	cases := []struct {
		n, align, want Size
	}{
		{0, PageSize, 0},
		{1, PageSize, PageSize},
		{PageSize, PageSize, PageSize},
		{PageSize + 1, PageSize, 2 * PageSize},
		{BlockSize - 1, BlockSize, BlockSize},
		{BlockSize, BlockSize, BlockSize},
		{3 * MiB, BlockSize, 4 * MiB},
	}
	for _, c := range cases {
		if got := AlignUp(c.n, c.align); got != c.want {
			t.Errorf("AlignUp(%d, %d) = %d, want %d", c.n, c.align, got, c.want)
		}
	}
}

func TestAlignDown(t *testing.T) {
	cases := []struct {
		n, align, want Size
	}{
		{0, PageSize, 0},
		{1, PageSize, 0},
		{PageSize, PageSize, PageSize},
		{2*PageSize - 1, PageSize, PageSize},
		{3 * MiB, BlockSize, 2 * MiB},
	}
	for _, c := range cases {
		if got := AlignDown(c.n, c.align); got != c.want {
			t.Errorf("AlignDown(%d, %d) = %d, want %d", c.n, c.align, got, c.want)
		}
	}
}

func TestAlignPropertyRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		s := Size(n)
		up := AlignUp(s, PageSize)
		down := AlignDown(s, PageSize)
		if !IsAligned(up, PageSize) || !IsAligned(down, PageSize) {
			return false
		}
		if up < s || down > s {
			return false
		}
		if IsAligned(s, PageSize) {
			return up == s && down == s
		}
		return up-down == PageSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlocksAndPages(t *testing.T) {
	if got := BlocksIn(0); got != 0 {
		t.Errorf("BlocksIn(0) = %d", got)
	}
	if got := BlocksIn(1); got != 1 {
		t.Errorf("BlocksIn(1) = %d", got)
	}
	if got := BlocksIn(BlockSize); got != 1 {
		t.Errorf("BlocksIn(BlockSize) = %d", got)
	}
	if got := BlocksIn(BlockSize + 1); got != 2 {
		t.Errorf("BlocksIn(BlockSize+1) = %d", got)
	}
	if got := PagesIn(5 * PageSize); got != 5 {
		t.Errorf("PagesIn(5 pages) = %d", got)
	}
	if PagesPerBlock != 512 {
		t.Errorf("PagesPerBlock = %d, want 512", PagesPerBlock)
	}
}

func TestFormat(t *testing.T) {
	cases := []struct {
		n    Size
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{KiB, "1 KiB"},
		{2 * MiB, "2 MiB"},
		{GiB + GiB/2, "1.50 GiB"},
		{3 * TiB, "3 TiB"},
	}
	for _, c := range cases {
		if got := Format(c.n); got != c.want {
			t.Errorf("Format(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestGB(t *testing.T) {
	if got := GB(5_660_000_000); got != 5.66 {
		t.Errorf("GB = %v, want 5.66", got)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Size
	}{
		{"512", 512},
		{"512B", 512},
		{"4KiB", 4 * KiB},
		{"2MiB", 2 * MiB},
		{"1.5GiB", GiB + GiB/2},
		{"12GB", 12_000_000_000},
		{" 8 MiB ", 8 * MiB},
		{"0", 0},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "GiB", "12XB", "-5MiB", "1..2KiB"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

package experiments

import (
	"fmt"

	"uvmdiscard/internal/dnn"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/lms"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
)

func init() {
	register(Experiment{ID: "F3", Name: "resnet-rmt", Run: runFigure3})
	register(Experiment{ID: "F5", Name: "dl-traffic", Run: runFigure5})
	register(Experiment{ID: "F6", Name: "dl-throughput-pcie4", Run: func(o Options) (*Table, error) {
		return dlThroughput("F6", pcie.Gen4, o)
	}})
	register(Experiment{ID: "F7", Name: "dl-throughput-pcie3", Run: func(o Options) (*Table, error) {
		return dlThroughput("F7", pcie.Gen3, o)
	}})
	register(Experiment{ID: "T1", Name: "vgg16-gtx1070", Run: runTable1})
}

// dlBatches holds each network's batch-size sweep: two fitting points, the
// largest fitting batch, and three oversubscribing points, bounded by the
// paper's reported ranges.
var dlBatches = map[string][]int{
	"VGG-16":     {40, 60, 75, 100, 125, 150},
	"Darknet-19": {100, 140, 171, 230, 300, 360},
	"ResNet-53":  {30, 45, 56, 85, 115, 150},
	"RNN":        {100, 140, 172, 215, 260, 300},
}

// dlModels returns the sweep set: the paper's zoo, or a small synthetic
// network in quick mode.
func dlModels(o Options) ([]*dnn.ModelSpec, map[string][]int, workloads.Platform) {
	if o.Quick {
		m := quickModel()
		return []*dnn.ModelSpec{m},
			map[string][]int{m.Name: {8, 24, 48, 72}},
			o.arm(workloads.Platform{GPU: gpudev.Generic(512 * units.MiB), Gen: pcie.Gen4})
	}
	return dnn.Zoo(), dlBatches, o.arm(workloads.DefaultPlatform())
}

func quickModel() *dnn.ModelSpec {
	m := &dnn.ModelSpec{
		Name:        "quick-net",
		SampleBytes: 256 * units.KiB,
		LabelBytes:  4 * units.KiB,
		Efficiency:  0.4,
		Layers: []dnn.LayerSpec{
			{Name: "l1", OutPerSample: 2 * units.MiB, WeightBytes: 4 * units.MiB, FlopsPerSample: 2e8},
			{Name: "l2", OutPerSample: 2 * units.MiB, WeightBytes: 8 * units.MiB, FlopsPerSample: 4e8},
			{Name: "l3", OutPerSample: units.MiB, WeightBytes: 8 * units.MiB, FlopsPerSample: 4e8},
			{Name: "l4", OutPerSample: units.MiB / 2, WeightBytes: 2 * units.MiB, FlopsPerSample: 1e8},
		},
	}
	if err := m.Calibrate(10, 260*units.MiB, 50, 900*units.MiB); err != nil {
		panic(err)
	}
	return m
}

// runFigure3 reproduces Figure 3: PCIe traffic of ResNet-53 training under
// plain UVM across batch sizes, split into the total and the genuinely
// required portion via the RMT trace analyzer. Beyond the GPU capacity,
// less than half of UVM's traffic is required — the paper's motivating
// observation.
func runFigure3(o Options) (*Table, error) {
	model := dnn.ResNet53()
	batches := []int{30, 45, 56, 85, 115, 150}
	p := workloads.DefaultPlatform()
	if o.Quick {
		model = quickModel()
		batches = []int{8, 24, 48, 72}
		p = workloads.Platform{GPU: gpudev.Generic(512 * units.MiB), Gen: pcie.Gen4}
	}
	p = o.arm(p)
	p.TraceRMT = true
	t := &Table{
		ID:     "F3",
		Title:  fmt.Sprintf("PCIe traffic of %s under UVM: total vs required (GB)", model.Name),
		Header: []string{"Batch", "Footprint", "Total", "Required", "Redundant", "Redundant%"},
	}
	for _, b := range batches {
		r, err := dnn.Train(p, workloads.UVMOpt, dnn.TrainConfig{Model: model, Batch: b})
		if err != nil {
			return nil, err
		}
		if r.Analysis == nil {
			return nil, fmt.Errorf("F3: no RMT analysis recorded")
		}
		a := r.Analysis
		t.AddRow(fmt.Sprintf("%d", b),
			units.Format(r.Footprint),
			fmtGB(r.TrafficBytes),
			fmtGB(a.RequiredBytes),
			fmtGB(a.Redundant()),
			fmt.Sprintf("%.0f%%", 100*a.RedundantFraction()))
	}
	t.Notes = append(t.Notes,
		"paper: beyond GPU capacity, the required traffic is less than half of what UVM transfers")
	return t, nil
}

// runFigure5 reproduces Figure 5: PCIe traffic versus batch size for all
// four networks under UVM-opt, UvmDiscard, and UvmDiscardLazy. The paper's
// caption: "UvmDiscard and UvmDiscardLazy fully eliminate RMTs".
func runFigure5(o Options) (*Table, error) {
	models, batches, p := dlModels(o)
	t := &Table{
		ID:     "F5",
		Title:  "PCIe traffic in deep learning (GB)",
		Header: []string{"Model", "Batch", "UVM-opt", "UvmDiscard", "UvmDiscardLazy", "saved%"},
	}
	for _, m := range models {
		for _, b := range batches[m.Name] {
			var cells []string
			var base, disc uint64
			for _, sys := range tableSystems {
				r, err := dnn.Train(p, sys, dnn.TrainConfig{Model: m, Batch: b})
				if err != nil {
					return nil, err
				}
				cells = append(cells, fmtGB(r.TrafficBytes))
				if sys == workloads.UVMOpt {
					base = r.TrafficBytes
				}
				if sys == workloads.UvmDiscard {
					disc = r.TrafficBytes
				}
			}
			saved := "-"
			if base > 0 {
				saved = fmt.Sprintf("%.0f%%", 100*(1-float64(disc)/float64(base)))
			}
			t.AddRow(append([]string{m.Name, fmt.Sprintf("%d", b)}, append(cells, saved)...)...)
		}
	}
	t.Notes = append(t.Notes,
		"paper headline: discard eliminates >60% of transfers on oversubscribing batches")
	return t, nil
}

// dlThroughput reproduces Figures 6 (PCIe-4) and 7 (PCIe-3): training
// throughput in img/s across batch sizes for No-UVM (where it fits),
// UVM-opt, and both discard flavors.
func dlThroughput(id string, gen pcie.Generation, o Options) (*Table, error) {
	models, batches, p := dlModels(o)
	p.Gen = gen
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("Training throughput (img/s) with %v", gen),
		Header: []string{"Model", "Batch", "No-UVM", "UVM-opt", "UvmDiscard", "UvmDiscardLazy"},
	}
	systems := []workloads.System{
		workloads.NoUVM, workloads.UVMOpt, workloads.UvmDiscard, workloads.UvmDiscardLazy,
	}
	for _, m := range models {
		for _, b := range batches[m.Name] {
			row := []string{m.Name, fmt.Sprintf("%d", b)}
			for _, sys := range systems {
				r, err := dnn.Train(p, sys, dnn.TrainConfig{Model: m, Batch: b})
				if err != nil {
					if sys == workloads.NoUVM {
						row = append(row, "-") // does not fit: the Listing 4 failure
						continue
					}
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.1f", r.Throughput))
			}
			t.AddRow(row...)
		}
	}
	t.Notes = append(t.Notes,
		"\"-\" marks No-UVM failing because the footprint exceeds GPU memory",
		"shape targets: eager discard costs up to ~16% when fitting; lazy is neutral; both win once oversubscribed")
	return t, nil
}

// runTable1 reproduces Table 1: VGG-16 training on the GTX 1070 (PCIe-3)
// comparing PyTorch-LMS manual swapping, plain UVM, and UVM with discard
// across batch sizes 40–80. Cells are "throughput(img/s)/traffic(GB)".
func runTable1(o Options) (*Table, error) {
	model := dnn.VGG16()
	batches := []int{40, 50, 60, 70, 80}
	p := workloads.Platform{GPU: gpudev.GTX1070(), Gen: pcie.Gen3}
	steps := 10
	if o.Quick {
		model = quickModel()
		batches = []int{8, 24, 48}
		p = workloads.Platform{GPU: gpudev.Generic(512 * units.MiB), Gen: pcie.Gen3}
		steps = 4
	}
	p = o.arm(p)
	t := &Table{
		ID:     "T1",
		Title:  fmt.Sprintf("Throughput(img/s)/PCIe traffic(GB) of training %s on %s", model.Name, p.GPU.Name),
		Header: append([]string{"System"}, batchHeaders(batches)...),
	}
	paper := map[string][]string{
		"PyTorch-LMS":     {"16/112", "17/118", "17/148", "19/113", "18/150"},
		"DarkNet-UVM":     {"29/2", "29/2", "25/45", "22/104", "20/152"},
		"DarkNet-Discard": {"29/2", "29/2", "28/10", "26/34", "24/58"},
	}
	rows := []struct {
		name string
		run  func(batch int) (dnn.TrainResult, error)
	}{
		{"PyTorch-LMS", func(b int) (dnn.TrainResult, error) {
			return lms.Train(p, lms.Config{Model: model, Batch: b, Steps: steps})
		}},
		{"DarkNet-UVM", func(b int) (dnn.TrainResult, error) {
			return dnn.Train(p, workloads.UVMOpt, dnn.TrainConfig{Model: model, Batch: b, Steps: steps})
		}},
		{"DarkNet-Discard", func(b int) (dnn.TrainResult, error) {
			return dnn.Train(p, workloads.UvmDiscard, dnn.TrainConfig{Model: model, Batch: b, Steps: steps})
		}},
	}
	for _, spec := range rows {
		row := []string{spec.name}
		for _, b := range batches {
			r, err := spec.run(b)
			if err != nil {
				return nil, fmt.Errorf("T1 %s batch %d: %w", spec.name, b, err)
			}
			row = append(row, fmt.Sprintf("%.0f/%.0f", r.Throughput, r.TrafficGB()))
		}
		t.AddRow(row...)
		if ref, ok := paper[spec.name]; ok && !o.Quick {
			t.AddRow(append([]string{"  (paper)"}, ref...)...)
		}
	}
	return t, nil
}

func batchHeaders(batches []int) []string {
	out := make([]string, len(batches))
	for i, b := range batches {
		out[i] = fmt.Sprintf("%d", b)
	}
	return out
}

package experiments

import (
	"fmt"

	"uvmdiscard/internal/dnn"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
)

func init() {
	register(Experiment{ID: "X5", Name: "recompute-vs-discard", Run: runRecomputeVsDiscard})
}

// runRecomputeVsDiscard compares activation recomputation (gradient
// checkpointing) with the discard directive on ResNet-53 training — the
// alternative the paper's related work cites: "Other approach chooses to
// recompute intermediate results to save memory consumption, but it does
// not ultimately avoid RMTs" (§8).
//
// At a moderately oversubscribing batch, recomputation shrinks the
// footprint enough to fit, so it trades ~1.5x compute for zero transfers
// and wins. At a very large batch even the recompute footprint
// oversubscribes, its RMTs return, and composing it with discard recovers
// the loss — the two techniques are complementary, exactly as §8 argues.
func runRecomputeVsDiscard(o Options) (*Table, error) {
	model := dnn.ResNet53()
	batches := []int{150, 320}
	p := workloads.DefaultPlatform()
	if o.Quick {
		model = quickModel()
		batches = []int{48, 120}
		p = workloads.Platform{GPU: gpudev.Generic(512 * units.MiB)}
	}
	p = o.arm(p)
	t := &Table{
		ID:    "X5",
		Title: fmt.Sprintf("Extension (§8): recomputation vs discard, %s training", model.Name),
		Header: []string{"Batch", "Strategy", "Footprint", "Traffic GB",
			"Throughput img/s"},
	}
	for _, batch := range batches {
		for _, spec := range []struct {
			name      string
			sys       workloads.System
			recompute bool
		}{
			{"UVM-opt", workloads.UVMOpt, false},
			{"UvmDiscard", workloads.UvmDiscard, false},
			{"recompute", workloads.UVMOpt, true},
			{"recompute+discard", workloads.UvmDiscard, true},
		} {
			r, err := dnn.Train(p, spec.sys, dnn.TrainConfig{
				Model: model, Batch: batch, Recompute: spec.recompute,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%d", batch), spec.name,
				units.Format(r.Footprint), fmtGB(r.TrafficBytes),
				fmt.Sprintf("%.1f", r.Throughput))
		}
	}
	t.Notes = append(t.Notes,
		"recomputation pays ~1.5x compute to drop the stored stashes; once even that footprint oversubscribes, its RMTs return",
		"discard composes with it — the §8 observation that recomputation 'does not ultimately avoid RMTs'")
	return t, nil
}

package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fuzzLine renders one valid journal line for the seed corpus.
func fuzzLine(id string, quick bool) string {
	rec := journalRecord{
		ID:    id,
		Name:  "seed-" + id,
		Quick: quick,
		Table: &Table{ID: id, Title: "t", Header: []string{"a"}, Rows: [][]string{{"1"}}},
	}
	b, err := json.Marshal(rec)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// FuzzJournal feeds adversarial on-disk journal bytes to OpenJournal and
// holds it to the crash-repair contract (mirroring internal/faultinject's
// FuzzParseSpec discipline for the spec grammar):
//
//   - Open either fails with an ordinary error or succeeds — never panics.
//   - The only mutation Open may make is truncating a torn tail: the file
//     after a successful open is a prefix of the input.
//   - Interior corruption is a hard error, torn tails (unterminated or
//     complete-but-undecodable final line) are repaired, duplicate IDs
//     collapse last-writer-wins, and records under the other quick flag are
//     preserved but not loaded.
//   - A repaired journal stays writable and a second open round-trips every
//     loaded record plus the fresh append — repair is idempotent.
func FuzzJournal(f *testing.F) {
	good := fuzzLine("T1", true)
	goodSlow := fuzzLine("T1", false)
	dup := fuzzLine("T1", true)
	other := fuzzLine("T2", true)
	f.Add([]byte(nil), true)
	f.Add([]byte(good+"\n"), true)
	f.Add([]byte(good+"\n"+other+"\n"), true)
	// Duplicate IDs: legal, last record wins.
	f.Add([]byte(good+"\n"+dup+"\n"), true)
	// Mixed quick flags: both legal, only the matching one loads.
	f.Add([]byte(good+"\n"+goodSlow+"\n"), true)
	f.Add([]byte(good+"\n"+goodSlow+"\n"), false)
	// Torn tails: unterminated, and complete-but-undecodable final lines.
	f.Add([]byte(good+"\n"+other[:len(other)/2]), true)
	f.Add([]byte(good+"\n"+"{\"id\":\"T9\",\"table\"\n"), true)
	f.Add([]byte(good+"\n"+"null\n"), true)
	f.Add([]byte(good+"\n"+"{}\n"), true)
	f.Add([]byte("{"), true)
	// Interior corruption: garbage, valid JSON of the wrong shape, and a
	// record missing required fields, each followed by a valid record.
	f.Add([]byte("garbage\n"+good+"\n"), true)
	f.Add([]byte("42\n"+good+"\n"), true)
	f.Add([]byte("{\"name\":\"no-id\",\"quick\":true}\n"+good+"\n"), true)
	f.Add([]byte(good+"\nnull\n"+other+"\n"), true)
	// Oversized line: far beyond any real table, must still round-trip.
	f.Add([]byte(fuzzLine(strings.Repeat("x", 1<<16), true)+"\n"), true)
	// Stray CR / BOM / binary noise.
	f.Add([]byte(good+"\r\n"), true)
	f.Add([]byte("\xef\xbb\xbf"+good+"\n"), true)
	f.Add([]byte{0, 1, 2, '\n'}, true)

	f.Fuzz(func(t *testing.T, data []byte, quick bool) {
		// Oracle: the valid prefix per the documented contract. A line is a
		// valid record iff it JSON-decodes into a journalRecord with a
		// non-empty ID and a table. The final line is torn (repairable) if
		// unterminated or invalid; an invalid earlier line is a hard error.
		decode := func(line []byte) bool {
			var rec journalRecord
			if json.Unmarshal(line, &rec) != nil {
				return false
			}
			return rec.ID != "" && rec.Table != nil
		}
		wantDone := make(map[string]bool)
		wantErr := false
		validPrefix := 0
		for off := 0; off < len(data); {
			nl := bytes.IndexByte(data[off:], '\n')
			if nl < 0 {
				break // unterminated tail: truncated
			}
			line := data[off : off+nl]
			if !decode(line) {
				if off+nl+1 != len(data) {
					wantErr = true
				}
				break // final line: truncated
			}
			var rec journalRecord
			_ = json.Unmarshal(line, &rec)
			if rec.Quick == quick {
				wantDone[rec.ID] = true
			}
			off += nl + 1
			validPrefix = off
		}

		path := filepath.Join(t.TempDir(), "journal.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("seed write: %v", err)
		}

		j, err := OpenJournal(path, quick)
		if wantErr {
			if err == nil {
				_ = j.Close()
				t.Fatalf("open accepted interior corruption (valid prefix %d of %d bytes)", validPrefix, len(data))
			}
			return
		}
		if err != nil {
			t.Fatalf("open rejected a repairable journal: %v", err)
		}
		if got := j.Resumed(); got != len(wantDone) {
			t.Fatalf("resumed %d records, want %d", got, len(wantDone))
		}
		for id := range wantDone {
			if _, ok := j.Done(id); !ok {
				t.Fatalf("record %q lost on open", id)
			}
		}
		// Repair may only truncate the torn tail, never rewrite history.
		onDisk, rerr := os.ReadFile(path)
		if rerr != nil {
			t.Fatalf("reread: %v", rerr)
		}
		if len(onDisk) != validPrefix || !bytes.Equal(onDisk, data[:validPrefix]) {
			t.Fatalf("repair rewrote the file: %d bytes on disk, want the %d-byte valid prefix", len(onDisk), validPrefix)
		}

		// The repaired journal must accept a fresh record...
		newID := "fuzz-fresh"
		for i := 0; wantDone[newID]; i++ {
			newID = fmt.Sprintf("fuzz-fresh-%d", i)
		}
		tbl := &Table{ID: newID, Title: "fuzz", Header: []string{"h"}, Rows: [][]string{{"v"}}}
		if err := j.Record(RunResult{Experiment: Experiment{ID: newID, Name: "fuzz"}, Table: tbl}); err != nil {
			t.Fatalf("record after repair: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		// ...and a second open must round-trip everything: repair is
		// idempotent and the append is durable.
		j2, err := OpenJournal(path, quick)
		if err != nil {
			t.Fatalf("reopen after repair+append: %v", err)
		}
		defer func() {
			if cerr := j2.Close(); cerr != nil {
				t.Errorf("close reopened journal: %v", cerr)
			}
		}()
		if got := j2.Resumed(); got != len(wantDone)+1 {
			t.Fatalf("reopen resumed %d records, want %d", got, len(wantDone)+1)
		}
		back, ok := j2.Done(newID)
		if !ok {
			t.Fatalf("appended record %q lost across reopen", newID)
		}
		if back.String() != tbl.String() {
			t.Fatalf("appended record changed across reopen:\ngot:\n%s\nwant:\n%s", back.String(), tbl.String())
		}
		for id := range wantDone {
			if _, ok := j2.Done(id); !ok {
				t.Fatalf("record %q lost across reopen", id)
			}
		}
	})
}

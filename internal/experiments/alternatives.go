package experiments

import (
	"fmt"

	"uvmdiscard/internal/core"
	"uvmdiscard/internal/cuda"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
)

func init() {
	register(Experiment{ID: "X4", Name: "free-vs-discard", Run: runFreeVsDiscard})
}

// runFreeVsDiscard quantifies §3.1's argument: "The user program may choose
// to free and reallocate the intermediate buffer. However ... repeatedly
// freeing and reallocating them imposes other overhead beyond redundant
// memory transfers." A temporary buffer is repurposed every iteration
// under memory pressure, with four strategies:
//
//   - keep (plain UVM): the dead contents ping-pong across the bus.
//   - free+realloc: no RMTs, but every iteration pays cudaFree+cudaMalloc
//     (Table 2's costly calls) and re-zeroes fresh memory.
//   - discard (eager) and discard (lazy): no RMTs, tiny API cost.
func runFreeVsDiscard(o Options) (*Table, error) {
	gpuBlocks := 64
	tmpBlocks := 48
	iters := 24
	if o.Quick {
		gpuBlocks, tmpBlocks, iters = 16, 12, 8
	}
	t := &Table{
		ID:     "X4",
		Title:  "Extension (§3.1): strategies for repurposing a dead temporary buffer",
		Header: []string{"Strategy", "Traffic GB", "API time", "Runtime", "vs keep"},
	}
	type outcome struct {
		traffic uint64
		apiTime sim.Time
		runtime sim.Time
	}
	run := func(strategy string) (outcome, error) {
		ctx, err := cuda.NewContext(core.Config{
			GPU: gpudev.Generic(units.Size(gpuBlocks) * units.BlockSize),
		})
		if err != nil {
			return outcome{}, err
		}
		s := ctx.Stream("s")
		tmpSize := units.Size(tmpBlocks) * units.BlockSize
		// A persistent buffer applies pressure so the temporary's blocks
		// get evicted between iterations.
		hot, err := ctx.MallocManaged("hot", units.Size(gpuBlocks-tmpBlocks+4)*units.BlockSize)
		if err != nil {
			return outcome{}, err
		}
		tmp, err := ctx.MallocManaged("tmp", tmpSize)
		if err != nil {
			return outcome{}, err
		}
		for i := 0; i < iters; i++ {
			if strategy == "discard-lazy" && i > 0 {
				// The lazy flavor's mandatory pairing prefetch goes right
				// before the buffer is repurposed (§4.2/§5.2) — not right
				// after the discard, which would revive the blocks before
				// the eviction pressure could reclaim them.
				if err := s.PrefetchAll(tmp, cuda.ToGPU); err != nil {
					return outcome{}, err
				}
			}
			if err := s.Launch(cuda.Kernel{
				Name:     "use-tmp",
				Compute:  ctx.ComputeForBytes(float64(tmpSize)),
				Accesses: []cuda.Access{{Buf: tmp, Mode: core.Write}},
			}); err != nil {
				return outcome{}, err
			}
			// The temporary's contents are now dead.
			switch strategy {
			case "keep":
				// Nothing: UVM will ping-pong the dead bytes.
			case "free":
				if err := tmp.Free(); err != nil {
					return outcome{}, err
				}
				if tmp, err = ctx.MallocManaged("tmp", tmpSize); err != nil {
					return outcome{}, err
				}
			case "discard":
				if err := s.DiscardAll(tmp); err != nil {
					return outcome{}, err
				}
			case "discard-lazy":
				if err := s.DiscardLazyAll(tmp); err != nil {
					return outcome{}, err
				}
			}
			// Interleaved pressure: the hot buffer gets touched, pushing
			// the temporary's blocks toward eviction.
			if err := s.Launch(cuda.Kernel{
				Name:     "use-hot",
				Compute:  ctx.ComputeForBytes(float64(hot.Size())),
				Accesses: []cuda.Access{{Buf: hot, Mode: core.ReadWrite}},
			}); err != nil {
				return outcome{}, err
			}
		}
		ctx.DeviceSynchronize()
		m := ctx.Metrics()
		api := m.APITime("cudaFree") + m.APITime("cudaMallocManaged") +
			m.APITime("UvmDiscard") + m.APITime("UvmDiscardLazy") +
			m.APITime("cudaMemPrefetchAsync")
		return outcome{traffic: m.Traffic(), apiTime: api, runtime: ctx.Elapsed()}, nil
	}

	var keep outcome
	for _, strategy := range []string{"keep", "free", "discard", "discard-lazy"} {
		oc, err := run(strategy)
		if err != nil {
			return nil, err
		}
		rel := "-"
		if strategy == "keep" {
			keep = oc
		} else if keep.runtime > 0 {
			rel = fmt.Sprintf("%.2fx faster", float64(keep.runtime)/float64(oc.runtime))
		}
		t.AddRow(strategy, fmtGB(oc.traffic), oc.apiTime.String(), oc.runtime.String(), rel)
	}
	t.Notes = append(t.Notes,
		"free+realloc avoids the RMTs but pays allocation API costs and loses §5.7 recovery",
		"the discard directive gets the same traffic savings at a fraction of the API cost (Table 2)")
	return t, nil
}

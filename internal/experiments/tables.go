package experiments

import (
	"fmt"

	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
	"uvmdiscard/internal/workloads/fir"
	"uvmdiscard/internal/workloads/hashjoin"
	"uvmdiscard/internal/workloads/radixsort"
)

func init() {
	register(Experiment{ID: "T3", Name: "fir-runtime", Run: func(o Options) (*Table, error) {
		return runtimeTable("T3", "Normalized runtime of FIR (PCIe-3/4)", firRunner(o), paperT3)
	}})
	register(Experiment{ID: "T4", Name: "fir-traffic", Run: func(o Options) (*Table, error) {
		return trafficTable("T4", "PCIe traffic (GB) of FIR", firRunner(o), paperT4, !o.Quick)
	}})
	register(Experiment{ID: "T5", Name: "radix-runtime", Run: func(o Options) (*Table, error) {
		return runtimeTable("T5", "Normalized runtime of Radix-sort (PCIe-3/4)", radixRunner(o), paperT5)
	}})
	register(Experiment{ID: "T6", Name: "radix-traffic", Run: func(o Options) (*Table, error) {
		return trafficTable("T6", "PCIe traffic (GB) of Radix-sort", radixRunner(o), paperT6, !o.Quick)
	}})
	register(Experiment{ID: "T7", Name: "hashjoin-runtime", Run: func(o Options) (*Table, error) {
		return runtimeTable("T7", "Normalized runtime of Hash-join (PCIe-3/4)", hashRunner(o), paperT7)
	}})
	register(Experiment{ID: "T8", Name: "hashjoin-traffic", Run: func(o Options) (*Table, error) {
		return trafficTable("T8", "PCIe traffic (GB) of Hash-join", hashRunner(o), paperT8, !o.Quick)
	}})
}

// microRunner runs one micro-benchmark configuration.
type microRunner func(p workloads.Platform, sys workloads.System) (workloads.Result, error)

// Paper reference values, indexed [system][ovsp column]. Runtime entries
// are "gen3/gen4" pairs; traffic entries are GB.
var (
	paperT3 = map[workloads.System][4]string{
		workloads.UvmDiscard:     {"1/1.01", "0.51/0.52", "0.62/0.65", "0.71/0.71"},
		workloads.UvmDiscardLazy: {"1/1.00", "0.52/0.52", "0.62/0.66", "0.72/0.71"},
	}
	paperT4 = map[workloads.System][4]string{
		workloads.UVMOpt:         {"5.66", "11.44", "13.38", "14.34"},
		workloads.UvmDiscard:     {"5.66", "5.88", "7.81", "8.78"},
		workloads.UvmDiscardLazy: {"5.66", "5.88", "7.81", "8.78"},
	}
	paperT5 = map[workloads.System][4]string{
		workloads.UvmDiscard:     {"1.21/1.28", "0.87/0.83", "0.95/0.93", "0.97/0.97"},
		workloads.UvmDiscardLazy: {"1.00/1.02", "0.87/0.83", "0.95/0.92", "0.97/0.99"},
	}
	paperT6 = map[workloads.System][4]string{
		workloads.UVMOpt:         {"5.00", "300.80", "345.40", "356.85"},
		workloads.UvmDiscard:     {"5.00", "244.93", "315.50", "339.76"},
		workloads.UvmDiscardLazy: {"5.00", "244.92", "315.52", "339.76"},
	}
	paperT7 = map[workloads.System][4]string{
		workloads.UvmDiscard:     {"1.05/1.09", "0.24/0.31", "0.51/0.54", "0.86/0.89"},
		workloads.UvmDiscardLazy: {"1.02/1.04", "0.24/0.31", "0.51/0.54", "0.86/0.88"},
	}
	paperT8 = map[workloads.System][4]string{
		workloads.UVMOpt:         {"2.98", "34.62", "36.42", "58.23"},
		workloads.UvmDiscard:     {"2.98", "4.89", "16.19", "46.61"},
		workloads.UvmDiscardLazy: {"2.98", "4.89", "16.19", "46.44"},
	}
)

func firRunner(o Options) microRunner {
	cfg := fir.DefaultConfig()
	gpu := gpudev.RTX3080Ti()
	if o.Quick {
		cfg.InputBytes = 512 * units.MiB
		cfg.WindowBytes = 64 * units.MiB
		gpu = gpudev.Generic(1536 * units.MiB)
	}
	return func(p workloads.Platform, sys workloads.System) (workloads.Result, error) {
		p.GPU = gpu
		return fir.Run(o.arm(p), sys, cfg)
	}
}

func radixRunner(o Options) microRunner {
	cfg := radixsort.DefaultConfig()
	gpu := gpudev.RTX3080Ti()
	if o.Quick {
		cfg.DataBytes = 256 * units.MiB
		cfg.StripBytes = 32 * units.MiB
		gpu = gpudev.Generic(768 * units.MiB)
	}
	return func(p workloads.Platform, sys workloads.System) (workloads.Result, error) {
		p.GPU = gpu
		return radixsort.Run(o.arm(p), sys, cfg)
	}
}

func hashRunner(o Options) microRunner {
	cfg := hashjoin.DefaultConfig()
	gpu := gpudev.RTX3080Ti()
	if o.Quick {
		cfg.TableBytes = 24 * units.MiB
		cfg.IntermediateBytes = 80 * units.MiB
		cfg.WorkspaceBytes = 110 * units.MiB
		cfg.ResultBytes = 104 * units.MiB
		gpu = gpudev.Generic(600 * units.MiB)
	}
	return func(p workloads.Platform, sys workloads.System) (workloads.Result, error) {
		p.GPU = gpu
		return hashjoin.Run(o.arm(p), sys, cfg)
	}
}

var ovspColumns = []struct {
	percent int
	label   string
}{
	{0, "<100%"}, {200, "200%"}, {300, "300%"}, {400, "400%"},
}

var tableSystems = []workloads.System{
	workloads.UVMOpt, workloads.UvmDiscard, workloads.UvmDiscardLazy,
}

// runtimeTable builds a normalized-runtime table in the paper's layout:
// one row per system, one column per oversubscription ratio, each cell a
// PCIe-3/PCIe-4 pair normalized to UVM-opt at the same ratio.
func runtimeTable(id, title string, run microRunner, paper map[workloads.System][4]string) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"Ovsp. rate", "<100%", "200%", "300%", "400%"},
	}
	// results[gen][ovsp][system]
	type key struct {
		gen  pcie.Generation
		ovsp int
		sys  workloads.System
	}
	results := make(map[key]workloads.Result, 2*len(ovspColumns)*len(tableSystems))
	for _, gen := range []pcie.Generation{pcie.Gen3, pcie.Gen4} {
		for _, col := range ovspColumns {
			for _, sys := range tableSystems {
				p := workloads.Platform{Gen: gen, OversubPercent: col.percent}
				r, err := run(p, sys)
				if err != nil {
					return nil, fmt.Errorf("%s %v %v %d%%: %w", id, gen, sys, col.percent, err)
				}
				results[key{gen, col.percent, sys}] = r
			}
		}
	}
	for _, sys := range tableSystems {
		row := make([]string, 0, len(ovspColumns)+1)
		row = append(row, sys.String())
		for _, col := range ovspColumns {
			var cell [2]float64
			for i, gen := range []pcie.Generation{pcie.Gen3, pcie.Gen4} {
				base := results[key{gen, col.percent, workloads.UVMOpt}]
				r := results[key{gen, col.percent, sys}]
				cell[i] = float64(r.Runtime) / float64(base.Runtime)
			}
			row = append(row, fmtRatio(cell[0], cell[1]))
		}
		t.AddRow(row...)
		if p, ok := paper[sys]; ok {
			t.AddRow("  (paper)", p[0], p[1], p[2], p[3])
		}
	}
	return t, nil
}

// trafficTable builds a PCIe-traffic table (traffic is independent of the
// PCIe generation in the driver model; the paper reports a single value).
// When fullScale is false the absolute GB differ from the paper (sizes are
// scaled down) and a note says so.
func trafficTable(id, title string, run microRunner, paper map[workloads.System][4]string, fullScale bool) (*Table, error) {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"Ovsp. rate", "<100%", "200%", "300%", "400%"},
	}
	for _, sys := range tableSystems {
		row := []string{sys.String()}
		for _, col := range ovspColumns {
			p := workloads.Platform{Gen: pcie.Gen4, OversubPercent: col.percent}
			r, err := run(p, sys)
			if err != nil {
				return nil, fmt.Errorf("%s %v %d%%: %w", id, sys, col.percent, err)
			}
			row = append(row, fmtGB(r.TrafficBytes))
		}
		t.AddRow(row...)
		if p, ok := paper[sys]; ok {
			t.AddRow("  (paper)", p[0], p[1], p[2], p[3])
		}
	}
	if !fullScale {
		t.Notes = append(t.Notes, "quick mode: sizes scaled down; compare ratios, not absolute GB")
	}
	return t, nil
}

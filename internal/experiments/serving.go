package experiments

import (
	"fmt"

	"uvmdiscard/internal/dnn"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
)

func init() {
	register(Experiment{ID: "X2", Name: "inference-advice", Run: runInferenceAdvice})
}

// runInferenceAdvice measures large-model inference serving, where the
// model's weights exceed GPU memory. It is the natural companion to the
// paper's training results: the dominant RMT here is the driver swapping
// *unmodified weights* out D2H — NVIDIA GPUs have no per-PTE dirty bits
// (§5), so the driver cannot know the host copy is still valid. The
// cudaMemAdvise SetReadMostly hint (related to the madvise family of §8)
// keeps a valid host copy so weight evictions move nothing, and the
// discard directive kills the ping-ponging activations. The experiment
// shows the two mechanisms compose.
func runInferenceAdvice(o Options) (*Table, error) {
	gpu := gpudev.RTX3080Ti()
	model := dnn.LargeModel(18*units.GiB, 24) // ~1.6x GPU memory in weights
	batch := 64
	if o.Quick {
		gpu = gpudev.Generic(512 * units.MiB)
		model = dnn.LargeModel(768*units.MiB, 12)
		batch = 8
	}
	t := &Table{
		ID:    "X2",
		Title: fmt.Sprintf("Extension: inference serving of %s on %s", model.Name, gpu.Name),
		Header: []string{"Configuration", "Throughput", "Traffic GB",
			"H2D GB", "D2H GB", "vs baseline"},
	}
	var base workloads.Result
	for _, spec := range []struct {
		name            string
		discard, advise bool
		gpus            int
	}{
		{"plain UVM", false, false, 1},
		{"+ discard (activations)", true, false, 1},
		{"+ read-mostly (weights)", false, true, 1},
		{"+ both", true, true, 1},
		{"2-GPU pipeline (no hints)", false, false, 2},
	} {
		p := o.arm(workloads.Platform{GPU: gpu, Gen: pcie.Gen4})
		r, err := dnn.Infer(p, dnn.InferConfig{
			Model: model, Batch: batch, Requests: 4,
			Discard: spec.discard, AdviseWeights: spec.advise, GPUs: spec.gpus,
		})
		if err != nil {
			return nil, err
		}
		rel := "-"
		if spec.name == "plain UVM" {
			base = r.Result
		} else if base.Runtime > 0 {
			rel = fmt.Sprintf("%.2fx faster", float64(base.Runtime)/float64(r.Runtime))
		}
		t.AddRow(spec.name,
			fmt.Sprintf("%.0f req/s", r.Throughput),
			fmtGB(r.TrafficBytes), fmtGB(r.H2DBytes), fmtGB(r.D2HBytes), rel)
	}
	t.Notes = append(t.Notes,
		"weights exceed GPU memory: every serving pass refetches them H2D",
		"read-mostly removes the D2H weight evictions (no dirty bits on the GPU, §5); discard removes activation RMTs",
		"the 2-GPU pipeline sidesteps the problem entirely: each stage's weights fit, activations hand off peer-to-peer")
	return t, nil
}

package experiments

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func renderResults(results []RunResult) string {
	var b strings.Builder
	for _, r := range results {
		if r.Err == nil && r.Table != nil {
			b.WriteString(r.Table.String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// A journaled batch resumed after losing its process re-renders byte-
// identical output without re-running the completed experiments.
func TestJournalResumeIsByteIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.jsonl")
	selected := []Experiment{
		stubExperiment("J1", nil), stubExperiment("J2", nil), stubExperiment("J3", nil),
	}
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	first := RunAllJournaled(nil, selected, Options{}, 2, j, nil)
	j.Close()
	want := renderResults(first)

	// "Crash": reopen from disk. The resumed batch must not invoke Run at
	// all — poisoned stubs prove every result came from the journal.
	poisoned := make([]Experiment, len(selected))
	for i, e := range selected {
		id := e.ID
		poisoned[i] = stubExperiment(id, func(Options) (*Table, error) {
			t.Errorf("experiment %s re-ran despite being journaled", id)
			return nil, errors.New("re-ran")
		})
	}
	j2, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Resumed() != len(selected) {
		t.Fatalf("journal resumed %d records, want %d", j2.Resumed(), len(selected))
	}
	second := RunAllJournaled(nil, poisoned, Options{}, 2, j2, nil)
	for _, r := range second {
		if !r.Resumed || r.Err != nil {
			t.Errorf("%s: resumed=%v err=%v", r.Experiment.ID, r.Resumed, r.Err)
		}
	}
	if got := renderResults(second); got != want {
		t.Errorf("resumed output differs:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// A journal whose final record was torn by a crash mid-write loads the
// intact prefix, truncates the torn tail, and stays appendable; the torn
// experiment simply re-runs.
func TestJournalTruncatesTornTail(t *testing.T) {
	for _, tear := range []string{
		`{"id":"J2","quick":false,"table":{"ID":"J2"`, // no newline
		"{\"id\":\"J2\",\"quick\":false,\"tab\n",      // newline, garbage payload
		"garbage\n",
	} {
		path := filepath.Join(t.TempDir(), "batch.jsonl")
		j, err := OpenJournal(path, false)
		if err != nil {
			t.Fatal(err)
		}
		good := RunResult{Experiment: stubExperiment("J1", nil)}
		good.Table = &Table{ID: "J1", Title: "ok", Header: []string{"a"}, Rows: [][]string{{"1"}}}
		if err := j.Record(good); err != nil {
			t.Fatal(err)
		}
		j.Close()
		intact, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		f.WriteString(tear)
		f.Close()

		j2, err := OpenJournal(path, false)
		if err != nil {
			t.Fatalf("tear %q: %v", tear, err)
		}
		if j2.Resumed() != 1 {
			t.Fatalf("tear %q: resumed %d records, want 1", tear, j2.Resumed())
		}
		if tbl, ok := j2.Done("J1"); !ok || tbl.String() != good.Table.String() {
			t.Fatalf("tear %q: intact record lost", tear)
		}
		if _, ok := j2.Done("J2"); ok {
			t.Fatalf("tear %q: torn record resurrected", tear)
		}
		// Opening repaired the file: the torn bytes are physically gone.
		repaired, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(repaired) != string(intact) {
			t.Fatalf("tear %q: repaired file %q, want intact prefix %q", tear, repaired, intact)
		}
		// And the journal accepts new records cleanly after the repair.
		redone := RunResult{Experiment: stubExperiment("J2", nil),
			Table: &Table{ID: "J2", Title: "redo", Header: []string{"a"}}}
		if err := j2.Record(redone); err != nil {
			t.Fatal(err)
		}
		j2.Close()
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(after), string(intact)) {
			t.Fatalf("tear %q: intact prefix rewritten", tear)
		}
		j3, err := OpenJournal(path, false)
		if err != nil {
			t.Fatal(err)
		}
		if j3.Resumed() != 2 {
			t.Fatalf("tear %q: post-repair journal resumed %d, want 2", tear, j3.Resumed())
		}
		j3.Close()
	}
}

// Corruption anywhere before the final line is refused loudly — silently
// skipping a mid-file record would resurrect completed work.
func TestJournalRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.jsonl")
	content := `{"id":"J1","quick":false,"table":{"ID":"J1","Title":"t","Header":["a"]}}` + "\n" +
		"garbage\n" +
		`{"id":"J3","quick":false,"table":{"ID":"J3","Title":"t","Header":["a"]}}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, false); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

// Records from a different Quick mode are ignored: a quick smoke batch and
// a full-scale batch sharing a journal never cross-contaminate.
func TestJournalKeysOnQuickFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.jsonl")
	j, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	r := RunResult{Experiment: stubExperiment("J1", nil),
		Table: &Table{ID: "J1", Title: "quick", Header: []string{"a"}}}
	if err := j.Record(r); err != nil {
		t.Fatal(err)
	}
	j.Close()
	full, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	if full.Resumed() != 0 {
		t.Fatalf("full-scale journal resumed %d quick records", full.Resumed())
	}
}

// Failed and interrupted results are never journaled — they must re-run on
// resume rather than replay their failure.
func TestJournalSkipsFailedResults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	bad := RunResult{Experiment: stubExperiment("J1", nil), Err: errors.New("boom")}
	if err := j.Record(bad); err != nil {
		t.Fatal(err)
	}
	if j.Resumed() != 0 {
		t.Fatal("failed result was journaled")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("failed result wrote bytes: %q", data)
	}
}

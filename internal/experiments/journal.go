package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"uvmdiscard/internal/jsonl"
)

// journalRecord is one line of the batch journal: a finished experiment's
// rendered table, keyed by artifact ID and the Quick flag it ran under. The
// Table is stored losslessly (every field is exported), so a resumed batch
// re-renders the exact bytes the original run would have produced.
type journalRecord struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	Quick bool   `json:"quick"`
	Table *Table `json:"table"`
}

// Journal is an append-only, fsync-per-record JSON-lines log of completed
// experiment results, the crash-safety mechanism behind resumable batches:
// a batch killed mid-run (including kill -9) is re-submitted with the same
// journal and skips every experiment whose record reached the disk,
// producing byte-identical final output. Durability and crash repair are
// internal/jsonl's contract; this type adds the result schema and the
// quick-flag keying on top.
//
// Only successful results are journaled. An experiment that failed, was
// canceled, or hit a deadline re-runs on resume — an interrupted run is a
// fact about the interruption, not a result worth replaying.
//
// A Journal is safe for concurrent Record calls (RunAll's progress callback
// already serializes them, but the journal does not rely on that).
type Journal struct {
	mu    sync.Mutex
	ap    *jsonl.Appender
	quick bool
	done  map[string]*Table
}

// OpenJournal opens (creating if needed) the journal at path and loads the
// records previously completed under the same quick flag. A torn trailing
// line — the signature of a crash mid-write — is truncated away and the
// experiment it belonged to simply re-runs; corruption anywhere earlier is
// an error, since silently skipping a record would resurrect completed work
// and corrupt the resumed output.
func OpenJournal(path string, quick bool) (*Journal, error) {
	done := make(map[string]*Table)
	ap, err := jsonl.Open(path, func(line []byte) error {
		var rec journalRecord
		if uerr := json.Unmarshal(line, &rec); uerr != nil {
			return uerr
		}
		if rec.ID == "" || rec.Table == nil {
			return fmt.Errorf("record missing id or table")
		}
		if rec.Quick == quick {
			done[rec.ID] = rec.Table
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{ap: ap, quick: quick, done: done}, nil
}

// Resumed returns how many completed experiments the journal carried when
// it was opened (plus any recorded since), i.e. how much work a resumed
// batch skips.
func (j *Journal) Resumed() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Done returns the journaled table for an experiment ID, if present.
func (j *Journal) Done(id string) (*Table, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	t, ok := j.done[id]
	return t, ok
}

// Record appends one successful result and forces it to stable storage
// before returning — after Record returns, a kill -9 cannot lose the
// entry. Failed or interrupted results are ignored.
func (j *Journal) Record(r RunResult) error {
	if r.Err != nil || r.Table == nil {
		return nil
	}
	line, err := json.Marshal(journalRecord{
		ID:    r.Experiment.ID,
		Name:  r.Experiment.Name,
		Quick: j.quick,
		Table: r.Table,
	})
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.ap.Append(line); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.done[r.Experiment.ID] = r.Table
	return nil
}

// Close releases the journal file. Records already written remain valid.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ap.Close()
}

// RunAllJournaled is RunAll with crash-safe resume: experiments already
// completed in the journal are returned from it (marked Resumed) without
// running, and every freshly successful result is journaled — fsynced
// before the progress callback sees it — so the batch can be killed and
// resumed at any point and still render byte-identical output. Journal
// write errors surface on the matching RunResult.Err rather than silently
// degrading to a non-resumable run.
func RunAllJournaled(ctx context.Context, selected []Experiment, opts Options, parallelism int, j *Journal, progress func(RunResult)) []RunResult {
	if j == nil {
		return RunAll(ctx, selected, opts, parallelism, progress)
	}
	results := make([]RunResult, len(selected))
	var pending []Experiment
	pendingIdx := make([]int, 0, len(selected))
	for i, e := range selected {
		if tbl, ok := j.Done(e.ID); ok {
			results[i] = RunResult{Experiment: e, Index: i, Table: tbl, Resumed: true}
			continue
		}
		pending = append(pending, e)
		pendingIdx = append(pendingIdx, i)
	}
	// Replay the skipped results through the progress callback first, so a
	// caller streaming status sees every selected experiment exactly once.
	if progress != nil {
		for _, r := range results {
			if r.Resumed {
				progress(r)
			}
		}
	}
	ran := RunAll(ctx, pending, opts, parallelism, func(r RunResult) {
		if err := j.Record(r); err != nil {
			r.Err = err
			r.Table = nil
		}
		if progress != nil {
			progress(r)
		}
	})
	for k, r := range ran {
		// Journal errors reported through the callback must also land in the
		// returned slice; re-check the journal's view of the record.
		if r.Err == nil && r.Table != nil {
			if _, ok := j.Done(r.Experiment.ID); !ok {
				r.Err = fmt.Errorf("journal: result for %s was not recorded", r.Experiment.ID)
				r.Table = nil
			}
		}
		r.Index = pendingIdx[k]
		results[pendingIdx[k]] = r
	}
	return results
}

package experiments

import (
	"fmt"

	"uvmdiscard/internal/core"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
	"uvmdiscard/internal/workloads/radixsort"
)

func init() {
	register(Experiment{ID: "X1", Name: "coherent-remote", Run: runCoherentRemote})
}

// runCoherentRemote tests the paper's §3.2 argument: "a UVM system that
// supports cache-coherent remote memory accesses still needs a discard
// directive to eliminate redundant memory transfers." It runs the
// radix-sort workload at 200% oversubscription on the paper's PCIe-4
// platform and on an NVLink-class coherent link where first touches are
// served remotely and access counters migrate hot blocks — and shows that
// discard keeps eliminating a similar share of traffic in both regimes.
func runCoherentRemote(o Options) (*Table, error) {
	cfg := radixsort.DefaultConfig()
	gpu := gpudev.RTX3080Ti()
	if o.Quick {
		cfg.DataBytes = 256 * units.MiB
		cfg.StripBytes = 32 * units.MiB
		gpu = gpudev.Generic(768 * units.MiB)
	}
	t := &Table{
		ID:    "X1",
		Title: "Extension (§2.3/§3.2): coherent remote access still needs discard (Radix-sort @200%)",
		Header: []string{"Link", "System", "Traffic GB", "Remote GB", "Migrated GB",
			"Runtime", "Discard cut"},
	}
	type linkSpec struct {
		name      string
		gen       pcie.Generation
		threshold int
	}
	for _, link := range []linkSpec{
		{"PCIe-4 (migrate always)", pcie.Gen4, 0},
		{"NVLink coherent (counter=2)", pcie.GenNVLink, 2},
	} {
		var base workloads.Result
		for _, sys := range []workloads.System{workloads.UVMOpt, workloads.UvmDiscard} {
			params := core.DefaultParams()
			params.RemoteAccessMigrateThreshold = link.threshold
			p := workloads.Platform{
				GPU: gpu, Gen: link.gen, OversubPercent: 200, Params: &params,
			}
			r, err := radixsort.Run(o.arm(p), sys, cfg)
			if err != nil {
				return nil, err
			}
			cut := "-"
			if sys == workloads.UVMOpt {
				base = r
			} else if base.TrafficBytes > 0 {
				cut = fmt.Sprintf("%.0f%%", 100*(1-float64(r.TrafficBytes)/float64(base.TrafficBytes)))
			}
			remote := r.RemoteH2D
			migrated := r.TrafficBytes - remote
			t.AddRow(link.name, sys.String(), fmtGB(r.TrafficBytes), fmtGB(remote),
				fmtGB(migrated), r.Runtime.String(), cut)
		}
	}
	t.Notes = append(t.Notes,
		"remote accesses cross the link without migrating; migrations (and their RMTs) remain for hot blocks",
		"the discard cut persists on the coherent link — the paper's §3.2 argument")
	return t, nil
}

package experiments

import (
	"fmt"

	"uvmdiscard/internal/core"
	"uvmdiscard/internal/cuda"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/units"
)

func init() {
	register(Experiment{ID: "T2", Name: "api-costs", Run: runTable2})
	register(Experiment{ID: "F4", Name: "prefetch-throughput", Run: runFigure4})
}

// runTable2 reproduces Table 2: the cost of cudaMalloc, cudaFree, and
// UvmDiscard for 2/8/32/128 MB buffers. The simulator's cost curves are
// calibrated on these very measurements, so this doubles as a calibration
// check; UvmDiscardLazy (not in the paper's table) is shown for contrast.
func runTable2(Options) (*Table, error) {
	costs := core.DefaultAPICosts()
	paper := map[string][4]float64{
		"cudaMalloc": {48, 184, 726, 939},
		"cudaFree":   {32, 38, 63, 1184},
		"UvmDiscard": {4, 7, 20, 70},
	}
	sizes := []units.Size{2 * units.MiB, 8 * units.MiB, 32 * units.MiB, 128 * units.MiB}
	t := &Table{
		ID:     "T2",
		Title:  "Cost of CUDA API calls in µs",
		Header: []string{"Buffer Size", "2MB", "8MB", "32MB", "128MB", "paper"},
	}
	for _, c := range []*core.CostCurve{costs.Malloc, costs.Free, costs.Discard, costs.DiscardLazy} {
		row := []string{c.Name()}
		for _, s := range sizes {
			row = append(row, fmt.Sprintf("%.1f", c.Eval(s).Microseconds()))
		}
		if p, ok := paper[c.Name()]; ok {
			row = append(row, fmt.Sprintf("%.0f/%.0f/%.0f/%.0f", p[0], p[1], p[2], p[3]))
		} else {
			row = append(row, "-")
		}
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"curves are calibrated on the paper's measurements; UvmDiscardLazy shown for contrast")
	return t, nil
}

// runFigure4 reproduces Figure 4: cudaMemPrefetchAsync throughput versus
// transfer size on PCIe-3 and PCIe-4, measured end to end through the
// driver (allocation, host population, one prefetch).
func runFigure4(opts Options) (*Table, error) {
	sizes := []units.Size{
		4 * units.KiB, 64 * units.KiB, 256 * units.KiB, units.MiB,
		2 * units.MiB, 8 * units.MiB, 32 * units.MiB, 128 * units.MiB, 512 * units.MiB,
	}
	if opts.Quick {
		sizes = sizes[:6]
	}
	t := &Table{
		ID:     "F4",
		Title:  "cudaMemPrefetchAsync throughput vs transfer size (GB/s)",
		Header: []string{"Size", "PCIe-3", "PCIe-4", "PCIe-3 peak%", "PCIe-4 peak%"},
	}
	for _, size := range sizes {
		var tps [2]float64
		var fracs [2]float64
		for i, gen := range []pcie.Generation{pcie.Gen3, pcie.Gen4} {
			ctx, err := cuda.NewContext(core.Config{
				GPU:  gpudev.RTX3080Ti(),
				Link: pcie.Preset(gen),
			})
			if err != nil {
				return nil, err
			}
			buf, err := ctx.MallocManaged("f4", size)
			if err != nil {
				return nil, err
			}
			if err := buf.HostWrite(0, buf.Size()); err != nil {
				return nil, err
			}
			s := ctx.Stream("s")
			// Measure from issue time: the host population above already
			// advanced the clock.
			before := ctx.Clock().Now()
			if err := s.PrefetchAll(buf, cuda.ToGPU); err != nil {
				return nil, err
			}
			dur := s.Tail() - before
			tp := float64(size) / dur.Seconds()
			tps[i] = tp / 1e9
			fracs[i] = 100 * tp / ctx.Driver().Link().PeakBandwidth()
		}
		t.AddRow(units.Format(size),
			fmt.Sprintf("%.2f", tps[0]), fmt.Sprintf("%.2f", tps[1]),
			fmt.Sprintf("%.0f%%", fracs[0]), fmt.Sprintf("%.0f%%", fracs[1]))
	}
	t.Notes = append(t.Notes,
		"shape target: latency-bound at 4 KiB, saturating near 12.3 / 24.7 GB/s beyond a few MiB")
	return t, nil
}

// Package experiments regenerates every table and figure from the paper's
// evaluation (§7). Each experiment runs the relevant workloads on the
// simulated platform and renders a table with the measured values next to
// the numbers the paper reports, so the reproduction quality is visible at
// a glance. cmd/paperbench drives the full set; bench_test.go exposes one
// testing.B benchmark per experiment.
package experiments

import (
	"context"
	"encoding/csv"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"uvmdiscard/internal/checkpoint"
	"uvmdiscard/internal/runctl"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/workloads"
)

// Options tunes experiment execution.
type Options struct {
	// Quick shrinks problem sizes so the whole suite finishes in seconds
	// (used by unit tests); the full-size runs reproduce the paper's
	// magnitudes.
	Quick bool
	// Ctx, when non-nil, cancels in-flight simulations: the driver loop
	// polls it at operation boundaries and aborts the run with a structured
	// *runctl.Interrupt error. RunAll fills this in from its own context
	// when left nil.
	Ctx context.Context
	// WallBudget caps the host wall-clock time of the runs armed from these
	// options (the watchdog that kills runaway simulations); zero means no
	// wall deadline.
	WallBudget time.Duration
	// SimBudget caps each run's simulated time; zero means no budget.
	SimBudget sim.Time
	// OnControl, when non-nil, observes every run control armed from these
	// options immediately after construction. The uvmsimd service uses it
	// to track a batch job's currently active control for the progress
	// stream. arm is called from whichever worker goroutine builds the
	// platform, so the hook must be safe for concurrent use; it must not
	// call into the control beyond the documented cross-goroutine surface
	// (Progress).
	OnControl func(*runctl.Control)
	// Checkpoint, when non-nil, arms checkpoint/restore for the experiments
	// that support it (X10): the run resumes from Checkpoint.Restore when
	// present and persists snapshots through Checkpoint.Save. Experiments
	// that don't support checkpointing ignore it.
	Checkpoint *checkpoint.Env
}

// arm attaches a fresh run control to a platform when the options carry a
// cancellation or budget source; with nothing to enforce it returns p
// unchanged, so default runs take the exact code path they always did.
// Experiments call this at every Platform construction site — a control is
// single-threaded mutable state and must never be shared across concurrent
// runs, so each site gets its own.
func (o Options) arm(p workloads.Platform) workloads.Platform {
	if o.Ctx == nil && o.WallBudget <= 0 && o.SimBudget <= 0 {
		return p
	}
	p.Control = runctl.New(o.Ctx, o.WallBudget, o.SimBudget)
	if o.OnControl != nil {
		o.OnControl(p.Control)
	}
	return p
}

// Table is a rendered experiment result.
type Table struct {
	// ID is the artifact identifier: "T3" for Table 3, "F5" for Figure 5,
	// "A1" for ablations.
	ID string
	// Title describes the artifact as the paper captions it.
	Title string
	// Header labels the columns.
	Header []string
	// Rows hold the formatted cells.
	Rows [][]string
	// Notes document deviations or context.
	Notes []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header first), for
// plotting the figures externally.
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(t.Header)
	for _, r := range t.Rows {
		_ = w.Write(r)
	}
	w.Flush()
	return b.String()
}

// Experiment is one reproducible artifact.
type Experiment struct {
	// ID matches the paper artifact ("T1".."T8", "F3".."F7") or names an
	// ablation ("A1"..).
	ID string
	// Name is a short slug.
	Name string
	// Run executes the experiment.
	Run func(Options) (*Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment in artifact order (tables, figures,
// ablations).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		return artifactKey(out[i].ID) < artifactKey(out[j].ID)
	})
	return out
}

// Lookup finds an experiment by ID (case-insensitive), or by name.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[strings.ToUpper(id)]
	if ok {
		return e, true
	}
	for _, x := range registry {
		if strings.EqualFold(x.Name, id) {
			return x, true
		}
	}
	return Experiment{}, false
}

// artifactKey orders T1..T8, then F3..F7, then ablations (A*), then
// extensions (X*).
func artifactKey(id string) string {
	if len(id) < 2 {
		return "z" + id
	}
	var class string
	switch id[0] {
	case 'T':
		class = "a"
	case 'F':
		class = "b"
	case 'A':
		class = "c"
	default:
		class = "d"
	}
	return class + fmt.Sprintf("%02s", id[1:])
}

// fmtRatio renders a normalized runtime like the paper's "0.51/0.52"
// PCIe-3/PCIe-4 cells. Built with strconv to avoid fmt's float boxing —
// the runtime tables format hundreds of cells per sweep.
func fmtRatio(gen3, gen4 float64) string {
	b := make([]byte, 0, 12)
	b = strconv.AppendFloat(b, gen3, 'f', 2, 64)
	b = append(b, '/')
	b = strconv.AppendFloat(b, gen4, 'f', 2, 64)
	return string(b)
}

// fmtGB renders gigabytes with two decimals like the paper's traffic
// tables.
func fmtGB(bytes uint64) string {
	return strconv.FormatFloat(float64(bytes)/1e9, 'f', 2, 64)
}

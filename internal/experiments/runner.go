package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"uvmdiscard/internal/runctl"
)

// RunResult is the outcome of one experiment executed by RunAll.
type RunResult struct {
	// Experiment is the experiment that ran.
	Experiment Experiment
	// Index is the experiment's position in the selection passed to RunAll;
	// results are returned sorted by it, so rendering the tables in result
	// order reproduces the serial output byte for byte.
	Index int
	// Table is the rendered result; nil when Err is set.
	Table *Table
	// Err is the experiment's error, or a captured panic (with its stack).
	// A failure never aborts the other experiments.
	Err error
	// Wall is how long the experiment took on its worker goroutine; zero
	// for experiments the batch context canceled before they started.
	Wall time.Duration
	// Resumed marks a result served from a batch journal instead of being
	// re-run (see RunAllJournaled).
	Resumed bool
}

// Interrupted reports whether this result is a run the batch context or a
// budget stopped (as opposed to an experiment that genuinely failed).
func (r RunResult) Interrupted() bool {
	return runctl.AsInterrupt(r.Err) != nil || errors.Is(r.Err, context.Canceled) ||
		errors.Is(r.Err, context.DeadlineExceeded)
}

// RunAll executes the selected experiments across a pool of parallelism
// worker goroutines (values < 1 mean runtime.GOMAXPROCS(0)) and returns one
// RunResult per experiment, in selection order regardless of completion
// order.
//
// Cancellation: when ctx is canceled, dispatch stops promptly — experiments
// not yet handed to a worker are reported with a ctx-derived error and are
// never started, and runs already in flight are interrupted at the next
// driver checkpoint (opts.Ctx is filled in from ctx when nil, so the
// cancellation reaches the simulation loop itself). RunAll returns within
// roughly one in-flight driver operation of the cancel; every selected
// experiment still gets a RunResult — canceled runs are reported, never
// silently dropped. A nil ctx behaves like context.Background().
//
// Isolation rules (what makes this safe — and what any new experiment must
// preserve):
//
//   - Every Experiment.Run builds its own core.Driver, metrics.Collector,
//     trace.Recorder, and sim.RNG. Nothing run-scoped may live in a
//     package-level variable.
//   - Package-level data in this package (the registry, paper reference
//     tables, column layouts) is written only during init and treated as
//     read-only afterwards.
//   - Options is passed by value; experiments must not mutate shared
//     pointers reached through it.
//
// A panic inside an experiment is recovered and reported as that
// experiment's Err, stack attached; the remaining experiments keep running.
//
// The optional progress callback is invoked once per experiment as it
// finishes, in completion order (not selection order), serialized by an
// internal mutex so callers may print from it without further locking.
func RunAll(ctx context.Context, selected []Experiment, opts Options, parallelism int, progress func(RunResult)) []RunResult {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Ctx == nil {
		opts.Ctx = ctx
	}
	if parallelism < 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(selected) {
		parallelism = len(selected)
	}
	results := make([]RunResult, len(selected))
	if len(selected) == 0 {
		return results
	}

	var (
		wg         sync.WaitGroup
		progressMu sync.Mutex
	)
	emit := func(r RunResult) {
		results[r.Index] = r
		if progress != nil {
			progressMu.Lock()
			progress(r)
			progressMu.Unlock()
		}
	}
	jobs := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				r := runOne(selected[i], opts)
				r.Index = i
				emit(r)
			}
		}()
	}
dispatch:
	for i := range selected {
		// Checked before the select too: when the context is already dead,
		// a free worker must not win the race and start another run.
		if ctx.Err() != nil {
			for j := i; j < len(selected); j++ {
				emit(RunResult{
					Experiment: selected[j],
					Index:      j,
					Err: fmt.Errorf("experiment %s (%s) not started: %w",
						selected[j].ID, selected[j].Name, ctx.Err()),
				})
			}
			break dispatch
		}
		select {
		case <-ctx.Done():
			// Shed everything not yet started. The in-flight runs notice
			// the same cancellation through opts.Ctx and abort at their
			// next driver checkpoint.
			for j := i; j < len(selected); j++ {
				emit(RunResult{
					Experiment: selected[j],
					Index:      j,
					Err: fmt.Errorf("experiment %s (%s) not started: %w",
						selected[j].ID, selected[j].Name, ctx.Err()),
				})
			}
			break dispatch
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()
	return results
}

// runOne executes a single experiment, converting a panic into an error
// carrying the goroutine stack so one broken experiment cannot take down
// the whole run.
func runOne(e Experiment, opts Options) (r RunResult) {
	r.Experiment = e
	//uvmlint:ignore simdet -- RunResult.Wall reports host wall time, not simulated time
	started := time.Now()
	defer func() {
		//uvmlint:ignore simdet -- RunResult.Wall reports host wall time, not simulated time
		r.Wall = time.Since(started)
		if p := recover(); p != nil {
			r.Table = nil
			r.Err = fmt.Errorf("experiment %s (%s) panicked: %v\n%s", e.ID, e.Name, p, debug.Stack())
		}
	}()
	r.Table, r.Err = e.Run(opts)
	return r
}

// Failed filters the results down to those that errored (or panicked).
func Failed(results []RunResult) []RunResult {
	var out []RunResult
	for _, r := range results {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}

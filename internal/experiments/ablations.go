package experiments

import (
	"fmt"

	"uvmdiscard/internal/core"
	"uvmdiscard/internal/cuda"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
	"uvmdiscard/internal/workloads/fir"
	"uvmdiscard/internal/workloads/radixsort"
)

func init() {
	register(Experiment{ID: "A1", Name: "ablation-eviction-order", Run: runAblationEvictionOrder})
	register(Experiment{ID: "A2", Name: "ablation-immediate-reclaim", Run: runAblationImmediateReclaim})
	register(Experiment{ID: "A3", Name: "ablation-prepared-tracking", Run: runAblationPreparedTracking})
	register(Experiment{ID: "A4", Name: "ablation-partial-discard", Run: runAblationPartialDiscard})
}

// runAblationEvictionOrder varies §5.5's eviction queue priority on FIR at
// 300% oversubscription with UvmDiscard. Putting the discarded queue after
// the LRU queue makes the eviction process swap live data out while free
// discarded chunks sit idle — traffic rises toward the no-discard level.
func runAblationEvictionOrder(o Options) (*Table, error) {
	cfg := fir.DefaultConfig()
	gpu := gpudev.RTX3080Ti()
	if o.Quick {
		cfg.InputBytes = 512 * units.MiB
		cfg.WindowBytes = 64 * units.MiB
		gpu = gpudev.Generic(1536 * units.MiB)
	}
	orders := []struct {
		name  string
		order []metrics.EvictSource
	}{
		{"unused,discarded,lru (paper)", []metrics.EvictSource{metrics.EvictUnused, metrics.EvictDiscarded, metrics.EvictLRU}},
		{"discarded,unused,lru", []metrics.EvictSource{metrics.EvictDiscarded, metrics.EvictUnused, metrics.EvictLRU}},
		{"lru,unused,discarded", []metrics.EvictSource{metrics.EvictLRU, metrics.EvictUnused, metrics.EvictDiscarded}},
	}
	t := &Table{
		ID:     "A1",
		Title:  "Ablation: eviction queue priority (FIR @300%, UvmDiscard)",
		Header: []string{"Order", "Traffic GB", "Runtime", "LRU evictions", "Discarded reclaims"},
	}
	for _, spec := range orders {
		params := core.DefaultParams()
		params.EvictionOrder = spec.order
		p := workloads.Platform{GPU: gpu, OversubPercent: 300, Params: &params}
		r, err := fir.Run(o.arm(p), workloads.UvmDiscard, cfg)
		if err != nil {
			return nil, err
		}
		// Re-derive queue stats from a dedicated run with a shared
		// collector is overkill; saved counters tell the story.
		t.AddRow(spec.name, fmtGB(r.TrafficBytes), r.Runtime.String(),
			fmtGB(r.EvictD2H), fmtGB(r.SavedD2H))
	}
	t.Notes = append(t.Notes,
		"columns 4-5 are eviction D2H bytes vs transfer bytes saved by reclaiming discarded chunks")
	return t, nil
}

// runAblationImmediateReclaim compares §5.6's delayed physical reclamation
// against reclaiming at discard time, on radix-sort when everything fits:
// delayed reclamation lets re-accessed buffers recover their chunks without
// re-zeroing or re-populating.
func runAblationImmediateReclaim(o Options) (*Table, error) {
	cfg := radixsort.DefaultConfig()
	gpu := gpudev.RTX3080Ti()
	if o.Quick {
		cfg.DataBytes = 256 * units.MiB
		cfg.StripBytes = 32 * units.MiB
		gpu = gpudev.Generic(768 * units.MiB)
	}
	t := &Table{
		ID:     "A2",
		Title:  "Ablation: delayed vs immediate reclamation (Radix-sort @<100%, UvmDiscard)",
		Header: []string{"Policy", "Runtime", "Traffic GB"},
	}
	for _, spec := range []struct {
		name      string
		immediate bool
	}{
		{"delayed (paper, §5.6)", false},
		{"immediate", true},
	} {
		params := core.DefaultParams()
		params.ImmediateReclaim = spec.immediate
		p := workloads.Platform{GPU: gpu, OversubPercent: 0, Params: &params}
		r, err := radixsort.Run(o.arm(p), workloads.UvmDiscard, cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(spec.name, r.Runtime.String(), fmtGB(r.TrafficBytes))
	}
	t.Notes = append(t.Notes,
		"immediate reclamation forfeits §5.7 recovery: every re-use re-zeroes a fresh chunk")
	return t, nil
}

// runAblationPreparedTracking measures §5.7's prepared-chunk tracking with
// a driver-level micro-benchmark: N discard/re-access cycles over a
// resident buffer. Without the tracking structure every recovery
// conservatively re-zeroes the whole 2 MiB chunk.
func runAblationPreparedTracking(o Options) (*Table, error) {
	blocks := 512
	cycles := 20
	if o.Quick {
		blocks, cycles = 64, 5
	}
	t := &Table{
		ID:     "A3",
		Title:  "Ablation: prepared-chunk tracking (discard/recover cycles)",
		Header: []string{"Tracking", "Zero-fill blocks", "Cycle time"},
	}
	for _, spec := range []struct {
		name     string
		tracking bool
	}{
		{"enabled (paper, §5.7)", true},
		{"disabled", false},
	} {
		params := core.DefaultParams()
		params.PreparedTracking = spec.tracking
		ctx, err := cuda.NewContext(core.Config{
			GPU:    gpudev.Generic(units.Size(blocks+8) * units.BlockSize),
			Params: &params,
		})
		if err != nil {
			return nil, err
		}
		buf, err := ctx.MallocManaged("a3", units.Size(blocks)*units.BlockSize)
		if err != nil {
			return nil, err
		}
		s := ctx.Stream("s")
		if err := s.Launch(cuda.Kernel{Name: "touch",
			Accesses: []cuda.Access{{Buf: buf, Mode: core.Write}}}); err != nil {
			return nil, err
		}
		start := ctx.Elapsed()
		for i := 0; i < cycles; i++ {
			if err := s.DiscardAll(buf); err != nil {
				return nil, err
			}
			if err := s.PrefetchAll(buf, cuda.ToGPU); err != nil {
				return nil, err
			}
		}
		ctx.DeviceSynchronize()
		zb, _ := ctx.Metrics().ZeroFills()
		cycleTime := (ctx.Elapsed() - start) / sim.Time(cycles)
		t.AddRow(spec.name, fmt.Sprintf("%d", zb), cycleTime.String())
	}
	return t, nil
}

// runAblationPartialDiscard measures §5.4's granularity rule: discarding
// half of every 2 MiB block. The paper's driver ignores the partial
// request; the ablation splits the mapping, after which the live halves
// migrate as 4 KiB DMA operations whose cost outweighs the saved bytes.
func runAblationPartialDiscard(o Options) (*Table, error) {
	blocks := 256
	if o.Quick {
		blocks = 48
	}
	t := &Table{
		ID:     "A4",
		Title:  "Ablation: partial (sub-2MiB) discards",
		Header: []string{"Policy", "Eviction GB", "Eviction time", "Per-byte cost vs whole-block"},
	}
	for _, spec := range []struct {
		name  string
		allow bool
	}{
		{"ignore partial (paper, §5.4)", false},
		{"split blocks", true},
	} {
		params := core.DefaultParams()
		params.AllowPartialDiscard = spec.allow
		ctx, err := cuda.NewContext(core.Config{
			GPU:    gpudev.Generic(units.Size(blocks+4) * units.BlockSize),
			Params: &params,
		})
		if err != nil {
			return nil, err
		}
		buf, err := ctx.MallocManaged("a4", units.Size(blocks)*units.BlockSize)
		if err != nil {
			return nil, err
		}
		s := ctx.Stream("s")
		if err := s.Launch(cuda.Kernel{Name: "touch",
			Accesses: []cuda.Access{{Buf: buf, Mode: core.Write}}}); err != nil {
			return nil, err
		}
		// Discard the first half of every block.
		for i := 0; i < blocks; i++ {
			off := units.Size(i) * units.BlockSize
			if err := s.DiscardAsync(buf, off, units.BlockSize/2); err != nil {
				return nil, err
			}
		}
		// Force eviction of the whole buffer by allocating past capacity.
		pressure, err := ctx.MallocManaged("pressure", units.Size(blocks+3)*units.BlockSize)
		if err != nil {
			return nil, err
		}
		start := ctx.Elapsed()
		if err := s.Launch(cuda.Kernel{Name: "pressure",
			Accesses: []cuda.Access{{Buf: pressure, Mode: core.Write}}}); err != nil {
			return nil, err
		}
		ctx.DeviceSynchronize()
		evictBytes := ctx.Metrics().Bytes(metrics.D2H, metrics.CauseEviction)
		evictTime := ctx.Elapsed() - start
		perByte := "1.00x"
		if evictBytes > 0 {
			full := ctx.Driver().Link().TransferTime(uint64(units.BlockSize))
			wholeRate := float64(units.BlockSize) / full.Seconds()
			rate := float64(evictBytes) / evictTime.Seconds()
			perByte = fmt.Sprintf("%.1fx slower", wholeRate/rate)
		}
		t.AddRow(spec.name, fmtGB(evictBytes), evictTime.String(), perByte)
	}
	t.Notes = append(t.Notes,
		"splitting halves the evicted bytes but pays per-4KiB DMA latency on the live remainder")
	return t, nil
}

func init() {
	register(Experiment{ID: "A5", Name: "ablation-fault-batch", Run: runAblationFaultBatch})
}

// runAblationFaultBatch varies the driver's replayable-fault batch size on
// the fault-driven radix-sort at 200% oversubscription. Small batches pay
// the fault-service latency per block; large batches amortize it — the
// batching the real driver performs when the GPU reports faults (§2.2).
func runAblationFaultBatch(o Options) (*Table, error) {
	cfg := radixsort.DefaultConfig()
	gpu := gpudev.RTX3080Ti()
	if o.Quick {
		cfg.DataBytes = 256 * units.MiB
		cfg.StripBytes = 32 * units.MiB
		gpu = gpudev.Generic(768 * units.MiB)
	}
	t := &Table{
		ID:     "A5",
		Title:  "Ablation: fault-service batch size (Radix-sort @200%, UVM-opt)",
		Header: []string{"Batch blocks", "Runtime", "Traffic GB"},
	}
	for _, batch := range []int{1, 4, 16, 64} {
		params := core.DefaultParams()
		params.FaultBatchBlocks = batch
		p := workloads.Platform{GPU: gpu, OversubPercent: 200, Params: &params}
		r, err := radixsort.Run(o.arm(p), workloads.UVMOpt, cfg)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", batch), r.Runtime.String(), fmtGB(r.TrafficBytes))
	}
	t.Notes = append(t.Notes,
		"traffic is identical by construction; the batch size only changes fault-service time")
	return t, nil
}

package experiments

import (
	"fmt"

	"uvmdiscard/internal/dnn"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
)

func init() {
	register(Experiment{ID: "X6", Name: "data-parallel", Run: runDataParallel})
}

// runDataParallel measures synchronous data-parallel ResNet-53 training
// across 1, 2, and 4 GPUs at a fixed global batch that oversubscribes a
// single GPU. Sharding shrinks each replica's footprint: the single-GPU
// RMT problem (and discard's benefit) fades as replicas start fitting —
// while the all-reduce keeps the peer fabric busy. Discard and scale-out
// are complementary ways to spend for the same traffic problem; discard is
// free, GPUs are not.
func runDataParallel(o Options) (*Table, error) {
	model := dnn.ResNet53()
	gpu := gpudev.RTX3080Ti()
	globalBatch := 120
	if o.Quick {
		model = quickModel()
		gpu = gpudev.Generic(512 * units.MiB)
		globalBatch = 56
	}
	t := &Table{
		ID:    "X6",
		Title: fmt.Sprintf("Extension: data-parallel %s training, global batch %d", model.Name, globalBatch),
		Header: []string{"GPUs", "System", "Shard footprint", "PCIe GB",
			"Peer GB", "Throughput img/s"},
	}
	for _, gpus := range []int{1, 2, 4} {
		if globalBatch%gpus != 0 {
			continue
		}
		for _, sys := range []workloads.System{workloads.UVMOpt, workloads.UvmDiscard} {
			r, err := dnn.TrainDataParallel(gpu, pcie.Gen4, sys, dnn.DataParallelConfig{
				Model: model, GlobalBatch: globalBatch, GPUs: gpus,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%d", gpus), sys.String(),
				units.Format(r.Footprint), fmtGB(r.TrafficBytes),
				fmtGB(r.PeerBytes), fmt.Sprintf("%.1f", r.Throughput))
		}
	}
	t.Notes = append(t.Notes,
		"sharding shrinks each replica's footprint: single-GPU RMTs (and discard's benefit) fade as replicas fit",
		"the all-reduce volume is batch-independent: 2(n-1)/n of the gradients per replica per step")
	return t, nil
}

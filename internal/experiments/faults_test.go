package experiments

import (
	"strconv"
	"strings"
	"testing"

	"uvmdiscard/internal/faultinject"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
	"uvmdiscard/internal/workloads/radixsort"
)

// faultPlatform is the quick X8 "harsh" configuration: small enough for unit
// tests, hostile enough that every recovery policy (retry, reissue, replay)
// actually fires — radix-sort's fault-driven strip accesses overflow the
// 4-block buffer where a prefetch-heavy workload never would.
func faultPlatform() (workloads.Platform, radixsort.Config) {
	cfg := radixsort.DefaultConfig()
	cfg.DataBytes = 256 * units.MiB
	cfg.StripBytes = 32 * units.MiB
	return workloads.Platform{
		GPU:            gpudev.Generic(768 * units.MiB),
		OversubPercent: 200,
		Faults: &faultinject.Config{
			Seed:              13,
			DMAFailProb:       0.10,
			UnmapFailProb:     0.05,
			FaultBufferBlocks: 4,
		},
	}, cfg
}

// Retry/backoff determinism across the parallel runner: the same workload
// under the same seeded fault schedule must report byte-identical metrics
// whether experiments run serially or across 8 workers. Each run's driver
// builds a fresh Injector from the shared schedule, so worker scheduling
// cannot perturb the fault stream.
func TestFaultScheduleDeterministicAcrossRunners(t *testing.T) {
	p, cfg := faultPlatform()
	run := Experiment{ID: "XD", Name: "fault-determinism", Run: func(Options) (*Table, error) {
		r, err := radixsort.Run(p, workloads.UvmDiscard, cfg)
		if err != nil {
			return nil, err
		}
		tab := &Table{ID: "XD", Title: "determinism probe",
			Header: []string{"runtime", "traffic", "retries", "reissues", "replays", "degraded"}}
		tab.AddRow(r.Runtime.String(), fmtGB(r.TrafficBytes),
			fmtInt(r.MigrateRetries), fmtInt(r.UnmapRetries),
			fmtInt(r.FaultReplays), fmtInt(r.DegradedXfers))
		return tab, nil
	}}
	// Several copies of the same experiment, so the -j 8 pass genuinely
	// overlaps identical fault-injected runs on different workers.
	selected := []Experiment{run, run, run, run, run, run}
	serial := renderAll(t, RunAll(nil, selected, Options{}, 1, nil))
	parallel := renderAll(t, RunAll(nil, selected, Options{}, 8, nil))
	if serial != parallel {
		t.Errorf("fault-injected runs diverge across -j:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
	// Every copy must also have reported the same metrics as the first:
	// same seed + same schedule ⇒ the same fault stream, run after run.
	tables := strings.Split(serial, "XD: determinism probe")[1:]
	if len(tables) != len(selected) {
		t.Fatalf("rendered %d tables, want %d", len(tables), len(selected))
	}
	for i, tab := range tables {
		if tab != tables[0] {
			t.Errorf("run %d reported different metrics:\n%s\nvs run 0:\n%s", i, tab, tables[0])
		}
	}
}

// The harsh schedule must actually exercise the recovery paths — a schedule
// that injects nothing would make the determinism test vacuous.
func TestFaultScheduleFires(t *testing.T) {
	p, cfg := faultPlatform()
	r, err := radixsort.Run(p, workloads.UvmDiscard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.MigrateRetries == 0 {
		t.Error("harsh schedule produced no migrate retries")
	}
	if r.UnmapRetries == 0 {
		t.Error("harsh schedule produced no unmap reissues")
	}
	if r.FaultReplays == 0 {
		t.Error("harsh schedule produced no replayed fault rounds")
	}
	t.Logf("retries=%d reissues=%d replays=%d degraded=%d",
		r.MigrateRetries, r.UnmapRetries, r.FaultReplays, r.DegradedXfers)
}

// With no schedule attached the resilience counters stay zero — the fault
// machinery is invisible to fault-free baselines.
func TestNoScheduleLeavesBaselinesUntouched(t *testing.T) {
	p, cfg := faultPlatform()
	p.Faults = nil
	r, err := radixsort.Run(p, workloads.UvmDiscard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.MigrateRetries != 0 || r.UnmapRetries != 0 || r.FaultReplays != 0 ||
		r.DegradedXfers != 0 || r.PoisonedChunks != 0 {
		t.Errorf("fault-free run reported resilience activity: %+v", r)
	}
}

func fmtInt(v int64) string { return strconv.FormatInt(v, 10) }

package experiments

import (
	"fmt"
	"strconv"
	"strings"
)

// Chart renders one numeric column of the table as horizontal unicode
// bars, grouped by the leading label columns — a terminal rendition of the
// paper's figures. valueCol indexes the column to plot; width is the bar
// length of the maximum value.
func (t *Table) Chart(valueCol, width int) string {
	if valueCol <= 0 || valueCol >= len(t.Header) || width <= 0 {
		return ""
	}
	type bar struct {
		label string
		value float64
		ok    bool
	}
	var bars []bar
	maxVal := 0.0
	labelWidth := 0
	for _, row := range t.Rows {
		label := strings.Join(row[:valueCol], " ")
		// Skip paper-reference rows; they are context, not data.
		if strings.Contains(label, "(paper)") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[valueCol], "%"), 64)
		b := bar{label: label, value: v, ok: err == nil}
		if b.ok && v > maxVal {
			maxVal = v
		}
		if len(label) > labelWidth {
			labelWidth = len(label)
		}
		bars = append(bars, b)
	}
	if maxVal == 0 {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Header[valueCol])
	for _, b := range bars {
		if !b.ok {
			fmt.Fprintf(&sb, "  %-*s  %s\n", labelWidth, b.label, "-")
			continue
		}
		n := int(b.value / maxVal * float64(width))
		if n == 0 && b.value > 0 {
			n = 1
		}
		fmt.Fprintf(&sb, "  %-*s  %s %.4g\n", labelWidth, b.label,
			strings.Repeat("█", n)+strings.Repeat("░", width-n), b.value)
	}
	return sb.String()
}

// DefaultChartColumn picks which column of a figure experiment to chart:
// the first numeric column after the labels. Returns 0 when the table has
// nothing chartable.
func (t *Table) DefaultChartColumn() int {
	if len(t.Rows) == 0 {
		return 0
	}
	for col := 1; col < len(t.Header); col++ {
		numeric := 0
		for _, row := range t.Rows {
			if col >= len(row) {
				return 0
			}
			if _, err := strconv.ParseFloat(strings.TrimSuffix(row[col], "%"), 64); err == nil {
				numeric++
			}
		}
		if numeric > len(t.Rows)/2 {
			return col
		}
	}
	return 0
}

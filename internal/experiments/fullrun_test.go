package experiments

import "testing"

// TestFullRunAll executes every experiment at the paper's full problem
// sizes — the same path cmd/paperbench drives. It is the suite's heaviest
// test (a few seconds); -short skips it.
func TestFullRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale reproduction skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("empty table")
			}
			t.Log("\n" + tbl.String())
		})
	}
}

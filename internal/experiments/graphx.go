package experiments

import (
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
	"uvmdiscard/internal/workloads/graph"
)

func init() {
	register(Experiment{ID: "X7", Name: "graph-traversal", Run: runGraphTraversal})
}

// runGraphTraversal measures the out-of-core BFS workload from the paper's
// related-work family (Subway [34], Ascetic [39]): a 16 GiB edge array
// sweeps past the GPU. Plain UVM evicts the exhausted, *read-only* edge
// partitions D2H — the GPU has no dirty bits, so the driver cannot know
// the host copy is still valid. Discarding the retired partitions (app
// knowledge of deadness) and marking the edges read-mostly (no deadness
// knowledge at all) both eliminate exactly those transfers — an
// instructive equivalence on read-only data that does not hold for the
// paper's writable intermediates.
func runGraphTraversal(o Options) (*Table, error) {
	cfg := graph.DefaultConfig()
	p := workloads.DefaultPlatform()
	if o.Quick {
		cfg.EdgeBytes = 512 * units.MiB
		cfg.VertexBytes = 16 * units.MiB
		p.GPU = gpudev.Generic(384 * units.MiB)
	}
	p = o.arm(p)
	t := &Table{
		ID:    "X7",
		Title: "Extension: out-of-core graph traversal (read-only edge partitions)",
		Header: []string{"Strategy", "Traffic GB", "H2D GB", "D2H GB",
			"Saved D2H GB", "Runtime"},
	}
	for _, spec := range []struct {
		name string
		sys  workloads.System
		rm   bool
	}{
		{"plain UVM", workloads.UVMOpt, false},
		{"discard retired partitions", workloads.UvmDiscard, false},
		{"read-mostly edges", workloads.UvmDiscard, true},
	} {
		c := cfg
		c.ReadMostlyEdges = spec.rm
		r, err := graph.Run(p, spec.sys, c)
		if err != nil {
			return nil, err
		}
		t.AddRow(spec.name, fmtGB(r.TrafficBytes), fmtGB(r.H2DBytes),
			fmtGB(r.D2HBytes), fmtGB(r.SavedD2H), r.Runtime.String())
	}
	t.Notes = append(t.Notes,
		"UVM swaps exhausted read-only partitions out because the GPU has no dirty bits (§5)",
		"discard needs the app to know the partitions are dead; read-mostly removes the same transfers with placement knowledge only")
	return t, nil
}

package experiments

import (
	"fmt"

	"uvmdiscard/internal/core"
	"uvmdiscard/internal/cuda"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
)

func init() {
	register(Experiment{ID: "X3", Name: "multigpu-pipeline", Run: runMultiGPUPipeline})
}

// runMultiGPUPipeline measures a two-GPU model-parallel pipeline: stage 0
// on GPU 0 writes an activation buffer, stage 1 on GPU 1 consumes it. The
// handoff migrates over the peer fabric (§2.3's GPU-to-GPU path). Without
// discard, the *next* microbatch's overwrite on GPU 0 first migrates the
// dead activation back GPU1→GPU0 — a peer-fabric RMT, the same semantic
// gap as on PCIe (§5.1 notes mappings "may even be replicated by a
// cache-coherent peer GPU"). Discarding after consumption halves the peer
// traffic.
func runMultiGPUPipeline(o Options) (*Table, error) {
	gpuMem := units.Size(4 * units.GiB)
	actBytes := units.Size(512 * units.MiB)
	micro := 16
	if o.Quick {
		gpuMem = 64 * units.MiB
		actBytes = 16 * units.MiB
		micro = 6
	}
	t := &Table{
		ID:    "X3",
		Title: "Extension: two-GPU pipeline handoffs (peer-fabric RMTs)",
		Header: []string{"System", "Peer GB", "Peer ops", "Peer saved GB",
			"PCIe GB", "Runtime"},
	}
	for _, sys := range []workloads.System{workloads.UVMOpt, workloads.UvmDiscard, workloads.UvmDiscardLazy} {
		ctx, err := cuda.NewContext(core.Config{
			GPU:      gpudev.Generic(gpuMem),
			PeerGPUs: []gpudev.Profile{gpudev.Generic(gpuMem)},
		})
		if err != nil {
			return nil, err
		}
		act, err := ctx.MallocManaged("activation", actBytes)
		if err != nil {
			return nil, err
		}
		out, err := ctx.MallocManaged("stage1-out", actBytes/4)
		if err != nil {
			return nil, err
		}
		s := ctx.Stream("pipe")
		for mb := 0; mb < micro; mb++ {
			if sys == workloads.UvmDiscardLazy && mb > 0 {
				// The lazy flavor's mandatory pairing prefetch before the
				// buffer is repurposed on GPU 0 (§5.2).
				if err := s.PrefetchAllTo(act, 0); err != nil {
					return nil, err
				}
			}
			err := s.Launch(cuda.Kernel{
				Name: "stage0", GPU: 0,
				Compute:  ctx.ComputeForBytes(float64(2 * actBytes)),
				Accesses: []cuda.Access{{Buf: act, Mode: core.Write}},
			})
			if err != nil {
				return nil, err
			}
			err = s.Launch(cuda.Kernel{
				Name: "stage1", GPU: 1,
				Compute: ctx.ComputeForBytes(float64(2 * actBytes)),
				Accesses: []cuda.Access{
					{Buf: act, Mode: core.Read},
					{Buf: out, Mode: core.ReadWrite},
				},
			})
			if err != nil {
				return nil, err
			}
			// The handed-off activation is dead once stage 1 consumed it.
			switch sys {
			case workloads.UvmDiscard:
				if err := s.DiscardAll(act); err != nil {
					return nil, err
				}
			case workloads.UvmDiscardLazy:
				if err := s.DiscardLazyAll(act); err != nil {
					return nil, err
				}
			}
		}
		ctx.DeviceSynchronize()
		m := ctx.Metrics()
		peerBytes, peerOps := m.Peer()
		t.AddRow(sys.String(), fmtGB(peerBytes), fmt.Sprintf("%d", peerOps),
			fmtGB(m.PeerSaved()), fmtGB(m.Traffic()), ctx.Elapsed().String())
	}
	t.Notes = append(t.Notes,
		"without discard every microbatch bounces the dead activation back to GPU 0 before overwriting it",
		"with discard only the forward (useful) handoff crosses the peer fabric",
		"on a fast fabric the eager unmap can cost more than the saved transfer — the lazy flavor keeps the win")
	return t, nil
}

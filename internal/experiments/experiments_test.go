package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8",
		"F3", "F4", "F5", "F6", "F7", "A1", "A2", "A3", "A4", "A5", "X1", "X2", "X3", "X4", "X5", "X6", "X7", "X8", "X10"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %s missing", id)
		}
	}
	// Ordering: tables first, then figures, then ablations.
	order := make([]string, len(all))
	for i, e := range all {
		order[i] = e.ID
	}
	got := strings.Join(order, ",")
	if got != strings.Join(want, ",") {
		t.Errorf("order = %s", got)
	}
}

func TestLookupByNameAndCase(t *testing.T) {
	if _, ok := Lookup("t3"); !ok {
		t.Error("lowercase lookup failed")
	}
	if e, ok := Lookup("fir-runtime"); !ok || e.ID != "T3" {
		t.Error("name lookup failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("bogus lookup succeeded")
	}
}

// Every experiment must run cleanly in quick mode and produce a populated
// table.
func TestAllExperimentsQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(Options{Quick: true})
			if err != nil {
				t.Fatal(err)
			}
			if tbl.ID != e.ID {
				t.Errorf("table id %s != experiment id %s", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 || len(tbl.Header) == 0 {
				t.Error("empty table")
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Header) {
					t.Errorf("row width %d != header width %d: %v",
						len(row), len(tbl.Header), row)
				}
			}
			if !strings.Contains(tbl.String(), tbl.Title) {
				t.Error("rendered table missing title")
			}
		})
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID:     "X1",
		Title:  "demo",
		Header: []string{"a", "b"},
		Notes:  []string{"a note"},
	}
	tbl.AddRow("1", "2")
	s := tbl.String()
	for _, want := range []string{"X1: demo", "a", "1", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

// Quick-mode sanity assertions on the headline numbers.
func TestQuickHeadlines(t *testing.T) {
	t3, ok := Lookup("T3")
	if !ok {
		t.Fatal("T3 missing")
	}
	tbl, err := t3.Run(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// UVM-opt row must be all 1.00/1.00 (self-normalized).
	for _, row := range tbl.Rows {
		if row[0] == "UVM-opt" {
			for _, cell := range row[1:] {
				if cell != "1.00/1.00" {
					t.Errorf("UVM-opt cell %q, want 1.00/1.00", cell)
				}
			}
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{
		ID:     "X0",
		Title:  "demo",
		Header: []string{"a", "b"},
	}
	tbl.AddRow("1", "with,comma")
	got := tbl.CSV()
	want := "a,b\n1,\"with,comma\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

// Targeted invariants for the extension experiments in quick mode.
func TestExtensionInvariants(t *testing.T) {
	quick := Options{Quick: true}

	t.Run("X1-discard-cuts-on-both-links", func(t *testing.T) {
		tbl := mustRun(t, "X1", quick)
		// Rows: PCIe base, PCIe discard, NVLink base, NVLink discard. The
		// discard rows carry a non-"-" cut percentage.
		cuts := 0
		for _, row := range tbl.Rows {
			if row[len(row)-1] != "-" {
				cuts++
			}
		}
		if cuts != 2 {
			t.Errorf("expected a discard cut on both links, got %d", cuts)
		}
	})

	t.Run("X2-readmostly-kills-d2h", func(t *testing.T) {
		tbl := mustRun(t, "X2", quick)
		base := cellFloat(t, tbl, "plain UVM", 4)
		hinted := cellFloat(t, tbl, "+ read-mostly (weights)", 4)
		if hinted*4 > base {
			t.Errorf("read-mostly D2H %.3f not << base %.3f", hinted, base)
		}
	})

	t.Run("X3-discard-halves-peer", func(t *testing.T) {
		tbl := mustRun(t, "X3", quick)
		base := cellFloat(t, tbl, "UVM-opt", 1)
		disc := cellFloat(t, tbl, "UvmDiscard", 1)
		if disc >= base {
			t.Errorf("peer traffic not reduced: %.3f >= %.3f", disc, base)
		}
		lazy := cellFloat(t, tbl, "UvmDiscardLazy", 1)
		if lazy != disc {
			t.Errorf("lazy peer traffic %.3f != eager %.3f", lazy, disc)
		}
	})

	t.Run("X4-discard-beats-free-api-cost", func(t *testing.T) {
		tbl := mustRun(t, "X4", quick)
		// keep has the most traffic; free and discard agree on traffic.
		keep := cellFloat(t, tbl, "keep", 1)
		free := cellFloat(t, tbl, "free", 1)
		disc := cellFloat(t, tbl, "discard", 1)
		if !(disc < keep && free < keep) {
			t.Errorf("traffic ordering wrong: keep %.3f free %.3f discard %.3f",
				keep, free, disc)
		}
	})

	t.Run("X5-recompute-shrinks-footprint", func(t *testing.T) {
		tbl := mustRun(t, "X5", quick)
		// Every recompute row reports a smaller footprint than UVM-opt at
		// the same batch.
		var normal, rec string
		for _, row := range tbl.Rows {
			switch row[1] {
			case "UVM-opt":
				normal = row[2]
			case "recompute":
				rec = row[2]
				if rec == normal {
					t.Errorf("recompute footprint %s not reduced", rec)
				}
			}
		}
	})
}

func mustRun(t *testing.T, id string, o Options) *Table {
	t.Helper()
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("%s missing", id)
	}
	tbl, err := e.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func cellFloat(t *testing.T, tbl *Table, rowName string, col int) float64 {
	t.Helper()
	for _, row := range tbl.Rows {
		if row[0] == rowName {
			var v float64
			if _, err := fmt.Sscanf(row[col], "%f", &v); err != nil {
				t.Fatalf("cell %q: %v", row[col], err)
			}
			return v
		}
	}
	t.Fatalf("row %q missing", rowName)
	return 0
}

func TestChartRendering(t *testing.T) {
	tbl := &Table{
		ID:     "F9",
		Title:  "demo",
		Header: []string{"size", "GBps"},
	}
	tbl.AddRow("small", "1.0")
	tbl.AddRow("big", "10.0")
	tbl.AddRow("  (paper)", "99") // reference rows are skipped
	tbl.AddRow("broken", "oops")  // non-numeric renders as "-"
	chart := tbl.Chart(1, 10)
	if !strings.Contains(chart, "██████████ 10") {
		t.Errorf("max bar wrong:\n%s", chart)
	}
	if !strings.Contains(chart, "█░░░░░░░░░ 1") {
		t.Errorf("small bar wrong:\n%s", chart)
	}
	if strings.Contains(chart, "99") {
		t.Error("paper row charted")
	}
	if !strings.Contains(chart, "-") {
		t.Error("non-numeric row not marked")
	}
	// Bad inputs return nothing.
	if tbl.Chart(0, 10) != "" || tbl.Chart(5, 10) != "" || tbl.Chart(1, 0) != "" {
		t.Error("invalid chart params accepted")
	}
	if got := tbl.DefaultChartColumn(); got != 1 {
		t.Errorf("default column = %d", got)
	}
	empty := &Table{ID: "E", Header: []string{"a", "b"}}
	if empty.DefaultChartColumn() != 0 {
		t.Error("empty table should not be chartable")
	}
}

package experiments

import (
	"context"
	"errors"
	"testing"
	"time"
)

func stubExperiment(id string, run func(Options) (*Table, error)) Experiment {
	if run == nil {
		run = func(Options) (*Table, error) {
			return &Table{ID: id, Title: id, Header: []string{"a"}, Rows: [][]string{{id}}}, nil
		}
	}
	return Experiment{ID: id, Name: "stub-" + id, Run: run}
}

// The satellite regression: canceling a batch stops dispatch promptly — the
// batch returns within the one run already in flight, the in-flight result
// is kept, and every never-started experiment reports a structured
// ctx-derived error instead of being silently dropped.
func TestRunAllCancelReturnsWithinInFlightRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	inFlight := make(chan struct{})
	release := make(chan struct{})
	selected := []Experiment{
		stubExperiment("RUN", func(Options) (*Table, error) {
			close(inFlight) // the dispatcher handed us to a worker
			<-release       // ...and we are mid-run while the cancel lands
			return &Table{ID: "RUN", Title: "ran", Header: []string{"a"}}, nil
		}),
		stubExperiment("Q1", nil),
		stubExperiment("Q2", nil),
		stubExperiment("Q3", nil),
	}

	done := make(chan []RunResult, 1)
	go func() { done <- RunAll(ctx, selected, Options{}, 1, nil) }()
	<-inFlight
	cancel()
	close(release)

	var results []RunResult
	select {
	case results = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("RunAll did not return after cancel + in-flight completion")
	}
	if results[0].Err != nil || results[0].Table == nil {
		t.Fatalf("in-flight run was not kept: %+v", results[0])
	}
	for _, r := range results[1:] {
		if r.Err == nil {
			t.Fatalf("%s: canceled experiment has no error", r.Experiment.ID)
		}
		if !errors.Is(r.Err, context.Canceled) || !r.Interrupted() {
			t.Fatalf("%s: error %v is not ctx-derived", r.Experiment.ID, r.Err)
		}
		if r.Table != nil {
			t.Fatalf("%s: canceled experiment produced a table", r.Experiment.ID)
		}
	}
}

// A batch whose context is dead before RunAll is called starts nothing at
// all — the priority check beats any free worker to the dispatch.
func TestRunAllPreCanceledStartsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	selected := []Experiment{
		stubExperiment("A", func(Options) (*Table, error) {
			ran = true
			return nil, nil
		}),
		stubExperiment("B", nil),
	}
	var progressed int
	results := RunAll(ctx, selected, Options{}, 4, func(RunResult) { progressed++ })
	if ran {
		t.Error("pre-canceled batch still started an experiment")
	}
	if progressed != len(selected) {
		t.Errorf("progress fired %d times, want %d (canceled runs must be reported)", progressed, len(selected))
	}
	for _, r := range results {
		if !r.Interrupted() {
			t.Errorf("%s: %v is not reported as interrupted", r.Experiment.ID, r.Err)
		}
	}
}

// Deterministic partial results: a real quick experiment that completes
// before the cancel renders byte-identical output to an uncancelled run of
// the same experiment — cancellation never perturbs finished work — and the
// cancellation reaches the in-flight simulation itself through opts.Ctx,
// which aborts at a driver checkpoint with a structured interrupt.
func TestRunAllCancelKeepsDeterministicPartialResults(t *testing.T) {
	e, ok := Lookup("T4")
	if !ok {
		t.Fatal("experiment T4 missing")
	}
	opts := Options{Quick: true}
	solo := RunAll(nil, []Experiment{e}, opts, 1, nil)
	if solo[0].Err != nil {
		t.Fatalf("baseline run failed: %v", solo[0].Err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	selected := []Experiment{e, e, e}
	results := RunAll(ctx, selected, opts, 1, func(r RunResult) {
		cancel() // fires after the first completion
	})
	if results[0].Err != nil {
		t.Fatalf("first run failed: %v", results[0].Err)
	}
	if got, want := results[0].Table.String(), solo[0].Table.String(); got != want {
		t.Errorf("partial result differs from uncancelled run:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	interrupted := 0
	for _, r := range results[1:] {
		if r.Err == nil {
			t.Fatalf("%s index %d ran to completion after cancel", r.Experiment.ID, r.Index)
		}
		if r.Interrupted() {
			interrupted++
		} else {
			t.Errorf("index %d: %v is not a structured interruption", r.Index, r.Err)
		}
	}
	if interrupted != len(selected)-1 {
		t.Errorf("%d of %d post-cancel runs interrupted", interrupted, len(selected)-1)
	}
}

package experiments

import (
	"fmt"

	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
	"uvmdiscard/internal/workloads/fir"
)

func init() {
	register(Experiment{ID: "X10", Name: "checkpoint-fir", Run: runCheckpointFIR})
}

// runCheckpointFIR is the checkpoint-aware FIR run backing the
// crash-survivable service jobs: a single UvmDiscard run at 200%
// oversubscription that honors Options.Checkpoint — resuming from a prior
// snapshot when one is supplied and capturing new ones at the configured
// cadence. The rendered table carries ONLY the deterministic simulation
// result: a run resumed from any snapshot must produce the exact bytes of
// an uninterrupted run, and the fleet coordinator byte-compares duplicate
// reports, so attempt-local provenance (steps re-executed, resume point,
// capture count) deliberately stays out of the artifact. Callers read it
// from Options.Checkpoint.Stats instead; the fleet layer surfaces it
// through worker logs and the uvmfleet_checkpoint_* counters.
func runCheckpointFIR(o Options) (*Table, error) {
	cfg := fir.DefaultConfig()
	p := workloads.Platform{GPU: gpudev.RTX3080Ti(), Gen: pcie.Gen4, OversubPercent: 200}
	if o.Quick {
		// 24 windows: enough step boundaries for mid-job kills to land
		// between checkpoints while the run still finishes in well under a
		// second.
		cfg = fir.Config{InputBytes: 768 * units.MiB, WindowBytes: 32 * units.MiB, FilterRate: 28e9}
		p.GPU = gpudev.Generic(1536 * units.MiB)
	}
	p = o.arm(p)
	r, err := fir.RunCheckpointed(p, workloads.UvmDiscard, cfg, o.Checkpoint)
	if err != nil {
		return nil, err
	}
	steps := int((cfg.InputBytes + cfg.WindowBytes - 1) / cfg.WindowBytes)
	t := &Table{
		ID:     "X10",
		Title:  "Extension (robustness): checkpointed FIR @200% (resumes byte-identical mid-job)",
		Header: []string{"System", "Runtime", "Traffic GB", "Saved D2H GB", "Steps"},
	}
	t.AddRow(workloads.UvmDiscard.String(), r.Runtime.String(), fmtGB(r.TrafficBytes),
		fmtGB(r.SavedD2H), fmt.Sprintf("%d", steps))
	return t, nil
}

package experiments

import (
	"errors"
	"strings"
	"testing"
)

// renderAll concatenates the tables the way cmd/paperbench emits them.
func renderAll(t *testing.T, results []RunResult) string {
	t.Helper()
	var b strings.Builder
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s failed: %v", r.Experiment.ID, r.Err)
		}
		b.WriteString(r.Table.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// The headline concurrency claim: running the quick experiment set across 8
// workers renders byte-identical tables to the serial run, in the same
// order. Any shared mutable state between experiments would show up here as
// a diff (and as a data race under -race).
func TestRunAllDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick suite twice")
	}
	opts := Options{Quick: true}
	selected := All()
	serial := renderAll(t, RunAll(nil, selected, opts, 1, nil))
	parallel := renderAll(t, RunAll(nil, selected, opts, 8, nil))
	if serial != parallel {
		t.Errorf("-j 8 output differs from -j 1:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}

// Results come back in selection order with one progress callback per
// experiment, whatever order they finish in.
func TestRunAllOrderAndProgress(t *testing.T) {
	mk := func(id string) Experiment {
		return Experiment{ID: id, Name: "stub-" + id, Run: func(Options) (*Table, error) {
			return &Table{ID: id, Title: id, Header: []string{"a"}}, nil
		}}
	}
	selected := []Experiment{mk("S1"), mk("S2"), mk("S3"), mk("S4"), mk("S5")}
	var progressed []string
	results := RunAll(nil, selected, Options{}, 4, func(r RunResult) {
		progressed = append(progressed, r.Experiment.ID)
	})
	if len(results) != len(selected) {
		t.Fatalf("%d results, want %d", len(results), len(selected))
	}
	for i, r := range results {
		if r.Experiment.ID != selected[i].ID || r.Index != i {
			t.Errorf("result %d is %s (index %d), want %s", i, r.Experiment.ID, r.Index, selected[i].ID)
		}
		if r.Err != nil || r.Table == nil {
			t.Errorf("result %d: err=%v table=%v", i, r.Err, r.Table)
		}
	}
	if len(progressed) != len(selected) {
		t.Errorf("progress fired %d times, want %d", len(progressed), len(selected))
	}
}

// A panicking or erroring experiment is captured — stack attached — without
// killing the workers or the other experiments.
func TestRunAllCapturesPanicsAndErrors(t *testing.T) {
	boom := errors.New("boom")
	selected := []Experiment{
		{ID: "OK1", Name: "ok", Run: func(Options) (*Table, error) {
			return &Table{ID: "OK1", Title: "fine", Header: []string{"a"}}, nil
		}},
		{ID: "PAN", Name: "panics", Run: func(Options) (*Table, error) {
			panic("kaboom")
		}},
		{ID: "ERR", Name: "errors", Run: func(Options) (*Table, error) {
			return nil, boom
		}},
		{ID: "OK2", Name: "ok-too", Run: func(Options) (*Table, error) {
			return &Table{ID: "OK2", Title: "fine", Header: []string{"a"}}, nil
		}},
	}
	results := RunAll(nil, selected, Options{}, 2, nil)
	if results[0].Err != nil || results[3].Err != nil {
		t.Errorf("healthy experiments failed: %v / %v", results[0].Err, results[3].Err)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "kaboom") {
		t.Errorf("panic not captured: %v", results[1].Err)
	}
	if !strings.Contains(results[1].Err.Error(), "runner_test.go") {
		t.Errorf("captured panic lacks a stack trace: %v", results[1].Err)
	}
	if !errors.Is(results[2].Err, boom) {
		t.Errorf("error not propagated: %v", results[2].Err)
	}
	failed := Failed(results)
	if len(failed) != 2 || failed[0].Experiment.ID != "PAN" || failed[1].Experiment.ID != "ERR" {
		t.Errorf("Failed() = %v", failed)
	}
}

// Degenerate inputs: empty selection and oversized parallelism.
func TestRunAllEdgeCases(t *testing.T) {
	if got := RunAll(nil, nil, Options{}, 8, nil); len(got) != 0 {
		t.Errorf("empty selection produced %d results", len(got))
	}
	one := []Experiment{{ID: "X", Name: "x", Run: func(Options) (*Table, error) {
		return &Table{ID: "X", Title: "x", Header: []string{"a"}}, nil
	}}}
	// parallelism 0 and parallelism >> len(selected) both work.
	for _, j := range []int{0, 64} {
		results := RunAll(nil, one, Options{}, j, nil)
		if len(results) != 1 || results[0].Err != nil {
			t.Errorf("j=%d: %v", j, results)
		}
	}
}

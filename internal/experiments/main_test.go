package experiments

import (
	"os"
	"testing"

	"uvmdiscard/internal/core"
)

// TestMain turns the core runtime sanitizer on for every driver any
// experiment builds during tests. Full-scale reproduction runs issue
// hundreds of thousands of driver operations over thousands of chunks, so
// the sweep is sampled with a prime stride — corruption is still caught
// within a ~61-operation window while the suite's wall time stays flat.
func TestMain(m *testing.M) {
	core.EnableInvariantChecksForTests(61)
	os.Exit(m.Run())
}

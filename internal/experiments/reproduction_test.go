package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// This file is the reproduction-quality gate: it runs the fast full-scale
// experiments and asserts the headline numbers stay close to the paper's.
// If a refactor drifts the calibration, these tests fail rather than
// silently degrading EXPERIMENTS.md. (The DL figures are covered by their
// packages' shape tests; they are too slow to run at full scale here.)

// cell fetches table cell [rowName][col] as a float (strips "%", takes the
// PCIe-4 half of "a/b" pairs).
func cell(t *testing.T, tbl *Table, rowName string, col int) float64 {
	t.Helper()
	for _, row := range tbl.Rows {
		if row[0] != rowName {
			continue
		}
		s := row[col]
		if i := strings.IndexByte(s, '/'); i >= 0 {
			s = s[i+1:]
		}
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("cell %s[%d] = %q: %v", rowName, col, row[col], err)
		}
		return v
	}
	t.Fatalf("row %q not found", rowName)
	return 0
}

func within(t *testing.T, got, want, tolFrac float64, what string) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s = %v, want 0", what, got)
		}
		return
	}
	if got < want*(1-tolFrac) || got > want*(1+tolFrac) {
		t.Errorf("%s = %.3f, want %.3f ±%.0f%%", what, got, want, 100*tolFrac)
	}
}

func runFull(t *testing.T, id string) *Table {
	t.Helper()
	if testing.Short() {
		t.Skip("full-scale gate skipped in -short mode")
	}
	e, ok := Lookup(id)
	if !ok {
		t.Fatalf("experiment %s missing", id)
	}
	tbl, err := e.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// Table 2 must match exactly: it is the calibration source.
func TestGateTable2Exact(t *testing.T) {
	tbl := runFull(t, "T2")
	within(t, cell(t, tbl, "cudaMalloc", 4), 939, 0.001, "cudaMalloc@128MB")
	within(t, cell(t, tbl, "cudaFree", 4), 1184, 0.001, "cudaFree@128MB")
	within(t, cell(t, tbl, "UvmDiscard", 4), 70, 0.001, "UvmDiscard@128MB")
	within(t, cell(t, tbl, "UvmDiscard", 1), 4, 0.01, "UvmDiscard@2MB")
}

// Table 4: FIR traffic within 3% of the paper at every ratio.
func TestGateFIRTraffic(t *testing.T) {
	tbl := runFull(t, "T4")
	paper := map[string][4]float64{
		"UVM-opt":    {5.66, 11.44, 13.38, 14.34},
		"UvmDiscard": {5.66, 5.88, 7.81, 8.78},
	}
	for row, want := range paper {
		for col := 0; col < 4; col++ {
			within(t, cell(t, tbl, row, col+1), want[col], 0.03,
				row+" traffic col "+strconv.Itoa(col))
		}
	}
}

// Table 3: the FIR 200% headline ratio matches to two decimals; the
// benefit shrinks monotonically.
func TestGateFIRRuntime(t *testing.T) {
	tbl := runFull(t, "T3")
	within(t, cell(t, tbl, "UvmDiscard", 2), 0.52, 0.05, "FIR discard ratio @200%")
	r200 := cell(t, tbl, "UvmDiscard", 2)
	r400 := cell(t, tbl, "UvmDiscard", 4)
	if r200 >= r400 {
		// Benefit must shrink (ratio grow) toward 400%.
		t.Errorf("FIR benefit did not shrink: %.2f @200%% vs %.2f @400%%", r200, r400)
	}
}

// Table 8: hash-join required traffic is exact at <100%; at 200% the
// discard system eliminates at least 85% of the baseline's traffic
// (paper: 86%).
func TestGateHashJoin(t *testing.T) {
	tbl := runFull(t, "T8")
	within(t, cell(t, tbl, "UVM-opt", 1), 2.98, 0.02, "hash-join required traffic")
	base := cell(t, tbl, "UVM-opt", 2)
	disc := cell(t, tbl, "UvmDiscard", 2)
	if cut := 1 - disc/base; cut < 0.85 {
		t.Errorf("hash-join 200%% traffic cut = %.0f%%, want >= 85%%", 100*cut)
	}
}

// Table 7: the 4.17x headline — normalized runtime ~0.24 at 200%.
func TestGateHashJoinSpeedup(t *testing.T) {
	tbl := runFull(t, "T7")
	ratio := cell(t, tbl, "UvmDiscard", 2) // PCIe-4 half
	if ratio > 0.40 {
		t.Errorf("hash-join 200%% ratio = %.2f, want <= 0.40 (paper 0.31)", ratio)
	}
}

// Table 6: radix-sort thrashing traffic within 15% of the paper's 300 GB,
// with the discard saving in the paper's 10–25% band.
func TestGateRadixSort(t *testing.T) {
	tbl := runFull(t, "T6")
	within(t, cell(t, tbl, "UVM-opt", 1), 5.00, 0.01, "radix required traffic")
	within(t, cell(t, tbl, "UVM-opt", 2), 300.8, 0.15, "radix thrash traffic @200%")
	base := cell(t, tbl, "UVM-opt", 2)
	disc := cell(t, tbl, "UvmDiscard", 2)
	if cut := 1 - disc/base; cut < 0.10 || cut > 0.30 {
		t.Errorf("radix 200%% cut = %.0f%%, want 10-30%% (paper 19%%)", 100*cut)
	}
}

// Figure 4: the prefetch curve saturates at the measured link peaks.
func TestGatePrefetchCurve(t *testing.T) {
	tbl := runFull(t, "F4")
	last := tbl.Rows[len(tbl.Rows)-1]
	g3, _ := strconv.ParseFloat(last[1], 64)
	g4, _ := strconv.ParseFloat(last[2], 64)
	within(t, g3, 12.3, 0.02, "PCIe-3 saturation")
	within(t, g4, 24.7, 0.02, "PCIe-4 saturation")
	// 4 KiB transfers are latency-bound: < 1 GB/s.
	first := tbl.Rows[0]
	small, _ := strconv.ParseFloat(first[2], 64)
	if small > 1 {
		t.Errorf("4 KiB throughput = %.2f GB/s, want latency-bound", small)
	}
}

package experiments

import (
	"fmt"

	"uvmdiscard/internal/faultinject"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
	"uvmdiscard/internal/workloads/radixsort"
)

func init() {
	register(Experiment{ID: "X8", Name: "fault-resilience", Run: runFaultResilience})
}

// runFaultResilience runs the radix-sort workload at 200% oversubscription
// under increasingly hostile seeded fault schedules and shows two things. First,
// the recovery policies hold: every injected failure is absorbed as a retry,
// a reissued unmap, a replayed fault round, or a degradation to coherent
// host-pinned access — the workload still completes and still produces the
// discard savings. Second, discard's traffic cut survives the faults: the
// directive removes redundant transfers whether or not the transfers that
// remain need retrying.
//
// Each run constructs its own Injector from the shared schedule (a Config is
// shareable; an Injector never is), and the driver is single-threaded per
// run, so the tables are byte-identical at any runner parallelism.
func runFaultResilience(o Options) (*Table, error) {
	cfg := radixsort.DefaultConfig()
	gpu := gpudev.RTX3080Ti()
	if o.Quick {
		cfg.DataBytes = 256 * units.MiB
		cfg.StripBytes = 32 * units.MiB
		gpu = gpudev.Generic(768 * units.MiB)
	}
	t := &Table{
		ID:    "X8",
		Title: "Extension (robustness): discard savings and recovery under injected faults (Radix-sort @200%)",
		Header: []string{"Schedule", "System", "Runtime", "Traffic GB",
			"Retries", "Reissues", "Replays", "Degraded", "Discard cut"},
	}
	schedules := []struct {
		name  string
		fault *faultinject.Config
	}{
		{"fault-free", nil},
		{"moderate", &faultinject.Config{
			Seed:          11,
			DMAFailProb:   0.02,
			UnmapFailProb: 0.01,
		}},
		{"harsh", &faultinject.Config{
			Seed:              13,
			DMAFailProb:       0.10,
			UnmapFailProb:     0.05,
			FaultBufferBlocks: 4,
			Windows: []faultinject.Window{{
				Link:   faultinject.LinkPCIe,
				Start:  0,
				Dur:    20 * sim.Millisecond,
				Factor: 3,
			}},
		}},
	}
	for _, sched := range schedules {
		var base workloads.Result
		for _, sys := range []workloads.System{workloads.UVMOpt, workloads.UvmDiscard} {
			p := workloads.Platform{GPU: gpu, OversubPercent: 200, Faults: sched.fault}
			r, err := radixsort.Run(o.arm(p), sys, cfg)
			if err != nil {
				return nil, err
			}
			cut := "-"
			if sys == workloads.UVMOpt {
				base = r
			} else if base.TrafficBytes > 0 {
				cut = fmt.Sprintf("%.0f%%", 100*(1-float64(r.TrafficBytes)/float64(base.TrafficBytes)))
			}
			t.AddRow(sched.name, sys.String(), r.Runtime.String(), fmtGB(r.TrafficBytes),
				fmt.Sprint(r.MigrateRetries), fmt.Sprint(r.UnmapRetries),
				fmt.Sprint(r.FaultReplays), fmt.Sprint(r.DegradedXfers), cut)
		}
	}
	t.Notes = append(t.Notes,
		"schedules are seeded: every cell is deterministic and identical at any -j",
		"Degraded counts transfers that fell back to coherent host-pinned access after the retry budget")
	return t, nil
}

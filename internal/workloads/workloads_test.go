package workloads

import (
	"testing"

	"uvmdiscard/internal/core"
	"uvmdiscard/internal/cuda"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/units"
)

const toGPU = cuda.ToGPU

type (
	cudaBuffer = cuda.Buffer
	cudaKernel = cuda.Kernel
	cudaAccess = cuda.Access
)

func TestSystemStrings(t *testing.T) {
	names := map[System]string{
		UVMOpt:         "UVM-opt",
		UvmDiscard:     "UvmDiscard",
		UvmDiscardLazy: "UvmDiscardLazy",
		NoUVM:          "No-UVM",
		PyTorchLMS:     "PyTorch-LMS",
	}
	for sys, want := range names {
		if sys.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(sys), sys.String(), want)
		}
	}
	if System(99).String() == "" {
		t.Error("unknown system should stringify")
	}
	if !UvmDiscard.UsesDiscard() || !UvmDiscardLazy.UsesDiscard() || UVMOpt.UsesDiscard() {
		t.Error("UsesDiscard wrong")
	}
}

func TestDiscardHelpers(t *testing.T) {
	p := Platform{GPU: gpudev.Generic(16 * units.MiB), Gen: pcie.Gen4}
	ctx, err := p.NewContext(8 * units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := ctx.MallocManaged("x", 4*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	s := ctx.Stream("s")
	if err := s.Launch(mustKernel(buf)); err != nil {
		t.Fatal(err)
	}
	// UVM-opt: no-op.
	if err := Discard(UVMOpt, s, buf); err != nil {
		t.Fatal(err)
	}
	if buf.Alloc().Block(0).Discarded {
		t.Error("UVM-opt issued a discard")
	}
	// Eager flavor.
	if err := Discard(UvmDiscard, s, buf); err != nil {
		t.Fatal(err)
	}
	if !buf.Alloc().Block(0).Discarded || buf.Alloc().Block(0).LazyDiscard {
		t.Error("eager discard state wrong")
	}
	// Range helper with the lazy flavor on a fresh buffer.
	buf2, _ := ctx.MallocManaged("y", 4*units.MiB)
	if err := s.Launch(mustKernel(buf2)); err != nil {
		t.Fatal(err)
	}
	if err := DiscardRange(UvmDiscardLazy, s, buf2, 0, 2*units.MiB); err != nil {
		t.Fatal(err)
	}
	if !buf2.Alloc().Block(0).LazyDiscard {
		t.Error("lazy range discard state wrong")
	}
	if err := DiscardRange(NoUVM, s, buf2, 0, 2*units.MiB); err != nil {
		t.Fatal(err) // no-op
	}
}

func mustKernel(buf *cuda.Buffer) cuda.Kernel {
	return cudaKernel{Name: "k", Accesses: []cudaAccess{{Buf: buf, Mode: core.Write}}}
}

func TestReservationMath(t *testing.T) {
	p := Platform{GPU: gpudev.Generic(100 * units.BlockSize)}
	// Fits: no reservation, even for footprints beyond capacity (DL mode).
	for _, fp := range []units.Size{10 * units.BlockSize, 500 * units.BlockSize} {
		r, err := p.Reservation(fp)
		if err != nil || r != 0 {
			t.Errorf("fits reservation(%d) = %d, %v", fp, r, err)
		}
	}
	// 200%: available = footprint/2.
	p.OversubPercent = 200
	r, err := p.Reservation(50 * units.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if r != 75*units.BlockSize { // 100 - 25
		t.Errorf("reservation = %d blocks", r/units.BlockSize)
	}
	// Impossible: footprint/ratio exceeds the whole GPU.
	if _, err := p.Reservation(300 * units.BlockSize); err == nil {
		t.Error("impossible oversubscription accepted")
	}
	// Tiny footprint: available clamps to one block.
	r, err = p.Reservation(units.BlockSize)
	if err != nil || r != 99*units.BlockSize {
		t.Errorf("tiny reservation = %d, %v", r/units.BlockSize, err)
	}
}

func TestDefaultPlatform(t *testing.T) {
	p := DefaultPlatform()
	if p.GPU.Name != "RTX 3080 Ti" || p.Gen != pcie.Gen4 {
		t.Errorf("default platform = %+v", p)
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{TrafficBytes: 5_660_000_000}
	if r.TrafficGB() != 5.66 {
		t.Errorf("TrafficGB = %v", r.TrafficGB())
	}
}

func TestCollectSince(t *testing.T) {
	p := Platform{GPU: gpudev.Generic(16 * units.MiB), TraceRMT: true}
	ctx, err := p.NewContext(8 * units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := ctx.MallocManaged("x", 4*units.MiB)
	if err := buf.HostWrite(0, buf.Size()); err != nil {
		t.Fatal(err)
	}
	s := ctx.Stream("s")
	if err := s.PrefetchAll(buf, toGPU); err != nil {
		t.Fatal(err)
	}
	ctx.DeviceSynchronize()
	full := Collect(UVMOpt, ctx)
	if full.Trace == nil || full.Analysis == nil || full.Advice == nil {
		t.Error("tracing artifacts missing")
	}
	later := CollectSince(UVMOpt, ctx, full.Runtime/2)
	if later.Runtime >= full.Runtime {
		t.Error("CollectSince did not subtract the start time")
	}
	// A start beyond the runtime leaves it unchanged (no negative times).
	weird := CollectSince(UVMOpt, ctx, full.Runtime*10)
	if weird.Runtime != full.Runtime {
		t.Errorf("runtime = %v", weird.Runtime)
	}
}

package hashjoin

import (
	"testing"

	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
)

// smallConfig scales the paper's layout down ~10x for fast tests,
// preserving the proportions (live working sets just fit at 200%).
func smallConfig() Config {
	return Config{
		TableBytes:        24 * units.MiB,
		IntermediateBytes: 80 * units.MiB,
		WorkspaceBytes:    110 * units.MiB,
		ResultBytes:       104 * units.MiB,
		Joins:             2,
		Batches:           3,
		Rate:              60e9,
	}
}

func platform(ovsp int) workloads.Platform {
	return workloads.Platform{
		GPU:            gpudev.Generic(600 * units.MiB),
		Gen:            pcie.Gen4,
		OversubPercent: ovsp,
	}
}

func run(t *testing.T, sys workloads.System, ovsp int) workloads.Result {
	t.Helper()
	r, err := Run(platform(ovsp), sys, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFitsTrafficIsTableLoadsOnly(t *testing.T) {
	want := uint64(2 * 3 * 2 * 24 * units.MiB) // joins * batches * 2 tables
	for _, sys := range []workloads.System{workloads.UVMOpt, workloads.UvmDiscard, workloads.UvmDiscardLazy} {
		r := run(t, sys, 0)
		if r.TrafficBytes != want {
			t.Errorf("%v: traffic = %.3f GB, want %.3f GB (table loads only)",
				sys, r.TrafficGB(), float64(want)/1e9)
		}
	}
}

// Table 7's headline: the big win at 200% oversubscription — most traffic
// is dead-buffer ping-pong that discard eliminates.
func TestBigWinAt200(t *testing.T) {
	base := run(t, workloads.UVMOpt, 200)
	disc := run(t, workloads.UvmDiscard, 200)
	if disc.Runtime*2 >= base.Runtime {
		t.Errorf("expected >=2x speedup at 200%%: %v vs %v (ratio %.2f)",
			disc.Runtime, base.Runtime, float64(disc.Runtime)/float64(base.Runtime))
	}
	reduction := 1 - float64(disc.TrafficBytes)/float64(base.TrafficBytes)
	if reduction < 0.6 {
		t.Errorf("expected most transfers eliminated at 200%%, got %.0f%%", 100*reduction)
	}
	if disc.SavedD2H == 0 {
		t.Error("no saved D2H recorded")
	}
}

// The benefit shrinks as thrashing takes over (Table 7: 0.24 -> 0.51 ->
// 0.86).
func TestBenefitShrinksWithPressure(t *testing.T) {
	ratios := map[int]float64{}
	for _, ovsp := range []int{200, 300, 400} {
		base := run(t, workloads.UVMOpt, ovsp)
		disc := run(t, workloads.UvmDiscard, ovsp)
		ratios[ovsp] = float64(disc.Runtime) / float64(base.Runtime)
	}
	if !(ratios[200] < ratios[300] && ratios[300] <= ratios[400]+0.02) {
		t.Errorf("ratios should grow with pressure: %.2f %.2f %.2f",
			ratios[200], ratios[300], ratios[400])
	}
}

// Both flavors carry some overhead at <100% here because not every discard
// can be replaced by the lazy one (the workspaces have no pairing
// prefetch), but lazy still alleviates it (Table 7: 1.05 vs 1.02).
func TestLazyAlleviatesOverheadWhenFitting(t *testing.T) {
	base := run(t, workloads.UVMOpt, 0)
	eager := run(t, workloads.UvmDiscard, 0)
	lazy := run(t, workloads.UvmDiscardLazy, 0)
	if !(base.Runtime <= lazy.Runtime && lazy.Runtime < eager.Runtime) {
		t.Errorf("want base <= lazy < eager, got %v / %v / %v",
			base.Runtime, lazy.Runtime, eager.Runtime)
	}
}

func TestUnsupportedSystems(t *testing.T) {
	for _, sys := range []workloads.System{workloads.NoUVM, workloads.PyTorchLMS} {
		if _, err := Run(platform(0), sys, smallConfig()); err == nil {
			t.Errorf("%v accepted", sys)
		}
	}
}

func TestInvalidConfig(t *testing.T) {
	bad := smallConfig()
	bad.Joins = 0
	if _, err := Run(platform(0), workloads.UVMOpt, bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestFootprint(t *testing.T) {
	c := smallConfig()
	want := 2*units.Size(24*units.MiB) + 2*units.Size(80*units.MiB) +
		2*units.Size(110*units.MiB) + units.Size(104*units.MiB)
	if c.Footprint() != want {
		t.Errorf("footprint = %s, want %s", units.Format(c.Footprint()), units.Format(want))
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, workloads.UvmDiscard, 300)
	b := run(t, workloads.UvmDiscard, 300)
	if a.TrafficBytes != b.TrafficBytes || a.Runtime != b.Runtime {
		t.Error("hash join runs are not deterministic")
	}
}

// Package hashjoin models the paper's GPU database workload (§7.4): a
// hardware-conscious hash join whose memory footprint exceeds GPU memory.
// Each batch loads fresh table partitions, runs two preprocessing kernels
// that build hashed partitions into large intermediate buffers (each with
// its own workspace), and probes them to produce the joined result, which
// is consumed on the GPU. The process repeats over further batches and a
// second join, reusing the same buffers — "which simulates what happens in
// a GPU database".
//
// Almost everything this pipeline touches is dead shortly after it is
// produced: the consumed table partitions, both workspaces, both hashed
// partition buffers, and the result. Under oversubscription UVM-opt
// ping-pongs all of it — eviction swaps dead buffers out (D2H) and
// write-faults pull them back in (H2D) when the buffers are repurposed,
// because the driver cannot know the contents are dead. With discard, the
// eviction process reclaims dead chunks for free and repurposing maps
// fresh zeroed memory, so traffic collapses to the required table loads —
// the paper's largest win (4.17x speedup, 85.8% of transfers eliminated at
// 200%, Tables 7 and 8).
//
// Sizing: every kernel's live working set just fits within available
// memory at 200% oversubscription. At 300% the probe kernel's set
// (partitions + result) exceeds it, so its second scattered probe pass
// re-faults partitions evicted by the result writes — intra-kernel
// thrashing that discard cannot eliminate, which is why the systems
// converge toward 400%.
package hashjoin

import (
	"fmt"

	"uvmdiscard/internal/core"
	"uvmdiscard/internal/cuda"
	"uvmdiscard/internal/runctl"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
)

// Config sizes the workload.
type Config struct {
	// TableBytes is the size of each per-batch table partition (R and S
	// sides); fresh partitions are generated for every batch.
	TableBytes units.Size
	// IntermediateBytes is the size of each hashed-partition buffer (IR,
	// IS).
	IntermediateBytes units.Size
	// WorkspaceBytes is the size of each preprocessing kernel's
	// workspace (one per side).
	WorkspaceBytes units.Size
	// ResultBytes is the joined-output buffer, consumed on the GPU.
	ResultBytes units.Size
	// Joins is how many hash-join operations run (the paper times two).
	Joins int
	// Batches is how many table batches each join processes.
	Batches int
	// Rate is the kernels' effective processing rate (bytes/second).
	Rate float64
}

// DefaultConfig reproduces the paper's setup: ~5.9 GB footprint, ~3 GB of
// required table traffic across both joins.
func DefaultConfig() Config {
	return Config{
		TableBytes:        237 * units.MiB,
		IntermediateBytes: 800 * units.MiB,
		WorkspaceBytes:    1100 * units.MiB,
		ResultBytes:       1050 * units.MiB,
		Joins:             2,
		Batches:           3,
		Rate:              60e9,
	}
}

// Footprint is the application's GPU memory consumption.
func (c Config) Footprint() units.Size {
	al := func(n units.Size) units.Size { return units.AlignUp(n, units.BlockSize) }
	return 2*al(c.TableBytes) + 2*al(c.IntermediateBytes) + 2*al(c.WorkspaceBytes) + al(c.ResultBytes)
}

func (c Config) validate() error {
	if c.TableBytes == 0 || c.IntermediateBytes == 0 || c.WorkspaceBytes == 0 ||
		c.ResultBytes == 0 || c.Joins <= 0 || c.Batches <= 0 || c.Rate <= 0 {
		return fmt.Errorf("hashjoin: invalid config %+v", c)
	}
	return nil
}

// Run executes the hash joins under the given system and platform.
func Run(p workloads.Platform, sys workloads.System, cfg Config) (res workloads.Result, err error) {
	defer runctl.Recover(&err)
	if sys == workloads.NoUVM || sys == workloads.PyTorchLMS {
		return workloads.Result{}, fmt.Errorf("hashjoin: system %v not part of the paper's evaluation", sys)
	}
	if err := cfg.validate(); err != nil {
		return workloads.Result{}, err
	}
	ctx, err := p.NewContext(cfg.Footprint())
	if err != nil {
		return workloads.Result{}, err
	}

	type buffers struct {
		ir, is, w1, w2, out *cuda.Buffer
	}
	var bufs buffers
	for _, spec := range []struct {
		dst  **cuda.Buffer
		name string
		size units.Size
	}{
		{&bufs.ir, "parts-r", cfg.IntermediateBytes},
		{&bufs.is, "parts-s", cfg.IntermediateBytes},
		{&bufs.w1, "workspace-r", cfg.WorkspaceBytes},
		{&bufs.w2, "workspace-s", cfg.WorkspaceBytes},
		{&bufs.out, "result", cfg.ResultBytes},
	} {
		b, err := ctx.MallocManaged(spec.name, spec.size)
		if err != nil {
			return workloads.Result{}, err
		}
		*spec.dst = b
	}

	stream := ctx.Stream("main")
	var start sim.Time

	// discard issues the system's flavor; lazy only where the reuse is
	// prefetch-paired (§7.1) — the workspaces are repurposed by the next
	// batch's preprocessing kernels through faults, without a prefetch, so
	// their discards stay eager even under the lazy system.
	discard := func(b *cuda.Buffer, paired bool) error {
		switch {
		case sys == workloads.UvmDiscard:
			return stream.DiscardAll(b)
		case sys == workloads.UvmDiscardLazy && paired:
			return stream.DiscardLazyAll(b)
		case sys == workloads.UvmDiscardLazy:
			return stream.DiscardAll(b)
		default:
			return nil
		}
	}

	kernel := func(name string, accesses ...cuda.Access) error {
		var touched float64
		for _, a := range accesses {
			length := a.Length
			if length == 0 {
				length = a.Buf.Size()
			}
			passes := a.Passes
			if passes <= 0 {
				passes = 1
			}
			touched += float64(length) * float64(passes)
		}
		return stream.Launch(cuda.Kernel{
			Name:     name,
			Compute:  sim.TransferTime(uint64(touched), cfg.Rate),
			Accesses: accesses,
		})
	}

	for join := 0; join < cfg.Joins; join++ {
		for batch := 0; batch < cfg.Batches; batch++ {
			// Fresh table partitions for this batch, in fresh allocations
			// (the database hands the join new input buffers each batch;
			// they are freed once consumed).
			r, err := ctx.MallocManaged(fmt.Sprintf("table-r-%d-%d", join, batch), cfg.TableBytes)
			if err != nil {
				return workloads.Result{}, err
			}
			sTab, err := ctx.MallocManaged(fmt.Sprintf("table-s-%d-%d", join, batch), cfg.TableBytes)
			if err != nil {
				return workloads.Result{}, err
			}
			if err := r.HostWrite(0, r.Size()); err != nil {
				return workloads.Result{}, err
			}
			if err := sTab.HostWrite(0, sTab.Size()); err != nil {
				return workloads.Result{}, err
			}
			if join == 0 && batch == 0 {
				// The first batch's generation is pre-processing; later
				// batches generate mid-pipeline as a database would.
				start = ctx.Elapsed()
			}
			if err := stream.PrefetchAll(r, cuda.ToGPU); err != nil {
				return workloads.Result{}, err
			}
			if err := stream.PrefetchAll(sTab, cuda.ToGPU); err != nil {
				return workloads.Result{}, err
			}

			// Preprocess R: re-prefault the repurposed partitions (§4.2;
			// mandatory pairing for the lazy flavor), then build.
			if err := stream.PrefetchAll(bufs.ir, cuda.ToGPU); err != nil {
				return workloads.Result{}, err
			}
			err = kernel("preprocess-r",
				cuda.Access{Buf: r, Mode: core.Read},
				cuda.Access{Buf: bufs.w1, Mode: core.ReadWrite},
				cuda.Access{Buf: bufs.ir, Mode: core.Write},
			)
			if err != nil {
				return workloads.Result{}, err
			}
			// The R-side table is consumed — free it; the workspace is
			// dead until the next batch.
			if err := r.Free(); err != nil {
				return workloads.Result{}, err
			}
			if err := discard(bufs.w1, false); err != nil {
				return workloads.Result{}, err
			}

			// Preprocess S.
			if err := stream.PrefetchAll(bufs.is, cuda.ToGPU); err != nil {
				return workloads.Result{}, err
			}
			err = kernel("preprocess-s",
				cuda.Access{Buf: sTab, Mode: core.Read},
				cuda.Access{Buf: bufs.w2, Mode: core.ReadWrite},
				cuda.Access{Buf: bufs.is, Mode: core.Write},
			)
			if err != nil {
				return workloads.Result{}, err
			}
			if err := sTab.Free(); err != nil {
				return workloads.Result{}, err
			}
			if err := discard(bufs.w2, false); err != nil {
				return workloads.Result{}, err
			}

			// Probe: scattered pass over the build side, stream the probe
			// side, emit results, then a second scattered probe pass after
			// the result writes — the pass that thrashes once the probe
			// set no longer fits (>=300%).
			if err := stream.PrefetchAll(bufs.out, cuda.ToGPU); err != nil {
				return workloads.Result{}, err
			}
			err = kernel("probe-join",
				cuda.Access{Buf: bufs.ir, Mode: core.Read},
				cuda.Access{Buf: bufs.is, Mode: core.Read},
				cuda.Access{Buf: bufs.ir, Length: cfg.IntermediateBytes / 2, Mode: core.Read, Scatter: true},
				cuda.Access{Buf: bufs.out, Mode: core.Write},
			)
			if err != nil {
				return workloads.Result{}, err
			}
			// The partitions and the consumed result are dead.
			for _, b := range []*cuda.Buffer{bufs.ir, bufs.is, bufs.out} {
				if err := discard(b, true); err != nil {
					return workloads.Result{}, err
				}
			}
		}
	}
	ctx.DeviceSynchronize()
	return workloads.CollectSince(sys, ctx, start), nil
}

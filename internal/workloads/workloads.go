// Package workloads holds the shared vocabulary of the paper's evaluation
// (§7.1): the systems under test, the platform description (GPU profile,
// PCIe generation, oversubscription ratio), and the result record every
// benchmark produces. The concrete workloads live in subpackages (fir,
// radixsort, hashjoin) and in internal/dnn.
package workloads

import (
	"fmt"

	"uvmdiscard/internal/advisor"
	"uvmdiscard/internal/core"
	"uvmdiscard/internal/cuda"
	"uvmdiscard/internal/faultinject"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/runctl"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/trace"
	"uvmdiscard/internal/units"
)

// System identifies one of the evaluated memory-management systems.
type System int

const (
	// UVMOpt is the baseline: UVM with prefetching and overlap (§7.1).
	UVMOpt System = iota
	// UvmDiscard adds eager discards over UVM-opt.
	UvmDiscard
	// UvmDiscardLazy replaces prefetch-paired discards with lazy ones.
	UvmDiscardLazy
	// NoUVM is the classic explicit-buffer model (Listings 1/4); only
	// valid when everything fits on the GPU.
	NoUVM
	// PyTorchLMS is the manual per-layer swapping approach with a caching
	// allocator (Listing 5 / Table 1).
	PyTorchLMS
)

// String names the system the way the paper's tables do.
func (s System) String() string {
	switch s {
	case UVMOpt:
		return "UVM-opt"
	case UvmDiscard:
		return "UvmDiscard"
	case UvmDiscardLazy:
		return "UvmDiscardLazy"
	case NoUVM:
		return "No-UVM"
	case PyTorchLMS:
		return "PyTorch-LMS"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// UsesDiscard reports whether the system issues discard directives.
func (s System) UsesDiscard() bool { return s == UvmDiscard || s == UvmDiscardLazy }

// Discard issues the system's discard flavor over a whole buffer; a no-op
// for systems without discard. For UvmDiscardLazy the caller must pair the
// discard with a prefetch before reuse (§5.2) — the workloads do, except
// where the paper says some eager discards cannot be replaced (§7.1).
func Discard(sys System, s *cuda.Stream, b *cuda.Buffer) error {
	switch sys {
	case UvmDiscard:
		return s.DiscardAll(b)
	case UvmDiscardLazy:
		return s.DiscardLazyAll(b)
	default:
		return nil
	}
}

// DiscardRange is Discard over a sub-range.
func DiscardRange(sys System, s *cuda.Stream, b *cuda.Buffer, off, length units.Size) error {
	switch sys {
	case UvmDiscard:
		return s.DiscardAsync(b, off, length)
	case UvmDiscardLazy:
		return s.DiscardLazyAsync(b, off, length)
	default:
		return nil
	}
}

// Platform describes the hardware configuration of one experiment run.
type Platform struct {
	// GPU is the device profile (RTX 3080 Ti for §7, GTX 1070 for
	// Table 1).
	GPU gpudev.Profile
	// Gen selects PCIe 3 or 4.
	Gen pcie.Generation
	// OversubPercent is the paper's oversubscription ratio in percent:
	// values <= 100 mean the workload fits (no reservation); 200 means
	// the application's footprint is twice the available GPU memory,
	// which the platform arranges by reserving capacity (§7.1).
	OversubPercent int
	// TraceRMT enables driver-event tracing for RMT analysis.
	TraceRMT bool
	// Params overrides the driver's policy parameters (ablations); nil
	// uses core.DefaultParams.
	Params *core.Params
	// Faults attaches a fault-injection schedule (internal/faultinject):
	// every context built from the platform gets its own fresh Injector
	// from this shared schedule, preserving run isolation.
	Faults *faultinject.Config
	// Metrics, when non-nil, supplies the run's collector instead of a
	// fresh one. The uvmsimd service passes a per-job collector here so
	// its /metrics exporter can snapshot a live run's counters and
	// per-device residency while the simulation is still going. Per-run
	// isolation still holds: a Collector is mutex-safe for concurrent
	// readers, but must never be shared between two simultaneously
	// executing runs (its counters would interleave).
	Metrics *metrics.Collector
	// Control attaches a run control (internal/runctl): the driver loop
	// polls it and aborts the run with a structured *runctl.Interrupt on
	// cancellation or budget exhaustion; the workload drivers convert the
	// abort back into an ordinary error with runctl.Recover. Unlike
	// Faults, a Control is per-run mutable state: build a fresh one for
	// every run (a Platform carrying a Control must not be reused across
	// concurrent runs).
	Control *runctl.Control
}

// DefaultPlatform is the paper's primary evaluation machine: 3080 Ti on
// PCIe-4, workload fitting in memory.
func DefaultPlatform() Platform {
	return Platform{GPU: gpudev.RTX3080Ti(), Gen: pcie.Gen4, OversubPercent: 0}
}

// Reservation computes how much GPU memory must be pinned away so that an
// application footprint of appBytes oversubscribes the remainder by
// OversubPercent.
func (p Platform) Reservation(appBytes units.Size) (units.Size, error) {
	total := units.AlignDown(p.GPU.MemoryBytes, units.BlockSize)
	if p.OversubPercent <= 100 {
		// No reservation: either the workload fits, or (as in the DL
		// experiments, §7.5) it oversubscribes naturally through its own
		// footprint and UVM handles the pressure.
		return 0, nil
	}
	available := units.AlignDown(appBytes*100/units.Size(p.OversubPercent), units.BlockSize)
	if available < units.BlockSize {
		available = units.BlockSize
	}
	if available >= total {
		return 0, fmt.Errorf("workloads: footprint %s at %d%% needs %s available but GPU only has %s — cannot oversubscribe",
			units.Format(appBytes), p.OversubPercent, units.Format(available), units.Format(total))
	}
	return total - available, nil
}

// NewContext builds a CUDA context for an application with the given
// footprint on this platform.
func (p Platform) NewContext(appBytes units.Size) (*cuda.Context, error) {
	reserved, err := p.Reservation(appBytes)
	if err != nil {
		return nil, err
	}
	gen := p.Gen
	if gen == 0 {
		gen = pcie.Gen4
	}
	cfg := core.Config{
		GPU:           p.GPU,
		ReservedBytes: reserved,
		Link:          pcie.Preset(gen),
		Params:        p.Params,
		Faults:        p.Faults,
		Control:       p.Control,
		Metrics:       p.Metrics,
	}
	if p.TraceRMT {
		cfg.Trace = trace.NewRecorder()
	}
	return cuda.NewContext(cfg)
}

// Result is what every workload run reports — the quantities the paper's
// tables are built from.
type Result struct {
	System  System
	Runtime sim.Time
	// TrafficBytes is total PCIe traffic (the paper's "PCIe traffic (GB)"
	// rows).
	TrafficBytes uint64
	H2DBytes     uint64
	D2HBytes     uint64
	// SavedH2D/SavedD2H are the transfers the discard directive skipped.
	SavedH2D, SavedD2H uint64
	// FaultH2D, PrefetchH2D, EvictD2H, MigrateD2H break traffic down by
	// cause for analysis; RemoteH2D is coherent remote-access traffic;
	// PeerBytes is GPU-to-GPU fabric traffic (not part of TrafficBytes).
	FaultH2D, PrefetchH2D, EvictD2H, MigrateD2H, RemoteH2D, PeerBytes uint64
	// Analysis is the RMT classification when tracing was enabled.
	Analysis *trace.Analysis
	// Advice holds the discard advisor's recommendations when tracing was
	// enabled.
	Advice *advisor.Report
	// Trace is the raw driver trace when tracing was enabled (for JSON
	// export and offline re-analysis).
	Trace *trace.Recorder

	// Resilience counters, all zero when no fault schedule is attached:
	// retried migrations, reissued unmaps, replayed fault rounds, transfers
	// degraded to coherent host-pinned access, and quarantined chunks.
	MigrateRetries int64
	UnmapRetries   int64
	FaultReplays   int64
	DegradedXfers  int64
	DegradedBytes  uint64
	PoisonedChunks int64
	PoisonLostB    uint64
}

// TrafficGB returns traffic in decimal GB, as the paper reports it.
func (r Result) TrafficGB() float64 { return float64(r.TrafficBytes) / 1e9 }

// CollectSince is Collect with the runtime measured from a start timestamp,
// so workloads can exclude input pre-processing the way the paper's
// measurements do ("these measurements exclude the pre-processing of input
// data", §7.5).
func CollectSince(sys System, ctx *cuda.Context, start sim.Time) Result {
	r := Collect(sys, ctx)
	if r.Runtime > start {
		r.Runtime -= start
	}
	return r
}

// Collect populates a Result from a finished context.
func Collect(sys System, ctx *cuda.Context) Result {
	// Final residency-gauge publish, so every finished run's collector
	// carries its end-state per-device occupancy (live runs are refreshed
	// on a checkpoint stride by the driver itself).
	ctx.Driver().PublishResidency()
	m := ctx.Metrics()
	h2dSaved, d2hSaved := m.Saved()
	peerBytes, _ := m.Peer()
	r := Result{
		System:       sys,
		PeerBytes:    peerBytes,
		Runtime:      ctx.Elapsed(),
		TrafficBytes: m.Traffic(),
		H2DBytes:     m.TotalBytes(metrics.H2D),
		D2HBytes:     m.TotalBytes(metrics.D2H),
		SavedH2D:     h2dSaved,
		SavedD2H:     d2hSaved,
		FaultH2D:     m.Bytes(metrics.H2D, metrics.CauseFault),
		PrefetchH2D:  m.Bytes(metrics.H2D, metrics.CausePrefetch),
		EvictD2H:     m.Bytes(metrics.D2H, metrics.CauseEviction),
		RemoteH2D:    m.Bytes(metrics.H2D, metrics.CauseRemote),
		MigrateD2H:   m.Bytes(metrics.D2H, metrics.CauseFault) + m.Bytes(metrics.D2H, metrics.CausePrefetch),
	}
	r.MigrateRetries = m.MigrateRetries()
	r.UnmapRetries = m.UnmapRetries()
	r.FaultReplays = m.FaultReplays()
	r.DegradedXfers, r.DegradedBytes = m.Degraded()
	poisoned, _, lost := m.Poisoned()
	r.PoisonedChunks, r.PoisonLostB = poisoned, lost
	if tr := ctx.Driver().Trace(); tr != nil {
		a := trace.Analyze(tr)
		r.Analysis = &a
		r.Trace = tr
		space := ctx.Driver().Space()
		r.Advice = advisor.Analyze(tr, func(id int) string {
			if al := space.ByID(id); al != nil {
				return al.Name()
			}
			return ""
		})
	}
	return r
}

// Package radixsort models the paper's Radix-sort micro-benchmark (§7.3):
// a large key/value array sorted digit by digit, ping-ponging between the
// input buffer and a temporary buffer. Each round launches a local-sort
// kernel (input → temp; the input is then dead and discardable) and a
// reorder kernel (temp → input; the temp is then dead and discardable).
//
// The kernels interleave scattered reads of the source with scattered
// writes of the destination over a combined footprint of twice the data
// size, in several passes. When that footprint exceeds available GPU
// memory, every sweep misses nearly everywhere under LRU — the GPU
// *thrashing* that dominates Tables 5 and 6 and that discard cannot fix
// ("it remains difficult to solve GPU thrashing"). Discard still removes
// the inter-kernel transfers of dead ping-pong buffers.
//
// Prefetches are issued only when memory is not oversubscribed (the paper's
// "proper prefetching" policy): prefetching a working set larger than the
// GPU usually does more harm. That also means the lazy flavor can only be
// used where its mandatory pairing prefetch exists — when the data fits —
// which is exactly the §7.1 caveat.
package radixsort

import (
	"fmt"

	"uvmdiscard/internal/core"
	"uvmdiscard/internal/cuda"
	"uvmdiscard/internal/runctl"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
)

// Config sizes the benchmark.
type Config struct {
	// DataBytes is the key/value array size; the temp buffer matches it.
	// The paper's run moves 5 GB at <100%.
	DataBytes units.Size
	// Rounds is the number of radix digit rounds (4 for 32-bit keys with
	// 8-bit digits); each round runs two kernels.
	Rounds int
	// Passes is how many interleaved sweeps each kernel makes over its
	// source and destination.
	Passes int
	// StripBytes is the interleaving granularity between source reads and
	// destination writes.
	StripBytes units.Size
	// SortRate is the kernel's effective processing rate (bytes touched
	// per second) when data is local.
	SortRate float64
}

// DefaultConfig reproduces the paper's setup.
func DefaultConfig() Config {
	return Config{
		DataBytes:  5_000_000_000,
		Rounds:     4,
		Passes:     2,
		StripBytes: 256 * units.MiB,
		SortRate:   350e9,
	}
}

// Footprint is the application's GPU memory consumption: data + temp.
func (c Config) Footprint() units.Size {
	return 2 * units.AlignUp(c.DataBytes, units.BlockSize)
}

func (c Config) validate() error {
	if c.DataBytes == 0 || c.Rounds <= 0 || c.Passes <= 0 ||
		c.StripBytes == 0 || c.SortRate <= 0 {
		return fmt.Errorf("radixsort: invalid config %+v", c)
	}
	return nil
}

// Run executes the radix sort under the given system and platform.
func Run(p workloads.Platform, sys workloads.System, cfg Config) (res workloads.Result, err error) {
	defer runctl.Recover(&err)
	if sys == workloads.NoUVM || sys == workloads.PyTorchLMS {
		return workloads.Result{}, fmt.Errorf("radixsort: system %v not part of the paper's evaluation", sys)
	}
	if err := cfg.validate(); err != nil {
		return workloads.Result{}, err
	}
	ctx, err := p.NewContext(cfg.Footprint())
	if err != nil {
		return workloads.Result{}, err
	}
	fits := p.OversubPercent <= 100

	kv, err := ctx.MallocManaged("radix-kv", cfg.DataBytes)
	if err != nil {
		return workloads.Result{}, err
	}
	tmp, err := ctx.MallocManaged("radix-tmp", cfg.DataBytes)
	if err != nil {
		return workloads.Result{}, err
	}
	// Host generates the unsorted keys (pre-processing, excluded from the
	// measured runtime).
	if err := kv.HostWrite(0, kv.Size()); err != nil {
		return workloads.Result{}, err
	}
	start := ctx.Elapsed()

	s := ctx.Stream("main")
	rng := sim.NewRNG(0xadc0de)
	if fits {
		// Initial placement: pull the data in before the first kernel.
		if err := s.PrefetchAll(kv, cuda.ToGPU); err != nil {
			return workloads.Result{}, err
		}
		if err := s.PrefetchAll(tmp, cuda.ToGPU); err != nil {
			return workloads.Result{}, err
		}
	}

	// discardBuf issues the system's discard. Lazy is only usable where
	// the pairing prefetch will be issued (fits); otherwise the lazy
	// system falls back to the eager call (§7.1).
	discardBuf := func(b *cuda.Buffer) error {
		switch {
		case sys == workloads.UvmDiscard:
			return s.DiscardAll(b)
		case sys == workloads.UvmDiscardLazy && fits:
			return s.DiscardLazyAll(b)
		case sys == workloads.UvmDiscardLazy:
			return s.DiscardAll(b)
		default:
			return nil
		}
	}
	// revive re-pre-faults a previously discarded buffer before its
	// reuse — mandatory for lazy, beneficial for eager (§4.2) — but only
	// when not oversubscribed.
	revive := func(b *cuda.Buffer) error {
		if !fits {
			return nil
		}
		return s.PrefetchAll(b, cuda.ToGPU)
	}

	for round := 0; round < cfg.Rounds; round++ {
		if err := s.Launch(sortKernel(ctx, "local-sort", kv, tmp, cfg, rng)); err != nil {
			return workloads.Result{}, err
		}
		// The input is dead: its contents were partitioned into tmp.
		if err := discardBuf(kv); err != nil {
			return workloads.Result{}, err
		}
		if err := revive(kv); err != nil {
			return workloads.Result{}, err
		}
		if err := s.Launch(sortKernel(ctx, "reorder", tmp, kv, cfg, rng)); err != nil {
			return workloads.Result{}, err
		}
		// The temp partitions are dead: results went back to the input.
		if err := discardBuf(tmp); err != nil {
			return workloads.Result{}, err
		}
		if err := revive(tmp); err != nil {
			return workloads.Result{}, err
		}
	}
	ctx.DeviceSynchronize()
	return workloads.CollectSince(sys, ctx, start), nil
}

// sortKernel builds one radix kernel: interleaved scattered strips of
// source reads and destination writes, swept Passes times.
func sortKernel(ctx *cuda.Context, name string, src, dst *cuda.Buffer, cfg Config, rng *sim.RNG) cuda.Kernel {
	strips := int((cfg.DataBytes + cfg.StripBytes - 1) / cfg.StripBytes)
	var accesses []cuda.Access
	touched := 0.0
	for p := 0; p < cfg.Passes; p++ {
		srcOrder := rng.Perm(strips)
		dstOrder := rng.Perm(strips)
		for i := 0; i < strips; i++ {
			so := units.Size(srcOrder[i]) * cfg.StripBytes
			do := units.Size(dstOrder[i]) * cfg.StripBytes
			accesses = append(accesses,
				cuda.Access{Buf: src, Offset: so, Length: stripLen(cfg, so), Mode: core.Read, Scatter: true},
				cuda.Access{Buf: dst, Offset: do, Length: stripLen(cfg, do), Mode: core.ReadWrite, Scatter: true},
			)
			touched += float64(stripLen(cfg, so) + stripLen(cfg, do))
		}
	}
	return cuda.Kernel{
		Name:     name,
		Compute:  sim.TransferTime(uint64(touched), cfg.SortRate),
		Accesses: accesses,
	}
}

func stripLen(cfg Config, off units.Size) units.Size {
	if off+cfg.StripBytes > cfg.DataBytes {
		return cfg.DataBytes - off
	}
	return cfg.StripBytes
}

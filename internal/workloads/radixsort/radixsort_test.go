package radixsort

import (
	"testing"

	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
)

func smallConfig() Config {
	return Config{
		DataBytes:  256 * units.MiB,
		Rounds:     4,
		Passes:     2,
		StripBytes: 32 * units.MiB,
		SortRate:   350e9,
	}
}

func platform(ovsp int) workloads.Platform {
	return workloads.Platform{
		GPU:            gpudev.Generic(768 * units.MiB),
		Gen:            pcie.Gen4,
		OversubPercent: ovsp,
	}
}

func run(t *testing.T, sys workloads.System, ovsp int) workloads.Result {
	t.Helper()
	r, err := Run(platform(ovsp), sys, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFitsTrafficIsInputOnly(t *testing.T) {
	for _, sys := range []workloads.System{workloads.UVMOpt, workloads.UvmDiscard, workloads.UvmDiscardLazy} {
		r := run(t, sys, 0)
		if r.TrafficBytes != uint64(256*units.MiB) {
			t.Errorf("%v: traffic = %.3f GB, want input only", sys, r.TrafficGB())
		}
	}
}

// Table 5's headline at <100%: eager discard slows the sort down via
// unnecessary unmap/remap, lazy does not.
func TestEagerOverheadWhenFitting(t *testing.T) {
	base := run(t, workloads.UVMOpt, 0)
	eager := run(t, workloads.UvmDiscard, 0)
	lazy := run(t, workloads.UvmDiscardLazy, 0)
	if eager.Runtime <= base.Runtime {
		t.Errorf("eager discard should cost time when fitting: %v <= %v",
			eager.Runtime, base.Runtime)
	}
	lazyRatio := float64(lazy.Runtime) / float64(base.Runtime)
	eagerRatio := float64(eager.Runtime) / float64(base.Runtime)
	if lazyRatio >= eagerRatio {
		t.Errorf("lazy ratio %.3f should beat eager ratio %.3f", lazyRatio, eagerRatio)
	}
	if lazyRatio > 1.05 {
		t.Errorf("lazy overhead should be negligible, got %.3f", lazyRatio)
	}
}

// Thrashing dominates under oversubscription: traffic is a large multiple
// of the data size for every system, and discard's relative benefit is
// modest and shrinks with pressure (Table 5: 0.87 -> 0.95 -> 0.97).
func TestThrashingShape(t *testing.T) {
	type pair struct{ base, disc workloads.Result }
	rows := map[int]pair{}
	for _, ovsp := range []int{200, 300, 400} {
		rows[ovsp] = pair{
			base: run(t, workloads.UVMOpt, ovsp),
			disc: run(t, workloads.UvmDiscard, ovsp),
		}
	}
	data := uint64(smallConfig().DataBytes)
	for ovsp, r := range rows {
		if r.base.TrafficBytes < 10*data {
			t.Errorf("%d%%: expected heavy thrashing, traffic only %.1fx data",
				ovsp, float64(r.base.TrafficBytes)/float64(data))
		}
		if r.disc.TrafficBytes >= r.base.TrafficBytes {
			t.Errorf("%d%%: discard did not reduce traffic", ovsp)
		}
		ratio := float64(r.disc.Runtime) / float64(r.base.Runtime)
		if ratio < 0.5 || ratio >= 1.0 {
			t.Errorf("%d%%: discard benefit should be modest, ratio %.2f", ovsp, ratio)
		}
	}
	// The benefit shrinks (or at least does not grow materially) with
	// pressure; small-scale runs are noisy, so allow 2% slack.
	ratio := func(p pair) float64 { return float64(p.disc.Runtime) / float64(p.base.Runtime) }
	if ratio(rows[200]) > ratio(rows[400])+0.02 {
		t.Errorf("benefit should shrink with pressure: %.2f (200%%) vs %.2f (400%%)",
			ratio(rows[200]), ratio(rows[400]))
	}
}

// Under oversubscription the lazy system cannot use its pairing prefetch,
// so it falls back to eager discards and matches them exactly (§7.1).
func TestLazyFallsBackToEagerWhenOversubscribed(t *testing.T) {
	eager := run(t, workloads.UvmDiscard, 200)
	lazy := run(t, workloads.UvmDiscardLazy, 200)
	if eager.TrafficBytes != lazy.TrafficBytes || eager.Runtime != lazy.Runtime {
		t.Errorf("lazy should equal eager when oversubscribed: %.2f/%v vs %.2f/%v",
			eager.TrafficGB(), eager.Runtime, lazy.TrafficGB(), lazy.Runtime)
	}
}

func TestUnsupportedSystems(t *testing.T) {
	for _, sys := range []workloads.System{workloads.NoUVM, workloads.PyTorchLMS} {
		if _, err := Run(platform(0), sys, smallConfig()); err == nil {
			t.Errorf("%v accepted", sys)
		}
	}
}

func TestInvalidConfig(t *testing.T) {
	bad := smallConfig()
	bad.Rounds = 0
	if _, err := Run(platform(0), workloads.UVMOpt, bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, workloads.UVMOpt, 200)
	b := run(t, workloads.UVMOpt, 200)
	if a.TrafficBytes != b.TrafficBytes || a.Runtime != b.Runtime {
		t.Error("radix sort runs are not deterministic")
	}
}

// Package graph models out-of-GPU-memory graph traversal — the workload
// family of the paper's related work ([34] Subway, [39] Ascetic): a BFS
// over a CSR graph whose edge array exceeds GPU memory.
//
// Each level's kernel touches the edge partitions of the active frontier
// (a level-dependent subset of the edge blocks) plus the small frontier
// and visited buffers. Two kinds of application knowledge map onto the
// driver directives:
//
//   - The consumed frontier buffer is dead after every level — a discard
//     target exactly like the paper's intermediate buffers.
//   - Edge partitions are *read-only*, and once their source vertices are
//     exhausted they are never touched again. UVM still swaps them out
//     D2H under pressure (the GPU has no dirty bits, so the driver cannot
//     know the host copy is still valid); either discarding the retired
//     partitions (app knowledge of deadness) or marking the edges
//     read-mostly (no deadness knowledge needed) eliminates those
//     transfers — an instructive equivalence on read-only data.
package graph

import (
	"fmt"

	"uvmdiscard/internal/core"
	"uvmdiscard/internal/cuda"
	"uvmdiscard/internal/runctl"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
)

// Config sizes the traversal.
type Config struct {
	// EdgeBytes is the CSR edge array size (the out-of-core part).
	EdgeBytes units.Size
	// VertexBytes sizes the offsets/visited/frontier buffers (each).
	VertexBytes units.Size
	// LevelFractions is the fraction of edge blocks each BFS level
	// touches — the frontier's expansion and decay. Defaults to a
	// typical small-world profile.
	LevelFractions []float64
	// ScanRate is the kernel's edge-processing rate (bytes/second).
	ScanRate float64
	// ReadMostlyEdges applies the SetReadMostly hint to the edge array
	// instead of relying on discard for retired partitions.
	ReadMostlyEdges bool
}

// DefaultConfig streams a 16 GiB edge array past the 3080 Ti's ~11.8 GB:
// the frontier sweeps through roughly the whole graph once, and the
// exhausted partitions behind it become eviction victims.
func DefaultConfig() Config {
	return Config{
		EdgeBytes:   16 * units.GiB,
		VertexBytes: 256 * units.MiB,
		LevelFractions: []float64{
			0.002, 0.02, 0.10, 0.25, 0.30, 0.20, 0.08, 0.03, 0.01,
		},
		ScanRate: 120e9,
	}
}

// Footprint is the application's GPU memory consumption.
func (c Config) Footprint() units.Size {
	al := func(n units.Size) units.Size { return units.AlignUp(n, units.BlockSize) }
	return al(c.EdgeBytes) + 4*al(c.VertexBytes)
}

func (c Config) validate() error {
	if c.EdgeBytes == 0 || c.VertexBytes == 0 || len(c.LevelFractions) == 0 || c.ScanRate <= 0 {
		return fmt.Errorf("graph: invalid config %+v", c)
	}
	for _, f := range c.LevelFractions {
		if f < 0 || f > 1 {
			return fmt.Errorf("graph: level fraction %v out of range", f)
		}
	}
	return nil
}

// Run executes the traversal under the given system.
func Run(p workloads.Platform, sys workloads.System, cfg Config) (res workloads.Result, err error) {
	defer runctl.Recover(&err)
	if sys == workloads.NoUVM || sys == workloads.PyTorchLMS {
		return workloads.Result{}, fmt.Errorf("graph: system %v not supported", sys)
	}
	if err := cfg.validate(); err != nil {
		return workloads.Result{}, err
	}
	ctx, err := p.NewContext(cfg.Footprint())
	if err != nil {
		return workloads.Result{}, err
	}

	edges, err := ctx.MallocManaged("edges", cfg.EdgeBytes)
	if err != nil {
		return workloads.Result{}, err
	}
	offsets, err := ctx.MallocManaged("offsets", cfg.VertexBytes)
	if err != nil {
		return workloads.Result{}, err
	}
	visited, err := ctx.MallocManaged("visited", cfg.VertexBytes)
	if err != nil {
		return workloads.Result{}, err
	}
	frontierA, err := ctx.MallocManaged("frontier-a", cfg.VertexBytes)
	if err != nil {
		return workloads.Result{}, err
	}
	frontierB, err := ctx.MallocManaged("frontier-b", cfg.VertexBytes)
	if err != nil {
		return workloads.Result{}, err
	}

	// The host loads the graph (pre-processing, excluded from runtime).
	if err := edges.HostWrite(0, edges.Size()); err != nil {
		return workloads.Result{}, err
	}
	if err := offsets.HostWrite(0, offsets.Size()); err != nil {
		return workloads.Result{}, err
	}
	start := ctx.Elapsed()

	s := ctx.Stream("bfs")
	if cfg.ReadMostlyEdges && sys != workloads.UVMOpt {
		if err := s.MemAdviseAll(edges, core.AdviseSetReadMostly); err != nil {
			return workloads.Result{}, err
		}
	}

	// The frontier sweeps through the edge partitions: each level touches
	// the next window of blocks (a Subway-style vertex-grouped layout
	// keeps the active set contiguous), and the window behind it — the
	// edges of exhausted vertices — is never touched again.
	edgeBlocks := units.BlocksIn(cfg.EdgeBytes)
	touchedBlocks := func(f float64) int {
		n := int(f * float64(edgeBlocks))
		if n < 1 {
			n = 1
		}
		return n
	}

	cur, next := frontierA, frontierB
	startBlock := 0
	for level, f := range cfg.LevelFractions {
		n := touchedBlocks(f)
		if startBlock+n > edgeBlocks {
			n = edgeBlocks - startBlock
		}
		if n <= 0 {
			break
		}
		offset := units.Size(startBlock) * units.BlockSize
		err := s.Launch(cuda.Kernel{
			Name:    fmt.Sprintf("bfs-level-%d", level),
			Compute: sim.TransferTime(uint64(n)*uint64(units.BlockSize), cfg.ScanRate),
			Accesses: []cuda.Access{
				{Buf: cur, Mode: core.Read},
				{Buf: offsets, Mode: core.Read},
				{Buf: edges, Offset: offset, Length: units.Size(n) * units.BlockSize,
					Mode: core.Read, Scatter: true},
				{Buf: visited, Mode: core.ReadWrite},
				{Buf: next, Mode: core.Write},
			},
		})
		if err != nil {
			return workloads.Result{}, err
		}
		// The consumed frontier is dead.
		if err := workloads.Discard(sys, s, cur); err != nil {
			return workloads.Result{}, err
		}
		// The window just consumed is retired: its vertices are exhausted
		// and their edges will never be read again. The discard system
		// states that explicitly; the read-mostly variant needs no such
		// knowledge — evicting clean duplicated pages is free anyway.
		if sys.UsesDiscard() && !cfg.ReadMostlyEdges {
			if err := workloads.DiscardRange(sys, s, edges,
				offset, units.Size(n)*units.BlockSize); err != nil {
				return workloads.Result{}, err
			}
		}
		// Re-prefault the next level's frontier buffer (the §4.2 pairing
		// for the lazy flavor).
		if sys == workloads.UvmDiscardLazy {
			if err := s.PrefetchAll(next, cuda.ToGPU); err != nil {
				return workloads.Result{}, err
			}
		}
		startBlock += n
		cur, next = next, cur
	}
	ctx.DeviceSynchronize()
	return workloads.CollectSince(sys, ctx, start), nil
}

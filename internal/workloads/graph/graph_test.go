package graph

import (
	"testing"

	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
)

func smallConfig() Config {
	return Config{
		EdgeBytes:   512 * units.MiB,
		VertexBytes: 16 * units.MiB,
		LevelFractions: []float64{
			0.002, 0.02, 0.10, 0.25, 0.30, 0.20, 0.08, 0.03, 0.01,
		},
		ScanRate: 120e9,
	}
}

func platform() workloads.Platform {
	p := workloads.DefaultPlatform()
	p.GPU = gpudev.Generic(384 * units.MiB) // edges stream past capacity
	return p
}

func TestUVMOptPaysDeadEdgeEvictions(t *testing.T) {
	r, err := Run(platform(), workloads.UVMOpt, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.EvictD2H == 0 {
		t.Error("expected eviction D2H of exhausted (read-only) edge partitions")
	}
}

func TestDiscardEliminatesEdgeEvictions(t *testing.T) {
	base, err := Run(platform(), workloads.UVMOpt, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	disc, err := Run(platform(), workloads.UvmDiscard, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if disc.D2HBytes != 0 {
		t.Errorf("discard left %d D2H bytes", disc.D2HBytes)
	}
	if disc.TrafficBytes >= base.TrafficBytes {
		t.Error("discard did not reduce traffic")
	}
	if disc.Runtime >= base.Runtime {
		t.Error("discard did not reduce runtime")
	}
	if disc.SavedD2H == 0 {
		t.Error("no savings recorded")
	}
}

// The read-mostly hint achieves the same elimination without deadness
// knowledge: clean duplicated pages evict for free.
func TestReadMostlyMatchesDiscard(t *testing.T) {
	cfgRM := smallConfig()
	cfgRM.ReadMostlyEdges = true
	rm, err := Run(platform(), workloads.UvmDiscard, cfgRM)
	if err != nil {
		t.Fatal(err)
	}
	disc, err := Run(platform(), workloads.UvmDiscard, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rm.H2DBytes != disc.H2DBytes {
		t.Errorf("H2D differs: %d vs %d", rm.H2DBytes, disc.H2DBytes)
	}
	if rm.D2HBytes != 0 {
		t.Errorf("read-mostly left %d D2H bytes", rm.D2HBytes)
	}
}

func TestLazyVariant(t *testing.T) {
	lazy, err := Run(platform(), workloads.UvmDiscardLazy, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if lazy.D2HBytes != 0 {
		t.Errorf("lazy left %d D2H bytes", lazy.D2HBytes)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(platform(), workloads.NoUVM, smallConfig()); err == nil {
		t.Error("No-UVM accepted")
	}
	bad := smallConfig()
	bad.LevelFractions = []float64{1.5}
	if _, err := Run(platform(), workloads.UVMOpt, bad); err == nil {
		t.Error("out-of-range fraction accepted")
	}
	if _, err := Run(platform(), workloads.UVMOpt, Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestFootprint(t *testing.T) {
	c := smallConfig()
	want := units.Size(512*units.MiB) + 4*units.Size(16*units.MiB)
	if c.Footprint() != want {
		t.Errorf("footprint = %d, want %d", c.Footprint(), want)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(platform(), workloads.UvmDiscard, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(platform(), workloads.UvmDiscard, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.TrafficBytes != b.TrafficBytes || a.Runtime != b.Runtime {
		t.Error("graph runs are not deterministic")
	}
}

// Package fir models the paper's FIR micro-benchmark (§7.2): a finite
// impulse response filter streaming over a large input buffer in windows.
// Each iteration prefetches one window of host data to the GPU, runs the
// filter kernel over it, and writes the corresponding output window. The
// input window is dead as soon as the kernel finishes — the discard target.
//
// Traffic structure this produces (Table 4): the input (5.66 GB) is always
// prefetched H2D. Under oversubscription, UVM-opt evicts consumed input
// windows and freshly written output windows D2H as new windows arrive —
// the input portion of that eviction traffic is entirely redundant. The
// discard directive routes consumed windows to the discarded queue, which
// the eviction process drains for free; only live output spills remain.
package fir

import (
	"fmt"

	"uvmdiscard/internal/checkpoint"
	"uvmdiscard/internal/core"
	"uvmdiscard/internal/cuda"
	"uvmdiscard/internal/runctl"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
)

// Config sizes the benchmark. The zero value is invalid; use DefaultConfig.
type Config struct {
	// InputBytes is the total filter input; the paper streams 5.66 GB.
	InputBytes units.Size
	// WindowBytes is the sliding-window granularity.
	WindowBytes units.Size
	// FilterRate is the kernel's effective processing rate in input
	// bytes/second when all data is local (compute time per window =
	// WindowBytes / FilterRate).
	FilterRate float64
}

// DefaultConfig reproduces the paper's setup.
func DefaultConfig() Config {
	return Config{
		InputBytes:  5_660_000_000,
		WindowBytes: 256 * units.MiB,
		FilterRate:  28e9,
	}
}

// Footprint returns the application's GPU memory consumption: the input
// plus the equally sized output, which is produced on the GPU.
func (c Config) Footprint() units.Size {
	return 2 * units.AlignUp(c.InputBytes, units.BlockSize)
}

// Run executes FIR under the given system and platform and reports runtime
// and traffic. A run interrupted by the platform's run control (cancel,
// wall deadline, sim budget) returns a *runctl.Interrupt error.
func Run(p workloads.Platform, sys workloads.System, cfg Config) (workloads.Result, error) {
	return RunCheckpointed(p, sys, cfg, nil)
}

// digest identifies a FIR configuration for checkpoint compatibility: any
// value that steers the simulation's trajectory is folded in, so a snapshot
// can only be restored into the run that would have produced it.
func digest(p workloads.Platform, sys workloads.System, cfg Config) string {
	params := "default"
	if p.Params != nil {
		params = fmt.Sprintf("%+v", *p.Params)
	}
	return checkpoint.Digest("fir/1", sys, p.GPU, p.Gen, p.OversubPercent, params,
		cfg.InputBytes, cfg.WindowBytes, cfg.FilterRate)
}

// RunCheckpointed is Run with an optional checkpoint environment: when env
// is non-nil the run resumes from env.Restore if present (falling back to a
// fresh start if the blob is rejected — corrupt state is never resumed) and
// captures a snapshot through env.Save after every env.Every-th window, or
// when the platform's run control requests one. A resumed run's Result is
// byte-identical to an uninterrupted run's. env == nil is exactly the old
// Run: no capture, nothing on the warm path.
func RunCheckpointed(p workloads.Platform, sys workloads.System, cfg Config, env *checkpoint.Env) (res workloads.Result, err error) {
	defer runctl.Recover(&err)
	if sys == workloads.NoUVM || sys == workloads.PyTorchLMS {
		return workloads.Result{}, fmt.Errorf("fir: system %v not part of the paper's FIR evaluation", sys)
	}
	if cfg.WindowBytes == 0 || cfg.InputBytes == 0 || cfg.FilterRate <= 0 {
		return workloads.Result{}, fmt.Errorf("fir: invalid config %+v", cfg)
	}
	ctx, err := p.NewContext(cfg.Footprint())
	if err != nil {
		return workloads.Result{}, err
	}

	var (
		in, out                   *cuda.Buffer
		copyStream, computeStream *cuda.Stream
		start                     sim.Time
		firstStep                 int
		dig                       string
	)
	if env != nil {
		dig = digest(p, sys, cfg)
	}
	if env != nil && env.Restore != nil {
		snap, rerr := checkpoint.DecodeSnapshot(env.Restore)
		if rerr == nil && snap.Digest != dig {
			rerr = fmt.Errorf("fir: snapshot digest %s does not match this run's %s", snap.Digest, dig)
		}
		if numSteps := int((cfg.InputBytes + cfg.WindowBytes - 1) / cfg.WindowBytes); rerr == nil && snap.Step > numSteps {
			rerr = fmt.Errorf("fir: snapshot resumes at step %d of a %d-step run", snap.Step, numSteps)
		}
		var got *checkpoint.Restored
		if rerr == nil {
			got, rerr = checkpoint.Restore(ctx, snap)
		}
		if rerr == nil {
			in, out = got.Bufs["fir-in"], got.Bufs["fir-out"]
			copyStream, computeStream = got.Streams["copy"], got.Streams["compute"]
			if in == nil || out == nil || copyStream == nil || computeStream == nil {
				rerr = fmt.Errorf("fir: snapshot is missing the fir buffers or streams")
			}
		}
		if rerr != nil {
			// Rejected: fall back to restart-from-zero on a brand-new
			// context (the failed restore may have partially applied
			// state, including into a shared metrics collector).
			env.Stats.Rejected = true
			if env.OnReject != nil {
				env.OnReject(rerr.Error())
			}
			if p.Metrics != nil {
				p.Metrics.Reset()
			}
			if ctx, err = p.NewContext(cfg.Footprint()); err != nil {
				return workloads.Result{}, err
			}
		} else {
			start = snap.Start
			firstStep = snap.Step
			env.Stats.Resumed = true
			env.Stats.ResumedFrom = snap.Step
		}
	}

	if in == nil {
		if in, err = ctx.MallocManaged("fir-in", cfg.InputBytes); err != nil {
			return workloads.Result{}, err
		}
		if out, err = ctx.MallocManaged("fir-out", cfg.InputBytes); err != nil {
			return workloads.Result{}, err
		}
		// The host generates the full input signal. This pre-processing is
		// excluded from the measured runtime.
		if err := in.HostWrite(0, in.Size()); err != nil {
			return workloads.Result{}, err
		}
		start = ctx.Elapsed()
		copyStream = ctx.Stream("copy")
		computeStream = ctx.Stream("compute")
	}

	// One access list reused across windows: only the window offset/length
	// change per launch, so the slice is built once instead of per kernel.
	accesses := []cuda.Access{
		{Buf: in, Mode: core.Read},
		{Buf: out, Mode: core.Write},
	}
	for step, off := firstStep, units.Size(firstStep)*cfg.WindowBytes; off < cfg.InputBytes; step, off = step+1, off+cfg.WindowBytes {
		win := cfg.WindowBytes
		if off+win > cfg.InputBytes {
			win = cfg.InputBytes - off
		}
		// Prefetch the next input window and prefault the output window on
		// the copy stream — this is the overlap the "-opt" baseline uses.
		if err := copyStream.MemPrefetchAsync(in, off, win, cuda.ToGPU); err != nil {
			return workloads.Result{}, err
		}
		if err := copyStream.MemPrefetchAsync(out, off, win, cuda.ToGPU); err != nil {
			return workloads.Result{}, err
		}
		ready := ctx.NewEvent()
		copyStream.RecordEvent(ready)
		computeStream.WaitEvent(ready)

		accesses[0].Offset, accesses[0].Length = off, win
		accesses[1].Offset, accesses[1].Length = off, win
		err := computeStream.Launch(cuda.Kernel{
			Name:     "fir",
			Compute:  sim.TransferTime(uint64(win), cfg.FilterRate),
			Accesses: accesses,
		})
		if err != nil {
			return workloads.Result{}, err
		}
		// The consumed window is dead: discard it (stream-ordered after
		// the kernel, §4.2). FIR's windows are never reused, so the lazy
		// flavor needs no pairing prefetch.
		if err := workloads.DiscardRange(sys, computeStream, in, off, win); err != nil {
			return workloads.Result{}, err
		}
		if env != nil {
			env.Stats.StepsExecuted++
			if env.Due(step) || p.Control.TakeCheckpointRequest() {
				captureAndSave(ctx, env, dig, step+1, start)
			}
		}
	}
	ctx.DeviceSynchronize()
	return workloads.CollectSince(sys, ctx, start), nil
}

// captureAndSave snapshots the run after step-1 has completed and hands the
// encoded blob to env.Save. Failures are non-fatal — the simulation's
// answer does not depend on checkpoint durability — but counted, so the
// service layer can surface a run that silently lost crash protection.
func captureAndSave(ctx *cuda.Context, env *checkpoint.Env, dig string, nextStep int, start sim.Time) {
	if env.Save == nil {
		return
	}
	snap, err := checkpoint.Capture(ctx, dig, nextStep, start)
	if err == nil {
		var blob []byte
		if blob, err = checkpoint.EncodeSnapshot(snap); err == nil {
			err = env.Save(blob)
		}
	}
	if err != nil {
		env.Stats.SaveErrors++
		return
	}
	env.Stats.Captures++
}

package fir

import (
	"testing"

	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
)

// smallConfig keeps tests fast: 512 MiB input, 64 MiB windows.
func smallConfig() Config {
	return Config{
		InputBytes:  512 * units.MiB,
		WindowBytes: 64 * units.MiB,
		FilterRate:  28e9,
	}
}

func platform(ovsp int) workloads.Platform {
	return workloads.Platform{
		GPU:            gpudev.Generic(1536 * units.MiB),
		Gen:            pcie.Gen4,
		OversubPercent: ovsp,
	}
}

func run(t *testing.T, sys workloads.System, ovsp int) workloads.Result {
	t.Helper()
	r, err := Run(platform(ovsp), sys, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFitsTrafficIsInputOnly(t *testing.T) {
	// When everything fits, traffic is exactly the input prefetch.
	for _, sys := range []workloads.System{workloads.UVMOpt, workloads.UvmDiscard, workloads.UvmDiscardLazy} {
		r := run(t, sys, 0)
		if r.TrafficBytes != uint64(512*units.MiB) {
			t.Errorf("%v: traffic = %.3f GB, want input only (%.3f GB)",
				sys, r.TrafficGB(), float64(512*units.MiB)/1e9)
		}
		if r.D2HBytes != 0 {
			t.Errorf("%v: D2H = %d when fitting", sys, r.D2HBytes)
		}
	}
}

func TestOversubscriptionShape(t *testing.T) {
	// Table 3/4 shape: under oversubscription the discard systems move
	// far less data and finish faster; the gap narrows as pressure grows.
	type row struct{ base, disc workloads.Result }
	rows := map[int]row{}
	for _, ovsp := range []int{200, 300, 400} {
		rows[ovsp] = row{
			base: run(t, workloads.UVMOpt, ovsp),
			disc: run(t, workloads.UvmDiscard, ovsp),
		}
	}
	for ovsp, r := range rows {
		if r.disc.TrafficBytes >= r.base.TrafficBytes {
			t.Errorf("%d%%: discard traffic %.2f GB >= baseline %.2f GB",
				ovsp, r.disc.TrafficGB(), r.base.TrafficGB())
		}
		if r.disc.Runtime >= r.base.Runtime {
			t.Errorf("%d%%: discard runtime %v >= baseline %v",
				ovsp, r.disc.Runtime, r.base.Runtime)
		}
		if r.disc.SavedD2H == 0 {
			t.Errorf("%d%%: no saved D2H", ovsp)
		}
	}
	// Baseline traffic grows with oversubscription.
	if !(rows[200].base.TrafficBytes < rows[300].base.TrafficBytes &&
		rows[300].base.TrafficBytes < rows[400].base.TrafficBytes) {
		t.Errorf("baseline traffic not monotone: %v %v %v",
			rows[200].base.TrafficGB(), rows[300].base.TrafficGB(), rows[400].base.TrafficGB())
	}
	// Discard traffic also grows (live output spills increase).
	if !(rows[200].disc.TrafficBytes < rows[300].disc.TrafficBytes &&
		rows[300].disc.TrafficBytes < rows[400].disc.TrafficBytes) {
		t.Errorf("discard traffic not monotone: %v %v %v",
			rows[200].disc.TrafficGB(), rows[300].disc.TrafficGB(), rows[400].disc.TrafficGB())
	}
	// The relative benefit shrinks at higher pressure (0.51 -> 0.71 in
	// Table 3): the runtime ratio at 400% exceeds the ratio at 200%.
	ratio := func(r row) float64 { return float64(r.disc.Runtime) / float64(r.base.Runtime) }
	if !(ratio(rows[200]) < ratio(rows[400])) {
		t.Errorf("benefit should shrink with pressure: ratios %.2f (200%%) vs %.2f (400%%)",
			ratio(rows[200]), ratio(rows[400]))
	}
}

func TestLazyMatchesEagerWhenOversubscribed(t *testing.T) {
	// Table 4: both flavors eliminate the same transfers.
	eager := run(t, workloads.UvmDiscard, 200)
	lazy := run(t, workloads.UvmDiscardLazy, 200)
	if eager.TrafficBytes != lazy.TrafficBytes {
		t.Errorf("traffic differs: eager %.3f GB vs lazy %.3f GB",
			eager.TrafficGB(), lazy.TrafficGB())
	}
}

func TestUnsupportedSystems(t *testing.T) {
	for _, sys := range []workloads.System{workloads.NoUVM, workloads.PyTorchLMS} {
		if _, err := Run(platform(0), sys, smallConfig()); err == nil {
			t.Errorf("%v accepted", sys)
		}
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := Run(platform(0), workloads.UVMOpt, Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestFootprint(t *testing.T) {
	c := smallConfig()
	if c.Footprint() != 1024*units.MiB {
		t.Errorf("footprint = %s", units.Format(c.Footprint()))
	}
}

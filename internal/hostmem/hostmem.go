// Package hostmem models the host (CPU) DRAM side of the unified address
// space. The UVM driver uses host memory as the backing store / swap space
// for GPU memory (§2.2): pages migrated to the GPU keep their host pages
// *pinned*, and eviction swaps GPU chunks back into those pinned pages.
//
// The model tracks capacity and pinned/resident byte counts so experiments
// can assert the paper's pinning behaviour and so misconfigured runs (host
// swap exceeding host DRAM) fail loudly instead of silently.
package hostmem

import (
	"fmt"

	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
)

// Host models host DRAM.
type Host struct {
	capacity units.Size
	resident units.Size // bytes of CPU-resident UVM data
	pinned   units.Size // subset of capacity pinned for GPU-mapped buffers
	// faultCost is the CPU-side cost of a minor page fault that maps a
	// zero-filled page (first touch, §2.2 step 1).
	faultCost sim.Time
}

// New returns a host with the given DRAM capacity. The paper's platform has
// 64 GB of DDR4-3200.
func New(capacity units.Size) *Host {
	return &Host{capacity: capacity, faultCost: sim.Micros(1.2)}
}

// Default returns the paper's evaluation host: 64 GB DDR4-3200.
func Default() *Host { return New(64 * units.GiB) }

// Capacity returns total host DRAM.
func (h *Host) Capacity() units.Size { return h.capacity }

// Resident returns bytes of UVM data currently CPU-resident.
func (h *Host) Resident() units.Size { return h.resident }

// Pinned returns bytes currently pinned (CPU pages backing GPU-mapped
// buffers plus staging for migrations).
func (h *Host) Pinned() units.Size { return h.pinned }

// FaultCost returns the CPU minor-fault cost for one first-touch page
// population.
func (h *Host) FaultCost() sim.Time { return h.faultCost }

// Reserve accounts n bytes of new CPU-resident data (zero-filled pages on
// first touch, or the destination of a D2H migration). It fails when host
// DRAM is exhausted.
func (h *Host) Reserve(n units.Size) error {
	if h.resident+n > h.capacity {
		return fmt.Errorf("hostmem: out of host memory: resident %s + %s > capacity %s",
			units.Format(h.resident), units.Format(n), units.Format(h.capacity))
	}
	h.resident += n
	return nil
}

// Release frees n bytes of CPU-resident data.
func (h *Host) Release(n units.Size) {
	if n > h.resident {
		panic(fmt.Sprintf("hostmem: releasing %s with only %s resident",
			units.Format(n), units.Format(h.resident)))
	}
	h.resident -= n
}

// Pin marks n bytes of resident data as pinned (the buffer is mapped on a
// GPU; §2.2 step 2 keeps CPU pages pinned during GPU residency).
func (h *Host) Pin(n units.Size) {
	h.pinned += n
	if h.pinned > h.capacity {
		panic(fmt.Sprintf("hostmem: pinned %s exceeds capacity %s",
			units.Format(h.pinned), units.Format(h.capacity)))
	}
}

// Restore overwrites the resident/pinned accounting with values from a
// checkpoint snapshot. Unlike Release/Pin/Unpin, which panic on misuse
// because a live driver can never legally reach those states, Restore
// validates and returns an error: its inputs come from a decoded file, and a
// corrupt snapshot must fail the restore, not crash the process.
func (h *Host) Restore(resident, pinned units.Size) error {
	if resident < 0 || pinned < 0 {
		return fmt.Errorf("hostmem: restore with negative accounting (resident=%d pinned=%d)",
			resident, pinned)
	}
	if resident > h.capacity || pinned > h.capacity {
		return fmt.Errorf("hostmem: restore exceeds capacity %s (resident=%s pinned=%s)",
			units.Format(h.capacity), units.Format(resident), units.Format(pinned))
	}
	h.resident = resident
	h.pinned = pinned
	return nil
}

// Unpin releases n bytes of pinned accounting.
func (h *Host) Unpin(n units.Size) {
	if n > h.pinned {
		panic(fmt.Sprintf("hostmem: unpinning %s with only %s pinned",
			units.Format(n), units.Format(h.pinned)))
	}
	h.pinned -= n
}

package hostmem

import (
	"testing"

	"uvmdiscard/internal/units"
)

func TestReserveRelease(t *testing.T) {
	h := New(10 * units.MiB)
	if h.Capacity() != 10*units.MiB {
		t.Errorf("capacity = %d", h.Capacity())
	}
	if err := h.Reserve(6 * units.MiB); err != nil {
		t.Fatal(err)
	}
	if h.Resident() != 6*units.MiB {
		t.Errorf("resident = %d", h.Resident())
	}
	if err := h.Reserve(6 * units.MiB); err == nil {
		t.Error("over-reservation succeeded")
	}
	h.Release(4 * units.MiB)
	if err := h.Reserve(6 * units.MiB); err != nil {
		t.Errorf("reserve after release failed: %v", err)
	}
}

func TestReleaseTooMuchPanics(t *testing.T) {
	h := New(units.MiB)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	h.Release(1)
}

func TestPinUnpin(t *testing.T) {
	h := New(10 * units.MiB)
	h.Pin(4 * units.MiB)
	if h.Pinned() != 4*units.MiB {
		t.Errorf("pinned = %d", h.Pinned())
	}
	h.Unpin(3 * units.MiB)
	if h.Pinned() != units.MiB {
		t.Errorf("pinned = %d", h.Pinned())
	}
}

func TestUnpinTooMuchPanics(t *testing.T) {
	h := New(units.MiB)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	h.Unpin(1)
}

func TestOverpinPanics(t *testing.T) {
	h := New(units.MiB)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	h.Pin(2 * units.MiB)
}

func TestDefault(t *testing.T) {
	h := Default()
	if h.Capacity() != 64*units.GiB {
		t.Errorf("default capacity = %s", units.Format(h.Capacity()))
	}
	if h.FaultCost() <= 0 {
		t.Error("fault cost should be positive")
	}
}

package checkpoint

// Env is the checkpointing contract a caller (the uvmsimd service, the
// fleet worker, or the uvmsim CLI) hands to a checkpoint-aware workload
// run. The workload consumes Restore once at startup, calls Save with a
// freshly encoded snapshot at each due boundary, and reports what happened
// in Stats. A nil *Env means checkpointing is off — the workload runs
// exactly as before, off the warm path.
type Env struct {
	// Restore, when non-nil, is an encoded snapshot blob (envelope included)
	// the run should resume from. A blob that fails to decode or restore is
	// reported through OnReject and the run restarts from zero — corrupt
	// state is never silently resumed.
	Restore []byte

	// Save persists an encoded snapshot blob. Called at each due step
	// boundary with a complete, enveloped snapshot. Errors are non-fatal to
	// the run (the simulation's answer does not depend on durability) but
	// are counted in Stats.SaveErrors.
	Save func(blob []byte) error

	// Every is the capture cadence in steps: a snapshot is taken after every
	// Every-th step, counted from the start of the whole run (absolute step
	// numbering, so a resumed run captures at the same boundaries as an
	// uninterrupted one). Zero disables cadence-based capture; explicit
	// runctl.RequestCheckpoint requests are honored regardless.
	Every int

	// OnReject, when non-nil, is told why a Restore blob was rejected just
	// before the run falls back to restarting from zero.
	OnReject func(reason string)

	// Stats is filled in by the run.
	Stats Stats
}

// Stats reports what a checkpoint-aware run actually did.
type Stats struct {
	// Resumed is true when the run restored from Env.Restore.
	Resumed bool
	// ResumedFrom is the step index execution resumed at (0 when !Resumed).
	ResumedFrom int
	// StepsExecuted counts the steps this process actually executed —
	// total steps minus the ones the restored snapshot made redundant.
	StepsExecuted int
	// Captures counts snapshots successfully handed to Save.
	Captures int
	// Rejected is true when a Restore blob was present but rejected.
	Rejected bool
	// SaveErrors counts Save calls that returned an error.
	SaveErrors int
}

// Due reports whether a snapshot should be captured after step (0-based)
// has completed: nil-safe, honoring the Every cadence on absolute step
// numbers.
func (e *Env) Due(step int) bool {
	if e == nil || e.Save == nil || e.Every <= 0 {
		return false
	}
	return (step+1)%e.Every == 0
}

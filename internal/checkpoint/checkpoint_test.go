package checkpoint_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"uvmdiscard/internal/checkpoint"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/runctl"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
	"uvmdiscard/internal/workloads/fir"
)

// smallCfg is 8 windows of 64 MiB under 2x oversubscription — enough
// eviction pressure for the snapshot to carry non-trivial queue state.
func smallCfg() fir.Config {
	return fir.Config{
		InputBytes:  512 * units.MiB,
		WindowBytes: 64 * units.MiB,
		FilterRate:  28e9,
	}
}

func plat() workloads.Platform {
	return workloads.Platform{
		GPU:            gpudev.Generic(1536 * units.MiB),
		Gen:            pcie.Gen4,
		OversubPercent: 200,
	}
}

const sysUnderTest = workloads.UvmDiscard

// reference runs FIR uninterrupted, no checkpointing at all.
func reference(t *testing.T) workloads.Result {
	t.Helper()
	ref, err := fir.Run(plat(), sysUnderTest, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// captureAll runs with capture after every step and returns the saved blobs.
func captureAll(t *testing.T, ref workloads.Result) [][]byte {
	t.Helper()
	var blobs [][]byte
	env := &checkpoint.Env{
		Every: 1,
		Save: func(blob []byte) error {
			blobs = append(blobs, bytes.Clone(blob))
			return nil
		},
	}
	r, err := fir.RunCheckpointed(plat(), sysUnderTest, smallCfg(), env)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, ref) {
		t.Fatalf("capturing perturbed the run:\n got %+v\nwant %+v", r, ref)
	}
	if env.Stats.Captures != 8 || len(blobs) != 8 {
		t.Fatalf("captures = %d, blobs = %d, want 8", env.Stats.Captures, len(blobs))
	}
	if env.Stats.SaveErrors != 0 || env.Stats.Resumed || env.Stats.Rejected {
		t.Fatalf("unexpected stats %+v", env.Stats)
	}
	return blobs
}

func TestResumeByteIdentical(t *testing.T) {
	ref := reference(t)
	blobs := captureAll(t, ref)
	// Resume from every intermediate snapshot; each must reproduce the
	// uninterrupted run's result exactly and re-execute only the remainder.
	for i, blob := range blobs {
		env := &checkpoint.Env{Restore: blob}
		r, err := fir.RunCheckpointed(plat(), sysUnderTest, smallCfg(), env)
		if err != nil {
			t.Fatalf("resume from snapshot %d: %v", i, err)
		}
		if !reflect.DeepEqual(r, ref) {
			t.Errorf("resume from snapshot %d diverged:\n got %+v\nwant %+v", i, r, ref)
		}
		if !env.Stats.Resumed || env.Stats.ResumedFrom != i+1 {
			t.Errorf("snapshot %d: stats %+v, want resume from step %d", i, env.Stats, i+1)
		}
		if want := 8 - (i + 1); env.Stats.StepsExecuted != want {
			t.Errorf("snapshot %d: executed %d steps, want %d", i, env.Stats.StepsExecuted, want)
		}
	}
}

func TestCorruptRestoreFallsBackToFreshRun(t *testing.T) {
	ref := reference(t)
	blobs := captureAll(t, ref)
	mut := bytes.Clone(blobs[3])
	mut[len(mut)/2] ^= 0x40

	var reason string
	env := &checkpoint.Env{Restore: mut, OnReject: func(r string) { reason = r }}
	r, err := fir.RunCheckpointed(plat(), sysUnderTest, smallCfg(), env)
	if err != nil {
		t.Fatal(err)
	}
	if !env.Stats.Rejected || env.Stats.Resumed {
		t.Fatalf("stats %+v, want rejected and not resumed", env.Stats)
	}
	if reason == "" {
		t.Error("OnReject not told why")
	}
	if env.Stats.StepsExecuted != 8 {
		t.Errorf("fallback executed %d steps, want all 8", env.Stats.StepsExecuted)
	}
	if !reflect.DeepEqual(r, ref) {
		t.Errorf("fallback run diverged:\n got %+v\nwant %+v", r, ref)
	}
}

func TestDigestMismatchRejected(t *testing.T) {
	ref := reference(t)
	blobs := captureAll(t, ref)
	// Same snapshot, different workload config: must be rejected, and the
	// fallback must produce the other config's correct result.
	cfg := smallCfg()
	cfg.FilterRate = 14e9
	want, err := fir.Run(plat(), sysUnderTest, cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := &checkpoint.Env{Restore: blobs[2]}
	r, err := fir.RunCheckpointed(plat(), sysUnderTest, cfg, env)
	if err != nil {
		t.Fatal(err)
	}
	if !env.Stats.Rejected {
		t.Fatal("foreign snapshot accepted")
	}
	if !reflect.DeepEqual(r, want) {
		t.Errorf("fallback diverged:\n got %+v\nwant %+v", r, want)
	}
}

func TestControlRequestTriggersCapture(t *testing.T) {
	p := plat()
	p.Control = runctl.New(context.Background(), 0, 0)
	p.Control.RequestCheckpoint()
	var blobs [][]byte
	env := &checkpoint.Env{Save: func(b []byte) error { blobs = append(blobs, b); return nil }}
	if _, err := fir.RunCheckpointed(p, sysUnderTest, smallCfg(), env); err != nil {
		t.Fatal(err)
	}
	// Every == 0: only the explicit request captures, at the first boundary.
	if len(blobs) != 1 || env.Stats.Captures != 1 {
		t.Fatalf("captures = %d, want exactly the requested one", len(blobs))
	}
	snap, err := checkpoint.DecodeSnapshot(blobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if snap.Step != 1 {
		t.Errorf("requested capture at step %d, want 1", snap.Step)
	}
}

func TestCaptureRefusesTracing(t *testing.T) {
	// Tracing state is not serialized, so captures must refuse rather than
	// produce snapshots that would resume wrong; the run itself still works.
	p := plat()
	p.TraceRMT = true
	env := &checkpoint.Env{Every: 1, Save: func([]byte) error { return nil }}
	if _, err := fir.RunCheckpointed(p, sysUnderTest, smallCfg(), env); err != nil {
		t.Fatal(err)
	}
	if env.Stats.Captures != 0 || env.Stats.SaveErrors != 8 {
		t.Fatalf("stats %+v, want 0 captures and 8 refusals", env.Stats)
	}
}

func TestStepBeyondEndRejected(t *testing.T) {
	ref := reference(t)
	blobs := captureAll(t, ref)
	snap, err := checkpoint.DecodeSnapshot(blobs[7])
	if err != nil {
		t.Fatal(err)
	}
	snap.Step = 1 << 40
	blob, err := checkpoint.EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	env := &checkpoint.Env{Restore: blob}
	r, err := fir.RunCheckpointed(plat(), sysUnderTest, smallCfg(), env)
	if err != nil {
		t.Fatal(err)
	}
	if !env.Stats.Rejected {
		t.Fatal("absurd step accepted")
	}
	if !reflect.DeepEqual(r, ref) {
		t.Errorf("fallback diverged:\n got %+v\nwant %+v", r, ref)
	}
}

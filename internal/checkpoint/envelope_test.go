package checkpoint

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("uvm"), 10_000)} {
		blob, err := Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(blob)
		if err != nil {
			t.Fatalf("decode after encode: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload round-trip mismatch: %d bytes in, %d out", len(payload), len(got))
		}
	}
}

func TestEnvelopeRejectsOversizedPayload(t *testing.T) {
	if _, err := Encode(make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("oversized payload encoded")
	}
}

func TestEnvelopeDetectsCorruption(t *testing.T) {
	blob, err := Encode([]byte(`{"step": 7}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(blob); err != nil {
		t.Fatal(err)
	}

	t.Run("torn tails", func(t *testing.T) {
		for n := 0; n < len(blob); n++ {
			if _, err := Decode(blob[:n]); err == nil {
				t.Fatalf("truncation to %d of %d bytes decoded", n, len(blob))
			}
		}
	})
	t.Run("bit flips", func(t *testing.T) {
		for i := 0; i < len(blob); i++ {
			for bit := 0; bit < 8; bit++ {
				mut := bytes.Clone(blob)
				mut[i] ^= 1 << bit
				if _, err := Decode(mut); err == nil {
					t.Fatalf("flipping byte %d bit %d went undetected", i, bit)
				}
			}
		}
	})
	t.Run("version skew", func(t *testing.T) {
		mut := bytes.Clone(blob)
		binary.LittleEndian.PutUint32(mut[len(magic):], version+1)
		if _, err := Decode(mut); err == nil {
			t.Fatal("future format version decoded")
		}
	})
	t.Run("oversized length", func(t *testing.T) {
		mut := bytes.Clone(blob)
		binary.LittleEndian.PutUint64(mut[len(magic)+4:], MaxPayload+1)
		if _, err := Decode(mut); err == nil {
			t.Fatal("length beyond cap decoded")
		}
	})
}

func TestWriteFileReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "job.ckpt")
	blob, err := Encode([]byte("state"))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, blob); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("read back different bytes")
	}
	// Overwrite must replace atomically and leave no temp debris.
	blob2, err := Encode([]byte("state2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, blob2); err != nil {
		t.Fatal(err)
	}
	if got, err = ReadFile(path); err != nil || !bytes.Equal(got, blob2) {
		t.Fatalf("overwrite: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory holds %d entries after two writes, want 1", len(ents))
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	blob, err := Encode([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir", "f.ckpt"), blob); err == nil {
		t.Fatal("write into a missing directory succeeded")
	}
}

package checkpoint_test

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"uvmdiscard/internal/checkpoint"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
	"uvmdiscard/internal/workloads/fir"
)

// FuzzCheckpointDecode feeds arbitrary bytes through the whole restore path
// as a checkpoint blob. The oracle is the subsystem's safety contract: a
// blob either fails decode/validation (the run restarts from zero and
// produces the reference result) or restores a state that passes the full
// sanitizer audit — never a silent bad state, and never a panic. Resumes
// that do succeed must reproduce the reference result exactly, since the
// digest binds a valid snapshot to this exact configuration.
func FuzzCheckpointDecode(f *testing.F) {
	cfg := fir.Config{
		InputBytes:  128 * units.MiB,
		WindowBytes: 64 * units.MiB,
		FilterRate:  28e9,
	}
	p := workloads.Platform{
		GPU:            gpudev.Generic(384 * units.MiB),
		Gen:            pcie.Gen4,
		OversubPercent: 200,
	}
	const sys = workloads.UvmDiscard
	ref, err := fir.Run(p, sys, cfg)
	if err != nil {
		f.Fatal(err)
	}

	// Seeds: a genuine mid-run snapshot plus targeted corruptions of it.
	var valid []byte
	env := &checkpoint.Env{Every: 1, Save: func(b []byte) error {
		if valid == nil {
			valid = bytes.Clone(b)
		}
		return nil
	}}
	if _, err := fir.RunCheckpointed(p, sys, cfg, env); err != nil {
		f.Fatal(err)
	}
	if valid == nil {
		f.Fatal("no snapshot captured for seeding")
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/3]) // torn tail
	f.Add(valid[:51])           // torn inside the header
	flip := bytes.Clone(valid)
	flip[len(flip)-7] ^= 0x10
	f.Add(flip) // payload bit flip
	skew := bytes.Clone(valid)
	binary.LittleEndian.PutUint32(skew[8:], 99)
	f.Add(skew) // version skew
	huge := bytes.Clone(valid)
	binary.LittleEndian.PutUint64(huge[12:], 1<<40)
	f.Add(huge)                // oversized length field
	f.Add([]byte("UVMCKPT\n")) // bare magic
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, blob []byte) {
		env := &checkpoint.Env{Restore: blob}
		r, err := fir.RunCheckpointed(p, sys, cfg, env)
		if err != nil {
			t.Fatalf("run failed outright on fuzzed blob: %v", err)
		}
		if env.Stats.Rejected == env.Stats.Resumed {
			t.Fatalf("blob must be either rejected or resumed, got stats %+v", env.Stats)
		}
		if !reflect.DeepEqual(r, ref) {
			t.Fatalf("fuzzed blob changed the answer (resumed=%v):\n got %+v\nwant %+v",
				env.Stats.Resumed, r, ref)
		}
	})
}

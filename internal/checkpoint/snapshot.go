package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"uvmdiscard/internal/cuda"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/vaspace"
)

// Snapshot is the complete serialized state of a live simulation at a step
// boundary. Everything that can influence a later step of the run is here;
// see the package comment for what is deliberately excluded.
type Snapshot struct {
	// Digest identifies the workload configuration the snapshot belongs to
	// (workload, config sizes, system, platform). Restore into a run with a
	// different digest is refused — resuming FIR state into a different
	// window size would be silently wrong, the exact failure mode this
	// subsystem exists to prevent.
	Digest string `json:"digest"`
	// Step is the next step index the resumed run should execute.
	Step int `json:"step"`
	// Start is the measurement-start timestamp (runtime excludes input
	// pre-processing; the resumed run must subtract the same origin).
	Start sim.Time `json:"start"`

	Clock    sim.Time      `json:"clock"`
	RNG      uint64        `json:"rng"`
	DMA      EngineState   `json:"dma"`
	Peer     EngineState   `json:"peer"`
	Computes []EngineState `json:"computes"`
	Streams  []StreamState `json:"streams"`

	Allocs  []AllocState  `json:"allocs"`
	Devices []DeviceState `json:"devices"`

	HostResident units.Size `json:"host_resident"`
	HostPinned   units.Size `json:"host_pinned"`

	DeviceAllocBytes units.Size `json:"device_alloc_bytes"`
	DeviceChunkCount int        `json:"device_chunk_count"`

	Counters metrics.CounterState `json:"counters"`
}

// EngineState is one sim.Engine's timeline position.
type EngineState struct {
	FreeAt sim.Time `json:"free_at"`
	Busy   sim.Time `json:"busy"`
	Ops    int64    `json:"ops"`
}

// StreamState is one CUDA stream's identity and tail position.
type StreamState struct {
	Name string   `json:"name"`
	Tail sim.Time `json:"tail"`
}

// AllocState is one managed allocation, recorded in allocation (= id) order
// so restore can replay the deterministic VA-space layout and verify it
// reproduces the same ids and bases.
type AllocState struct {
	ID     int          `json:"id"`
	Name   string       `json:"name"`
	Base   uint64       `json:"base"`
	Size   units.Size   `json:"size"`
	Blocks []BlockState `json:"blocks"`
}

// BlockState mirrors every vaspace.Block field that carries simulation
// state. Chunk is the owning GPU chunk's id, or -1 when the block holds no
// chunk.
type BlockState struct {
	Residency   int   `json:"res"`
	Chunk       int32 `json:"chunk"`
	GPU         int   `json:"gpu,omitempty"`
	CPUHasPages bool  `json:"cpu_pages,omitempty"`
	CPUPinned   bool  `json:"cpu_pinned,omitempty"`
	CPUStale    bool  `json:"cpu_stale,omitempty"`
	GPUMapped   bool  `json:"gpu_mapped,omitempty"`
	CPUMapped   bool  `json:"cpu_mapped,omitempty"`
	Discarded   bool  `json:"discarded,omitempty"`
	LazyDiscard bool  `json:"lazy,omitempty"`
	Preferred   int   `json:"preferred,omitempty"`
	ReadMostly  bool  `json:"read_mostly,omitempty"`
	Degraded    bool  `json:"degraded,omitempty"`
	RemoteAccs  int   `json:"remote_accs,omitempty"`
	LivePages   int   `json:"live_pages,omitempty"`
}

// DeviceState records one GPU's physical-chunk queues in exact list order
// (head first) — FIFO and LRU positions are simulation state — plus the
// per-chunk fields that survive across steps. Chunks absent from every
// queue are the detached cudaMalloc'd device buffers.
type DeviceState struct {
	Free      []int32      `json:"free,omitempty"`
	Unused    []int32      `json:"unused,omitempty"`
	Used      []int32      `json:"used,omitempty"`
	Discarded []int32      `json:"discarded,omitempty"`
	Reserved  []int32      `json:"reserved,omitempty"`
	Poisoned  []int32      `json:"poisoned,omitempty"`
	Chunks    []ChunkState `json:"chunks,omitempty"`
}

// ChunkState is the non-default per-chunk state for one chunk id; chunks
// not listed have all-zero per-use fields.
type ChunkState struct {
	ID            int32 `json:"id"`
	PreparedPages int   `json:"prepared,omitempty"`
	NeedsUnmap    bool  `json:"needs_unmap,omitempty"`
	DeviceBuffer  bool  `json:"device_buffer,omitempty"`
}

// Digest hashes a set of configuration values into a short hex string for
// Snapshot.Digest. Deterministic across processes; any value change yields
// a different digest.
func Digest(parts ...any) string {
	var b strings.Builder
	for i, p := range parts {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%v", p)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}

// EncodeSnapshot marshals a snapshot and wraps it in the envelope.
func EncodeSnapshot(s *Snapshot) ([]byte, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	return Encode(payload)
}

// DecodeSnapshot validates an envelope and unmarshals its snapshot.
func DecodeSnapshot(blob []byte) (*Snapshot, error) {
	payload, err := Decode(blob)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(payload, &s); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	return &s, nil
}

// Capture snapshots a live context at a step boundary. The context must be
// quiescent in the driver sense: between public driver operations, which is
// where workload step boundaries sit. It refuses configurations whose
// unserialized state would make the resumed run diverge: fault injection
// (injector schedule position), tracing (recorder contents), allocations
// with materialized backing data, and VA spaces with freed allocations
// (the deterministic id/base replay needs an append-only history).
func Capture(ctx *cuda.Context, digest string, step int, start sim.Time) (*Snapshot, error) {
	drv := ctx.Driver()
	if drv.HasFaultInjection() {
		return nil, fmt.Errorf("checkpoint: capture with fault injection attached: injector state is not serializable")
	}
	if drv.Trace() != nil {
		return nil, fmt.Errorf("checkpoint: capture with tracing attached: recorder state is not serializable")
	}
	if step < 0 {
		return nil, fmt.Errorf("checkpoint: capture at negative step %d", step)
	}
	s := &Snapshot{
		Digest: digest,
		Step:   step,
		Start:  start,
		Clock:  ctx.Clock().Now(),
		RNG:    ctx.RNGState(),
		DMA:    engineState(drv.EngineDMA()),
		Peer:   engineState(drv.EnginePeer()),

		HostResident: drv.Host().Resident(),
		HostPinned:   drv.Host().Pinned(),

		DeviceAllocBytes: drv.DeviceAllocBytes(),
		DeviceChunkCount: int(drv.DeviceAllocBytes() / units.BlockSize),

		Counters: drv.Metrics().State(),
	}
	for i := 0; i < ctx.NumGPUs(); i++ {
		s.Computes = append(s.Computes, engineState(ctx.ComputeAt(i)))
	}
	for _, st := range ctx.Streams() {
		s.Streams = append(s.Streams, StreamState{Name: st.Name(), Tail: st.Tail()})
	}

	// Allocations, validated replayable: the restore path re-allocates in
	// recorded order and requires identical ids and bases, which holds iff
	// the capture-time space is an append-only history (no frees).
	wantID, wantVA := 0, uint64(units.BlockSize)
	for _, a := range drv.Space().Live() {
		if a.ID() != wantID || a.Base() != wantVA {
			return nil, fmt.Errorf("checkpoint: VA space is not replayable (alloc %q id %d base %#x, expected id %d base %#x — freed allocations?)",
				a.Name(), a.ID(), a.Base(), wantID, wantVA)
		}
		if a.HasData() {
			return nil, fmt.Errorf("checkpoint: alloc %q carries functional backing data, which is not serialized", a.Name())
		}
		wantID++
		wantVA += uint64(units.AlignUp(a.Size(), units.BlockSize))
		as := AllocState{ID: a.ID(), Name: a.Name(), Base: a.Base(), Size: a.Size()}
		for i := 0; i < a.NumBlocks(); i++ {
			b := a.Block(i)
			bs := BlockState{
				Residency:   int(b.Residency),
				Chunk:       -1,
				GPU:         b.GPUIndex,
				CPUHasPages: b.CPUHasPages,
				CPUPinned:   b.CPUPinned,
				CPUStale:    b.CPUStale,
				GPUMapped:   b.GPUMapped,
				CPUMapped:   b.CPUMapped,
				Discarded:   b.Discarded,
				LazyDiscard: b.LazyDiscard,
				Preferred:   int(b.Preferred),
				ReadMostly:  b.ReadMostly,
				Degraded:    b.Degraded,
				RemoteAccs:  b.RemoteAccesses,
				LivePages:   b.LivePages,
			}
			if b.Chunk != nil {
				bs.Chunk = int32(b.Chunk.ID())
			}
			as.Blocks = append(as.Blocks, bs)
		}
		s.Allocs = append(s.Allocs, as)
	}

	for gpu := 0; gpu < drv.NumGPUs(); gpu++ {
		dev := drv.DeviceAt(gpu)
		ds := DeviceState{
			Free:      dev.AppendQueueIDs(nil, gpudev.QueueFree),
			Unused:    dev.AppendQueueIDs(nil, gpudev.QueueUnused),
			Used:      dev.AppendQueueIDs(nil, gpudev.QueueUsed),
			Discarded: dev.AppendQueueIDs(nil, gpudev.QueueDiscarded),
			Reserved:  dev.AppendQueueIDs(nil, gpudev.QueueReserved),
			Poisoned:  dev.AppendQueueIDs(nil, gpudev.QueuePoisoned),
		}
		dev.EachChunk(func(c *gpudev.Chunk) bool {
			if c.PreparedPages != 0 || c.NeedsUnmapOnReclaim || c.DeviceBuffer {
				ds.Chunks = append(ds.Chunks, ChunkState{
					ID:            int32(c.ID()),
					PreparedPages: c.PreparedPages,
					NeedsUnmap:    c.NeedsUnmapOnReclaim,
					DeviceBuffer:  c.DeviceBuffer,
				})
			}
			return true
		})
		s.Devices = append(s.Devices, ds)
	}
	s.DeviceChunkCount = int(s.DeviceAllocBytes / units.BlockSize)
	return s, nil
}

func engineState(e *sim.Engine) EngineState {
	return EngineState{FreeAt: e.FreeAt(), Busy: e.Busy(), Ops: e.Ops()}
}

// Restored hands the workload back its reconstituted handles, keyed by the
// names it created them with.
type Restored struct {
	Bufs    map[string]*cuda.Buffer
	Streams map[string]*cuda.Stream
}

// Restore reconstitutes a snapshot into a freshly built context (same
// platform configuration the snapshot was captured under — callers compare
// Snapshot.Digest first). On success the context's driver state, engines,
// streams, RNG, and counters are exactly the capture-time state and a full
// sanitizer audit has passed; the workload resumes at Snapshot.Step. On any
// error the context must be discarded — state may be partially applied —
// and the caller restarts from zero with a fresh context. Restore never
// panics on corrupt input: every id and enum is validated before use, and
// any residual invariant violation is caught by the final audit.
func Restore(ctx *cuda.Context, s *Snapshot) (out *Restored, err error) {
	// Belt and braces under fuzzing: validation below should make the
	// driver's internal panic paths unreachable, but a corrupt snapshot
	// must never crash the process, so convert any escape into an error.
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("checkpoint: restore panicked on corrupt snapshot: %v", r)
		}
	}()
	drv := ctx.Driver()
	if drv.HasFaultInjection() || drv.Trace() != nil {
		return nil, fmt.Errorf("checkpoint: restore into a context with fault injection or tracing attached")
	}
	if len(drv.Space().Live()) != 0 || len(ctx.Streams()) != 0 {
		return nil, fmt.Errorf("checkpoint: restore requires a fresh context")
	}
	if s.Step < 0 || s.Clock < 0 || s.Start < 0 {
		return nil, fmt.Errorf("checkpoint: negative step/clock/start (%d/%v/%v)", s.Step, s.Clock, s.Start)
	}
	if len(s.Computes) != ctx.NumGPUs() || len(s.Devices) != drv.NumGPUs() {
		return nil, fmt.Errorf("checkpoint: snapshot has %d computes / %d devices, context has %d GPUs",
			len(s.Computes), len(s.Devices), ctx.NumGPUs())
	}

	// Replay the allocations and verify the deterministic layout reproduced.
	out = &Restored{Bufs: map[string]*cuda.Buffer{}, Streams: map[string]*cuda.Stream{}}
	for _, as := range s.Allocs {
		a, aerr := drv.AllocManaged(as.Name, as.Size)
		if aerr != nil {
			return nil, fmt.Errorf("checkpoint: replaying alloc %q: %w", as.Name, aerr)
		}
		if a.ID() != as.ID || a.Base() != as.Base {
			return nil, fmt.Errorf("checkpoint: alloc %q replayed to id %d base %#x, snapshot says id %d base %#x",
				as.Name, a.ID(), a.Base(), as.ID, as.Base)
		}
		if a.NumBlocks() != len(as.Blocks) {
			return nil, fmt.Errorf("checkpoint: alloc %q has %d blocks, snapshot carries %d",
				as.Name, a.NumBlocks(), len(as.Blocks))
		}
		if _, dup := out.Bufs[as.Name]; dup {
			return nil, fmt.Errorf("checkpoint: duplicate alloc name %q", as.Name)
		}
		out.Bufs[as.Name] = ctx.RestoreBuffer(a)
	}

	// Relink every device's queues, then reapply per-chunk fields.
	for gpu := 0; gpu < drv.NumGPUs(); gpu++ {
		dev := drv.DeviceAt(gpu)
		ds := &s.Devices[gpu]
		if qerr := dev.RestoreQueues(ds.Free, ds.Unused, ds.Used, ds.Discarded, ds.Reserved, ds.Poisoned); qerr != nil {
			return nil, fmt.Errorf("checkpoint: GPU %d: %w", gpu, qerr)
		}
		pagesPerChunk := int(units.BlockSize / units.PageSize)
		for _, cs := range ds.Chunks {
			c, cerr := dev.ChunkByID(cs.ID)
			if cerr != nil {
				return nil, fmt.Errorf("checkpoint: GPU %d: %w", gpu, cerr)
			}
			if cs.PreparedPages < 0 || cs.PreparedPages > pagesPerChunk {
				return nil, fmt.Errorf("checkpoint: GPU %d chunk %d prepared pages %d outside [0,%d]",
					gpu, cs.ID, cs.PreparedPages, pagesPerChunk)
			}
			c.PreparedPages = cs.PreparedPages
			c.NeedsUnmapOnReclaim = cs.NeedsUnmap
			c.DeviceBuffer = cs.DeviceBuffer
		}
	}

	// Reapply block state and wire the chunk↔block back-pointers.
	for _, as := range s.Allocs {
		a := drv.Space().ByID(as.ID)
		for i := range as.Blocks {
			bs := &as.Blocks[i]
			if bs.Residency < int(vaspace.Untouched) || bs.Residency > int(vaspace.GPUResident) {
				return nil, fmt.Errorf("checkpoint: %q block %d residency %d out of range", as.Name, i, bs.Residency)
			}
			if bs.Preferred < int(vaspace.PreferNone) || bs.Preferred > int(vaspace.PreferGPU) {
				return nil, fmt.Errorf("checkpoint: %q block %d preference %d out of range", as.Name, i, bs.Preferred)
			}
			b := a.Block(i)
			b.Residency = vaspace.Residency(bs.Residency)
			b.GPUIndex = bs.GPU
			b.CPUHasPages = bs.CPUHasPages
			b.CPUPinned = bs.CPUPinned
			b.CPUStale = bs.CPUStale
			b.GPUMapped = bs.GPUMapped
			b.CPUMapped = bs.CPUMapped
			b.Discarded = bs.Discarded
			b.LazyDiscard = bs.LazyDiscard
			b.Preferred = vaspace.Preference(bs.Preferred)
			b.ReadMostly = bs.ReadMostly
			b.Degraded = bs.Degraded
			b.RemoteAccesses = bs.RemoteAccs
			b.LivePages = bs.LivePages
			if bs.Chunk >= 0 {
				if bs.GPU < 0 || bs.GPU >= drv.NumGPUs() {
					return nil, fmt.Errorf("checkpoint: %q block %d claims GPU %d of %d", as.Name, i, bs.GPU, drv.NumGPUs())
				}
				c, cerr := drv.DeviceAt(bs.GPU).ChunkByID(bs.Chunk)
				if cerr != nil {
					return nil, fmt.Errorf("checkpoint: %q block %d: %w", as.Name, i, cerr)
				}
				if c.Owner != nil {
					return nil, fmt.Errorf("checkpoint: GPU %d chunk %d claimed by two blocks", bs.GPU, bs.Chunk)
				}
				b.Chunk = c
				c.Owner = b
			}
		}
	}

	// Accounting: host DRAM, device buffers, metrics, timelines.
	if herr := drv.Host().Restore(s.HostResident, s.HostPinned); herr != nil {
		return nil, herr
	}
	if derr := drv.RestoreDeviceAlloc(s.DeviceAllocBytes, s.DeviceChunkCount); derr != nil {
		return nil, derr
	}
	m := drv.Metrics()
	m.Reset()
	m.AddState(s.Counters)
	if eerr := drv.EngineDMA().Restore(s.DMA.FreeAt, s.DMA.Busy, s.DMA.Ops); eerr != nil {
		return nil, eerr
	}
	if eerr := drv.EnginePeer().Restore(s.Peer.FreeAt, s.Peer.Busy, s.Peer.Ops); eerr != nil {
		return nil, eerr
	}
	for i, es := range s.Computes {
		if eerr := ctx.ComputeAt(i).Restore(es.FreeAt, es.Busy, es.Ops); eerr != nil {
			return nil, eerr
		}
	}
	ctx.Clock().WaitUntil(s.Clock)
	ctx.RestoreRNGState(s.RNG)
	for _, ss := range s.Streams {
		if ss.Tail < 0 {
			return nil, fmt.Errorf("checkpoint: stream %q tail %v negative", ss.Name, ss.Tail)
		}
		if _, dup := out.Streams[ss.Name]; dup {
			return nil, fmt.Errorf("checkpoint: duplicate stream name %q", ss.Name)
		}
		out.Streams[ss.Name] = ctx.RestoreStream(ss.Name, ss.Tail)
	}
	drv.PublishResidency()

	// The full sanitizer audit is the restore gate: a snapshot that decoded
	// cleanly but encodes an inconsistent driver state is rejected here,
	// before the first resumed step can observe it.
	if serr := drv.CheckNow(); serr != nil {
		return nil, fmt.Errorf("checkpoint: restored state failed the sanitizer audit: %w", serr)
	}
	return out, nil
}

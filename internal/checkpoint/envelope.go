// Package checkpoint implements deterministic checkpoint/restore for live
// simulations: versioned, fsync'd, self-validating snapshots of the whole
// simulation state — driver block/chunk state, RNG streams, engine and
// stream timelines, metrics counters, and the workload's step cursor —
// captured at step boundaries (the sanitizer-consistent points the driver's
// runctl checkpoints established) and restored into a fresh context with a
// full sanitizer audit before the first resumed step.
//
// The design constraint is the repo's core invariant: byte-identical output.
// A run that is interrupted after step k and resumed from a snapshot must
// produce exactly the bytes an uninterrupted run produces, including every
// metrics counter and the simulated runtime. Everything that can influence
// a later step is therefore part of the snapshot; everything that cannot
// (sanitizer sampling position, scratch buffers) is deliberately excluded.
//
// Torn or corrupt snapshots are detected, never resumed: the envelope
// carries a magic, a format version, a length, and a SHA-256 checksum over
// the payload, and Restore validates every id and enum before touching
// driver state, finishing with the driver's own full invariant sweep
// (core.Driver.CheckNow). A snapshot that fails any of those checks yields
// an error — the caller falls back to restart-from-zero.
package checkpoint

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
)

// Envelope layout, all integers little-endian:
//
//	[8]  magic "UVMCKPT\n"
//	[4]  format version
//	[8]  payload length
//	[32] SHA-256 of the payload
//	[n]  payload (JSON-encoded Snapshot)
const (
	magic      = "UVMCKPT\n"
	version    = 1
	headerSize = len(magic) + 4 + 8 + sha256.Size

	// MaxPayload bounds the payload length a decoder will accept; a torn or
	// hostile length field can therefore never drive an allocation larger
	// than this. Real snapshots of the paper's workloads are well under a
	// megabyte.
	MaxPayload = 64 << 20
)

// Encode wraps a payload in the checkpoint envelope.
func Encode(payload []byte) ([]byte, error) {
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("checkpoint: payload %d bytes exceeds cap %d", len(payload), MaxPayload)
	}
	out := make([]byte, 0, headerSize+len(payload))
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	return append(out, payload...), nil
}

// Decode validates an envelope and returns its payload. Every failure mode
// of a torn tail, bit flip, version skew, or oversized length field maps to
// an error here; a nil error guarantees the payload is the exact byte string
// that was encoded.
func Decode(blob []byte) ([]byte, error) {
	if len(blob) < headerSize {
		return nil, fmt.Errorf("checkpoint: %d bytes is shorter than the %d-byte header (torn?)", len(blob), headerSize)
	}
	if string(blob[:len(magic)]) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", blob[:len(magic)])
	}
	rest := blob[len(magic):]
	v := binary.LittleEndian.Uint32(rest)
	if v != version {
		return nil, fmt.Errorf("checkpoint: format version %d, this build reads %d", v, version)
	}
	n := binary.LittleEndian.Uint64(rest[4:])
	if n > MaxPayload {
		return nil, fmt.Errorf("checkpoint: payload length %d exceeds cap %d", n, MaxPayload)
	}
	var sum [sha256.Size]byte
	copy(sum[:], rest[12:])
	payload := blob[headerSize:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("checkpoint: payload is %d bytes, header claims %d (torn?)", len(payload), n)
	}
	if got := sha256.Sum256(payload); got != sum {
		return nil, fmt.Errorf("checkpoint: payload checksum mismatch (corrupt)")
	}
	return payload, nil
}

// WriteFile durably writes an encoded checkpoint blob to path: the blob is
// written to a temporary file in the same directory, fsync'd, closed, and
// renamed over path, and the directory is fsync'd — so a crash at any point
// leaves either the previous checkpoint or the new one, never a torn mix.
// The returned error is load-bearing crash-safety state (errsink enforces
// that callers consume it): an unsaved checkpoint silently re-runs work
// after the next crash.
func WriteFile(path string, blob []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(blob); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("checkpoint: write %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("checkpoint: fsync %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: open dir for fsync: %w", err)
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return fmt.Errorf("checkpoint: fsync dir %s: %w", dir, err)
	}
	return d.Close()
}

// ReadFile reads an encoded checkpoint blob from path. The blob is returned
// as-is (still enveloped); Decode/DecodeSnapshot validate it. A missing file
// returns the underlying fs error (check with os.IsNotExist).
func ReadFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}

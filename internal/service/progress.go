// progress.go streams a job's live progress as Server-Sent Events:
// GET /v1/jobs/{id}/progress holds the connection open and emits a JSON
// event whenever the run's observed state advances, fed by the progress
// snapshots runctl.Control publishes at driver checkpoints. The stream ends
// with a "done" event carrying the job's terminal status, so a client can
// follow a run from submission to outcome without polling the job resource.
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"uvmdiscard/internal/sim"
)

// progressPollInterval is how often the stream re-reads the job's state.
// The run publishes asynchronously (atomic snapshots at checkpoint stride),
// so polling here costs two atomic loads per tick, not a driver stall.
const progressPollInterval = 50 * time.Millisecond

// progressEvent is the JSON payload of one SSE "progress" event.
type progressEvent struct {
	// State is the job state at emission time.
	State jobState `json:"state"`
	// Op is the driver operation at the run's last observed checkpoint.
	Op string `json:"op,omitempty"`
	// SimTimeUS is the run's simulated clock in microseconds.
	SimTimeUS int64 `json:"sim_time_us"`
	// SimTime is the same clock, human-formatted.
	SimTime string `json:"sim_time,omitempty"`
	// Checks counts driver checkpoints the run has crossed.
	Checks uint64 `json:"checks"`
	// Finished counts completed batch experiments (batch jobs only).
	Finished int `json:"finished,omitempty"`
	// Resumed counts journal-resumed batch results (batch jobs only).
	Resumed int `json:"resumed,omitempty"`
}

// observe builds the event for the job's current state; the bool reports
// whether the underlying run has published any progress yet.
func (j *job) observe() (progressEvent, bool) {
	st := j.status()
	ev := progressEvent{
		State:    st.State,
		Finished: j.finishedRuns(),
		Resumed:  st.Resumed,
	}
	p, ok := j.currentControl().Progress()
	if ok {
		ev.Op = p.Op
		ev.SimTimeUS = int64(p.SimTime / sim.Microsecond)
		ev.SimTime = p.SimTime.String()
		ev.Checks = p.Checks
	}
	return ev, ok
}

// handleJobProgress serves the SSE stream. Each distinct observation is one
// "progress" event; a terminal job emits a final "done" event with its full
// status and closes. The handler exits promptly on client disconnect.
func (s *Server) handleJobProgress(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, map[string]string{
			"error": "streaming unsupported by this connection",
		})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	emit := func(event string, v any) {
		data, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		fl.Flush()
	}

	var last progressEvent
	sent := false
	ticker := time.NewTicker(progressPollInterval)
	defer ticker.Stop()
	for {
		ev, _ := j.observe()
		if !sent || ev != last {
			emit("progress", ev)
			last, sent = ev, true
		}
		if j.terminal() {
			emit("done", j.status())
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-j.done:
			// Terminal state just landed: loop once more to emit it.
		case <-ticker.C:
		}
	}
}

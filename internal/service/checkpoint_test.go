package service

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The service-level checkpoint tests: a fir run submitted with a checkpoint
// name persists fsync'd snapshots under DataDir at every step boundary, an
// interrupted run's re-submission resumes from the last one byte-identical
// to an uninterrupted run, a corrupt file is rejected into a clean
// from-zero rerun, and the retention policy bounds the data dir alongside
// the job table.
//
// Interruption is deterministic: quick fir spends ~133ms of simulated time
// generating the host input, then issues all 8 windows asynchronously and
// drains them in a final synchronize that ends near 160ms. A 140ms sim
// budget therefore always stops the run inside that drain — after the step
// boundaries have durably snapshotted, before the run can finish.

const interruptBudgetMS = 140

func ckptFile(dir, name string) string { return filepath.Join(dir, name+".ckpt") }

func TestRunCheckpointResumeAfterInterruption(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestService(t, Config{Workers: 1, DataDir: dir})

	// Ground truth: the same run, uninterrupted, without checkpointing.
	_, ref := post(t, ts, "/v1/runs", RunRequest{Workload: "fir", Quick: true})
	refDone := waitState(t, ts, ref.ID, stateDone)

	// Interrupted attempt: the sim budget stops it mid-job, leaving the
	// last step boundary's snapshot durably on disk.
	_, j1 := post(t, ts, "/v1/runs", RunRequest{
		Workload: "fir", Quick: true, Checkpoint: "r1", SimBudgetMS: interruptBudgetMS})
	waitState(t, ts, j1.ID, stateBudget)
	if _, err := os.Stat(ckptFile(dir, "r1")); err != nil {
		t.Fatalf("interrupted run left no snapshot: %v", err)
	}
	if n := s.Metrics().CheckpointsSaved.Load(); n < 1 {
		t.Fatalf("CheckpointsSaved = %d, want >= 1", n)
	}

	// Re-submission under the same name resumes and must reproduce the
	// uninterrupted run's bytes exactly.
	_, j2 := post(t, ts, "/v1/runs", RunRequest{Workload: "fir", Quick: true, Checkpoint: "r1"})
	got := waitState(t, ts, j2.ID, stateDone)
	if got.Resumed != 1 {
		t.Errorf("resumed = %d, want 1", got.Resumed)
	}
	if got.Output != refDone.Output {
		t.Errorf("resumed run output diverged from uninterrupted run\ngot:\n%s\nwant:\n%s",
			got.Output, refDone.Output)
	}
	// A clean completion reclaims the snapshot file.
	if _, err := os.Stat(ckptFile(dir, "r1")); !os.IsNotExist(err) {
		t.Errorf("finished run's snapshot not deleted (stat err %v)", err)
	}
}

func TestRunCheckpointCorruptFallsBackToFreshRun(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestService(t, Config{Workers: 1, DataDir: dir})

	_, ref := post(t, ts, "/v1/runs", RunRequest{Workload: "fir", Quick: true})
	refDone := waitState(t, ts, ref.ID, stateDone)

	_, j1 := post(t, ts, "/v1/runs", RunRequest{
		Workload: "fir", Quick: true, Checkpoint: "c1", SimBudgetMS: interruptBudgetMS})
	waitState(t, ts, j1.ID, stateBudget)

	// Disk rot: flip one payload bit in the snapshot file.
	path := ckptFile(dir, "c1")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	blob[len(blob)-1] ^= 0x20
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatalf("write corrupt snapshot: %v", err)
	}

	_, j2 := post(t, ts, "/v1/runs", RunRequest{Workload: "fir", Quick: true, Checkpoint: "c1"})
	got := waitState(t, ts, j2.ID, stateDone)
	if got.Resumed != 0 {
		t.Errorf("corrupt snapshot was resumed (resumed = %d)", got.Resumed)
	}
	if n := s.Metrics().CheckpointsCorrupt.Load(); n != 1 {
		t.Errorf("CheckpointsCorrupt = %d, want 1", n)
	}
	if got.Output != refDone.Output {
		t.Errorf("fallback run output diverged from uninterrupted run\ngot:\n%s\nwant:\n%s",
			got.Output, refDone.Output)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("finished run's snapshot not deleted (stat err %v)", err)
	}
}

// Retention must bound the data dir, not just the job table: evicting a
// terminal job deletes its snapshot file (unless a retained resubmission
// still references it), so interrupted-and-abandoned runs cannot grow the
// directory forever.
func TestCheckpointDataDirBoundedByRetention(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestService(t, Config{Workers: 1, RetainJobs: 2, DataDir: dir})

	names := []string{"b1", "b2", "b3", "b4"}
	for _, name := range names {
		_, j := post(t, ts, "/v1/runs", RunRequest{
			Workload: "fir", Quick: true, Checkpoint: name, SimBudgetMS: interruptBudgetMS})
		waitState(t, ts, j.ID, stateBudget)
		if _, err := os.Stat(ckptFile(dir, name)); err != nil {
			t.Fatalf("run %s left no snapshot: %v", name, err)
		}
	}

	// RetainJobs=2: b1 and b2 were evicted as b3/b4 completed, and their
	// snapshots must have gone with them.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var left []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".ckpt") {
			left = append(left, e.Name())
		}
	}
	if len(left) != 2 {
		t.Fatalf("data dir holds %d snapshots %v, want exactly 2 (RetainJobs)", len(left), left)
	}
	for _, name := range []string{"b3.ckpt", "b4.ckpt"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("retained job's snapshot %s missing: %v", name, err)
		}
	}
}

func TestCheckpointRequestValidation(t *testing.T) {
	// Checkpointing needs a data dir.
	_, tsNoDir := newTestService(t, Config{Workers: 1})
	if code, _ := post(t, tsNoDir, "/v1/runs", RunRequest{
		Workload: "fir", Quick: true, Checkpoint: "x"}); code != http.StatusBadRequest {
		t.Errorf("checkpoint without data dir accepted with %d", code)
	}

	_, ts := newTestService(t, Config{Workers: 1, DataDir: t.TempDir()})
	for _, body := range []RunRequest{
		{Workload: "graph", Quick: true, Checkpoint: "x"},                  // fir only
		{Workload: "fir", Quick: true, Checkpoint: "../escape"},            // path-unsafe
		{Workload: "fir", Quick: true, Checkpoint: "x", Faults: "dma=0.5"}, // nondeterministic vs snapshot digest
	} {
		if code, _ := post(t, ts, "/v1/runs", body); code != http.StatusBadRequest {
			t.Errorf("%+v accepted with %d", body, code)
		}
	}
}

package service

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"uvmdiscard/internal/experiments"
	"uvmdiscard/internal/faultinject"
	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/runctl"
	"uvmdiscard/internal/sim"
)

type jobKind string

const (
	jobWorkload jobKind = "workload"
	jobBatch    jobKind = "batch"
)

// jobState is the job lifecycle. Interrupted outcomes are first-class
// states — an operator reading the job list can tell a run the watchdog
// killed from one that genuinely failed.
type jobState string

const (
	stateQueued   jobState = "queued"
	stateRunning  jobState = "running"
	stateDone     jobState = "done"
	stateFailed   jobState = "failed"
	stateCanceled jobState = "canceled"
	stateDeadline jobState = "deadline_expired"
	stateBudget   jobState = "budget_expired"
	stateShed     jobState = "shed"
)

// RunRequest submits one workload simulation.
type RunRequest struct {
	// Workload is fir | radixsort | hashjoin | graph | spin. "spin" is a
	// deliberately unterminated simulation used to exercise the watchdog:
	// it only ever ends by cancellation, deadline, or sim budget.
	Workload string `json:"workload"`
	// System is the memory-management system under test (UVM-opt,
	// UvmDiscard, UvmDiscardLazy; workload-dependent). Defaults to UVM-opt.
	System string `json:"system"`
	// Ovsp is the oversubscription percent (0 = fits).
	Ovsp int `json:"ovsp"`
	// Quick scales the problem down to smoke-test size.
	Quick bool `json:"quick"`
	// Faults is a fault-injection spec in the CLI grammar (see
	// internal/faultinject.ParseSpec); empty injects nothing.
	Faults string `json:"faults"`
	// WallBudgetMS caps this run's host wall time in milliseconds; 0 uses
	// the server default. The cap cannot be disabled, only moved.
	WallBudgetMS int64 `json:"wall_budget_ms"`
	// SimBudgetMS caps this run's simulated time in milliseconds of sim
	// time; 0 uses the server default.
	SimBudgetMS int64 `json:"sim_budget_ms"`
	// Checkpoint names this run's crash-survivable snapshot file (a
	// path-safe slug, fir only). The run persists a snapshot at every step
	// boundary; a re-submitted run with the same name resumes from the last
	// one — byte-identical to an uninterrupted run — and a clean completion
	// deletes the file. Requires the server to run with a data directory.
	Checkpoint string `json:"checkpoint"`

	faults *faultinject.Config
}

func (r *RunRequest) validate() error {
	switch r.Workload {
	case "fir", "radixsort", "hashjoin", "graph", "spin":
	default:
		return fmt.Errorf("unknown workload %q (want fir, radixsort, hashjoin, graph, or spin)", r.Workload)
	}
	if _, err := parseSystem(r.System); err != nil {
		return err
	}
	if r.Ovsp < 0 || r.Ovsp > 1000 {
		return fmt.Errorf("ovsp %d outside [0,1000]", r.Ovsp)
	}
	if r.WallBudgetMS < 0 || r.SimBudgetMS < 0 {
		return fmt.Errorf("budgets must be >= 0")
	}
	if r.Faults != "" {
		cfg, err := faultinject.ParseSpec(r.Faults)
		if err != nil {
			return err
		}
		r.faults = cfg
	}
	if r.Checkpoint != "" {
		if r.Workload != "fir" {
			return fmt.Errorf("checkpointing is supported for the fir workload only (got %q)", r.Workload)
		}
		if !journalName.MatchString(r.Checkpoint) {
			return fmt.Errorf("checkpoint name %q: want 1-128 chars of [A-Za-z0-9._-]", r.Checkpoint)
		}
		if r.Faults != "" {
			return fmt.Errorf("checkpointing cannot be combined with fault injection")
		}
	}
	return nil
}

// BatchRequest submits an experiment batch.
type BatchRequest struct {
	// Experiments selects artifact IDs or names; empty means the full set.
	Experiments []string `json:"experiments"`
	// Quick runs the scaled-down problem sizes.
	Quick bool `json:"quick"`
	// Parallelism is the batch's internal worker count; <1 means 1, which
	// is also the deterministic setting journal resume is verified against.
	Parallelism int `json:"parallelism"`
	// Journal names this batch's crash-safe journal (a path-safe slug). A
	// re-submitted batch with the same journal name and Quick flag resumes:
	// completed experiments are served from disk, byte-identical. Requires
	// the server to run with a journal directory.
	Journal string `json:"journal"`
	// WallBudgetMS / SimBudgetMS are per-run budgets as in RunRequest.
	WallBudgetMS int64 `json:"wall_budget_ms"`
	SimBudgetMS  int64 `json:"sim_budget_ms"`

	selected []experiments.Experiment
}

func (b *BatchRequest) validate(cfg Config) error {
	if len(b.Experiments) == 0 {
		b.selected = experiments.All()
	} else {
		for _, id := range b.Experiments {
			e, ok := experiments.Lookup(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			b.selected = append(b.selected, e)
		}
	}
	if b.Journal != "" {
		if cfg.JournalDir == "" {
			return fmt.Errorf("journaling disabled: server has no journal directory")
		}
		if !journalName.MatchString(b.Journal) {
			return fmt.Errorf("journal name %q: want 1-128 chars of [A-Za-z0-9._-]", b.Journal)
		}
	}
	if b.WallBudgetMS < 0 || b.SimBudgetMS < 0 {
		return fmt.Errorf("budgets must be >= 0")
	}
	return nil
}

type job struct {
	id    string
	kind  jobKind
	run   RunRequest
	batch *BatchRequest

	ctx    context.Context
	cancel context.CancelFunc

	// wall/simBudget are resolved against the server defaults at submit
	// time, so the job record shows what will actually be enforced.
	wall time.Duration
	simB sim.Time
	// ckpt is the run's snapshot file path (workload jobs submitted with a
	// checkpoint name); eviction from the retention table reclaims it.
	ckpt string

	mu      sync.Mutex
	state   jobState
	output  string
	errMsg  string
	resumed int
	done    chan struct{}
	// ctl is the most recently armed run control — the handle the progress
	// stream reads sim-time advance through. Workload jobs arm exactly one;
	// batch jobs re-arm per experiment (via experiments.Options.OnControl).
	ctl *runctl.Control
	// col is the run's live simulation collector (workload jobs only); the
	// /metrics exporter snapshots it while the run executes.
	col *metrics.Collector
	// finished counts batch experiments completed so far, for progress.
	finished int

	// testGate, when non-nil (tests only), parks the worker after the job
	// reaches the running state until the channel is closed. It makes
	// "in-flight while others queue" scenarios deterministic instead of
	// racing against quick-mode run times.
	testGate chan struct{}
}

// newJob resolves budgets and builds the job's cancellation scope. The
// scope derives from context.Background(), not the HTTP request: the
// submitting connection closing must not kill the run — only DELETE,
// budgets, or shutdown policy do.
func (s *Server) newJob(kind jobKind, run RunRequest, batch *BatchRequest) *job {
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:     "job-" + strconv.FormatInt(s.nextID.Add(1), 10),
		kind:   kind,
		run:    run,
		batch:  batch,
		ctx:    ctx,
		cancel: cancel,
		state:  stateQueued,
		done:   make(chan struct{}),
	}
	wallMS, simMS := run.WallBudgetMS, run.SimBudgetMS
	if batch != nil {
		wallMS, simMS = batch.WallBudgetMS, batch.SimBudgetMS
	}
	j.wall = s.cfg.DefaultWallBudget
	if wallMS > 0 {
		j.wall = time.Duration(wallMS) * time.Millisecond
	}
	j.simB = s.cfg.DefaultSimBudget
	if simMS > 0 {
		j.simB = sim.Time(simMS) * sim.Millisecond
	}
	if kind == jobWorkload && run.Checkpoint != "" {
		j.ckpt = s.checkpointPath(run.Checkpoint)
	}
	return j
}

// control builds the job's fresh per-run watchdog. Called once per
// simulation run, never shared (runctl.Control is single-threaded state).
// The control is remembered as the job's current one so the progress
// stream can observe it (runctl.Control.Progress is the one cross-
// goroutine-safe surface of a control).
func (j *job) control() *runctl.Control {
	c := runctl.New(j.ctx, j.wall, j.simB)
	j.setControl(c)
	return c
}

func (j *job) setControl(c *runctl.Control) {
	j.mu.Lock()
	j.ctl = c
	j.mu.Unlock()
}

func (j *job) currentControl() *runctl.Control {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ctl
}

func (j *job) setCollector(c *metrics.Collector) {
	j.mu.Lock()
	j.col = c
	j.mu.Unlock()
}

func (j *job) collector() *metrics.Collector {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.col
}

func (j *job) addFinished(n int) {
	j.mu.Lock()
	j.finished += n
	j.mu.Unlock()
}

func (j *job) finishedRuns() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finished
}

// terminal reports whether the job has reached a sticky terminal state —
// the retention policy may only evict terminal jobs.
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case stateDone, stateFailed, stateCanceled, stateDeadline, stateBudget, stateShed:
		return true
	}
	return false
}

func (j *job) setState(st jobState) {
	j.mu.Lock()
	j.state = st
	j.mu.Unlock()
}

func (j *job) finish(st jobState, output, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == stateDone || j.state == stateFailed || j.state == stateCanceled ||
		j.state == stateDeadline || j.state == stateBudget || j.state == stateShed {
		return // terminal states are sticky
	}
	j.state = st
	j.output = output
	j.errMsg = errMsg
	close(j.done)
}

func (j *job) addResumed(n int) {
	j.mu.Lock()
	j.resumed += n
	j.mu.Unlock()
}

// jobStatus is the JSON view of a job.
type jobStatus struct {
	ID      string   `json:"id"`
	Kind    jobKind  `json:"kind"`
	State   jobState `json:"state"`
	Output  string   `json:"output,omitempty"`
	Error   string   `json:"error,omitempty"`
	Resumed int      `json:"resumed,omitempty"`
}

func (j *job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobStatus{
		ID:      j.id,
		Kind:    j.kind,
		State:   j.state,
		Output:  j.output,
		Error:   j.errMsg,
		Resumed: j.resumed,
	}
}

// classify maps a run's error to its terminal state: interruptions are
// structured outcomes, anything else is a failure.
func classify(err error) (jobState, string) {
	if err == nil {
		return stateDone, ""
	}
	if i := runctl.AsInterrupt(err); i != nil {
		switch i.Reason {
		case runctl.Canceled:
			return stateCanceled, err.Error()
		case runctl.WallDeadline:
			return stateDeadline, err.Error()
		case runctl.SimBudget:
			return stateBudget, err.Error()
		}
	}
	if errors.Is(err, context.Canceled) {
		return stateCanceled, err.Error()
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return stateDeadline, err.Error()
	}
	return stateFailed, err.Error()
}

package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"uvmdiscard/internal/experiments"
)

func newTestService(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (int, jobStatus) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var js jobStatus
	_ = json.NewDecoder(resp.Body).Decode(&js)
	return resp.StatusCode, js
}

func getJob(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var js jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatal(err)
	}
	return js
}

// waitState polls a job until it reaches one of the wanted states; the
// deadline is iteration-bounded so the test fails loudly instead of
// hanging.
func waitState(t *testing.T, ts *httptest.Server, id string, want ...jobState) jobStatus {
	t.Helper()
	for i := 0; i < 6000; i++ {
		js := getJob(t, ts, id)
		for _, w := range want {
			if js.State == w {
				return js
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %v (last: %+v)", id, want, getJob(t, ts, id))
	return jobStatus{}
}

// A full queue sheds with 503 + Retry-After instead of blocking, and the
// shed is counted. One worker is pinned by a spin run; the one-slot queue
// is filled; the third submit must bounce.
func TestQueueFullShedsWith503(t *testing.T) {
	s, ts := newTestService(t, Config{Workers: 1, QueueDepth: 1})
	_, spin := post(t, ts, "/v1/runs", RunRequest{Workload: "spin"})
	waitState(t, ts, spin.ID, stateRunning)
	code, queued := post(t, ts, "/v1/runs", RunRequest{Workload: "fir", Quick: true})
	if code != http.StatusAccepted {
		t.Fatalf("queue slot submit: %d", code)
	}

	raw, _ := json.Marshal(RunRequest{Workload: "fir", Quick: true})
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overload submit: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if got := s.Metrics().Shed.Load(); got != 1 {
		t.Errorf("Shed = %d, want 1", got)
	}

	// Unpin the worker: the spin is canceled (a structured outcome, counted)
	// and the queued run completes.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+spin.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts, spin.ID, stateCanceled)
	done := waitState(t, ts, queued.ID, stateDone)
	if done.Output == "" || !strings.Contains(done.Output, "traffic_gb") {
		t.Errorf("completed run has no summary: %+v", done)
	}
	if got := s.Metrics().Canceled.Load(); got != 1 {
		t.Errorf("Canceled = %d, want 1", got)
	}
	if got := s.Metrics().Completed.Load(); got != 1 {
		t.Errorf("Completed = %d, want 1", got)
	}
}

// The watchdog kills a runaway simulation at its wall deadline and reports
// a structured deadline_expired outcome, never a panic or a hung worker.
func TestWallDeadlineKillsRunawayRun(t *testing.T) {
	s, ts := newTestService(t, Config{Workers: 1})
	_, js := post(t, ts, "/v1/runs", RunRequest{Workload: "spin", WallBudgetMS: 250})
	got := waitState(t, ts, js.ID, stateDeadline)
	if !strings.Contains(got.Error, "wall-deadline") {
		t.Errorf("deadline error not structured: %+v", got)
	}
	if n := s.Metrics().DeadlineExpired.Load(); n != 1 {
		t.Errorf("DeadlineExpired = %d, want 1", n)
	}
}

// A sim-time budget stops a run deterministically in simulated time.
func TestSimBudgetStopsRun(t *testing.T) {
	s, ts := newTestService(t, Config{Workers: 1})
	_, js := post(t, ts, "/v1/runs", RunRequest{Workload: "spin", SimBudgetMS: 5})
	got := waitState(t, ts, js.ID, stateBudget)
	if !strings.Contains(got.Error, "sim-budget") {
		t.Errorf("budget error not structured: %+v", got)
	}
	if n := s.Metrics().BudgetExpired.Load(); n != 1 {
		t.Errorf("BudgetExpired = %d, want 1", n)
	}
}

// Graceful shutdown: the in-flight run completes and its result is kept;
// queued runs are shed and reported; later submits bounce with 503.
func TestGracefulShutdownDrainsInFlightShedsQueued(t *testing.T) {
	s, ts := newTestService(t, Config{Workers: 1, QueueDepth: 8})

	// The in-flight job is a real T4 quick batch, gated so the worker stays
	// parked on it deterministically while the queued jobs pile up behind it.
	b := BatchRequest{Experiments: []string{"T4"}, Quick: true}
	if err := b.validate(s.cfg); err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	inflight := s.newJob(jobBatch, RunRequest{}, &b)
	inflight.testGate = gate
	if !s.admit(inflight) {
		t.Fatal("admit in-flight job")
	}
	waitState(t, ts, inflight.id, stateRunning)
	_, q1 := post(t, ts, "/v1/runs", RunRequest{Workload: "fir", Quick: true})
	_, q2 := post(t, ts, "/v1/runs", RunRequest{Workload: "graph", Quick: true})

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- s.Shutdown(ctx) }()

	// Shutdown sheds the queue immediately, while the in-flight run is still
	// parked on its gate.
	waitState(t, ts, q1.ID, stateShed)
	waitState(t, ts, q2.ID, stateShed)
	close(gate)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful drain failed: %v", err)
	}
	if got := getJob(t, ts, inflight.id); got.State != stateDone || got.Output == "" {
		t.Errorf("in-flight batch did not complete: %+v", got)
	}
	for _, id := range []string{q1.ID, q2.ID} {
		if got := getJob(t, ts, id); got.State != stateShed {
			t.Errorf("queued job %s not shed: %+v", id, got)
		}
	}
	if n := s.Metrics().Shed.Load(); n != 2 {
		t.Errorf("Shed = %d, want 2", n)
	}

	// The server is draining: health reports it and submits shed.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after shutdown: %d, want 503", resp.StatusCode)
	}
	code, _ := post(t, ts, "/v1/runs", RunRequest{Workload: "fir", Quick: true})
	if code != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown: %d, want 503", code)
	}
}

// When the drain window expires, in-flight runs are canceled through their
// controls — the shutdown still converges, with a structured outcome.
func TestShutdownDeadlineCancelsInFlight(t *testing.T) {
	s, ts := newTestService(t, Config{Workers: 1})
	_, spin := post(t, ts, "/v1/runs", RunRequest{Workload: "spin"})
	waitState(t, ts, spin.ID, stateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("shutdown of a spinning run reported a clean drain")
	}
	if got := getJob(t, ts, spin.ID); got.State != stateCanceled {
		t.Errorf("spinning run not canceled by drain deadline: %+v", got)
	}
}

// DELETE on a still-queued job cancels it before it ever runs.
func TestCancelQueuedJobNeverRuns(t *testing.T) {
	s, ts := newTestService(t, Config{Workers: 1, QueueDepth: 2})
	_, spin := post(t, ts, "/v1/runs", RunRequest{Workload: "spin"})
	waitState(t, ts, spin.ID, stateRunning)
	_, queued := post(t, ts, "/v1/runs", RunRequest{Workload: "fir", Quick: true})

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	// Unpin the worker so it dequeues the canceled job.
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+spin.ID, nil)
	if _, err := http.DefaultClient.Do(req2); err != nil {
		t.Fatal(err)
	}
	got := waitState(t, ts, queued.ID, stateCanceled)
	if !strings.Contains(got.Error, "queued") {
		t.Errorf("canceled-while-queued not reported as such: %+v", got)
	}
	if n := s.Metrics().Canceled.Load(); n != 2 {
		t.Errorf("Canceled = %d, want 2 (spin + queued)", n)
	}
}

// A panicking job fails itself, ticks the panic counter, and leaves the
// worker alive for the next job.
func TestJobPanicIsIsolated(t *testing.T) {
	s, ts := newTestService(t, Config{Workers: 1})
	// A batch job with no batch payload dereferences nil inside the worker —
	// a stand-in for any simulation bug that panics mid-run.
	bad := s.newJob(jobBatch, RunRequest{}, nil)
	if !s.admit(bad) {
		t.Fatal("admit failed")
	}
	got := waitState(t, ts, bad.id, stateFailed)
	if !strings.Contains(got.Error, "panic") {
		t.Errorf("panic not reported on the job: %+v", got)
	}
	if n := s.Metrics().Panics.Load(); n != 1 {
		t.Errorf("Panics = %d, want 1", n)
	}
	// The worker survived: the next job completes.
	_, next := post(t, ts, "/v1/runs", RunRequest{Workload: "fir", Quick: true})
	waitState(t, ts, next.ID, stateDone)
}

// Invalid requests are rejected at the door with one-line errors.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1})
	for _, body := range []RunRequest{
		{Workload: "warp-drive"},
		{Workload: "fir", System: "magic"},
		{Workload: "fir", Faults: "dma=NaN"},
		{Workload: "fir", WallBudgetMS: -1},
	} {
		if code, _ := post(t, ts, "/v1/runs", body); code != http.StatusBadRequest {
			t.Errorf("%+v accepted with %d", body, code)
		}
	}
	if code, _ := post(t, ts, "/v1/batches", BatchRequest{Experiments: []string{"T99"}}); code != http.StatusBadRequest {
		t.Errorf("unknown experiment accepted with %d", code)
	}
	// Journal requested but journaling disabled.
	if code, _ := post(t, ts, "/v1/batches", BatchRequest{Experiments: []string{"T4"}, Journal: "x"}); code != http.StatusBadRequest {
		t.Errorf("journal without journal-dir accepted with %d", code)
	}
}

// In-process resume: a batch journaled under a name is skipped when a
// superset batch reuses the journal, and the merged output is byte-
// identical to an uninterrupted run of the full selection.
func TestBatchJournalResume(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestService(t, Config{Workers: 1, JournalDir: dir})

	_, first := post(t, ts, "/v1/batches", BatchRequest{
		Experiments: []string{"T4"}, Quick: true, Journal: "resume"})
	waitState(t, ts, first.ID, stateDone)

	_, second := post(t, ts, "/v1/batches", BatchRequest{
		Experiments: []string{"T4", "T6"}, Quick: true, Journal: "resume"})
	got := waitState(t, ts, second.ID, stateDone)
	if got.Resumed != 1 {
		t.Errorf("resumed %d experiments, want 1", got.Resumed)
	}
	if n := s.Metrics().Resumed.Load(); n != 1 {
		t.Errorf("Resumed counter = %d, want 1", n)
	}

	want := renderSelection(t, "T4", "T6")
	if got.Output != want {
		t.Errorf("resumed batch output differs from uninterrupted run:\n--- got ---\n%s--- want ---\n%s",
			got.Output, want)
	}
}

func renderSelection(t *testing.T, ids ...string) string {
	t.Helper()
	var sel []experiments.Experiment
	for _, id := range ids {
		e, ok := experiments.Lookup(id)
		if !ok {
			t.Fatalf("no experiment %s", id)
		}
		sel = append(sel, e)
	}
	results := experiments.RunAll(nil, sel, experiments.Options{Quick: true}, 1, nil)
	var b strings.Builder
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Experiment.ID, r.Err)
		}
		b.WriteString(r.Table.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Sanity: the status endpoints answer.
func TestStatusEndpoints(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1})
	for _, path := range []string{"/healthz", "/v1/metrics", "/v1/experiments", "/v1/jobs"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: %d", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: %d, want 404", resp.StatusCode)
	}
}

package service

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"uvmdiscard/internal/checkpoint"
	"uvmdiscard/internal/core"
	"uvmdiscard/internal/cuda"
	"uvmdiscard/internal/experiments"
	"uvmdiscard/internal/gpudev"
	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/pcie"
	"uvmdiscard/internal/runctl"
	"uvmdiscard/internal/sim"
	"uvmdiscard/internal/units"
	"uvmdiscard/internal/workloads"
	"uvmdiscard/internal/workloads/fir"
	"uvmdiscard/internal/workloads/graph"
	"uvmdiscard/internal/workloads/hashjoin"
	"uvmdiscard/internal/workloads/radixsort"
)

func parseSystem(name string) (workloads.System, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "uvm-opt", "uvmopt":
		return workloads.UVMOpt, nil
	case "uvmdiscard", "discard":
		return workloads.UvmDiscard, nil
	case "uvmdiscardlazy", "lazy":
		return workloads.UvmDiscardLazy, nil
	case "no-uvm", "nouvm":
		return workloads.NoUVM, nil
	case "pytorch-lms", "lms":
		return workloads.PyTorchLMS, nil
	default:
		return 0, fmt.Errorf("unknown system %q", name)
	}
}

// platformFor builds the one-run platform: fresh control (the job's ctx +
// budgets), fresh fault schedule reference, PCIe-4, and the job's live
// metrics collector so the /metrics exporter can watch the run.
func platformFor(req RunRequest, gpu gpudev.Profile, j *job) workloads.Platform {
	return workloads.Platform{
		GPU:            gpu,
		Gen:            pcie.Gen4,
		OversubPercent: req.Ovsp,
		Faults:         req.faults,
		Control:        j.control(),
		Metrics:        j.collector(),
	}
}

// runSummary is the JSON a finished single run reports.
type runSummary struct {
	Workload  string  `json:"workload"`
	System    string  `json:"system"`
	Ovsp      int     `json:"ovsp"`
	Runtime   string  `json:"runtime"`
	TrafficGB float64 `json:"traffic_gb"`
	H2DGB     float64 `json:"h2d_gb"`
	D2HGB     float64 `json:"d2h_gb"`
	SavedGB   float64 `json:"saved_gb"`
}

func (s *Server) runWorkloadJob(j *job) (string, error) {
	req := j.run
	sys, err := parseSystem(req.System)
	if err != nil {
		return "", err
	}
	// Register the run's collector with the exporter for its lifetime; on
	// completion the counters fold into the cumulative totals.
	col := s.beginRun(j, req.Workload)
	defer s.endRun(j)
	var res workloads.Result
	switch req.Workload {
	case "spin":
		// Spin never completes on its own; its only exits are the
		// structured ones (cancel, wall deadline, sim budget).
		return "", runSpin(j.control(), col)
	case "fir":
		cfg := fir.DefaultConfig()
		gpu := gpudev.RTX3080Ti()
		if req.Quick {
			cfg.InputBytes = 512 * units.MiB
			cfg.WindowBytes = 64 * units.MiB
			gpu = gpudev.Generic(1536 * units.MiB)
		}
		env := s.checkpointEnv(j)
		res, err = fir.RunCheckpointed(platformFor(req, gpu, j), sys, cfg, env)
		if env != nil {
			if env.Stats.Resumed {
				j.addResumed(1)
				s.sc.Resumed.Add(1)
			}
			if err == nil {
				// Clean completion leaves nothing to resume; reclaim the file
				// now rather than waiting for retention eviction.
				if rerr := os.Remove(j.ckpt); rerr != nil && !os.IsNotExist(rerr) {
					s.logf("job %s: remove finished checkpoint %s: %v", j.id, j.ckpt, rerr)
				}
			}
		}
	case "radixsort":
		cfg := radixsort.DefaultConfig()
		gpu := gpudev.RTX3080Ti()
		if req.Quick {
			cfg.DataBytes = 256 * units.MiB
			cfg.StripBytes = 32 * units.MiB
			gpu = gpudev.Generic(768 * units.MiB)
		}
		res, err = radixsort.Run(platformFor(req, gpu, j), sys, cfg)
	case "hashjoin":
		cfg := hashjoin.DefaultConfig()
		gpu := gpudev.RTX3080Ti()
		if req.Quick {
			cfg.TableBytes = 24 * units.MiB
			cfg.IntermediateBytes = 80 * units.MiB
			cfg.WorkspaceBytes = 110 * units.MiB
			cfg.ResultBytes = 104 * units.MiB
			gpu = gpudev.Generic(600 * units.MiB)
		}
		res, err = hashjoin.Run(platformFor(req, gpu, j), sys, cfg)
	case "graph":
		cfg := graph.DefaultConfig()
		gpu := gpudev.RTX3080Ti()
		if req.Quick {
			cfg.EdgeBytes = 512 * units.MiB
			cfg.VertexBytes = 16 * units.MiB
			gpu = gpudev.Generic(384 * units.MiB)
		}
		res, err = graph.Run(platformFor(req, gpu, j), sys, cfg)
	default:
		return "", fmt.Errorf("unknown workload %q", req.Workload)
	}
	if err != nil {
		return "", err
	}
	out, err := json.MarshalIndent(runSummary{
		Workload:  req.Workload,
		System:    res.System.String(),
		Ovsp:      req.Ovsp,
		Runtime:   res.Runtime.String(),
		TrafficGB: res.TrafficGB(),
		H2DGB:     float64(res.H2DBytes) / 1e9,
		D2HGB:     float64(res.D2HBytes) / 1e9,
		SavedGB:   float64(res.SavedH2D+res.SavedD2H) / 1e9,
	}, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out) + "\n", nil
}

// checkpointEnv builds the job's on-disk checkpoint environment: restore
// from the job's snapshot file when one survives on disk, durably rewrite
// it at every step boundary, and count a rejected (torn/corrupt) restore as
// it falls back to a from-zero run. Nil when the run was submitted without
// a checkpoint name — that path stays exactly as before.
func (s *Server) checkpointEnv(j *job) *checkpoint.Env {
	if j.ckpt == "" {
		return nil
	}
	env := &checkpoint.Env{
		Every: 1,
		Save: func(blob []byte) error {
			if err := checkpoint.WriteFile(j.ckpt, blob); err != nil {
				return err
			}
			s.sc.CheckpointsSaved.Add(1)
			return nil
		},
		OnReject: func(reason string) {
			s.sc.CheckpointsCorrupt.Add(1)
			s.logf("job %s: checkpoint %s rejected (%s); restarting from zero", j.id, j.ckpt, reason)
		},
	}
	blob, err := checkpoint.ReadFile(j.ckpt)
	switch {
	case err == nil:
		env.Restore = blob
	case os.IsNotExist(err):
		// Fresh run; nothing to resume.
	default:
		// Unreadable file (permissions, I/O): start from zero rather than
		// fail the job — durability must never outrank the answer.
		s.logf("job %s: read checkpoint %s: %v; starting from zero", j.id, j.ckpt, err)
	}
	return env
}

// runSpin is the runaway simulation: an endless kernel loop over a small
// resident buffer. It exists so the watchdog path is testable end to end —
// a correct service kills it at its deadline and the driver state it leaves
// behind passes the sanitizer.
func runSpin(ctl *runctl.Control, col *metrics.Collector) (err error) {
	defer runctl.Recover(&err)
	p := workloads.Platform{GPU: gpudev.Generic(64 * units.MiB), Gen: pcie.Gen4, Control: ctl, Metrics: col}
	ctx, err := p.NewContext(32 * units.MiB)
	if err != nil {
		return err
	}
	buf, err := ctx.MallocManaged("spin", 16*units.MiB)
	if err != nil {
		return err
	}
	st := ctx.Stream("spin")
	for i := 0; ; i++ {
		if err := st.Launch(cuda.Kernel{
			Name:    "spin",
			Compute: 10 * sim.Microsecond,
			Accesses: []cuda.Access{
				{Buf: buf, Offset: 0, Length: buf.Size(), Mode: core.Read},
			},
		}); err != nil {
			return err
		}
		if i%1024 == 1023 {
			ctx.DeviceSynchronize()
		}
	}
}

func (s *Server) runBatchJob(j *job) (res string, err error) {
	b := j.batch
	opts := experiments.Options{
		Quick:      b.Quick,
		Ctx:        j.ctx,
		WallBudget: j.wall,
		SimBudget:  j.simB,
		// Track each experiment's control as it arms, so the progress
		// stream follows the batch run by run.
		OnControl: j.setControl,
	}
	par := b.Parallelism
	if par < 1 {
		par = 1
	}
	var jnl *experiments.Journal
	if b.Journal != "" {
		jnl, err = experiments.OpenJournal(s.journalPath(b.Journal), b.Quick)
		if err != nil {
			return "", err
		}
		// A dropped close can lose buffered journal state, which is
		// exactly what the batch-resume smoke test replays from: surface
		// it as the job's error unless a run failure already outranks it.
		defer func() {
			if cerr := jnl.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("journal close: %w", cerr)
			}
		}()
	}
	results := experiments.RunAllJournaled(j.ctx, b.selected, opts, par, jnl, func(r experiments.RunResult) {
		j.addFinished(1)
		if r.Resumed {
			j.addResumed(1)
			s.sc.Resumed.Add(1)
		}
	})
	// Render completed tables in selection order — the same bytes
	// cmd/paperbench emits for the same selection, which is what the
	// kill/resume smoke test compares against an uninterrupted run.
	var out strings.Builder
	var firstFail, firstInterrupt error
	for _, r := range results {
		if r.Err != nil {
			wrapped := fmt.Errorf("experiment %s: %w", r.Experiment.ID, r.Err)
			if r.Interrupted() {
				if firstInterrupt == nil {
					firstInterrupt = wrapped
				}
			} else if firstFail == nil {
				firstFail = wrapped
			}
			continue
		}
		out.WriteString(r.Table.String())
		out.WriteByte('\n')
	}
	// A genuine failure outranks an interruption for the job's terminal
	// state; partial output is returned either way — finished tables are
	// real results (and journaled), not collateral of the failure.
	if firstFail != nil {
		return out.String(), firstFail
	}
	return out.String(), firstInterrupt
}

package service

import (
	"net/http"
	"time"
)

// NewHTTPServer wraps a handler in an http.Server with the timeout posture
// a long-running daemon needs so a stalled or malicious client cannot pin
// connections forever:
//
//   - ReadHeaderTimeout bounds the slowloris window: a client that dribbles
//     header bytes is cut off before it ever reaches a handler.
//   - ReadTimeout bounds reading an entire request (headers + body). It is
//     safe for the SSE progress stream: /v1/jobs/{id}/progress is a GET
//     with no body, and net/http switches a handler-active connection with
//     a consumed body to the background-read path, which clears the read
//     deadline — so the stream lives past ReadTimeout while a client that
//     stalls mid-upload does not.
//   - IdleTimeout reaps keep-alive connections parked between requests.
//
// WriteTimeout is deliberately absent: it is measured from the start of the
// request and would sever long-lived SSE streams mid-flight. Response
// liveness is the handlers' concern (the progress stream terminates with
// its job).
func NewHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

package service

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// The tests scale the production timeouts down (the fields are exported on
// http.Server precisely so a caller can tune them) — the properties under
// test are structural: which timeout severs which kind of client, and which
// deliberately does not.

func TestNewHTTPServerTimeoutPosture(t *testing.T) {
	hs := NewHTTPServer(http.NewServeMux())
	if hs.ReadHeaderTimeout <= 0 {
		t.Errorf("ReadHeaderTimeout not set: %v", hs.ReadHeaderTimeout)
	}
	if hs.ReadTimeout <= 0 {
		t.Errorf("ReadTimeout not set: %v", hs.ReadTimeout)
	}
	if hs.IdleTimeout <= 0 {
		t.Errorf("IdleTimeout not set: %v", hs.IdleTimeout)
	}
	if hs.WriteTimeout != 0 {
		t.Errorf("WriteTimeout must stay zero (it would sever SSE streams): %v", hs.WriteTimeout)
	}
}

// serveScaled starts a NewHTTPServer with timeouts shrunk to test scale and
// returns its address.
func serveScaled(t *testing.T, h http.Handler) string {
	t.Helper()
	hs := NewHTTPServer(h)
	hs.ReadHeaderTimeout = 150 * time.Millisecond
	hs.ReadTimeout = 400 * time.Millisecond
	hs.IdleTimeout = time.Second
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = hs.Serve(ln) }()
	t.Cleanup(func() { _ = hs.Close() })
	return ln.Addr().String()
}

// TestSlowHeaderClientDisconnected is the slowloris regression: a client
// that opens a connection and dribbles an incomplete request line must be
// cut off by ReadHeaderTimeout, not pinned forever.
func TestSlowHeaderClientDisconnected(t *testing.T) {
	addr := serveScaled(t, http.NewServeMux())
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	start := time.Now()
	if _, err := fmt.Fprintf(conn, "GET /v1/jobs HT"); err != nil {
		t.Fatalf("partial write: %v", err)
	}
	// Never finish the request line. The server must hang up on us —
	// net/http sends a 408 on the way out, then closes, so drain to EOF.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := io.ReadAll(conn)
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatalf("server still holding the connection 5s after a stalled header")
	}
	if err != nil {
		t.Fatalf("draining connection: %v", err)
	}
	// Depending on where the deadline lands, net/http answers 408 (timeout
	// reading headers) or 400 (the truncated request line read as garbage);
	// either way it must be an error status with the connection closed.
	if len(got) > 0 && !strings.Contains(string(got), "408") && !strings.Contains(string(got), "400") {
		t.Errorf("unexpected response to a stalled header: %q", got)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("disconnect took %v; want roughly ReadHeaderTimeout (150ms)", elapsed)
	}
}

// TestSSEStreamSurvivesReadTimeout pins the subtle half of the posture: the
// progress stream is a body-less GET, and once the handler is running with
// the request consumed, net/http moves the connection to the background-read
// path and clears the read deadline — so a stream may outlive ReadTimeout.
// A WriteTimeout, by contrast, would fire mid-stream; this test is the
// regression against anyone adding one.
func TestSSEStreamSurvivesReadTimeout(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fl, ok := w.(http.Flusher)
		if !ok {
			t.Errorf("response writer is not a flusher")
			return
		}
		// 8 events over ~800ms: twice the scaled 400ms ReadTimeout.
		for i := 0; i < 8; i++ {
			if _, err := fmt.Fprintf(w, "data: tick %d\n\n", i); err != nil {
				return
			}
			fl.Flush()
			time.Sleep(100 * time.Millisecond)
		}
	})
	addr := serveScaled(t, mux)

	resp, err := http.Get("http://" + addr + "/stream")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()

	var events int
	start := time.Now()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "data: tick") {
			events++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream severed after %v (%d events): %v", time.Since(start), events, err)
	}
	if events != 8 {
		t.Fatalf("got %d events, want 8 — stream did not survive past ReadTimeout", events)
	}
	if lived := time.Since(start); lived < 500*time.Millisecond {
		t.Errorf("stream lived only %v; the test did not actually cross the 400ms ReadTimeout", lived)
	}
}

package service

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"uvmdiscard/internal/promexp"
)

// The retention bugfix: the job table stays bounded no matter how many jobs
// the server has ever finished, while queued and running jobs are never
// evicted. Before Config.RetainJobs the map grew by one entry per
// submission for the life of the process.
func TestRetentionBoundsJobTable(t *testing.T) {
	const retain = 3
	s, ts := newTestService(t, Config{Workers: 2, QueueDepth: 16, RetainJobs: retain})

	// Park one worker on a gated in-flight job: it predates everything the
	// test finishes, so eviction would pick it first if the policy ever
	// considered non-terminal jobs.
	gate := make(chan struct{})
	inflight := s.newJob(jobWorkload, RunRequest{Workload: "fir", Quick: true}, nil)
	inflight.testGate = gate
	if !s.admit(inflight) {
		t.Fatal("admit gated job")
	}
	waitState(t, ts, inflight.id, stateRunning)

	// Finish far more jobs than the bound.
	var ids []string
	for i := 0; i < 3*retain; i++ {
		_, js := post(t, ts, "/v1/runs", RunRequest{Workload: "fir", Quick: true})
		waitState(t, ts, js.ID, stateDone)
		ids = append(ids, js.ID)
	}

	// The deferred prune races the state read by a hair; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		n, ordered := len(s.jobs), len(s.order)
		s.mu.Unlock()
		if n != ordered {
			t.Fatalf("jobs map (%d) and order slice (%d) diverged", n, ordered)
		}
		if n <= retain+1 { // retained terminal jobs + the running gated one
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job table holds %d entries, want <= %d", n, retain+1)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Evicted history 404s; recent history and live work survive.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted job %s: %d, want 404", ids[0], resp.StatusCode)
	}
	if got := getJob(t, ts, ids[len(ids)-1]); got.State != stateDone {
		t.Errorf("most recent job evicted or wrong: %+v", got)
	}
	if got := getJob(t, ts, inflight.id); got.State != stateRunning {
		t.Errorf("in-flight job did not survive retention: %+v", got)
	}
	// Released, the gated job completes normally — and only then becomes
	// evictable (it is now the oldest terminal job). Observe it through the
	// struct: the HTTP view may legitimately 404 right after completion.
	close(gate)
	select {
	case <-inflight.done:
	case <-time.After(60 * time.Second):
		t.Fatal("gated job never finished after release")
	}
	if st := inflight.status(); st.State != stateDone {
		t.Errorf("released job state = %s, want done", st.State)
	}
}

// The Retry-After bugfix: the hint is derived from queue occupancy and the
// observed job latency instead of the hard-coded 1. A fuller queue and a
// slower service both raise it.
func TestRetryAfterScalesWithLoad(t *testing.T) {
	mk := func(workers, depth int) *Server {
		// Built directly (no New) so no workers drain the queue we stage.
		return &Server{
			cfg:     Config{Workers: workers},
			queue:   make(chan *job, depth),
			latency: promexp.MustHistogram(),
		}
	}

	shallow, deep := mk(1, 8), mk(1, 8)
	shallow.queue <- nil
	for i := 0; i < 8; i++ {
		deep.queue <- nil
	}
	a, b := shallow.retryAfterSeconds(), deep.retryAfterSeconds()
	if a < 1 || b < 1 {
		t.Fatalf("hints below 1s: %d, %d", a, b)
	}
	if b <= a {
		t.Errorf("deeper backlog hint %ds not above shallow %ds", b, a)
	}

	// Slower observed jobs raise the hint at equal occupancy.
	slow := mk(1, 8)
	for i := 0; i < 8; i++ {
		slow.queue <- nil
	}
	slow.latency.Observe(10)
	if c := slow.retryAfterSeconds(); c <= b {
		t.Errorf("10s-mean hint %ds not above 1s-default hint %ds", c, b)
	}

	// More workers drain the same backlog faster.
	wide := mk(4, 8)
	for i := 0; i < 8; i++ {
		wide.queue <- nil
	}
	if d := wide.retryAfterSeconds(); d >= b {
		t.Errorf("4-worker hint %ds not below 1-worker hint %ds", d, b)
	}

	// The clamp keeps a pathological estimate HTTP-usable.
	huge := mk(1, 8)
	huge.queue <- nil
	huge.latency.Observe(1e6)
	if e := huge.retryAfterSeconds(); e != 300 {
		t.Errorf("clamped hint = %d, want 300", e)
	}
}

// scrape fetches /metrics, validates the exposition with promexp.Check, and
// returns the body.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if problems := promexp.CheckText(body); len(problems) != 0 {
		t.Fatalf("exposition invalid:\n%s", strings.Join(problems, "\n"))
	}
	return string(body)
}

// sumSamples adds the values of every sample of a family — the robust way
// to assert "some traffic happened" without tying the test to which cause
// a particular workload's transfers carry.
func sumSamples(t *testing.T, body, name string) float64 {
	t.Helper()
	var sum float64
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+"{") && !strings.HasPrefix(line, name+" ") {
			continue
		}
		f := strings.Fields(line)
		v, err := strconv.ParseFloat(f[len(f)-1], 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		sum += v
	}
	return sum
}

// sampleValue finds one exposition line by prefix and returns its value.
func sampleValue(t *testing.T, body, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, prefix) {
			f := strings.Fields(line)
			v, err := strconv.ParseFloat(f[len(f)-1], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("no sample with prefix %q", prefix)
	return 0
}

// The /metrics exposition covers all three layers after a real run: service
// counters, the latency histogram, cumulative simulation counters, and the
// per-device residency gauges of the finished run.
func TestPromMetricsCoversAllLayers(t *testing.T) {
	s, ts := newTestService(t, Config{Workers: 1})
	_, js := post(t, ts, "/v1/runs", RunRequest{Workload: "fir", Quick: true, System: "discard"})
	waitState(t, ts, js.ID, stateDone)
	// Wait for the worker's deferred latency observation to land.
	deadline := time.Now().Add(5 * time.Second)
	for s.latency.Count() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	body := scrape(t, ts)
	if v := sampleValue(t, body, "uvmsimd_jobs_admitted_total"); v != 1 {
		t.Errorf("admitted = %v, want 1", v)
	}
	if v := sampleValue(t, body, `uvmsimd_jobs_finished_total{outcome="done"}`); v != 1 {
		t.Errorf("finished done = %v, want 1", v)
	}
	if v := sampleValue(t, body, "uvmsimd_job_duration_seconds_count"); v != 1 {
		t.Errorf("duration count = %v, want 1", v)
	}
	if v := sumSamples(t, body, "uvmsim_transfer_bytes_total"); v <= 0 {
		t.Errorf("transfer bytes = %v, want > 0", v)
	}
	if v := sampleValue(t, body, "uvmsim_discard_calls_total"); v <= 0 {
		t.Errorf("discard calls = %v, want > 0 for the discard system", v)
	}
	// The finished run's end-state residency gauges are labeled with its
	// job, workload, and device.
	pfx := `uvmsim_device_capacity_bytes{job="` + js.ID + `",workload="fir",device="gpu0"}`
	if v := sampleValue(t, body, pfx); v <= 0 {
		t.Errorf("capacity gauge = %v, want > 0", v)
	}
	if !strings.Contains(body, "uvmsim_evictions_total{") {
		t.Error("evictions family missing")
	}

	// Counters are cumulative: a second run only increases them.
	before := sumSamples(t, body, "uvmsim_transfer_bytes_total")
	_, js2 := post(t, ts, "/v1/runs", RunRequest{Workload: "fir", Quick: true})
	waitState(t, ts, js2.ID, stateDone)
	after := sumSamples(t, scrape(t, ts), "uvmsim_transfer_bytes_total")
	if after <= before {
		t.Errorf("transfer counter not monotonic: %v then %v", before, after)
	}
}

// Scrapes racing live submissions stay valid and monotonic — the guarantee
// the cumulative-plus-active collector design exists for. Run with -race.
func TestPromMetricsConcurrentWithJobs(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 2, QueueDepth: 16})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			_, js := post(t, ts, "/v1/runs", RunRequest{Workload: "fir", Quick: true, System: "discard"})
			waitState(t, ts, js.ID, stateDone)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1.0
			for {
				body := scrape(t, ts)
				v := sumSamples(t, body, "uvmsim_transfer_bytes_total")
				if v < last {
					t.Errorf("counter went backwards: %v after %v", v, last)
					return
				}
				last = v
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	<-done
	wg.Wait()
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data string
}

func readSSE(t *testing.T, r *bufio.Reader) (sseEvent, bool) {
	t.Helper()
	var ev sseEvent
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return ev, false
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = strings.TrimPrefix(line, "data: ")
		case line == "" && ev.name != "":
			return ev, true
		}
	}
}

// The progress stream follows a live run: sim time advances across events,
// and cancellation ends the stream with a "done" event carrying the
// terminal state.
func TestProgressStreamFollowsRun(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1})
	_, js := post(t, ts, "/v1/runs", RunRequest{Workload: "spin"})
	waitState(t, ts, js.ID, stateRunning)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + js.ID + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("progress stream: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	br := bufio.NewReader(resp.Body)
	var sims []int64
	canceled := false
	for i := 0; i < 200; i++ {
		ev, ok := readSSE(t, br)
		if !ok {
			t.Fatal("stream ended without done event")
		}
		if ev.name == "done" {
			var st jobStatus
			if err := json.Unmarshal([]byte(ev.data), &st); err != nil {
				t.Fatalf("done payload: %v", err)
			}
			if st.State != stateCanceled {
				t.Errorf("done state = %s, want canceled", st.State)
			}
			if len(sims) < 2 {
				t.Fatalf("saw only %d progress events before done", len(sims))
			}
			if last := sims[len(sims)-1]; last <= sims[0] {
				t.Errorf("sim time did not advance: %v", sims)
			}
			return
		}
		var pe progressEvent
		if err := json.Unmarshal([]byte(ev.data), &pe); err != nil {
			t.Fatalf("progress payload %q: %v", ev.data, err)
		}
		if pe.SimTimeUS > 0 {
			sims = append(sims, pe.SimTimeUS)
		}
		// Two advancing observations are enough: cancel and expect done.
		if len(sims) >= 2 && !canceled {
			canceled = true
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+js.ID, nil)
			if _, err := http.DefaultClient.Do(req); err != nil {
				t.Fatal(err)
			}
		}
	}
	t.Fatal("no done event after 200 events")
}

// A progress stream for an unknown job 404s instead of hanging.
func TestProgressStreamUnknownJob(t *testing.T) {
	_, ts := newTestService(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/jobs/nope/progress")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job progress: %d, want 404", resp.StatusCode)
	}
}

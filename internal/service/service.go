// Package service implements uvmsimd's HTTP layer: a long-running
// simulation service that accepts single workload runs and whole experiment
// batches, executes them on a bounded worker pool, and survives the
// production failure modes a simulator CLI never meets — overload (bounded
// admission queue with load shedding), runaway simulations (per-run wall
// deadlines and sim-time budgets via internal/runctl), panics (per-request
// and per-job isolation), operator cancellation (DELETE on a job), graceful
// shutdown (in-flight runs drain, queued runs are shed), and process death
// mid-batch (crash-safe journals via experiments.RunAllJournaled).
//
// This package is host-side control plane, not simulation: it is on the
// simdet allowlist and may read the wall clock, but it never touches
// simulated time — budgets cross into the simulation only through a
// runctl.Control, and every run keeps the per-run isolation rules
// (fresh driver, collector, RNG, control per run).
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"uvmdiscard/internal/experiments"
	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/promexp"
	"uvmdiscard/internal/sim"
)

// Config tunes the service. The zero value is usable: sensible queue and
// worker defaults, journaling disabled, a 2-minute default wall deadline.
type Config struct {
	// Workers is the number of simulation worker goroutines; <1 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// QueueDepth bounds the admission queue; <1 means 64. A submit that
	// finds the queue full is shed with 503 + Retry-After, never blocked.
	QueueDepth int
	// JournalDir enables crash-safe batch journals: a batch submitted with
	// a journal name appends completed results to <JournalDir>/<name>.jsonl
	// and resumes from it on re-submit. Empty disables journaling.
	JournalDir string
	// DataDir enables per-run checkpoint snapshots: a workload run submitted
	// with a checkpoint name durably persists a snapshot of the live
	// simulation to <DataDir>/<name>.ckpt at every step boundary, and a
	// re-submitted run with the same name resumes from it — surviving even a
	// SIGKILL of the whole daemon. Empty disables checkpointing.
	DataDir string
	// DefaultWallBudget caps each job's wall-clock time when the request
	// does not set its own; <=0 means 2 minutes. This is the watchdog that
	// keeps a runaway simulation from pinning a worker forever — requests
	// may raise or lower it but not disable it.
	DefaultWallBudget time.Duration
	// DefaultSimBudget caps each run's simulated time when the request does
	// not set its own; 0 means unlimited.
	DefaultSimBudget sim.Time
	// RetainJobs bounds how many finished jobs the server keeps for
	// GET /v1/jobs{,/{id}}; <1 means 256. When a new submission would exceed
	// the bound, the oldest terminal jobs are evicted (their IDs then 404).
	// Queued and running jobs are never evicted and do not count against the
	// bound, so the job table is O(RetainJobs + in-flight) forever instead of
	// growing with every submission the process has ever seen.
	RetainJobs int
	// Log receives service events; nil discards them.
	Log *log.Logger
}

// Server is the uvmsimd service. Create with New, serve via Handler, stop
// with Shutdown.
type Server struct {
	cfg Config
	sc  metrics.ServiceCollector
	mux *http.ServeMux

	// These synchronize themselves: nextID is atomic, workers is a
	// WaitGroup, and queue is created once in New — workers receive from it
	// lock-free, while sends and the close happen under mu (admit/Shutdown)
	// so no send can race the close.
	nextID  atomic.Int64
	workers sync.WaitGroup
	queue   chan *job

	// latency distributes finished-job wall time (seconds); it synchronizes
	// itself, and its mean feeds the Retry-After hint shed responses carry.
	latency *promexp.Histogram
	// sims aggregates simulation collectors for the /metrics exporter; it
	// carries its own lock.
	sims simState

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job
	order    []string // job IDs in submission order, for listing
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers < 1 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 64
	}
	if cfg.DefaultWallBudget <= 0 {
		cfg.DefaultWallBudget = 2 * time.Minute
	}
	if cfg.RetainJobs < 1 {
		cfg.RetainJobs = 256
	}
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *job, cfg.QueueDepth),
		latency: promexp.MustHistogram(),
		jobs:    make(map[string]*job),
	}
	s.sims.init()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	s.mux.HandleFunc("POST /v1/batches", s.handleSubmitBatch)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/progress", s.handleJobProgress)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /v1/experiments", s.handleListExperiments)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics", s.handlePromMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	for i := 0; i < cfg.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the service's HTTP handler with per-request panic
// isolation: a panicking handler produces a 500 on that request and a
// Panics tick, never a dead process.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.sc.Panics.Add(1)
				s.logf("panic in %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				// Best effort: if the handler already wrote, this is a no-op.
				http.Error(w, "internal error", http.StatusInternalServerError)
			}
		}()
		s.mux.ServeHTTP(w, r)
	})
}

// Metrics exposes the service counters (tests and cmd/uvmsimd).
func (s *Server) Metrics() *metrics.ServiceCollector { return &s.sc }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// admit registers a job and enqueues it without ever blocking: a full
// queue or a draining server sheds the job instead. This is the
// backpressure boundary — the queue send happens under the same lock that
// Shutdown takes to flip draining, so a job can never slip into a queue
// that is about to be drained and closed.
func (s *Server) admit(j *job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.sc.Admitted.Add(1)
		s.pruneLocked()
		return true
	default:
		return false
	}
}

// prune enforces Config.RetainJobs. Called after every admission and every
// job completion so the table shrinks as soon as evictable history exists.
func (s *Server) prune() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked()
}

// pruneLocked evicts the oldest terminal jobs until at most RetainJobs of
// them remain. Queued and running jobs are untouchable regardless of age —
// evicting those would orphan live work. Caller holds s.mu.
func (s *Server) pruneLocked() {
	terminal := 0
	for _, id := range s.order {
		if s.jobs[id].terminal() {
			terminal++
		}
	}
	evict := terminal - s.cfg.RetainJobs
	if evict <= 0 {
		return
	}
	keep := s.order[:0]
	var evicted []*job
	for _, id := range s.order {
		if evict > 0 && s.jobs[id].terminal() {
			evicted = append(evicted, s.jobs[id])
			delete(s.jobs, id)
			evict--
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
	// Evicting a job also reclaims its on-disk snapshot — the data dir is
	// bounded by the same retention policy as the job table — unless a
	// retained job (a resubmitted resume under the same name) still points
	// at the file.
	for _, j := range evicted {
		if j.ckpt == "" || s.checkpointInUseLocked(j.ckpt) {
			continue
		}
		if err := os.Remove(j.ckpt); err != nil && !os.IsNotExist(err) {
			s.logf("job %s: evict checkpoint %s: %v", j.id, j.ckpt, err)
		}
	}
}

// checkpointInUseLocked reports whether any retained job still references
// the snapshot at path. Caller holds s.mu.
func (s *Server) checkpointInUseLocked(path string) bool {
	for _, j := range s.jobs {
		if j.ckpt == path {
			return true
		}
	}
	return false
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// worker executes queued jobs until the queue is closed by Shutdown. Each
// job runs under panic isolation: a panicking simulation fails its own job
// and the worker moves on.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		if j.ctx.Err() != nil {
			// Canceled while still queued: report, never run.
			j.finish(stateCanceled, "", fmt.Sprintf("canceled while queued: %v", j.ctx.Err()))
			s.sc.Canceled.Add(1)
			s.prune()
			continue
		}
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			s.sc.Panics.Add(1)
			s.logf("job %s panicked: %v\n%s", j.id, p, debug.Stack())
			j.finish(stateFailed, "", fmt.Sprintf("panic: %v", p))
			s.sc.Failed.Add(1)
		}
		// Every path through a run — clean, interrupted, panicked — feeds the
		// latency histogram (the Retry-After estimate must see the jobs that
		// blew their budgets, not just the happy ones) and then lets the
		// retention policy reclaim evictable history.
		s.latency.Observe(time.Since(start).Seconds())
		s.prune()
	}()
	j.setState(stateRunning)
	if j.testGate != nil {
		<-j.testGate
	}
	var (
		output string
		err    error
	)
	switch j.kind {
	case jobWorkload:
		output, err = s.runWorkloadJob(j)
	case jobBatch:
		output, err = s.runBatchJob(j)
	default:
		err = fmt.Errorf("unknown job kind %q", j.kind)
	}
	state, errMsg := classify(err)
	switch state {
	case stateDone:
		s.sc.Completed.Add(1)
	case stateCanceled:
		s.sc.Canceled.Add(1)
	case stateDeadline:
		s.sc.DeadlineExpired.Add(1)
	case stateBudget:
		s.sc.BudgetExpired.Add(1)
	default:
		s.sc.Failed.Add(1)
	}
	j.finish(state, output, errMsg)
}

// Shutdown drains the service gracefully: no new admissions, jobs still in
// the queue are shed (reported on the job, counted in metrics), and
// in-flight runs are given until ctx expires to finish — after which they
// are canceled through their run controls and awaited. Always returns with
// the worker pool stopped.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return fmt.Errorf("service: already shut down")
	}
	s.draining = true
	// Shed everything still queued. No admit can race this: draining flips
	// under the same lock the queue send takes.
	for {
		select {
		case j := <-s.queue:
			j.finish(stateShed, "", "shed: service shutting down")
			s.sc.Shed.Add(1)
			continue
		default:
		}
		break
	}
	close(s.queue)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Deadline for graceful drain expired: cancel the in-flight runs —
		// they abort at their next driver checkpoint, sanitizer-clean — and
		// wait for the workers to report them.
		s.mu.Lock()
		for _, j := range s.jobs {
			j.cancel()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// --- HTTP handlers ---

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) shed(w http.ResponseWriter) {
	s.sc.Shed.Add(1)
	retry := s.retryAfterSeconds()
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":               "queue full or shutting down; retry later",
		"retry_after_seconds": retry,
	})
}

// retryAfterSeconds derives the shed response's Retry-After hint from the
// actual load instead of a hard-coded constant: the backlog a retrying
// client would sit behind (current queue occupancy plus its own slot),
// spread across the worker pool, at the observed mean job latency. With no
// completed jobs yet the estimate assumes one second per job. Clamped to
// [1, 300] so a pathological backlog still yields a usable HTTP hint.
func (s *Server) retryAfterSeconds() int {
	mean, ok := s.latency.Mean()
	if !ok || mean <= 0 {
		mean = 1
	}
	backlog := float64(len(s.queue) + 1)
	sec := int(math.Ceil(mean * backlog / float64(s.cfg.Workers)))
	if sec < 1 {
		sec = 1
	}
	if sec > 300 {
		sec = 300
	}
	return sec
}

func (s *Server) submit(w http.ResponseWriter, j *job) {
	if !s.admit(j) {
		j.cancel()
		s.shed(w)
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if err := req.validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if req.Checkpoint != "" && s.cfg.DataDir == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "checkpointing disabled: server has no data directory"})
		return
	}
	s.submit(w, s.newJob(jobWorkload, req, nil))
}

func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if err := req.validate(s.cfg); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	s.submit(w, s.newJob(jobBatch, RunRequest{}, &req))
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]jobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].status())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleListExperiments(w http.ResponseWriter, _ *http.Request) {
	type entry struct {
		ID   string `json:"id"`
		Name string `json:"name"`
	}
	var out []entry
	for _, e := range experiments.All() {
		out = append(out, entry{ID: e.ID, Name: e.Name})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.sc.Snapshot())
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// journalName restricts batch journal names to a path-safe alphabet; the
// journal always lands inside JournalDir.
var journalName = regexp.MustCompile(`^[A-Za-z0-9._-]{1,128}$`)

func (s *Server) journalPath(name string) string {
	return filepath.Join(s.cfg.JournalDir, name+".jsonl")
}

// checkpointPath places a run's snapshot file inside DataDir; names share
// the journal slug alphabet so the file always lands there.
func (s *Server) checkpointPath(name string) string {
	return filepath.Join(s.cfg.DataDir, name+".ckpt")
}

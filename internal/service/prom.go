// prom.go is the Prometheus scrape surface of uvmsimd: GET /metrics renders
// three layers of the system as one text exposition (internal/promexp) —
//
//   - service counters and gauges: admissions, sheds, finished jobs by
//     outcome, live queue depth, tracked jobs by state, and the job
//     wall-latency histogram;
//   - cumulative simulation counters: every finished run's
//     metrics.Collector is folded into one monotonic collector, and live
//     runs' snapshots are added at scrape time, so uvmsim_* counters never
//     go backwards;
//   - per-device residency gauges: each active run (and the most recently
//     finished one) exports its GPUs' queue occupancy with
//     {job, workload, device="gpuN"} labels, published by the driver at
//     checkpoints (core.Driver.PublishResidency).
//
// DESIGN.md §12 is the metric catalog.
package service

import (
	"net/http"
	"strconv"
	"sync"

	"uvmdiscard/internal/metrics"
	"uvmdiscard/internal/promexp"
	"uvmdiscard/internal/sim"
)

// simState aggregates per-run simulation collectors for the exporter. Runs
// register their collector at start and fold it into the cumulative total
// when they finish; a scrape between those two points sees the live run's
// snapshot added on top of the total, so counters are monotonic across any
// interleaving of runs and scrapes.
type simState struct {
	mu sync.Mutex
	// total accumulates the counters of every finished run (Collector.Merge).
	total *metrics.Collector
	// active maps job ID → the run currently adding to its collector.
	active map[string]*simRun
	// last is the most recently finished run, kept so residency gauges
	// outlive the run that produced them until the next one starts.
	last *simRun
}

// simRun is one run's identity for labeling. Immutable after creation; the
// collector synchronizes itself.
type simRun struct {
	job      string
	workload string
	col      *metrics.Collector
}

func (ss *simState) init() {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.total = metrics.New()
	ss.active = make(map[string]*simRun)
}

// begin registers a run's live collector under its job ID.
func (ss *simState) begin(jobID, workload string, col *metrics.Collector) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.active[jobID] = &simRun{job: jobID, workload: workload, col: col}
}

// end folds a finished run into the cumulative total and retires it from
// the active set. Safe to call for an unregistered ID (no-op).
func (ss *simState) end(jobID string) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	r, ok := ss.active[jobID]
	if !ok {
		return
	}
	delete(ss.active, jobID)
	ss.total.Merge(r.col)
	ss.last = r
}

// simView is a scrape-time snapshot of one run, detached from the live
// collector.
type simView struct {
	job      string
	workload string
	snap     *metrics.Collector
	live     bool
}

// view returns (cumulative counters incl. live runs, per-run snapshots for
// gauges). The returned collector is private to the caller.
func (ss *simState) view() (*metrics.Collector, []simView) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	tot := ss.total.Snapshot()
	var runs []simView
	for _, r := range ss.active {
		snap := r.col.Snapshot()
		tot.Merge(snap)
		runs = append(runs, simView{job: r.job, workload: r.workload, snap: snap, live: true})
	}
	if ss.last != nil {
		runs = append(runs, simView{job: ss.last.job, workload: ss.last.workload, snap: ss.last.col.Snapshot()})
	}
	return tot, runs
}

// beginRun/endRun wrap simState for one job's simulation run, also wiring
// the job's live collector slot for tests and future introspection.
func (s *Server) beginRun(j *job, workload string) *metrics.Collector {
	col := metrics.New()
	j.setCollector(col)
	s.sims.begin(j.id, workload, col)
	return col
}

func (s *Server) endRun(j *job) {
	s.sims.end(j.id)
}

func (s *Server) handlePromMetrics(w http.ResponseWriter, _ *http.Request) {
	fams := s.promFamilies()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := promexp.Write(w, fams); err != nil {
		// A render error means a programming bug (bad metric name); surface
		// it rather than serving a half exposition.
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// promFamilies assembles the full exposition. Each layer reads its own
// synchronized source; the scrape is a consistent snapshot per collector,
// not across them (standard Prometheus semantics).
func (s *Server) promFamilies() []promexp.Family {
	sc := s.sc.Snapshot()

	s.mu.Lock()
	byState := make(map[jobState]float64)
	var running []*job
	for _, j := range s.jobs {
		st := j.status().State
		byState[st]++
		if st == stateRunning {
			running = append(running, j)
		}
	}
	s.mu.Unlock()

	fams := []promexp.Family{
		promexp.Counter("uvmsimd_jobs_admitted_total",
			"Jobs accepted into the admission queue.", float64(sc.Admitted)),
		promexp.Counter("uvmsimd_jobs_shed_total",
			"Submissions shed by backpressure or shutdown.", float64(sc.Shed)),
		{
			Name: "uvmsimd_jobs_finished_total",
			Help: "Jobs that reached a terminal state, by outcome.",
			Kind: promexp.KindCounter,
			Samples: []promexp.Sample{
				{Labels: []promexp.Label{promexp.L("outcome", "done")}, Value: float64(sc.Completed)},
				{Labels: []promexp.Label{promexp.L("outcome", "failed")}, Value: float64(sc.Failed)},
				{Labels: []promexp.Label{promexp.L("outcome", "canceled")}, Value: float64(sc.Canceled)},
				{Labels: []promexp.Label{promexp.L("outcome", "deadline_expired")}, Value: float64(sc.DeadlineExpired)},
				{Labels: []promexp.Label{promexp.L("outcome", "budget_expired")}, Value: float64(sc.BudgetExpired)},
			},
		},
		promexp.Counter("uvmsimd_panics_total",
			"Panics recovered by request or job isolation.", float64(sc.Panics)),
		promexp.Counter("uvmsimd_batch_results_resumed_total",
			"Batch experiment results served from a crash-safe journal instead of re-running, plus workload runs resumed from a checkpoint snapshot.",
			float64(sc.Resumed)),
		promexp.Counter("uvmsimd_checkpoints_saved_total",
			"Checkpoint snapshots durably written for checkpoint-enabled runs.",
			float64(sc.CheckpointsSaved)),
		promexp.Counter("uvmsimd_checkpoints_corrupt_total",
			"Corrupt or torn checkpoint snapshots rejected at restore (from-zero fallbacks).",
			float64(sc.CheckpointsCorrupt)),
		promexp.Gauge("uvmsimd_queue_depth",
			"Jobs waiting in the admission queue right now.", float64(len(s.queue))),
		promexp.Gauge("uvmsimd_queue_capacity",
			"Admission queue capacity (Config.QueueDepth).", float64(cap(s.queue))),
		promexp.Gauge("uvmsimd_jobs_retained_limit",
			"Bound on finished jobs kept for inspection (Config.RetainJobs).",
			float64(s.cfg.RetainJobs)),
	}

	tracked := promexp.Family{
		Name: "uvmsimd_jobs_tracked",
		Help: "Jobs currently held in the job table, by state.",
		Kind: promexp.KindGauge,
	}
	for _, st := range []jobState{stateQueued, stateRunning, stateDone, stateFailed,
		stateCanceled, stateDeadline, stateBudget, stateShed} {
		tracked.Samples = append(tracked.Samples, promexp.Sample{
			Labels: []promexp.Label{promexp.L("state", string(st))},
			Value:  byState[st],
		})
	}
	fams = append(fams, tracked)
	fams = append(fams, s.latency.Family("uvmsimd_job_duration_seconds",
		"Wall-clock duration of finished jobs (all outcomes)."))

	simTime := promexp.Family{
		Name: "uvmsim_run_sim_time_seconds",
		Help: "Simulated clock of each running job, from its last published progress checkpoint.",
		Kind: promexp.KindGauge,
	}
	for _, j := range running {
		if p, ok := j.currentControl().Progress(); ok {
			simTime.Samples = append(simTime.Samples, promexp.Sample{
				Labels: []promexp.Label{promexp.L("job", j.id)},
				Value:  float64(p.SimTime) / float64(sim.Second),
			})
		}
	}
	promexp.SortSamples(&simTime)
	fams = append(fams, simTime)

	tot, runs := s.sims.view()
	fams = append(fams, simCounterFamilies(tot)...)
	fams = append(fams, runGaugeFamilies(runs)...)
	return fams
}

// simCounterFamilies renders the cumulative simulation counters. Every
// label combination is always emitted (zeros included) so each scrape
// exposes a stable set of series — the Prometheus-friendly shape for
// rate() over counters that fire rarely.
func simCounterFamilies(m *metrics.Collector) []promexp.Family {
	dirs := []metrics.Direction{metrics.H2D, metrics.D2H}
	dirName := map[metrics.Direction]string{metrics.H2D: "h2d", metrics.D2H: "d2h"}
	causes := []metrics.Cause{metrics.CauseFault, metrics.CausePrefetch,
		metrics.CauseEviction, metrics.CauseMemcpy, metrics.CauseRemote}

	xferBytes := promexp.Family{
		Name: "uvmsim_transfer_bytes_total",
		Help: "Host-link (PCIe) bytes transferred, by direction and cause.",
		Kind: promexp.KindCounter,
	}
	xferOps := promexp.Family{
		Name: "uvmsim_transfer_ops_total",
		Help: "Host-link DMA operations, by direction and cause.",
		Kind: promexp.KindCounter,
	}
	for _, d := range dirs {
		for _, c := range causes {
			lbls := []promexp.Label{
				promexp.L("direction", dirName[d]), promexp.L("cause", c.String()),
			}
			xferBytes.Samples = append(xferBytes.Samples,
				promexp.Sample{Labels: lbls, Value: float64(m.Bytes(d, c))})
			xferOps.Samples = append(xferOps.Samples,
				promexp.Sample{Labels: lbls, Value: float64(m.Ops(d, c))})
		}
	}

	savedH2D, savedD2H := m.Saved()
	saved := promexp.Family{
		Name: "uvmsim_discard_saved_bytes_total",
		Help: "Transfer bytes avoided by the discard directive (the paper's headline saving), by direction.",
		Kind: promexp.KindCounter,
		Samples: []promexp.Sample{
			{Labels: []promexp.Label{promexp.L("direction", "h2d")}, Value: float64(savedH2D)},
			{Labels: []promexp.Label{promexp.L("direction", "d2h")}, Value: float64(savedD2H)},
		},
	}

	evicts := promexp.Family{
		Name: "uvmsim_evictions_total",
		Help: "Chunk allocations by the eviction source that satisfied them.",
		Kind: promexp.KindCounter,
	}
	for _, src := range []metrics.EvictSource{metrics.EvictFree, metrics.EvictUnused,
		metrics.EvictDiscarded, metrics.EvictLRU} {
		evicts.Samples = append(evicts.Samples, promexp.Sample{
			Labels: []promexp.Label{promexp.L("source", src.String())},
			Value:  float64(m.Evictions(src)),
		})
	}

	peerBytes, peerOps := m.Peer()
	faultBatches, faultedBlocks := m.FaultBatches()
	zeroBlocks, zeroPages := m.ZeroFills()
	discardCalls, discardBlocks := m.Discards()
	degradedBlocks, degradedBytes := m.Degraded()
	poisonChunks, poisonRecovered, poisonLost := m.Poisoned()

	return []promexp.Family{
		xferBytes, xferOps, saved,
		promexp.Counter("uvmsim_peer_bytes_total",
			"GPU-to-GPU bytes over the peer fabric (never cross host DRAM).", float64(peerBytes)),
		promexp.Counter("uvmsim_peer_ops_total",
			"GPU-to-GPU transfer operations.", float64(peerOps)),
		promexp.Counter("uvmsim_peer_saved_bytes_total",
			"Peer-transfer bytes avoided by discard.", float64(m.PeerSaved())),
		evicts,
		promexp.Counter("uvmsim_fault_batches_total",
			"Fault-service batches handled by the driver.", float64(faultBatches)),
		promexp.Counter("uvmsim_faulted_blocks_total",
			"Blocks migrated or mapped by fault servicing.", float64(faultedBlocks)),
		promexp.Counter("uvmsim_zero_fill_blocks_total",
			"Whole blocks zero-filled on first touch.", float64(zeroBlocks)),
		promexp.Counter("uvmsim_zero_fill_pages_total",
			"Loose 4KiB pages zero-filled on first touch.", float64(zeroPages)),
		promexp.Counter("uvmsim_pte_unmap_blocks_total",
			"Blocks whose PTEs were destroyed.", float64(m.Unmaps())),
		promexp.Counter("uvmsim_pte_map_blocks_total",
			"Blocks whose PTEs were established.", float64(m.Maps())),
		promexp.Counter("uvmsim_discard_calls_total",
			"Discard API calls issued by workloads.", float64(discardCalls)),
		promexp.Counter("uvmsim_discard_blocks_total",
			"Blocks covered by discard calls.", float64(discardBlocks)),
		promexp.Counter("uvmsim_migrate_retries_total",
			"Failed migration attempts retried by fault recovery.", float64(m.MigrateRetries())),
		promexp.Counter("uvmsim_unmap_retries_total",
			"Reissued unmap/TLB shootdowns.", float64(m.UnmapRetries())),
		promexp.Counter("uvmsim_fault_replays_total",
			"Replayed fault rounds after replayable-buffer overflow.", float64(m.FaultReplays())),
		promexp.Counter("uvmsim_degraded_transfers_total",
			"Migrations degraded to coherent host-pinned access.", float64(degradedBlocks)),
		promexp.Counter("uvmsim_degraded_bytes_total",
			"Bytes served through the degradation path.", float64(degradedBytes)),
		promexp.Counter("uvmsim_poisoned_chunks_total",
			"Chunks quarantined by ECC-style poison.", float64(poisonChunks)),
		promexp.Counter("uvmsim_poison_recovered_bytes_total",
			"Poisoned bytes recovered from a valid host copy.", float64(poisonRecovered)),
		promexp.Counter("uvmsim_poison_lost_bytes_total",
			"Poisoned bytes with no valid host copy (data lost).", float64(poisonLost)),
	}
}

// runGaugeFamilies renders per-run, per-device residency gauges with
// {job, workload, device="gpuN"} labels, plus each run's simulated clock.
// Gauges are point-in-time by nature, so they are scoped to runs rather
// than merged: two concurrent runs each own their simulated GPUs.
func runGaugeFamilies(runs []simView) []promexp.Family {
	type field struct {
		name string
		help string
		get  func(metrics.DeviceResidency) uint64
	}
	fields := []field{
		{"uvmsim_device_capacity_bytes", "Physical chunk-pool capacity of the simulated GPU.",
			func(r metrics.DeviceResidency) uint64 { return r.CapacityBytes }},
		{"uvmsim_device_free_bytes", "Capacity on the free queue.",
			func(r metrics.DeviceResidency) uint64 { return r.FreeBytes }},
		{"uvmsim_device_unused_bytes", "Capacity holding dead data reclaimable without a transfer (unused queue).",
			func(r metrics.DeviceResidency) uint64 { return r.UnusedBytes }},
		{"uvmsim_device_used_bytes", "Capacity holding live resident data.",
			func(r metrics.DeviceResidency) uint64 { return r.UsedBytes }},
		{"uvmsim_device_discarded_bytes", "Capacity holding discarded data (reclaimable without a transfer).",
			func(r metrics.DeviceResidency) uint64 { return r.DiscardedBytes }},
		{"uvmsim_device_reserved_bytes", "Capacity reserved by the oversubscription co-resident program.",
			func(r metrics.DeviceResidency) uint64 { return r.ReservedBytes }},
		{"uvmsim_device_poisoned_bytes", "Capacity quarantined by ECC-style poison.",
			func(r metrics.DeviceResidency) uint64 { return r.PoisonedBytes }},
	}
	fams := make([]promexp.Family, 0, len(fields)+1)
	for _, f := range fields {
		fam := promexp.Family{Name: f.name, Help: f.help, Kind: promexp.KindGauge}
		for _, run := range runs {
			for dev, r := range run.snap.DeviceResidency() {
				fam.Samples = append(fam.Samples, promexp.Sample{
					Labels: []promexp.Label{
						promexp.L("job", run.job),
						promexp.L("workload", run.workload),
						promexp.L("device", "gpu"+strconv.Itoa(dev)),
					},
					Value: float64(f.get(r)),
				})
			}
		}
		promexp.SortSamples(&fam)
		fams = append(fams, fam)
	}
	return fams
}

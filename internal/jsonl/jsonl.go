// Package jsonl is the crash-safe JSON-lines machinery shared by every
// durable log in the system: the experiment batch journal
// (internal/experiments) and the fleet coordinator's job journal
// (internal/fleet). It packages the two properties those logs depend on:
//
//   - Durability per record: Append writes one line and fsyncs before
//     returning, so a record that Append acknowledged survives kill -9.
//   - Crash repair on open: a torn trailing line — the signature of a
//     process dying mid-write — is truncated away and simply re-done by the
//     caller, while corruption anywhere earlier is a hard error, because
//     silently skipping an interior record would resurrect completed work.
//
// The torn-tail rule has two shapes. A final line with no terminating
// newline is always torn. A final line that is newline-terminated but fails
// the caller's decoder is the same crash signature (the newline made it to
// disk, the payload did not) and is also truncated. A decoder failure on
// any earlier line refuses the whole file.
package jsonl

import (
	"bytes"
	"fmt"
	"os"
	"sync"
)

// Appender is an append-only, fsync-per-record JSON-lines file. It is safe
// for concurrent Append calls.
type Appender struct {
	mu sync.Mutex
	f  *os.File
}

// Open opens (creating if needed) the JSON-lines file at path, replays
// every complete line through decode, repairs a torn tail by truncating it,
// and returns an appender positioned at the end of the valid prefix.
//
// decode is called once per newline-terminated line, in file order, and
// reports whether the line is a valid record. A decode error on the final
// line is treated as a torn write and truncated away; a decode error on any
// earlier line fails Open — interior corruption must never be skipped.
func Open(path string, decode func(line []byte) error) (*Appender, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	valid := 0
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// No terminating newline: the process died mid-write. Drop it.
			break
		}
		line := data[off : off+nl]
		if derr := decode(line); derr != nil {
			if off+nl+1 == len(data) {
				// Complete but undecodable final line: same torn-write crash
				// signature; truncate and let the caller re-do that record.
				break
			}
			return nil, fmt.Errorf("%s: corrupt record at byte %d: %v", path, off, derr)
		}
		off += nl + 1
		valid = off
	}
	if valid < len(data) {
		if terr := os.Truncate(path, int64(valid)); terr != nil {
			return nil, fmt.Errorf("truncating torn record: %w", terr)
		}
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Appender{f: f}, nil
}

// Append writes one record line (a terminating newline is added) and forces
// it to stable storage before returning: after Append returns nil, kill -9
// cannot lose the record. The line must not itself contain a newline —
// records are the unit of repair, and an embedded newline would split one
// record into a valid-looking prefix and a corrupt remainder.
func (a *Appender) Append(line []byte) error {
	if bytes.IndexByte(line, '\n') >= 0 {
		return fmt.Errorf("jsonl: record contains a newline")
	}
	buf := make([]byte, 0, len(line)+1)
	buf = append(buf, line...)
	buf = append(buf, '\n')
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, err := a.f.Write(buf); err != nil {
		return err
	}
	return a.f.Sync()
}

// Close releases the file. Records already appended remain durable.
func (a *Appender) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.f.Close()
}

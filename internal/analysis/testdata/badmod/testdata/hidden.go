package hidden

const MustNeverLoad = syntactically broken on purpose

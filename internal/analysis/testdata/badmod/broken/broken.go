// Package broken fails to type-check: the loader must record the errors
// and carry on, not panic or abort the module load.
package broken

func Boom() int {
	return undefinedIdentifier + 1
}

package xtest_test

import (
	"testing"

	"badmod/xtest"
)

func TestDouble(t *testing.T) {
	if xtest.Double(2) != 4 {
		t.Fatal("nope")
	}
}

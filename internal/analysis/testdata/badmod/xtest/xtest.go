// Package xtest has an external test package riding along in the same
// directory; both units must type-check and merge into one Info.
package xtest

func Double(n int) int { return 2 * n }

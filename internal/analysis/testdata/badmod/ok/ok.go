// Package ok type-checks cleanly and must still load even though a
// sibling package is broken.
package ok

import "strings"

func Upper(s string) string { return strings.ToUpper(s) }

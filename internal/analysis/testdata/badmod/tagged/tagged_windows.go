package tagged

const WindowsOnly = alsoWouldNotTypeCheck

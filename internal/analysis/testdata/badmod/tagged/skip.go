//go:build ignore

package tagged

const Skipped = thisWouldNotTypeCheck

// Package tagged has files excluded by build constraints; only this file
// is part of the package on linux with the default tags.
package tagged

const Kept = true

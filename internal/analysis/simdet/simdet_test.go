package simdet_test

import (
	"testing"

	"uvmdiscard/internal/analysis/analysistest"
	"uvmdiscard/internal/analysis/simdet"
)

func TestSimdet(t *testing.T) {
	analysistest.Run(t, "testdata", simdet.Analyzer,
		"internal/badclock", "internal/renamed", "internal/runctl", "examples/demo")
}

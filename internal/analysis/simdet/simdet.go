// Package simdet defines an analyzer enforcing simulation determinism:
// code under internal/ and cmd/ must not read the wall clock (time.Now,
// time.Since) or use math/rand — all simulated time flows through
// sim.Time and all randomness through sim.RNG (forked per goroutine with
// RNG.Fork), so that a run's output is a pure function of its inputs and
// the parallel experiment runner stays byte-for-byte deterministic.
//
// Deliberate wall-clock uses (e.g. reporting how long an experiment took on
// the host) carry an `//uvmlint:ignore simdet -- <reason>` suppression.
//
// The deadline/watchdog layer is allowlisted as whole packages rather than
// line by line: internal/runctl (the wall-deadline watchdog), internal/
// service, and cmd/uvmsimd (the uvmsimd control plane) exist to impose real
// time on simulations from the outside, so wall-clock reads are their job.
// The math/rand ban still applies to them — only the clock is exempted.
//
// The pass is typed: calls are resolved through go/types, so renaming the
// import (`import t "time"`), dot-importing it, or calling a method value
// does not hide a wall-clock read the way it did from the old
// name-matching pass.
package simdet

import (
	"go/ast"
	"go/types"
	"strings"

	"uvmdiscard/internal/analysis"
)

// Analyzer is the simdet pass.
var Analyzer = &analysis.Analyzer{
	Name: "simdet",
	Doc: "forbid wall-clock reads (time.Now, time.Since) and math/rand " +
		"under internal/ and cmd/: simulations use sim.Time and sim.RNG",
	Run: run,
}

// bannedTimeFuncs are the wall-clock entry points. time.Duration,
// time.Sleep-free formatting helpers, etc. remain fine.
var bannedTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// wallClockAllowed lists the host-side control-plane packages whose purpose
// is to impose wall-clock deadlines on simulations from outside the
// simulated timeline: the runctl watchdog and the uvmsimd service. The
// exemption is exact-match and covers only the clock — math/rand stays
// banned in these packages like everywhere else under internal/ and cmd/.
var wallClockAllowed = map[string]bool{
	"internal/runctl":  true,
	"internal/service": true,
	"internal/fleet":   true,
	"cmd/uvmsimd":      true,
	"cmd/uvmfleet":     true,
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.PkgPath) {
		return nil
	}
	allowWall := wallClockAllowed[pass.PkgPath]
	for _, f := range pass.Files {
		// Importing math/rand at all is a violation: sim.RNG is the only
		// sanctioned randomness source, seeded and forkable.
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == "math/rand" || p == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s is forbidden in simulation code: use sim.RNG (Fork per goroutine) for determinism", p)
			}
		}
		if allowWall {
			continue
		}
		// Every reference — qualified (time.Now), renamed (t.Now), or
		// dot-imported (Now) — resolves through exactly one use of the
		// *types.Func, so inspecting identifiers reports each once.
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || analysis.ObjPkgPath(fn) != "time" || !bannedTimeFuncs[fn.Name()] {
				return true
			}
			pass.Reportf(id.Pos(),
				"time.%s reads the wall clock: simulation code must derive time from sim.Time", fn.Name())
			return true
		})
	}
	return nil
}

// inScope limits the pass to the simulation tree: internal/ and cmd/.
// Examples and the public wrapper package may legitimately time things.
func inScope(pkgPath string) bool {
	return pkgPath == "internal" || pkgPath == "cmd" ||
		strings.HasPrefix(pkgPath, "internal/") || strings.HasPrefix(pkgPath, "cmd/")
}

// Package demo is outside the internal//cmd/ scope: wall-clock use is fine.
package demo

import "time"

// Elapsed times a callback with the real clock — allowed in examples.
func Elapsed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

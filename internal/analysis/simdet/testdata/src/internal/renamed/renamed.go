// Package renamed hides the time package behind another import name — the
// false-negative class the typed simdet pass closes.
package renamed

import (
	clock "time"
)

// Stamp reads the wall clock through the renamed import.
func Stamp() clock.Time {
	return clock.Now() // want "time.Now reads the wall clock"
}

// Elapsed uses Since through the renamed import.
func Elapsed(t clock.Time) clock.Duration {
	return clock.Since(t) // want "time.Since reads the wall clock"
}

// Format still only touches deterministic helpers; fine.
func Format(d clock.Duration) string {
	return d.String()
}

// Package runctl mirrors the real watchdog package's path: it is on the
// simdet wall-clock allowlist, so time.Now/Since/Until are clean here —
// but math/rand stays banned even for allowlisted packages.
package runctl

import (
	"math/rand" // want "import of math/rand is forbidden"
	"time"
)

// Deadline reads the wall clock freely: enforcing real deadlines on
// simulations is this package's purpose.
func Deadline(start time.Time, budget time.Duration) bool {
	if time.Since(start) > budget {
		return true
	}
	return time.Now().After(start.Add(budget))
}

// Jitter must still not use math/rand.
func Jitter() int { return rand.Intn(4) }

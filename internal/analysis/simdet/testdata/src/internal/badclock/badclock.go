// Package badclock seeds simdet violations inside the internal/ scope.
package badclock

import (
	"math/rand" // want "import of math/rand is forbidden"
	"time"
)

// Stamp reads the wall clock twice.
func Stamp() time.Duration {
	start := time.Now() // want "time.Now reads the wall clock"
	_ = rand.Intn(4)
	return time.Since(start) // want "time.Since reads the wall clock"
}

// Deadline uses time.Until.
func Deadline(t time.Time) time.Duration {
	return time.Until(t) // want "time.Until reads the wall clock"
}

// Format uses only deterministic parts of the time package; fine.
func Format(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

// Allowed demonstrates suppression with a justification.
func Allowed() time.Time {
	//uvmlint:ignore simdet -- wall-clock needed for host-side progress logs
	return time.Now()
}

// AllowedTrailing suppresses on the same line.
func AllowedTrailing() time.Time {
	return time.Now() //uvmlint:ignore simdet -- host-side reporting only
}

// Unjustified uses the pre-PR-7 suppression syntax, which no longer
// suppresses: the framework reports the comment itself and the finding
// stays live.
func Unjustified() time.Time {
	//uvmlint:ignore simdet missing the double-dash justification separator // want "malformed //uvmlint:ignore"
	return time.Now() // want "time.Now reads the wall clock"
}

// Stale carries a suppression for a line that no longer has a finding;
// the framework demands it be deleted.
func Stale() time.Duration {
	//uvmlint:ignore simdet -- left over from a deleted wall-clock read // want "unused //uvmlint:ignore for simdet"
	return time.Second
}

package analysis_test

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
	"testing"

	"uvmdiscard/internal/analysis"
)

// loadBadmod loads the pathological fixture module under testdata/badmod.
func loadBadmod(t *testing.T) []*analysis.Package {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "badmod"))
	if err != nil {
		t.Fatal(err)
	}
	l, err := analysis.NewLoader(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	return pkgs
}

func byPath(pkgs []*analysis.Package, path string) *analysis.Package {
	for _, p := range pkgs {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// A package that fails to type-check must surface its errors on the
// Package — and must not prevent sibling packages from loading clean.
func TestLoadReportsTypeErrorsWithoutAborting(t *testing.T) {
	pkgs := loadBadmod(t)

	broken := byPath(pkgs, "broken")
	if broken == nil {
		t.Fatal("package broken did not load at all")
	}
	if len(broken.TypeErrors) == 0 {
		t.Fatal("package broken loaded with no TypeErrors")
	}
	found := false
	for _, e := range broken.TypeErrors {
		if strings.Contains(e.Error(), "undefinedIdentifier") {
			found = true
		}
	}
	if !found {
		t.Errorf("TypeErrors do not mention the undefined identifier: %v", broken.TypeErrors)
	}
	if broken.TypesPkg == nil || broken.Info == nil {
		t.Error("broken package should still carry partial type information")
	}

	ok := byPath(pkgs, "ok")
	if ok == nil {
		t.Fatal("sibling package ok did not load")
	}
	if len(ok.TypeErrors) != 0 {
		t.Errorf("package ok has unexpected TypeErrors: %v", ok.TypeErrors)
	}
}

// Run must convert loader-collected type errors into typecheck
// diagnostics rather than hiding them.
func TestRunSurfacesTypecheckDiagnostics(t *testing.T) {
	pkgs := loadBadmod(t)
	diags, err := analysis.Run(pkgs, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if d.Analyzer == analysis.TypecheckName && strings.Contains(d.Message, "undefinedIdentifier") {
			found = true
			if !strings.HasSuffix(d.Position.Filename, "broken.go") {
				t.Errorf("typecheck diagnostic at %s, want broken.go", d.Position.Filename)
			}
		}
	}
	if !found {
		t.Errorf("no typecheck diagnostic for the broken package in %v", diags)
	}
}

// Directories named testdata hold fixture code, not module code: they must
// be invisible to the loader.
func TestLoadSkipsTestdataDirectories(t *testing.T) {
	pkgs := loadBadmod(t)
	for _, p := range pkgs {
		if strings.Contains(p.Path, "testdata") {
			t.Errorf("loader descended into %s", p.Path)
		}
	}
}

// Files excluded by build constraints — //go:build lines and GOOS/GOARCH
// filename suffixes — must not be parsed into the package: both excluded
// files here reference undefined identifiers, so their absence from
// TypeErrors proves they were filtered, not just tolerated.
func TestLoadAppliesBuildConstraints(t *testing.T) {
	pkgs := loadBadmod(t)
	tagged := byPath(pkgs, "tagged")
	if tagged == nil {
		t.Fatal("package tagged did not load")
	}
	if len(tagged.TypeErrors) != 0 {
		t.Fatalf("build-constrained files leaked into the package: %v", tagged.TypeErrors)
	}
	if n := len(tagged.Files); n != 1 {
		t.Fatalf("package tagged parsed %d files, want 1 (tagged.go only)", n)
	}
	if obj := tagged.TypesPkg.Scope().Lookup("Kept"); obj == nil {
		t.Error("tagged.Kept missing from the type-checked package")
	}
	if obj := tagged.TypesPkg.Scope().Lookup("Skipped"); obj != nil {
		t.Error("tagged.Skipped from a //go:build ignore file was type-checked")
	}
}

// An external test package (package foo_test) in the same directory must
// type-check as its own unit, with its type info merged into the
// directory's Package.
func TestLoadMergesExternalTestUnit(t *testing.T) {
	pkgs := loadBadmod(t)
	x := byPath(pkgs, "xtest")
	if x == nil {
		t.Fatal("package xtest did not load")
	}
	if len(x.TypeErrors) != 0 {
		t.Fatalf("xtest TypeErrors: %v", x.TypeErrors)
	}
	// The merged Info must cover identifiers from the _test.go file: find
	// the use of Double inside TestDouble.
	found := false
	for _, f := range x.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || id.Name != "Double" {
				return true
			}
			if fn, ok := x.Info.Uses[id].(*types.Func); ok && fn.Name() == "Double" {
				found = true
			}
			return true
		})
	}
	if !found {
		t.Error("merged Info has no resolved use of xtest.Double from the external test file")
	}
}
